package facsp_test

// The documentation gate: these tests diff the markdown front door
// (README.md, EXPERIMENTS.md, SCENARIOS.md) against the code's live
// registries — figure ids, scenario names, scheme ids — and check that
// relative links resolve, so the docs cannot silently rot as the
// registries grow. CI runs them on every push.

import (
	"fmt"
	"os"
	"regexp"
	"strings"
	"testing"

	"facsp/internal/experiment"
	"facsp/internal/metrics"
	"facsp/internal/perf"
	"facsp/internal/scenario"
)

func readDoc(t *testing.T, path string) string {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("documentation file missing: %v", err)
	}
	return string(data)
}

// normalize lower-cases and strips dashes/spaces so "FACS-P" matches the
// scheme id "facsp" and "guard-channel" matches "guard".
func normalize(s string) string {
	s = strings.ToLower(s)
	s = strings.ReplaceAll(s, "-", "")
	s = strings.ReplaceAll(s, " ", "")
	return s
}

func TestDocsFigureTableMatchesRegistry(t *testing.T) {
	experiments := readDoc(t, "EXPERIMENTS.md")
	for _, id := range experiment.FigureIDs() {
		if !strings.Contains(experiments, "`"+id+"`") {
			t.Errorf("EXPERIMENTS.md does not document figure id `%s`", id)
		}
	}
}

func TestDocsScenarioCookbookMatchesLibrary(t *testing.T) {
	cookbook := readDoc(t, "SCENARIOS.md")
	for _, name := range scenario.Names() {
		if !strings.Contains(cookbook, "### "+name) {
			t.Errorf("SCENARIOS.md has no section for scenario %q", name)
		}
	}
	for _, id := range experiment.SchemeIDs() {
		if !strings.Contains(cookbook, "`"+id+"`") {
			t.Errorf("SCENARIOS.md does not mention scheme id `%s`", id)
		}
	}
	current := fmt.Sprintf(`"schema": %d`, scenario.SchemaVersion)
	if !strings.Contains(cookbook, current) {
		t.Errorf("SCENARIOS.md does not show the current schema version (%s)", current)
	}
	if !strings.Contains(cookbook, "`topology`") {
		t.Error("SCENARIOS.md does not document the topology section")
	}
	if !strings.Contains(cookbook, "-generate-city") {
		t.Error("SCENARIOS.md does not document the city generator")
	}
}

// serverSchemes parses the facs-server -scheme registry out of its flag
// usage string, which the server keeps next to the switch it documents.
func serverSchemes(t *testing.T) []string {
	t.Helper()
	src := readDoc(t, "cmd/facs-server/main.go")
	m := regexp.MustCompile(`admission scheme: ([a-z, -]+)"`).FindStringSubmatch(src)
	if m == nil {
		t.Fatal("cannot find the -scheme usage string in cmd/facs-server/main.go")
	}
	var out []string
	for _, s := range strings.Split(m[1], ",") {
		out = append(out, strings.TrimSpace(s))
	}
	if len(out) < 4 {
		t.Fatalf("suspiciously short server scheme list: %v", out)
	}
	return out
}

func TestDocsSchemeTableMatchesRegistries(t *testing.T) {
	readme := readDoc(t, "README.md")
	start := strings.Index(readme, "## The schemes")
	if start < 0 {
		t.Fatal("README.md has no scheme table section")
	}
	section := readme[start:]
	if end := strings.Index(section[1:], "\n## "); end > 0 {
		section = section[:end+1]
	}
	norm := normalize(section)

	// Every scheme the scenario sweeps rank must be in the README table...
	for _, id := range experiment.SchemeIDs() {
		if !strings.Contains(norm, normalize(id)) {
			t.Errorf("README scheme table does not cover experiment scheme %q", id)
		}
	}
	// ...and so must every scheme facs-server serves.
	for _, id := range serverSchemes(t) {
		if !strings.Contains(norm, normalize(id)) {
			t.Errorf("README scheme table does not cover facs-server scheme %q", id)
		}
	}
}

// TestDocsPerfSuiteMatchesRegistry diffs the Performance section of
// EXPERIMENTS.md against the live perf registry: every benchmark spec
// must be documented, and the section must describe the artifact and the
// gate's escape hatch.
func TestDocsPerfSuiteMatchesRegistry(t *testing.T) {
	experiments := readDoc(t, "EXPERIMENTS.md")
	if !strings.Contains(experiments, "## Performance") {
		t.Fatal("EXPERIMENTS.md has no Performance section")
	}
	for _, s := range perf.Specs() {
		if !strings.Contains(experiments, "`"+s.Name+"`") {
			t.Errorf("EXPERIMENTS.md does not document perf spec `%s`", s.Name)
		}
	}
	for _, token := range []string{"BENCH.json", "BENCH_baseline.json", "facs-bench", "bench-override", "BENCH_GATE"} {
		if !strings.Contains(experiments, token) {
			t.Errorf("EXPERIMENTS.md Performance section does not mention %s", token)
		}
	}
	readme := readDoc(t, "README.md")
	for _, token := range []string{"facs-bench", "BENCH_baseline.json", "perf"} {
		if !strings.Contains(readme, token) {
			t.Errorf("README architecture map does not mention %s", token)
		}
	}
}

// TestDocsBenchBaselineMatchesRegistry keeps the committed gate baseline
// honest: every baseline spec must still exist in the registry (a rename
// would silently un-gate it) and every smoke-suite spec must be gated.
func TestDocsBenchBaselineMatchesRegistry(t *testing.T) {
	base, err := perf.ReadReport("BENCH_baseline.json")
	if err != nil {
		t.Fatalf("committed baseline unreadable: %v", err)
	}
	if base.Suite != "smoke" {
		t.Errorf("baseline suite = %q, want the smoke suite", base.Suite)
	}
	registry := map[string]bool{}
	for _, s := range perf.Specs() {
		registry[s.Name] = true
	}
	gated := map[string]bool{}
	for _, r := range base.Results {
		gated[r.Name] = true
		if !registry[r.Name] {
			t.Errorf("baseline spec %q no longer exists in the perf registry", r.Name)
		}
		if r.NsPerOp <= 0 {
			t.Errorf("baseline spec %q has non-positive ns/op", r.Name)
		}
	}
	for _, s := range perf.SmokeSpecs() {
		if !gated[s.Name] {
			t.Errorf("smoke spec %q is missing from BENCH_baseline.json — regenerate the baseline", s.Name)
		}
	}
}

// TestDocsMetricsFamiliesDocumented diffs the observability docs against
// the live metrics registry: every Prometheus family the process can
// expose — per-cell series, hotness, registered scalars — must appear in
// the EXPERIMENTS.md family table, and both doors must document the
// endpoints and the server flag. Importing facsp (above) pulls in
// internal/core, so the surface-cache scalar families are registered by
// the time this runs, exactly as in a live daemon.
func TestDocsMetricsFamiliesDocumented(t *testing.T) {
	experiments := readDoc(t, "EXPERIMENTS.md")
	if !strings.Contains(experiments, "## Observability") {
		t.Fatal("EXPERIMENTS.md has no Observability section")
	}
	for _, fam := range metrics.Families() {
		if !strings.Contains(experiments, "`"+fam+"`") {
			t.Errorf("EXPERIMENTS.md does not document metric family `%s`", fam)
		}
	}
	for _, doc := range []string{"README.md", "EXPERIMENTS.md"} {
		content := readDoc(t, doc)
		for _, token := range []string{"/metrics", "/hotcells", "-metrics", "-hotness-halflife"} {
			if !strings.Contains(content, token) {
				t.Errorf("%s does not mention %s", doc, token)
			}
		}
	}
	if !strings.Contains(readDoc(t, "README.md"), "## Observability") {
		t.Error("README.md has no Observability section")
	}
}

// TestDocsCIWorkflowWiring keeps the workflow and its checked-in smoke
// assert script consistent: the serving smoke must call
// scripts/ci-smoke-asserts.sh (not re-inlined one-liners), the script
// must exist, be executable and implement every subcommand the workflow
// invokes, and the leaderboard job, run cancellation and staticcheck
// binary cache must stay wired.
func TestDocsCIWorkflowWiring(t *testing.T) {
	ci := readDoc(t, ".github/workflows/ci.yml")
	for _, token := range []string{
		"scripts/ci-smoke-asserts.sh",
		"-leaderboard",
		"-gate",
		"cancel-in-progress: true",
		"staticcheck-cache",
	} {
		if !strings.Contains(ci, token) {
			t.Errorf("ci.yml does not contain %q", token)
		}
	}
	const script = "scripts/ci-smoke-asserts.sh"
	info, err := os.Stat(script)
	if err != nil {
		t.Fatalf("smoke assert script missing: %v", err)
	}
	if info.Mode()&0o111 == 0 {
		t.Errorf("%s is not executable", script)
	}
	src := readDoc(t, script)
	if !strings.HasPrefix(src, "#!") {
		t.Errorf("%s has no shebang", script)
	}
	for _, m := range regexp.MustCompile(`ci-smoke-asserts\.sh (\w+)`).FindAllStringSubmatch(ci, -1) {
		if !strings.Contains(src, m[1]+")") {
			t.Errorf("ci.yml invokes subcommand %q, which %s does not implement", m[1], script)
		}
	}
}

var mdLink = regexp.MustCompile(`\]\(([A-Za-z0-9_./-]+\.md)\)`)

func TestDocsRelativeLinksResolve(t *testing.T) {
	for _, doc := range []string{"README.md", "EXPERIMENTS.md", "SCENARIOS.md"} {
		content := readDoc(t, doc)
		for _, m := range mdLink.FindAllStringSubmatch(content, -1) {
			target := m[1]
			if strings.HasPrefix(target, "http") {
				continue
			}
			if _, err := os.Stat(target); err != nil {
				t.Errorf("%s links to %s, which does not exist", doc, target)
			}
		}
	}
}

func TestDocsCrossLinked(t *testing.T) {
	// The cookbook must be reachable from the front door and the figure
	// catalogue, per the scenario engine's documentation contract.
	for _, doc := range []string{"README.md", "EXPERIMENTS.md"} {
		if !strings.Contains(readDoc(t, doc), "SCENARIOS.md") {
			t.Errorf("%s does not link SCENARIOS.md", doc)
		}
	}
}
