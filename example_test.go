package facsp_test

import (
	"fmt"
	"log"

	"facsp"
)

// ExampleNewFACSP is the quick-start admit loop: build the paper's
// proposed controller and drive a few connection requests through it.
func ExampleNewFACSP() {
	ctrl, err := facsp.NewFACSP()
	if err != nil {
		log.Fatal(err)
	}
	requests := []struct {
		class        facsp.Class
		speed, angle float64
	}{
		{facsp.Voice, 60, 0},  // fast user heading at the base station
		{facsp.Video, 10, 90}, // slow user crossing the cell sideways
		{facsp.Text, 30, 45},
	}
	for _, r := range requests {
		req := facsp.NewRequest(r.class, r.speed, r.angle)
		dec := ctrl.Admit(req)
		fmt.Printf("%-5s speed=%3g angle=%2g -> accept=%-5v outcome=%s\n",
			r.class, r.speed, r.angle, dec.Accept, dec.Outcome)
		if dec.Accept {
			defer func() {
				if err := ctrl.Release(req); err != nil {
					log.Fatal(err)
				}
			}()
		}
	}
	// Output:
	// voice speed= 60 angle= 0 -> accept=true  outcome=A
	// video speed= 10 angle=90 -> accept=true  outcome=WA
	// text  speed= 30 angle=45 -> accept=true  outcome=NRNA
}

// ExampleWithSurfaceCache compiles the two fuzzy controllers into
// precomputed decision surfaces: the same admissions, answered by
// multilinear interpolation instead of a full Mamdani pass.
func ExampleWithSurfaceCache() {
	exact, err := facsp.NewFACSP()
	if err != nil {
		log.Fatal(err)
	}
	fast, err := facsp.NewFACSP(facsp.WithSurfaceCache(0)) // 0 = default resolution
	if err != nil {
		log.Fatal(err)
	}
	req := facsp.NewRequest(facsp.Voice, 80, 20)
	fmt.Printf("exact:   accept=%v\n", exact.Admit(req).Accept)
	fmt.Printf("surface: accept=%v\n", fast.Admit(req).Accept)
	// Output:
	// exact:   accept=true
	// surface: accept=true
}

// Example_configSweep sweeps a controller parameter — the empty-cell
// admission threshold Theta0 — to show how PConfig shapes the decision for
// one fixed borderline request.
func Example_configSweep() {
	req := facsp.NewRequest(facsp.Video, 100, 60) // fast, oblique video user
	for _, theta0 := range []float64{-0.8, -0.4, 0.2, 0.6} {
		cfg := facsp.DefaultPConfig()
		cfg.Theta0 = theta0
		ctrl, err := facsp.NewFACSP(cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("theta0=%+.1f -> accept=%v\n", theta0, ctrl.Admit(req).Accept)
	}
	// Output:
	// theta0=-0.8 -> accept=true
	// theta0=-0.4 -> accept=true
	// theta0=+0.2 -> accept=true
	// theta0=+0.6 -> accept=false
}

// ExampleNewAdapt shows the adaptive bandwidth-degradation scheme doing
// its job: a full cell admits a video handoff by squeezing on-going calls
// down their degradation ladders, then restores them on release.
func ExampleNewAdapt() {
	ctrl, err := facsp.NewAdapt() // 40 BU cell, video ladder 10-7-5-3
	if err != nil {
		log.Fatal(err)
	}
	for id := uint64(1); id <= 4; id++ { // fill the cell with video calls
		ctrl.Admit(facsp.Request{ID: id, Bandwidth: 10, RealTime: true})
	}
	handoff := facsp.Request{ID: 5, Bandwidth: 10, RealTime: true, Handoff: true}
	dec := ctrl.Admit(handoff)
	fmt.Printf("handoff: accept=%v allocated=%v outcome=%s\n", dec.Accept, dec.Allocated, dec.Outcome)
	alloc, _ := ctrl.Allocation(1)
	fmt.Printf("on-going call 1 degraded to %v BU\n", alloc)

	if err := ctrl.Release(handoff); err != nil {
		log.Fatal(err)
	}
	alloc, _ = ctrl.Allocation(1)
	fmt.Printf("after release call 1 is back to %v BU\n", alloc)
	// Output:
	// handoff: accept=true allocated=10 outcome=degraded-others
	// on-going call 1 degraded to 7 BU
	// after release call 1 is back to 10 BU
}

// ExampleRunScenario ranks every admission scheme on a named scenario
// from the embedded library — here the flash-crowd burst at the centre
// cell — at one (tiny) load point. SCENARIOS.md documents the library.
func ExampleRunScenario() {
	s, err := facsp.LoadScenario("flash-crowd")
	if err != nil {
		log.Fatal(err)
	}
	curves, err := facsp.RunScenario(s, facsp.ExperimentOptions{
		Loads:        []int{8},
		Replications: 2,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("scenario %s ranks %d schemes:\n", s.Name, len(curves))
	for _, c := range curves {
		fmt.Printf("%s: %d point(s) at N=%.0f\n", c.Name, len(c.Points), c.Points[0].X)
	}
	// Output:
	// scenario flash-crowd ranks 8 schemes:
	// adapt: 1 point(s) at N=8
	// adapt-fuzzy: 1 point(s) at N=8
	// FACS: 1 point(s) at N=8
	// FACS-P: 1 point(s) at N=8
	// guard-channel: 1 point(s) at N=8
	// learned: 1 point(s) at N=8
	// optimal: 1 point(s) at N=8
	// SCC: 1 point(s) at N=8
}

// Example_scenarioFile authors a scenario as JSON — the same format the
// files under internal/scenario/scenarios and the facs-sim -scenario flag
// use — and runs it: a hot-spot centre cell with double load next to a
// dead cell in outage. See SCENARIOS.md for the full schema.
func Example_scenarioFile() {
	doc := []byte(`{
		"schema": 1,
		"name": "hotspot-next-to-outage",
		"cells": [
			{"at": [0, 0], "load": 2},
			{"at": [1, 0], "capacity_scale": 0}
		]
	}`)
	s, err := facsp.ScenarioFromJSON(doc) // facsp.ScenarioFromFile reads from disk
	if err != nil {
		log.Fatal(err)
	}
	curves, err := facsp.RunScenario(s, facsp.ExperimentOptions{
		Loads:        []int{10},
		Replications: 2,
	})
	if err != nil {
		log.Fatal(err)
	}
	// The dead cell makes capacity heterogeneous, so the network-level SCC
	// comparator sits this scenario out.
	fmt.Printf("%s: %d schemes ranked\n", s.Name, len(curves))
	for _, c := range curves {
		fmt.Println(c.Name)
	}
	// Output:
	// hotspot-next-to-outage: 7 schemes ranked
	// adapt
	// adapt-fuzzy
	// FACS
	// FACS-P
	// guard-channel
	// learned
	// optimal
}

// ExampleRunFigure regenerates (a tiny slice of) one of the paper's
// figures; sweeps are deterministic for a given ExperimentOptions, however
// many workers shard them.
func ExampleRunFigure() {
	curves, err := facsp.RunFigure("10", facsp.ExperimentOptions{
		Loads:        []int{10},
		Replications: 2,
	})
	if err != nil {
		log.Fatal(err)
	}
	for _, c := range curves {
		fmt.Printf("%s: %d point(s) at N=%.0f\n", c.Name, len(c.Points), c.Points[0].X)
	}
	// Output:
	// FACS-P (proposed): 1 point(s) at N=10
	// FACS (previous): 1 point(s) at N=10
}
