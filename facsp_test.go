package facsp

import (
	"strings"
	"testing"
)

func TestNewRequest(t *testing.T) {
	tests := []struct {
		class    Class
		bw       float64
		realTime bool
	}{
		{class: Text, bw: 1, realTime: false},
		{class: Voice, bw: 5, realTime: true},
		{class: Video, bw: 10, realTime: true},
	}
	for _, tt := range tests {
		r := NewRequest(tt.class, 42, -17)
		if r.Bandwidth != tt.bw || r.RealTime != tt.realTime {
			t.Errorf("NewRequest(%v) = %+v", tt.class, r)
		}
		if r.Speed != 42 || r.Angle != -17 {
			t.Errorf("NewRequest kinematics = %+v", r)
		}
	}
}

func TestControllersRoundTrip(t *testing.T) {
	facs, err := NewFACS()
	if err != nil {
		t.Fatal(err)
	}
	facsp, err := NewFACSP()
	if err != nil {
		t.Fatal(err)
	}
	for _, ctrl := range []Controller{facs, facsp} {
		req := NewRequest(Voice, 80, 0)
		d := ctrl.Admit(req)
		if !d.Accept {
			t.Fatalf("%T rejected an ideal request into an empty cell: %+v", ctrl, d)
		}
		if err := ctrl.Release(req); err != nil {
			t.Fatalf("%T release: %v", ctrl, err)
		}
		if got := ctrl.Occupancy(); got != 0 {
			t.Errorf("%T occupancy = %v", ctrl, got)
		}
	}
}

func TestConstructorsWithConfig(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Capacity = 80
	f, err := NewFACS(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := f.Capacity(); got != 80 {
		t.Errorf("Capacity = %v", got)
	}
	pcfg := DefaultPConfig()
	pcfg.Capacity = 20
	p, err := NewFACSP(pcfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Capacity(); got != 20 {
		t.Errorf("Capacity = %v", got)
	}
	if _, err := NewFACS(cfg, cfg); err == nil {
		t.Error("two configs accepted")
	}
	if _, err := NewFACSP(pcfg, pcfg); err == nil {
		t.Error("two configs accepted")
	}
	if _, err := NewSCC(SCCConfig{}); err == nil {
		t.Error("invalid SCC config accepted")
	}
}

func TestWithSurfaceCache(t *testing.T) {
	cfg := WithSurfaceCache(0)
	if cfg.SurfaceResolution != DefaultSurfaceResolution {
		t.Errorf("WithSurfaceCache(0) resolution = %d, want %d", cfg.SurfaceResolution, DefaultSurfaceResolution)
	}
	ctrl, err := NewFACSP(cfg)
	if err != nil {
		t.Fatal(err)
	}
	exact, err := NewFACSP()
	if err != nil {
		t.Fatal(err)
	}
	// The cached controller behaves like the exact one on a clear-cut case:
	// an ideal request into an empty cell is admitted, and bookkeeping
	// works the same.
	req := NewRequest(Voice, 80, 0)
	for _, c := range []Controller{ctrl, exact} {
		d := c.Admit(req)
		if !d.Accept {
			t.Fatalf("%T rejected an ideal request into an empty cell: %+v", c, d)
		}
		if err := c.Release(req); err != nil {
			t.Fatal(err)
		}
	}
	// The cache also composes with the previous FACS system via the config
	// method.
	fc, err := NewFACS(DefaultConfig().WithSurfaceCache(0))
	if err != nil {
		t.Fatal(err)
	}
	if d := fc.Admit(req); !d.Accept {
		t.Fatalf("surface-cached FACS rejected an ideal request: %+v", d)
	}
}

func TestBaselineConstructors(t *testing.T) {
	if _, err := NewGuardChannel(40, 10); err != nil {
		t.Errorf("NewGuardChannel: %v", err)
	}
	if _, err := NewCompleteSharing(40); err != nil {
		t.Errorf("NewCompleteSharing: %v", err)
	}
	if _, err := NewFractionalGuard(40, 20, 7); err != nil {
		t.Errorf("NewFractionalGuard: %v", err)
	}
	if _, err := NewSCC(); err != nil {
		t.Errorf("NewSCC: %v", err)
	}
}

func TestSimulateFACSP(t *testing.T) {
	res, err := SimulateFACSP(DefaultSimConfig(20, 1))
	if err != nil {
		t.Fatal(err)
	}
	if res.Requests != 20 {
		t.Errorf("Requests = %d", res.Requests)
	}
	if res.Accepted+res.Blocked != 20 {
		t.Errorf("accounting broken: %+v", res)
	}
}

func TestSimulateFACS(t *testing.T) {
	res, err := SimulateFACS(DefaultSimConfig(20, 1))
	if err != nil {
		t.Fatal(err)
	}
	if res.Accepted+res.Blocked != 20 {
		t.Errorf("accounting broken: %+v", res)
	}
}

func TestRunFigureUnknown(t *testing.T) {
	if _, err := RunFigure("nope", ExperimentOptions{}); err == nil {
		t.Error("unknown figure accepted")
	}
}

func TestRunFigureAndRender(t *testing.T) {
	if testing.Short() {
		t.Skip("integration sweep")
	}
	curves, err := RunFigure("10", ExperimentOptions{Loads: []int{10, 50}, Replications: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(curves) != 2 {
		t.Fatalf("got %d curves", len(curves))
	}
	var chart, csv strings.Builder
	if err := RenderChart(&chart, "Fig. 10", curves); err != nil {
		t.Fatalf("RenderChart: %v", err)
	}
	if !strings.Contains(chart.String(), "FACS-P (proposed)") {
		t.Error("chart missing legend")
	}
	if err := WriteCSV(&csv, curves); err != nil {
		t.Fatalf("WriteCSV: %v", err)
	}
	if !strings.Contains(csv.String(), "series,x,y") {
		t.Error("CSV missing header")
	}
}

func TestGenerateCityAndRunCity(t *testing.T) {
	s, err := GenerateCity(CityParams{Name: "wrapper-city", MetroRadius: 3})
	if err != nil {
		t.Fatal(err)
	}
	run := CityRun{Scheme: "guard", Load: 6, Seed: 1, Shard: ShardOptions{Workers: 2}}
	res, err := RunCity(s, run, ExperimentOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.NetworkRequests == 0 {
		t.Error("city run offered no calls")
	}
	if _, err := GenerateCity(CityParams{Name: "bad", MetroRadius: 1}); err == nil {
		t.Error("GenerateCity accepted a degenerate radius")
	}
}
