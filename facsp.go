// Package facsp is the public face of this repository: a Go implementation
// of the fuzzy-logic call admission control system with priority of
// on-going connections (FACS-P) of Mino, Barolli, Durresi, Xhafa and
// Koyama (IEEE ICDCS Workshops 2009), together with the systems it is
// evaluated against — the previous FACS controller, the Shadow Cluster
// Concept, classic guard-channel baselines, and the adaptive
// bandwidth-degradation schemes of Chowdhury, Jang and Haas — and the
// cellular network simulator that reproduces every figure of the paper's
// evaluation plus the cross-scheme head-to-heads.
//
// # Quick start
//
//	ctrl, err := facsp.NewFACSP()
//	if err != nil { ... }
//	dec := ctrl.Admit(facsp.NewRequest(facsp.Voice, 60 /* km/h */, 15 /* deg */))
//	if dec.Accept {
//	    defer ctrl.Release(facsp.NewRequest(facsp.Voice, 60, 15))
//	}
//
// # Reproducing the paper
//
//	curves, err := facsp.RunFigure("10", facsp.ExperimentOptions{})
//
// regenerates Fig. 10 (FACS-P vs FACS); see EXPERIMENTS.md for every
// figure. Sweeps are sharded across a worker pool (ExperimentOptions.
// Workers) with deterministic per-shard RNG substreams, so curves are
// bit-identical for any worker count.
//
// # Surface cache
//
// For admission-rate workloads, the Mamdani pipeline can be compiled into a
// precomputed decision surface answered by multilinear interpolation —
// orders of magnitude faster per Admit, at a small bounded quantization
// error (see EXPERIMENTS.md):
//
//	ctrl, err := facsp.NewFACSP(facsp.WithSurfaceCache(0)) // 0 = default resolution
//
// # Adaptive bandwidth degradation
//
// Beyond the paper's schemes, NewAdapt and NewAdaptFuzzy build controllers
// that protect handoffs by degrading the bandwidth of elastic on-going
// calls in steps (e.g. 10 → 7 → 5 → 3 BU for video) instead of refusing
// admissions, restoring them most-degraded-first as capacity frees up:
//
//	ctrl, err := facsp.NewAdapt() // cac semantics, per-connection IDs required
//
// # Scenarios
//
// Beyond the paper's homogeneous set-up, declarative scenarios describe
// heterogeneous workloads — per-cell load multipliers and capacities
// (hot spots, dead cells), piecewise-linear time-varying arrival
// profiles, bursty MMPP arrivals, and mobility mixes — and rank every
// scheme on the same sweep (see SCENARIOS.md, the scenario cookbook):
//
//	s, err := facsp.LoadScenario("flash-crowd") // or facsp.ScenarioFromFile
//	curves, err := facsp.RunScenario(s, facsp.ExperimentOptions{})
//
// The building blocks live in internal packages: the generic Mamdani
// engine (internal/fuzzy), the controllers (internal/core and
// internal/adapt), the comparators (internal/scc, internal/baseline), the
// event-driven simulator (internal/cellsim), and the scenario layer
// (internal/scenario).
package facsp

import (
	"fmt"
	"io"
	"strings"

	"facsp/internal/adapt"
	"facsp/internal/baseline"
	"facsp/internal/cac"
	"facsp/internal/cellsim"
	"facsp/internal/core"
	"facsp/internal/experiment"
	"facsp/internal/learned"
	"facsp/internal/optimal"
	"facsp/internal/plot"
	"facsp/internal/rng"
	"facsp/internal/scc"
	"facsp/internal/scenario"
	"facsp/internal/stats"
	"facsp/internal/traffic"
)

// Re-exported contract types: every admission scheme in the repository
// speaks these.
type (
	// Request describes one connection asking for admission.
	Request = cac.Request
	// Decision is a controller's verdict on one request.
	Decision = cac.Decision
	// Controller is a per-cell call-admission controller.
	Controller = cac.Controller
	// Class is a traffic service class (Text, Voice, Video).
	Class = traffic.Class
)

// The paper's service classes (Section 4: 70%/20%/10% of traffic at
// 1/5/10 bandwidth units).
const (
	Text  = traffic.Text
	Voice = traffic.Voice
	Video = traffic.Video
)

// Config re-exports the FACS controller configuration.
type Config = core.Config

// PConfig re-exports the FACS-P controller configuration.
type PConfig = core.PConfig

// SCCConfig re-exports the shadow-cluster configuration.
type SCCConfig = scc.Config

// DefaultConfig returns the paper's FACS configuration (40 BU capacity).
func DefaultConfig() Config { return core.DefaultConfig() }

// DefaultPConfig returns the calibrated FACS-P configuration.
func DefaultPConfig() PConfig { return core.DefaultPConfig() }

// DefaultSurfaceResolution is the per-axis grid resolution used by
// WithSurfaceCache when no explicit resolution is given.
const DefaultSurfaceResolution = core.DefaultSurfaceResolution

// WithSurfaceCache returns the default FACS-P configuration with the
// precomputed decision-surface cache enabled: FLC1 and FLC2 are compiled
// once into quantized lookup tables (shared process-wide) and Admit answers
// by multilinear interpolation instead of a full Mamdani inference pass.
// A non-positive resolution selects DefaultSurfaceResolution.
//
//	ctrl, err := facsp.NewFACSP(facsp.WithSurfaceCache(0))
//
// To combine with other overrides, or to enable the cache on the previous
// FACS system, use the config methods directly:
//
//	cfg := facsp.DefaultPConfig().WithSurfaceCache(65)
//	old := facsp.DefaultConfig().WithSurfaceCache(65)
func WithSurfaceCache(resolution int) PConfig {
	return core.DefaultPConfig().WithSurfaceCache(resolution)
}

// NewRequest builds an admission request for a service class: speed in
// km/h, angle in degrees between the user's heading and the bearing to the
// serving base station (0 = straight at it).
func NewRequest(class Class, speedKmh, angleDeg float64) Request {
	return Request{
		Speed:     speedKmh,
		Angle:     angleDeg,
		Bandwidth: class.Bandwidth(),
		RealTime:  class.RealTime(),
	}
}

// NewFACS builds the paper's previous fuzzy admission controller with the
// default configuration; pass a Config to customise.
func NewFACS(cfg ...Config) (*core.FACS, error) {
	c := core.DefaultConfig()
	if len(cfg) > 1 {
		return nil, fmt.Errorf("facsp: NewFACS takes at most one Config")
	}
	if len(cfg) == 1 {
		c = cfg[0]
	}
	return core.NewFACS(c)
}

// NewFACSP builds the paper's proposed priority-aware controller with the
// default configuration; pass a PConfig to customise.
func NewFACSP(cfg ...PConfig) (*core.FACSP, error) {
	c := core.DefaultPConfig()
	if len(cfg) > 1 {
		return nil, fmt.Errorf("facsp: NewFACSP takes at most one PConfig")
	}
	if len(cfg) == 1 {
		c = cfg[0]
	}
	return core.NewFACSP(c)
}

// NewSCC builds the Shadow Cluster Concept comparator (a network-level
// admitter spanning all cells).
func NewSCC(cfg ...SCCConfig) (*scc.Controller, error) {
	c := scc.DefaultConfig()
	if len(cfg) > 1 {
		return nil, fmt.Errorf("facsp: NewSCC takes at most one SCCConfig")
	}
	if len(cfg) == 1 {
		c = cfg[0]
	}
	return scc.New(c)
}

// NewGuardChannel builds the cutoff-priority baseline: the last guard BU
// are reserved for handoffs.
func NewGuardChannel(capacity, guard float64) (*baseline.GuardChannel, error) {
	return baseline.NewGuardChannel(capacity, guard)
}

// NewCompleteSharing builds the no-policy baseline.
func NewCompleteSharing(capacity float64) (*baseline.CompleteSharing, error) {
	return baseline.NewCompleteSharing(capacity)
}

// NewFractionalGuard builds the fractional guard channel baseline, seeded
// deterministically.
func NewFractionalGuard(capacity, threshold float64, seed uint64) (*baseline.FractionalGuard, error) {
	return baseline.NewFractionalGuard(capacity, threshold, rng.New(seed))
}

// AdaptConfig re-exports the adaptive bandwidth-degradation scheme
// configuration: the cell capacity, the per-class degradation ladders and
// the depth budgets per arrival kind.
type AdaptConfig = adapt.Config

// DefaultAdaptConfig returns the adaptive scheme configuration used for
// the repository's experiments: a 40 BU cell, video degradable
// 10 → 7 → 5 → 3 BU, voice 5 → 4 → 3 → 2 BU, text inelastic, and the full
// degradation budget reserved for handoffs.
func DefaultAdaptConfig() AdaptConfig { return adapt.DefaultConfig() }

// NewAdapt builds the adaptive bandwidth-degradation controller: handoffs
// are admitted by squeezing elastic on-going calls down their degradation
// ladders instead of being dropped, and degraded calls are restored
// most-degraded-first as capacity frees up. Every live connection must
// carry a distinct Request.ID. Pass an AdaptConfig to customise.
func NewAdapt(cfg ...AdaptConfig) (*adapt.Controller, error) {
	c := adapt.DefaultConfig()
	if len(cfg) > 1 {
		return nil, fmt.Errorf("facsp: NewAdapt takes at most one AdaptConfig")
	}
	if len(cfg) == 1 {
		c = cfg[0]
	}
	return adapt.New(c)
}

// NewAdaptFuzzy builds the fuzzy adaptive controller: the degradation
// machinery of NewAdapt gated by the FACS-P inference pipeline, with the
// capacity reclaimable by degradation fed into the fuzzy priority stage as
// extra headroom.
func NewAdaptFuzzy(cfg AdaptConfig, pcfg PConfig) (*adapt.Fuzzy, error) {
	return adapt.NewFuzzy(cfg, pcfg)
}

// NewOptimal builds the computed-optimum baseline: the stationary
// threshold policy of the single-cell birth-death Markov decision model
// (blocked call cost 1, dropped call cost 10), solved once per capacity by
// relative value iteration and compiled into an allocation-free lookup
// table. Policies are cached process-wide per capacity. Every scheme's
// leaderboard regret is measured against this controller (see
// EXPERIMENTS.md "Optimal baseline").
func NewOptimal(capacityBU float64) (Controller, error) {
	return optimal.ForCapacity(capacityBU)
}

// NewLearned builds the learned controller: a small neural policy
// distilled offline from the optimal policy's decisions (cmd/facs-train),
// shipped as a versioned weights artifact and compiled at construction
// into the same kind of allocation-free lookup table NewOptimal uses.
func NewLearned(capacityBU float64) (Controller, error) {
	return learned.New(capacityBU)
}

// SimConfig re-exports the cellular simulator configuration.
type SimConfig = cellsim.Config

// SimResult re-exports the simulator's per-run accounting.
type SimResult = cellsim.Result

// DefaultSimConfig returns the paper's Section 4 simulation set-up for the
// given number of requesting connections and seed.
func DefaultSimConfig(requests int, seed uint64) SimConfig {
	return cellsim.DefaultConfig(requests, seed)
}

// SimulateFACSP runs one cellular simulation with FACS-P controllers at
// every base station and returns the call-level accounting.
func SimulateFACSP(cfg SimConfig) (SimResult, error) {
	sim, err := cellsim.New(cfg, experiment.FACSPFactory()())
	if err != nil {
		return SimResult{}, err
	}
	return sim.Run()
}

// SimulateFACS runs one cellular simulation with FACS controllers.
func SimulateFACS(cfg SimConfig) (SimResult, error) {
	sim, err := cellsim.New(cfg, experiment.FACSFactory()())
	if err != nil {
		return SimResult{}, err
	}
	return sim.Run()
}

// ExperimentOptions re-exports the experiment sweep options.
type ExperimentOptions = experiment.Options

// Curve re-exports a named experiment curve with confidence intervals.
type Curve = experiment.Curve

// RunFigure regenerates one of the paper's figures ("7", "8", "9", "10"),
// the QoS experiment ("drops"), the adaptive-bandwidth head-to-heads
// ("adapt-drops", "adapt-ratio") or an ablation study. See EXPERIMENTS.md
// for the full catalogue and expected shapes.
func RunFigure(id string, opts ExperimentOptions) ([]Curve, error) {
	fig, ok := experiment.Figures()[id]
	if !ok {
		return nil, fmt.Errorf("facsp: unknown figure %q (have %s)", id,
			strings.Join(experiment.FigureIDs(), ", "))
	}
	return fig(opts)
}

// Scenario re-exports the declarative scenario description: a versioned,
// validated document (Go struct or JSON file) describing per-cell
// heterogeneity, time-varying and bursty arrivals, and mobility mixes.
// SCENARIOS.md is the schema reference and cookbook.
type Scenario = scenario.Scenario

// ScenarioNames returns the named scenarios of the embedded library
// (flash-crowd, stadium-hotspot, highway, diurnal-city, ...), sorted.
func ScenarioNames() []string { return scenario.Names() }

// LoadScenario returns a named scenario from the embedded library.
func LoadScenario(name string) (*Scenario, error) { return scenario.Load(name) }

// ScenarioFromJSON parses and validates a scenario document; unknown
// fields are rejected so typos fail loudly.
func ScenarioFromJSON(data []byte) (*Scenario, error) { return scenario.FromJSON(data) }

// ScenarioFromFile reads and validates a scenario JSON file.
func ScenarioFromFile(path string) (*Scenario, error) { return scenario.FromFile(path) }

// RunScenario ranks every admission scheme (FACS, FACS-P, SCC,
// guard-channel, adapt, adapt-fuzzy, optimal, learned) on one scenario:
// each scheme sweeps the same load axis under the scenario's workload and
// returns one curve of the paper's headline metric (percentage of
// accepted centre-cell calls). Sweeps are sharded like RunFigure: curves
// are bit-identical for any ExperimentOptions.Workers. On scenarios with
// heterogeneous cell capacity the network-level SCC scheme is skipped.
// For the dropped-call and degradation-ratio metrics, see cmd/facs-sim's
// -metric flag.
func RunScenario(s *Scenario, opts ExperimentOptions) ([]Curve, error) {
	return experiment.RunScenario(s, opts)
}

// Leaderboard re-exports the per-scenario scheme ranking by the weighted
// drop/block objective, with each scheme's regret against the computed
// optimal policy.
type Leaderboard = experiment.Leaderboard

// LeaderboardEntry re-exports one scheme's row on a Leaderboard.
type LeaderboardEntry = experiment.LeaderboardEntry

// RunLeaderboard ranks every applicable scheme on one scenario by the
// weighted objective J = 10·drop% + block% + degradation shortfall and
// computes regret against NewOptimal's policy. The ranking is
// bit-identical for any ExperimentOptions.Workers; cmd/facs-sim
// -leaderboard prints it and CI gates on Leaderboard.GateOptimalFloor.
func RunLeaderboard(s *Scenario, opts ExperimentOptions) (*Leaderboard, error) {
	return experiment.RunLeaderboard(s, opts)
}

// CityParams parameterizes the synthetic-city scenario generator: a
// metro disk with a downtown core, a suburb band, arterial highway
// corridors extending past the metro edge, stadium-style hot spots and
// dead zones. The zero value (plus a Name) generates the embedded
// metro-city scenario; see SCENARIOS.md "Generate a city".
type CityParams = scenario.CityParams

// GenerateCity builds a schema-2 scenario from city parameters. The
// output is a pure function of p, so the same parameters always produce
// the same scenario document.
func GenerateCity(p CityParams) (*Scenario, error) { return scenario.GenerateCity(p) }

// ShardOptions sizes the cell-group-sharded city engine: how many cell
// groups the topology is partitioned into and how many workers own
// them. Zero values pick defaults at run time.
type ShardOptions = cellsim.ShardOptions

// CityRun names one city-scale simulation: a scheme, a load level, a
// seed and the shard sizing.
type CityRun = experiment.CityRun

// RunCity executes ONE simulation over a scenario's multi-cluster
// topology, sharded cell-group-per-worker. Per-cell RNG substreams are
// keyed by topology slot and cross-group handoffs merge in a canonical
// order, so results are bit-identical for any ShardOptions — worker
// count and group count alike. Schemes without per-cell compiled state
// (scc) are rejected.
func RunCity(s *Scenario, run CityRun, opts ExperimentOptions) (SimResult, error) {
	return experiment.RunCity(s, run, opts)
}

// RenderChart draws curves as an ASCII chart onto w.
func RenderChart(w io.Writer, title string, curves []Curve) error {
	series := make([]stats.Series, len(curves))
	for i, c := range curves {
		series[i] = c.Series
	}
	chart := plot.Chart{
		Title:  title,
		XLabel: "number of requesting connections",
		YLabel: "percentage of accepted calls",
	}
	return chart.Render(w, series...)
}

// WriteCSV emits curves as tidy CSV (series,x,y) onto w.
func WriteCSV(w io.Writer, curves []Curve) error {
	series := make([]stats.Series, len(curves))
	for i, c := range curves {
		series[i] = c.Series
	}
	return plot.WriteCSV(w, series...)
}
