// Quickstart: build the paper's FACS-P controller, offer it a handful of
// connection requests, and inspect the soft decisions it returns.
package main

import (
	"fmt"
	"log"

	"facsp"
)

func main() {
	// A base station with the paper's default 40 bandwidth units.
	ctrl, err := facsp.NewFACSP()
	if err != nil {
		log.Fatal(err)
	}

	requests := []struct {
		who   string
		class facsp.Class
		speed float64 // km/h
		angle float64 // degrees off the bearing to the BS; 0 = straight at it
	}{
		{who: "commuter streaming video, driving at the BS", class: facsp.Video, speed: 70, angle: 5},
		{who: "pedestrian texting, wandering", class: facsp.Text, speed: 4, angle: 140},
		{who: "voice call, crossing traffic", class: facsp.Voice, speed: 50, angle: 90},
		{who: "video call heading away from the BS", class: facsp.Video, speed: 100, angle: 180},
	}

	for _, r := range requests {
		req := facsp.NewRequest(r.class, r.speed, r.angle)
		dec := ctrl.Admit(req)
		fmt.Printf("%-45s -> accept=%-5v outcome=%-4s score=%+.2f (cell now %.0f/%.0f BU)\n",
			r.who, dec.Accept, dec.Outcome, dec.Score, ctrl.Occupancy(), ctrl.Capacity())
	}

	// An on-going call handing off into this cell has priority: it is
	// admitted whenever physical capacity allows, whatever its fuzzy score.
	handoff := facsp.NewRequest(facsp.Video, 100, 180)
	handoff.Handoff = true
	dec := ctrl.Admit(handoff)
	fmt.Printf("%-45s -> accept=%-5v outcome=%-4s (priority of on-going connections)\n",
		"same receding video call, but as a handoff", dec.Accept, dec.Outcome)

	rtc, nrtc := ctrl.Counters()
	fmt.Printf("differentiated-service counters: RTC=%.0f BU, NRTC=%.0f BU\n", rtc, nrtc)
}
