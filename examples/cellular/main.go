// Cellular: run the full event-driven network simulation the paper's
// figures are measured on — a 7-cell cluster, the Section 4 traffic mix,
// moving users, handoffs — and print the call-level accounting.
package main

import (
	"fmt"
	"log"

	"facsp"
)

func main() {
	// 80 requesting connections at the tagged centre cell (plus the same
	// background load at each neighbour), paper Section 4 parameters.
	cfg := facsp.DefaultSimConfig(80, 42 /* seed */)

	for _, scheme := range []struct {
		name string
		run  func(facsp.SimConfig) (facsp.SimResult, error)
	}{
		{name: "FACS-P (proposed)", run: facsp.SimulateFACSP},
		{name: "FACS   (previous)", run: facsp.SimulateFACS},
	} {
		res, err := scheme.run(cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s\n", scheme.name)
		fmt.Printf("  requests=%d accepted=%d (%.1f%%) blocked=%d\n",
			res.Requests, res.Accepted, res.AcceptedPct(), res.Blocked)
		fmt.Printf("  handoffs: %d/%d accepted, dropped calls=%d (%.1f%% of admitted)\n",
			res.HandoffAccepted, res.HandoffAttempts, res.Dropped, res.DropPct())
		fmt.Printf("  completed=%d left-network=%d centre-utilization=%.1f BU\n",
			res.Completed, res.LeftNetwork, res.CentreUtilization)
		fmt.Printf("  by class:")
		for _, class := range []facsp.Class{facsp.Text, facsp.Voice, facsp.Video} {
			fmt.Printf(" %s %d/%d", class, res.AcceptedByClass[class], res.RequestsByClass[class])
		}
		fmt.Println()
		fmt.Println()
	}
}
