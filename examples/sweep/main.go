// Sweep: regenerate a small version of the paper's Fig. 10 (FACS-P vs
// FACS) through the public API and render it as an ASCII chart — the
// 30-second version of what cmd/facs-sim and EXPERIMENTS.md do at full
// resolution.
package main

import (
	"fmt"
	"log"
	"os"

	"facsp"
)

func main() {
	fmt.Println("sweeping Fig. 10 (reduced grid)...")
	curves, err := facsp.RunFigure("10", facsp.ExperimentOptions{
		Loads:        []int{10, 20, 25, 30, 40, 60, 80, 100},
		Replications: 8,
	})
	if err != nil {
		log.Fatal(err)
	}

	if err := facsp.RenderChart(os.Stdout, "Fig. 10 — percentage of accepted calls", curves); err != nil {
		log.Fatal(err)
	}

	fmt.Println()
	fmt.Println("paper's claim: FACS-P above FACS below ~25 requesting connections,")
	fmt.Println("below it beyond — the proposed system protects on-going calls under load.")
	for _, c := range curves {
		last := c.Points[len(c.Points)-1]
		fmt.Printf("  %-18s at N=%.0f: %.1f%%\n", c.Name, last.X, last.Y)
	}
}
