// Distributed: run a base-station admission daemon and drive it over TCP,
// all in one process — the deployment shape of cmd/facs-server and
// cmd/facs-client, self-contained for easy reading.
//
// Three handsets connect to the cell; one of them crashes mid-call and the
// daemon reclaims its bandwidth automatically.
package main

import (
	"fmt"
	"log"
	"net"
	"time"

	"facsp"
	"facsp/internal/bsd"
)

func main() {
	ctrl, err := facsp.NewFACSP()
	if err != nil {
		log.Fatal(err)
	}
	srv, err := bsd.NewServer(ctrl)
	if err != nil {
		log.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go func() { _ = srv.Serve(ln) }()
	defer srv.Close()
	addr := ln.Addr().String()
	fmt.Printf("base station (FACS-P, 40 BU) listening on %s\n\n", addr)

	// Handset 1: a well-behaved voice call.
	h1, err := bsd.Dial(addr)
	if err != nil {
		log.Fatal(err)
	}
	defer h1.Close()
	resp, err := h1.Admit(1, "voice", 60, 10, false)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("handset 1 voice call: accept=%v outcome=%s cell=%.0f BU\n", resp.Accept, resp.Outcome, resp.Occupancy)

	// Handset 2: a video call that will crash without releasing.
	h2, err := bsd.Dial(addr)
	if err != nil {
		log.Fatal(err)
	}
	resp, err = h2.Admit(2, "video", 80, 0, false)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("handset 2 video call: accept=%v cell=%.0f BU\n", resp.Accept, resp.Occupancy)

	fmt.Println("handset 2 crashes (connection drops without release)...")
	_ = h2.Close()
	waitForOccupancy(h1, 5)

	st, err := h1.Status()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("daemon reclaimed the crashed handset's bandwidth: cell=%.0f BU\n\n", st.Occupancy)

	// Handset 3: an on-going call handing off into this cell — priority.
	h3, err := bsd.Dial(addr)
	if err != nil {
		log.Fatal(err)
	}
	defer h3.Close()
	resp, err = h3.Admit(3, "video", 100, 180, true /* handoff */)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("handset 3 handoff (receding video): accept=%v — on-going connections have priority\n", resp.Accept)

	if _, err := h1.Release(1, "voice"); err != nil {
		log.Fatal(err)
	}
	if _, err := h3.Release(3, "video"); err != nil {
		log.Fatal(err)
	}
	st, err = h1.Status()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("all calls ended: cell=%.0f BU\n", st.Occupancy)
}

// waitForOccupancy polls until the cell drains to the target (the daemon
// reclaims a dead session asynchronously).
func waitForOccupancy(cl *bsd.Client, target float64) {
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		st, err := cl.Status()
		if err == nil && st.Occupancy == target {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	log.Fatal("daemon did not reclaim bandwidth in time")
}
