// Priority: demonstrate what "priority of on-going connections" buys.
//
// The same heavy workload runs against FACS (no priority) and FACS-P
// (priority): FACS-P drops almost no on-going calls at handoff, at the
// price of admitting fewer new calls — exactly the trade the paper's
// Fig. 10 and conclusions describe. The example also shows the
// requesting-connection priority extension the paper lists as future work.
package main

import (
	"fmt"
	"log"

	"facsp"
)

func main() {
	const load = 100
	fmt.Println("workload: 100 requesting connections per cell, paper Section 4 mix")
	fmt.Println()

	var facsDrop, facspDrop float64
	for _, scheme := range []struct {
		name string
		run  func(facsp.SimConfig) (facsp.SimResult, error)
		drop *float64
	}{
		{name: "FACS", run: facsp.SimulateFACS, drop: &facsDrop},
		{name: "FACS-P", run: facsp.SimulateFACSP, drop: &facspDrop},
	} {
		var accepted, dropped, admitted int
		for seed := uint64(0); seed < 10; seed++ {
			res, err := scheme.run(facsp.DefaultSimConfig(load, seed))
			if err != nil {
				log.Fatal(err)
			}
			accepted += res.Accepted
			dropped += res.Dropped
			admitted += res.Accepted
		}
		dropPct := 100 * float64(dropped) / float64(admitted)
		*scheme.drop = dropPct
		fmt.Printf("%-7s new-call acceptance %.1f%%   on-going calls dropped at handoff %.2f%%\n",
			scheme.name, 100*float64(accepted)/float64(10*load), dropPct)
	}
	fmt.Println()
	fmt.Printf("QoS of on-going connections: FACS-P cuts the drop rate %.0fx\n", facsDrop/max(facspDrop, 0.01))
	fmt.Println()

	// Future-work extension: priority of *requesting* connections.
	// Emergency-class requests get a lower admission threshold.
	cfg := facsp.DefaultPConfig()
	cfg.PriorityStep = 0.3
	ctrl, err := facsp.NewFACSP(cfg)
	if err != nil {
		log.Fatal(err)
	}
	// Load the cell so ordinary borderline calls start being refused.
	filler := facsp.NewRequest(facsp.Voice, 80, 0)
	for ctrl.Occupancy() < 25 {
		if d := ctrl.Admit(filler); !d.Accept {
			break
		}
	}
	ordinary := facsp.NewRequest(facsp.Voice, 20, 120)
	urgent := ordinary
	urgent.Priority = 2
	dOrd := ctrl.Admit(ordinary)
	dUrg := ctrl.Admit(urgent)
	fmt.Printf("loaded cell (%.0f BU): ordinary borderline call accept=%v, priority-2 call accept=%v\n",
		ctrl.Occupancy(), dOrd.Accept, dUrg.Accept)
}

func max(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
