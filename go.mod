module facsp

go 1.24
