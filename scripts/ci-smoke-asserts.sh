#!/usr/bin/env bash
# ci-smoke-asserts.sh: the serving-smoke assertions CI runs against a live
# facs-server mid-burst, consolidated from inline workflow one-liners so
# they can be reviewed, shellchecked and run locally:
#
#   scripts/ci-smoke-asserts.sh admits /tmp/metrics.txt
#   scripts/ci-smoke-asserts.sh promotions http://127.0.0.1:4092/metrics
#   scripts/ci-smoke-asserts.sh hotcells /tmp/hotcells.json
#
# admits      a /metrics dump must show a non-zero total of per-cell
#             facs_admits_total counters (admissions actually flowed).
# promotions  poll the /metrics endpoint until the tiered decision-surface
#             ladder reports at least one promotion; the promotion is
#             asynchronous (interval sampler + background recompile), so a
#             single scrape would race it.
# hotcells    a /hotcells JSON dump must rank cells by descending,
#             positive demand rate.
set -euo pipefail

usage() {
	echo "usage: $0 {admits <metrics-file>|promotions <metrics-url>|hotcells <hotcells-json>}" >&2
	exit 2
}

[ $# -eq 2 ] || usage
cmd=$1
arg=$2

case "$cmd" in
admits)
	awk '$1 ~ /^facs_admits_total{/ { sum += $2 } END { exit !(sum > 0) }' "$arg"
	echo "admit counters ok: non-zero facs_admits_total"
	;;
promotions)
	promos=0
	for _ in $(seq 1 20); do
		promos=$(curl -sf "$arg" |
			awk '$1 == "facs_surface_tier_promotions_total" { print int($2) }')
		[ "${promos:-0}" -gt 0 ] && break
		sleep 0.5
	done
	echo "tier promotions mid-burst: ${promos:-0}"
	[ "${promos:-0}" -gt 0 ]
	;;
hotcells)
	python3 - "$arg" <<-'EOF'
		import json, sys
		doc = json.load(open(sys.argv[1]))
		rates = [c['rate'] for c in doc['cells']]
		assert rates, 'empty hotcells ranking'
		assert rates == sorted(rates, reverse=True), f'ranking not descending: {rates}'
		assert rates[0] > 0, f'no demand recorded mid-burst: {rates}'
		print('hotcells ranking ok:', rates)
	EOF
	;;
*)
	usage
	;;
esac
