package cellsim

import (
	"math"
	"reflect"
	"strings"
	"testing"

	"facsp/internal/hexgrid"
	"facsp/internal/rng"
	"facsp/internal/traffic"
)

// perCellConfig returns a small heterogeneous config: a hot-spot centre,
// one loaded neighbour, and nothing anywhere else.
func perCellConfig(seed uint64) Config {
	c := DefaultConfig(0, seed)
	c.NeighborRequests = 0
	c.PerCell = []CellTraffic{
		{Cell: hexgrid.Coord{}, Requests: 30},
		{Cell: hexgrid.Coord{Q: 1, R: 0}, Requests: 10},
	}
	return c
}

func TestPerCellValidation(t *testing.T) {
	centre := hexgrid.Coord{}
	badMix := traffic.Mix{TextP: 2, VoiceP: 0, VideoP: 0}
	tests := []struct {
		name string
		mut  func(*Config)
		want string
	}{
		{
			name: "mutually exclusive with Requests",
			mut:  func(c *Config) { c.Requests = 5 },
			want: "mutually exclusive",
		},
		{
			name: "mutually exclusive with NeighborRequests",
			mut:  func(c *Config) { c.NeighborRequests = 5 },
			want: "mutually exclusive",
		},
		{
			name: "cell outside cluster",
			mut: func(c *Config) {
				c.PerCell = append(c.PerCell, CellTraffic{Cell: hexgrid.Coord{Q: 2, R: 0}, Requests: 1})
			},
			want: "outside",
		},
		{
			name: "duplicate cell",
			mut: func(c *Config) {
				c.PerCell = append(c.PerCell, CellTraffic{Cell: centre, Requests: 1})
			},
			want: "duplicate",
		},
		{
			name: "negative requests",
			mut:  func(c *Config) { c.PerCell[0].Requests = -1 },
			want: "negative request",
		},
		{
			name: "bad mix",
			mut:  func(c *Config) { c.PerCell[0].Mix = &badMix },
			want: "mix",
		},
		{
			name: "NaN profile rate",
			mut: func(c *Config) {
				c.PerCell[0].Profile = traffic.RateProfile{{T: 0, Rate: math.NaN()}}
			},
			want: "rate",
		},
		{
			name: "bad burst",
			mut: func(c *Config) {
				c.PerCell[0].Burst = &traffic.MMPP{OnMean: -1, OffMean: 1, OnRate: 1}
			},
			want: "mmpp",
		},
	}
	for _, tt := range tests {
		cfg := perCellConfig(1)
		tt.mut(&cfg)
		err := cfg.Validate()
		if err == nil {
			t.Errorf("%s: invalid config accepted", tt.name)
			continue
		}
		if !strings.Contains(err.Error(), tt.want) {
			t.Errorf("%s: error %q does not mention %q", tt.name, err, tt.want)
		}
	}
	if err := perCellConfig(1).Validate(); err != nil {
		t.Fatalf("valid per-cell config rejected: %v", err)
	}
}

func TestPerCellCountsCentreOnly(t *testing.T) {
	cfg := perCellConfig(7)
	sim, err := New(cfg, newOpenAdmitter())
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Requests != 30 {
		t.Errorf("Requests = %d, want the centre stream's 30", res.Requests)
	}
	if res.NetworkRequests != 40 {
		t.Errorf("NetworkRequests = %d, want 40", res.NetworkRequests)
	}
	if res.Accepted != 30 {
		t.Errorf("open admitter accepted %d of 30 centre requests", res.Accepted)
	}
	total := 0
	for _, n := range res.RequestsByClass {
		total += n
	}
	if total != 30 {
		t.Errorf("RequestsByClass sums to %d, want 30 (centre only)", total)
	}
}

// TestPerCellMatchesHomogeneous pins the per-cell path to the paper path:
// a PerCell description that spells out the homogeneous set-up draws the
// exact same random stream and must produce a bit-identical Result.
func TestPerCellMatchesHomogeneous(t *testing.T) {
	homog := DefaultConfig(20, 99)
	res1, err := runPerCell(t, homog)
	if err != nil {
		t.Fatal(err)
	}

	spelled := DefaultConfig(0, 99)
	spelled.NeighborRequests = 0
	for _, cell := range hexgrid.Disk(hexgrid.Coord{}, spelled.Rings) {
		n := 20 // centre and neighbours alike in DefaultConfig
		spelled.PerCell = append(spelled.PerCell, CellTraffic{Cell: cell, Requests: n})
	}
	res2, err := runPerCell(t, spelled)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res1, res2) {
		t.Errorf("spelled-out homogeneous config diverges:\nhomog:   %+v\npercell: %+v", res1, res2)
	}
}

func runPerCell(t *testing.T, cfg Config) (Result, error) {
	t.Helper()
	sim, err := New(cfg, facsAdmitter(t))
	if err != nil {
		return Result{}, err
	}
	return sim.Run()
}

func TestPerCellDeterministic(t *testing.T) {
	cfg := perCellConfig(3)
	cfg.PerCell[0].Profile = traffic.RateProfile{{T: 0, Rate: 1}, {T: 300, Rate: 6}, {T: 600, Rate: 1}}
	cfg.PerCell[0].Burst = &traffic.MMPP{OnMean: 60, OffMean: 120, OnRate: 3, OffRate: 0.5}
	a, err := runPerCell(t, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := runPerCell(t, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Errorf("same seed diverges:\na: %+v\nb: %+v", a, b)
	}
}

func TestSampleArrivalThinning(t *testing.T) {
	// A profile that is zero over the first half of the window must place
	// every arrival in the second half.
	profile := traffic.RateProfile{{T: 0, Rate: 0}, {T: 300, Rate: 0.001}, {T: 301, Rate: 5}}
	src := rng.New(11)
	for i := 0; i < 2000; i++ {
		at, err := sampleArrival(src, 600, profile, traffic.Envelope{})
		if err != nil {
			t.Fatal(err)
		}
		if at < 300 || at >= 600 {
			t.Fatalf("draw %d: arrival %v outside the profile's support", i, at)
		}
	}
}

func TestSampleArrivalStationaryIsUniform(t *testing.T) {
	// The stationary path must consume exactly one draw: the same source
	// yields the same sequence as direct Uniform calls (this is what keeps
	// the paper figures bit-identical to the pre-scenario code).
	a, b := rng.New(5), rng.New(5)
	for i := 0; i < 100; i++ {
		at, err := sampleArrival(a, 600, nil, traffic.Envelope{})
		if err != nil {
			t.Fatal(err)
		}
		if want := b.Uniform(0, 600); at != want {
			t.Fatalf("draw %d: %v != uniform %v", i, at, want)
		}
	}
}

func TestSampleArrivalZeroPeakFallsBackToUniform(t *testing.T) {
	// An MMPP whose realised envelope is a single zero-rate off segment has
	// no stochastic shape to thin against; arrivals must still be produced.
	m := traffic.MMPP{OnMean: 1, OffMean: 1e12, OnRate: 1, OffRate: 0}
	env := m.Envelope(rng.New(1), 600)
	if env.MaxRate() > 0 {
		t.Skip("envelope realised an on segment; pick another seed")
	}
	at, err := sampleArrival(rng.New(2), 600, nil, env)
	if err != nil {
		t.Fatal(err)
	}
	if at < 0 || at >= 600 {
		t.Errorf("fallback arrival %v outside the window", at)
	}

	// With a deterministic profile alongside the degenerate envelope, the
	// profile's shape must survive: only the envelope is dropped.
	profile := traffic.RateProfile{{T: 0, Rate: 0}, {T: 400, Rate: 0}, {T: 401, Rate: 4}}
	src := rng.New(3)
	for i := 0; i < 500; i++ {
		at, err := sampleArrival(src, 600, profile, env)
		if err != nil {
			t.Fatal(err)
		}
		if at < 400 {
			t.Fatalf("draw %d: arrival %v ignores the profile's support", i, at)
		}
	}
}
