package cellsim

import (
	"testing"

	"facsp/internal/adapt"
	"facsp/internal/baseline"
	"facsp/internal/cac"
	"facsp/internal/hexgrid"
)

func adaptAdmitter(t *testing.T) Admitter {
	t.Helper()
	return NewPerCell(func(hexgrid.Coord) cac.Controller {
		c, err := adapt.New(adapt.DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		return c
	})
}

func guardAdmitter(t *testing.T) Admitter {
	t.Helper()
	return NewPerCell(func(hexgrid.Coord) cac.Controller {
		c, err := baseline.NewGuardChannel(40, 8)
		if err != nil {
			t.Fatal(err)
		}
		return c
	})
}

func runWith(t *testing.T, adm Admitter, requests int, seed uint64) Result {
	t.Helper()
	sim, err := New(DefaultConfig(requests, seed), adm)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestAdaptDegradesUnderLoad drives the adaptive-bandwidth scheme through
// a loaded cluster: mid-call reallocations must show up in the
// received/requested bandwidth integrals, and the accounting invariants
// must hold.
func TestAdaptDegradesUnderLoad(t *testing.T) {
	res := runWith(t, adaptAdmitter(t), 60, 7)

	if res.BandwidthRequested <= 0 {
		t.Fatal("no requested-bandwidth integral accumulated")
	}
	if res.BandwidthGranted > res.BandwidthRequested+1e-6 {
		t.Errorf("granted integral %v exceeds requested %v", res.BandwidthGranted, res.BandwidthRequested)
	}
	ratio := res.BandwidthRatio()
	if ratio <= 0 || ratio > 1 {
		t.Fatalf("bandwidth ratio %v outside (0, 1]", ratio)
	}
	if ratio == 1 {
		t.Error("no degradation observed under heavy load: ratio = 1")
	}
	if res.Accepted+res.Blocked != res.Requests {
		t.Errorf("accepted %d + blocked %d != requests %d", res.Accepted, res.Blocked, res.Requests)
	}
}

// TestNonAdaptiveSchemesKeepRatioOne pins the metric's baseline: a scheme
// that never reallocates mid-call must report a ratio of exactly 1.
func TestNonAdaptiveSchemesKeepRatioOne(t *testing.T) {
	res := runWith(t, guardAdmitter(t), 60, 7)
	if got := res.BandwidthRatio(); got != 1 {
		t.Errorf("guard-channel bandwidth ratio %v, want 1", got)
	}
	if res.BandwidthGranted != res.BandwidthRequested {
		t.Errorf("granted %v != requested %v for a non-adaptive scheme",
			res.BandwidthGranted, res.BandwidthRequested)
	}
}

// TestAdaptProtectsHandoffs checks the scheme does its headline job inside
// the simulator: fewer dropped on-going calls than the guard channel under
// the same offered load and seed.
func TestAdaptProtectsHandoffs(t *testing.T) {
	var adaptDrops, guardDrops int
	for seed := uint64(1); seed <= 5; seed++ {
		adaptDrops += runWith(t, adaptAdmitter(t), 60, seed).Dropped
		guardDrops += runWith(t, guardAdmitter(t), 60, seed).Dropped
	}
	if adaptDrops >= guardDrops {
		t.Errorf("adapt dropped %d calls, guard-channel %d: degradation should protect handoffs",
			adaptDrops, guardDrops)
	}
}

// TestAdaptRunDeterministic pins bit-reproducibility with the observer
// wiring in the loop: two identical runs must agree on every field,
// including the new bandwidth integrals.
func TestAdaptRunDeterministic(t *testing.T) {
	a := runWith(t, adaptAdmitter(t), 40, 3)
	b := runWith(t, adaptAdmitter(t), 40, 3)
	if a.BandwidthGranted != b.BandwidthGranted || a.BandwidthRequested != b.BandwidthRequested {
		t.Errorf("bandwidth integrals differ across identical runs:\n a: %v/%v\n b: %v/%v",
			a.BandwidthGranted, a.BandwidthRequested, b.BandwidthGranted, b.BandwidthRequested)
	}
	if a.Dropped != b.Dropped || a.Accepted != b.Accepted || a.CentreUtilization != b.CentreUtilization {
		t.Errorf("results differ across identical runs:\n a: %+v\n b: %+v", a, b)
	}
}
