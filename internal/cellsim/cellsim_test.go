package cellsim

import (
	"fmt"
	"testing"

	"facsp/internal/cac"
	"facsp/internal/core"
	"facsp/internal/hexgrid"
	"facsp/internal/traffic"
)

// openAdmitter admits everything and tracks balance per cell, for
// exercising the simulator independent of any admission policy.
type openAdmitter struct {
	admitted map[hexgrid.Coord]float64
	admits   int
	releases int
}

func newOpenAdmitter() *openAdmitter {
	return &openAdmitter{admitted: make(map[hexgrid.Coord]float64)}
}

func (o *openAdmitter) Admit(cell hexgrid.Coord, req cac.Request) cac.Decision {
	o.admitted[cell] += req.Bandwidth
	o.admits++
	return cac.Decision{Accept: true, Score: 1, Outcome: "open"}
}

func (o *openAdmitter) Release(cell hexgrid.Coord, req cac.Request) error {
	if o.admitted[cell] < req.Bandwidth-1e-9 {
		return fmt.Errorf("release %v BU at %v exceeds admitted %v", req.Bandwidth, cell, o.admitted[cell])
	}
	o.admitted[cell] -= req.Bandwidth
	o.releases++
	return nil
}

// denyAdmitter rejects every request.
type denyAdmitter struct{}

func (denyAdmitter) Admit(hexgrid.Coord, cac.Request) cac.Decision {
	return cac.Decision{Accept: false, Score: -1, Outcome: "deny"}
}

func (denyAdmitter) Release(hexgrid.Coord, cac.Request) error {
	return fmt.Errorf("nothing was admitted")
}

func facsAdmitter(t testing.TB) *PerCell {
	t.Helper()
	return NewPerCell(func(hexgrid.Coord) cac.Controller {
		f, err := core.NewFACS(core.DefaultConfig())
		if err != nil {
			t.Fatalf("NewFACS: %v", err)
		}
		return f
	})
}

func TestConfigValidate(t *testing.T) {
	tests := []struct {
		name string
		mut  func(*Config)
	}{
		{name: "negative requests", mut: func(c *Config) { c.Requests = -1 }},
		{name: "zero window", mut: func(c *Config) { c.Window = 0 }},
		{name: "zero holding", mut: func(c *Config) { c.HoldingMean = 0 }},
		{name: "negative rings", mut: func(c *Config) { c.Rings = -1 }},
		{name: "zero cell radius", mut: func(c *Config) { c.CellRadius = 0 }},
		{name: "bad mix", mut: func(c *Config) { c.Mix = traffic.Mix{TextP: 2} }},
		{name: "nil speed", mut: func(c *Config) { c.Speed = nil }},
		{name: "nil angle", mut: func(c *Config) { c.Angle = nil }},
		{name: "zero check interval", mut: func(c *Config) { c.CheckInterval = 0 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := DefaultConfig(10, 1)
			tt.mut(&cfg)
			if err := cfg.Validate(); err == nil {
				t.Error("invalid config accepted")
			}
		})
	}
	if err := DefaultConfig(10, 1).Validate(); err != nil {
		t.Errorf("default config invalid: %v", err)
	}
}

func TestNewRejectsNilAdmitter(t *testing.T) {
	if _, err := New(DefaultConfig(1, 1), nil); err == nil {
		t.Error("nil admitter accepted")
	}
}

func TestOpenAdmitterAcceptsAll(t *testing.T) {
	cfg := DefaultConfig(50, 7)
	adm := newOpenAdmitter()
	s, err := New(cfg, adm)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Accepted != 50 || res.Blocked != 0 {
		t.Errorf("accepted=%d blocked=%d, want 50/0", res.Accepted, res.Blocked)
	}
	if got := res.AcceptedPct(); got != 100 {
		t.Errorf("AcceptedPct = %v, want 100", got)
	}
	// Every admitted BU must be released by the end of the run.
	for cell, bu := range adm.admitted {
		if bu != 0 {
			t.Errorf("cell %v still holds %v BU after run", cell, bu)
		}
	}
}

func TestDenyAdmitterBlocksAll(t *testing.T) {
	s, err := New(DefaultConfig(30, 8), denyAdmitter{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Accepted != 0 || res.Blocked != 30 {
		t.Errorf("accepted=%d blocked=%d, want 0/30", res.Accepted, res.Blocked)
	}
	if got := res.AcceptedPct(); got != 0 {
		t.Errorf("AcceptedPct = %v, want 0", got)
	}
	if res.CentreUtilization != 0 {
		t.Errorf("utilization = %v, want 0", res.CentreUtilization)
	}
}

func TestCallConservation(t *testing.T) {
	// Every accepted call ends exactly one way: completed, dropped, or
	// left the network.
	for _, seed := range []uint64{1, 2, 3, 4, 5} {
		cfg := DefaultConfig(80, seed)
		s, err := New(cfg, facsAdmitter(t))
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Run()
		if err != nil {
			t.Fatal(err)
		}
		if got := res.Completed + res.Dropped + res.LeftNetwork; got != res.Accepted {
			t.Errorf("seed %d: completed(%d)+dropped(%d)+left(%d) = %d != accepted %d",
				seed, res.Completed, res.Dropped, res.LeftNetwork, got, res.Accepted)
		}
		if got := res.Accepted + res.Blocked; got != res.Requests {
			t.Errorf("seed %d: accepted+blocked = %d != requests %d", seed, got, res.Requests)
		}
		if res.HandoffAccepted > res.HandoffAttempts {
			t.Errorf("seed %d: handoff accepted %d > attempts %d", seed, res.HandoffAccepted, res.HandoffAttempts)
		}
	}
}

func TestControllersDrainedAfterRun(t *testing.T) {
	adm := facsAdmitter(t)
	s, err := New(DefaultConfig(60, 11), adm)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	for cell, ctrl := range adm.all() {
		if got := ctrl.Occupancy(); got != 0 {
			t.Errorf("cell %v occupancy after run = %v, want 0", cell, got)
		}
	}
}

func TestRunDeterministic(t *testing.T) {
	run := func() Result {
		s, err := New(DefaultConfig(40, 99), facsAdmitter(t))
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a := run()
	b := run()
	if a.Accepted != b.Accepted || a.Blocked != b.Blocked || a.Dropped != b.Dropped ||
		a.Completed != b.Completed || a.LeftNetwork != b.LeftNetwork ||
		a.HandoffAttempts != b.HandoffAttempts || a.CentreUtilization != b.CentreUtilization {
		t.Errorf("same seed produced different results:\n%+v\n%+v", a, b)
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	run := func(seed uint64) Result {
		s, err := New(DefaultConfig(60, seed), facsAdmitter(t))
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a := run(1)
	b := run(2)
	if a.Accepted == b.Accepted && a.CentreUtilization == b.CentreUtilization &&
		a.HandoffAttempts == b.HandoffAttempts {
		t.Error("different seeds produced identical results; seeding is broken")
	}
}

func TestIdenticalRequestStreamAcrossAdmitters(t *testing.T) {
	// The same seed must offer the same per-class request counts to any
	// admitter, so scheme comparisons are paired.
	runWith := func(adm Admitter) Result {
		s, err := New(DefaultConfig(70, 5), adm)
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	open := runWith(newOpenAdmitter())
	deny := runWith(denyAdmitter{})
	for _, class := range traffic.Classes() {
		if open.RequestsByClass[class] != deny.RequestsByClass[class] {
			t.Errorf("class %v: open saw %d requests, deny saw %d",
				class, open.RequestsByClass[class], deny.RequestsByClass[class])
		}
	}
}

func TestZeroRequests(t *testing.T) {
	s, err := New(DefaultConfig(0, 1), newOpenAdmitter())
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.AcceptedPct() != 100 {
		t.Errorf("AcceptedPct with no requests = %v, want 100", res.AcceptedPct())
	}
}

func TestHandoffsHappen(t *testing.T) {
	// Fast users with a long holding time must generate handoffs.
	cfg := DefaultConfig(40, 3)
	cfg.Speed = Fixed(100)
	cfg.HoldingMean = 400
	s, err := New(cfg, newOpenAdmitter())
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.HandoffAttempts == 0 {
		t.Error("no handoff attempts despite fast long calls")
	}
	if res.LeftNetwork == 0 {
		t.Error("no mobile ever left the 7-cell cluster despite fast long calls")
	}
}

func TestSlowUsersRarelyHandoff(t *testing.T) {
	cfg := DefaultConfig(40, 3)
	cfg.Speed = Fixed(1) // 1 km/h: ~0.28 m/s, cannot cross a 1 km cell
	cfg.HoldingMean = 60
	s, err := New(cfg, newOpenAdmitter())
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.HandoffAttempts > res.Accepted/10 {
		t.Errorf("pedestrians generated %d handoffs for %d calls", res.HandoffAttempts, res.Accepted)
	}
}

func TestUtilizationPositiveUnderLoad(t *testing.T) {
	s, err := New(DefaultConfig(100, 13), facsAdmitter(t))
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.CentreUtilization <= 0 {
		t.Errorf("utilization = %v, want positive", res.CentreUtilization)
	}
	if res.CentreUtilization > 40 {
		t.Errorf("utilization = %v exceeds capacity 40", res.CentreUtilization)
	}
}

func TestPerCellLazyConstruction(t *testing.T) {
	built := 0
	p := NewPerCell(func(hexgrid.Coord) cac.Controller {
		built++
		f, err := core.NewFACS(core.DefaultConfig())
		if err != nil {
			t.Fatalf("NewFACS: %v", err)
		}
		return f
	})
	if built != 0 {
		t.Fatalf("factory ran %d times before use", built)
	}
	a := p.Controller(hexgrid.Coord{})
	b := p.Controller(hexgrid.Coord{})
	if a != b {
		t.Error("same cell returned different controllers")
	}
	if built != 1 {
		t.Errorf("factory ran %d times for one cell", built)
	}
	p.Controller(hexgrid.Coord{Q: 1})
	if built != 2 {
		t.Errorf("factory ran %d times for two cells", built)
	}
}

func TestSamplers(t *testing.T) {
	if got := Fixed(42)(nil); got != 42 {
		t.Errorf("Fixed(42) = %v", got)
	}
}

func TestFixedAngleScenario(t *testing.T) {
	// Pinning the angle must still produce a valid run; heading is the
	// bearing to the BS plus the pinned angle.
	cfg := DefaultConfig(30, 21)
	cfg.Angle = Fixed(0)
	s, err := New(cfg, facsAdmitter(t))
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Accepted+res.Blocked != 30 {
		t.Errorf("accounting broken: %+v", res)
	}
}

func BenchmarkRunFACS50(b *testing.B) {
	for i := 0; i < b.N; i++ {
		adm := NewPerCell(func(hexgrid.Coord) cac.Controller {
			f, err := core.NewFACS(core.DefaultConfig())
			if err != nil {
				b.Fatal(err)
			}
			return f
		})
		s, err := New(DefaultConfig(50, uint64(i)), adm)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := s.Run(); err != nil {
			b.Fatal(err)
		}
	}
}
