package cellsim

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"facsp/internal/cac"
	"facsp/internal/des"
	"facsp/internal/hexgrid"
	"facsp/internal/mobility"
	"facsp/internal/rng"
	"facsp/internal/stats"
	"facsp/internal/traffic"
)

// ShardOptions parameterises the sharded execution engine (RunSharded).
type ShardOptions struct {
	// Groups is the number of cell groups the topology is partitioned
	// into. The grouping is part of the run's definition, NOT a function
	// of the worker count: the same config and group count yield
	// bit-identical results for every worker count. 0 picks the
	// topology's default.
	Groups int
	// Workers is the number of goroutines driving cell groups within an
	// epoch. 0 means min(GOMAXPROCS, Groups). Values above Groups are an
	// error — the extra workers could only idle, which almost always
	// means the caller misjudged the run's parallelism budget.
	Workers int
}

// Resolve validates the options against a topology and returns the
// effective group and worker counts. It is the single authority on the
// workers<=groups rule, shared by RunSharded and the CLI flag layer.
func (o ShardOptions) Resolve(t *hexgrid.Topology) (groups, workers int, err error) {
	if o.Groups < 0 {
		return 0, 0, fmt.Errorf("cellsim: negative group count %d", o.Groups)
	}
	if o.Workers < 0 {
		return 0, 0, fmt.Errorf("cellsim: negative worker count %d", o.Workers)
	}
	groups = o.Groups
	if groups == 0 {
		groups = t.DefaultGroups()
	}
	if groups > t.Cells() {
		groups = t.Cells()
	}
	workers = o.Workers
	if workers == 0 {
		workers = min(runtime.GOMAXPROCS(0), groups)
	}
	if workers > groups {
		return 0, 0, fmt.Errorf("cellsim: %d workers exceed the topology's %d cell groups (workers can only own whole groups; lower -workers or raise the group count)", workers, groups)
	}
	return groups, workers, nil
}

// migration is one cross-cell handoff detected during an epoch and
// deferred to the epoch barrier.
type migration struct {
	c    *call
	at   float64 // crossing-detection time
	dest hexgrid.Coord
	req  cac.Request // handoff request frozen at the crossing
}

// groupState is one cell group's private slice of the simulation: its own
// event heap, arrival and call slabs, and result counters. Nothing in it
// is touched by any other group between barriers, which is what makes the
// parallel phase race-free without locks.
type groupState struct {
	run *shardRun
	id  int32
	sim des.Sim

	arrivals []arrival
	calls    []call

	res             Result
	acceptedByClass [numClassSlots]int
	requestsByClass [numClassSlots]int

	migrations []migration

	// Centre-cell occupancy tracking lives in the group owning the
	// topology's slot-0 cell; the barrier (single-threaded, at a time no
	// group has passed) may also append observations.
	ownsCentre bool
	util       stats.TimeWeighted
	centreBU   float64

	firstErr error
}

func (g *groupState) fail(err error) {
	if g.firstErr == nil {
		g.firstErr = err
	}
}

func (g *groupState) observe(now float64) {
	if err := g.util.Observe(now, g.centreBU); err != nil {
		g.fail(err)
	}
}

// shardRun is the state of one sharded simulation run.
type shardRun struct {
	cfg    Config
	adm    Admitter
	layout hexgrid.Layout
	topo   *hexgrid.Topology
	centre hexgrid.Coord

	slotGroup []int32 // cell slot -> owning group
	groups    []*groupState
	byID      []*call // call id -> call, set at admission, kept until the end
	adaptive  bool
	epoch     float64

	// Counters accumulated by the barrier itself (handoff outcomes).
	barrier Result
}

// group returns the state owning the given cell.
func (r *shardRun) group(cell hexgrid.Coord) *groupState {
	slot, ok := r.topo.Of(cell)
	if !ok {
		return nil
	}
	return r.groups[r.slotGroup[slot]]
}

// RunSharded executes one simulation partitioned cell-group-per-worker:
// the topology is split into opts.Groups contiguous slot ranges, each
// group runs on its own event heap fed by per-cell RNG substreams, and
// calls crossing any cell boundary are exchanged at fixed epoch barriers
// (every CheckInterval of simulated time), where they are re-admitted in
// a canonical (crossing time, call id) order by a single goroutine.
//
// The result is bit-identical for every worker count, and — because the
// epoch grid, the per-cell streams and the barrier order are all
// independent of the partitioning — for every group count as well. It is
// NOT the same realisation as Run: the single-heap engine interleaves all
// cells' randomness through one sequential stream and admits handoffs the
// instant they are detected, while the sharded engine gives every cell its
// own substream and defers handoff admission to the end of the epoch.
// Both are faithful simulations of the same configured network.
//
// Unlike Run, whose headline counters track the tagged centre cell, a
// sharded Result counts every cell's traffic (Requests == NetworkRequests
// and so on): city-scale runs have no single cell of interest.
// CentreUtilization still tracks the topology's slot-0 cell.
//
// The admitter must implement TopologyCompiler so that all per-cell state
// exists before the parallel phase; network-level admitters with shared
// mutable state (such as scc.Controller) are rejected.
func RunSharded(cfg Config, adm Admitter, opts ShardOptions) (Result, error) {
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	if adm == nil {
		return Result{}, fmt.Errorf("cellsim: nil admitter")
	}
	tc, ok := adm.(TopologyCompiler)
	if !ok {
		return Result{}, fmt.Errorf("cellsim: admitter %T cannot be sharded: it does not compile per-cell state (TopologyCompiler); network-level schemes must use the single-heap engine", adm)
	}
	if cfg.Mobility == nil {
		cfg.Mobility = mobility.DefaultSmoothTurn()
	}
	topo := cfg.Topology
	if topo == nil {
		topo = hexgrid.DiskTopology(hexgrid.Coord{}, cfg.Rings)
	}
	nGroups, workers, err := opts.Resolve(topo)
	if err != nil {
		return Result{}, err
	}
	tc.CompileTopology(topo)

	r := &shardRun{
		cfg:    cfg,
		adm:    adm,
		layout: hexgrid.NewLayout(cfg.CellRadius),
		topo:   topo,
		centre: topo.At(0),
		epoch:  cfg.CheckInterval,
	}
	r.slotGroup = make([]int32, topo.Slots())
	parts := topo.Partition(nGroups)
	r.groups = make([]*groupState, len(parts))
	for gi, slots := range parts {
		g := &groupState{run: r, id: int32(gi), ownsCentre: gi == 0}
		g.sim.SetHandler(g)
		r.groups[gi] = g
		for _, slot := range slots {
			r.slotGroup[slot] = int32(gi)
		}
	}
	// Slot 0 is always in the first partition, so group 0 owns the centre.
	r.groups[0].observe(0)

	total, err := r.predraw()
	if err != nil {
		return Result{}, err
	}
	r.byID = make([]*call, total+1)
	r.armObserver()

	if err := r.loop(workers); err != nil {
		return Result{}, err
	}
	return r.gather()
}

// shardStreams resolves the run's traffic into per-cell sources in slot
// order. Unlike the single-heap engine every stream is counted.
func (r *shardRun) shardStreams() []stream {
	return resolveShardStreams(r.cfg, r.topo, r.centre)
}

// resolveShardStreams is the pure form of shardStreams, shared with the
// offered-rate preview of OfferedRates: the per-cell traffic sources of a
// config, in slot order, as a function of nothing but (cfg, topo, centre).
func resolveShardStreams(cfg Config, topo *hexgrid.Topology, centre hexgrid.Coord) []stream {
	perCell := make(map[hexgrid.Coord]CellTraffic, len(cfg.PerCell))
	for _, ct := range cfg.PerCell {
		perCell[ct.Cell] = ct
	}
	out := make([]stream, 0, topo.Cells())
	for slot := 0; slot < topo.Slots(); slot++ {
		cell := topo.At(slot)
		st := stream{
			cell: cell, mix: cfg.Mix,
			speed: cfg.Speed, angle: cfg.Angle, counted: true,
		}
		if len(cfg.PerCell) == 0 {
			if cell == centre {
				st.n = cfg.Requests
			} else {
				st.n = cfg.NeighborRequests
			}
		} else {
			ct, ok := perCell[cell]
			if !ok {
				continue // no new-call traffic offered to this cell
			}
			st.n = ct.Requests
			st.profile = ct.Profile
			st.burst = ct.Burst
			if ct.Mix != nil {
				st.mix = *ct.Mix
			}
			if ct.Speed != nil {
				st.speed = ct.Speed
			}
			if ct.Angle != nil {
				st.angle = ct.Angle
			}
		}
		out = append(out, st)
	}
	return out
}

// predraw realises every cell's request stream from its own RNG substream
// and schedules the arrivals into the owning groups' heaps. Because each
// cell's draws come from rng.Substream(Seed, slot), the realised traffic
// is a pure function of the config — independent of grouping and worker
// count. Returns the total request count (call ids are 1..total, assigned
// in slot order).
func (r *shardRun) predraw() (int, error) {
	streams := r.shardStreams()
	perGroup := make([]int, len(r.groups))
	total := 0
	for _, st := range streams {
		slot, _ := r.topo.Of(st.cell)
		perGroup[r.slotGroup[slot]] += st.n
		total += st.n
	}
	for gi, g := range r.groups {
		g.arrivals = make([]arrival, 0, perGroup[gi])
		g.calls = make([]call, 0, perGroup[gi])
	}

	var src rng.Source
	nextID := uint64(1)
	for _, st := range streams {
		slot, _ := r.topo.Of(st.cell)
		g := r.groups[r.slotGroup[slot]]
		src.Reseed(rng.Substream(r.cfg.Seed, uint64(slot)))

		var env traffic.Envelope
		if st.burst != nil {
			env = st.burst.Envelope(&src, r.cfg.Window)
		}
		for i := 0; i < st.n; i++ {
			at, err := sampleArrival(&src, r.cfg.Window, st.profile, env)
			if err != nil {
				return 0, err
			}
			class := st.mix.Sample(&src)
			speed := st.speed(&src)
			angle := st.angle(&src)
			holding := src.Exp(r.cfg.HoldingMean)
			id := nextID
			nextID++
			g.res.Requests++
			g.requestsByClass[class]++

			x, y := r.randomPointInCell(&src, st.cell)
			moverSeed := src.SplitSeed()

			g.arrivals = append(g.arrivals, arrival{
				id: id, class: class, speed: speed, angle: angle,
				holding: holding, x: x, y: y, moverSeed: moverSeed,
				cell: st.cell, counted: true,
			})
			a := &g.arrivals[len(g.arrivals)-1]
			if _, err := g.sim.AtOp(at, des.Op{Code: opArrival, Arg: a}); err != nil {
				return 0, err
			}
		}
	}
	return total, nil
}

// randomPointInCell mirrors Sim.randomPointInCell for the sharded run;
// both sample the hexagon's tight [-inradius, inradius] x
// [-circumradius, circumradius] bounding box from the layout's geometry.
func (r *shardRun) randomPointInCell(src *rng.Source, cell hexgrid.Coord) (x, y float64) {
	return randomPointInCell(src, r.layout, cell)
}

// randomPointInCell is the pure form, shared with the offered-rate preview
// so its draw sequence stays aligned with the sharded engine's predraw.
func randomPointInCell(src *rng.Source, layout hexgrid.Layout, cell hexgrid.Coord) (x, y float64) {
	cx, cy := layout.Center(cell)
	w := layout.Inradius()
	rad := layout.Size
	for {
		px := src.Uniform(-w, w)
		py := src.Uniform(-rad, rad)
		if layout.CellAt(cx+px, cy+py) == cell {
			return cx + px, cy + py
		}
	}
}

// armObserver wires mid-call bandwidth reallocations to per-call
// accounting, exactly as the single-heap engine does. The callback fires
// synchronously inside Admit/Release at some cell, i.e. on the goroutine
// of the group owning that cell (or the barrier), and a controller only
// reallocates calls at its own cell — so it touches only state the
// calling goroutine already owns.
func (r *shardRun) armObserver() {
	aa, ok := r.adm.(AdaptiveAdmitter)
	if !ok {
		return
	}
	cp, probe := r.adm.(interface {
		Controller(hexgrid.Coord) cac.Controller
	})
	if probe {
		if _, adaptive := cp.Controller(r.centre).(cac.Adaptive); !adaptive {
			return
		}
	}
	r.adaptive = true
	aa.SetBandwidthObserver(func(cell hexgrid.Coord, id uint64, allocBU float64) {
		if id >= uint64(len(r.byID)) {
			return
		}
		c := r.byID[id]
		if c == nil || c.ended {
			return
		}
		g := r.group(cell)
		if g == nil {
			return
		}
		now := g.sim.Now()
		shardAccrue(c, now)
		if cell == r.centre {
			cg := r.groups[0]
			cg.centreBU += allocBU - c.alloc
			cg.observe(now)
		}
		c.alloc = allocBU
	})
}

// loop drives the epoch/barrier cycle: every group runs its own events up
// to the epoch deadline (in parallel, one group per worker at a time),
// then a single-threaded barrier exchanges the boundary crossings. Epochs
// with no events are skipped deterministically by jumping the deadline to
// the grid point covering the earliest pending event.
func (r *shardRun) loop(workers int) error {
	deadline := 0.0
	for {
		next := math.Inf(1)
		for _, g := range r.groups {
			if at, ok := g.sim.NextAt(); ok && at < next {
				next = at
			}
		}
		if math.IsInf(next, 1) {
			return r.err()
		}
		// The epoch grid is absolute (multiples of CheckInterval from 0),
		// so the barrier times do not depend on the grouping.
		deadline = math.Max(deadline+r.epoch, r.epoch*math.Ceil(next/r.epoch))
		if deadline < next {
			// next sits exactly on a grid point already passed over.
			deadline += r.epoch
		}

		if workers <= 1 || len(r.groups) == 1 {
			for _, g := range r.groups {
				g.sim.RunUntil(deadline)
			}
		} else {
			var cursor atomic.Int64
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for {
						i := cursor.Add(1) - 1
						if i >= int64(len(r.groups)) {
							return
						}
						r.groups[i].sim.RunUntil(deadline)
					}
				}()
			}
			wg.Wait()
		}
		if err := r.err(); err != nil {
			return err
		}
		r.exchange(deadline)
		if err := r.err(); err != nil {
			return err
		}
	}
}

// err returns the first group error in group order.
func (r *shardRun) err() error {
	for _, g := range r.groups {
		if g.firstErr != nil {
			return g.firstErr
		}
	}
	return nil
}

// exchange is the epoch barrier: it merges every group's deferred
// boundary crossings, sorts them into the canonical (crossing time, call
// id) order, and performs the handoff admissions single-threaded. A
// migration whose call already ended during the epoch (its holding time
// expired at the source cell before the barrier) is skipped.
func (r *shardRun) exchange(now float64) {
	var all []migration
	for _, g := range r.groups {
		all = append(all, g.migrations...)
		g.migrations = g.migrations[:0]
	}
	if len(all) == 0 {
		return
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].at != all[j].at {
			return all[i].at < all[j].at
		}
		return all[i].c.req.ID < all[j].c.req.ID
	})

	for _, m := range all {
		c := m.c
		if c.ended {
			continue
		}
		src := r.groups[c.grp]
		r.barrier.HandoffAttempts++
		d := r.adm.Admit(m.dest, m.req)
		if !d.Accept {
			r.shardRelease(c, now)
			c.ended = true
			src.sim.Cancel(c.endEvt)
			r.barrier.Dropped++
			continue
		}
		r.shardRelease(c, now)
		r.barrier.HandoffAccepted++

		dst := r.group(m.dest)
		c.cell = m.dest
		c.req = m.req
		c.alloc = d.Granted(m.req)
		if c.cell == r.centre {
			cg := r.groups[0]
			cg.centreBU += c.alloc
			cg.observe(now)
		}
		// Re-home the call: its end event moves from the source group's
		// heap to the destination's. The end time is strictly beyond the
		// barrier — had it been inside the epoch it would have fired
		// already and the migration been skipped.
		src.sim.Cancel(c.endEvt)
		endEvt, err := dst.sim.AtOp(c.endAt, des.Op{Code: opEnd, Arg: c})
		if err != nil {
			dst.fail(err)
			continue
		}
		c.endEvt = endEvt
		c.grp = dst.id
		// Resume position checks on the destination heap, keeping the
		// call's original check cadence where possible.
		checkAt := math.Max(m.at+r.cfg.CheckInterval, now)
		if _, err := dst.sim.AtOp(checkAt, des.Op{Code: opCheck, Arg: c}); err != nil {
			dst.fail(err)
		}
	}
}

// gather merges the groups' counters into the final network-wide Result.
// Integer counters are order-independent; the per-call bandwidth
// integrals are summed in call-id order so the floating-point result is
// canonical.
func (r *shardRun) gather() (Result, error) {
	if err := r.err(); err != nil {
		return Result{}, err
	}
	res := r.barrier
	var acc, req [numClassSlots]int
	for _, g := range r.groups {
		res.Requests += g.res.Requests
		res.Accepted += g.res.Accepted
		res.Blocked += g.res.Blocked
		res.Completed += g.res.Completed
		res.LeftNetwork += g.res.LeftNetwork
		for cl := range acc {
			acc[cl] += g.acceptedByClass[cl]
			req[cl] += g.requestsByClass[cl]
		}
	}
	res.NetworkRequests = res.Requests
	res.NetworkAccepted = res.Accepted

	for _, c := range r.byID {
		if c == nil {
			continue
		}
		res.BandwidthGranted += c.granted
		res.BandwidthRequested += c.requested
	}

	cg := r.groups[0]
	cg.observe(cg.sim.Now()) // flush the final occupancy segment
	if cg.firstErr != nil {
		return Result{}, cg.firstErr
	}
	res.CentreUtilization = cg.util.Mean()

	res.AcceptedByClass = make(map[traffic.Class]int)
	res.RequestsByClass = make(map[traffic.Class]int)
	for _, cl := range traffic.Classes() {
		if n := acc[cl]; n > 0 {
			res.AcceptedByClass[cl] = n
		}
		if n := req[cl]; n > 0 {
			res.RequestsByClass[cl] = n
		}
	}
	return res, nil
}

// RunOp implements des.Handler for one cell group.
func (g *groupState) RunOp(now float64, op des.Op) {
	switch op.Code {
	case opArrival:
		g.arrive(op.Arg.(*arrival), now)
	case opEnd:
		g.endCall(op.Arg.(*call), now)
	case opCheck:
		g.checkPosition(op.Arg.(*call), now)
	}
}

// arrive processes a new-call request at a cell this group owns.
func (g *groupState) arrive(a *arrival, now float64) {
	r := g.run
	bsX, bsY := r.layout.Center(a.cell)
	heading := hexgrid.NormalizeAngle(hexgrid.BearingDeg(a.x, a.y, bsX, bsY) + a.angle)

	req := cac.Request{
		ID:        a.id,
		X:         a.x,
		Y:         a.y,
		Speed:     a.speed,
		Angle:     a.angle,
		Bandwidth: a.class.Bandwidth(),
		RealTime:  a.class.RealTime(),
	}
	d := r.adm.Admit(a.cell, req)
	if !d.Accept {
		g.res.Blocked++
		return
	}
	g.res.Accepted++
	g.acceptedByClass[a.class]++

	g.calls = append(g.calls, call{
		req:     req,
		class:   a.class,
		cell:    a.cell,
		counted: true,
		grp:     g.id,
		endAt:   now + a.holding,
		alloc:   d.Granted(req),
		lastT:   now,
	})
	c := &g.calls[len(g.calls)-1]
	c.moverSrc.Reseed(a.moverSeed)
	c.mover = r.cfg.Mobility.NewMover(mobility.State{
		X: a.x, Y: a.y, SpeedKmh: a.speed, HeadingDeg: heading,
	}, &c.moverSrc)
	// byID entries are written only by the birth cell's owner and read by
	// other goroutines no earlier than the next barrier.
	r.byID[a.id] = c
	if a.cell == r.centre {
		g.centreBU += c.alloc
		g.observe(now)
	}

	endEvt, err := g.sim.AtOp(c.endAt, des.Op{Code: opEnd, Arg: c})
	if err != nil {
		g.fail(err)
		return
	}
	c.endEvt = endEvt
	if !r.cfg.Static {
		if _, err := g.sim.AfterOp(r.cfg.CheckInterval, des.Op{Code: opCheck, Arg: c}); err != nil {
			g.fail(err)
		}
	}
}

// checkPosition advances the mobile; a boundary crossing is deferred to
// the epoch barrier (any crossing, even into a cell this same group owns
// — one rule keeps the realisation independent of the partitioning),
// while leaving the network entirely is resolved locally.
func (g *groupState) checkPosition(c *call, now float64) {
	if c.ended {
		return
	}
	r := g.run
	c.mover.Advance(r.cfg.CheckInterval)
	st := c.mover.State()
	if r.layout.InCell(c.cell, st.X, st.Y) {
		g.scheduleCheck(c)
		return
	}
	newCell := r.layout.CellAt(st.X, st.Y)
	if newCell == c.cell {
		g.scheduleCheck(c)
		return
	}

	if !r.topo.Contains(newCell) {
		r.shardRelease(c, now)
		c.ended = true
		g.sim.Cancel(c.endEvt)
		g.res.LeftNetwork++
		return
	}

	// Freeze the handoff request at the crossing; the barrier admits it.
	bsX, bsY := r.layout.Center(newCell)
	hreq := c.req
	hreq.X, hreq.Y = st.X, st.Y
	hreq.Speed = st.SpeedKmh
	hreq.Angle = hexgrid.AngleOff(st.HeadingDeg, st.X, st.Y, bsX, bsY)
	hreq.Handoff = true
	g.migrations = append(g.migrations, migration{c: c, at: now, dest: newCell, req: hreq})
	// No next check: the call is in transit until the barrier re-homes it.
}

func (g *groupState) scheduleCheck(c *call) {
	if _, err := g.sim.AfterOp(g.run.cfg.CheckInterval, des.Op{Code: opCheck, Arg: c}); err != nil {
		g.fail(err)
	}
}

// endCall completes a call that finished its holding time at its current
// cell. A call in transit (crossing recorded, barrier not reached) ends
// at its source cell and the barrier skips the migration.
func (g *groupState) endCall(c *call, now float64) {
	if c.ended {
		return
	}
	c.ended = true
	r := g.run
	r.shardRelease(c, now)
	g.res.Completed++
}

// shardRelease frees the call's bandwidth at its current cell and closes
// its bandwidth-integral accounting up to now. The caller must own the
// call (its group's goroutine, or the barrier).
func (r *shardRun) shardRelease(c *call, now float64) {
	shardAccrue(c, now)
	g := r.groups[c.grp]
	if err := r.adm.Release(c.cell, c.req); err != nil {
		g.fail(fmt.Errorf("cellsim: release at %v: %w", c.cell, err))
		return
	}
	if c.cell == r.centre {
		cg := r.groups[0]
		cg.centreBU -= c.alloc
		cg.observe(now)
	}
}

// shardAccrue extends the call-local bandwidth integrals up to now at the
// current allocation. Keeping the sums on the call (instead of a shared
// accumulator) lets groups account in parallel; gather sums them in call-
// id order so the final float result is canonical.
func shardAccrue(c *call, now float64) {
	if now > c.lastT {
		c.granted += c.alloc * (now - c.lastT)
		c.requested += c.req.Bandwidth * (now - c.lastT)
	}
	c.lastT = now
}
