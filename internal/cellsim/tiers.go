package cellsim

import (
	"sort"

	"facsp/internal/hexgrid"
	"facsp/internal/hotness"
	"facsp/internal/rng"
	"facsp/internal/traffic"
)

// OfferedRates replays every cell's offered arrival stream through a
// simulation-time hotness tracker with the given half-life (seconds of sim
// time) and returns each slot's peak decayed rate, in arrivals per sim
// second — the sim-time hotness axis the experiment layer assigns
// decision-surface tiers from (experiment.AssignTiers).
//
// The replay draws the same request tuples from the same per-slot RNG
// substreams as RunSharded's predraw, so the rates are a pure function of
// the config alone: independent of worker and group count, and computed
// without running the simulation. Handoff arrivals are not previewed —
// tier assignment keys off offered new-call traffic, which is what the
// scenario's load multipliers shape.
func OfferedRates(cfg Config, halfLife float64) ([]float64, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	topo := cfg.Topology
	if topo == nil {
		topo = hexgrid.DiskTopology(hexgrid.Coord{}, cfg.Rings)
	}
	tr, err := hotness.New(topo.Slots(), halfLife)
	if err != nil {
		return nil, err
	}
	layout := hexgrid.NewLayout(cfg.CellRadius)
	peaks := make([]float64, topo.Slots())
	var src rng.Source
	var times []float64
	for _, st := range resolveShardStreams(cfg, topo, topo.At(0)) {
		slot, _ := topo.Of(st.cell)
		src.Reseed(rng.Substream(cfg.Seed, uint64(slot)))
		var env traffic.Envelope
		if st.burst != nil {
			env = st.burst.Envelope(&src, cfg.Window)
		}
		times = times[:0]
		for i := 0; i < st.n; i++ {
			at, err := sampleArrival(&src, cfg.Window, st.profile, env)
			if err != nil {
				return nil, err
			}
			// Consume the rest of the request tuple in predraw order so the
			// arrival draws match the engine's realisation exactly.
			st.mix.Sample(&src)
			st.speed(&src)
			st.angle(&src)
			src.Exp(cfg.HoldingMean)
			randomPointInCell(&src, layout, st.cell)
			src.SplitSeed()
			times = append(times, at)
		}
		sort.Float64s(times)
		for _, at := range times {
			tr.Record(slot, at)
			if r := tr.Rate(slot, at); r > peaks[slot] {
				peaks[slot] = r
			}
		}
	}
	return peaks, nil
}
