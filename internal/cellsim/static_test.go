package cellsim

import "testing"

func TestStaticModeNoHandoffs(t *testing.T) {
	cfg := DefaultConfig(60, 5)
	cfg.Static = true
	cfg.Speed = Fixed(100) // would generate many handoffs if mobile
	s, err := New(cfg, newOpenAdmitter())
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.HandoffAttempts != 0 {
		t.Errorf("static run produced %d handoff attempts", res.HandoffAttempts)
	}
	if res.LeftNetwork != 0 {
		t.Errorf("static run lost %d mobiles", res.LeftNetwork)
	}
	if res.Completed != res.Accepted {
		t.Errorf("static run: completed %d != accepted %d", res.Completed, res.Accepted)
	}
}

func TestStaticModeDrainsControllers(t *testing.T) {
	cfg := DefaultConfig(40, 6)
	cfg.Static = true
	adm := facsAdmitter(t)
	s, err := New(cfg, adm)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	for cell, ctrl := range adm.all() {
		if got := ctrl.Occupancy(); got != 0 {
			t.Errorf("cell %v occupancy after static run = %v", cell, got)
		}
	}
}

func TestStaticModeDeterministic(t *testing.T) {
	run := func() Result {
		cfg := DefaultConfig(30, 77)
		cfg.Static = true
		s, err := New(cfg, facsAdmitter(t))
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Accepted != b.Accepted || a.Blocked != b.Blocked || a.Completed != b.Completed {
		t.Errorf("static runs diverged: %+v vs %+v", a, b)
	}
}
