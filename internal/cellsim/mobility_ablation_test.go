package cellsim

import (
	"testing"

	"facsp/internal/mobility"
)

// TestMobilityModelAblation runs the same workload under every mobility
// model in the repository: the simulator must stay conservative (capacity
// and call accounting) regardless of how users move, and the models must
// actually change the dynamics (handoff counts differ).
func TestMobilityModelAblation(t *testing.T) {
	models := map[string]mobility.Model{
		"smooth-turn":     mobility.DefaultSmoothTurn(),
		"constant":        mobility.ConstantVelocity{},
		"gauss-markov":    mobility.GaussMarkov{Alpha: 0.85, MeanSpeedKmh: 50, SpeedSigmaKmh: 10, HeadingSigmaDeg: 30},
		"random-waypoint": mobility.RandomWaypoint{FieldRadius: 2500, PauseMeanSeconds: 30},
	}
	handoffs := make(map[string]int, len(models))
	for name, model := range models {
		t.Run(name, func(t *testing.T) {
			cfg := DefaultConfig(60, 17)
			cfg.Mobility = model
			s, err := New(cfg, facsAdmitter(t))
			if err != nil {
				t.Fatal(err)
			}
			res, err := s.Run()
			if err != nil {
				t.Fatal(err)
			}
			if got := res.Completed + res.Dropped + res.LeftNetwork; got != res.Accepted {
				t.Errorf("call conservation broken: %+v", res)
			}
			if res.CentreUtilization > 40 {
				t.Errorf("utilization %v exceeds capacity", res.CentreUtilization)
			}
			handoffs[name] = res.HandoffAttempts
		})
	}
	// The random-waypoint field keeps users inside ~2 cells while
	// constant-velocity users cross the whole cluster: dynamics must
	// differ visibly between at least two models.
	if handoffs["constant"] == handoffs["random-waypoint"] &&
		handoffs["constant"] == handoffs["smooth-turn"] {
		t.Errorf("all mobility models produced identical handoff counts: %v", handoffs)
	}
}
