// Package cellsim is the event-driven cellular network simulator used for
// every figure in the paper's evaluation and for the scenario harness that
// grows the evaluation beyond it.
//
// A simulation instantiates a hexagonal cluster of cells around a tagged
// centre cell, offers connection requests to the base stations over an
// arrival window, and lets admitted mobiles move (handing off between
// cells, possibly out of the network) until every call completes.
// Admission is delegated to an Admitter, so the same run can be repeated
// with FACS, FACS-P, SCC or any baseline, which is how the head-to-head
// figures are produced.
//
// Traffic comes in two shapes. The paper's set-up (Config.Requests /
// Config.NeighborRequests) aims a homogeneous stationary stream at every
// cell and counts the centre cell's admissions. Heterogeneous set-ups
// (Config.PerCell) instead describe one explicit stream per cell — its
// own request count, class mix, mobility samplers, piecewise-linear
// arrival-rate profile, and MMPP on/off burst modulation — which is what
// internal/scenario compiles its declarative scenario files into.
//
// The simulation core is allocation-free in steady state: events are
// typed des ops over pre-drawn arrival and call slabs, per-run state is
// recycled through a pool across replications, and per-cell lookups run
// over a compiled dense topology (hexgrid.Topology) instead of maps.
// Sweep throughput is tracked by internal/perf and cmd/facs-bench.
//
// Two execution engines share that model. Run executes one event loop over
// the whole network — the paper's reference path, bit-for-bit stable since
// the first release. RunSharded (sharded.go) partitions the topology into
// cell groups, runs each group on its own event heap and RNG substream,
// and exchanges cross-cell handoffs at epoch barriers — the engine for
// city-scale topologies of hundreds to thousands of cells.
//
// All randomness flows from the Config seed; runs are reproducible
// bit-for-bit regardless of how the enclosing sweep is sharded.
package cellsim

import (
	"fmt"
	"sync"

	"facsp/internal/cac"
	"facsp/internal/des"
	"facsp/internal/hexgrid"
	"facsp/internal/hotness"
	"facsp/internal/metrics"
	"facsp/internal/mobility"
	"facsp/internal/rng"
	"facsp/internal/stats"
	"facsp/internal/traffic"
)

// Admitter is the network-side admission interface the simulator drives.
// Per-cell controllers are adapted with PerCell; network-level schemes
// (SCC) implement it directly.
type Admitter interface {
	// Admit decides a request at the given cell and reserves bandwidth on
	// acceptance.
	Admit(cell hexgrid.Coord, req cac.Request) cac.Decision
	// Release frees the bandwidth a previously admitted request holds at
	// the given cell.
	Release(cell hexgrid.Coord, req cac.Request) error
}

// AdaptiveAdmitter is implemented by admitters whose controllers can
// change the bandwidth of on-going connections mid-call (internal/adapt).
// The simulator installs an observer to keep its per-call accounting — and
// the received/requested bandwidth QoS metric — in sync.
type AdaptiveAdmitter interface {
	Admitter
	// SetBandwidthObserver installs the network-level observer for
	// mid-call bandwidth changes: cell is where the connection lives, id
	// identifies it and allocBU is its new allocation.
	SetBandwidthObserver(func(cell hexgrid.Coord, id uint64, allocBU float64))
}

// TopologyCompiler is implemented by admitters that can precompile
// per-cell state over a network topology's dense slot numbering
// (hexgrid.Topology). The simulator invokes it once at construction so
// per-cell lookups on the admission hot path become slice indexing
// instead of map access. Compilation must instantiate every cell's state
// eagerly: the sharded runner admits on different cells from different
// worker goroutines, which is only race-free when no lazy first-use
// writes remain.
type TopologyCompiler interface {
	CompileTopology(*hexgrid.Topology)
}

// PerCell adapts a factory of independent per-cell controllers (the shape
// of FACS, FACS-P and the classic baselines) to the Admitter interface.
// When a controller implements cac.Adaptive, its mid-call bandwidth
// changes are forwarded to the observer installed with
// SetBandwidthObserver, tagged with the controller's cell.
//
// Controllers for cells inside a compiled topology (CompileTopology) live
// in a dense slice; cells outside it fall back to a map, so a PerCell
// admitter keeps working for arbitrary coordinates.
type PerCell struct {
	factory func(hexgrid.Coord) cac.Controller
	obs     func(cell hexgrid.Coord, id uint64, allocBU float64)

	topo  *hexgrid.Topology
	dense []cac.Controller
	extra map[hexgrid.Coord]cac.Controller // cells outside the compiled topology
}

var (
	_ Admitter         = (*PerCell)(nil)
	_ AdaptiveAdmitter = (*PerCell)(nil)
	_ TopologyCompiler = (*PerCell)(nil)
)

// NewPerCell builds a PerCell admitter; factory is invoked lazily, once
// per cell.
func NewPerCell(factory func(hexgrid.Coord) cac.Controller) *PerCell {
	return &PerCell{
		factory: factory,
		extra:   make(map[hexgrid.Coord]cac.Controller),
	}
}

// CompileTopology implements TopologyCompiler: controllers for cells of
// the topology are kept in a dense slice, and every cell's controller is
// instantiated eagerly so concurrent Admit calls on distinct cells (the
// sharded runner) never race on lazy first-use writes. Controllers
// created before the call are re-homed, preserving their state.
func (p *PerCell) CompileTopology(t *hexgrid.Topology) {
	if p.topo == t {
		return
	}
	old := p.all()
	p.topo = t
	p.dense = make([]cac.Controller, t.Slots())
	p.extra = make(map[hexgrid.Coord]cac.Controller)
	for cell, c := range old {
		p.put(cell, c)
	}
	for slot := range p.dense {
		if p.dense[slot] == nil {
			cell := t.At(slot)
			c := p.factory(cell)
			p.dense[slot] = c
			p.install(cell, c)
		}
	}
}

// all snapshots every live controller keyed by cell.
func (p *PerCell) all() map[hexgrid.Coord]cac.Controller {
	out := make(map[hexgrid.Coord]cac.Controller, len(p.extra)+len(p.dense))
	for cell, c := range p.extra {
		out[cell] = c
	}
	if p.topo != nil {
		for slot, c := range p.dense {
			if c != nil {
				out[p.topo.At(slot)] = c
			}
		}
	}
	return out
}

// put stores a controller in the dense slice when its cell belongs to the
// compiled topology, the fallback map otherwise.
func (p *PerCell) put(cell hexgrid.Coord, c cac.Controller) {
	if p.topo != nil {
		if slot, ok := p.topo.Of(cell); ok {
			p.dense[slot] = c
			return
		}
	}
	p.extra[cell] = c
}

// Controller returns the cell's controller, creating it on first use.
// Cells of a compiled topology are always pre-created, so for them this is
// a read-only slice lookup.
func (p *PerCell) Controller(cell hexgrid.Coord) cac.Controller {
	if p.topo != nil {
		if slot, ok := p.topo.Of(cell); ok {
			return p.dense[slot]
		}
	}
	c, ok := p.extra[cell]
	if !ok {
		c = p.factory(cell)
		p.extra[cell] = c
		p.install(cell, c)
	}
	return c
}

// SetBandwidthObserver implements AdaptiveAdmitter, wiring existing and
// future adaptive per-cell controllers to the observer.
func (p *PerCell) SetBandwidthObserver(obs func(cell hexgrid.Coord, id uint64, allocBU float64)) {
	p.obs = obs
	for cell, c := range p.all() {
		p.install(cell, c)
	}
}

// install binds an adaptive controller's reallocation events to this
// admitter's observer, tagged with the controller's cell.
func (p *PerCell) install(cell hexgrid.Coord, c cac.Controller) {
	a, ok := c.(cac.Adaptive)
	if !ok {
		return
	}
	if p.obs == nil {
		a.SetBandwidthObserver(nil)
		return
	}
	obs := p.obs
	a.SetBandwidthObserver(func(id uint64, allocBU float64) { obs(cell, id, allocBU) })
}

// Admit implements Admitter.
func (p *PerCell) Admit(cell hexgrid.Coord, req cac.Request) cac.Decision {
	return p.Controller(cell).Admit(req)
}

// Release implements Admitter.
func (p *PerCell) Release(cell hexgrid.Coord, req cac.Request) error {
	return p.Controller(cell).Release(req)
}

// Sampler draws one scalar per call; scenario knobs (pinned speed, pinned
// angle) are expressed as samplers.
type Sampler func(src *rng.Source) float64

// Fixed returns a Sampler that always yields v.
func Fixed(v float64) Sampler { return func(*rng.Source) float64 { return v } }

// Uniform returns a Sampler drawing uniformly from [lo, hi).
func Uniform(lo, hi float64) Sampler {
	return func(src *rng.Source) float64 { return src.Uniform(lo, hi) }
}

// CellTraffic describes the independent request stream offered to one
// cell of a heterogeneous set-up (Config.PerCell). The zero value of every
// optional field inherits the run-wide default from Config.
type CellTraffic struct {
	// Cell is the stream's target cell; it must lie inside the cluster.
	// Streams at the centre cell are the counted, headline-metric traffic;
	// every other stream is background load.
	Cell hexgrid.Coord
	// Requests is the number of requesting connections offered to the cell
	// over the arrival window.
	Requests int
	// Mix overrides the run's service-class distribution; nil inherits
	// Config.Mix.
	Mix *traffic.Mix
	// Profile shapes *when* the stream's requests arrive: arrival times are
	// thinned against this piecewise-linear relative intensity, so a
	// flash-crowd ramp or a diurnal curve concentrates the same number of
	// calls into its busy period. Empty means stationary (uniform) arrivals.
	Profile traffic.RateProfile
	// Burst layers stochastic on/off (MMPP) modulation on top of Profile:
	// one burst envelope is realised per run from the Config seed and
	// multiplies the profile's intensity. Nil means no burst modulation.
	Burst *traffic.MMPP
	// Speed and Angle override the run's mobility samplers for this
	// stream's users; nil inherits Config.Speed / Config.Angle.
	Speed Sampler
	Angle Sampler
}

// Config parameterises one simulation run.
type Config struct {
	// Requests is the number of requesting connections aimed at the
	// centre cell (the x axis of Figs. 7-10).
	Requests int
	// NeighborRequests is the number of requesting connections offered to
	// every non-centre cell over the same window, making the network
	// homogeneous the way the paper's single-number load axis implies.
	// Neighbour traffic contends with handoffs but is not counted in the
	// headline acceptance metric.
	NeighborRequests int
	// PerCell, when non-empty, replaces the homogeneous Requests /
	// NeighborRequests traffic with one explicit stream per listed cell
	// (cells without an entry receive no new-call traffic). It is how
	// internal/scenario expresses hot spots, dead zones, per-cell class
	// mixes, time-varying arrival profiles and bursty MMPP arrivals.
	// Requests and NeighborRequests must be zero when PerCell is set;
	// the headline metric counts the centre cell's streams.
	PerCell []CellTraffic
	// Window is the arrival window in seconds; request arrival times are
	// uniform over it.
	Window float64
	// HoldingMean is the mean exponential call duration in seconds.
	HoldingMean float64
	// Rings is the cluster radius in cells around the tagged centre
	// (1 -> 7 cells, 2 -> 19 cells). Ignored when Topology is set.
	Rings int
	// Topology, when non-nil, replaces the Rings disk with an arbitrary
	// compiled cell set — multiple clusters, irregular shapes, dead zones
	// (the city generator's output). The tagged centre cell is the
	// topology's slot-0 cell; for a DiskTopology that is the disk's
	// centre, so disk configs behave identically either way.
	Topology *hexgrid.Topology
	// CellRadius is the hexagon circumradius in metres.
	CellRadius float64
	// Mix is the service-class distribution.
	Mix traffic.Mix
	// Speed samples each user's speed in km/h.
	Speed Sampler
	// Angle samples each user's initial trajectory angle, in degrees
	// relative to the bearing toward the serving base station (the
	// paper's An; 0 = straight at the BS).
	Angle Sampler
	// Mobility moves admitted users; nil defaults to the paper-aligned
	// SmoothTurn model.
	Mobility mobility.Model
	// CheckInterval is the handoff-detection granularity in seconds.
	CheckInterval float64
	// Static disables spatial motion: admitted calls hold their bandwidth
	// at the admission cell for their whole holding time and never hand
	// off. Use it for decision-level sensitivity sweeps where cell
	// residence differences across scenarios would confound the admission
	// policy under study (see internal/experiment Fig9).
	Static bool
	// Metrics, when non-nil, receives the run's per-cell admission
	// outcomes — admits, blocks (denied new calls) and drops (denied
	// handoffs) by class, indexed by topology slot — the same series the
	// admission daemon (internal/bsd) exports, so long sweeps can be
	// scraped like a live cell bank. The registry must cover at least as
	// many cells as the topology has slots; bumps are single atomic adds,
	// so the event loop stays allocation-free. Only the single-heap Run
	// engine exports; RunSharded ignores the sinks.
	Metrics *metrics.Registry
	// Hotness, when non-nil, records every admission attempt (new call or
	// handoff) at its cell slot on the simulation-time axis, feeding the
	// same exponential-decay demand signal the daemon tracks. Must cover
	// at least the topology's slots.
	Hotness *hotness.Tracker
	// Seed drives all randomness of the run.
	Seed uint64
}

// DefaultConfig returns the Section 4 simulation set-up: the paper's
// traffic mix, uniform 0-120 km/h speeds, uniform angles, a 7-cell
// cluster, and window/holding constants calibrated in EXPERIMENTS.md.
func DefaultConfig(requests int, seed uint64) Config {
	return Config{
		Requests:         requests,
		NeighborRequests: requests,
		Window:           600,
		HoldingMean:      180,
		Rings:            1,
		CellRadius:       1000,
		Mix:              traffic.DefaultMix(),
		Speed:            Uniform(0, 120),
		Angle:            Uniform(-180, 180),
		Mobility:         mobility.DefaultSmoothTurn(),
		CheckInterval:    1,
		Seed:             seed,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.Requests < 0 {
		return fmt.Errorf("cellsim: negative request count %d", c.Requests)
	}
	if c.NeighborRequests < 0 {
		return fmt.Errorf("cellsim: negative neighbour request count %d", c.NeighborRequests)
	}
	if c.Window <= 0 {
		return fmt.Errorf("cellsim: window %v must be positive", c.Window)
	}
	if c.HoldingMean <= 0 {
		return fmt.Errorf("cellsim: holding mean %v must be positive", c.HoldingMean)
	}
	if c.Rings < 0 {
		return fmt.Errorf("cellsim: negative ring count %d", c.Rings)
	}
	if c.CellRadius <= 0 {
		return fmt.Errorf("cellsim: cell radius %v must be positive", c.CellRadius)
	}
	if err := c.Mix.Validate(); err != nil {
		return err
	}
	if c.Speed == nil || c.Angle == nil {
		return fmt.Errorf("cellsim: nil speed or angle sampler")
	}
	if c.CheckInterval <= 0 {
		return fmt.Errorf("cellsim: check interval %v must be positive", c.CheckInterval)
	}
	if len(c.PerCell) > 0 {
		if c.Requests > 0 || c.NeighborRequests > 0 {
			return fmt.Errorf("cellsim: PerCell traffic and Requests/NeighborRequests are mutually exclusive")
		}
		seen := make(map[hexgrid.Coord]bool, len(c.PerCell))
		for i, ct := range c.PerCell {
			if c.Topology != nil {
				if !c.Topology.Contains(ct.Cell) {
					return fmt.Errorf("cellsim: PerCell[%d] cell %v outside the topology", i, ct.Cell)
				}
			} else if hexgrid.Distance(ct.Cell, hexgrid.Coord{}) > c.Rings {
				return fmt.Errorf("cellsim: PerCell[%d] cell %v outside the %d-ring cluster", i, ct.Cell, c.Rings)
			}
			if seen[ct.Cell] {
				return fmt.Errorf("cellsim: duplicate PerCell entry for cell %v", ct.Cell)
			}
			seen[ct.Cell] = true
			if ct.Requests < 0 {
				return fmt.Errorf("cellsim: PerCell[%d] negative request count %d", i, ct.Requests)
			}
			if ct.Mix != nil {
				if err := ct.Mix.Validate(); err != nil {
					return fmt.Errorf("cellsim: PerCell[%d]: %w", i, err)
				}
			}
			if err := ct.Profile.Validate(); err != nil {
				return fmt.Errorf("cellsim: PerCell[%d]: %w", i, err)
			}
			if ct.Burst != nil {
				if err := ct.Burst.Validate(); err != nil {
					return fmt.Errorf("cellsim: PerCell[%d]: %w", i, err)
				}
			}
		}
	}
	return nil
}

// Result aggregates one run's call-level accounting.
type Result struct {
	// Requests is the number of new-call requests offered to the centre
	// cell.
	Requests int
	// Accepted counts new calls admitted at the centre cell.
	Accepted int
	// Blocked counts new calls denied at the centre cell.
	Blocked int
	// HandoffAttempts counts cell-boundary crossings that required
	// admission at a neighbour.
	HandoffAttempts int
	// HandoffAccepted counts successful handoffs.
	HandoffAccepted int
	// Dropped counts on-going calls lost because a handoff was denied.
	Dropped int
	// Completed counts calls that finished their holding time in-network.
	Completed int
	// LeftNetwork counts calls whose mobile exited the simulated cluster.
	LeftNetwork int
	// AcceptedByClass breaks Accepted down per service class.
	AcceptedByClass map[traffic.Class]int
	// RequestsByClass breaks Requests down per service class.
	RequestsByClass map[traffic.Class]int
	// CentreUtilization is the time-weighted mean occupancy of the centre
	// cell in BU over the arrival window.
	CentreUtilization float64
	// NetworkRequests and NetworkAccepted count new-call admissions across
	// the whole cluster, including background neighbour traffic.
	NetworkRequests int
	NetworkAccepted int
	// BandwidthGranted and BandwidthRequested are the time integrals
	// (BU x seconds) of the bandwidth actually allocated to — and requested
	// by — the centre cell's admitted calls over their in-network lifetime.
	// Adaptive schemes (internal/adapt) may serve elastic calls below their
	// requested rate, opening a gap between the two; for every other scheme
	// they are equal.
	BandwidthGranted   float64
	BandwidthRequested float64
}

// AcceptedPct returns the figures' y axis: the percentage of requesting
// connections admitted at the centre cell (100 when no requests were
// offered, matching the plots' starting point).
func (r Result) AcceptedPct() float64 {
	if r.Requests == 0 {
		return 100
	}
	return 100 * float64(r.Accepted) / float64(r.Requests)
}

// DropPct returns the percentage of admitted calls that were later
// dropped at a handoff.
func (r Result) DropPct() float64 {
	if r.Accepted == 0 {
		return 0
	}
	return 100 * float64(r.Dropped) / float64(r.Accepted)
}

// BandwidthRatio returns the degradation-ratio QoS metric: the
// time-weighted mean received/requested bandwidth of the centre cell's
// admitted calls, in [0, 1]. 1 means every call was served at its full
// requested rate for its whole lifetime (always true for non-adaptive
// schemes); lower values measure how hard an adaptive scheme squeezed
// on-going calls to avoid dropping handoffs.
func (r Result) BandwidthRatio() float64 {
	if r.BandwidthRequested == 0 {
		return 1
	}
	return r.BandwidthGranted / r.BandwidthRequested
}

// call is the simulator's per-connection state. Calls live by value in a
// pre-sized per-run slab; events reference them by pointer, which stays
// valid because the slab never grows past its pre-sized capacity.
type call struct {
	req     cac.Request
	class   traffic.Class
	mover   mobility.Mover
	cell    hexgrid.Coord
	counted bool // originated at the centre cell: tracked in Result
	endAt   float64
	ended   bool
	endEvt  des.Handle
	// alloc is the bandwidth currently granted, which adaptive schemes may
	// move below req.Bandwidth mid-call; lastT is the simulation time the
	// bandwidth integrals were last accrued to.
	alloc float64
	lastT float64
	// Sharded-engine fields (sharded.go; unused by the single-heap path):
	// grp is the owning cell group, and granted/requested accumulate the
	// call's bandwidth integrals call-locally so parallel groups never
	// write a shared sum.
	grp       int32
	granted   float64
	requested float64
	// moverSrc is the call's private mobility stream, reseeded per call
	// from the arrival's pre-drawn split seed.
	moverSrc rng.Source
}

// Sim runs cellular admission simulations.
type Sim struct {
	cfg    Config
	adm    Admitter
	layout hexgrid.Layout
	topo   *hexgrid.Topology // compiled dense network topology
	cells  []hexgrid.Coord   // network cells in stable (slot) order
	centre hexgrid.Coord
}

// New constructs a simulator for the given config and admitter.
func New(cfg Config, adm Admitter) (*Sim, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if adm == nil {
		return nil, fmt.Errorf("cellsim: nil admitter")
	}
	if cfg.Mobility == nil {
		cfg.Mobility = mobility.DefaultSmoothTurn()
	}
	topo := cfg.Topology
	if topo == nil {
		// The classic set-up: a disk around the origin in ring order, so
		// slot 0 is the tagged centre and stream scheduling order — and
		// with it every RNG draw — matches the pre-topology simulator
		// bit for bit.
		topo = hexgrid.DiskTopology(hexgrid.Coord{}, cfg.Rings)
	}
	if cfg.Metrics != nil && cfg.Metrics.Cells() < topo.Slots() {
		return nil, fmt.Errorf("cellsim: metrics registry covers %d cells, topology has %d slots",
			cfg.Metrics.Cells(), topo.Slots())
	}
	if cfg.Hotness != nil && cfg.Hotness.Cells() < topo.Slots() {
		return nil, fmt.Errorf("cellsim: hotness tracker covers %d cells, topology has %d slots",
			cfg.Hotness.Cells(), topo.Slots())
	}
	if tc, ok := adm.(TopologyCompiler); ok {
		tc.CompileTopology(topo)
	}
	return &Sim{
		cfg:    cfg,
		adm:    adm,
		layout: hexgrid.NewLayout(cfg.CellRadius),
		topo:   topo,
		cells:  topo.Coords(),
		centre: topo.At(0),
	}, nil
}

// Typed event op codes (des.Op.Code). Args are pointers into the run's
// arrival/call slabs, so scheduling an event never allocates.
const (
	opArrival = iota // Arg: *arrival
	opEnd            // Arg: *call
	opCheck          // Arg: *call
)

// runState is the per-run mutable state: the event queue, the RNG stream,
// the arrival and call slabs, and the accumulating counters. States are
// recycled through runPool across replications, so a long sweep reuses
// the same arenas instead of re-allocating them every run.
type runState struct {
	s        *Sim
	sim      des.Sim
	src      rng.Source
	res      Result
	util     stats.TimeWeighted
	centreBU float64
	firstErr error

	arrivals []arrival
	calls    []call
	// active maps connection ID -> live call for the adaptive observer;
	// IDs are dense (1..totalRequests), so a slice replaces the map. Nil
	// when the admitter cannot reallocate; activeBuf retains the backing
	// array across pooled runs.
	active    []*call
	activeBuf []*call

	// Per-class counters for the centre cell, indexed by traffic.Class.
	acceptedByClass [numClassSlots]int
	requestsByClass [numClassSlots]int
}

// numClassSlots sizes the per-class counter arrays; traffic classes are
// small consecutive integers starting at 1.
const numClassSlots = int(traffic.Video) + 1

var runPool = sync.Pool{New: func() any { return new(runState) }}

// Run executes one complete simulation and returns its accounting.
func (s *Sim) Run() (Result, error) {
	rs := runPool.Get().(*runState)
	res, err := rs.run(s)
	rs.release()
	runPool.Put(rs)
	return res, err
}

// release drops references held by the run so pooled states do not pin
// controllers, movers or the enclosing Sim.
func (rs *runState) release() {
	rs.s = nil
	clear(rs.arrivals)
	clear(rs.calls)
	clear(rs.activeBuf)
	rs.active = nil
	rs.res = Result{}
}

// fail records the run's first error.
func (rs *runState) fail(err error) {
	if rs.firstErr == nil {
		rs.firstErr = err
	}
}

// observe samples the centre-cell occupancy into the utilization integral.
func (rs *runState) observe(now float64) {
	if err := rs.util.Observe(now, rs.centreBU); err != nil {
		rs.fail(err)
	}
}

// RunOp implements des.Handler, dispatching the simulator's typed events.
func (rs *runState) RunOp(now float64, op des.Op) {
	switch op.Code {
	case opArrival:
		rs.arrive(op.Arg.(*arrival), now)
	case opEnd:
		rs.endCall(op.Arg.(*call), now)
	case opCheck:
		rs.checkPosition(op.Arg.(*call), now)
	}
}

// grow returns buf with length n, reusing its capacity when possible.
func grow[T any](buf []T, n int) []T {
	if cap(buf) < n {
		return make([]T, n)
	}
	buf = buf[:n]
	clear(buf)
	return buf
}

// run executes one simulation on a (possibly recycled) runState.
func (rs *runState) run(s *Sim) (Result, error) {
	rs.s = s
	rs.sim.Reset()
	rs.sim.SetHandler(rs)
	rs.src.Reseed(s.cfg.Seed)
	rs.res = Result{}
	rs.util = stats.TimeWeighted{}
	rs.centreBU = 0
	rs.firstErr = nil
	rs.acceptedByClass = [numClassSlots]int{}
	rs.requestsByClass = [numClassSlots]int{}
	rs.observe(0) // open the utilization window at time zero

	// Schedule each cell's request stream in stable order (centre first in
	// the homogeneous set-up, PerCell order otherwise). Drawing all request
	// attributes up front keeps a cell's request stream identical across
	// admitters; every draw — including burst envelopes and thinning
	// rejections — comes sequentially from the run source, so runs are a
	// pure function of the Config seed.
	streams := s.streams()
	total := 0
	for _, st := range streams {
		total += st.n
		if st.counted {
			rs.res.Requests += st.n
		}
	}
	rs.arrivals = grow(rs.arrivals, total)[:0]
	rs.calls = grow(rs.calls, total)[:0]

	// Adaptive admitters reallocate on-going calls mid-flight; track those
	// changes so the bandwidth-ratio metric and the centre occupancy stay
	// exact. The observer fires synchronously from inside Admit/Release,
	// so sim.Now() is the event's timestamp. Tracking is only armed when
	// the controllers can actually reallocate — PerCell implements
	// AdaptiveAdmitter for every scheme, so probe the centre cell's
	// controller (factories are homogeneous across the cluster) to spare
	// non-adaptive sweeps the per-call bookkeeping.
	rs.active = nil
	if aa, ok := s.adm.(AdaptiveAdmitter); ok && s.reallocates() {
		rs.activeBuf = grow(rs.activeBuf, total+1)
		rs.active = rs.activeBuf
		aa.SetBandwidthObserver(func(cell hexgrid.Coord, id uint64, allocBU float64) {
			if id >= uint64(len(rs.active)) {
				return
			}
			c := rs.active[id]
			if c == nil || c.ended {
				return
			}
			now := rs.sim.Now()
			rs.accrue(c, now)
			if cell == s.centre {
				rs.centreBU += allocBU - c.alloc
				rs.observe(now)
			}
			c.alloc = allocBU
		})
	}

	nextID := uint64(1)
	for _, st := range streams {
		var env traffic.Envelope
		if st.burst != nil {
			env = st.burst.Envelope(&rs.src, s.cfg.Window)
		}
		for i := 0; i < st.n; i++ {
			at, err := sampleArrival(&rs.src, s.cfg.Window, st.profile, env)
			if err != nil {
				return Result{}, err
			}
			class := st.mix.Sample(&rs.src)
			speed := st.speed(&rs.src)
			angle := st.angle(&rs.src)
			holding := rs.src.Exp(s.cfg.HoldingMean)
			id := nextID
			nextID++
			if st.counted {
				rs.requestsByClass[class]++
			}

			// Spawn uniformly inside the cell's hexagon by rejection from
			// the bounding box.
			x, y := s.randomPointInCell(&rs.src, st.cell)
			moverSeed := rs.src.SplitSeed()

			rs.arrivals = append(rs.arrivals, arrival{
				id: id, class: class, speed: speed, angle: angle,
				holding: holding, x: x, y: y, moverSeed: moverSeed,
				cell: st.cell, counted: st.counted,
			})
			a := &rs.arrivals[len(rs.arrivals)-1]
			if _, err := rs.sim.AtOp(at, des.Op{Code: opArrival, Arg: a}); err != nil {
				return Result{}, err
			}
		}
	}

	rs.sim.Run(0)
	if rs.firstErr != nil {
		return Result{}, rs.firstErr
	}
	rs.observe(rs.sim.Now()) // flush the final occupancy segment
	rs.res.CentreUtilization = rs.util.Mean()

	// Publish the per-class counters as the Result's maps. Only classes
	// that were actually seen get an entry, matching incremental map
	// accumulation.
	rs.res.AcceptedByClass = make(map[traffic.Class]int)
	rs.res.RequestsByClass = make(map[traffic.Class]int)
	for _, cl := range traffic.Classes() {
		if n := rs.acceptedByClass[cl]; n > 0 {
			rs.res.AcceptedByClass[cl] = n
		}
		if n := rs.requestsByClass[cl]; n > 0 {
			rs.res.RequestsByClass[cl] = n
		}
	}
	return rs.res, nil
}

// arrival is one pre-drawn connection request, stored by value in the
// run's arrival slab.
type arrival struct {
	id        uint64
	class     traffic.Class
	speed     float64
	angle     float64
	holding   float64
	x, y      float64
	moverSeed uint64
	cell      hexgrid.Coord
	counted   bool
}

// stream is one fully resolved per-cell request source: a CellTraffic
// entry with every inherited default filled in, or one cell's slice of the
// homogeneous paper set-up.
type stream struct {
	cell    hexgrid.Coord
	n       int
	mix     traffic.Mix
	profile traffic.RateProfile
	burst   *traffic.MMPP
	speed   Sampler
	angle   Sampler
	counted bool
}

// streams resolves the run's traffic description into per-cell sources in
// stable scheduling order.
func (s *Sim) streams() []stream {
	if len(s.cfg.PerCell) == 0 {
		out := make([]stream, 0, len(s.cells))
		out = append(out, stream{
			cell: s.centre, n: s.cfg.Requests, mix: s.cfg.Mix,
			speed: s.cfg.Speed, angle: s.cfg.Angle, counted: true,
		})
		for _, cell := range s.cells {
			if cell == s.centre {
				continue
			}
			out = append(out, stream{
				cell: cell, n: s.cfg.NeighborRequests, mix: s.cfg.Mix,
				speed: s.cfg.Speed, angle: s.cfg.Angle,
			})
		}
		return out
	}
	out := make([]stream, 0, len(s.cfg.PerCell))
	for _, ct := range s.cfg.PerCell {
		st := stream{
			cell: ct.Cell, n: ct.Requests, mix: s.cfg.Mix,
			profile: ct.Profile, burst: ct.Burst,
			speed: s.cfg.Speed, angle: s.cfg.Angle,
			counted: ct.Cell == s.centre,
		}
		if ct.Mix != nil {
			st.mix = *ct.Mix
		}
		if ct.Speed != nil {
			st.speed = ct.Speed
		}
		if ct.Angle != nil {
			st.angle = ct.Angle
		}
		out = append(out, st)
	}
	return out
}

// maxThinningTries bounds the rejection loop of arrival-time thinning; at
// any sane acceptance probability the bound is unreachable, and hitting it
// surfaces a near-zero-intensity scenario as an error instead of a hang.
const maxThinningTries = 1 << 16

// sampleArrival draws one arrival time in [0, window). Stationary streams
// draw uniformly (exactly the paper's set-up, and exactly one src draw);
// time-varying streams thin a uniform proposal against the product of the
// deterministic rate profile and the realised burst envelope, which is the
// order-statistics view of a non-homogeneous arrival process with the
// offered-call count held fixed.
func sampleArrival(src *rng.Source, window float64, profile traffic.RateProfile, env traffic.Envelope) (float64, error) {
	if env.MaxRate() <= 0 {
		// Degenerate burst realisation (a zero-rate off state covering the
		// whole window): the envelope carries no shape, but a deterministic
		// profile still does — drop only the envelope and keep thinning
		// against the profile.
		env = traffic.Envelope{}
	}
	if len(profile) == 0 && env.Flat() {
		return src.Uniform(0, window), nil
	}
	// Validation guarantees profile.MaxRate() > 0 and the envelope is
	// either flat (1) or has a positive peak here.
	peak := profile.MaxRate() * env.MaxRate()
	for tries := 0; tries < maxThinningTries; tries++ {
		t := src.Uniform(0, window)
		if src.Float64()*peak <= profile.Rate(t)*env.Rate(t) {
			return t, nil
		}
	}
	return 0, fmt.Errorf("cellsim: arrival-time thinning stalled after %d draws (profile/burst intensity ~zero across the window)", maxThinningTries)
}

// arrive processes a new-call request at its cell.
func (rs *runState) arrive(a *arrival, now float64) {
	s := rs.s
	bsX, bsY := s.layout.Center(a.cell)
	heading := hexgrid.NormalizeAngle(hexgrid.BearingDeg(a.x, a.y, bsX, bsY) + a.angle)

	req := cac.Request{
		ID:        a.id,
		X:         a.x,
		Y:         a.y,
		Speed:     a.speed,
		Angle:     a.angle,
		Bandwidth: a.class.Bandwidth(),
		RealTime:  a.class.RealTime(),
	}
	rs.res.NetworkRequests++
	d := s.adm.Admit(a.cell, req)
	rs.exportDecision(a.cell, a.class, d.Accept, false, now)
	if !d.Accept {
		if a.counted {
			rs.res.Blocked++
		}
		return
	}
	rs.res.NetworkAccepted++
	if a.counted {
		rs.res.Accepted++
		rs.acceptedByClass[a.class]++
	}

	// The call slab was pre-sized to the total request count, so the
	// append never reallocates and event pointers into it stay valid.
	rs.calls = append(rs.calls, call{
		req:     req,
		class:   a.class,
		cell:    a.cell,
		counted: a.counted,
		endAt:   now + a.holding,
		alloc:   d.Granted(req), // adaptive schemes may grant below the request
		lastT:   now,
	})
	c := &rs.calls[len(rs.calls)-1]
	c.moverSrc.Reseed(a.moverSeed)
	c.mover = s.cfg.Mobility.NewMover(mobility.State{
		X: a.x, Y: a.y, SpeedKmh: a.speed, HeadingDeg: heading,
	}, &c.moverSrc)
	if rs.active != nil {
		rs.active[a.id] = c
	}
	if a.cell == s.centre {
		rs.centreBU += c.alloc
		rs.observe(now)
	}

	endEvt, err := rs.sim.AtOp(c.endAt, des.Op{Code: opEnd, Arg: c})
	if err != nil {
		rs.fail(err)
		return
	}
	c.endEvt = endEvt
	if !s.cfg.Static {
		rs.scheduleCheck(c)
	}
}

// exportDecision bumps the optional metrics and hotness sinks for one
// admission outcome: accepts count as admits, denied new calls as blocks,
// denied handoffs as drops, and every attempt feeds the hotness signal on
// the simulation-time axis. With no sinks configured this is a two-nil
// check, keeping the default event loop allocation- and branch-cheap.
func (rs *runState) exportDecision(at hexgrid.Coord, class traffic.Class, accept, handoff bool, now float64) {
	s := rs.s
	if s.cfg.Metrics == nil && s.cfg.Hotness == nil {
		return
	}
	slot, ok := s.topo.Of(at)
	if !ok {
		return
	}
	if s.cfg.Hotness != nil {
		s.cfg.Hotness.Record(slot, now)
	}
	if reg := s.cfg.Metrics; reg != nil {
		switch {
		case accept:
			reg.Inc(slot, metrics.Admits(class))
		case handoff:
			reg.Inc(slot, metrics.Drops(class))
		default:
			reg.Inc(slot, metrics.Blocks(class))
		}
	}
}

// scheduleCheck arms the next handoff-detection tick for an active call.
func (rs *runState) scheduleCheck(c *call) {
	if _, err := rs.sim.AfterOp(rs.s.cfg.CheckInterval, des.Op{Code: opCheck, Arg: c}); err != nil {
		rs.fail(err)
	}
}

// checkPosition advances the mobile and performs a handoff if it crossed a
// cell boundary.
func (rs *runState) checkPosition(c *call, now float64) {
	if c.ended {
		return
	}
	s := rs.s
	c.mover.Advance(s.cfg.CheckInterval)
	st := c.mover.State()
	// Fast path: still inside the serving cell's inscribed circle — no
	// boundary crossing possible, so skip the full cube-rounding lookup.
	if s.layout.InCell(c.cell, st.X, st.Y) {
		rs.scheduleCheck(c)
		return
	}
	newCell := s.layout.CellAt(st.X, st.Y)
	if newCell == c.cell {
		rs.scheduleCheck(c)
		return
	}

	if !s.topo.Contains(newCell) {
		// The mobile left the simulated network; its capacity is freed.
		rs.releaseCall(c, now)
		rs.retire(c)
		if c.counted {
			rs.res.LeftNetwork++
		}
		return
	}

	// Handoff: the on-going call requests admission at the new cell.
	if c.counted {
		rs.res.HandoffAttempts++
	}
	bsX, bsY := s.layout.Center(newCell)
	hreq := c.req
	hreq.X, hreq.Y = st.X, st.Y
	hreq.Speed = st.SpeedKmh
	hreq.Angle = hexgrid.AngleOff(st.HeadingDeg, st.X, st.Y, bsX, bsY)
	hreq.Handoff = true

	d := s.adm.Admit(newCell, hreq)
	rs.exportDecision(newCell, c.class, d.Accept, true, now)
	if !d.Accept {
		// Dropped mid-call: the QoS violation the paper's priority scheme
		// is designed to avoid.
		rs.releaseCall(c, now)
		rs.retire(c)
		if c.counted {
			rs.res.Dropped++
		}
		return
	}
	rs.releaseCall(c, now)
	if c.counted {
		rs.res.HandoffAccepted++
	}
	c.cell = newCell
	c.req = hreq
	c.alloc = d.Granted(hreq) // the new cell may grant a degraded rate
	if c.cell == s.centre {
		rs.centreBU += c.alloc
		rs.observe(now)
	}
	rs.scheduleCheck(c)
}

// reallocates reports whether the admitter's controllers can change
// on-going allocations mid-call. Admitters exposing per-cell controllers
// (PerCell) are probed at the centre cell — the factories in this
// repository are homogeneous across the cluster; anything else is assumed
// adaptive if it accepted the observer.
func (s *Sim) reallocates() bool {
	cp, ok := s.adm.(interface {
		Controller(hexgrid.Coord) cac.Controller
	})
	if !ok {
		return true
	}
	_, adaptive := cp.Controller(s.centre).(cac.Adaptive)
	return adaptive
}

// retire removes a finished call from the simulation: it stops tracking
// reallocations for it and cancels its pending end event.
func (rs *runState) retire(c *call) {
	c.ended = true
	if rs.active != nil {
		rs.active[c.req.ID] = nil
	}
	rs.sim.Cancel(c.endEvt)
}

// endCall completes a call that finished its holding time. Cancelling the
// already-fired end event inside retire is a safe no-op.
func (rs *runState) endCall(c *call, now float64) {
	if c.ended {
		return
	}
	rs.retire(c)
	rs.releaseCall(c, now)
	if c.counted {
		rs.res.Completed++
	}
}

// releaseCall frees the call's bandwidth at its current cell, closing its
// bandwidth-integral accounting up to now.
func (rs *runState) releaseCall(c *call, now float64) {
	rs.accrue(c, now)
	if err := rs.s.adm.Release(c.cell, c.req); err != nil {
		rs.fail(fmt.Errorf("cellsim: release at %v: %w", c.cell, err))
		return
	}
	if c.cell == rs.s.centre {
		rs.centreBU -= c.alloc
		rs.observe(now)
	}
}

// accrue extends the result's received/requested bandwidth integrals for
// a counted call up to now at its current allocation.
func (rs *runState) accrue(c *call, now float64) {
	if c.counted && now > c.lastT {
		rs.res.BandwidthGranted += c.alloc * (now - c.lastT)
		rs.res.BandwidthRequested += c.req.Bandwidth * (now - c.lastT)
	}
	c.lastT = now
}

// randomPointInCell draws a uniform point inside the hexagon of the given
// cell by rejection sampling from its tight bounding box: a pointy-top
// hexagon spans exactly [-inradius, inradius] in x and
// [-circumradius, circumradius] in y around its centre, so every point of
// the cell is reachable and the acceptance probability is the fixed
// area ratio (3√3/4)·r·w / (4·r·w) ≈ 0.65. Both half-extents come from
// s.layout — the same geometry the InCell inradius fast path and CellAt
// use — so the sampler cannot drift from the lookup even if cell size
// ever becomes per-topology.
func (s *Sim) randomPointInCell(src *rng.Source, cell hexgrid.Coord) (x, y float64) {
	cx, cy := s.layout.Center(cell)
	w := s.layout.Inradius()
	r := s.layout.Size
	for {
		px := src.Uniform(-w, w)
		py := src.Uniform(-r, r)
		if s.layout.CellAt(cx+px, cy+py) == cell {
			return cx + px, cy + py
		}
	}
}
