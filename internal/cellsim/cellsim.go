// Package cellsim is the event-driven cellular network simulator used for
// every figure in the paper's evaluation and for the scenario harness that
// grows the evaluation beyond it.
//
// A simulation instantiates a hexagonal cluster of cells around a tagged
// centre cell, offers connection requests to the base stations over an
// arrival window, and lets admitted mobiles move (handing off between
// cells, possibly out of the network) until every call completes.
// Admission is delegated to an Admitter, so the same run can be repeated
// with FACS, FACS-P, SCC or any baseline, which is how the head-to-head
// figures are produced.
//
// Traffic comes in two shapes. The paper's set-up (Config.Requests /
// Config.NeighborRequests) aims a homogeneous stationary stream at every
// cell and counts the centre cell's admissions. Heterogeneous set-ups
// (Config.PerCell) instead describe one explicit stream per cell — its
// own request count, class mix, mobility samplers, piecewise-linear
// arrival-rate profile, and MMPP on/off burst modulation — which is what
// internal/scenario compiles its declarative scenario files into.
//
// All randomness flows from the Config seed; runs are reproducible
// bit-for-bit regardless of how the enclosing sweep is sharded.
package cellsim

import (
	"fmt"
	"math"

	"facsp/internal/cac"
	"facsp/internal/des"
	"facsp/internal/hexgrid"
	"facsp/internal/mobility"
	"facsp/internal/rng"
	"facsp/internal/stats"
	"facsp/internal/traffic"
)

// Admitter is the network-side admission interface the simulator drives.
// Per-cell controllers are adapted with PerCell; network-level schemes
// (SCC) implement it directly.
type Admitter interface {
	// Admit decides a request at the given cell and reserves bandwidth on
	// acceptance.
	Admit(cell hexgrid.Coord, req cac.Request) cac.Decision
	// Release frees the bandwidth a previously admitted request holds at
	// the given cell.
	Release(cell hexgrid.Coord, req cac.Request) error
}

// AdaptiveAdmitter is implemented by admitters whose controllers can
// change the bandwidth of on-going connections mid-call (internal/adapt).
// The simulator installs an observer to keep its per-call accounting — and
// the received/requested bandwidth QoS metric — in sync.
type AdaptiveAdmitter interface {
	Admitter
	// SetBandwidthObserver installs the network-level observer for
	// mid-call bandwidth changes: cell is where the connection lives, id
	// identifies it and allocBU is its new allocation.
	SetBandwidthObserver(func(cell hexgrid.Coord, id uint64, allocBU float64))
}

// PerCell adapts a factory of independent per-cell controllers (the shape
// of FACS, FACS-P and the classic baselines) to the Admitter interface.
// When a controller implements cac.Adaptive, its mid-call bandwidth
// changes are forwarded to the observer installed with
// SetBandwidthObserver, tagged with the controller's cell.
type PerCell struct {
	controllers map[hexgrid.Coord]cac.Controller
	factory     func(hexgrid.Coord) cac.Controller
	obs         func(cell hexgrid.Coord, id uint64, allocBU float64)
}

var (
	_ Admitter         = (*PerCell)(nil)
	_ AdaptiveAdmitter = (*PerCell)(nil)
)

// NewPerCell builds a PerCell admitter; factory is invoked lazily, once
// per cell.
func NewPerCell(factory func(hexgrid.Coord) cac.Controller) *PerCell {
	return &PerCell{
		controllers: make(map[hexgrid.Coord]cac.Controller),
		factory:     factory,
	}
}

// Controller returns the cell's controller, creating it on first use.
func (p *PerCell) Controller(cell hexgrid.Coord) cac.Controller {
	c, ok := p.controllers[cell]
	if !ok {
		c = p.factory(cell)
		p.controllers[cell] = c
		p.install(cell, c)
	}
	return c
}

// SetBandwidthObserver implements AdaptiveAdmitter, wiring existing and
// future adaptive per-cell controllers to the observer.
func (p *PerCell) SetBandwidthObserver(obs func(cell hexgrid.Coord, id uint64, allocBU float64)) {
	p.obs = obs
	for cell, c := range p.controllers {
		p.install(cell, c)
	}
}

// install binds an adaptive controller's reallocation events to this
// admitter's observer, tagged with the controller's cell.
func (p *PerCell) install(cell hexgrid.Coord, c cac.Controller) {
	a, ok := c.(cac.Adaptive)
	if !ok {
		return
	}
	if p.obs == nil {
		a.SetBandwidthObserver(nil)
		return
	}
	obs := p.obs
	a.SetBandwidthObserver(func(id uint64, allocBU float64) { obs(cell, id, allocBU) })
}

// Admit implements Admitter.
func (p *PerCell) Admit(cell hexgrid.Coord, req cac.Request) cac.Decision {
	return p.Controller(cell).Admit(req)
}

// Release implements Admitter.
func (p *PerCell) Release(cell hexgrid.Coord, req cac.Request) error {
	return p.Controller(cell).Release(req)
}

// Sampler draws one scalar per call; scenario knobs (pinned speed, pinned
// angle) are expressed as samplers.
type Sampler func(src *rng.Source) float64

// Fixed returns a Sampler that always yields v.
func Fixed(v float64) Sampler { return func(*rng.Source) float64 { return v } }

// Uniform returns a Sampler drawing uniformly from [lo, hi).
func Uniform(lo, hi float64) Sampler {
	return func(src *rng.Source) float64 { return src.Uniform(lo, hi) }
}

// CellTraffic describes the independent request stream offered to one
// cell of a heterogeneous set-up (Config.PerCell). The zero value of every
// optional field inherits the run-wide default from Config.
type CellTraffic struct {
	// Cell is the stream's target cell; it must lie inside the cluster.
	// Streams at the centre cell are the counted, headline-metric traffic;
	// every other stream is background load.
	Cell hexgrid.Coord
	// Requests is the number of requesting connections offered to the cell
	// over the arrival window.
	Requests int
	// Mix overrides the run's service-class distribution; nil inherits
	// Config.Mix.
	Mix *traffic.Mix
	// Profile shapes *when* the stream's requests arrive: arrival times are
	// thinned against this piecewise-linear relative intensity, so a
	// flash-crowd ramp or a diurnal curve concentrates the same number of
	// calls into its busy period. Empty means stationary (uniform) arrivals.
	Profile traffic.RateProfile
	// Burst layers stochastic on/off (MMPP) modulation on top of Profile:
	// one burst envelope is realised per run from the Config seed and
	// multiplies the profile's intensity. Nil means no burst modulation.
	Burst *traffic.MMPP
	// Speed and Angle override the run's mobility samplers for this
	// stream's users; nil inherits Config.Speed / Config.Angle.
	Speed Sampler
	Angle Sampler
}

// Config parameterises one simulation run.
type Config struct {
	// Requests is the number of requesting connections aimed at the
	// centre cell (the x axis of Figs. 7-10).
	Requests int
	// NeighborRequests is the number of requesting connections offered to
	// every non-centre cell over the same window, making the network
	// homogeneous the way the paper's single-number load axis implies.
	// Neighbour traffic contends with handoffs but is not counted in the
	// headline acceptance metric.
	NeighborRequests int
	// PerCell, when non-empty, replaces the homogeneous Requests /
	// NeighborRequests traffic with one explicit stream per listed cell
	// (cells without an entry receive no new-call traffic). It is how
	// internal/scenario expresses hot spots, dead zones, per-cell class
	// mixes, time-varying arrival profiles and bursty MMPP arrivals.
	// Requests and NeighborRequests must be zero when PerCell is set;
	// the headline metric counts the centre cell's streams.
	PerCell []CellTraffic
	// Window is the arrival window in seconds; request arrival times are
	// uniform over it.
	Window float64
	// HoldingMean is the mean exponential call duration in seconds.
	HoldingMean float64
	// Rings is the cluster radius in cells around the tagged centre
	// (1 -> 7 cells, 2 -> 19 cells).
	Rings int
	// CellRadius is the hexagon circumradius in metres.
	CellRadius float64
	// Mix is the service-class distribution.
	Mix traffic.Mix
	// Speed samples each user's speed in km/h.
	Speed Sampler
	// Angle samples each user's initial trajectory angle, in degrees
	// relative to the bearing toward the serving base station (the
	// paper's An; 0 = straight at the BS).
	Angle Sampler
	// Mobility moves admitted users; nil defaults to the paper-aligned
	// SmoothTurn model.
	Mobility mobility.Model
	// CheckInterval is the handoff-detection granularity in seconds.
	CheckInterval float64
	// Static disables spatial motion: admitted calls hold their bandwidth
	// at the admission cell for their whole holding time and never hand
	// off. Use it for decision-level sensitivity sweeps where cell
	// residence differences across scenarios would confound the admission
	// policy under study (see internal/experiment Fig9).
	Static bool
	// Seed drives all randomness of the run.
	Seed uint64
}

// DefaultConfig returns the Section 4 simulation set-up: the paper's
// traffic mix, uniform 0-120 km/h speeds, uniform angles, a 7-cell
// cluster, and window/holding constants calibrated in EXPERIMENTS.md.
func DefaultConfig(requests int, seed uint64) Config {
	return Config{
		Requests:         requests,
		NeighborRequests: requests,
		Window:           600,
		HoldingMean:      180,
		Rings:            1,
		CellRadius:       1000,
		Mix:              traffic.DefaultMix(),
		Speed:            Uniform(0, 120),
		Angle:            Uniform(-180, 180),
		Mobility:         mobility.DefaultSmoothTurn(),
		CheckInterval:    1,
		Seed:             seed,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.Requests < 0 {
		return fmt.Errorf("cellsim: negative request count %d", c.Requests)
	}
	if c.NeighborRequests < 0 {
		return fmt.Errorf("cellsim: negative neighbour request count %d", c.NeighborRequests)
	}
	if c.Window <= 0 {
		return fmt.Errorf("cellsim: window %v must be positive", c.Window)
	}
	if c.HoldingMean <= 0 {
		return fmt.Errorf("cellsim: holding mean %v must be positive", c.HoldingMean)
	}
	if c.Rings < 0 {
		return fmt.Errorf("cellsim: negative ring count %d", c.Rings)
	}
	if c.CellRadius <= 0 {
		return fmt.Errorf("cellsim: cell radius %v must be positive", c.CellRadius)
	}
	if err := c.Mix.Validate(); err != nil {
		return err
	}
	if c.Speed == nil || c.Angle == nil {
		return fmt.Errorf("cellsim: nil speed or angle sampler")
	}
	if c.CheckInterval <= 0 {
		return fmt.Errorf("cellsim: check interval %v must be positive", c.CheckInterval)
	}
	if len(c.PerCell) > 0 {
		if c.Requests > 0 || c.NeighborRequests > 0 {
			return fmt.Errorf("cellsim: PerCell traffic and Requests/NeighborRequests are mutually exclusive")
		}
		seen := make(map[hexgrid.Coord]bool, len(c.PerCell))
		for i, ct := range c.PerCell {
			if hexgrid.Distance(ct.Cell, hexgrid.Coord{}) > c.Rings {
				return fmt.Errorf("cellsim: PerCell[%d] cell %v outside the %d-ring cluster", i, ct.Cell, c.Rings)
			}
			if seen[ct.Cell] {
				return fmt.Errorf("cellsim: duplicate PerCell entry for cell %v", ct.Cell)
			}
			seen[ct.Cell] = true
			if ct.Requests < 0 {
				return fmt.Errorf("cellsim: PerCell[%d] negative request count %d", i, ct.Requests)
			}
			if ct.Mix != nil {
				if err := ct.Mix.Validate(); err != nil {
					return fmt.Errorf("cellsim: PerCell[%d]: %w", i, err)
				}
			}
			if err := ct.Profile.Validate(); err != nil {
				return fmt.Errorf("cellsim: PerCell[%d]: %w", i, err)
			}
			if ct.Burst != nil {
				if err := ct.Burst.Validate(); err != nil {
					return fmt.Errorf("cellsim: PerCell[%d]: %w", i, err)
				}
			}
		}
	}
	return nil
}

// Result aggregates one run's call-level accounting.
type Result struct {
	// Requests is the number of new-call requests offered to the centre
	// cell.
	Requests int
	// Accepted counts new calls admitted at the centre cell.
	Accepted int
	// Blocked counts new calls denied at the centre cell.
	Blocked int
	// HandoffAttempts counts cell-boundary crossings that required
	// admission at a neighbour.
	HandoffAttempts int
	// HandoffAccepted counts successful handoffs.
	HandoffAccepted int
	// Dropped counts on-going calls lost because a handoff was denied.
	Dropped int
	// Completed counts calls that finished their holding time in-network.
	Completed int
	// LeftNetwork counts calls whose mobile exited the simulated cluster.
	LeftNetwork int
	// AcceptedByClass breaks Accepted down per service class.
	AcceptedByClass map[traffic.Class]int
	// RequestsByClass breaks Requests down per service class.
	RequestsByClass map[traffic.Class]int
	// CentreUtilization is the time-weighted mean occupancy of the centre
	// cell in BU over the arrival window.
	CentreUtilization float64
	// NetworkRequests and NetworkAccepted count new-call admissions across
	// the whole cluster, including background neighbour traffic.
	NetworkRequests int
	NetworkAccepted int
	// BandwidthGranted and BandwidthRequested are the time integrals
	// (BU x seconds) of the bandwidth actually allocated to — and requested
	// by — the centre cell's admitted calls over their in-network lifetime.
	// Adaptive schemes (internal/adapt) may serve elastic calls below their
	// requested rate, opening a gap between the two; for every other scheme
	// they are equal.
	BandwidthGranted   float64
	BandwidthRequested float64
}

// AcceptedPct returns the figures' y axis: the percentage of requesting
// connections admitted at the centre cell (100 when no requests were
// offered, matching the plots' starting point).
func (r Result) AcceptedPct() float64 {
	if r.Requests == 0 {
		return 100
	}
	return 100 * float64(r.Accepted) / float64(r.Requests)
}

// DropPct returns the percentage of admitted calls that were later
// dropped at a handoff.
func (r Result) DropPct() float64 {
	if r.Accepted == 0 {
		return 0
	}
	return 100 * float64(r.Dropped) / float64(r.Accepted)
}

// BandwidthRatio returns the degradation-ratio QoS metric: the
// time-weighted mean received/requested bandwidth of the centre cell's
// admitted calls, in [0, 1]. 1 means every call was served at its full
// requested rate for its whole lifetime (always true for non-adaptive
// schemes); lower values measure how hard an adaptive scheme squeezed
// on-going calls to avoid dropping handoffs.
func (r Result) BandwidthRatio() float64 {
	if r.BandwidthRequested == 0 {
		return 1
	}
	return r.BandwidthGranted / r.BandwidthRequested
}

// call is the simulator's per-connection state.
type call struct {
	req     cac.Request
	class   traffic.Class
	mover   mobility.Mover
	cell    hexgrid.Coord
	counted bool // originated at the centre cell: tracked in Result
	endAt   float64
	ended   bool
	endEvt  des.Handle
	// alloc is the bandwidth currently granted, which adaptive schemes may
	// move below req.Bandwidth mid-call; lastT is the simulation time the
	// bandwidth integrals were last accrued to.
	alloc float64
	lastT float64
}

// Sim runs cellular admission simulations.
type Sim struct {
	cfg     Config
	adm     Admitter
	layout  hexgrid.Layout
	cluster map[hexgrid.Coord]bool
	cells   []hexgrid.Coord // cluster cells in stable (ring) order
	centre  hexgrid.Coord
	active  map[uint64]*call // live calls by connection ID, per run
}

// New constructs a simulator for the given config and admitter.
func New(cfg Config, adm Admitter) (*Sim, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if adm == nil {
		return nil, fmt.Errorf("cellsim: nil admitter")
	}
	if cfg.Mobility == nil {
		cfg.Mobility = mobility.DefaultSmoothTurn()
	}
	cells := hexgrid.Disk(hexgrid.Coord{}, cfg.Rings)
	cluster := make(map[hexgrid.Coord]bool, len(cells))
	for _, c := range cells {
		cluster[c] = true
	}
	return &Sim{
		cfg:     cfg,
		adm:     adm,
		layout:  hexgrid.NewLayout(cfg.CellRadius),
		cluster: cluster,
		cells:   cells,
		centre:  hexgrid.Coord{},
	}, nil
}

// Run executes one complete simulation and returns its accounting.
func (s *Sim) Run() (Result, error) {
	src := rng.New(s.cfg.Seed)
	var sim des.Sim
	res := Result{
		AcceptedByClass: make(map[traffic.Class]int),
		RequestsByClass: make(map[traffic.Class]int),
	}
	var util stats.TimeWeighted
	centreBU := 0.0
	var firstErr error
	fail := func(err error) {
		if firstErr == nil {
			firstErr = err
		}
	}
	observe := func(now float64) {
		if err := util.Observe(now, centreBU); err != nil {
			fail(err)
		}
	}
	observe(0) // open the utilization window at time zero

	// Adaptive admitters reallocate on-going calls mid-flight; track those
	// changes so the bandwidth-ratio metric and the centre occupancy stay
	// exact. The observer fires synchronously from inside Admit/Release,
	// so sim.Now() is the event's timestamp. The tracking map is only
	// populated when the controllers can actually reallocate — PerCell
	// implements AdaptiveAdmitter for every scheme, so probe the centre
	// cell's controller (factories are homogeneous across the cluster) to
	// spare non-adaptive sweeps the per-call map churn.
	s.active = nil
	if aa, ok := s.adm.(AdaptiveAdmitter); ok && s.reallocates() {
		s.active = make(map[uint64]*call)
		aa.SetBandwidthObserver(func(cell hexgrid.Coord, id uint64, allocBU float64) {
			c, live := s.active[id]
			if !live || c.ended {
				return
			}
			now := sim.Now()
			s.accrue(&res, c, now)
			if cell == s.centre {
				centreBU += allocBU - c.alloc
				observe(now)
			}
			c.alloc = allocBU
		})
	}

	// Schedule each cell's request stream in stable order (centre first in
	// the homogeneous set-up, PerCell order otherwise). Drawing all request
	// attributes up front keeps a cell's request stream identical across
	// admitters; every draw — including burst envelopes and thinning
	// rejections — comes sequentially from the run source, so runs are a
	// pure function of the Config seed.
	streams := s.streams()
	for _, st := range streams {
		if st.counted {
			res.Requests += st.n
		}
	}
	nextID := uint64(1)
	schedule := func(st stream) error {
		var env traffic.Envelope
		if st.burst != nil {
			env = st.burst.Envelope(src, s.cfg.Window)
		}
		for i := 0; i < st.n; i++ {
			at, err := sampleArrival(src, s.cfg.Window, st.profile, env)
			if err != nil {
				return err
			}
			class := st.mix.Sample(src)
			speed := st.speed(src)
			angle := st.angle(src)
			holding := src.Exp(s.cfg.HoldingMean)
			id := nextID
			nextID++
			if st.counted {
				res.RequestsByClass[class]++
			}

			// Spawn uniformly inside the cell's hexagon by rejection from
			// the bounding box.
			x, y := s.randomPointInCell(src, st.cell)
			moverSrc := src.Split()

			cell, counted := st.cell, st.counted
			if _, err := sim.At(at, func(now float64) {
				s.arrive(&sim, &res, arrival{
					id: id, class: class, speed: speed, angle: angle,
					holding: holding, x: x, y: y, moverSrc: moverSrc,
					cell: cell, counted: counted,
				}, &centreBU, observe, fail, now)
			}); err != nil {
				return err
			}
		}
		return nil
	}
	for _, st := range streams {
		if err := schedule(st); err != nil {
			return Result{}, err
		}
	}

	sim.Run(0)
	if firstErr != nil {
		return Result{}, firstErr
	}
	observe(sim.Now()) // flush the final occupancy segment
	res.CentreUtilization = util.Mean()
	return res, nil
}

type arrival struct {
	id       uint64
	class    traffic.Class
	speed    float64
	angle    float64
	holding  float64
	x, y     float64
	moverSrc *rng.Source
	cell     hexgrid.Coord
	counted  bool
}

// stream is one fully resolved per-cell request source: a CellTraffic
// entry with every inherited default filled in, or one cell's slice of the
// homogeneous paper set-up.
type stream struct {
	cell    hexgrid.Coord
	n       int
	mix     traffic.Mix
	profile traffic.RateProfile
	burst   *traffic.MMPP
	speed   Sampler
	angle   Sampler
	counted bool
}

// streams resolves the run's traffic description into per-cell sources in
// stable scheduling order.
func (s *Sim) streams() []stream {
	if len(s.cfg.PerCell) == 0 {
		out := make([]stream, 0, len(s.cells))
		out = append(out, stream{
			cell: s.centre, n: s.cfg.Requests, mix: s.cfg.Mix,
			speed: s.cfg.Speed, angle: s.cfg.Angle, counted: true,
		})
		for _, cell := range s.cells {
			if cell == s.centre {
				continue
			}
			out = append(out, stream{
				cell: cell, n: s.cfg.NeighborRequests, mix: s.cfg.Mix,
				speed: s.cfg.Speed, angle: s.cfg.Angle,
			})
		}
		return out
	}
	out := make([]stream, 0, len(s.cfg.PerCell))
	for _, ct := range s.cfg.PerCell {
		st := stream{
			cell: ct.Cell, n: ct.Requests, mix: s.cfg.Mix,
			profile: ct.Profile, burst: ct.Burst,
			speed: s.cfg.Speed, angle: s.cfg.Angle,
			counted: ct.Cell == s.centre,
		}
		if ct.Mix != nil {
			st.mix = *ct.Mix
		}
		if ct.Speed != nil {
			st.speed = ct.Speed
		}
		if ct.Angle != nil {
			st.angle = ct.Angle
		}
		out = append(out, st)
	}
	return out
}

// maxThinningTries bounds the rejection loop of arrival-time thinning; at
// any sane acceptance probability the bound is unreachable, and hitting it
// surfaces a near-zero-intensity scenario as an error instead of a hang.
const maxThinningTries = 1 << 16

// sampleArrival draws one arrival time in [0, window). Stationary streams
// draw uniformly (exactly the paper's set-up, and exactly one src draw);
// time-varying streams thin a uniform proposal against the product of the
// deterministic rate profile and the realised burst envelope, which is the
// order-statistics view of a non-homogeneous arrival process with the
// offered-call count held fixed.
func sampleArrival(src *rng.Source, window float64, profile traffic.RateProfile, env traffic.Envelope) (float64, error) {
	if env.MaxRate() <= 0 {
		// Degenerate burst realisation (a zero-rate off state covering the
		// whole window): the envelope carries no shape, but a deterministic
		// profile still does — drop only the envelope and keep thinning
		// against the profile.
		env = traffic.Envelope{}
	}
	if len(profile) == 0 && env.Flat() {
		return src.Uniform(0, window), nil
	}
	// Validation guarantees profile.MaxRate() > 0 and the envelope is
	// either flat (1) or has a positive peak here.
	peak := profile.MaxRate() * env.MaxRate()
	for tries := 0; tries < maxThinningTries; tries++ {
		t := src.Uniform(0, window)
		if src.Float64()*peak <= profile.Rate(t)*env.Rate(t) {
			return t, nil
		}
	}
	return 0, fmt.Errorf("cellsim: arrival-time thinning stalled after %d draws (profile/burst intensity ~zero across the window)", maxThinningTries)
}

// arrive processes a new-call request at its cell.
func (s *Sim) arrive(sim *des.Sim, res *Result, a arrival,
	centreBU *float64, observe func(float64), fail func(error), now float64) {

	bsX, bsY := s.layout.Center(a.cell)
	heading := hexgrid.NormalizeAngle(hexgrid.BearingDeg(a.x, a.y, bsX, bsY) + a.angle)

	req := cac.Request{
		ID:        a.id,
		X:         a.x,
		Y:         a.y,
		Speed:     a.speed,
		Angle:     a.angle,
		Bandwidth: a.class.Bandwidth(),
		RealTime:  a.class.RealTime(),
	}
	res.NetworkRequests++
	d := s.adm.Admit(a.cell, req)
	if !d.Accept {
		if a.counted {
			res.Blocked++
		}
		return
	}
	res.NetworkAccepted++
	if a.counted {
		res.Accepted++
		res.AcceptedByClass[a.class]++
	}

	c := &call{
		req:   req,
		class: a.class,
		mover: s.cfg.Mobility.NewMover(mobility.State{
			X: a.x, Y: a.y, SpeedKmh: a.speed, HeadingDeg: heading,
		}, a.moverSrc),
		cell:    a.cell,
		counted: a.counted,
		endAt:   now + a.holding,
		alloc:   d.Granted(req), // adaptive schemes may grant below the request
		lastT:   now,
	}
	if s.active != nil {
		s.active[a.id] = c
	}
	if a.cell == s.centre {
		*centreBU += c.alloc
		observe(now)
	}

	endEvt, err := sim.At(c.endAt, func(endNow float64) {
		s.endCall(sim, res, c, centreBU, observe, fail, endNow)
	})
	if err != nil {
		fail(err)
		return
	}
	c.endEvt = endEvt
	if !s.cfg.Static {
		s.scheduleCheck(sim, res, c, centreBU, observe, fail)
	}
}

// scheduleCheck arms the next handoff-detection tick for an active call.
func (s *Sim) scheduleCheck(sim *des.Sim, res *Result, c *call,
	centreBU *float64, observe func(float64), fail func(error)) {

	if _, err := sim.After(s.cfg.CheckInterval, func(now float64) {
		s.checkPosition(sim, res, c, centreBU, observe, fail, now)
	}); err != nil {
		fail(err)
	}
}

// checkPosition advances the mobile and performs a handoff if it crossed a
// cell boundary.
func (s *Sim) checkPosition(sim *des.Sim, res *Result, c *call,
	centreBU *float64, observe func(float64), fail func(error), now float64) {

	if c.ended {
		return
	}
	c.mover.Advance(s.cfg.CheckInterval)
	st := c.mover.State()
	newCell := s.layout.CellAt(st.X, st.Y)
	if newCell == c.cell {
		s.scheduleCheck(sim, res, c, centreBU, observe, fail)
		return
	}

	if !s.cluster[newCell] {
		// The mobile left the simulated network; its capacity is freed.
		s.release(res, c, centreBU, observe, fail, now)
		s.retire(c, sim)
		if c.counted {
			res.LeftNetwork++
		}
		return
	}

	// Handoff: the on-going call requests admission at the new cell.
	if c.counted {
		res.HandoffAttempts++
	}
	bsX, bsY := s.layout.Center(newCell)
	hreq := c.req
	hreq.X, hreq.Y = st.X, st.Y
	hreq.Speed = st.SpeedKmh
	hreq.Angle = hexgrid.AngleOff(st.HeadingDeg, st.X, st.Y, bsX, bsY)
	hreq.Handoff = true

	d := s.adm.Admit(newCell, hreq)
	if !d.Accept {
		// Dropped mid-call: the QoS violation the paper's priority scheme
		// is designed to avoid.
		s.release(res, c, centreBU, observe, fail, now)
		s.retire(c, sim)
		if c.counted {
			res.Dropped++
		}
		return
	}
	s.release(res, c, centreBU, observe, fail, now)
	if c.counted {
		res.HandoffAccepted++
	}
	c.cell = newCell
	c.req = hreq
	c.alloc = d.Granted(hreq) // the new cell may grant a degraded rate
	if c.cell == s.centre {
		*centreBU += c.alloc
		observe(now)
	}
	s.scheduleCheck(sim, res, c, centreBU, observe, fail)
}

// reallocates reports whether the admitter's controllers can change
// on-going allocations mid-call. Admitters exposing per-cell controllers
// (PerCell) are probed at the centre cell — the factories in this
// repository are homogeneous across the cluster; anything else is assumed
// adaptive if it accepted the observer.
func (s *Sim) reallocates() bool {
	cp, ok := s.adm.(interface {
		Controller(hexgrid.Coord) cac.Controller
	})
	if !ok {
		return true
	}
	_, adaptive := cp.Controller(s.centre).(cac.Adaptive)
	return adaptive
}

// retire removes a finished call from the simulation: it stops tracking
// reallocations for it and cancels its pending end event.
func (s *Sim) retire(c *call, sim *des.Sim) {
	c.ended = true
	delete(s.active, c.req.ID)
	sim.Cancel(c.endEvt)
}

// endCall completes a call that finished its holding time. Cancelling the
// already-fired end event inside retire is a safe no-op.
func (s *Sim) endCall(sim *des.Sim, res *Result, c *call,
	centreBU *float64, observe func(float64), fail func(error), now float64) {

	if c.ended {
		return
	}
	s.retire(c, sim)
	s.release(res, c, centreBU, observe, fail, now)
	if c.counted {
		res.Completed++
	}
}

// release frees the call's bandwidth at its current cell, closing its
// bandwidth-integral accounting up to now.
func (s *Sim) release(res *Result, c *call,
	centreBU *float64, observe func(float64), fail func(error), now float64) {

	s.accrue(res, c, now)
	if err := s.adm.Release(c.cell, c.req); err != nil {
		fail(fmt.Errorf("cellsim: release at %v: %w", c.cell, err))
		return
	}
	if c.cell == s.centre {
		*centreBU -= c.alloc
		observe(now)
	}
}

// accrue extends the result's received/requested bandwidth integrals for
// a counted call up to now at its current allocation.
func (s *Sim) accrue(res *Result, c *call, now float64) {
	if c.counted && now > c.lastT {
		res.BandwidthGranted += c.alloc * (now - c.lastT)
		res.BandwidthRequested += c.req.Bandwidth * (now - c.lastT)
	}
	c.lastT = now
}

// randomPointInCell draws a uniform point inside the hexagon of the given
// cell by rejection sampling from its bounding box.
func (s *Sim) randomPointInCell(src *rng.Source, cell hexgrid.Coord) (x, y float64) {
	cx, cy := s.layout.Center(cell)
	w := s.cfg.CellRadius * math.Sqrt(3) / 2 // inradius: half width of pointy-top hex
	for {
		px := src.Uniform(-w, w)
		py := src.Uniform(-s.cfg.CellRadius, s.cfg.CellRadius)
		if s.layout.CellAt(cx+px, cy+py) == cell {
			return cx + px, cy + py
		}
	}
}
