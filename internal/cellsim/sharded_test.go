package cellsim

import (
	"reflect"
	"testing"

	"facsp/internal/baseline"
	"facsp/internal/cac"
	"facsp/internal/hexgrid"
)

// cityConfig is a ~1000-cell homogeneous set-up sized so that the
// determinism matrix (several worker and group counts, under -race) stays
// cheap: a short window and holding time, with capacity tight enough to
// exercise blocking, handoff drops and leave-network exits.
func cityConfig(seed uint64) Config {
	cfg := DefaultConfig(2, seed)
	cfg.NeighborRequests = 2
	cfg.Window = 120
	cfg.HoldingMean = 90
	cfg.Topology = hexgrid.DiskTopology(hexgrid.Coord{}, 18) // 1027 cells
	return cfg
}

func tightGuardAdmitter(t *testing.T) *PerCell {
	t.Helper()
	return NewPerCell(func(hexgrid.Coord) cac.Controller {
		c, err := baseline.NewGuardChannel(12, 3)
		if err != nil {
			t.Fatal(err)
		}
		return c
	})
}

// TestRunShardedWorkerDeterminism is the city-scale acceptance check:
// a 1000+-cell run must produce bit-identical metrics for 1, 4 and 8
// workers. Every comparison is exact — including the float bandwidth
// integrals and the centre-utilization mean — because the engine promises
// canonical ordering, not mere statistical agreement.
func TestRunShardedWorkerDeterminism(t *testing.T) {
	cfg := cityConfig(42)
	var want Result
	for i, workers := range []int{1, 4, 8} {
		res, err := RunSharded(cfg, tightGuardAdmitter(t), ShardOptions{Groups: 16, Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if i == 0 {
			want = res
			if res.Requests != 1027*2 {
				t.Fatalf("Requests = %d, want %d", res.Requests, 1027*2)
			}
			if res.Blocked == 0 || res.Dropped == 0 || res.LeftNetwork == 0 {
				t.Fatalf("run exercises too little: blocked=%d dropped=%d left=%d",
					res.Blocked, res.Dropped, res.LeftNetwork)
			}
			continue
		}
		if !reflect.DeepEqual(res, want) {
			t.Errorf("workers=%d diverged:\n got %+v\nwant %+v", workers, res, want)
		}
	}
}

// TestRunShardedGroupCountInvariance pins the stronger contract: the
// grouping is an execution detail, so different group counts replay the
// same realisation bit for bit.
func TestRunShardedGroupCountInvariance(t *testing.T) {
	cfg := cityConfig(7)
	cfg.Topology = hexgrid.DiskTopology(hexgrid.Coord{}, 5) // 91 cells
	cfg.Requests = 6
	cfg.NeighborRequests = 6
	var want Result
	for i, groups := range []int{1, 7, 91} {
		res, err := RunSharded(cfg, tightGuardAdmitter(t), ShardOptions{Groups: groups, Workers: 1})
		if err != nil {
			t.Fatalf("groups=%d: %v", groups, err)
		}
		if i == 0 {
			want = res
			continue
		}
		if !reflect.DeepEqual(res, want) {
			t.Errorf("groups=%d diverged:\n got %+v\nwant %+v", groups, res, want)
		}
	}
}

// TestRunShardedMultiCluster runs a topology of two disjoint clusters with
// a dead corridor between them: calls can only leave the network, never
// tunnel across, and accounting must balance.
func TestRunShardedMultiCluster(t *testing.T) {
	topo, err := hexgrid.NewBuilder().
		AddDisk(hexgrid.Coord{}, 3).
		AddDisk(hexgrid.Coord{Q: 20, R: 0}, 3).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	cfg := cityConfig(11)
	cfg.Topology = topo
	cfg.Requests = 10
	cfg.NeighborRequests = 10

	res, err := RunSharded(cfg, tightGuardAdmitter(t), ShardOptions{Groups: 4, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Requests != topo.Cells()*10 {
		t.Errorf("Requests = %d, want %d", res.Requests, topo.Cells()*10)
	}
	if res.Accepted != res.Completed+res.Dropped+res.LeftNetwork {
		t.Errorf("accepted %d != completed %d + dropped %d + left %d",
			res.Accepted, res.Completed, res.Dropped, res.LeftNetwork)
	}
	if res.Accepted+res.Blocked != res.Requests {
		t.Errorf("accepted %d + blocked %d != requests %d", res.Accepted, res.Blocked, res.Requests)
	}
}

// TestRunShardedAdaptive covers the adaptive-observer path under sharding:
// mid-call reallocations must accrue into the bandwidth integrals and stay
// deterministic across worker counts.
func TestRunShardedAdaptive(t *testing.T) {
	cfg := cityConfig(13)
	cfg.Topology = hexgrid.DiskTopology(hexgrid.Coord{}, 4) // 61 cells
	cfg.Requests = 25
	cfg.NeighborRequests = 25

	newAdm := func() Admitter { return adaptAdmitterT(t) }
	a, err := RunSharded(cfg, newAdm(), ShardOptions{Groups: 8, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunSharded(cfg, newAdm(), ShardOptions{Groups: 8, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Errorf("adaptive sharded run diverged across workers:\n got %+v\nwant %+v", b, a)
	}
	if a.BandwidthRequested <= 0 {
		t.Error("no requested-bandwidth integral accumulated")
	}
	if a.BandwidthGranted > a.BandwidthRequested+1e-6 {
		t.Errorf("granted integral %v exceeds requested %v", a.BandwidthGranted, a.BandwidthRequested)
	}
	if ratio := a.BandwidthRatio(); ratio >= 1 {
		t.Errorf("BandwidthRatio = %v; loaded adaptive run should degrade below 1", ratio)
	}
}

// TestRunShardedRejectsNetworkLevelAdmitter pins the safety rule: an
// admitter without per-cell compiled state (shared mutable network state,
// like scc.Controller) cannot run sharded.
func TestRunShardedRejectsNetworkLevelAdmitter(t *testing.T) {
	cfg := DefaultConfig(5, 1)
	if _, err := RunSharded(cfg, newOpenAdmitter(), ShardOptions{}); err == nil {
		t.Error("admitter without TopologyCompiler accepted")
	}
}

// TestShardOptionsResolve pins the workers<=groups usage rule and the
// defaults.
func TestShardOptionsResolve(t *testing.T) {
	topo := hexgrid.DiskTopology(hexgrid.Coord{}, 2) // 19 cells
	if _, _, err := (ShardOptions{Groups: 4, Workers: 8}).Resolve(topo); err == nil {
		t.Error("8 workers over 4 groups accepted")
	}
	if _, _, err := (ShardOptions{Groups: -1}).Resolve(topo); err == nil {
		t.Error("negative groups accepted")
	}
	if _, _, err := (ShardOptions{Workers: -1}).Resolve(topo); err == nil {
		t.Error("negative workers accepted")
	}
	groups, workers, err := ShardOptions{}.Resolve(topo)
	if err != nil {
		t.Fatal(err)
	}
	if groups != topo.DefaultGroups() {
		t.Errorf("default groups = %d, want %d", groups, topo.DefaultGroups())
	}
	if workers < 1 || workers > groups {
		t.Errorf("default workers = %d outside [1, %d]", workers, groups)
	}
	// More groups than cells clamp to the cell count.
	groups, _, err = ShardOptions{Groups: 1000, Workers: 1}.Resolve(topo)
	if err != nil {
		t.Fatal(err)
	}
	if groups != topo.Cells() {
		t.Errorf("oversized group count resolved to %d, want %d", groups, topo.Cells())
	}
}

// adaptAdmitterT adapts the adapt_test helper signature for reuse here.
func adaptAdmitterT(t *testing.T) Admitter { return adaptAdmitter(t) }
