package cellsim

import (
	"reflect"
	"testing"

	"facsp/internal/hexgrid"
	"facsp/internal/hotness"
	"facsp/internal/metrics"
	"facsp/internal/traffic"
)

func sinkRegistry(t *testing.T, cfg Config) *metrics.Registry {
	t.Helper()
	topo := hexgrid.DiskTopology(hexgrid.Coord{}, cfg.Rings)
	reg, err := metrics.New(topo.Slots())
	if err != nil {
		t.Fatal(err)
	}
	return reg
}

// counterTotals sums a registry's admits, blocks and drops across every
// cell and class.
func counterTotals(reg *metrics.Registry) (admits, blocks, drops uint64) {
	for cell := 0; cell < reg.Cells(); cell++ {
		for _, cl := range traffic.Classes() {
			admits += reg.CounterValue(cell, metrics.Admits(cl))
			blocks += reg.CounterValue(cell, metrics.Blocks(cl))
			drops += reg.CounterValue(cell, metrics.Drops(cl))
		}
	}
	return
}

// TestMetricsSinkStaticIdentity pins the counter semantics against the
// run's own accounting on the static (no handoff) engine, where the
// network-wide totals are exact: every arrival is either an admit or a
// block, and nothing can drop.
func TestMetricsSinkStaticIdentity(t *testing.T) {
	cfg := DefaultConfig(200, 3)
	cfg.Static = true
	cfg.Metrics = sinkRegistry(t, cfg)

	s, err := New(cfg, newOpenAdmitter())
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	admits, blocks, drops := counterTotals(cfg.Metrics)
	if int(admits) != res.NetworkRequests {
		t.Errorf("admits = %d, want NetworkRequests %d", admits, res.NetworkRequests)
	}
	if blocks != 0 || drops != 0 {
		t.Errorf("blocks/drops = %d/%d, want 0/0 under an open admitter", blocks, drops)
	}

	deny := sinkRegistry(t, cfg)
	cfg.Metrics = deny
	s, err = New(cfg, denyAdmitter{})
	if err != nil {
		t.Fatal(err)
	}
	res, err = s.Run()
	if err != nil {
		t.Fatal(err)
	}
	admits, blocks, drops = counterTotals(deny)
	if admits != 0 || drops != 0 {
		t.Errorf("admits/drops = %d/%d, want 0/0 under a deny admitter", admits, drops)
	}
	if int(blocks) != res.NetworkRequests {
		t.Errorf("blocks = %d, want NetworkRequests %d", blocks, res.NetworkRequests)
	}
}

// TestMetricsSinkCountsEveryAdmitCall checks, on the mobile engine, that
// the counter plane sees exactly the admission attempts the admitter saw:
// total bumps == Admit calls, and the hotness tracker saw the same events.
func TestMetricsSinkCountsEveryAdmitCall(t *testing.T) {
	cfg := DefaultConfig(100, 11)
	cfg.Metrics = sinkRegistry(t, cfg)
	hot, err := hotness.New(cfg.Metrics.Cells(), 1e12)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Hotness = hot

	adm := newOpenAdmitter()
	s, err := New(cfg, adm)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	admits, blocks, drops := counterTotals(cfg.Metrics)
	if got, want := admits+blocks+drops, uint64(adm.admits); got != want {
		t.Errorf("total counter bumps = %d, want the admitter's %d Admit calls", got, want)
	}
	if int(admits) < res.NetworkAccepted {
		t.Errorf("admits = %d < NetworkAccepted %d", admits, res.NetworkAccepted)
	}

	// With a half-life vastly longer than the horizon the decay is ~0, so
	// the summed tracker values recover the event count.
	var events float64
	for i := 0; i < hot.Cells(); i++ {
		events += hot.Value(i, cfg.Window)
	}
	if got, want := int(events+0.5), adm.admits; got != want {
		t.Errorf("hotness recorded ~%v events, want %d", events, want)
	}
}

// TestMetricsSinkDeterministic runs the same seed twice into fresh
// registries and requires bit-identical counter planes — the metrics tap
// must not perturb or be perturbed by the run's RNG.
func TestMetricsSinkDeterministic(t *testing.T) {
	run := func() (*metrics.Registry, Result) {
		cfg := DefaultConfig(150, 7)
		cfg.Metrics = sinkRegistry(t, cfg)
		s, err := New(cfg, facsAdmitter(t))
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Run()
		if err != nil {
			t.Fatal(err)
		}
		return cfg.Metrics, res
	}
	regA, resA := run()
	regB, resB := run()
	if !reflect.DeepEqual(resA, resB) {
		t.Fatalf("results diverged: %+v vs %+v", resA, resB)
	}
	snapA, snapB := regA.Snapshot(nil), regB.Snapshot(nil)
	for cell := 0; cell < regA.Cells(); cell++ {
		for _, cl := range traffic.Classes() {
			for _, c := range []metrics.Counter{metrics.Admits(cl), metrics.Blocks(cl), metrics.Drops(cl)} {
				if snapA.Counter(cell, c) != snapB.Counter(cell, c) {
					t.Fatalf("cell %d counter %d diverged: %d vs %d",
						cell, c, snapA.Counter(cell, c), snapB.Counter(cell, c))
				}
			}
		}
	}
}

// TestMetricsSinkDoesNotChangeRun requires the instrumented run to produce
// the exact Result of an uninstrumented one.
func TestMetricsSinkDoesNotChangeRun(t *testing.T) {
	run := func(instrument bool) Result {
		cfg := DefaultConfig(150, 7)
		if instrument {
			cfg.Metrics = sinkRegistry(t, cfg)
			hot, err := hotness.New(cfg.Metrics.Cells(), 30)
			if err != nil {
				t.Fatal(err)
			}
			cfg.Hotness = hot
		}
		s, err := New(cfg, facsAdmitter(t))
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	if plain, tapped := run(false), run(true); !reflect.DeepEqual(plain, tapped) {
		t.Errorf("metrics tap changed the run:\nplain  %+v\ntapped %+v", plain, tapped)
	}
}

func TestMetricsSinkValidation(t *testing.T) {
	cfg := DefaultConfig(10, 1) // Rings 1 -> 7 slots
	small, err := metrics.New(3)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Metrics = small
	if _, err := New(cfg, newOpenAdmitter()); err == nil {
		t.Error("undersized metrics registry accepted")
	}
	cfg.Metrics = nil
	hot, err := hotness.New(3, 30)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Hotness = hot
	if _, err := New(cfg, newOpenAdmitter()); err == nil {
		t.Error("undersized hotness tracker accepted")
	}
}
