// Package cac defines the contract between call-admission controllers and
// the cellular simulator: the request a controller sees, the decision it
// returns, and the Controller interface every scheme in this repository
// (FACS, FACS-P, SCC, the adaptive-bandwidth schemes, and the classic
// baselines) implements.
//
// Keeping the contract in its own package lets the simulator drive any
// scheme without knowing how decisions are made, which is what makes the
// paper's head-to-head comparisons (Figs. 7 and 10) a one-line swap.
package cac

import "fmt"

// Request describes one connection asking for admission at a base station.
type Request struct {
	// ID identifies the connection across its lifetime (admission,
	// handoffs, release). Controllers that track per-connection state,
	// such as the shadow-cluster baseline, key on it; stateless
	// controllers may ignore it.
	ID uint64
	// X, Y is the user's world position in metres at request time.
	// Spatial schemes (SCC) project trajectories from it; the fuzzy
	// controllers ignore it.
	X float64
	Y float64
	// Speed is the user's speed in km/h (the paper's Sp, 0-120).
	Speed float64
	// Angle is the angle in degrees between the user's direction of travel
	// and the direction from the user to the serving base station (the
	// paper's An, -180..180; 0 means heading straight at the BS).
	Angle float64
	// Bandwidth is the requested capacity in bandwidth units (the paper's
	// Sr/Rq; 1 for text, 5 for voice, 10 for video).
	Bandwidth float64
	// MinBandwidth is the lowest bandwidth the connection can tolerate, in
	// BU. Adaptive schemes (internal/adapt) may serve an elastic connection
	// anywhere in [MinBandwidth, Bandwidth], degrading it mid-call to make
	// room for handoffs; 0 leaves the floor to the scheme's per-class
	// degradation ladder. Non-adaptive schemes ignore it.
	MinBandwidth float64
	// RealTime marks delay-sensitive traffic (voice, video). The paper's
	// differentiated-service stage (Ds) routes real-time connections to the
	// RTC counter and the rest to NRTC.
	RealTime bool
	// Handoff is true when the request is an on-going call entering from a
	// neighbouring cell rather than a brand-new call.
	Handoff bool
	// Priority is the optional class of a *requesting* connection
	// (0 = normal). The paper lists requesting-connection priority as
	// future work; controllers may ignore it.
	Priority int
}

// Validate reports whether the request is physically meaningful.
func (r Request) Validate() error {
	if !(r.Bandwidth > 0) { // also rejects NaN
		return fmt.Errorf("cac: request bandwidth %v must be positive", r.Bandwidth)
	}
	if r.Speed < 0 {
		return fmt.Errorf("cac: request speed %v must be non-negative", r.Speed)
	}
	if !(r.MinBandwidth >= 0) { // also rejects NaN
		return fmt.Errorf("cac: request min bandwidth %v must be non-negative", r.MinBandwidth)
	}
	if r.MinBandwidth > r.Bandwidth {
		return fmt.Errorf("cac: request min bandwidth %v exceeds requested bandwidth %v", r.MinBandwidth, r.Bandwidth)
	}
	if r.Priority < 0 {
		return fmt.Errorf("cac: request priority %d must be non-negative", r.Priority)
	}
	return nil
}

// Decision is a controller's verdict on one request.
type Decision struct {
	// Accept is the binary admit/deny outcome.
	Accept bool
	// Score is the controller's confidence in [-1, 1]; for the fuzzy
	// controllers it is the defuzzified A/R value, for crisp schemes it is
	// +1 / -1.
	Score float64
	// Outcome is the human-readable soft outcome, e.g. "A", "WA", "NRNA",
	// "WR", "R" for the fuzzy controllers or a scheme-specific reason such
	// as "guard-channel" for the baselines.
	Outcome string
	// Allocated is the bandwidth actually granted in BU when Accept is
	// true. Adaptive schemes may grant less than Request.Bandwidth (a
	// degraded admission); 0 means the full requested bandwidth was
	// granted, which is what every non-adaptive scheme reports.
	Allocated float64
	// Occupancy is the cell occupancy in BU immediately after the decision
	// took effect, observed atomically with the admission itself (under the
	// controller's lock): an accepted request sees its own grant included,
	// a rejected one sees the occupancy that rejected it. Concurrent
	// drivers need this — a separate Occupancy() call can interleave with
	// other sessions' admissions and misreport the cell state a decision
	// was actually made against. Every controller in this repository
	// reports it.
	Occupancy float64
}

// Granted returns the bandwidth the decision actually reserved for req:
// Allocated when the scheme reported a (possibly degraded) grant, the full
// requested bandwidth otherwise, and 0 when the request was rejected.
func (d Decision) Granted(req Request) float64 {
	if !d.Accept {
		return 0
	}
	if d.Allocated > 0 {
		return d.Allocated
	}
	return req.Bandwidth
}

// Controller is a call-admission controller bound to one base station.
//
// Implementations must be safe for concurrent use; the simulator is
// single-threaded per cell but the TCP daemon in cmd/facs-server serves
// parallel clients against a single Controller.
type Controller interface {
	// Admit decides the request and, when accepting, reserves its
	// bandwidth until the matching Release.
	Admit(req Request) Decision
	// Release returns the bandwidth held by a previously admitted request
	// (the call ended or handed off to another cell). Releasing more than
	// was admitted is a driver bug and returns an error.
	Release(req Request) error
	// Occupancy returns the bandwidth units currently in use.
	Occupancy() float64
	// Capacity returns the total bandwidth units of the base station.
	Capacity() float64
}

// BandwidthObserver is notified whenever an adaptive controller changes
// the bandwidth of an on-going connection mid-call (a degradation or an
// upgrade): id is the connection and allocBU its new allocation. Observers
// are invoked synchronously from inside Admit/Release, possibly while the
// controller's internal lock is held, so they must be fast and must not
// call back into the controller.
type BandwidthObserver func(id uint64, allocBU float64)

// Adaptive is implemented by controllers that can change the bandwidth of
// on-going connections mid-call (internal/adapt). The simulator uses it to
// keep its per-call accounting — and the received/requested bandwidth QoS
// metric — in sync with the controller's reallocations.
type Adaptive interface {
	// SetBandwidthObserver installs the observer for mid-call bandwidth
	// changes, replacing any previous one; nil disables notification.
	SetBandwidthObserver(BandwidthObserver)
}

// Named is implemented by controllers that expose a scheme name for
// reports and plots.
type Named interface {
	SchemeName() string
}

// Name returns the controller's scheme name, falling back to a generic
// label when the controller does not implement Named.
func Name(c Controller) string {
	if n, ok := c.(Named); ok {
		return n.SchemeName()
	}
	return fmt.Sprintf("%T", c)
}
