// Package cac defines the contract between call-admission controllers and
// the cellular simulator: the request a controller sees, the decision it
// returns, and the Controller interface every scheme in this repository
// (FACS, FACS-P, SCC, and the classic baselines) implements.
//
// Keeping the contract in its own package lets the simulator drive any
// scheme without knowing how decisions are made, which is what makes the
// paper's head-to-head comparisons (Figs. 7 and 10) a one-line swap.
package cac

import "fmt"

// Request describes one connection asking for admission at a base station.
type Request struct {
	// ID identifies the connection across its lifetime (admission,
	// handoffs, release). Controllers that track per-connection state,
	// such as the shadow-cluster baseline, key on it; stateless
	// controllers may ignore it.
	ID uint64
	// X, Y is the user's world position in metres at request time.
	// Spatial schemes (SCC) project trajectories from it; the fuzzy
	// controllers ignore it.
	X float64
	Y float64
	// Speed is the user's speed in km/h (the paper's Sp, 0-120).
	Speed float64
	// Angle is the angle in degrees between the user's direction of travel
	// and the direction from the user to the serving base station (the
	// paper's An, -180..180; 0 means heading straight at the BS).
	Angle float64
	// Bandwidth is the requested capacity in bandwidth units (the paper's
	// Sr/Rq; 1 for text, 5 for voice, 10 for video).
	Bandwidth float64
	// RealTime marks delay-sensitive traffic (voice, video). The paper's
	// differentiated-service stage (Ds) routes real-time connections to the
	// RTC counter and the rest to NRTC.
	RealTime bool
	// Handoff is true when the request is an on-going call entering from a
	// neighbouring cell rather than a brand-new call.
	Handoff bool
	// Priority is the optional class of a *requesting* connection
	// (0 = normal). The paper lists requesting-connection priority as
	// future work; controllers may ignore it.
	Priority int
}

// Validate reports whether the request is physically meaningful.
func (r Request) Validate() error {
	if r.Bandwidth <= 0 {
		return fmt.Errorf("cac: request bandwidth %v must be positive", r.Bandwidth)
	}
	if r.Speed < 0 {
		return fmt.Errorf("cac: request speed %v must be non-negative", r.Speed)
	}
	if r.Priority < 0 {
		return fmt.Errorf("cac: request priority %d must be non-negative", r.Priority)
	}
	return nil
}

// Decision is a controller's verdict on one request.
type Decision struct {
	// Accept is the binary admit/deny outcome.
	Accept bool
	// Score is the controller's confidence in [-1, 1]; for the fuzzy
	// controllers it is the defuzzified A/R value, for crisp schemes it is
	// +1 / -1.
	Score float64
	// Outcome is the human-readable soft outcome, e.g. "A", "WA", "NRNA",
	// "WR", "R" for the fuzzy controllers or a scheme-specific reason such
	// as "guard-channel" for the baselines.
	Outcome string
}

// Controller is a call-admission controller bound to one base station.
//
// Implementations must be safe for concurrent use; the simulator is
// single-threaded per cell but the TCP daemon in cmd/facs-server serves
// parallel clients against a single Controller.
type Controller interface {
	// Admit decides the request and, when accepting, reserves its
	// bandwidth until the matching Release.
	Admit(req Request) Decision
	// Release returns the bandwidth held by a previously admitted request
	// (the call ended or handed off to another cell). Releasing more than
	// was admitted is a driver bug and returns an error.
	Release(req Request) error
	// Occupancy returns the bandwidth units currently in use.
	Occupancy() float64
	// Capacity returns the total bandwidth units of the base station.
	Capacity() float64
}

// Named is implemented by controllers that expose a scheme name for
// reports and plots.
type Named interface {
	SchemeName() string
}

// Name returns the controller's scheme name, falling back to a generic
// label when the controller does not implement Named.
func Name(c Controller) string {
	if n, ok := c.(Named); ok {
		return n.SchemeName()
	}
	return fmt.Sprintf("%T", c)
}
