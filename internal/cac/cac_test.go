package cac

import (
	"math"
	"testing"
)

func TestRequestValidate(t *testing.T) {
	tests := []struct {
		name    string
		req     Request
		wantErr bool
	}{
		{name: "valid", req: Request{Speed: 10, Bandwidth: 5}},
		{name: "valid stationary", req: Request{Bandwidth: 1}},
		{name: "zero bandwidth", req: Request{Speed: 10}, wantErr: true},
		{name: "NaN bandwidth", req: Request{Bandwidth: math.NaN()}, wantErr: true},
		{name: "negative bandwidth", req: Request{Bandwidth: -1}, wantErr: true},
		{name: "negative speed", req: Request{Speed: -1, Bandwidth: 1}, wantErr: true},
		{name: "negative priority", req: Request{Bandwidth: 1, Priority: -1}, wantErr: true},
		{name: "priority ok", req: Request{Bandwidth: 1, Priority: 3}},
		{name: "min bandwidth ok", req: Request{Bandwidth: 10, MinBandwidth: 3}},
		{name: "negative min bandwidth", req: Request{Bandwidth: 10, MinBandwidth: -1}, wantErr: true},
		{name: "min bandwidth above request", req: Request{Bandwidth: 5, MinBandwidth: 10}, wantErr: true},
		{name: "NaN min bandwidth", req: Request{Bandwidth: 10, MinBandwidth: math.NaN()}, wantErr: true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := tt.req.Validate()
			if (err != nil) != tt.wantErr {
				t.Errorf("Validate() = %v, wantErr %v", err, tt.wantErr)
			}
		})
	}
}

type namedController struct{ Controller }

func (namedController) SchemeName() string { return "test-scheme" }

type anonController struct{ Controller }

func TestName(t *testing.T) {
	if got := Name(namedController{}); got != "test-scheme" {
		t.Errorf("Name(named) = %q", got)
	}
	if got := Name(anonController{}); got != "cac.anonController" {
		t.Errorf("Name(anon) = %q", got)
	}
}
