package traffic

import (
	"math"
	"testing"
	"testing/quick"

	"facsp/internal/rng"
)

func TestClassProperties(t *testing.T) {
	tests := []struct {
		class    Class
		name     string
		bw       float64
		realTime bool
	}{
		{class: Text, name: "text", bw: 1, realTime: false},
		{class: Voice, name: "voice", bw: 5, realTime: true},
		{class: Video, name: "video", bw: 10, realTime: true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.class.String(); got != tt.name {
				t.Errorf("String = %q, want %q", got, tt.name)
			}
			if got := tt.class.Bandwidth(); got != tt.bw {
				t.Errorf("Bandwidth = %v, want %v", got, tt.bw)
			}
			if got := tt.class.RealTime(); got != tt.realTime {
				t.Errorf("RealTime = %v, want %v", got, tt.realTime)
			}
			if !tt.class.Valid() {
				t.Error("Valid = false")
			}
		})
	}
}

func TestInvalidClass(t *testing.T) {
	c := Class(99)
	if c.Valid() {
		t.Error("Class(99).Valid() = true")
	}
	if got := c.Bandwidth(); got != 0 {
		t.Errorf("invalid class bandwidth = %v, want 0", got)
	}
	if got := c.String(); got != "Class(99)" {
		t.Errorf("invalid class String = %q", got)
	}
}

func TestClassesStable(t *testing.T) {
	cs := Classes()
	want := []Class{Text, Voice, Video}
	if len(cs) != len(want) {
		t.Fatalf("Classes() has %d entries", len(cs))
	}
	for i := range want {
		if cs[i] != want[i] {
			t.Errorf("Classes()[%d] = %v, want %v", i, cs[i], want[i])
		}
	}
}

func TestDefaultMix(t *testing.T) {
	m := DefaultMix()
	if err := m.Validate(); err != nil {
		t.Fatalf("DefaultMix invalid: %v", err)
	}
	// Paper Section 4: mean bandwidth = 0.7*1 + 0.2*5 + 0.1*10 = 2.7 BU.
	if got := m.MeanBandwidth(); math.Abs(got-2.7) > 1e-12 {
		t.Errorf("MeanBandwidth = %v, want 2.7", got)
	}
}

func TestMixValidate(t *testing.T) {
	tests := []struct {
		name    string
		mix     Mix
		wantErr bool
	}{
		{name: "default", mix: DefaultMix()},
		{name: "degenerate", mix: Mix{TextP: 1}},
		{name: "does not sum", mix: Mix{TextP: 0.5, VoiceP: 0.2, VideoP: 0.2}, wantErr: true},
		{name: "negative", mix: Mix{TextP: 1.5, VoiceP: -0.5}, wantErr: true},
		{name: "zero", mix: Mix{}, wantErr: true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := tt.mix.Validate()
			if (err != nil) != tt.wantErr {
				t.Errorf("Validate = %v, wantErr %v", err, tt.wantErr)
			}
		})
	}
}

func TestMixSampleFrequencies(t *testing.T) {
	m := DefaultMix()
	src := rng.New(7)
	const n = 200000
	counts := map[Class]int{}
	for i := 0; i < n; i++ {
		c := m.Sample(src)
		if !c.Valid() {
			t.Fatalf("Sample returned invalid class %v", c)
		}
		counts[c]++
	}
	check := func(c Class, want float64) {
		got := float64(counts[c]) / n
		if math.Abs(got-want) > 0.01 {
			t.Errorf("class %v frequency = %v, want ~%v", c, got, want)
		}
	}
	check(Text, 0.7)
	check(Voice, 0.2)
	check(Video, 0.1)
}

func TestMixSampleDegenerate(t *testing.T) {
	m := Mix{VideoP: 1}
	src := rng.New(9)
	for i := 0; i < 1000; i++ {
		if c := m.Sample(src); c != Video {
			t.Fatalf("degenerate mix sampled %v", c)
		}
	}
}

func TestPoissonArrivalsMeanRate(t *testing.T) {
	p := PoissonArrivals{Rate: 0.25} // one call per 4 time units
	src := rng.New(11)
	const n = 100000
	sum := 0.0
	for i := 0; i < n; i++ {
		dt := p.Next(src)
		if dt < 0 {
			t.Fatalf("negative interarrival %v", dt)
		}
		sum += dt
	}
	mean := sum / n
	if math.Abs(mean-4) > 0.08 {
		t.Errorf("mean interarrival = %v, want ~4", mean)
	}
}

func TestPoissonArrivalsTimes(t *testing.T) {
	p := PoissonArrivals{Rate: 1}
	src := rng.New(12)
	times := p.Times(src, 100)
	if len(times) != 100 {
		t.Fatalf("got %d times", len(times))
	}
	prev := 0.0
	for i, at := range times {
		if at <= prev {
			t.Fatalf("arrival %d at %v not after previous %v", i, at, prev)
		}
		prev = at
	}
}

func TestPoissonArrivalsPanicsOnBadRate(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero rate did not panic")
		}
	}()
	PoissonArrivals{}.Next(rng.New(1))
}

func TestHoldingMean(t *testing.T) {
	h := Holding{Mean: 180}
	src := rng.New(13)
	const n = 100000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += h.Next(src)
	}
	mean := sum / n
	if math.Abs(mean-180) > 3 {
		t.Errorf("mean holding = %v, want ~180", mean)
	}
}

func TestHoldingPanicsOnBadMean(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero mean did not panic")
		}
	}()
	Holding{}.Next(rng.New(1))
}

// Property: samples from any valid mix are always valid classes, and a
// class's bandwidth is positive exactly when the class is valid.
func TestQuickMixSampleValid(t *testing.T) {
	f := func(seed uint64, a, b uint8) bool {
		// Build a random valid mix from two cut points.
		x := float64(a) / 255
		y := float64(b) / 255
		if x > y {
			x, y = y, x
		}
		m := Mix{TextP: x, VoiceP: y - x, VideoP: 1 - y}
		if err := m.Validate(); err != nil {
			return false
		}
		src := rng.New(seed)
		for i := 0; i < 32; i++ {
			c := m.Sample(src)
			if !c.Valid() || c.Bandwidth() <= 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
