package traffic

import (
	"fmt"
	"math"

	"facsp/internal/rng"
)

// ProfilePoint is one knot of a piecewise-linear arrival-rate profile.
type ProfilePoint struct {
	// T is the knot's time in simulation seconds from the start of the
	// arrival window.
	T float64
	// Rate is the relative arrival intensity at T. Rates are relative
	// weights, not absolute calls/second: the simulator holds the total
	// number of offered calls fixed (the figures' load axis) and uses the
	// profile only to shape *when* they arrive, by thinning.
	Rate float64
}

// RateProfile is a piecewise-linear, time-varying arrival-intensity shape:
// the rate at time t is interpolated between the surrounding knots, and
// held constant beyond the first/last knot. An empty profile means a flat
// rate (the stationary arrivals of the paper).
//
// Profiles express diurnal load curves, flash crowds ramping up and
// draining away, and any other deterministic intensity shape; layer an
// MMPP on top for stochastic burstiness.
type RateProfile []ProfilePoint

// Validate reports profile errors: non-finite or negative values,
// out-of-order knots, or a profile that is zero everywhere (which would
// leave arrival times undefined).
func (p RateProfile) Validate() error {
	if len(p) == 0 {
		return nil
	}
	max := 0.0
	for i, pt := range p {
		if math.IsNaN(pt.T) || math.IsInf(pt.T, 0) || pt.T < 0 {
			return fmt.Errorf("traffic: profile knot %d has invalid time %v", i, pt.T)
		}
		if math.IsNaN(pt.Rate) || math.IsInf(pt.Rate, 0) || pt.Rate < 0 {
			return fmt.Errorf("traffic: profile knot %d has invalid rate %v", i, pt.Rate)
		}
		if i > 0 && pt.T <= p[i-1].T {
			return fmt.Errorf("traffic: profile knot %d time %v not after %v", i, pt.T, p[i-1].T)
		}
		if pt.Rate > max {
			max = pt.Rate
		}
	}
	if max == 0 {
		return fmt.Errorf("traffic: profile rate is zero everywhere")
	}
	return nil
}

// Rate returns the interpolated relative intensity at time t. An empty
// profile is flat at 1.
func (p RateProfile) Rate(t float64) float64 {
	if len(p) == 0 {
		return 1
	}
	if t <= p[0].T {
		return p[0].Rate
	}
	for i := 1; i < len(p); i++ {
		if t <= p[i].T {
			a, b := p[i-1], p[i]
			return a.Rate + (b.Rate-a.Rate)*(t-a.T)/(b.T-a.T)
		}
	}
	return p[len(p)-1].Rate
}

// MaxRate returns the profile's peak relative intensity (1 for an empty
// profile), the thinning envelope's upper bound.
func (p RateProfile) MaxRate() float64 {
	if len(p) == 0 {
		return 1
	}
	max := 0.0
	for _, pt := range p {
		if pt.Rate > max {
			max = pt.Rate
		}
	}
	return max
}

// MMPP is a two-state Markov-modulated Poisson process (an interrupted
// Poisson process generalised to a non-zero quiet rate): arrivals are
// modulated by a hidden on/off state with exponentially distributed
// sojourn times. During "on" periods the arrival intensity is multiplied
// by OnRate, during "off" periods by OffRate. It is the classic model for
// bursty call traffic — silence, then a burst, then silence.
//
// Like RateProfile, the rates are relative thinning weights: the total
// number of offered calls is held fixed and the MMPP shapes when they
// arrive. A realised on/off envelope is drawn once per (run, cell) from
// the run's seed, so runs remain bit-reproducible.
type MMPP struct {
	// OnMean and OffMean are the mean sojourn times, in seconds, of the
	// on and off states. Both must be positive.
	OnMean  float64
	OffMean float64
	// OnRate and OffRate are the relative arrival intensities in each
	// state. Both must be finite and non-negative, and at least one must
	// be positive. OnRate > OffRate makes the "on" state the burst.
	OnRate  float64
	OffRate float64
}

// Validate reports MMPP parameter errors.
func (m MMPP) Validate() error {
	for _, f := range []struct {
		name string
		v    float64
	}{
		{"on mean", m.OnMean}, {"off mean", m.OffMean},
		{"on rate", m.OnRate}, {"off rate", m.OffRate},
	} {
		if math.IsNaN(f.v) || math.IsInf(f.v, 0) {
			return fmt.Errorf("traffic: mmpp %s %v is not finite", f.name, f.v)
		}
	}
	if m.OnMean <= 0 || m.OffMean <= 0 {
		return fmt.Errorf("traffic: mmpp sojourn means (%v on, %v off) must be positive", m.OnMean, m.OffMean)
	}
	if m.OnRate < 0 || m.OffRate < 0 {
		return fmt.Errorf("traffic: mmpp rates (%v on, %v off) must be non-negative", m.OnRate, m.OffRate)
	}
	if m.OnRate == 0 && m.OffRate == 0 {
		return fmt.Errorf("traffic: mmpp rates are both zero")
	}
	return nil
}

// Envelope is one realised on/off modulation trajectory over an arrival
// window: a step function of relative arrival intensity.
type Envelope struct {
	// starts[i] is the start time of segment i; rates[i] its intensity.
	// starts[0] is always 0 and starts is strictly increasing.
	starts []float64
	rates  []float64
}

// Envelope draws one on/off trajectory covering [0, window] from src. The
// process starts in the off state with probability OffMean/(OnMean+OffMean)
// (the stationary distribution) and alternates exponential sojourns.
func (m MMPP) Envelope(src *rng.Source, window float64) Envelope {
	on := src.Float64() < m.OnMean/(m.OnMean+m.OffMean)
	var env Envelope
	t := 0.0
	for t < window {
		rate := m.OffRate
		mean := m.OffMean
		if on {
			rate = m.OnRate
			mean = m.OnMean
		}
		env.starts = append(env.starts, t)
		env.rates = append(env.rates, rate)
		t += src.Exp(mean)
		on = !on
	}
	return env
}

// Flat reports whether the envelope is the zero value (no modulation).
func (e Envelope) Flat() bool { return len(e.starts) == 0 }

// Rate returns the envelope's relative intensity at time t. An empty
// (zero-value) envelope is flat at 1.
func (e Envelope) Rate(t float64) float64 {
	if len(e.starts) == 0 {
		return 1
	}
	// Linear scan: envelopes over a simulation window have a handful of
	// segments, and arrival sampling touches them sequentially anyway.
	i := len(e.starts) - 1
	for ; i > 0; i-- {
		if e.starts[i] <= t {
			break
		}
	}
	return e.rates[i]
}

// MaxRate returns the envelope's peak intensity (1 when empty).
func (e Envelope) MaxRate() float64 {
	if len(e.rates) == 0 {
		return 1
	}
	max := 0.0
	for _, r := range e.rates {
		if r > max {
			max = r
		}
	}
	return max
}
