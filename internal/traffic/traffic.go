// Package traffic models the simulated workload: three service classes
// (text, voice, video) with fixed bandwidth demands, a configurable class
// mix, Poisson call arrivals, and exponential call holding times — plus
// the non-stationary extensions the scenario harness layers on top:
// piecewise-linear arrival-rate profiles (RateProfile, for diurnal and
// flash-crowd shapes) and two-state Markov-modulated on/off burst
// processes (MMPP).
//
// The defaults are the parameters of Section 4 of the paper: 70% text at
// 1 BU, 20% voice at 5 BU, 10% video at 10 BU, with stationary arrivals.
package traffic

import (
	"fmt"

	"facsp/internal/rng"
)

// Class is a connection service class.
type Class int

// The paper's three service classes.
const (
	Text Class = iota + 1
	Voice
	Video
)

// Classes lists all service classes in a stable order.
func Classes() []Class { return []Class{Text, Voice, Video} }

// String returns the lower-case class name.
func (c Class) String() string {
	switch c {
	case Text:
		return "text"
	case Voice:
		return "voice"
	case Video:
		return "video"
	default:
		return fmt.Sprintf("Class(%d)", int(c))
	}
}

// Valid reports whether c is a known class.
func (c Class) Valid() bool { return c == Text || c == Voice || c == Video }

// Bandwidth returns the class's requested size in bandwidth units
// (Section 4: 1, 5 and 10 BU).
func (c Class) Bandwidth() float64 {
	switch c {
	case Text:
		return 1
	case Voice:
		return 5
	case Video:
		return 10
	default:
		return 0
	}
}

// RealTime reports whether the class is delay-sensitive. The paper's
// differentiated-service stage routes voice and video to the real-time
// counter (RTC) and text to the non-real-time counter (NRTC).
func (c Class) RealTime() bool { return c == Voice || c == Video }

// Mix is a probability distribution over service classes.
type Mix struct {
	// TextP, VoiceP and VideoP are the class probabilities; they must be
	// non-negative and sum to 1 (within a small tolerance).
	TextP  float64
	VoiceP float64
	VideoP float64
}

// DefaultMix returns the paper's 70/20/10 class mix.
func DefaultMix() Mix { return Mix{TextP: 0.7, VoiceP: 0.2, VideoP: 0.1} }

// Validate checks that the mix is a probability distribution.
func (m Mix) Validate() error {
	if m.TextP < 0 || m.VoiceP < 0 || m.VideoP < 0 {
		return fmt.Errorf("traffic: mix has negative probability: %+v", m)
	}
	sum := m.TextP + m.VoiceP + m.VideoP
	if sum < 1-1e-9 || sum > 1+1e-9 {
		return fmt.Errorf("traffic: mix probabilities sum to %v, want 1", sum)
	}
	return nil
}

// Sample draws a class from the mix.
func (m Mix) Sample(src *rng.Source) Class {
	u := src.Float64()
	switch {
	case u < m.TextP:
		return Text
	case u < m.TextP+m.VoiceP:
		return Voice
	default:
		return Video
	}
}

// MeanBandwidth returns the expected per-call bandwidth of the mix in BU.
func (m Mix) MeanBandwidth() float64 {
	return m.TextP*Text.Bandwidth() + m.VoiceP*Voice.Bandwidth() + m.VideoP*Video.Bandwidth()
}

// PoissonArrivals is a homogeneous Poisson arrival process.
type PoissonArrivals struct {
	// Rate is the arrival intensity in calls per unit time. Must be
	// positive.
	Rate float64
}

// Next returns the interarrival time to the next call.
func (p PoissonArrivals) Next(src *rng.Source) float64 {
	if p.Rate <= 0 {
		panic(fmt.Sprintf("traffic: PoissonArrivals rate %v must be positive", p.Rate))
	}
	return src.Exp(1 / p.Rate)
}

// Times returns the first n arrival times of the process starting at 0.
func (p PoissonArrivals) Times(src *rng.Source, n int) []float64 {
	out := make([]float64, 0, n)
	t := 0.0
	for i := 0; i < n; i++ {
		t += p.Next(src)
		out = append(out, t)
	}
	return out
}

// Holding models exponential call holding times.
type Holding struct {
	// Mean is the mean call duration in simulation seconds. Must be
	// positive.
	Mean float64
}

// Next draws a holding time.
func (h Holding) Next(src *rng.Source) float64 {
	if h.Mean <= 0 {
		panic(fmt.Sprintf("traffic: Holding mean %v must be positive", h.Mean))
	}
	return src.Exp(h.Mean)
}
