package traffic

import (
	"math"
	"reflect"
	"testing"

	"facsp/internal/rng"
)

func TestRateProfileValidate(t *testing.T) {
	tests := []struct {
		name    string
		p       RateProfile
		wantErr bool
	}{
		{name: "empty is flat", p: nil},
		{name: "single knot", p: RateProfile{{T: 0, Rate: 2}}},
		{name: "ramp", p: RateProfile{{T: 0, Rate: 1}, {T: 300, Rate: 4}, {T: 600, Rate: 1}}},
		{name: "NaN rate", p: RateProfile{{T: 0, Rate: math.NaN()}}, wantErr: true},
		{name: "Inf rate", p: RateProfile{{T: 0, Rate: math.Inf(1)}}, wantErr: true},
		{name: "negative rate", p: RateProfile{{T: 0, Rate: -1}}, wantErr: true},
		{name: "NaN time", p: RateProfile{{T: math.NaN(), Rate: 1}}, wantErr: true},
		{name: "negative time", p: RateProfile{{T: -5, Rate: 1}}, wantErr: true},
		{name: "out of order", p: RateProfile{{T: 10, Rate: 1}, {T: 5, Rate: 1}}, wantErr: true},
		{name: "duplicate time", p: RateProfile{{T: 10, Rate: 1}, {T: 10, Rate: 2}}, wantErr: true},
		{name: "all zero", p: RateProfile{{T: 0, Rate: 0}, {T: 10, Rate: 0}}, wantErr: true},
	}
	for _, tt := range tests {
		if err := tt.p.Validate(); (err != nil) != tt.wantErr {
			t.Errorf("%s: Validate() = %v, wantErr %v", tt.name, err, tt.wantErr)
		}
	}
}

func TestRateProfileRate(t *testing.T) {
	p := RateProfile{{T: 100, Rate: 1}, {T: 200, Rate: 3}, {T: 400, Rate: 0}}
	tests := []struct{ t, want float64 }{
		{0, 1},     // held flat before the first knot
		{100, 1},   // at the first knot
		{150, 2},   // midpoint of the 1->3 ramp
		{200, 3},   // peak
		{300, 1.5}, // midpoint of the 3->0 ramp
		{400, 0},   // final knot
		{999, 0},   // held flat after the last knot
	}
	for _, tt := range tests {
		if got := p.Rate(tt.t); math.Abs(got-tt.want) > 1e-12 {
			t.Errorf("Rate(%v) = %v, want %v", tt.t, got, tt.want)
		}
	}
	if got := RateProfile(nil).Rate(42); got != 1 {
		t.Errorf("empty profile Rate = %v, want 1", got)
	}
	if got := p.MaxRate(); got != 3 {
		t.Errorf("MaxRate = %v, want 3", got)
	}
	if got := RateProfile(nil).MaxRate(); got != 1 {
		t.Errorf("empty MaxRate = %v, want 1", got)
	}
}

func TestMMPPValidate(t *testing.T) {
	ok := MMPP{OnMean: 60, OffMean: 120, OnRate: 3, OffRate: 0.3}
	if err := ok.Validate(); err != nil {
		t.Fatalf("valid MMPP rejected: %v", err)
	}
	bad := []MMPP{
		{OnMean: 0, OffMean: 120, OnRate: 3, OffRate: 1},
		{OnMean: 60, OffMean: -1, OnRate: 3, OffRate: 1},
		{OnMean: 60, OffMean: 120, OnRate: -3, OffRate: 1},
		{OnMean: 60, OffMean: 120, OnRate: 0, OffRate: 0},
		{OnMean: math.NaN(), OffMean: 120, OnRate: 3, OffRate: 1},
		{OnMean: 60, OffMean: 120, OnRate: math.Inf(1), OffRate: 1},
	}
	for i, m := range bad {
		if err := m.Validate(); err == nil {
			t.Errorf("bad MMPP %d accepted: %+v", i, m)
		}
	}
}

func TestMMPPEnvelope(t *testing.T) {
	m := MMPP{OnMean: 60, OffMean: 120, OnRate: 3, OffRate: 0.3}
	env := m.Envelope(rng.New(7), 600)
	if len(env.starts) == 0 {
		t.Fatal("empty envelope")
	}
	if env.starts[0] != 0 {
		t.Errorf("envelope starts at %v, want 0", env.starts[0])
	}
	for i := 1; i < len(env.starts); i++ {
		if env.starts[i] <= env.starts[i-1] {
			t.Fatalf("envelope starts not increasing: %v", env.starts)
		}
		if env.rates[i] == env.rates[i-1] {
			t.Fatalf("adjacent segments share rate %v: states must alternate", env.rates[i])
		}
	}
	for _, r := range env.rates {
		if r != 3 && r != 0.3 {
			t.Errorf("unexpected envelope rate %v", r)
		}
	}
	// Rate lookups hit the enclosing segment.
	for i, start := range env.starts {
		if got := env.Rate(start); got != env.rates[i] {
			t.Errorf("Rate(%v) = %v, want %v", start, got, env.rates[i])
		}
	}
	if got := env.Rate(-1); got != env.rates[0] {
		t.Errorf("Rate before window = %v, want first segment %v", got, env.rates[0])
	}
	if got, want := env.MaxRate(), 3.0; got != want {
		t.Errorf("MaxRate = %v, want %v", got, want)
	}
	// Zero-value envelope is flat at 1.
	var flat Envelope
	if flat.Rate(10) != 1 || flat.MaxRate() != 1 {
		t.Error("zero-value envelope is not flat at 1")
	}
}

func TestMMPPEnvelopeDeterministic(t *testing.T) {
	m := MMPP{OnMean: 30, OffMean: 90, OnRate: 5, OffRate: 0}
	a := m.Envelope(rng.New(42), 600)
	b := m.Envelope(rng.New(42), 600)
	if !reflect.DeepEqual(a, b) {
		t.Error("envelopes from equal seeds differ")
	}
}
