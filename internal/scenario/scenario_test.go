package scenario

import (
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"facsp/internal/hexgrid"
	"facsp/internal/rng"
)

func f(v float64) *float64 { return &v }

// minimal returns the smallest valid scenario.
func minimal() *Scenario {
	return &Scenario{Schema: SchemaVersion, Name: "test"}
}

func TestLibraryScenariosAreValid(t *testing.T) {
	names := Names()
	if len(names) < 4 {
		t.Fatalf("library has %d scenarios, want >= 4: %v", len(names), names)
	}
	for _, want := range []string{"flash-crowd", "stadium-hotspot", "highway", "diurnal-city"} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
			}
		}
		if !found {
			t.Errorf("library is missing %q (have %v)", want, names)
		}
	}
	for _, name := range names {
		s, err := Load(name)
		if err != nil {
			t.Errorf("Load(%q): %v", name, err)
			continue
		}
		if s.Name != name {
			t.Errorf("scenario file %q carries name %q; file name and name field must match", name, s.Name)
		}
		if s.Description == "" {
			t.Errorf("scenario %q has no description", name)
		}
		if _, err := s.ConfigFor(10, 1); err != nil {
			t.Errorf("scenario %q does not compile: %v", name, err)
		}
	}
}

func TestLoadUnknown(t *testing.T) {
	_, err := Load("no-such-scenario")
	if err == nil {
		t.Fatal("unknown scenario loaded")
	}
	if !strings.Contains(err.Error(), "flash-crowd") {
		t.Errorf("error %q does not list the available scenarios", err)
	}
}

func TestValidateRejections(t *testing.T) {
	tests := []struct {
		name string
		mut  func(*Scenario)
		want string
	}{
		{
			name: "wrong schema version",
			mut:  func(s *Scenario) { s.Schema = 99 },
			want: "schema version",
		},
		{
			name: "empty name",
			mut:  func(s *Scenario) { s.Name = "" },
			want: "name",
		},
		{
			name: "upper-case name",
			mut:  func(s *Scenario) { s.Name = "Flash-Crowd" },
			want: "name",
		},
		{
			name: "negative rings",
			mut:  func(s *Scenario) { s.Rings = -1 },
			want: "rings",
		},
		{
			name: "huge rings",
			mut:  func(s *Scenario) { s.Rings = 9 },
			want: "rings",
		},
		{
			name: "NaN window",
			mut:  func(s *Scenario) { s.WindowS = math.NaN() },
			want: "window_s",
		},
		{
			name: "negative capacity",
			mut:  func(s *Scenario) { s.CapacityBU = -40 },
			want: "capacity_bu",
		},
		{
			name: "negative default load",
			mut:  func(s *Scenario) { s.DefaultLoad = f(-1) },
			want: "default_load",
		},
		{
			name: "bad mix",
			mut:  func(s *Scenario) { s.Mix = &MixSpec{Text: 0.9, Voice: 0.9, Video: 0.9} },
			want: "mix",
		},
		{
			name: "NaN profile rate",
			mut: func(s *Scenario) {
				s.Profile = []ProfileKnot{{TS: 0, Rate: math.NaN()}}
			},
			want: "rate",
		},
		{
			name: "all-zero profile",
			mut: func(s *Scenario) {
				s.Profile = []ProfileKnot{{TS: 0, Rate: 0}, {TS: 60, Rate: 0}}
			},
			want: "zero",
		},
		{
			name: "bad burst",
			mut: func(s *Scenario) {
				s.Burst = &BurstSpec{OnMeanS: -1, OffMeanS: 1, OnRate: 1}
			},
			want: "mmpp",
		},
		{
			name: "unknown cell coordinate",
			mut: func(s *Scenario) {
				s.Cells = []CellSpec{{At: [2]int{3, 3}}}
			},
			want: "outside",
		},
		{
			name: "topology in schema-1 document",
			mut: func(s *Scenario) {
				s.Schema = SchemaV1
				s.Topology = &TopologySpec{Cells: [][2]int{{0, 0}}}
			},
			want: "schema",
		},
		{
			name: "topology alongside rings",
			mut: func(s *Scenario) {
				s.Rings = 2
				s.Topology = &TopologySpec{Cells: [][2]int{{0, 0}}}
			},
			want: "rings",
		},
		{
			name: "empty topology",
			mut:  func(s *Scenario) { s.Topology = &TopologySpec{} },
			want: "topology",
		},
		{
			name: "oversized cluster radius",
			mut: func(s *Scenario) {
				s.Topology = &TopologySpec{Clusters: []ClusterSpec{{Radius: maxClusterRadius + 1}}}
			},
			want: "radius",
		},
		{
			name: "cell outside topology",
			mut: func(s *Scenario) {
				s.Topology = &TopologySpec{Clusters: []ClusterSpec{{Center: [2]int{0, 0}, Radius: 1}}}
				s.Cells = []CellSpec{{At: [2]int{5, 5}}}
			},
			want: "outside the topology",
		},
		{
			name: "duplicate cell",
			mut: func(s *Scenario) {
				s.Cells = []CellSpec{{At: [2]int{0, 0}}, {At: [2]int{0, 0}}}
			},
			want: "duplicate",
		},
		{
			name: "negative cell load",
			mut: func(s *Scenario) {
				s.Cells = []CellSpec{{At: [2]int{0, 0}, Load: f(-2)}}
			},
			want: "load",
		},
		{
			name: "negative cell capacity scale",
			mut: func(s *Scenario) {
				s.Cells = []CellSpec{{At: [2]int{0, 0}, CapacityScale: f(-0.5)}}
			},
			want: "capacity_scale",
		},
		{
			name: "NaN cell capacity scale",
			mut: func(s *Scenario) {
				s.Cells = []CellSpec{{At: [2]int{0, 0}, CapacityScale: f(math.NaN())}}
			},
			want: "capacity_scale",
		},
		{
			name: "bad mobility weight",
			mut: func(s *Scenario) {
				s.Mobility = []MobilityGroup{{Weight: -1, SpeedKmh: [2]float64{0, 10}}}
			},
			want: "weight",
		},
		{
			name: "inverted speed range",
			mut: func(s *Scenario) {
				s.Mobility = []MobilityGroup{{Weight: 1, SpeedKmh: [2]float64{50, 10}}}
			},
			want: "speed",
		},
		{
			name: "angle outside degrees",
			mut:  func(s *Scenario) { s.AngleDeg = &[2]float64{-360, 0} },
			want: "angle",
		},
	}
	for _, tt := range tests {
		s := minimal()
		tt.mut(s)
		err := s.Validate()
		if err == nil {
			t.Errorf("%s: invalid scenario accepted", tt.name)
			continue
		}
		if !strings.Contains(err.Error(), tt.want) {
			t.Errorf("%s: error %q does not mention %q", tt.name, err, tt.want)
		}
	}
	if err := minimal().Validate(); err != nil {
		t.Fatalf("minimal scenario rejected: %v", err)
	}
}

func TestFromJSONRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"syntax error":     `{"schema": 1, "name": }`,
		"unknown field":    `{"schema": 1, "name": "x", "surprise": true}`,
		"trailing garbage": `{"schema": 1, "name": "x"}{"schema": 1, "name": "y"}`,
		"wrong schema":     `{"schema": 99, "name": "x"}`,
		"v1 topology":      `{"schema": 1, "name": "x", "topology": {"clusters": [{"center": [0, 0], "radius": 2}]}}`,
		"NaN-ish rate":     `{"schema": 1, "name": "x", "profile": [{"t_s": 0, "rate": "NaN"}]}`,
	}
	for name, doc := range cases {
		if _, err := FromJSON([]byte(doc)); err == nil {
			t.Errorf("%s: accepted %s", name, doc)
		}
	}
}

func TestFromFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "own.json")
	doc := `{"schema": 1, "name": "own", "cells": [{"at": [0, 0], "load": 2}]}`
	if err := os.WriteFile(path, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := FromFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if s.Name != "own" || s.LoadAt(hexgrid.Coord{}) != 2 {
		t.Errorf("parsed scenario %+v", s)
	}
	if _, err := FromFile(filepath.Join(dir, "missing.json")); err == nil {
		t.Error("missing file accepted")
	}
}

func TestConfigForSemantics(t *testing.T) {
	s := &Scenario{
		Schema:      SchemaVersion,
		Name:        "semantics",
		DefaultLoad: f(0.5),
		Cells: []CellSpec{
			{At: [2]int{0, 0}, Load: f(3)},
			{At: [2]int{1, 0}, Load: f(0)},
		},
	}
	cfg, err := s.ConfigFor(10, 42)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Requests != 0 || cfg.NeighborRequests != 0 {
		t.Errorf("scenario config leaks homogeneous requests: %d/%d", cfg.Requests, cfg.NeighborRequests)
	}
	if len(cfg.PerCell) != 7 {
		t.Fatalf("PerCell has %d entries, want 7", len(cfg.PerCell))
	}
	byCell := map[hexgrid.Coord]int{}
	for _, ct := range cfg.PerCell {
		byCell[ct.Cell] = ct.Requests
	}
	if got := byCell[hexgrid.Coord{}]; got != 30 {
		t.Errorf("centre requests = %d, want 3x10", got)
	}
	if got := byCell[hexgrid.Coord{Q: 1, R: 0}]; got != 0 {
		t.Errorf("silenced cell requests = %d, want 0", got)
	}
	if got := byCell[hexgrid.Coord{Q: 0, R: 1}]; got != 5 {
		t.Errorf("default cell requests = %d, want 0.5x10", got)
	}
	if cfg.Seed != 42 {
		t.Errorf("seed = %d, want 42", cfg.Seed)
	}
	if err := cfg.Validate(); err != nil {
		t.Errorf("compiled config invalid: %v", err)
	}
}

func TestCapacityAt(t *testing.T) {
	s := minimal()
	s.Cells = []CellSpec{
		{At: [2]int{0, 0}, CapacityScale: f(1.5)},
		{At: [2]int{1, 0}, CapacityScale: f(0)},
	}
	if got := s.CapacityAt(hexgrid.Coord{}); got != 60 {
		t.Errorf("scaled centre capacity = %v, want 60", got)
	}
	if got := s.CapacityAt(hexgrid.Coord{Q: 1, R: 0}); got != 0 {
		t.Errorf("dead cell capacity = %v, want 0", got)
	}
	if got := s.CapacityAt(hexgrid.Coord{Q: 0, R: 1}); got != DefaultCapacityBU {
		t.Errorf("default capacity = %v, want %v", got, DefaultCapacityBU)
	}
	if s.UniformCapacity() {
		t.Error("heterogeneous capacity reported uniform")
	}
	if !minimal().UniformCapacity() {
		t.Error("minimal scenario reported non-uniform")
	}
	s.CapacityBU = 80
	if got := s.CapacityAt(hexgrid.Coord{}); got != 120 {
		t.Errorf("base 80 scaled capacity = %v, want 120", got)
	}
}

func TestSamplersDeterministic(t *testing.T) {
	groups := []MobilityGroup{
		{Weight: 0.7, SpeedKmh: [2]float64{0, 6}},
		{Weight: 0.3, SpeedKmh: [2]float64{60, 60}},
	}
	a, b := speedSampler(groups), speedSampler(groups)
	sa, sb := rng.New(9), rng.New(9)
	sawPinned := false
	for i := 0; i < 500; i++ {
		va, vb := a(sa), b(sb)
		if va != vb {
			t.Fatalf("draw %d differs: %v != %v", i, va, vb)
		}
		if va == 60 {
			sawPinned = true
		} else if va < 0 || va >= 6 {
			t.Fatalf("draw %d: speed %v outside both groups", i, va)
		}
	}
	if !sawPinned {
		t.Error("pinned 60 km/h group never drawn in 500 samples")
	}
}

func TestScenarioJSONRoundTrip(t *testing.T) {
	for _, name := range Names() {
		s, err := Load(name)
		if err != nil {
			t.Fatal(err)
		}
		data, err := json.Marshal(s)
		if err != nil {
			t.Fatal(err)
		}
		back, err := FromJSON(data)
		if err != nil {
			t.Fatalf("%s does not round-trip: %v", name, err)
		}
		if !reflect.DeepEqual(s, back) {
			t.Errorf("%s round-trip mismatch:\n a: %+v\n b: %+v", name, s, back)
		}
	}
}

// TestSchemaV1BackCompat pins that schema-1 documents still load and
// compile exactly as before the topology extension: no Topology field, a
// defaulted ring count, and the legacy cluster enumeration.
func TestSchemaV1BackCompat(t *testing.T) {
	s, err := FromJSON([]byte(`{"schema": 1, "name": "legacy", "default_load": 0.5}`))
	if err != nil {
		t.Fatal(err)
	}
	if s.Topology != nil {
		t.Fatal("v1 document grew a topology")
	}
	cfg, err := s.ConfigFor(10, 3)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Topology != nil {
		t.Errorf("v1 config carries a topology: %v", cfg.Topology)
	}
	if cfg.Rings != DefaultRings {
		t.Errorf("v1 config rings = %d, want %d", cfg.Rings, DefaultRings)
	}
	if got, want := len(s.Cluster()), len(hexgrid.Disk(hexgrid.Coord{}, DefaultRings)); got != want {
		t.Errorf("v1 cluster has %d cells, want %d", got, want)
	}
}

// TestTopologySection covers the schema-2 topology block end to end:
// compile, Cluster(), and ConfigFor wiring.
func TestTopologySection(t *testing.T) {
	doc := `{
		"schema": 2,
		"name": "twin-towns",
		"topology": {
			"clusters": [
				{"center": [0, 0], "radius": 2},
				{"center": [9, 0], "radius": 1}
			],
			"lines": [{"from": [2, 0], "to": [8, 0]}],
			"exclude": [[5, 0]]
		},
		"cells": [{"at": [9, 0], "load": 2.5}]
	}`
	s, err := FromJSON([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	topo, err := s.CompileTopology()
	if err != nil {
		t.Fatal(err)
	}
	// Two disks (19 + 7 cells), a connecting line adding the strictly
	// interior cells, minus one excluded corridor cell.
	if topo.Contains(hexgrid.Coord{Q: 5}) {
		t.Error("excluded cell still present")
	}
	for _, at := range []hexgrid.Coord{{}, {Q: 9}, {Q: 4}, {Q: 6}} {
		if !topo.Contains(at) {
			t.Errorf("topology is missing %v", at)
		}
	}
	if got := len(s.Cluster()); got != topo.Cells() {
		t.Errorf("Cluster() has %d cells, topology %d", got, topo.Cells())
	}
	if s.Cluster()[0] != (hexgrid.Coord{}) {
		t.Errorf("centre cell = %v, want origin (first build-order cell)", s.Cluster()[0])
	}
	cfg, err := s.ConfigFor(4, 7)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Topology == nil || cfg.Topology.Cells() != topo.Cells() {
		t.Fatalf("ConfigFor did not carry the topology through")
	}
	if cfg.Rings != 0 {
		t.Errorf("topology config rings = %d, want 0", cfg.Rings)
	}
	// The per-cell load override applies to the second cluster's centre.
	reqs := -1
	for _, ct := range cfg.PerCell {
		if ct.Cell == (hexgrid.Coord{Q: 9}) {
			reqs = ct.Requests
		}
	}
	if want := int(2.5 * 4); reqs != want {
		t.Errorf("hotspot cell requests = %d, want %d", reqs, want)
	}
}
