package scenario

import (
	"bytes"
	"strings"
	"testing"

	"facsp/internal/hexgrid"
)

// TestMetroCityPinned regenerates the embedded metro-city scenario from
// its pinned parameters and requires byte equality with the committed
// JSON, so the generator and the library can never drift apart.
func TestMetroCityPinned(t *testing.T) {
	s, err := GenerateCity(MetroCityParams())
	if err != nil {
		t.Fatal(err)
	}
	got, err := s.JSON()
	if err != nil {
		t.Fatal(err)
	}
	want, err := libraryFS.ReadFile("scenarios/metro-city.json")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Error("embedded scenarios/metro-city.json differs from GenerateCity(MetroCityParams()); regenerate the file")
	}
	loaded, err := Load("metro-city")
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Schema != SchemaVersion {
		t.Errorf("metro-city schema = %d, want %d", loaded.Schema, SchemaVersion)
	}
}

// TestGenerateCityDeterministic pins that generation is a pure function
// of the parameters.
func TestGenerateCityDeterministic(t *testing.T) {
	p := CityParams{MetroRadius: 10, Seed: 4}
	a, err := GenerateCity(p)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateCity(p)
	if err != nil {
		t.Fatal(err)
	}
	aj, _ := a.JSON()
	bj, _ := b.JSON()
	if !bytes.Equal(aj, bj) {
		t.Error("same parameters generated different scenarios")
	}
	c, err := GenerateCity(CityParams{MetroRadius: 10, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	cj, _ := c.JSON()
	if bytes.Equal(aj, cj) {
		t.Error("different seeds generated identical scenarios")
	}
}

// TestGenerateCityStructure checks the generated layout honours its own
// band contract: dead zones really are holes, highways extend past the
// metro edge, hotspots are burst cells inside the suburb band, and the
// whole document round-trips through ConfigFor.
func TestGenerateCityStructure(t *testing.T) {
	p := MetroCityParams()
	s, err := GenerateCity(p)
	if err != nil {
		t.Fatal(err)
	}
	topo, err := s.CompileTopology()
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Topology.Exclude) != p.DeadZones {
		t.Errorf("dead zones = %d, want %d", len(s.Topology.Exclude), p.DeadZones)
	}
	for _, at := range s.Topology.Exclude {
		if topo.Contains(specCoord(at)) {
			t.Errorf("dead zone %v still in topology", at)
		}
	}
	if len(s.Topology.Lines) != p.Highways {
		t.Fatalf("highways = %d, want %d", len(s.Topology.Lines), p.Highways)
	}
	for _, l := range s.Topology.Lines {
		end := specCoord(l.To)
		if d := hexgrid.Distance(hexgrid.Coord{}, end); d != p.MetroRadius+p.HighwayExtension {
			t.Errorf("highway end %v at distance %d, want %d", end, d, p.MetroRadius+p.HighwayExtension)
		}
		if !topo.Contains(end) {
			t.Errorf("highway end %v missing from topology", end)
		}
	}
	hotspots, highways := 0, 0
	for _, cs := range s.Cells {
		if cs.Burst != nil {
			hotspots++
			d := hexgrid.Distance(hexgrid.Coord{}, specCoord(cs.At))
			if d <= p.DowntownRadius || d > p.SuburbRadius {
				t.Errorf("hotspot %v at distance %d outside suburb band (%d, %d]", cs.At, d, p.DowntownRadius, p.SuburbRadius)
			}
		}
		if len(cs.Mobility) > 0 {
			highways++
		}
	}
	if hotspots != p.Hotspots {
		t.Errorf("hotspot cells = %d, want %d", hotspots, p.Hotspots)
	}
	if highways == 0 {
		t.Error("no highway cells carry a mobility override")
	}

	cfg, err := s.ConfigFor(1.0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Topology == nil || cfg.Topology.Cells() != topo.Cells() {
		t.Fatalf("ConfigFor topology cells = %v, want %d", cfg.Topology, topo.Cells())
	}
}

// TestEvalCityScale pins the ~1000-cell evaluation topology used by the
// perf suite and the acceptance runs.
func TestEvalCityScale(t *testing.T) {
	s, err := GenerateCity(EvalCityParams())
	if err != nil {
		t.Fatal(err)
	}
	topo, err := s.CompileTopology()
	if err != nil {
		t.Fatal(err)
	}
	if topo.Cells() < 1000 {
		t.Errorf("eval city has %d cells, want >= 1000", topo.Cells())
	}
}

// TestGenerateCityRejectsBadParams covers the parameter validation.
func TestGenerateCityRejectsBadParams(t *testing.T) {
	cases := map[string]CityParams{
		"tiny metro":        {MetroRadius: 1, DowntownRadius: 1, SuburbRadius: 1},
		"oversized metro":   {MetroRadius: maxClusterRadius + 1},
		"inverted bands":    {MetroRadius: 8, DowntownRadius: 6, SuburbRadius: 4},
		"too many highways": {Highways: 13},
		"negative hotspots": {Hotspots: -1},
	}
	for name, p := range cases {
		if _, err := GenerateCity(p); err == nil {
			t.Errorf("%s: accepted %+v", name, p)
		} else if !strings.Contains(err.Error(), "citygen:") {
			t.Errorf("%s: error %q lacks citygen prefix", name, err)
		}
	}
}
