// Package scenario is the declarative scenario layer of the simulator: a
// versioned, validated description format (Go structs with a 1:1 JSON
// form) for heterogeneous cellular workloads, plus a library of named,
// embedded scenarios ready to run.
//
// The paper's evaluation drives one tagged centre cell of a homogeneous
// cluster with stationary Poisson arrivals. A Scenario generalises every
// axis of that set-up without touching the simulator's determinism
// contract:
//
//   - per-cell heterogeneity — load multipliers (hot spots, quiet
//     suburbs), capacity scaling (small cells, dead cells in outage), and
//     per-cell service-class mixes;
//   - time-varying arrival intensity — piecewise-linear rate profiles
//     (diurnal curves, flash crowds) applied network-wide or per cell;
//   - bursty arrivals — two-state MMPP on/off modulation layered on the
//     rate profile;
//   - mobility mixes — weighted mixtures of speed ranges (pedestrian /
//     urban / vehicular) and optional trajectory-angle ranges.
//
// A Scenario compiles into a cellsim.Config with Scenario.ConfigFor: the
// sweep's load value scales every cell's request count through its load
// multiplier, and all randomness still flows from the config seed, so
// scenario sweeps stay bit-identical across worker counts exactly like
// the paper figures.
//
// Named scenarios (flash-crowd, stadium-hotspot, highway, diurnal-city)
// are embedded as JSON files under scenarios/ and listed by Names; load
// one with Load, or author your own and read it with FromFile/FromJSON.
// SCENARIOS.md at the repository root is the cookbook: the JSON schema
// reference, what each named scenario stresses, and a walkthrough for
// writing new ones.
package scenario
