package scenario

import (
	"encoding/json"
	"fmt"

	"facsp/internal/hexgrid"
	"facsp/internal/rng"
)

// CityParams parameterises the synthetic-city generator. The zero value
// of every field takes the documented default, so CityParams{} is a
// complete medium-sized city. All randomness in the layout (highway
// bearings, hotspot and dead-zone placement) flows from Seed, so the same
// parameters always generate byte-identical scenario JSON.
type CityParams struct {
	// Name is the scenario name (default "city").
	Name string
	// MetroRadius is the metro-area disk radius in cells (default 8,
	// 217 cells; 18 gives the ~1000-cell evaluation topology).
	MetroRadius int
	// DowntownRadius bounds the high-load downtown core (default
	// MetroRadius/4, at least 1).
	DowntownRadius int
	// SuburbRadius bounds the medium-load suburb ring band around
	// downtown (default 2*MetroRadius/3); beyond it lies low-load exurb.
	SuburbRadius int
	// Highways is the number of arterial corridors radiating from
	// downtown past the metro edge (default 4). Highway cells carry
	// elevated load and fast (80-120 km/h) users, and the corridor
	// segments beyond the metro edge extend the topology itself.
	Highways int
	// HighwayExtension is how many cells each highway continues beyond
	// the metro edge (default MetroRadius/3).
	HighwayExtension int
	// Hotspots is the number of stadium/event hotspots scattered through
	// the suburb band (default 2): heavy bursty load on one cell.
	Hotspots int
	// DeadZones is the number of coverage holes punched into the suburb
	// and exurb bands (default 3). Dead-zone cells are excluded from the
	// topology: mobiles entering one leave the network.
	DeadZones int
	// Seed drives the layout randomness (default 9).
	Seed uint64
}

// withDefaults returns the parameters with zero values filled in.
func (p CityParams) withDefaults() CityParams {
	if p.Name == "" {
		p.Name = "city"
	}
	if p.MetroRadius == 0 {
		p.MetroRadius = 8
	}
	if p.DowntownRadius == 0 {
		p.DowntownRadius = max(1, p.MetroRadius/4)
	}
	if p.SuburbRadius == 0 {
		p.SuburbRadius = 2 * p.MetroRadius / 3
	}
	if p.Highways == 0 {
		p.Highways = 4
	}
	if p.HighwayExtension == 0 {
		p.HighwayExtension = max(1, p.MetroRadius/3)
	}
	if p.Hotspots == 0 {
		p.Hotspots = 2
	}
	if p.DeadZones == 0 {
		p.DeadZones = 3
	}
	if p.Seed == 0 {
		p.Seed = 9
	}
	return p
}

// Load multipliers and traffic shape of the generated city's bands.
var (
	cityExurbLoad    = 0.25
	citySuburbLoad   = 0.75
	cityDowntownLoad = 2.0
	cityHighwayLoad  = 1.25
	cityHotspotLoad  = 4.0

	cityHighwayMobility = []MobilityGroup{{Weight: 1, SpeedKmh: [2]float64{80, 120}}}
	cityHotspotBurst    = BurstSpec{OnMeanS: 60, OffMeanS: 120, OnRate: 3, OffRate: 0.25}
	cityHotspotMix      = MixSpec{Text: 0.4, Voice: 0.3, Video: 0.3}
)

// GenerateCity builds a synthetic-city scenario: a metro disk with a
// heavy downtown core, a medium suburb band, a low-load exurb fringe,
// arterial highway corridors with fast users, bursty stadium hotspots,
// and dead-zone coverage holes. The output is an ordinary schema-2
// scenario document — validated here — that any scenario consumer
// (facs-sim, the experiment harness, the perf suite) can run.
func GenerateCity(p CityParams) (*Scenario, error) {
	p = p.withDefaults()
	if p.MetroRadius < 2 || p.MetroRadius > maxClusterRadius {
		return nil, fmt.Errorf("citygen: metro radius %d outside [2, %d]", p.MetroRadius, maxClusterRadius)
	}
	if p.DowntownRadius < 1 || p.DowntownRadius >= p.SuburbRadius || p.SuburbRadius >= p.MetroRadius {
		return nil, fmt.Errorf("citygen: band radii must satisfy 1 <= downtown (%d) < suburb (%d) < metro (%d)",
			p.DowntownRadius, p.SuburbRadius, p.MetroRadius)
	}
	if p.Highways < 0 || p.Highways > 12 {
		return nil, fmt.Errorf("citygen: highway count %d outside [0, 12]", p.Highways)
	}
	if p.Hotspots < 0 || p.DeadZones < 0 {
		return nil, fmt.Errorf("citygen: negative hotspot or dead-zone count")
	}
	src := rng.New(p.Seed)
	origin := hexgrid.Coord{}

	// Highways: straight corridors from downtown through the metro edge,
	// extended HighwayExtension cells beyond it. Bearings are spread
	// around the ring with a random rotation, so multiple highways never
	// collapse onto one corridor.
	edge := hexgrid.Ring(origin, p.MetroRadius+p.HighwayExtension)
	var lines []LineSpec
	highway := make(map[hexgrid.Coord]bool)
	if p.Highways > 0 {
		offset := src.Intn(len(edge))
		for h := 0; h < p.Highways; h++ {
			end := edge[(offset+h*len(edge)/p.Highways)%len(edge)]
			lines = append(lines, LineSpec{From: [2]int{origin.Q, origin.R}, To: [2]int{end.Q, end.R}})
			for _, c := range hexgrid.Line(origin, end) {
				highway[c] = true
			}
		}
	}

	spec := &TopologySpec{
		Clusters: []ClusterSpec{{Center: [2]int{0, 0}, Radius: p.MetroRadius}},
		Lines:    lines,
	}
	topo, err := spec.compile()
	if err != nil {
		return nil, fmt.Errorf("citygen: %w", err)
	}

	// Hotspots sit in the suburb band, off the highways; dead zones in the
	// suburb/exurb bands, off the highways and hotspots, and never
	// adjacent to one another so they stay isolated holes. Candidates are
	// scanned in slot order and picked by index, keeping the layout a pure
	// function of the seed.
	pickCells := func(n int, ok func(hexgrid.Coord) bool) []hexgrid.Coord {
		var cand []hexgrid.Coord
		for _, c := range topo.Coords() {
			if ok(c) {
				cand = append(cand, c)
			}
		}
		var out []hexgrid.Coord
		for ; n > 0 && len(cand) > 0; n-- {
			i := src.Intn(len(cand))
			out = append(out, cand[i])
			cand = append(cand[:i], cand[i+1:]...)
		}
		return out
	}
	inBand := func(c hexgrid.Coord, lo, hi int) bool {
		d := hexgrid.Distance(origin, c)
		return d > lo && d <= hi
	}
	hotspots := pickCells(p.Hotspots, func(c hexgrid.Coord) bool {
		return inBand(c, p.DowntownRadius, p.SuburbRadius) && !highway[c]
	})
	isHotspot := make(map[hexgrid.Coord]bool, len(hotspots))
	for _, c := range hotspots {
		isHotspot[c] = true
	}
	dead := pickCells(p.DeadZones, func(c hexgrid.Coord) bool {
		if !inBand(c, p.DowntownRadius, p.MetroRadius-1) || highway[c] || isHotspot[c] {
			return false
		}
		for _, n := range c.Neighbors() {
			if isHotspot[n] {
				return false
			}
		}
		return true
	})
	for _, c := range dead {
		spec.Exclude = append(spec.Exclude, [2]int{c.Q, c.R})
	}
	topo, err = spec.compile()
	if err != nil {
		return nil, fmt.Errorf("citygen: %w", err)
	}

	// Per-cell load overrides, one spec per cell in slot order. Exurb
	// cells ride on default_load; everything else gets an explicit entry.
	// Priority: hotspot > highway > downtown > suburb.
	exurb := cityExurbLoad
	s := &Scenario{
		Schema: SchemaVersion,
		Name:   p.Name,
		Description: fmt.Sprintf(
			"Synthetic city (seed %d): %d-cell metro, downtown core to radius %d, suburbs to %d, %d highways, %d hotspots, %d dead zones.",
			p.Seed, topo.Cells(), p.DowntownRadius, p.SuburbRadius, p.Highways, len(hotspots), len(dead)),
		Topology:    spec,
		DefaultLoad: &exurb,
	}
	for _, c := range topo.Coords() {
		at := [2]int{c.Q, c.R}
		switch {
		case isHotspot[c]:
			load, mix, burst := cityHotspotLoad, cityHotspotMix, cityHotspotBurst
			s.Cells = append(s.Cells, CellSpec{At: at, Load: &load, Mix: &mix, Burst: &burst})
		case highway[c]:
			load := cityHighwayLoad
			s.Cells = append(s.Cells, CellSpec{At: at, Load: &load, Mobility: cityHighwayMobility})
		case hexgrid.Distance(origin, c) <= p.DowntownRadius:
			load := cityDowntownLoad
			s.Cells = append(s.Cells, CellSpec{At: at, Load: &load})
		case hexgrid.Distance(origin, c) <= p.SuburbRadius:
			load := citySuburbLoad
			s.Cells = append(s.Cells, CellSpec{At: at, Load: &load})
		}
	}
	if err := s.Validate(); err != nil {
		return nil, fmt.Errorf("citygen: generated scenario invalid: %w", err)
	}
	return s, nil
}

// MetroCityParams are the parameters of the embedded "metro-city"
// scenario, pinned so the committed JSON and the generator never drift (a
// library test regenerates and compares).
func MetroCityParams() CityParams {
	return CityParams{Name: "metro-city"}.withDefaults()
}

// EvalCityParams returns the ~1000-cell evaluation city used by the perf
// suite and the city-scale acceptance runs: the metro-city layout scaled
// to an 18-cell metro radius (1027 metro cells plus highway spokes).
func EvalCityParams() CityParams {
	return CityParams{Name: "eval-city", MetroRadius: 18}.withDefaults()
}

// JSON renders the scenario as indented, deterministic JSON with a
// trailing newline — the exact bytes facs-sim -generate-city emits and
// the embedded library stores.
func (s *Scenario) JSON() ([]byte, error) {
	data, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	return append(data, '\n'), nil
}
