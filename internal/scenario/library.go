package scenario

import (
	"embed"
	"fmt"
	"sort"
	"strings"
)

// The named scenario library ships inside the binary: every *.json under
// scenarios/ is a complete scenario document whose file name (minus the
// extension) equals its "name" field, which a library test enforces.
//
//go:embed scenarios/*.json
var libraryFS embed.FS

// Names returns the named scenarios of the embedded library in sorted
// order, for usage text and -list-scenarios.
func Names() []string {
	entries, err := libraryFS.ReadDir("scenarios")
	if err != nil {
		// The directory is embedded at compile time; failure to read it is
		// a build defect, not a runtime condition.
		panic("scenario: embedded library unreadable: " + err.Error())
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		names = append(names, strings.TrimSuffix(e.Name(), ".json"))
	}
	sort.Strings(names)
	return names
}

// Load returns the named scenario from the embedded library.
func Load(name string) (*Scenario, error) {
	data, err := libraryFS.ReadFile("scenarios/" + name + ".json")
	if err != nil {
		return nil, fmt.Errorf("scenario: unknown scenario %q (have %s)", name, strings.Join(Names(), ", "))
	}
	s, err := FromJSON(data)
	if err != nil {
		return nil, fmt.Errorf("scenario: embedded %q: %w", name, err)
	}
	return s, nil
}
