package scenario

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"regexp"

	"facsp/internal/cellsim"
	"facsp/internal/hexgrid"
	"facsp/internal/mobility"
	"facsp/internal/rng"
	"facsp/internal/traffic"
)

// SchemaVersion is the current scenario file format version. Schema 2
// added the optional "topology" section (multi-cluster, city-scale cell
// sets); schema 1 files contain no topology section and keep loading —
// and simulating — exactly as before. Versions outside [SchemaV1,
// SchemaVersion] fail loudly instead of silently meaning something else.
const (
	SchemaV1      = 1
	SchemaVersion = 2
)

// Defaults applied by ConfigFor to fields left at their zero value. They
// mirror the paper's Section 4 set-up (cellsim.DefaultConfig).
const (
	DefaultRings         = 1
	DefaultCellRadiusM   = 1000
	DefaultWindowS       = 600
	DefaultHoldingMeanS  = 180
	DefaultCheckInterval = 1
	// DefaultCapacityBU is the per-cell base-station capacity scenarios
	// scale with CellSpec.CapacityScale (the paper's 40 BU).
	DefaultCapacityBU = 40
)

// Scenario is a declarative description of one simulated workload. The
// zero value of every optional field inherits the paper's defaults, so a
// minimal scenario is just a schema version and a name.
type Scenario struct {
	// Schema is the file format version: SchemaV1 or SchemaVersion.
	Schema int `json:"schema"`
	// Name identifies the scenario (lower-case letters, digits, dashes);
	// it is the -scenario argument of cmd/facs-sim and the key in docs.
	Name string `json:"name"`
	// Description says what the scenario models and stresses.
	Description string `json:"description,omitempty"`
	// Rings is the cluster radius around the tagged centre cell
	// (1 -> 7 cells, 2 -> 19 cells). 0 means DefaultRings. Mutually
	// exclusive with Topology.
	Rings int `json:"rings,omitempty"`
	// Topology (schema 2) replaces the Rings disk with an arbitrary cell
	// set: union of clusters, explicit cells and corridor lines, minus the
	// excluded dead zones. The tagged centre cell is the first cell of the
	// section's build order (the first cluster's centre, normally).
	Topology *TopologySpec `json:"topology,omitempty"`
	// CellRadiusM is the hexagon circumradius in metres (default 1000).
	CellRadiusM float64 `json:"cell_radius_m,omitempty"`
	// WindowS is the arrival window in seconds (default 600).
	WindowS float64 `json:"window_s,omitempty"`
	// HoldingMeanS is the mean call duration in seconds (default 180).
	HoldingMeanS float64 `json:"holding_mean_s,omitempty"`
	// CheckIntervalS is the handoff-detection granularity in seconds
	// (default 1).
	CheckIntervalS float64 `json:"check_interval_s,omitempty"`
	// CapacityBU is the base per-cell capacity in bandwidth units scaled
	// by each cell's CapacityScale (default 40, the paper's cell).
	CapacityBU float64 `json:"capacity_bu,omitempty"`
	// DefaultLoad is the load multiplier of cells without a Cells entry:
	// a cell's request count at sweep load N is round(N * multiplier).
	// Nil means 1 (every cell carries the sweep load, the paper's
	// homogeneous set-up).
	DefaultLoad *float64 `json:"default_load,omitempty"`
	// Mix is the network-wide service-class mix (default 70/20/10
	// text/voice/video).
	Mix *MixSpec `json:"mix,omitempty"`
	// Mobility is the network-wide mobility mix (default: uniform
	// 0-120 km/h, the paper's user population).
	Mobility []MobilityGroup `json:"mobility,omitempty"`
	// AngleDeg bounds users' initial trajectory angle relative to the
	// bearing toward the serving base station, in degrees (default
	// [-180, 180], i.e. any direction).
	AngleDeg *[2]float64 `json:"angle_deg,omitempty"`
	// Profile is the network-wide arrival-rate profile; empty means
	// stationary arrivals.
	Profile []ProfileKnot `json:"profile,omitempty"`
	// Burst is the network-wide MMPP on/off burst modulation; nil means
	// none.
	Burst *BurstSpec `json:"burst,omitempty"`
	// Cells lists per-cell overrides; cells of the cluster without an
	// entry use the scenario-wide settings above.
	Cells []CellSpec `json:"cells,omitempty"`
}

// MixSpec is the JSON form of a service-class mix; the probabilities must
// sum to 1.
type MixSpec struct {
	Text  float64 `json:"text"`
	Voice float64 `json:"voice"`
	Video float64 `json:"video"`
}

// mix converts to the traffic layer's representation.
func (m MixSpec) mix() traffic.Mix {
	return traffic.Mix{TextP: m.Text, VoiceP: m.Voice, VideoP: m.Video}
}

// MobilityGroup is one component of a mobility mixture: with probability
// proportional to Weight, a user draws its (constant) speed uniformly
// from SpeedKmh. Equal bounds pin the speed.
type MobilityGroup struct {
	Weight   float64    `json:"weight"`
	SpeedKmh [2]float64 `json:"speed_kmh"`
}

// ProfileKnot is the JSON form of one piecewise-linear rate-profile knot.
type ProfileKnot struct {
	// TS is the knot time in seconds from the start of the window.
	TS float64 `json:"t_s"`
	// Rate is the relative arrival intensity at TS.
	Rate float64 `json:"rate"`
}

// BurstSpec is the JSON form of an MMPP on/off burst process.
type BurstSpec struct {
	OnMeanS  float64 `json:"on_mean_s"`
	OffMeanS float64 `json:"off_mean_s"`
	OnRate   float64 `json:"on_rate"`
	OffRate  float64 `json:"off_rate"`
}

// mmpp converts to the traffic layer's representation.
func (b BurstSpec) mmpp() traffic.MMPP {
	return traffic.MMPP{OnMean: b.OnMeanS, OffMean: b.OffMeanS, OnRate: b.OnRate, OffRate: b.OffRate}
}

// CellSpec overrides the scenario-wide settings for one cell.
type CellSpec struct {
	// At is the cell's axial hex coordinate [q, r]; [0, 0] is the tagged
	// centre cell. It must lie inside the Rings-cell cluster.
	At [2]int `json:"at"`
	// Load is the cell's load multiplier (nil inherits DefaultLoad). 0
	// silences the cell's new-call traffic; handoffs still pass through.
	Load *float64 `json:"load,omitempty"`
	// CapacityScale scales the cell's base-station capacity (nil means
	// 1). 0 is a dead cell: its base station admits nothing, modelling an
	// outage.
	CapacityScale *float64 `json:"capacity_scale,omitempty"`
	// Mix, Mobility, AngleDeg, Profile and Burst override their
	// scenario-wide counterparts for this cell's traffic.
	Mix      *MixSpec        `json:"mix,omitempty"`
	Mobility []MobilityGroup `json:"mobility,omitempty"`
	AngleDeg *[2]float64     `json:"angle_deg,omitempty"`
	Profile  []ProfileKnot   `json:"profile,omitempty"`
	Burst    *BurstSpec      `json:"burst,omitempty"`
}

// Coord returns the cell's hex coordinate.
func (c CellSpec) Coord() hexgrid.Coord { return hexgrid.Coord{Q: c.At[0], R: c.At[1]} }

// TopologySpec is the schema-2 "topology" section: a declarative
// constructive description of the network's cell set. The set is built in
// listed order — clusters, then cells, then lines, then exclusions — and
// the build order defines the dense slot numbering, so a file is also a
// complete specification of the simulator's per-cell stream seeding.
type TopologySpec struct {
	// Clusters are hexagonal disks (center, radius); overlaps merge.
	Clusters []ClusterSpec `json:"clusters,omitempty"`
	// Cells are individual [q, r] cells added to the set.
	Cells [][2]int `json:"cells,omitempty"`
	// Lines are straight hex corridors (arterial highways) between two
	// cells, inclusive.
	Lines []LineSpec `json:"lines,omitempty"`
	// Exclude removes cells from the set (dead zones, coverage holes).
	Exclude [][2]int `json:"exclude,omitempty"`
}

// ClusterSpec is one hexagonal disk of a topology.
type ClusterSpec struct {
	Center [2]int `json:"center"`
	Radius int    `json:"radius"`
}

// LineSpec is one straight hex corridor of a topology.
type LineSpec struct {
	From [2]int `json:"from"`
	To   [2]int `json:"to"`
}

// maxClusterRadius bounds a single cluster disk: radius 64 is ~12k cells,
// far beyond the simulator's intended city scale, so anything larger is
// almost certainly a typo.
const maxClusterRadius = 64

func specCoord(at [2]int) hexgrid.Coord { return hexgrid.Coord{Q: at[0], R: at[1]} }

// compile builds the section's cell set.
func (t *TopologySpec) compile() (*hexgrid.Topology, error) {
	b := hexgrid.NewBuilder()
	for _, cl := range t.Clusters {
		b.AddDisk(specCoord(cl.Center), cl.Radius)
	}
	for _, at := range t.Cells {
		b.Add(specCoord(at))
	}
	for _, l := range t.Lines {
		b.AddLine(specCoord(l.From), specCoord(l.To))
	}
	for _, at := range t.Exclude {
		b.Remove(specCoord(at))
	}
	return b.Build()
}

// CompileTopology compiles the scenario's topology section into the
// simulator's dense cell set. Scenarios without a topology section return
// nil: they are Rings-disk scenarios and the simulator builds the disk
// itself.
func (s *Scenario) CompileTopology() (*hexgrid.Topology, error) {
	if s.Topology == nil {
		return nil, nil
	}
	topo, err := s.Topology.compile()
	if err != nil {
		return nil, fmt.Errorf("scenario %s: topology: %w", s.Name, err)
	}
	return topo, nil
}

var nameRE = regexp.MustCompile(`^[a-z0-9]+(-[a-z0-9]+)*$`)

// finite reports whether v is a usable number.
func finite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }

// Validate reports scenario errors: wrong schema version, malformed
// names, non-finite or negative quantities, unknown or duplicate cell
// coordinates, and invalid mixes, profiles or burst processes.
func (s *Scenario) Validate() error {
	if s.Schema < SchemaV1 || s.Schema > SchemaVersion {
		return fmt.Errorf("scenario: schema version %d, this build reads %d through %d", s.Schema, SchemaV1, SchemaVersion)
	}
	if !nameRE.MatchString(s.Name) {
		return fmt.Errorf("scenario: name %q must be lower-case letters, digits and dashes", s.Name)
	}
	if s.Rings < 0 || s.Rings > 4 {
		return fmt.Errorf("scenario %s: rings %d outside [0, 4]", s.Name, s.Rings)
	}
	if s.Topology != nil {
		if s.Schema < 2 {
			return fmt.Errorf("scenario %s: the topology section requires schema 2 (file declares schema %d)", s.Name, s.Schema)
		}
		if s.Rings != 0 {
			return fmt.Errorf("scenario %s: rings and topology are mutually exclusive", s.Name)
		}
		for i, cl := range s.Topology.Clusters {
			if cl.Radius < 0 || cl.Radius > maxClusterRadius {
				return fmt.Errorf("scenario %s: topology cluster %d radius %d outside [0, %d]", s.Name, i, cl.Radius, maxClusterRadius)
			}
		}
		if _, err := s.CompileTopology(); err != nil {
			return err
		}
	}
	for _, f := range []struct {
		name string
		v    float64
	}{
		{"cell_radius_m", s.CellRadiusM}, {"window_s", s.WindowS},
		{"holding_mean_s", s.HoldingMeanS}, {"check_interval_s", s.CheckIntervalS},
		{"capacity_bu", s.CapacityBU},
	} {
		if !finite(f.v) || f.v < 0 {
			return fmt.Errorf("scenario %s: %s %v must be a finite non-negative number (0 = default)", s.Name, f.name, f.v)
		}
	}
	if s.DefaultLoad != nil && (!finite(*s.DefaultLoad) || *s.DefaultLoad < 0) {
		return fmt.Errorf("scenario %s: default_load %v must be finite and non-negative", s.Name, *s.DefaultLoad)
	}
	if s.Mix != nil {
		if err := s.Mix.mix().Validate(); err != nil {
			return fmt.Errorf("scenario %s: %w", s.Name, err)
		}
	}
	if err := validateMobility(s.Mobility); err != nil {
		return fmt.Errorf("scenario %s: %w", s.Name, err)
	}
	if err := validateAngle(s.AngleDeg); err != nil {
		return fmt.Errorf("scenario %s: %w", s.Name, err)
	}
	if err := profile(s.Profile).Validate(); err != nil {
		return fmt.Errorf("scenario %s: %w", s.Name, err)
	}
	if s.Burst != nil {
		if err := s.Burst.mmpp().Validate(); err != nil {
			return fmt.Errorf("scenario %s: %w", s.Name, err)
		}
	}

	rings := s.Rings
	if rings == 0 {
		rings = DefaultRings
	}
	var topo *hexgrid.Topology
	if s.Topology != nil {
		topo, _ = s.CompileTopology() // compiled successfully above
	}
	seen := make(map[hexgrid.Coord]bool, len(s.Cells))
	for i, cs := range s.Cells {
		at := cs.Coord()
		if topo != nil {
			if !topo.Contains(at) {
				return fmt.Errorf("scenario %s: cells[%d] coordinate %v outside the topology", s.Name, i, at)
			}
		} else if hexgrid.Distance(at, hexgrid.Coord{}) > rings {
			return fmt.Errorf("scenario %s: cells[%d] coordinate %v outside the %d-ring cluster", s.Name, i, at, rings)
		}
		if seen[at] {
			return fmt.Errorf("scenario %s: duplicate cells entry for %v", s.Name, at)
		}
		seen[at] = true
		if cs.Load != nil && (!finite(*cs.Load) || *cs.Load < 0) {
			return fmt.Errorf("scenario %s: cell %v load %v must be finite and non-negative", s.Name, at, *cs.Load)
		}
		if cs.CapacityScale != nil && (!finite(*cs.CapacityScale) || *cs.CapacityScale < 0) {
			return fmt.Errorf("scenario %s: cell %v capacity_scale %v must be finite and non-negative", s.Name, at, *cs.CapacityScale)
		}
		if cs.Mix != nil {
			if err := cs.Mix.mix().Validate(); err != nil {
				return fmt.Errorf("scenario %s: cell %v: %w", s.Name, at, err)
			}
		}
		if err := validateMobility(cs.Mobility); err != nil {
			return fmt.Errorf("scenario %s: cell %v: %w", s.Name, at, err)
		}
		if err := validateAngle(cs.AngleDeg); err != nil {
			return fmt.Errorf("scenario %s: cell %v: %w", s.Name, at, err)
		}
		if err := profile(cs.Profile).Validate(); err != nil {
			return fmt.Errorf("scenario %s: cell %v: %w", s.Name, at, err)
		}
		if cs.Burst != nil {
			if err := cs.Burst.mmpp().Validate(); err != nil {
				return fmt.Errorf("scenario %s: cell %v: %w", s.Name, at, err)
			}
		}
	}
	return nil
}

func validateMobility(groups []MobilityGroup) error {
	if len(groups) == 0 {
		return nil
	}
	total := 0.0
	for i, g := range groups {
		if !finite(g.Weight) || g.Weight < 0 {
			return fmt.Errorf("mobility group %d weight %v must be finite and non-negative", i, g.Weight)
		}
		total += g.Weight
		lo, hi := g.SpeedKmh[0], g.SpeedKmh[1]
		if !finite(lo) || !finite(hi) || lo < 0 || hi < lo {
			return fmt.Errorf("mobility group %d speed range [%v, %v] must satisfy 0 <= lo <= hi", i, lo, hi)
		}
	}
	if total <= 0 {
		return fmt.Errorf("mobility mixture weights sum to %v, want > 0", total)
	}
	return nil
}

func validateAngle(a *[2]float64) error {
	if a == nil {
		return nil
	}
	lo, hi := a[0], a[1]
	if !finite(lo) || !finite(hi) || lo < -180 || hi > 180 || hi < lo {
		return fmt.Errorf("angle_deg range [%v, %v] must satisfy -180 <= lo <= hi <= 180", lo, hi)
	}
	return nil
}

// profile converts JSON knots to the traffic layer's representation.
func profile(knots []ProfileKnot) traffic.RateProfile {
	if len(knots) == 0 {
		return nil
	}
	out := make(traffic.RateProfile, len(knots))
	for i, k := range knots {
		out[i] = traffic.ProfilePoint{T: k.TS, Rate: k.Rate}
	}
	return out
}

// Cluster returns the scenario's cells in stable slot order: ring order
// for Rings-disk scenarios, topology build order otherwise. Index 0 is
// the tagged centre cell.
func (s *Scenario) Cluster() []hexgrid.Coord {
	if s.Topology != nil {
		if topo, err := s.CompileTopology(); err == nil {
			return topo.Coords()
		}
		return nil // invalid topology; Validate reports the error
	}
	rings := s.Rings
	if rings == 0 {
		rings = DefaultRings
	}
	return hexgrid.Disk(hexgrid.Coord{}, rings)
}

// cellSpec returns the override entry for a cell, if any.
func (s *Scenario) cellSpec(at hexgrid.Coord) *CellSpec {
	for i := range s.Cells {
		if s.Cells[i].Coord() == at {
			return &s.Cells[i]
		}
	}
	return nil
}

// LoadAt returns the cell's load multiplier.
func (s *Scenario) LoadAt(at hexgrid.Coord) float64 {
	if cs := s.cellSpec(at); cs != nil && cs.Load != nil {
		return *cs.Load
	}
	if s.DefaultLoad != nil {
		return *s.DefaultLoad
	}
	return 1
}

// CapacityAt returns the cell's base-station capacity in BU: the
// scenario's base capacity times the cell's capacity scale. 0 marks a
// dead cell.
func (s *Scenario) CapacityAt(at hexgrid.Coord) float64 {
	base := s.CapacityBU
	if base == 0 {
		base = DefaultCapacityBU
	}
	if cs := s.cellSpec(at); cs != nil && cs.CapacityScale != nil {
		return base * *cs.CapacityScale
	}
	return base
}

// UniformCapacity reports whether every cell of the cluster has the same
// capacity (which network-level schemes like SCC require).
func (s *Scenario) UniformCapacity() bool {
	cells := s.Cluster()
	base := s.CapacityAt(cells[0])
	for _, c := range cells[1:] {
		if s.CapacityAt(c) != base {
			return false
		}
	}
	return true
}

// speedSampler compiles a mobility mixture into a cellsim speed sampler;
// nil groups mean the paper's uniform 0-120 km/h population.
func speedSampler(groups []MobilityGroup) cellsim.Sampler {
	if len(groups) == 0 {
		return cellsim.Uniform(0, 120)
	}
	weights := make([]float64, len(groups))
	for i, g := range groups {
		weights[i] = g.Weight
	}
	return func(src *rng.Source) float64 {
		g := groups[src.Pick(weights)]
		lo, hi := g.SpeedKmh[0], g.SpeedKmh[1]
		if lo == hi {
			return lo
		}
		return src.Uniform(lo, hi)
	}
}

// angleSampler compiles an angle range into a cellsim sampler; nil means
// any direction.
func angleSampler(a *[2]float64) cellsim.Sampler {
	if a == nil {
		return cellsim.Uniform(-180, 180)
	}
	lo, hi := a[0], a[1]
	if lo == hi {
		return cellsim.Fixed(lo)
	}
	return func(src *rng.Source) float64 { return src.Uniform(lo, hi) }
}

// ConfigFor compiles the scenario into a simulator config at one sweep
// load point: every cell's request count is round(load * its multiplier),
// and all remaining randomness flows from seed. The same (scenario, load,
// seed) triple always yields the same config, which is what keeps
// scenario sweeps bit-identical across worker counts.
func (s *Scenario) ConfigFor(load int, seed uint64) (cellsim.Config, error) {
	if err := s.Validate(); err != nil {
		return cellsim.Config{}, err
	}
	if load < 0 {
		return cellsim.Config{}, fmt.Errorf("scenario %s: negative load %d", s.Name, load)
	}

	cfg := cellsim.Config{
		Rings:         s.Rings,
		CellRadius:    s.CellRadiusM,
		Window:        s.WindowS,
		HoldingMean:   s.HoldingMeanS,
		CheckInterval: s.CheckIntervalS,
		Mix:           traffic.DefaultMix(),
		Speed:         speedSampler(s.Mobility),
		Angle:         angleSampler(s.AngleDeg),
		Mobility:      mobility.DefaultSmoothTurn(),
		Seed:          seed,
	}
	if s.Topology != nil {
		topo, err := s.CompileTopology()
		if err != nil {
			return cellsim.Config{}, err
		}
		cfg.Topology = topo
	} else if cfg.Rings == 0 {
		cfg.Rings = DefaultRings
	}
	if cfg.CellRadius == 0 {
		cfg.CellRadius = DefaultCellRadiusM
	}
	if cfg.Window == 0 {
		cfg.Window = DefaultWindowS
	}
	if cfg.HoldingMean == 0 {
		cfg.HoldingMean = DefaultHoldingMeanS
	}
	if cfg.CheckInterval == 0 {
		cfg.CheckInterval = DefaultCheckInterval
	}
	if s.Mix != nil {
		cfg.Mix = s.Mix.mix()
	}

	var cells []hexgrid.Coord
	if cfg.Topology != nil {
		cells = cfg.Topology.Coords()
	} else {
		cells = s.Cluster()
	}
	for _, at := range cells {
		ct := cellsim.CellTraffic{
			Cell:     at,
			Requests: int(math.Round(float64(load) * s.LoadAt(at))),
			Profile:  profile(s.Profile),
		}
		if s.Burst != nil {
			b := s.Burst.mmpp()
			ct.Burst = &b
		}
		if cs := s.cellSpec(at); cs != nil {
			if cs.Mix != nil {
				m := cs.Mix.mix()
				ct.Mix = &m
			}
			if len(cs.Mobility) > 0 {
				ct.Speed = speedSampler(cs.Mobility)
			}
			if cs.AngleDeg != nil {
				ct.Angle = angleSampler(cs.AngleDeg)
			}
			if len(cs.Profile) > 0 {
				ct.Profile = profile(cs.Profile)
			}
			if cs.Burst != nil {
				b := cs.Burst.mmpp()
				ct.Burst = &b
			}
		}
		cfg.PerCell = append(cfg.PerCell, ct)
	}
	if err := cfg.Validate(); err != nil {
		return cellsim.Config{}, fmt.Errorf("scenario %s: %w", s.Name, err)
	}
	return cfg, nil
}

// FromJSON parses and validates a scenario document. Unknown fields are
// rejected, so typos in hand-written files fail loudly.
func FromJSON(data []byte) (*Scenario, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var s Scenario
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	// A second document in the same file is almost certainly a mistake.
	if dec.More() {
		return nil, fmt.Errorf("scenario: trailing data after the scenario document")
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// FromFile reads and validates a scenario JSON file.
func FromFile(path string) (*Scenario, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	s, err := FromJSON(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return s, nil
}
