// Package stats provides the small measurement toolkit used by the
// simulator and the experiment harness: streaming mean/variance, normal
// confidence intervals, time-weighted averages, and (x, y) series for the
// figures.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Running accumulates a stream of observations with Welford's algorithm,
// giving numerically stable mean and variance without storing samples.
// The zero value is an empty accumulator ready for use.
type Running struct {
	n    uint64
	mean float64
	m2   float64
}

// Add records one observation.
func (r *Running) Add(x float64) {
	r.n++
	delta := x - r.mean
	r.mean += delta / float64(r.n)
	r.m2 += delta * (x - r.mean)
}

// N returns the number of observations.
func (r *Running) N() uint64 { return r.n }

// Mean returns the sample mean (0 for an empty accumulator).
func (r *Running) Mean() float64 { return r.mean }

// Variance returns the unbiased sample variance (0 with fewer than two
// observations).
func (r *Running) Variance() float64 {
	if r.n < 2 {
		return 0
	}
	return r.m2 / float64(r.n-1)
}

// StdDev returns the sample standard deviation.
func (r *Running) StdDev() float64 { return math.Sqrt(r.Variance()) }

// StdErr returns the standard error of the mean.
func (r *Running) StdErr() float64 {
	if r.n == 0 {
		return 0
	}
	return r.StdDev() / math.Sqrt(float64(r.n))
}

// CI95 returns the half-width of a normal-approximation 95% confidence
// interval around the mean. With fewer than two observations it is 0.
func (r *Running) CI95() float64 { return 1.96 * r.StdErr() }

// Merge folds another accumulator into r (parallel Welford merge).
func (r *Running) Merge(o Running) {
	if o.n == 0 {
		return
	}
	if r.n == 0 {
		*r = o
		return
	}
	n := float64(r.n + o.n)
	delta := o.mean - r.mean
	r.m2 += o.m2 + delta*delta*float64(r.n)*float64(o.n)/n
	r.mean += delta * float64(o.n) / n
	r.n += o.n
}

// TimeWeighted accumulates a piecewise-constant signal's time average,
// e.g. cell occupancy in BU-seconds. The zero value is empty; the first
// Observe sets the starting point.
type TimeWeighted struct {
	started  bool
	lastT    float64
	lastV    float64
	area     float64
	duration float64
}

// Observe records that the signal took value v from the previous
// observation time until now. Observations must be non-decreasing in time.
func (w *TimeWeighted) Observe(now, v float64) error {
	if !w.started {
		w.started = true
		w.lastT = now
		w.lastV = v
		return nil
	}
	if now < w.lastT {
		return fmt.Errorf("stats: time went backwards: %v < %v", now, w.lastT)
	}
	dt := now - w.lastT
	w.area += w.lastV * dt
	w.duration += dt
	w.lastT = now
	w.lastV = v
	return nil
}

// Mean returns the time-weighted mean of the signal over the observed
// window (0 if the window is empty).
func (w *TimeWeighted) Mean() float64 {
	if w.duration == 0 {
		return 0
	}
	return w.area / w.duration
}

// Duration returns the observed window length.
func (w *TimeWeighted) Duration() float64 { return w.duration }

// Point is one (x, y) sample of a figure series.
type Point struct {
	X float64
	Y float64
}

// Series is a named curve, e.g. "FACS-P, speed=30 km/h" in Fig. 8.
type Series struct {
	Name   string
	Points []Point
}

// Add appends a point.
func (s *Series) Add(x, y float64) { s.Points = append(s.Points, Point{X: x, Y: y}) }

// YAt returns the y value at the given x, or an error when the series has
// no such x (exact match).
func (s *Series) YAt(x float64) (float64, error) {
	for _, p := range s.Points {
		if p.X == x {
			return p.Y, nil
		}
	}
	return 0, fmt.Errorf("stats: series %q has no point at x=%v", s.Name, x)
}

// SortByX orders the points by increasing x.
func (s *Series) SortByX() {
	sort.Slice(s.Points, func(i, j int) bool { return s.Points[i].X < s.Points[j].X })
}

// MinMaxY returns the y range of the series. An empty series returns
// (0, 0).
func (s *Series) MinMaxY() (lo, hi float64) {
	if len(s.Points) == 0 {
		return 0, 0
	}
	lo, hi = s.Points[0].Y, s.Points[0].Y
	for _, p := range s.Points[1:] {
		lo = math.Min(lo, p.Y)
		hi = math.Max(hi, p.Y)
	}
	return lo, hi
}

// Crossover returns the x interval [x1, x2] between adjacent sample points
// where series a transitions from above b to below b (a-b changes sign
// from positive to negative), scanning in x order. It returns an error if
// the two series are not sampled at identical x values or no such
// crossing exists. Used to locate the paper's Fig. 7 / Fig. 10 crossings.
func Crossover(a, b Series) (x1, x2 float64, err error) {
	if len(a.Points) != len(b.Points) {
		return 0, 0, fmt.Errorf("stats: series %q and %q have different lengths", a.Name, b.Name)
	}
	prev := 0.0
	havePrev := false
	for i := range a.Points {
		if a.Points[i].X != b.Points[i].X {
			return 0, 0, fmt.Errorf("stats: series %q and %q sampled at different x", a.Name, b.Name)
		}
		diff := a.Points[i].Y - b.Points[i].Y
		if havePrev && prev > 0 && diff <= 0 {
			return a.Points[i-1].X, a.Points[i].X, nil
		}
		if !havePrev || diff != 0 {
			prev = diff
			havePrev = true
		}
	}
	return 0, 0, fmt.Errorf("stats: series %q never crosses below %q", a.Name, b.Name)
}
