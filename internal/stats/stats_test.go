package stats

import (
	"math"
	"testing"
	"testing/quick"

	"facsp/internal/rng"
)

func TestRunningEmpty(t *testing.T) {
	var r Running
	if r.N() != 0 || r.Mean() != 0 || r.Variance() != 0 || r.CI95() != 0 {
		t.Errorf("zero accumulator not empty: %+v", r)
	}
}

func TestRunningKnownValues(t *testing.T) {
	var r Running
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		r.Add(x)
	}
	if got := r.N(); got != 8 {
		t.Errorf("N = %d, want 8", got)
	}
	if got := r.Mean(); got != 5 {
		t.Errorf("Mean = %v, want 5", got)
	}
	// Sum of squared deviations = 32; unbiased variance = 32/7.
	if got := r.Variance(); math.Abs(got-32.0/7) > 1e-12 {
		t.Errorf("Variance = %v, want %v", got, 32.0/7)
	}
	if got := r.StdDev(); math.Abs(got-math.Sqrt(32.0/7)) > 1e-12 {
		t.Errorf("StdDev = %v", got)
	}
}

func TestRunningSingleValue(t *testing.T) {
	var r Running
	r.Add(42)
	if r.Mean() != 42 || r.Variance() != 0 {
		t.Errorf("single value: mean=%v var=%v", r.Mean(), r.Variance())
	}
}

func TestRunningCI95ShrinksWithN(t *testing.T) {
	src := rng.New(5)
	var small, large Running
	for i := 0; i < 30; i++ {
		small.Add(src.Normal(10, 2))
	}
	for i := 0; i < 3000; i++ {
		large.Add(src.Normal(10, 2))
	}
	if large.CI95() >= small.CI95() {
		t.Errorf("CI95 did not shrink: n=30 gives %v, n=3000 gives %v", small.CI95(), large.CI95())
	}
	if math.Abs(large.Mean()-10) > 0.2 {
		t.Errorf("large-sample mean = %v, want ~10", large.Mean())
	}
}

func TestRunningMerge(t *testing.T) {
	src := rng.New(6)
	var whole, left, right Running
	for i := 0; i < 1000; i++ {
		x := src.Normal(3, 7)
		whole.Add(x)
		if i%2 == 0 {
			left.Add(x)
		} else {
			right.Add(x)
		}
	}
	merged := left
	merged.Merge(right)
	if merged.N() != whole.N() {
		t.Fatalf("merged N = %d, want %d", merged.N(), whole.N())
	}
	if math.Abs(merged.Mean()-whole.Mean()) > 1e-9 {
		t.Errorf("merged mean %v != whole mean %v", merged.Mean(), whole.Mean())
	}
	if math.Abs(merged.Variance()-whole.Variance()) > 1e-9 {
		t.Errorf("merged variance %v != whole variance %v", merged.Variance(), whole.Variance())
	}
}

func TestRunningMergeEmpty(t *testing.T) {
	var a, b Running
	a.Add(1)
	a.Add(3)
	before := a
	a.Merge(b) // merging empty changes nothing
	if a != before {
		t.Error("merging empty accumulator changed state")
	}
	b.Merge(a) // merging into empty copies
	if b.Mean() != 2 || b.N() != 2 {
		t.Errorf("merge into empty: %+v", b)
	}
}

func TestTimeWeighted(t *testing.T) {
	var w TimeWeighted
	// Signal: 10 on [0,2), 20 on [2,3), 0 on [3,5).
	for _, obs := range []struct{ at, v float64 }{
		{at: 0, v: 10}, {at: 2, v: 20}, {at: 3, v: 0}, {at: 5, v: 99},
	} {
		if err := w.Observe(obs.at, obs.v); err != nil {
			t.Fatalf("Observe(%v, %v): %v", obs.at, obs.v, err)
		}
	}
	want := (10*2 + 20*1 + 0*2) / 5.0
	if got := w.Mean(); math.Abs(got-want) > 1e-12 {
		t.Errorf("Mean = %v, want %v", got, want)
	}
	if got := w.Duration(); got != 5 {
		t.Errorf("Duration = %v, want 5", got)
	}
}

func TestTimeWeightedEmpty(t *testing.T) {
	var w TimeWeighted
	if w.Mean() != 0 || w.Duration() != 0 {
		t.Error("empty TimeWeighted not zero")
	}
	// A single observation opens the window but has no area yet.
	if err := w.Observe(1, 5); err != nil {
		t.Fatal(err)
	}
	if w.Mean() != 0 {
		t.Errorf("single observation mean = %v, want 0", w.Mean())
	}
}

func TestTimeWeightedBackwardsTime(t *testing.T) {
	var w TimeWeighted
	if err := w.Observe(5, 1); err != nil {
		t.Fatal(err)
	}
	if err := w.Observe(4, 1); err == nil {
		t.Error("backwards time accepted")
	}
}

func TestSeries(t *testing.T) {
	var s Series
	s.Name = "test"
	s.Add(3, 30)
	s.Add(1, 10)
	s.Add(2, 20)
	if y, err := s.YAt(2); err != nil || y != 20 {
		t.Errorf("YAt(2) = %v, %v", y, err)
	}
	if _, err := s.YAt(99); err == nil {
		t.Error("YAt(99) did not error")
	}
	s.SortByX()
	for i, want := range []float64{1, 2, 3} {
		if s.Points[i].X != want {
			t.Errorf("after sort, point %d has x=%v, want %v", i, s.Points[i].X, want)
		}
	}
	lo, hi := s.MinMaxY()
	if lo != 10 || hi != 30 {
		t.Errorf("MinMaxY = (%v, %v), want (10, 30)", lo, hi)
	}
}

func TestSeriesEmptyMinMax(t *testing.T) {
	var s Series
	lo, hi := s.MinMaxY()
	if lo != 0 || hi != 0 {
		t.Errorf("empty MinMaxY = (%v, %v)", lo, hi)
	}
}

func TestCrossover(t *testing.T) {
	a := Series{Name: "a", Points: []Point{{X: 0, Y: 10}, {X: 10, Y: 8}, {X: 20, Y: 5}, {X: 30, Y: 2}}}
	b := Series{Name: "b", Points: []Point{{X: 0, Y: 5}, {X: 10, Y: 6}, {X: 20, Y: 6}, {X: 30, Y: 6}}}
	x1, x2, err := Crossover(a, b)
	if err != nil {
		t.Fatalf("Crossover: %v", err)
	}
	if x1 != 10 || x2 != 20 {
		t.Errorf("crossover at [%v, %v], want [10, 20]", x1, x2)
	}
}

func TestCrossoverErrors(t *testing.T) {
	a := Series{Name: "a", Points: []Point{{X: 0, Y: 1}, {X: 1, Y: 2}}}
	b := Series{Name: "b", Points: []Point{{X: 0, Y: 0}}}
	if _, _, err := Crossover(a, b); err == nil {
		t.Error("length mismatch accepted")
	}
	c := Series{Name: "c", Points: []Point{{X: 0, Y: 0}, {X: 5, Y: 0}}}
	if _, _, err := Crossover(a, c); err == nil {
		t.Error("x mismatch accepted")
	}
	// a stays above d forever: no crossover.
	d := Series{Name: "d", Points: []Point{{X: 0, Y: 0}, {X: 1, Y: 0}}}
	if _, _, err := Crossover(a, d); err == nil {
		t.Error("missing crossover accepted")
	}
}

// Property: Running.Mean matches the naive mean, and variance is never
// negative.
func TestQuickRunningMatchesNaive(t *testing.T) {
	f := func(seed uint64, n uint8) bool {
		src := rng.New(seed)
		count := int(n%100) + 1
		var r Running
		sum := 0.0
		xs := make([]float64, 0, count)
		for i := 0; i < count; i++ {
			x := src.Normal(0, 100)
			xs = append(xs, x)
			sum += x
			r.Add(x)
		}
		naive := sum / float64(count)
		if math.Abs(r.Mean()-naive) > 1e-6 {
			return false
		}
		return r.Variance() >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: merging a split stream equals accumulating the whole stream.
func TestQuickMergeEquivalence(t *testing.T) {
	f := func(seed uint64, n uint8, cut uint8) bool {
		src := rng.New(seed)
		count := int(n%64) + 2
		k := int(cut) % count
		var whole, a, b Running
		for i := 0; i < count; i++ {
			x := src.Float64() * 1000
			whole.Add(x)
			if i < k {
				a.Add(x)
			} else {
				b.Add(x)
			}
		}
		a.Merge(b)
		return a.N() == whole.N() &&
			math.Abs(a.Mean()-whole.Mean()) < 1e-6 &&
			math.Abs(a.Variance()-whole.Variance()) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
