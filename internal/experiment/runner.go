package experiment

import (
	"fmt"
	"sync"
	"sync/atomic"

	"facsp/internal/rng"
)

// Shard identifies one independent cell of an experiment sweep: a (load
// point, replication) pair together with the deterministic seed of its RNG
// substream. Shards are the unit of parallelism; each one is a complete,
// self-contained simulation run.
type Shard struct {
	// LoadIndex is the index into Options.Loads.
	LoadIndex int
	// Load is the number of requesting connections at this point.
	Load int
	// Replication is the seed replication index at this point.
	Replication int
	// Seed is the shard's substream seed, a pure function of
	// (Options.BaseSeed, LoadIndex, Replication) — never of worker
	// identity or scheduling order.
	Seed uint64
}

// ShardFunc executes one shard and returns its metric value.
type ShardFunc func(Shard) (float64, error)

// runSharded executes every (load, replication) shard of o on a bounded
// worker pool and returns the metric values indexed [loadIndex][replication].
//
// Determinism: a shard's seed comes from rng.Substream over its coordinates
// alone, and each result lands in its own cell of the result matrix, so the
// returned values are bit-identical regardless of Workers, GOMAXPROCS, or
// scheduling interleave. The first error in shard order (not completion
// order) is returned, also deterministically.
func runSharded(o Options, fn ShardFunc) ([][]float64, error) {
	results := make([][]float64, len(o.Loads))
	for i := range results {
		results[i] = make([]float64, o.Replications)
	}
	total := len(o.Loads) * o.Replications
	if total == 0 {
		return results, nil
	}
	errs := make([]error, total)

	workers := o.Workers
	if workers > total {
		workers = total
	}

	// Work-stealing by atomic counter: shards are claimed in index order,
	// so early results appear early, but nothing about placement affects
	// values — only throughput.
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= total {
					return
				}
				li, rep := i/o.Replications, i%o.Replications
				sh := Shard{
					LoadIndex:   li,
					Load:        o.Loads[li],
					Replication: rep,
					Seed:        rng.Substream(o.BaseSeed, uint64(li), uint64(rep)),
				}
				v, err := fn(sh)
				if err != nil {
					errs[i] = fmt.Errorf("experiment: load %d replication %d: %w", sh.Load, rep, err)
					continue
				}
				results[li][rep] = v
			}
		}()
	}
	wg.Wait()

	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results, nil
}
