package experiment

import (
	"errors"
	"fmt"
	"sort"

	"facsp/internal/cellsim"
	"facsp/internal/optimal"
	"facsp/internal/scenario"
)

// The leaderboard ranks every scheme on a scenario by one weighted
// drop/block objective and reports each scheme's regret against the
// value-iteration optimal policy. The objective charges the three ways a
// scheme can fail its users, in the cost ratio of the optimal policy's own
// model:
//
//	J = DropWeight·drop% + block% + (100 − bandwidth-ratio%)
//
// Dropping an on-going call costs optimal.DropWeight times a refused new
// one (the paper's priority), and the degradation shortfall charges the
// adaptive schemes the QoS they take from admitted calls to keep drops
// low — without it, squeezing every on-going call to its floor would look
// free and no fixed-allocation policy could be a bound.

// Objective computes the weighted drop/block objective for one run.
func Objective(r cellsim.Result) float64 {
	return optimal.DropWeight*r.DropPct() + (100 - r.AcceptedPct()) + (100 - 100*r.BandwidthRatio())
}

// LeaderboardEntry is one scheme's row on a scenario leaderboard.
type LeaderboardEntry struct {
	// ID and Name are the scheme id and display name.
	ID   string
	Name string
	// Objective is the weighted drop/block objective J, averaged over the
	// sweep's load points; CI95 is the mean per-load 95% half-width.
	Objective float64
	CI95      float64
	// Drop is the drop% component averaged over load points; DropCI95 its
	// mean per-load 95% half-width.
	Drop     float64
	DropCI95 float64
	// Regret is Objective minus the optimal policy's Objective on the same
	// scenario and seeds: the price of the heuristic, ~0 for the optimum
	// itself.
	Regret float64
}

// Leaderboard is the per-scenario ranking with regret against the
// computed optimum.
type Leaderboard struct {
	Scenario string
	Loads    []int
	// Entries are sorted by Objective, best (lowest) first.
	Entries []LeaderboardEntry
}

// RingScenarioNames returns the embedded schema-1 (ring topology)
// scenarios the leaderboard covers, in sorted order; the city-scale
// schema-2 scenarios run on the sharded city engine and are ranked
// separately (SCENARIOS.md).
func RingScenarioNames() []string {
	var names []string
	for _, name := range scenario.Names() {
		s, err := scenario.Load(name)
		if err != nil {
			panic("experiment: embedded scenario " + name + ": " + err.Error())
		}
		if s.Schema == scenario.SchemaV1 {
			names = append(names, name)
		}
	}
	return names
}

// RunLeaderboard ranks every applicable scheme on the scenario by the
// weighted objective and computes regret against the optimal policy.
// Seeds derive from opts exactly as in RunScenarioMetric, so the ranking
// is bit-identical for any worker count.
func RunLeaderboard(s *scenario.Scenario, opts Options) (*Leaderboard, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	cfg := ScenarioConfigFunc(s)
	o := opts.withDefaults()
	lb := &Leaderboard{Scenario: s.Name, Loads: o.Loads}
	for _, id := range SchemeIDs() {
		factory, err := ScenarioSchemeFactory(id, s, opts)
		if err == nil {
			entry, err2 := leaderboardEntry(id, cfg, factory, opts)
			if err2 != nil {
				return nil, fmt.Errorf("experiment: leaderboard %q scheme %s: %w", s.Name, id, err2)
			}
			lb.Entries = append(lb.Entries, entry)
			continue
		}
		if errors.Is(err, ErrSchemeNotApplicable) {
			continue
		}
		return nil, err
	}
	var opt *LeaderboardEntry
	for i := range lb.Entries {
		if lb.Entries[i].ID == "optimal" {
			opt = &lb.Entries[i]
		}
	}
	if opt == nil {
		return nil, fmt.Errorf("experiment: leaderboard %q ran without the optimal scheme", s.Name)
	}
	base := opt.Objective
	for i := range lb.Entries {
		lb.Entries[i].Regret = lb.Entries[i].Objective - base
	}
	sort.SliceStable(lb.Entries, func(i, j int) bool {
		return lb.Entries[i].Objective < lb.Entries[j].Objective
	})
	return lb, nil
}

// leaderboardEntry sweeps one scheme twice over the same deterministic
// seeds — once for the objective, once for its drop component — and
// averages across load points.
func leaderboardEntry(id string, cfg ConfigFunc, factory AdmitterFactory, opts Options) (LeaderboardEntry, error) {
	obj, err := RunCurve(schemeNames[id], cfg, factory, Objective, opts)
	if err != nil {
		return LeaderboardEntry{}, err
	}
	drop, err := RunCurve(schemeNames[id], cfg, factory, DropPct, opts)
	if err != nil {
		return LeaderboardEntry{}, err
	}
	e := LeaderboardEntry{ID: id, Name: schemeNames[id]}
	e.Objective, e.CI95 = meanAndCI(obj)
	e.Drop, e.DropCI95 = meanAndCI(drop)
	return e, nil
}

func meanAndCI(c Curve) (mean, ci float64) {
	n := len(c.Points)
	if n == 0 {
		return 0, 0
	}
	for i, p := range c.Points {
		mean += p.Y
		ci += c.CI95[i]
	}
	return mean / float64(n), ci / float64(n)
}

// GateOptimalFloor asserts the computed optimum is a floor of the
// leaderboard: no scheme's weighted objective — and no fixed-allocation
// scheme's drop metric — beats the optimal policy's by more than the
// combined 95% confidence half-widths plus slack (in percentage points).
// The adaptive schemes are exempt from the drop-only check: they buy low
// drops by degrading admitted calls mid-call, which the model's
// fixed-allocation action space cannot represent; the objective check,
// which charges that shortfall, still binds them.
func (lb *Leaderboard) GateOptimalFloor(slack float64) error {
	var opt *LeaderboardEntry
	for i := range lb.Entries {
		if lb.Entries[i].ID == "optimal" {
			opt = &lb.Entries[i]
		}
	}
	if opt == nil {
		return fmt.Errorf("experiment: leaderboard %q has no optimal entry", lb.Scenario)
	}
	for _, e := range lb.Entries {
		if e.ID == "optimal" {
			continue
		}
		noise := e.CI95 + opt.CI95 + slack
		if e.Objective < opt.Objective-noise {
			return fmt.Errorf("experiment: leaderboard %q: scheme %s objective %.2f beats optimal %.2f beyond noise %.2f",
				lb.Scenario, e.ID, e.Objective, opt.Objective, noise)
		}
		if degrades(e.ID) {
			continue
		}
		dropNoise := e.DropCI95 + opt.DropCI95 + slack
		if e.Drop < opt.Drop-dropNoise {
			return fmt.Errorf("experiment: leaderboard %q: scheme %s drop%% %.2f beats optimal %.2f beyond noise %.2f",
				lb.Scenario, e.ID, e.Drop, opt.Drop, dropNoise)
		}
	}
	return nil
}

// degrades reports whether the scheme serves admitted calls below their
// requested bandwidth (the adaptive schemes).
func degrades(id string) bool { return id == "adapt" || id == "adapt-fuzzy" }
