package experiment

import (
	"testing"

	"facsp/internal/cellsim"
	"facsp/internal/stats"
)

// fastOpts keeps integration runs quick while still averaging out seed
// noise enough for the shape assertions.
func fastOpts() Options {
	return Options{
		Loads:        []int{10, 25, 50, 100},
		Replications: 6,
	}
}

func TestRunCurveDeterministic(t *testing.T) {
	opts := Options{Loads: []int{20}, Replications: 3}
	run := func() Curve {
		c, err := RunCurve("FACS", singleCellConfig, FACSFactory(), AcceptedPct, opts)
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	a := run()
	b := run()
	if len(a.Points) != len(b.Points) {
		t.Fatalf("point counts differ")
	}
	for i := range a.Points {
		if a.Points[i] != b.Points[i] {
			t.Errorf("point %d differs: %v vs %v", i, a.Points[i], b.Points[i])
		}
	}
}

func TestRunCurveShape(t *testing.T) {
	opts := fastOpts()
	c, err := RunCurve("FACS", singleCellConfig, FACSFactory(), AcceptedPct, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Points) != len(opts.Loads) {
		t.Fatalf("got %d points, want %d", len(c.Points), len(opts.Loads))
	}
	if len(c.CI95) != len(opts.Loads) {
		t.Fatalf("got %d CIs, want %d", len(c.CI95), len(opts.Loads))
	}
	for i, p := range c.Points {
		if p.X != float64(opts.Loads[i]) {
			t.Errorf("point %d at x=%v, want %v", i, p.X, opts.Loads[i])
		}
		if p.Y < 0 || p.Y > 100 {
			t.Errorf("acceptance %v out of [0,100]", p.Y)
		}
		if c.CI95[i] < 0 {
			t.Errorf("negative CI %v", c.CI95[i])
		}
	}
	// Light load must beat heavy load decisively.
	if c.Points[0].Y <= c.Points[len(c.Points)-1].Y {
		t.Errorf("acceptance did not decline with load: %v", c.Points)
	}
}

func TestRunCurveBaseSeedChangesResults(t *testing.T) {
	opts := Options{Loads: []int{50}, Replications: 3}
	a, err := RunCurve("a", singleCellConfig, FACSFactory(), AcceptedPct, opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.BaseSeed = 12345
	b, err := RunCurve("b", singleCellConfig, FACSFactory(), AcceptedPct, opts)
	if err != nil {
		t.Fatal(err)
	}
	if a.Points[0].Y == b.Points[0].Y {
		t.Error("different base seeds produced identical curves; seeding may be broken")
	}
}

func TestFig7Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("integration sweep")
	}
	curves, err := Fig7(fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(curves) != 2 {
		t.Fatalf("got %d curves", len(curves))
	}
	facs, sccC := curves[0], curves[1]
	// Paper: FACS above SCC at light load, below at heavy load.
	firstF, lastF := facs.Points[0].Y, facs.Points[len(facs.Points)-1].Y
	firstS, lastS := sccC.Points[0].Y, sccC.Points[len(sccC.Points)-1].Y
	if firstF <= firstS {
		t.Errorf("at light load FACS (%v) not above SCC (%v)", firstF, firstS)
	}
	if lastF >= lastS {
		t.Errorf("at heavy load FACS (%v) not below SCC (%v)", lastF, lastS)
	}
}

func TestFig10Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("integration sweep")
	}
	curves, err := Fig10(fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	facsp, facs := curves[0], curves[1]
	// Paper: FACS-P below FACS at heavy load (it protects on-going calls),
	// and not below it at the lightest load.
	lastP, lastF := facsp.Points[len(facsp.Points)-1].Y, facs.Points[len(facs.Points)-1].Y
	if lastP >= lastF {
		t.Errorf("at heavy load FACS-P (%v) not below FACS (%v)", lastP, lastF)
	}
	firstP, firstF := facsp.Points[0].Y, facs.Points[0].Y
	if firstP < firstF-1.5 {
		t.Errorf("at light load FACS-P (%v) clearly below FACS (%v)", firstP, firstF)
	}
}

func TestDropsShape(t *testing.T) {
	if testing.Short() {
		t.Skip("integration sweep")
	}
	curves, err := Drops(Options{Loads: []int{100}, Replications: 6})
	if err != nil {
		t.Fatal(err)
	}
	facsp, facs := curves[0], curves[1]
	if facsp.Points[0].Y >= facs.Points[0].Y {
		t.Errorf("FACS-P drop%% (%v) not below FACS drop%% (%v) at heavy load",
			facsp.Points[0].Y, facs.Points[0].Y)
	}
	if facs.Points[0].Y < 5 {
		t.Errorf("FACS drop%% (%v) suspiciously low at heavy load", facs.Points[0].Y)
	}
}

func TestFig8SpeedOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("integration sweep")
	}
	curves, err := Fig8(Options{Loads: []int{75}, Replications: 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(curves) != 4 {
		t.Fatalf("got %d curves", len(curves))
	}
	// Acceptance increases with speed at heavy load.
	for i := 1; i < len(curves); i++ {
		lo := curves[i-1].Points[0].Y
		hi := curves[i].Points[0].Y
		if hi <= lo {
			t.Errorf("curve %q (%v) not above slower %q (%v)", curves[i].Name, hi, curves[i-1].Name, lo)
		}
	}
}

func TestFig9AngleOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("integration sweep")
	}
	curves, err := Fig9(Options{Loads: []int{25, 75}, Replications: 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(curves) != 5 {
		t.Fatalf("got %d curves", len(curves))
	}
	// The robust Fig. 9 claims (see EXPERIMENTS.md): the straight-at-the-BS
	// curve dominates every other angle decisively, and every curve
	// declines with load. The published FRB2 maps the whole mid-Cv band to
	// NRNA, so the 30..90-degree curves compress within a few points and
	// their internal ordering is not reproducible at decision level.
	straight := curves[0]
	for _, c := range curves[1:] {
		for pi := range straight.Points {
			if straight.Points[pi].Y <= c.Points[pi].Y {
				t.Errorf("angle 0 (%v) not above %q (%v) at load %v",
					straight.Points[pi].Y, c.Name, c.Points[pi].Y, c.Points[pi].X)
			}
		}
	}
	for _, c := range curves {
		light := c.Points[0].Y
		heavy := c.Points[len(c.Points)-1].Y
		if heavy >= light {
			t.Errorf("curve %q does not decline with load: %v -> %v", c.Name, light, heavy)
		}
	}
}

func TestFiguresRegistry(t *testing.T) {
	figs := Figures()
	for _, id := range []string{"7", "8", "9", "10", "drops"} {
		if figs[id] == nil {
			t.Errorf("figure %q missing from registry", id)
		}
	}
}

func TestMetrics(t *testing.T) {
	r := cellsim.Result{Requests: 10, Accepted: 8, Dropped: 2}
	if got := AcceptedPct(r); got != 80 {
		t.Errorf("AcceptedPct = %v", got)
	}
	if got := DropPct(r); got != 25 {
		t.Errorf("DropPct = %v", got)
	}
}

func TestCrossoverHelperIntegration(t *testing.T) {
	if testing.Short() {
		t.Skip("integration sweep")
	}
	opts := Options{Loads: []int{10, 20, 30, 40, 60, 100}, Replications: 8}
	curves, err := Fig10(opts)
	if err != nil {
		t.Fatal(err)
	}
	x1, x2, err := stats.Crossover(curves[0].Series, curves[1].Series)
	if err != nil {
		t.Fatalf("no FACS-P/FACS crossover found: %v", err)
	}
	if x1 < 10 || x2 > 60 {
		t.Errorf("crossover at [%v, %v], expected inside [10, 60]", x1, x2)
	}
}
