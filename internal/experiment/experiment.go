// Package experiment contains one runner per figure of the paper's
// evaluation (Figs. 7-10), the QoS (call-dropping) experiment that
// substantiates the paper's closing claim, and the adaptive-bandwidth
// head-to-heads (AdaptDrops, AdaptRatio) that pit the degradation schemes
// of internal/adapt against FACS-P and the guard channel. The runners are
// shared by cmd/facs-sim, the repository benchmarks, and EXPERIMENTS.md.
//
// Every runner sweeps the paper's x axis (number of requesting
// connections), replicates each point across seeds, and returns named
// curves with 95% confidence half-widths. Sweeps are sharded: every
// (load-point, replication) cell is an independent simulation with its own
// deterministic RNG substream (rng.Substream), executed on a bounded worker
// pool and reduced in fixed order — so curves are bit-identical for a given
// Options regardless of Workers or GOMAXPROCS.
package experiment

import (
	"fmt"
	"runtime"
	"sort"

	"facsp/internal/adapt"
	"facsp/internal/baseline"
	"facsp/internal/cac"
	"facsp/internal/cellsim"
	"facsp/internal/core"
	"facsp/internal/fuzzy"
	"facsp/internal/hexgrid"
	"facsp/internal/hotness"
	"facsp/internal/learned"
	"facsp/internal/metrics"
	"facsp/internal/optimal"
	"facsp/internal/scc"
	"facsp/internal/stats"
)

// Options control an experiment sweep.
type Options struct {
	// Loads is the x axis: numbers of requesting connections. Nil uses
	// DefaultLoads.
	Loads []int
	// Replications is the number of seeds per point (default 20).
	Replications int
	// Workers bounds the worker pool (default GOMAXPROCS). Results are
	// bit-identical for any value; Workers only changes throughput.
	Workers int
	// BaseSeed offsets all run seeds, for independent repetitions of a
	// whole experiment. Every shard's seed is derived from it with
	// rng.Substream.
	BaseSeed uint64
	// SurfaceResolution, when positive, runs the fuzzy controllers on
	// precomputed decision surfaces at this per-axis resolution instead of
	// exact Mamdani inference (see core.Config.SurfaceResolution) — much
	// faster, at a small quantization error. 0 keeps exact inference, which
	// is what the published figure shapes are validated against.
	SurfaceResolution int
	// Metrics, when non-nil, is injected into every shard's simulation
	// config so the whole sweep accumulates into one shared per-cell
	// counter registry (registry bumps are atomic, so concurrent shards
	// compose; see cellsim.Config.Metrics). The registry must cover the
	// largest topology the ConfigFunc produces. Counter totals are
	// deterministic across worker counts; only interleaving varies.
	Metrics *metrics.Registry
	// Hotness, when non-nil, is injected likewise (see
	// cellsim.Config.Hotness). Shards share one simulation-time axis, so
	// the decayed value is only meaningful for equal-horizon shards; the
	// ranking of per-cell demand still is either way.
	Hotness *hotness.Tracker
}

// DefaultLoads is the x axis used for the figures: dense enough around the
// paper's crossover points (25 for Fig. 10, 50 for Fig. 7).
func DefaultLoads() []int {
	return []int{5, 10, 15, 20, 25, 30, 35, 40, 45, 50, 60, 70, 80, 90, 100}
}

// validate rejects option values that would otherwise surface as panics
// deep inside a worker goroutine.
func (o Options) validate() error {
	// The 0-or->=2 rule is core's: one validation for every resolution knob.
	if err := core.ValidateSurfaceResolution(o.SurfaceResolution); err != nil {
		return fmt.Errorf("experiment: %w", err)
	}
	return nil
}

func (o Options) withDefaults() Options {
	if o.Loads == nil {
		o.Loads = DefaultLoads()
	}
	if o.Replications <= 0 {
		o.Replications = 20
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	return o
}

// Curve is a named figure curve with per-point confidence intervals.
type Curve struct {
	stats.Series
	// CI95 holds the 95% confidence half-width for each point, in point
	// order.
	CI95 []float64
}

// AdmitterFactory builds a fresh admitter for one simulation run. The
// factory must return an independent instance each call: runs never share
// controller state.
type AdmitterFactory func() cellsim.Admitter

// Metric extracts the y value from one run.
type Metric func(cellsim.Result) float64

// AcceptedPct is the paper's headline metric.
func AcceptedPct(r cellsim.Result) float64 { return r.AcceptedPct() }

// DropPct measures the QoS of on-going connections: the percentage of
// admitted calls later dropped at a handoff.
func DropPct(r cellsim.Result) float64 { return r.DropPct() }

// BandwidthRatioPct is the degradation-ratio metric of the adaptive
// schemes: the time-weighted mean received/requested bandwidth of admitted
// calls, as a percentage (100 = nobody was ever degraded).
func BandwidthRatioPct(r cellsim.Result) float64 { return 100 * r.BandwidthRatio() }

// FACSFactory returns a per-cell FACS admitter factory with the default
// configuration.
func FACSFactory() AdmitterFactory { return FACSFactoryWith(core.DefaultConfig()) }

// FACSFactoryWith returns a per-cell FACS admitter factory for cfg. The
// config must be valid: factories are wired statically into figure runners,
// so a bad one is a programming error and panics at first use.
func FACSFactoryWith(cfg core.Config) AdmitterFactory {
	return func() cellsim.Admitter {
		return cellsim.NewPerCell(func(hexgrid.Coord) cac.Controller {
			f, err := core.NewFACS(cfg)
			if err != nil {
				panic("experiment: " + err.Error())
			}
			return f
		})
	}
}

// FACSPFactory returns a per-cell FACS-P admitter factory with the default
// configuration.
func FACSPFactory() AdmitterFactory { return FACSPFactoryWith(core.DefaultPConfig()) }

// FACSPFactoryWith returns a per-cell FACS-P admitter factory for cfg.
func FACSPFactoryWith(cfg core.PConfig) AdmitterFactory {
	return func() cellsim.Admitter {
		return cellsim.NewPerCell(func(hexgrid.Coord) cac.Controller {
			f, err := core.NewFACSP(cfg)
			if err != nil {
				panic("experiment: " + err.Error())
			}
			return f
		})
	}
}

// facsFactory returns the FACS factory honouring the options' surface
// setting.
func (o Options) facsFactory() AdmitterFactory {
	cfg := core.DefaultConfig()
	cfg.SurfaceResolution = o.SurfaceResolution
	return FACSFactoryWith(cfg)
}

// facspFactory returns the FACS-P factory honouring the options' surface
// setting.
func (o Options) facspFactory() AdmitterFactory {
	cfg := core.DefaultPConfig()
	cfg.SurfaceResolution = o.SurfaceResolution
	return FACSPFactoryWith(cfg)
}

// AdaptFactory returns a per-cell adaptive-bandwidth admitter factory
// with the default degradation ladders (internal/adapt).
func AdaptFactory() AdmitterFactory { return AdaptFactoryWith(adapt.DefaultConfig()) }

// AdaptFactoryWith returns a per-cell adaptive-bandwidth admitter factory
// for cfg.
func AdaptFactoryWith(cfg adapt.Config) AdmitterFactory {
	return func() cellsim.Admitter {
		return cellsim.NewPerCell(func(hexgrid.Coord) cac.Controller {
			c, err := adapt.New(cfg)
			if err != nil {
				panic("experiment: " + err.Error())
			}
			return c
		})
	}
}

// AdaptFuzzyFactory returns a per-cell fuzzy adaptive-bandwidth admitter
// factory: the degradation machinery gated by the FACS-P inference
// pipeline with the reclaimable headroom fed into the priority stage.
func AdaptFuzzyFactory() AdmitterFactory {
	return AdaptFuzzyFactoryWith(adapt.DefaultConfig(), core.DefaultPConfig())
}

// AdaptFuzzyFactoryWith returns a per-cell fuzzy adaptive admitter factory
// for the given degradation and FACS-P configs.
func AdaptFuzzyFactoryWith(cfg adapt.Config, pcfg core.PConfig) AdmitterFactory {
	return func() cellsim.Admitter {
		return cellsim.NewPerCell(func(hexgrid.Coord) cac.Controller {
			c, err := adapt.NewFuzzy(cfg, pcfg)
			if err != nil {
				panic("experiment: " + err.Error())
			}
			return c
		})
	}
}

// adaptFuzzyFactory returns the fuzzy adaptive factory honouring the
// options' surface setting.
func (o Options) adaptFuzzyFactory() AdmitterFactory {
	pcfg := core.DefaultPConfig()
	pcfg.SurfaceResolution = o.SurfaceResolution
	return AdaptFuzzyFactoryWith(adapt.DefaultConfig(), pcfg)
}

// GuardFactory returns a per-cell guard-channel admitter factory with the
// given capacity and guard band in BU.
func GuardFactory(capacity, guard float64) AdmitterFactory {
	return func() cellsim.Admitter {
		return cellsim.NewPerCell(func(hexgrid.Coord) cac.Controller {
			c, err := baseline.NewGuardChannel(capacity, guard)
			if err != nil {
				panic("experiment: " + err.Error())
			}
			return c
		})
	}
}

// OptimalFactory returns a per-cell admitter factory for the
// value-iteration optimal threshold policy (internal/optimal) at the given
// capacity — the computed upper bound every heuristic scheme is ranked
// against.
func OptimalFactory(capacity float64) AdmitterFactory {
	return func() cellsim.Admitter {
		return cellsim.NewPerCell(func(hexgrid.Coord) cac.Controller {
			c, err := optimal.ForCapacity(capacity)
			if err != nil {
				panic("experiment: " + err.Error())
			}
			return c
		})
	}
}

// LearnedFactory returns a per-cell admitter factory for the
// table-compiled learned controller (internal/learned) at the given
// capacity, serving the committed weights artifact.
func LearnedFactory(capacity float64) AdmitterFactory {
	return func() cellsim.Admitter {
		return cellsim.NewPerCell(func(hexgrid.Coord) cac.Controller {
			c, err := learned.New(capacity)
			if err != nil {
				panic("experiment: " + err.Error())
			}
			return c
		})
	}
}

// SCCFactory returns a network-level shadow-cluster admitter factory.
func SCCFactory() AdmitterFactory {
	return func() cellsim.Admitter {
		c, err := scc.New(scc.DefaultConfig())
		if err != nil {
			panic("experiment: " + err.Error())
		}
		return c
	}
}

// SchemeFactory returns the admitter factory for one of the scheme ids in
// SchemeIDs, honouring the options' surface setting — the paper-default
// configuration of every scheme, as used by the figure head-to-heads. The
// perf harness (internal/perf) builds its scheme x figure sweeps from it.
func (o Options) SchemeFactory(id string) (AdmitterFactory, error) {
	switch id {
	case "facs":
		return o.facsFactory(), nil
	case "facsp":
		return o.facspFactory(), nil
	case "scc":
		return SCCFactory(), nil
	case "guard":
		return GuardFactory(core.CounterMax, GuardBand), nil
	case "adapt":
		return AdaptFactory(), nil
	case "adapt-fuzzy":
		return o.adaptFuzzyFactory(), nil
	case "optimal":
		return OptimalFactory(core.CounterMax), nil
	case "learned":
		return LearnedFactory(core.CounterMax), nil
	default:
		return nil, fmt.Errorf("experiment: unknown scheme %q (have %v)", id, SchemeIDs())
	}
}

// ConfigFunc produces the simulation config for one (load, seed) pair;
// figure runners use it to pin speeds/angles and choose the cluster setup.
type ConfigFunc func(load int, seed uint64) cellsim.Config

// RunCurve sweeps the loads for one scheme and returns its curve. Shards
// run in parallel (Options.Workers) with deterministic per-shard RNG
// substreams; the curve is bit-identical for any worker count.
func RunCurve(name string, cfg ConfigFunc, factory AdmitterFactory, metric Metric, opts Options) (Curve, error) {
	if err := opts.validate(); err != nil {
		return Curve{}, fmt.Errorf("curve %q: %w", name, err)
	}
	o := opts.withDefaults()

	results, err := runSharded(o, func(sh Shard) (float64, error) {
		c := cfg(sh.Load, sh.Seed)
		if o.Metrics != nil {
			c.Metrics = o.Metrics
		}
		if o.Hotness != nil {
			c.Hotness = o.Hotness
		}
		sim, err := cellsim.New(c, factory())
		if err != nil {
			return 0, err
		}
		res, err := sim.Run()
		if err != nil {
			return 0, err
		}
		return metric(res), nil
	})
	if err != nil {
		return Curve{}, fmt.Errorf("experiment: curve %q: %w", name, err)
	}

	curve := Curve{Series: stats.Series{Name: name}}
	for li, load := range o.Loads {
		var acc stats.Running
		for _, v := range results[li] {
			acc.Add(v)
		}
		curve.Add(float64(load), acc.Mean())
		curve.CI95 = append(curve.CI95, acc.CI95())
	}
	return curve, nil
}

// singleCellConfig is the legacy single-cell set-up of the paper's
// previous work ([14,15]): all requesting connections target the tagged
// cell, neighbour cells carry no background traffic. Fig. 7 republishes
// that comparison.
func singleCellConfig(load int, seed uint64) cellsim.Config {
	c := cellsim.DefaultConfig(load, seed)
	c.NeighborRequests = 0
	return c
}

// homogeneousConfig is the paper's FACS-P set-up: every cell receives the
// same number of requesting connections, so handoffs contend with
// background load (Figs. 8-10).
func homogeneousConfig(load int, seed uint64) cellsim.Config {
	return cellsim.DefaultConfig(load, seed)
}

// Fig7 reproduces "Performance of FACS and SCC": percentage of accepted
// calls vs number of requesting connections for the previous FACS system
// and the Shadow Cluster Concept. Expected shape: FACS above SCC below
// ~50 requesting connections, below SCC above it.
func Fig7(opts Options) ([]Curve, error) {
	facs, err := RunCurve("FACS", singleCellConfig, opts.facsFactory(), AcceptedPct, opts)
	if err != nil {
		return nil, err
	}
	sccCurve, err := RunCurve("SCC", singleCellConfig, SCCFactory(), AcceptedPct, opts)
	if err != nil {
		return nil, err
	}
	return []Curve{facs, sccCurve}, nil
}

// Fig8 reproduces "percentage of accepted calls vs number of requesting
// connections for different speed values (FACS-P)": one curve per pinned
// user speed. Expected shape: acceptance increases with speed at every
// load. (The paper's axis labels the speeds "km/s"; they are km/h.)
//
// Like Fig. 7, this sensitivity sweep uses the single-cell set-up: it
// probes the tagged BS under one controlled parameter. Pinning every
// *neighbour* cell to the same extreme parameter would bury the decision
// effect under synchronized handoff-in traffic the paper does not model.
func Fig8(opts Options) ([]Curve, error) {
	speeds := []float64{4, 10, 30, 60}
	curves := make([]Curve, 0, len(speeds))
	for _, sp := range speeds {
		sp := sp
		cfg := func(load int, seed uint64) cellsim.Config {
			c := singleCellConfig(load, seed)
			c.Speed = cellsim.Fixed(sp)
			return c
		}
		curve, err := RunCurve(fmt.Sprintf("%g km/h", sp), cfg, opts.facspFactory(), AcceptedPct, opts)
		if err != nil {
			return nil, err
		}
		curves = append(curves, curve)
	}
	return curves, nil
}

// Fig9 reproduces "percentage of accepted calls vs number of requesting
// connections for different angle values (FACS-P)": one curve per pinned
// user angle. Expected shape: acceptance decreases as the angle grows,
// with the 90-degree curve near the floor (beyond 90 the paper reports
// ~zero and does not plot it).
//
// The sweep runs in static (decision-level) mode: with spatial motion a
// pinned 90-degree trajectory mechanically shortens cell residence and
// frees capacity faster, an artifact that rewards exactly the users the
// policy is meant to filter. Holding occupancy dynamics identical across
// curves isolates what the paper varies — the admission decision.
func Fig9(opts Options) ([]Curve, error) {
	angles := []float64{0, 30, 50, 60, 90}
	curves := make([]Curve, 0, len(angles))
	for _, an := range angles {
		an := an
		cfg := func(load int, seed uint64) cellsim.Config {
			c := singleCellConfig(load, seed)
			c.Angle = cellsim.Fixed(an)
			c.Static = true
			return c
		}
		curve, err := RunCurve(fmt.Sprintf("angle=%g", an), cfg, opts.facspFactory(), AcceptedPct, opts)
		if err != nil {
			return nil, err
		}
		curves = append(curves, curve)
	}
	return curves, nil
}

// Fig10 reproduces "Performance of proposed FACS-P with FACS": percentage
// of accepted calls for the proposed and previous systems. Expected shape:
// FACS-P above FACS below ~25 requesting connections, below FACS above it,
// with the gap widening toward 100.
func Fig10(opts Options) ([]Curve, error) {
	facsp, err := RunCurve("FACS-P (proposed)", homogeneousConfig, opts.facspFactory(), AcceptedPct, opts)
	if err != nil {
		return nil, err
	}
	facs, err := RunCurve("FACS (previous)", homogeneousConfig, opts.facsFactory(), AcceptedPct, opts)
	if err != nil {
		return nil, err
	}
	return []Curve{facsp, facs}, nil
}

// Drops measures the QoS of on-going connections for FACS-P vs FACS: the
// percentage of admitted calls later dropped at a handoff. It backs the
// paper's conclusion that the proposed system "keeps a higher QoS of
// on-going connections" with a number the paper itself never plots.
func Drops(opts Options) ([]Curve, error) {
	facsp, err := RunCurve("FACS-P drop%", homogeneousConfig, opts.facspFactory(), DropPct, opts)
	if err != nil {
		return nil, err
	}
	facs, err := RunCurve("FACS drop%", homogeneousConfig, opts.facsFactory(), DropPct, opts)
	if err != nil {
		return nil, err
	}
	return []Curve{facsp, facs}, nil
}

// GuardBand is the handoff reservation of the guard-channel comparator in
// the adaptive-bandwidth experiments: 8 of the 40 BU, i.e. 20% of the cell
// — a strong classical protection level for the degradation schemes to
// beat (and the default of cmd/facs-server's guard scheme). Exported so
// the perf harness (internal/perf) can rebuild the same head-to-head.
const GuardBand = 8

// AdaptDrops is the adaptive-bandwidth head-to-head on the QoS metric the
// scheme exists for: the percentage of admitted calls later dropped at a
// handoff, for the crisp and fuzzy adaptive schemes vs FACS-P vs a
// guard channel reserving 20% of the cell. Expected shape: both adaptive
// curves below guard-channel at every load — degrading elastic on-going
// calls admits handoffs a reservation would still have to refuse.
func AdaptDrops(opts Options) ([]Curve, error) {
	adaptCurve, err := RunCurve("adapt drop%", homogeneousConfig, AdaptFactory(), DropPct, opts)
	if err != nil {
		return nil, err
	}
	fuzzyCurve, err := RunCurve("adapt-fuzzy drop%", homogeneousConfig, opts.adaptFuzzyFactory(), DropPct, opts)
	if err != nil {
		return nil, err
	}
	facsp, err := RunCurve("FACS-P drop%", homogeneousConfig, opts.facspFactory(), DropPct, opts)
	if err != nil {
		return nil, err
	}
	guard, err := RunCurve("guard-channel drop%", homogeneousConfig,
		GuardFactory(core.CounterMax, GuardBand), DropPct, opts)
	if err != nil {
		return nil, err
	}
	return []Curve{adaptCurve, fuzzyCurve, facsp, guard}, nil
}

// AdaptRatio reports what the adaptive schemes pay for their handoff
// protection: the degradation ratio (time-weighted mean received/requested
// bandwidth of admitted calls, in percent) vs offered load, with the
// guard channel as the flat-100% reference. Expected shape: both adaptive
// curves decline with load as elastic calls spend more time squeezed.
func AdaptRatio(opts Options) ([]Curve, error) {
	adaptCurve, err := RunCurve("adapt", homogeneousConfig, AdaptFactory(), BandwidthRatioPct, opts)
	if err != nil {
		return nil, err
	}
	fuzzyCurve, err := RunCurve("adapt-fuzzy", homogeneousConfig, opts.adaptFuzzyFactory(), BandwidthRatioPct, opts)
	if err != nil {
		return nil, err
	}
	guard, err := RunCurve("guard-channel", homogeneousConfig,
		GuardFactory(core.CounterMax, GuardBand), BandwidthRatioPct, opts)
	if err != nil {
		return nil, err
	}
	return []Curve{adaptCurve, fuzzyCurve, guard}, nil
}

// AblationHandoffPriority isolates the handoff-priority half of FACS-P's
// mechanism: the full controller vs one whose handoffs face the same
// adaptive threshold as new calls. The gap in dropped-call percentage is
// the value of "priority of on-going connections" by itself.
func AblationHandoffPriority(opts Options) ([]Curve, error) {
	withPriority, err := RunCurve("handoff priority (default)", homogeneousConfig, opts.facspFactory(), DropPct, opts)
	if err != nil {
		return nil, err
	}
	noCfg := core.DefaultPConfig()
	// Handoffs must clear the same bar as a new call into an empty-ish
	// cell: no reserved leniency.
	noCfg.HandoffThreshold = core.DefaultThreshold
	noCfg.SurfaceResolution = opts.SurfaceResolution
	noPriority := FACSPFactoryWith(noCfg)
	without, err := RunCurve("no handoff priority", homogeneousConfig, noPriority, DropPct, opts)
	if err != nil {
		return nil, err
	}
	return []Curve{withPriority, without}, nil
}

// AblationDefuzzifier compares the centroid defuzzifier against the cheap
// height defuzzifier on the full Fig. 10 workload: how much of the curve
// is shaped by the defuzzification choice DESIGN.md discusses.
func AblationDefuzzifier(opts Options) ([]Curve, error) {
	centroid, err := RunCurve("centroid defuzzifier", homogeneousConfig, opts.facspFactory(), AcceptedPct, opts)
	if err != nil {
		return nil, err
	}
	heightCfg := core.DefaultPConfig()
	heightCfg.Defuzzifier = fuzzy.Height{}
	heightCfg.SurfaceResolution = opts.SurfaceResolution
	height := FACSPFactoryWith(heightCfg)
	heightCurve, err := RunCurve("height defuzzifier", homogeneousConfig, height, AcceptedPct, opts)
	if err != nil {
		return nil, err
	}
	return []Curve{centroid, heightCurve}, nil
}

// Figures maps figure identifiers to their runners, for cmd/facs-sim.
func Figures() map[string]func(Options) ([]Curve, error) {
	return map[string]func(Options) ([]Curve, error){
		"7":                Fig7,
		"8":                Fig8,
		"9":                Fig9,
		"10":               Fig10,
		"drops":            Drops,
		"adapt-drops":      AdaptDrops,
		"adapt-ratio":      AdaptRatio,
		"ablation-handoff": AblationHandoffPriority,
		"ablation-defuzz":  AblationDefuzzifier,
	}
}

// FigureIDs returns the known figure identifiers in sorted order, for
// usage and error text — derived from the registry so it can never go
// stale.
func FigureIDs() []string {
	figs := Figures()
	ids := make([]string, 0, len(figs))
	for id := range figs {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}
