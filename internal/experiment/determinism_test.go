package experiment

import (
	"reflect"
	"testing"

	"facsp/internal/rng"
)

// The sharded runner's contract: curves are a pure function of Options —
// never of worker count, GOMAXPROCS (exercised via `go test -cpu 1,4,8`),
// or scheduling order. These tests also run under -race in CI, which is
// what proves the shard cells are truly disjoint.

func detOpts(workers int) Options {
	return Options{Loads: []int{5, 12}, Replications: 4, Workers: workers, BaseSeed: 99}
}

func curveFingerprint(t *testing.T, workers int) Curve {
	t.Helper()
	c, err := RunCurve("det", singleCellConfig, FACSFactory(), AcceptedPct, detOpts(workers))
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestRunCurveIdenticalAcrossWorkerCounts(t *testing.T) {
	base := curveFingerprint(t, 1)
	for _, workers := range []int{2, 4, 8, 64} {
		got := curveFingerprint(t, workers)
		if !reflect.DeepEqual(base, got) {
			t.Errorf("curve with %d workers differs from 1 worker:\n 1: %+v\n%2d: %+v",
				workers, base, workers, got)
		}
	}
}

func TestRunFigureIdenticalAcrossWorkerCounts(t *testing.T) {
	if testing.Short() {
		t.Skip("integration sweep")
	}
	run := func(workers int) []Curve {
		opts := Options{Loads: []int{10, 30}, Replications: 3, Workers: workers}
		curves, err := Fig10(opts)
		if err != nil {
			t.Fatal(err)
		}
		return curves
	}
	base := run(1)
	for _, workers := range []int{4, 8} {
		if got := run(workers); !reflect.DeepEqual(base, got) {
			t.Errorf("Fig10 with %d workers differs from 1 worker", workers)
		}
	}
}

func TestShardSeedsAreCoordinateFunctions(t *testing.T) {
	// The seed of a shard depends only on (BaseSeed, loadIndex, replication):
	// inserting a load point must not perturb the streams of existing cells
	// at the same indices, and distinct cells must get distinct seeds.
	seen := make(map[uint64][2]int)
	for li := 0; li < 50; li++ {
		for rep := 0; rep < 50; rep++ {
			s := rng.Substream(7, uint64(li), uint64(rep))
			if prev, dup := seen[s]; dup {
				t.Fatalf("shards (%d,%d) and %v share seed %d", li, rep, prev, s)
			}
			seen[s] = [2]int{li, rep}
		}
	}
	if rng.Substream(1, 2, 3) == rng.Substream(1, 3, 2) {
		t.Error("Substream is not position-sensitive")
	}
	if rng.Substream(1, 2, 3) == rng.Substream(2, 2, 3) {
		t.Error("Substream ignores the base seed")
	}
}

func TestRunShardedErrorDeterministic(t *testing.T) {
	// The reported error is the first in shard order regardless of which
	// worker hit it first.
	opts := Options{Loads: []int{1, 2, 3}, Replications: 2, Workers: 8}
	boom := func(sh Shard) (float64, error) {
		if sh.LoadIndex >= 1 {
			return 0, errShard{sh}
		}
		return 1, nil
	}
	for i := 0; i < 5; i++ {
		_, err := runSharded(opts, boom)
		if err == nil {
			t.Fatal("expected error")
		}
		want := "experiment: load 2 replication 0"
		if got := err.Error(); len(got) < len(want) || got[:len(want)] != want {
			t.Fatalf("error %q does not start with %q", got, want)
		}
	}
}

type errShard struct{ sh Shard }

func (e errShard) Error() string { return "boom" }

func TestRunCurveRejectsInvalidSurfaceResolution(t *testing.T) {
	// Invalid resolutions must come back as errors from the public sweep
	// entry points, not as panics inside a worker goroutine.
	for _, res := range []int{-1, 1} {
		opts := detOpts(2)
		opts.SurfaceResolution = res
		if _, err := RunCurve("bad", singleCellConfig, opts.facspFactory(), AcceptedPct, opts); err == nil {
			t.Errorf("surface resolution %d accepted", res)
		}
		if _, err := Fig10(opts); err == nil {
			t.Errorf("Fig10 accepted surface resolution %d", res)
		}
	}
}

func TestRunCurveSurfaceOption(t *testing.T) {
	// The surface-cached sweep must run end to end and stay deterministic;
	// its values may differ slightly from exact inference.
	opts := detOpts(4)
	opts.SurfaceResolution = 17
	run := func() Curve {
		c, err := RunCurve("surf", singleCellConfig, opts.facspFactory(), AcceptedPct, opts)
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Error("surface-cached sweep is not deterministic")
	}
	for i, p := range a.Points {
		if p.Y < 0 || p.Y > 100 {
			t.Errorf("point %d acceptance %v outside [0,100]", i, p.Y)
		}
	}
}
