package experiment

import (
	"fmt"

	"facsp/internal/cellsim"
	"facsp/internal/core"
	"facsp/internal/hexgrid"
	"facsp/internal/scenario"
)

// City-scale runs: one multi-cluster scenario (typically emitted by
// scenario.GenerateCity) executed on the cell-group-sharded engine
// (cellsim.RunSharded) instead of the single-heap reference engine. Where
// a scenario sweep parallelises across (load, replication) shards, a city
// run parallelises inside ONE simulation — the topology is partitioned
// into worker-owned cell groups — so a single 1000-cell run speeds up
// with worker count while its metrics stay bit-identical.

// CityRun parameterises one sharded city simulation.
type CityRun struct {
	// Scheme is the admission-scheme id (see SchemeIDs). Network-level
	// schemes without per-cell compiled state (scc) cannot shard and
	// return ErrSchemeNotApplicable.
	Scheme string
	// Load is the per-unit-load number of requesting connections fed to
	// Scenario.ConfigFor; each cell offers round(Load × its multiplier).
	Load int
	// Seed is the run seed (cell streams derive from it per-slot).
	Seed uint64
	// Shard carries the group/worker split; the zero value picks
	// topology-default groups and GOMAXPROCS-bounded workers.
	Shard cellsim.ShardOptions
	// Tiers, when non-nil, runs the scheme on hotness-tiered decision
	// surfaces: every cell's resolution is assigned statically before the
	// run from the sim-time hotness axis (AssignTiers), so the result
	// stays bit-identical for any worker count. Only fuzzy schemes can
	// tier (TieredSchemeFactory); Options.SurfaceResolution is ignored.
	Tiers *core.TierConfig
}

// RunCity validates the scenario, builds the scheme's per-cell admitter
// over the scenario's capacity map (dead cells included) and executes one
// sharded run. Results are bit-identical for any Shard.Workers value.
func RunCity(s *scenario.Scenario, run CityRun, opts Options) (cellsim.Result, error) {
	if err := s.Validate(); err != nil {
		return cellsim.Result{}, err
	}
	if run.Load < 0 {
		return cellsim.Result{}, fmt.Errorf("experiment: city %q: negative load %d", s.Name, run.Load)
	}
	cfg, err := s.ConfigFor(run.Load, run.Seed)
	if err != nil {
		return cellsim.Result{}, err
	}
	var factory AdmitterFactory
	if run.Tiers != nil {
		tiers, err := AssignTiers(cfg, *run.Tiers)
		if err != nil {
			return cellsim.Result{}, fmt.Errorf("experiment: city %q: assigning tiers: %w", s.Name, err)
		}
		topo := cfg.Topology
		if topo == nil {
			topo = hexgrid.DiskTopology(hexgrid.Coord{}, cfg.Rings)
		}
		ladder := run.Tiers.Tiers
		factory, err = TieredSchemeFactory(run.Scheme, s, func(cell hexgrid.Coord) int {
			slot, ok := topo.Of(cell)
			if !ok {
				panic(fmt.Sprintf("experiment: cell %v outside the city topology", cell))
			}
			return ladder[tiers[slot]].Resolution
		})
		if err != nil {
			return cellsim.Result{}, err
		}
	} else if factory, err = ScenarioSchemeFactory(run.Scheme, s, opts); err != nil {
		return cellsim.Result{}, err
	}
	adm := factory()
	if _, ok := adm.(cellsim.TopologyCompiler); !ok {
		return cellsim.Result{}, fmt.Errorf("experiment: city %q: scheme %s has no per-cell compiled state and cannot shard: %w",
			s.Name, run.Scheme, ErrSchemeNotApplicable)
	}
	res, err := cellsim.RunSharded(cfg, adm, run.Shard)
	if err != nil {
		return cellsim.Result{}, fmt.Errorf("experiment: city %q scheme %s: %w", s.Name, run.Scheme, err)
	}
	return res, nil
}

// RunEvalCity generates the standard ~1000-cell evaluation city
// (scenario.EvalCityParams) and runs it. This is the entry point behind
// the perf suite's city specs and facs-sim -city.
func RunEvalCity(run CityRun, opts Options) (cellsim.Result, error) {
	s, err := scenario.GenerateCity(scenario.EvalCityParams())
	if err != nil {
		return cellsim.Result{}, err
	}
	return RunCity(s, run, opts)
}
