package experiment

import (
	"testing"

	"facsp/internal/cellsim"
	"facsp/internal/scenario"
)

func TestRingScenarioNames(t *testing.T) {
	names := RingScenarioNames()
	want := []string{"diurnal-city", "flash-crowd", "highway", "stadium-hotspot"}
	if len(names) != len(want) {
		t.Fatalf("RingScenarioNames = %v, want %v", names, want)
	}
	for i, n := range want {
		if names[i] != n {
			t.Fatalf("RingScenarioNames = %v, want %v", names, want)
		}
	}
}

func TestObjectiveComponents(t *testing.T) {
	// A run with no failures scores 0; each failure mode charges its
	// weight.
	perfect := cellsim.Result{Requests: 100, Accepted: 100, BandwidthGranted: 1, BandwidthRequested: 1}
	if got := Objective(perfect); got != 0 {
		t.Errorf("perfect run objective = %v, want 0", got)
	}
	blocked := cellsim.Result{Requests: 100, Accepted: 50, BandwidthGranted: 1, BandwidthRequested: 1}
	if got := Objective(blocked); got != 50 {
		t.Errorf("half-blocked objective = %v, want 50 (block%% weighs 1)", got)
	}
}

func TestRunLeaderboardRanksAndGates(t *testing.T) {
	s, err := scenario.Load("flash-crowd")
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{Loads: []int{10, 30}, Replications: 2, SurfaceResolution: 33}
	lb, err := RunLeaderboard(s, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(lb.Entries) != len(SchemeIDs()) {
		t.Fatalf("leaderboard has %d entries, want %d (flash-crowd is uniform-capacity, every scheme applies)",
			len(lb.Entries), len(SchemeIDs()))
	}
	var opt *LeaderboardEntry
	seen := map[string]bool{}
	for i := range lb.Entries {
		e := &lb.Entries[i]
		seen[e.ID] = true
		if e.ID == "optimal" {
			opt = e
		}
		if i > 0 && lb.Entries[i-1].Objective > e.Objective {
			t.Errorf("entries not sorted by objective: %v then %v", lb.Entries[i-1].Objective, e.Objective)
		}
	}
	if opt == nil {
		t.Fatal("no optimal entry")
	}
	if opt.Regret != 0 {
		t.Errorf("optimal regret = %v, want 0 by construction", opt.Regret)
	}
	for _, e := range lb.Entries {
		if e.Objective-opt.Objective != e.Regret {
			t.Errorf("scheme %s: regret %v inconsistent with objectives", e.ID, e.Regret)
		}
	}
	if err := lb.GateOptimalFloor(1); err != nil {
		t.Errorf("optimal-floor gate failed on the embedded scenario: %v", err)
	}

	// Determinism: the ranking is bit-identical across worker counts.
	opts.Workers = 1
	again, err := RunLeaderboard(s, opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := range lb.Entries {
		if lb.Entries[i] != again.Entries[i] {
			t.Errorf("entry %d differs across worker counts: %+v vs %+v", i, lb.Entries[i], again.Entries[i])
		}
	}
}

func TestGateOptimalFloorDetectsViolation(t *testing.T) {
	lb := &Leaderboard{
		Scenario: "synthetic",
		Entries: []LeaderboardEntry{
			{ID: "guard", Objective: 1, CI95: 0.1, Drop: 0, DropCI95: 0},
			{ID: "optimal", Objective: 10, CI95: 0.1, Drop: 5, DropCI95: 0.1},
		},
	}
	if err := lb.GateOptimalFloor(0.5); err == nil {
		t.Error("gate passed although guard beats optimal far beyond noise")
	}
	// The same gap inside the noise budget passes.
	lb.Entries[0].Objective = 9.9
	lb.Entries[0].Drop = 4.9
	if err := lb.GateOptimalFloor(0.5); err != nil {
		t.Errorf("gate failed inside the noise budget: %v", err)
	}
	// Degrading schemes are exempt from the drop-only floor, not from the
	// objective floor.
	lb.Entries[0] = LeaderboardEntry{ID: "adapt", Objective: 10.05, CI95: 0.1, Drop: 0, DropCI95: 0}
	if err := lb.GateOptimalFloor(0.5); err != nil {
		t.Errorf("gate charged adapt for its drop advantage: %v", err)
	}
	lb.Entries[0].ID = "guard"
	if err := lb.GateOptimalFloor(0.5); err == nil {
		t.Error("gate passed a fixed-allocation scheme undercutting the optimal drop floor")
	}
	if err := (&Leaderboard{Scenario: "x"}).GateOptimalFloor(1); err == nil {
		t.Error("gate passed a leaderboard with no optimal entry")
	}
}
