package experiment

import (
	"reflect"
	"testing"

	"facsp/internal/core"
)

// TestAdaptBeatsGuardChannelOnDrops is the acceptance bar for the
// adaptive-bandwidth scheme: at equal offered load, its handoff-dropping
// probability must be measurably below the 20%-reservation guard channel.
func TestAdaptBeatsGuardChannelOnDrops(t *testing.T) {
	opts := Options{Loads: []int{60}, Replications: 6}
	adaptCurve, err := RunCurve("adapt", homogeneousConfig, AdaptFactory(), DropPct, opts)
	if err != nil {
		t.Fatal(err)
	}
	guardCurve, err := RunCurve("guard", homogeneousConfig, GuardFactory(core.CounterMax, GuardBand), DropPct, opts)
	if err != nil {
		t.Fatal(err)
	}
	a, g := adaptCurve.Points[0].Y, guardCurve.Points[0].Y
	if a >= g {
		t.Fatalf("adapt drop%% = %.2f not below guard-channel drop%% = %.2f at load 60", a, g)
	}
	// "Measurably": the gap must clear the sum of the confidence
	// half-widths, not just the point estimates.
	if g-a <= adaptCurve.CI95[0]+guardCurve.CI95[0] {
		t.Errorf("drop%% gap %.2f within noise (CI %.2f + %.2f)", g-a, adaptCurve.CI95[0], guardCurve.CI95[0])
	}
}

// TestAdaptRatioShape pins the degradation-ratio metric's frame: adaptive
// curves live in (0, 100] and decline with load, the guard channel stays
// at exactly 100.
func TestAdaptRatioShape(t *testing.T) {
	opts := Options{Loads: []int{10, 80}, Replications: 4}
	curves, err := AdaptRatio(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(curves) != 3 {
		t.Fatalf("got %d curves, want 3", len(curves))
	}
	for _, c := range curves[:2] {
		for i, p := range c.Points {
			if p.Y <= 0 || p.Y > 100 {
				t.Errorf("%s point %d: ratio %v%% outside (0, 100]", c.Name, i, p.Y)
			}
		}
		if c.Points[0].Y <= c.Points[1].Y {
			t.Errorf("%s: ratio did not decline with load: %v", c.Name, c.Points)
		}
	}
	guard := curves[2]
	for i, p := range guard.Points {
		if p.Y != 100 {
			t.Errorf("guard-channel point %d: ratio %v%%, want exactly 100", i, p.Y)
		}
	}
}

// TestAdaptDropsFigure runs the full head-to-head runner once at a light
// setting and checks its curve inventory.
func TestAdaptDropsFigure(t *testing.T) {
	if testing.Short() {
		t.Skip("integration sweep")
	}
	curves, err := AdaptDrops(Options{Loads: []int{40}, Replications: 3})
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"adapt drop%", "adapt-fuzzy drop%", "FACS-P drop%", "guard-channel drop%"}
	if len(curves) != len(want) {
		t.Fatalf("got %d curves, want %d", len(curves), len(want))
	}
	for i, c := range curves {
		if c.Name != want[i] {
			t.Errorf("curve %d named %q, want %q", i, c.Name, want[i])
		}
		if len(c.Points) != 1 || c.Points[0].Y < 0 || c.Points[0].Y > 100 {
			t.Errorf("curve %q malformed: %+v", c.Name, c.Points)
		}
	}
}

// TestAdaptCurvesIdenticalAcrossWorkerCounts extends the sharded runner's
// determinism contract to the adaptive schemes, whose observer wiring adds
// a new code path to every simulation event.
func TestAdaptCurvesIdenticalAcrossWorkerCounts(t *testing.T) {
	run := func(workers int) []Curve {
		opts := Options{Loads: []int{15, 50}, Replications: 3, Workers: workers}
		a, err := RunCurve("adapt", homogeneousConfig, AdaptFactory(), DropPct, opts)
		if err != nil {
			t.Fatal(err)
		}
		r, err := RunCurve("ratio", homogeneousConfig, AdaptFactory(), BandwidthRatioPct, opts)
		if err != nil {
			t.Fatal(err)
		}
		return []Curve{a, r}
	}
	base := run(1)
	for _, workers := range []int{4, 8} {
		if got := run(workers); !reflect.DeepEqual(base, got) {
			t.Errorf("adapt curves with %d workers differ from 1 worker:\n 1: %+v\n%2d: %+v",
				workers, base, workers, got)
		}
	}
}
