package experiment

import (
	"testing"

	"facsp/internal/hexgrid"
	"facsp/internal/hotness"
	"facsp/internal/metrics"
	"facsp/internal/traffic"
)

// TestRunCurveMetricsSink checks Options.Metrics/Hotness are forwarded
// into every shard: a sweep accumulates all shards' admission outcomes in
// the one shared registry, with deterministic totals across worker counts.
func TestRunCurveMetricsSink(t *testing.T) {
	topo := hexgrid.DiskTopology(hexgrid.Coord{}, 1)

	sweep := func(workers int) (*metrics.Registry, *hotness.Tracker) {
		reg, err := metrics.New(topo.Slots())
		if err != nil {
			t.Fatal(err)
		}
		hot, err := hotness.New(topo.Slots(), 1e12)
		if err != nil {
			t.Fatal(err)
		}
		opts := Options{
			Loads:        []int{10, 20},
			Replications: 2,
			Workers:      workers,
			Metrics:      reg,
			Hotness:      hot,
		}
		if _, err := RunCurve("sink", singleCellConfig, FACSFactory(), AcceptedPct, opts); err != nil {
			t.Fatal(err)
		}
		return reg, hot
	}

	reg, hot := sweep(1)
	var total uint64
	for cell := 0; cell < reg.Cells(); cell++ {
		for _, cl := range traffic.Classes() {
			total += reg.CounterValue(cell, metrics.Admits(cl))
			total += reg.CounterValue(cell, metrics.Blocks(cl))
			total += reg.CounterValue(cell, metrics.Drops(cl))
		}
	}
	// singleCellConfig offers load requests per shard to the centre cell
	// only; every one lands in some counter, plus any handoff attempts.
	if want := uint64(2 * (10 + 20)); total < want {
		t.Errorf("sweep recorded %d outcomes, want >= %d offered calls", total, want)
	}
	var recorded float64
	for i := 0; i < hot.Cells(); i++ {
		recorded += hot.Value(i, 1e9)
	}
	if recorded <= 0 {
		t.Error("hotness tracker saw no events from the sweep")
	}

	// Counter totals are bit-identical for any worker count — bumps are
	// atomic adds, and the shard set is the same.
	reg4, _ := sweep(4)
	snapA, snapB := reg.Snapshot(nil), reg4.Snapshot(nil)
	for cell := 0; cell < reg.Cells(); cell++ {
		for c := metrics.Counter(0); c < metrics.CtrShed; c++ {
			if snapA.Counter(cell, c) != snapB.Counter(cell, c) {
				t.Fatalf("cell %d counter %d: 1 worker %d vs 4 workers %d",
					cell, c, snapA.Counter(cell, c), snapB.Counter(cell, c))
			}
		}
	}
}
