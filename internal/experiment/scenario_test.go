package experiment

import (
	"errors"
	"reflect"
	"testing"

	"facsp/internal/cac"
	"facsp/internal/scenario"
)

func scenarioOpts(workers int) Options {
	return Options{Loads: []int{6}, Replications: 2, Workers: workers, BaseSeed: 17}
}

// TestScenariosDeterministicAcrossWorkerCounts is the scenario half of the
// sharded-runner contract: for every named scenario of the library the
// full scheme ranking is bit-identical whether it runs on 1 worker or
// many.
func TestScenariosDeterministicAcrossWorkerCounts(t *testing.T) {
	for _, name := range scenario.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			s, err := scenario.Load(name)
			if err != nil {
				t.Fatal(err)
			}
			base, err := RunScenario(s, scenarioOpts(1))
			if err != nil {
				t.Fatal(err)
			}
			if len(base) == 0 {
				t.Fatal("no curves")
			}
			for _, workers := range []int{4, 8} {
				got, err := RunScenario(s, scenarioOpts(workers))
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(base, got) {
					t.Errorf("%s with %d workers differs from 1 worker", name, workers)
				}
			}
		})
	}
}

func TestRunScenarioSkipsSCCOnHeterogeneousCapacity(t *testing.T) {
	// diurnal-city has a dead cell (capacity 0), so the network-level SCC
	// scheme cannot represent it and must be skipped; every per-cell
	// scheme still runs.
	s, err := scenario.Load("diurnal-city")
	if err != nil {
		t.Fatal(err)
	}
	if s.UniformCapacity() {
		t.Fatal("diurnal-city is expected to have a dead cell")
	}
	curves, err := RunScenario(s, scenarioOpts(4))
	if err != nil {
		t.Fatal(err)
	}
	names := map[string]bool{}
	for _, c := range curves {
		names[c.Name] = true
	}
	if names["SCC"] {
		t.Error("SCC ranked on a heterogeneous-capacity scenario")
	}
	for _, want := range []string{"FACS", "FACS-P", "guard-channel", "adapt", "adapt-fuzzy", "optimal", "learned"} {
		if !names[want] {
			t.Errorf("scheme %s missing from the ranking (have %v)", want, curves)
		}
	}
	if _, err := ScenarioSchemeFactory("scc", s, Options{}); !errors.Is(err, ErrSchemeNotApplicable) {
		t.Errorf("scc factory error = %v, want ErrSchemeNotApplicable", err)
	}
}

func TestRunScenarioIncludesSCCOnUniformCapacity(t *testing.T) {
	s, err := scenario.Load("flash-crowd")
	if err != nil {
		t.Fatal(err)
	}
	curves, err := RunScenario(s, scenarioOpts(4))
	if err != nil {
		t.Fatal(err)
	}
	if want, got := len(SchemeIDs()), len(curves); want != got {
		t.Fatalf("ranked %d schemes, want all %d", got, want)
	}
}

func TestScenarioSchemeFactoryUnknown(t *testing.T) {
	s, err := scenario.Load("flash-crowd")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ScenarioSchemeFactory("bogus", s, Options{}); err == nil {
		t.Error("unknown scheme accepted")
	}
}

func TestRunScenarioRejectsNegativeLoad(t *testing.T) {
	s, err := scenario.Load("flash-crowd")
	if err != nil {
		t.Fatal(err)
	}
	opts := scenarioOpts(2)
	opts.Loads = []int{5, -1}
	if _, err := RunScenario(s, opts); err == nil {
		t.Error("negative load accepted")
	}
}

func TestSchemeIDsSorted(t *testing.T) {
	ids := SchemeIDs()
	if len(ids) != len(schemeNames) {
		t.Fatalf("SchemeIDs returned %d ids, registry has %d", len(ids), len(schemeNames))
	}
	for i := 1; i < len(ids); i++ {
		if ids[i-1] >= ids[i] {
			t.Fatalf("ids not sorted: %v", ids)
		}
	}
	for _, id := range ids {
		if schemeNames[id] == "" {
			t.Errorf("scheme %s has no display name", id)
		}
	}
}

// TestDeadCellAdmitsNothing pins the dead-cell controller contract the
// scenario capacity map relies on.
func TestDeadCellAdmitsNothing(t *testing.T) {
	var d deadCell
	req := cac.Request{ID: 1, Bandwidth: 10}
	if dec := d.Admit(req); dec.Accept {
		t.Error("dead cell accepted a request")
	}
	if err := d.Release(req); err == nil {
		t.Error("dead cell released without error")
	}
	if d.Capacity() != 0 || d.Occupancy() != 0 {
		t.Error("dead cell reports non-zero capacity or occupancy")
	}
}
