package experiment

import "testing"

func TestAblationHandoffPriority(t *testing.T) {
	if testing.Short() {
		t.Skip("integration sweep")
	}
	curves, err := AblationHandoffPriority(Options{Loads: []int{80}, Replications: 6})
	if err != nil {
		t.Fatal(err)
	}
	if len(curves) != 2 {
		t.Fatalf("got %d curves", len(curves))
	}
	with, without := curves[0], curves[1]
	// Removing the priority must raise the dropped-call percentage
	// decisively: that is the whole mechanism.
	if with.Points[0].Y >= without.Points[0].Y {
		t.Errorf("handoff priority did not reduce drops: with=%v without=%v",
			with.Points[0].Y, without.Points[0].Y)
	}
	if without.Points[0].Y < 2 {
		t.Errorf("no-priority drop%% = %v, expected a visible drop rate at heavy load", without.Points[0].Y)
	}
}

func TestAblationDefuzzifier(t *testing.T) {
	if testing.Short() {
		t.Skip("integration sweep")
	}
	curves, err := AblationDefuzzifier(Options{Loads: []int{25, 100}, Replications: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(curves) != 2 {
		t.Fatalf("got %d curves", len(curves))
	}
	// Both defuzzifiers must produce sane declining curves; the choice is
	// a cost/fidelity trade, not a correctness cliff.
	for _, c := range curves {
		if c.Points[0].Y <= c.Points[1].Y {
			t.Errorf("curve %q does not decline with load: %v", c.Name, c.Points)
		}
		for _, p := range c.Points {
			if p.Y < 0 || p.Y > 100 {
				t.Errorf("curve %q out of range: %v", c.Name, p)
			}
		}
	}
}
