package experiment

import (
	"errors"
	"fmt"
	"sort"

	"facsp/internal/adapt"
	"facsp/internal/baseline"
	"facsp/internal/cac"
	"facsp/internal/cellsim"
	"facsp/internal/core"
	"facsp/internal/hexgrid"
	"facsp/internal/learned"
	"facsp/internal/optimal"
	"facsp/internal/scc"
	"facsp/internal/scenario"
)

// Scenario sweeps: every scheme of the repository ranked on one declarative
// scenario (internal/scenario). A scenario sweep is sharded exactly like a
// figure sweep — per-(load, replication) RNG substreams, bit-identical
// curves for any worker count — but the simulation config at each point
// comes from Scenario.ConfigFor instead of the paper's homogeneous set-up,
// and the per-cell controllers honour the scenario's capacity map
// (hot-spot capacity boosts, dead cells).

// SchemeIDs returns the admission-scheme identifiers ranked by scenario
// sweeps, in sorted order — derived from the same registry as
// ScenarioSchemeFactory, so usage text and doc tables can never go stale.
func SchemeIDs() []string {
	ids := make([]string, 0, len(schemeNames))
	for id := range schemeNames {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// schemeNames maps scheme ids to the display names used for curves.
var schemeNames = map[string]string{
	"facs":        "FACS",
	"facsp":       "FACS-P",
	"scc":         "SCC",
	"guard":       "guard-channel",
	"adapt":       "adapt",
	"adapt-fuzzy": "adapt-fuzzy",
	"optimal":     "optimal",
	"learned":     "learned",
}

// ErrSchemeNotApplicable marks a scheme that cannot represent a scenario
// (e.g. the network-level SCC on heterogeneous cell capacity). Scenario
// rankings skip such schemes instead of failing the whole sweep.
var ErrSchemeNotApplicable = errors.New("scheme not applicable to this scenario")

// deadCell is the controller of a cell whose scenario capacity is zero (a
// base station in outage): it denies every request and never holds
// bandwidth.
type deadCell struct{}

func (deadCell) Admit(cac.Request) cac.Decision {
	return cac.Decision{Accept: false, Score: -1, Outcome: "dead-cell"}
}
func (deadCell) Release(cac.Request) error {
	return fmt.Errorf("experiment: release on a dead cell")
}
func (deadCell) Occupancy() float64 { return 0 }
func (deadCell) Capacity() float64  { return 0 }

// perCellCapacityFactory adapts a capacity-parameterised controller
// constructor to a per-cell admitter factory over the scenario's capacity
// map. Cells with zero capacity get the deadCell controller; construction
// errors for positive capacities are programming errors (the scenario was
// validated) and panic at first use, like every other factory here.
func perCellCapacityFactory(capAt func(hexgrid.Coord) float64, build func(capacityBU float64) (cac.Controller, error)) AdmitterFactory {
	return func() cellsim.Admitter {
		return cellsim.NewPerCell(func(cell hexgrid.Coord) cac.Controller {
			capacity := capAt(cell)
			if capacity <= 0 {
				return deadCell{}
			}
			c, err := build(capacity)
			if err != nil {
				panic("experiment: " + err.Error())
			}
			return c
		})
	}
}

// guardFraction is the guard-channel comparator's handoff reservation as a
// fraction of each cell's capacity in scenario sweeps: the same 20%
// protection level as the fixed GuardBand on the paper's 40 BU cell.
const guardFraction = GuardBand / float64(core.CounterMax)

// ScenarioSchemeFactory returns the named scheme's admitter factory wired
// to the scenario's per-cell capacities. The scheme ids are those of
// SchemeIDs. SCC is a network-level scheme with a single per-cell capacity
// and is therefore unavailable on scenarios with heterogeneous capacity.
func ScenarioSchemeFactory(id string, s *scenario.Scenario, o Options) (AdmitterFactory, error) {
	capAt := s.CapacityAt
	switch id {
	case "facs":
		cfg := core.DefaultConfig()
		cfg.SurfaceResolution = o.SurfaceResolution
		return perCellCapacityFactory(capAt, func(capacityBU float64) (cac.Controller, error) {
			c := cfg
			c.Capacity = capacityBU
			return core.NewFACS(c)
		}), nil
	case "facsp":
		cfg := core.DefaultPConfig()
		cfg.SurfaceResolution = o.SurfaceResolution
		return perCellCapacityFactory(capAt, func(capacityBU float64) (cac.Controller, error) {
			c := cfg
			c.Capacity = capacityBU
			return core.NewFACSP(c)
		}), nil
	case "guard":
		return perCellCapacityFactory(capAt, func(capacityBU float64) (cac.Controller, error) {
			return baseline.NewGuardChannel(capacityBU, guardFraction*capacityBU)
		}), nil
	case "adapt":
		cfg := adapt.DefaultConfig()
		return perCellCapacityFactory(capAt, func(capacityBU float64) (cac.Controller, error) {
			c := cfg
			c.Capacity = capacityBU
			return adapt.New(c)
		}), nil
	case "adapt-fuzzy":
		cfg := adapt.DefaultConfig()
		pcfg := core.DefaultPConfig()
		pcfg.SurfaceResolution = o.SurfaceResolution
		return perCellCapacityFactory(capAt, func(capacityBU float64) (cac.Controller, error) {
			c, p := cfg, pcfg
			c.Capacity = capacityBU
			p.Capacity = capacityBU
			return adapt.NewFuzzy(c, p)
		}), nil
	case "optimal":
		return perCellCapacityFactory(capAt, func(capacityBU float64) (cac.Controller, error) {
			return optimal.ForCapacity(capacityBU)
		}), nil
	case "learned":
		return perCellCapacityFactory(capAt, func(capacityBU float64) (cac.Controller, error) {
			return learned.New(capacityBU)
		}), nil
	case "scc":
		if !s.UniformCapacity() {
			return nil, fmt.Errorf("experiment: scheme scc needs uniform cell capacity, scenario %q is heterogeneous: %w",
				s.Name, ErrSchemeNotApplicable)
		}
		cfg := scc.DefaultConfig()
		capacity := capAt(hexgrid.Coord{})
		// Scale the empty-cell handoff headroom with the capacity so the
		// reservation stays the same fraction of the cell.
		cfg.Headroom *= capacity / cfg.Capacity
		cfg.Capacity = capacity
		if s.CellRadiusM > 0 {
			cfg.CellRadius = s.CellRadiusM
		}
		return func() cellsim.Admitter {
			c, err := scc.New(cfg)
			if err != nil {
				panic("experiment: " + err.Error())
			}
			return c
		}, nil
	default:
		return nil, fmt.Errorf("experiment: unknown scheme %q (have %v)", id, SchemeIDs())
	}
}

// ScenarioConfigFunc adapts a validated scenario to the sweep's ConfigFunc.
// ConfigFor failures after the up-front validation in RunScenarioMetric
// are programming errors and panic, mirroring the factory contract.
func ScenarioConfigFunc(s *scenario.Scenario) ConfigFunc {
	return func(load int, seed uint64) cellsim.Config {
		cfg, err := s.ConfigFor(load, seed)
		if err != nil {
			panic("experiment: " + err.Error())
		}
		return cfg
	}
}

// RunScenario ranks every scheme on the scenario by the paper's headline
// metric, the percentage of accepted centre-cell calls.
func RunScenario(s *scenario.Scenario, opts Options) ([]Curve, error) {
	return RunScenarioMetric(s, AcceptedPct, opts)
}

// RunScenarioMetric sweeps the scenario's load axis once per scheme and
// returns one curve per scheme (sorted by scheme id), all sharded with
// deterministic per-shard substreams: the ranking is bit-identical for any
// worker count. On scenarios with heterogeneous cell capacity the
// network-level SCC scheme is skipped (it has a single per-cell capacity);
// every per-cell scheme always runs.
func RunScenarioMetric(s *scenario.Scenario, metric Metric, opts Options) ([]Curve, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	for _, load := range opts.Loads {
		if load < 0 {
			return nil, fmt.Errorf("experiment: scenario %q: negative load %d", s.Name, load)
		}
	}
	cfg := ScenarioConfigFunc(s)
	curves := make([]Curve, 0, len(schemeNames))
	for _, id := range SchemeIDs() {
		factory, err := ScenarioSchemeFactory(id, s, opts)
		if errors.Is(err, ErrSchemeNotApplicable) {
			continue
		}
		if err != nil {
			return nil, err
		}
		curve, err := RunCurve(schemeNames[id], cfg, factory, metric, opts)
		if err != nil {
			return nil, fmt.Errorf("experiment: scenario %q scheme %s: %w", s.Name, id, err)
		}
		curves = append(curves, curve)
	}
	return curves, nil
}
