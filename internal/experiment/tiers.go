package experiment

import (
	"fmt"
	"sort"

	"facsp/internal/adapt"
	"facsp/internal/cac"
	"facsp/internal/cellsim"
	"facsp/internal/core"
	"facsp/internal/hexgrid"
	"facsp/internal/scenario"
)

// Tiered decision surfaces on the simulation plane. The serving daemon
// promotes and demotes cells live off the wall-clock hotness axis
// (core.Tiered.Sample); a simulation must stay bit-identical for any
// worker count, so here the tier of every cell is assigned STATICALLY
// before the run from the sim-time hotness axis: the offered arrival
// streams are replayed through an expdecay tracker (cellsim.OfferedRates)
// and each cell's peak rate is ranked against the ladder. The assignment
// is a pure function of the scenario config — sharding never sees it move.

// AssignTiers computes the deterministic per-slot tier assignment of a
// simulation config: slot i gets tc.TierFor(peak hotness rate of slot i),
// with the rates measured on the sim-time axis at tc.HalfLife.
func AssignTiers(cfg cellsim.Config, tc core.TierConfig) ([]int, error) {
	if err := tc.Validate(); err != nil {
		return nil, err
	}
	rates, err := cellsim.OfferedRates(cfg, tc.HalfLife)
	if err != nil {
		return nil, err
	}
	tiers := make([]int, len(rates))
	for i, r := range rates {
		tiers[i] = tc.TierFor(r)
	}
	return tiers, nil
}

// TiersAtQuantiles re-anchors a ladder's MinRates at quantiles of an
// observed offered-rate distribution, adapting a generic ladder to the
// absolute traffic scale of any scenario: tier k's MinRate becomes the
// qs[k-1] nearest-rank quantile of rates (tier 0 keeps MinRate 0), so a
// ladder like the default coarse/medium/fine split lands its boundaries
// inside the scenario's actual hot/cold spread. Degenerate distributions
// (not enough distinct rates to keep MinRates strictly ascending) are
// rejected by validation.
func TiersAtQuantiles(tc core.TierConfig, rates []float64, qs []float64) (core.TierConfig, error) {
	if len(qs) != len(tc.Tiers)-1 {
		return core.TierConfig{}, fmt.Errorf("experiment: %d quantiles for a %d-tier ladder (need one per non-base tier)",
			len(qs), len(tc.Tiers))
	}
	if len(rates) == 0 {
		return core.TierConfig{}, fmt.Errorf("experiment: no rates to take quantiles of")
	}
	sorted := append([]float64(nil), rates...)
	sort.Float64s(sorted)
	out := tc
	out.Tiers = append([]core.SurfaceTier(nil), tc.Tiers...)
	for i, q := range qs {
		if !(q > 0 && q < 1) {
			return core.TierConfig{}, fmt.Errorf("experiment: quantile %v outside (0, 1)", q)
		}
		out.Tiers[i+1].MinRate = sorted[int(q*float64(len(sorted)-1))]
	}
	if err := out.Validate(); err != nil {
		return core.TierConfig{}, err
	}
	return out, nil
}

// perCellCapacityResFactory is perCellCapacityFactory with a per-cell
// surface resolution alongside the per-cell capacity — the construction
// path of tiered city runs.
func perCellCapacityResFactory(capAt func(hexgrid.Coord) float64, resAt func(hexgrid.Coord) int,
	build func(capacityBU float64, resolution int) (cac.Controller, error)) AdmitterFactory {
	return func() cellsim.Admitter {
		return cellsim.NewPerCell(func(cell hexgrid.Coord) cac.Controller {
			capacity := capAt(cell)
			if capacity <= 0 {
				return deadCell{}
			}
			c, err := build(capacity, resAt(cell))
			if err != nil {
				panic("experiment: " + err.Error())
			}
			return c
		})
	}
}

// TieredSchemeFactory returns the named fuzzy scheme's admitter factory
// with a per-cell surface resolution (0 = exact inference) on top of the
// scenario's per-cell capacities. Only the schemes with a fuzzy inference
// pipeline can tier; the rest return ErrSchemeNotApplicable. The flat
// Options.SurfaceResolution is ignored — the per-cell assignment replaces
// it.
func TieredSchemeFactory(id string, s *scenario.Scenario, resolutionAt func(hexgrid.Coord) int) (AdmitterFactory, error) {
	capAt := s.CapacityAt
	switch id {
	case "facs":
		cfg := core.DefaultConfig()
		return perCellCapacityResFactory(capAt, resolutionAt, func(capacityBU float64, res int) (cac.Controller, error) {
			c := cfg
			c.Capacity = capacityBU
			c.SurfaceResolution = res
			return core.NewFACS(c)
		}), nil
	case "facsp":
		cfg := core.DefaultPConfig()
		return perCellCapacityResFactory(capAt, resolutionAt, func(capacityBU float64, res int) (cac.Controller, error) {
			c := cfg
			c.Capacity = capacityBU
			c.SurfaceResolution = res
			return core.NewFACSP(c)
		}), nil
	case "adapt-fuzzy":
		acfg := adapt.DefaultConfig()
		pcfg := core.DefaultPConfig()
		return perCellCapacityResFactory(capAt, resolutionAt, func(capacityBU float64, res int) (cac.Controller, error) {
			a, p := acfg, pcfg
			a.Capacity = capacityBU
			p.Capacity = capacityBU
			p.SurfaceResolution = res
			return adapt.NewFuzzy(a, p)
		}), nil
	default:
		return nil, fmt.Errorf("experiment: scheme %s has no fuzzy pipeline to tier: %w", id, ErrSchemeNotApplicable)
	}
}
