package experiment

import (
	"errors"
	"reflect"
	"testing"

	"facsp/internal/cellsim"
	"facsp/internal/core"
	"facsp/internal/scenario"
)

// metroTierConfig anchors the default ladder's boundaries inside the
// metro-city offered-rate spread, so the scenario actually populates
// several tiers (the default daemon ladder is scaled for wall-clock
// request rates, orders of magnitude above sim-time ones).
func metroTierConfig(t *testing.T, cfg cellsim.Config) core.TierConfig {
	t.Helper()
	base := core.DefaultTierConfig()
	rates, err := cellsim.OfferedRates(cfg, base.HalfLife)
	if err != nil {
		t.Fatal(err)
	}
	tc, err := TiersAtQuantiles(base, rates, []float64{0.5, 0.9})
	if err != nil {
		t.Fatal(err)
	}
	return tc
}

func metroConfig(t *testing.T, load int, seed uint64) (*scenario.Scenario, cellsim.Config) {
	t.Helper()
	s, err := scenario.Load("metro-city")
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := s.ConfigFor(load, seed)
	if err != nil {
		t.Fatal(err)
	}
	return s, cfg
}

// TestAssignTiersDeterministicAndSpread pins the static assignment: a pure
// function of the scenario config (identical on every call), populating
// more than one rung once the ladder is anchored to the scenario's scale.
func TestAssignTiersDeterministicAndSpread(t *testing.T) {
	_, cfg := metroConfig(t, 8, 3)
	tc := metroTierConfig(t, cfg)

	a, err := AssignTiers(cfg, tc)
	if err != nil {
		t.Fatal(err)
	}
	b, err := AssignTiers(cfg, tc)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Error("AssignTiers is not deterministic")
	}
	hist := make([]int, len(tc.Tiers))
	for _, tier := range a {
		hist[tier]++
	}
	t.Logf("metro-city tier occupancy (coarse to fine): %v of %d cells", hist, len(a))
	distinct := 0
	for _, n := range hist {
		if n > 0 {
			distinct++
		}
	}
	if distinct < 2 {
		t.Errorf("anchored ladder assigned only %v across %d cells — no hot/cold spread", hist, len(a))
	}

	bad := tc
	bad.Hysteresis = -1
	if _, err := AssignTiers(cfg, bad); err == nil {
		t.Error("invalid ladder accepted")
	}
}

func TestTiersAtQuantiles(t *testing.T) {
	base := core.DefaultTierConfig()
	rates := []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0}

	tc, err := TiersAtQuantiles(base, rates, []float64{0.5, 0.9})
	if err != nil {
		t.Fatal(err)
	}
	if tc.Tiers[0].MinRate != 0 {
		t.Errorf("base tier min rate moved to %v", tc.Tiers[0].MinRate)
	}
	if tc.Tiers[1].MinRate >= tc.Tiers[2].MinRate {
		t.Errorf("anchored min rates not ascending: %v", tc.Tiers)
	}
	// Resolutions and sampling parameters are untouched.
	for i := range tc.Tiers {
		if tc.Tiers[i].Resolution != base.Tiers[i].Resolution {
			t.Errorf("tier %d resolution changed: %d", i, tc.Tiers[i].Resolution)
		}
	}

	if _, err := TiersAtQuantiles(base, rates, []float64{0.5}); err == nil {
		t.Error("wrong quantile count accepted")
	}
	if _, err := TiersAtQuantiles(base, rates, []float64{0.5, 1.5}); err == nil {
		t.Error("out-of-range quantile accepted")
	}
	if _, err := TiersAtQuantiles(base, nil, []float64{0.5, 0.9}); err == nil {
		t.Error("empty rates accepted")
	}
	// A flat distribution cannot keep MinRates strictly ascending.
	if _, err := TiersAtQuantiles(base, []float64{2, 2, 2, 2}, []float64{0.5, 0.9}); err == nil {
		t.Error("degenerate distribution accepted")
	}
}

// TestRunCityTieredDeterminism is the sharded-determinism gate of the
// tiered simulation plane: metro-city under FACS-P with per-cell tier
// assignment must stay bit-identical across worker counts.
func TestRunCityTieredDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("sharded city sweep")
	}
	s, cfg := metroConfig(t, 8, 3)
	tc := metroTierConfig(t, cfg)

	run := CityRun{Scheme: "facsp", Load: 8, Seed: 3, Tiers: &tc}
	run.Shard = cellsim.ShardOptions{Groups: 8, Workers: 1}
	a, err := RunCity(s, run, Options{})
	if err != nil {
		t.Fatal(err)
	}
	run.Shard.Workers = 4
	b, err := RunCity(s, run, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Errorf("tiered city run diverged across workers:\n got %+v\nwant %+v", b, a)
	}
	if a.Requests == 0 || a.Accepted == 0 {
		t.Errorf("tiered city run carried no traffic: %+v", a)
	}
}

// TestRunCityTiersNeedFuzzyScheme pins the factory gate: tier assignment
// without a fuzzy pipeline is not applicable, not silently ignored.
func TestRunCityTiersNeedFuzzyScheme(t *testing.T) {
	s, cfg := metroConfig(t, 8, 3)
	tc := metroTierConfig(t, cfg)
	_, err := RunCity(s, CityRun{Scheme: "guard", Load: 8, Seed: 3, Tiers: &tc}, Options{})
	if !errors.Is(err, ErrSchemeNotApplicable) {
		t.Errorf("tiered guard error = %v, want ErrSchemeNotApplicable", err)
	}
}
