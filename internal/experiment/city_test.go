package experiment

import (
	"errors"
	"reflect"
	"testing"

	"facsp/internal/cellsim"
	"facsp/internal/scenario"
)

// TestRunCityDeterminism runs the embedded metro-city scenario sharded
// with 1 and 4 workers and requires bit-identical results, scheme guard
// (cheap) standing in for the fuzzy controllers.
func TestRunCityDeterminism(t *testing.T) {
	s, err := scenario.Load("metro-city")
	if err != nil {
		t.Fatal(err)
	}
	run := CityRun{Scheme: "guard", Load: 8, Seed: 3}
	run.Shard = cellsim.ShardOptions{Groups: 8, Workers: 1}
	a, err := RunCity(s, run, Options{})
	if err != nil {
		t.Fatal(err)
	}
	run.Shard.Workers = 4
	b, err := RunCity(s, run, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Errorf("city run diverged across workers:\n got %+v\nwant %+v", b, a)
	}
	if a.Requests == 0 || a.Accepted == 0 {
		t.Errorf("city run carried no traffic: %+v", a)
	}
	if a.Accepted+a.Blocked != a.Requests {
		t.Errorf("accepted %d + blocked %d != requests %d", a.Accepted, a.Blocked, a.Requests)
	}
}

// TestRunCityRejectsSCC pins that the network-level scheme cannot shard.
func TestRunCityRejectsSCC(t *testing.T) {
	s, err := scenario.Load("metro-city")
	if err != nil {
		t.Fatal(err)
	}
	_, err = RunCity(s, CityRun{Scheme: "scc", Load: 4, Seed: 1}, Options{})
	if !errors.Is(err, ErrSchemeNotApplicable) {
		t.Errorf("scc sharded error = %v, want ErrSchemeNotApplicable", err)
	}
}

// TestRunCityUnknownScheme covers factory errors.
func TestRunCityUnknownScheme(t *testing.T) {
	s, err := scenario.Load("metro-city")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunCity(s, CityRun{Scheme: "nope", Load: 4, Seed: 1}, Options{}); err == nil {
		t.Error("unknown scheme accepted")
	}
	if _, err := RunCity(s, CityRun{Scheme: "guard", Load: -1, Seed: 1}, Options{}); err == nil {
		t.Error("negative load accepted")
	}
}
