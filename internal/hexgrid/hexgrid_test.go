package hexgrid

import (
	"math"
	"testing"
	"testing/quick"

	"facsp/internal/rng"
)

func TestNeighbors(t *testing.T) {
	n := Coord{}.Neighbors()
	want := [6]Coord{
		{Q: 1, R: 0}, {Q: 1, R: -1}, {Q: 0, R: -1},
		{Q: -1, R: 0}, {Q: -1, R: 1}, {Q: 0, R: 1},
	}
	if n != want {
		t.Errorf("Neighbors = %v, want %v", n, want)
	}
	for _, nb := range n {
		if Distance(Coord{}, nb) != 1 {
			t.Errorf("neighbor %v at distance %d, want 1", nb, Distance(Coord{}, nb))
		}
	}
}

func TestDistance(t *testing.T) {
	tests := []struct {
		a, b Coord
		want int
	}{
		{a: Coord{}, b: Coord{}, want: 0},
		{a: Coord{}, b: Coord{Q: 3, R: 0}, want: 3},
		{a: Coord{}, b: Coord{Q: 0, R: -2}, want: 2},
		{a: Coord{}, b: Coord{Q: 2, R: -1}, want: 2},
		{a: Coord{}, b: Coord{Q: -1, R: 2}, want: 2},
		{a: Coord{Q: 1, R: 1}, b: Coord{Q: -1, R: -1}, want: 4},
	}
	for _, tt := range tests {
		if got := Distance(tt.a, tt.b); got != tt.want {
			t.Errorf("Distance(%v, %v) = %d, want %d", tt.a, tt.b, got, tt.want)
		}
		if got := Distance(tt.b, tt.a); got != tt.want {
			t.Errorf("Distance not symmetric for %v, %v", tt.a, tt.b)
		}
	}
}

func TestRing(t *testing.T) {
	if got := Ring(Coord{}, -1); got != nil {
		t.Errorf("Ring(-1) = %v, want nil", got)
	}
	if got := Ring(Coord{}, 0); len(got) != 1 || got[0] != (Coord{}) {
		t.Errorf("Ring(0) = %v", got)
	}
	for radius := 1; radius <= 4; radius++ {
		ring := Ring(Coord{Q: 2, R: -1}, radius)
		if len(ring) != 6*radius {
			t.Fatalf("Ring radius %d has %d cells, want %d", radius, len(ring), 6*radius)
		}
		seen := make(map[Coord]bool, len(ring))
		for _, c := range ring {
			if got := Distance(Coord{Q: 2, R: -1}, c); got != radius {
				t.Errorf("ring cell %v at distance %d, want %d", c, got, radius)
			}
			if seen[c] {
				t.Errorf("ring cell %v repeated", c)
			}
			seen[c] = true
		}
	}
}

func TestDisk(t *testing.T) {
	for radius := 0; radius <= 4; radius++ {
		disk := Disk(Coord{}, radius)
		want := 1 + 3*radius*(radius+1)
		if len(disk) != want {
			t.Fatalf("Disk(%d) has %d cells, want %d", radius, len(disk), want)
		}
		seen := make(map[Coord]bool, len(disk))
		for _, c := range disk {
			if Distance(Coord{}, c) > radius {
				t.Errorf("disk cell %v beyond radius %d", c, radius)
			}
			if seen[c] {
				t.Errorf("disk cell %v repeated", c)
			}
			seen[c] = true
		}
	}
}

func TestLayoutRoundTrip(t *testing.T) {
	l := NewLayout(1000)
	cells := Disk(Coord{}, 3)
	for _, c := range cells {
		x, y := l.Center(c)
		if got := l.CellAt(x, y); got != c {
			t.Errorf("CellAt(Center(%v)) = %v", c, got)
		}
	}
}

func TestLayoutCellAtPerturbed(t *testing.T) {
	// Points well inside a hexagon (within the inradius) must map to it.
	l := NewLayout(1000)
	src := rng.New(42)
	inradius := 1000 * math.Sqrt(3) / 2
	for _, c := range Disk(Coord{}, 2) {
		cx, cy := l.Center(c)
		for i := 0; i < 50; i++ {
			r := src.Float64() * inradius * 0.95
			theta := src.Float64() * 2 * math.Pi
			x := cx + r*math.Cos(theta)
			y := cy + r*math.Sin(theta)
			if got := l.CellAt(x, y); got != c {
				t.Fatalf("point (%v,%v) inside cell %v mapped to %v", x, y, c, got)
			}
		}
	}
}

func TestNeighborCentersEquidistant(t *testing.T) {
	l := NewLayout(500)
	cx, cy := l.Center(Coord{})
	want := 500 * math.Sqrt(3) // centre spacing of pointy-top hexes
	for _, nb := range (Coord{}).Neighbors() {
		x, y := l.Center(nb)
		d := math.Hypot(x-cx, y-cy)
		if math.Abs(d-want) > 1e-9 {
			t.Errorf("neighbor %v centre distance = %v, want %v", nb, d, want)
		}
	}
}

func TestNewLayoutPanics(t *testing.T) {
	for _, size := range []float64{0, -1, math.NaN(), math.Inf(1)} {
		size := size
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewLayout(%v) did not panic", size)
				}
			}()
			NewLayout(size)
		}()
	}
}

func TestNormalizeAngle(t *testing.T) {
	tests := []struct{ in, want float64 }{
		{in: 0, want: 0},
		{in: 180, want: 180},
		{in: -180, want: 180},
		{in: 181, want: -179},
		{in: -181, want: 179},
		{in: 360, want: 0},
		{in: 540, want: 180},
		{in: -540, want: 180},
		{in: 90, want: 90},
		{in: 720 + 45, want: 45},
	}
	for _, tt := range tests {
		if got := NormalizeAngle(tt.in); math.Abs(got-tt.want) > 1e-9 {
			t.Errorf("NormalizeAngle(%v) = %v, want %v", tt.in, got, tt.want)
		}
	}
}

func TestBearingDeg(t *testing.T) {
	tests := []struct {
		name           string
		fx, fy, tx, ty float64
		want           float64
	}{
		{name: "east", fx: 0, fy: 0, tx: 1, ty: 0, want: 0},
		{name: "north", fx: 0, fy: 0, tx: 0, ty: 1, want: 90},
		{name: "west", fx: 0, fy: 0, tx: -1, ty: 0, want: 180},
		{name: "south", fx: 0, fy: 0, tx: 0, ty: -1, want: -90},
		{name: "northeast", fx: 0, fy: 0, tx: 1, ty: 1, want: 45},
		{name: "coincident", fx: 3, fy: 4, tx: 3, ty: 4, want: 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := BearingDeg(tt.fx, tt.fy, tt.tx, tt.ty); math.Abs(got-tt.want) > 1e-9 {
				t.Errorf("BearingDeg = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestAngleOff(t *testing.T) {
	tests := []struct {
		name    string
		heading float64
		want    float64
	}{
		{name: "straight at target", heading: 0, want: 0},
		{name: "directly away", heading: 180, want: 180},
		{name: "right angle left", heading: 90, want: 90},
		{name: "right angle right", heading: -90, want: -90},
		{name: "wrapped heading", heading: 350, want: -10},
	}
	// Target due east of the mobile.
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := AngleOff(tt.heading, 0, 0, 100, 0)
			if math.Abs(got-tt.want) > 1e-9 {
				t.Errorf("AngleOff(%v) = %v, want %v", tt.heading, got, tt.want)
			}
		})
	}
}

// Property: NormalizeAngle output is always in (-180, 180] and congruent
// to the input mod 360.
func TestQuickNormalizeAngle(t *testing.T) {
	f := func(deg float64) bool {
		if math.IsNaN(deg) || math.IsInf(deg, 0) {
			return true
		}
		deg = math.Mod(deg, 1e6)
		got := NormalizeAngle(deg)
		if got <= -180 || got > 180 {
			return false
		}
		diff := math.Mod(got-deg, 360)
		if diff < 0 {
			diff += 360
		}
		return diff < 1e-6 || diff > 360-1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: CellAt is total — every point maps to a cell whose centre is
// within one circumradius.
func TestQuickCellAtTotal(t *testing.T) {
	l := NewLayout(250)
	f := func(xr, yr float64) bool {
		x := math.Mod(xr, 10000)
		y := math.Mod(yr, 10000)
		if math.IsNaN(x) || math.IsNaN(y) {
			return true
		}
		c := l.CellAt(x, y)
		cx, cy := l.Center(c)
		return math.Hypot(x-cx, y-cy) <= 250+1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: hex distance satisfies the triangle inequality.
func TestQuickTriangleInequality(t *testing.T) {
	f := func(q1, r1, q2, r2, q3, r3 int8) bool {
		a := Coord{Q: int(q1), R: int(r1)}
		b := Coord{Q: int(q2), R: int(r2)}
		c := Coord{Q: int(q3), R: int(r3)}
		return Distance(a, c) <= Distance(a, b)+Distance(b, c)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
