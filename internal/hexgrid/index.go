package hexgrid

import "fmt"

// Index is a compiled dense numbering of the cells of a disk-shaped
// cluster: every cell within Radius hops of Center maps to a stable small
// integer in [0, Slots), so per-cell state can live in a flat slice
// instead of a map on simulation hot paths.
//
// The numbering is positional (a (2R+1) x (2R+1) axial bounding square),
// so some slot numbers in [0, Slots) correspond to no cluster cell; Slots
// is the array size to allocate, Cells the number of live cells.
type Index struct {
	center Coord
	radius int
	side   int
}

// NewIndex compiles the dense index of the disk of the given radius
// around center. It panics on a negative radius: cluster geometry is
// static configuration, so a bad value is a programming error.
func NewIndex(center Coord, radius int) Index {
	if radius < 0 {
		panic(fmt.Sprintf("hexgrid: negative index radius %d", radius))
	}
	return Index{center: center, radius: radius, side: 2*radius + 1}
}

// Center returns the cluster's centre cell.
func (ix Index) Center() Coord { return ix.center }

// Radius returns the cluster radius in cells.
func (ix Index) Radius() int { return ix.radius }

// Slots returns the dense numbering's exclusive upper bound: the length
// to allocate for a slice indexed by Of.
func (ix Index) Slots() int { return ix.side * ix.side }

// Cells returns the number of cells in the cluster (1 + 3R(R+1)).
func (ix Index) Cells() int { return 1 + 3*ix.radius*(ix.radius+1) }

// Of returns the cell's dense slot and whether the cell lies inside the
// cluster. It is pure arithmetic — no map lookups, no allocation.
func (ix Index) Of(c Coord) (int, bool) {
	dq := c.Q - ix.center.Q
	dr := c.R - ix.center.R
	if !ix.inDisk(dq, dr) {
		return 0, false
	}
	return (dq+ix.radius)*ix.side + (dr + ix.radius), true
}

// Contains reports whether the cell lies inside the cluster.
func (ix Index) Contains(c Coord) bool {
	return ix.inDisk(c.Q-ix.center.Q, c.R-ix.center.R)
}

// inDisk tests hex distance <= radius on centre-relative axial offsets.
func (ix Index) inDisk(dq, dr int) bool {
	return abs(dq) <= ix.radius && abs(dr) <= ix.radius && abs(dq+dr) <= ix.radius
}
