package hexgrid

import (
	"fmt"
	"testing"
)

// diskSize is the closed-form cell count of a radius-r disk.
func diskSize(r int) int { return 1 + 3*r*(r+1) }

func TestDiskEnumerationLargeRadius(t *testing.T) {
	// The satellite contract: enumeration and dense indexing must hold
	// well past the paper's 7-cell cluster, at radius >= 10.
	for _, radius := range []int{10, 12, 16} {
		center := Coord{Q: -3, R: 7}
		cells := Disk(center, radius)
		if len(cells) != diskSize(radius) {
			t.Fatalf("radius %d: Disk yields %d cells, want %d", radius, len(cells), diskSize(radius))
		}
		seen := make(map[Coord]bool, len(cells))
		for _, c := range cells {
			if seen[c] {
				t.Fatalf("radius %d: Disk yields %v twice", radius, c)
			}
			seen[c] = true
			if d := Distance(center, c); d > radius {
				t.Fatalf("radius %d: Disk yields %v at distance %d", radius, c, d)
			}
		}

		ix := NewIndex(center, radius)
		if ix.Cells() != len(cells) {
			t.Fatalf("radius %d: Index.Cells = %d, want %d", radius, ix.Cells(), len(cells))
		}
		slots := make(map[int]bool, len(cells))
		for _, c := range cells {
			slot, ok := ix.Of(c)
			if !ok || slot < 0 || slot >= ix.Slots() {
				t.Fatalf("radius %d: Of(%v) = (%d, %v)", radius, c, slot, ok)
			}
			if slots[slot] {
				t.Fatalf("radius %d: Index slot %d assigned twice", radius, slot)
			}
			slots[slot] = true
		}
	}
}

func TestTopologyDiskMatchesIndex(t *testing.T) {
	center := Coord{Q: 1, R: -2}
	const radius = 10
	topo := DiskTopology(center, radius)
	cells := Disk(center, radius)
	if topo.Cells() != len(cells) || topo.Slots() != len(cells) {
		t.Fatalf("Cells/Slots = %d/%d, want dense %d", topo.Cells(), topo.Slots(), len(cells))
	}
	// Slot order must be Disk ring order: that is what keeps the classic
	// single-cluster stream numbering stable.
	for i, c := range cells {
		if got := topo.At(i); got != c {
			t.Fatalf("At(%d) = %v, want %v (ring order)", i, got, c)
		}
		slot, ok := topo.Of(c)
		if !ok || slot != i {
			t.Fatalf("Of(%v) = (%d, %v), want (%d, true)", c, slot, ok, i)
		}
	}
	for _, c := range Ring(center, radius+1) {
		if topo.Contains(c) {
			t.Errorf("Contains(%v) = true outside the disk", c)
		}
	}
}

func TestTopologyMultiClusterRoundTrip(t *testing.T) {
	// Property test from the satellite list: every generated cell
	// round-trips Slot -> Cell -> Slot, and disjoint clusters never share
	// slots.
	clusters := []struct {
		center Coord
		radius int
	}{
		{Coord{Q: 0, R: 0}, 3},
		{Coord{Q: 40, R: -7}, 5},
		{Coord{Q: -25, R: 30}, 0},
		{Coord{Q: 12, R: 60}, 2},
	}
	b := NewBuilder()
	owner := make(map[Coord]int)
	for ci, cl := range clusters {
		for _, c := range Disk(cl.center, cl.radius) {
			if _, dup := owner[c]; dup {
				t.Fatalf("test clusters overlap at %v; pick farther centers", c)
			}
			owner[c] = ci
		}
		b.AddDisk(cl.center, cl.radius)
	}
	topo, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if topo.Cells() != len(owner) {
		t.Fatalf("Cells = %d, want %d", topo.Cells(), len(owner))
	}

	slotOwner := make(map[int]int, topo.Cells())
	for slot := 0; slot < topo.Slots(); slot++ {
		c := topo.At(slot)
		got, ok := topo.Of(c)
		if !ok || got != slot {
			t.Fatalf("slot %d cell %v: Of = (%d, %v), want (%d, true)", slot, c, got, ok, slot)
		}
		ci, known := owner[c]
		if !known {
			t.Fatalf("slot %d cell %v not in any cluster", slot, c)
		}
		if prev, dup := slotOwner[slot]; dup {
			t.Fatalf("slot %d owned by clusters %d and %d", slot, prev, ci)
		}
		slotOwner[slot] = ci
	}
	// Cells between the clusters are outside the topology.
	if topo.Contains(Coord{Q: 20, R: 10}) {
		t.Error("Contains reports a cell between clusters")
	}
}

func TestTopologyRejectsEmptyAndDuplicates(t *testing.T) {
	if _, err := NewTopology(nil); err == nil {
		t.Error("NewTopology(nil) succeeded")
	}
	if _, err := NewTopology([]Coord{{Q: 1}, {Q: 2}, {Q: 1}}); err == nil {
		t.Error("NewTopology with a duplicate succeeded")
	}
}

func TestTopologyNeighborSlots(t *testing.T) {
	topo := DiskTopology(Coord{}, 1)
	centerSlot, _ := topo.Of(Coord{})
	ns := topo.NeighborSlots(centerSlot)
	for i, n := range (Coord{}).Neighbors() {
		want, _ := topo.Of(n)
		if int(ns[i]) != want {
			t.Errorf("neighbor %d: slot %d, want %d", i, ns[i], want)
		}
	}
	// A ring cell has neighbours outside the disk: those must be -1.
	edgeSlot, _ := topo.Of(Coord{Q: 1, R: 0})
	outside := 0
	for _, s := range topo.NeighborSlots(edgeSlot) {
		if s == -1 {
			outside++
		} else if int(s) >= topo.Slots() {
			t.Fatalf("neighbor slot %d out of range", s)
		}
	}
	if outside != 3 {
		t.Errorf("edge cell has %d outside neighbours, want 3", outside)
	}
}

func TestTopologyPartition(t *testing.T) {
	topo := DiskTopology(Coord{}, 5) // 91 cells
	for _, groups := range []int{1, 2, 7, 16, 91, 200} {
		parts := topo.Partition(groups)
		wantGroups := min(groups, topo.Cells())
		if len(parts) != wantGroups {
			t.Fatalf("Partition(%d): %d groups, want %d", groups, len(parts), wantGroups)
		}
		seen := make(map[int]bool, topo.Cells())
		next := 0
		for g, slots := range parts {
			if len(slots) == 0 {
				t.Fatalf("Partition(%d): group %d empty", groups, g)
			}
			for _, s := range slots {
				if s != next {
					t.Fatalf("Partition(%d): group %d slot %d, want contiguous %d", groups, g, s, next)
				}
				if seen[s] {
					t.Fatalf("Partition(%d): slot %d in two groups", groups, s)
				}
				seen[s] = true
				next++
			}
		}
		if len(seen) != topo.Cells() {
			t.Fatalf("Partition(%d): covered %d slots, want %d", groups, len(seen), topo.Cells())
		}
	}
}

func TestBuilderRemove(t *testing.T) {
	b := NewBuilder().AddDisk(Coord{}, 2)
	before := b.Len()
	b.Remove(Coord{Q: 1, R: 0}, Coord{Q: 99, R: 99})
	if b.Len() != before-1 {
		t.Fatalf("Len after Remove = %d, want %d", b.Len(), before-1)
	}
	topo, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if topo.Contains(Coord{Q: 1, R: 0}) {
		t.Error("removed cell still present")
	}
	// Remaining cells keep their relative insertion order.
	prevSlot := -1
	for _, c := range Disk(Coord{}, 2) {
		if c == (Coord{Q: 1, R: 0}) {
			continue
		}
		slot, ok := topo.Of(c)
		if !ok {
			t.Fatalf("kept cell %v missing", c)
		}
		if slot <= prevSlot {
			t.Fatalf("cell %v slot %d breaks insertion order (prev %d)", c, slot, prevSlot)
		}
		prevSlot = slot
	}
}

func TestLine(t *testing.T) {
	cases := []struct {
		a, b Coord
	}{
		{Coord{}, Coord{}},
		{Coord{}, Coord{Q: 5, R: 0}},
		{Coord{}, Coord{Q: 0, R: -7}},
		{Coord{Q: -3, R: 2}, Coord{Q: 6, R: -5}},
		{Coord{Q: 2, R: 2}, Coord{Q: -4, R: 9}},
	}
	for _, tc := range cases {
		t.Run(fmt.Sprintf("%v->%v", tc.a, tc.b), func(t *testing.T) {
			line := Line(tc.a, tc.b)
			if len(line) != Distance(tc.a, tc.b)+1 {
				t.Fatalf("len = %d, want %d", len(line), Distance(tc.a, tc.b)+1)
			}
			if line[0] != tc.a || line[len(line)-1] != tc.b {
				t.Fatalf("endpoints %v..%v, want %v..%v", line[0], line[len(line)-1], tc.a, tc.b)
			}
			for i := 1; i < len(line); i++ {
				if Distance(line[i-1], line[i]) != 1 {
					t.Fatalf("cells %v and %v not adjacent", line[i-1], line[i])
				}
			}
		})
	}
}

func TestTopologyOfAllocationFree(t *testing.T) {
	topo := DiskTopology(Coord{}, 10)
	cells := topo.Coords()
	allocs := testing.AllocsPerRun(100, func() {
		for _, c := range cells {
			if _, ok := topo.Of(c); !ok {
				t.Fatal("cell missing")
			}
		}
	})
	if allocs != 0 {
		t.Fatalf("Of allocates %.1f times per sweep, want 0", allocs)
	}
}
