package hexgrid

import "fmt"

// Topology is a compiled, immutable set of cells — the generalisation of
// the disk-shaped Index to city-scale networks: multiple clusters,
// irregular shapes, coverage holes. Every cell maps to a stable dense
// slot in [0, Cells()): unlike Index's positional numbering, Topology
// slots are contiguous, so per-cell state lives in a slice of length
// Cells() with no wasted entries.
//
// Lookups keep the Index contract: Of and Contains are pure arithmetic
// over a precompiled bounding-box grid — no map lookups, no allocation —
// so they are safe on simulation hot paths and for concurrent readers.
//
// Slot numbering follows the construction order of the cells (NewTopology
// argument order, Builder insertion order), which makes a Topology's
// numbering — and everything seeded per slot, like the sharded
// simulator's per-cell RNG substreams — a pure function of how it was
// built.
type Topology struct {
	cells      []Coord
	minQ, minR int
	w, h       int
	grid       []int32 // positional (dq*h + dr) -> dense slot, -1 = no cell
}

// NewTopology compiles a topology from an explicit cell list. The slice
// is copied; its order defines the dense slot numbering. Empty lists and
// duplicate cells are errors: a topology is validated configuration, not
// a programming constant, so bad input reports instead of panicking.
func NewTopology(cells []Coord) (*Topology, error) {
	if len(cells) == 0 {
		return nil, fmt.Errorf("hexgrid: topology with no cells")
	}
	minQ, maxQ := cells[0].Q, cells[0].Q
	minR, maxR := cells[0].R, cells[0].R
	for _, c := range cells[1:] {
		minQ, maxQ = min(minQ, c.Q), max(maxQ, c.Q)
		minR, maxR = min(minR, c.R), max(maxR, c.R)
	}
	w, h := maxQ-minQ+1, maxR-minR+1
	// The grid is bounding-box sized; cap it so a degenerate topology
	// (two cells a million hexes apart) fails loudly instead of
	// allocating gigabytes.
	const maxGridCells = 1 << 24
	if int64(w)*int64(h) > maxGridCells {
		return nil, fmt.Errorf("hexgrid: topology bounding box %dx%d exceeds %d grid cells", w, h, maxGridCells)
	}
	t := &Topology{
		cells: append([]Coord(nil), cells...),
		minQ:  minQ, minR: minR, w: w, h: h,
		grid: make([]int32, w*h),
	}
	for i := range t.grid {
		t.grid[i] = -1
	}
	for i, c := range t.cells {
		pos := (c.Q-minQ)*h + (c.R - minR)
		if t.grid[pos] >= 0 {
			return nil, fmt.Errorf("hexgrid: duplicate topology cell %v", c)
		}
		t.grid[pos] = int32(i)
	}
	return t, nil
}

// DiskTopology returns the topology of the disk of the given radius
// around center, cells in ring order — the same enumeration order as
// Disk, so the classic single-cluster set-up keeps its slot numbering.
// It panics on a negative radius, mirroring NewIndex: disk geometry is
// static configuration.
func DiskTopology(center Coord, radius int) *Topology {
	if radius < 0 {
		panic(fmt.Sprintf("hexgrid: negative disk radius %d", radius))
	}
	t, err := NewTopology(Disk(center, radius))
	if err != nil {
		panic("hexgrid: " + err.Error()) // Disk never yields duplicates
	}
	return t
}

// Cells returns the number of cells in the topology.
func (t *Topology) Cells() int { return len(t.cells) }

// Slots returns the dense numbering's exclusive upper bound — the length
// to allocate for a slice indexed by Of. For Topology (unlike Index) the
// numbering is dense: Slots() == Cells().
func (t *Topology) Slots() int { return len(t.cells) }

// At returns the cell of a dense slot. It panics on an out-of-range
// slot, like any slice index.
func (t *Topology) At(slot int) Coord { return t.cells[slot] }

// Coords returns a copy of the cells in slot order.
func (t *Topology) Coords() []Coord {
	return append([]Coord(nil), t.cells...)
}

// Of returns the cell's dense slot and whether the cell belongs to the
// topology. It is pure arithmetic plus one grid load — no allocation.
func (t *Topology) Of(c Coord) (int, bool) {
	dq := c.Q - t.minQ
	dr := c.R - t.minR
	if dq < 0 || dq >= t.w || dr < 0 || dr >= t.h {
		return 0, false
	}
	slot := t.grid[dq*t.h+dr]
	if slot < 0 {
		return 0, false
	}
	return int(slot), true
}

// Contains reports whether the cell belongs to the topology.
func (t *Topology) Contains(c Coord) bool {
	_, ok := t.Of(c)
	return ok
}

// NeighborSlots returns the dense slots of the six adjacent cells, -1
// for neighbours outside the topology (cluster edges, coverage holes).
// It allocates nothing.
func (t *Topology) NeighborSlots(slot int) [6]int32 {
	var out [6]int32
	for i, n := range t.cells[slot].Neighbors() {
		if s, ok := t.Of(n); ok {
			out[i] = int32(s)
		} else {
			out[i] = -1
		}
	}
	return out
}

// Partition splits the dense slot range into the given number of
// near-equal contiguous groups — the unit of parallelism of the sharded
// simulator. Every slot lands in exactly one group; the first
// Cells()%groups groups are one slot larger. groups is clamped to
// [1, Cells()], so callers may pass any positive worker budget.
func (t *Topology) Partition(groups int) [][]int {
	n := len(t.cells)
	if groups < 1 {
		groups = 1
	}
	if groups > n {
		groups = n
	}
	out := make([][]int, groups)
	base, extra := n/groups, n%groups
	start := 0
	for g := range out {
		size := base
		if g < extra {
			size++
		}
		slots := make([]int, size)
		for i := range slots {
			slots[i] = start + i
		}
		out[g] = slots
		start += size
	}
	return out
}

// DefaultGroups is the cell-group count the city tooling uses when the
// caller does not pick one: enough groups to keep 8+ workers busy, capped
// by the cell count so no group is empty.
func (t *Topology) DefaultGroups() int {
	const groups = 16
	return min(groups, len(t.cells))
}

// Line returns the cells of the straight-line hex path from a to b,
// inclusive, via cube-coordinate interpolation with rounding — the
// standard hex line-drawing construction. Adjacent result cells are
// always neighbours; a == b yields a single cell.
func Line(a, b Coord) []Coord {
	n := Distance(a, b)
	out := make([]Coord, 0, n+1)
	if n == 0 {
		return append(out, a)
	}
	for i := 0; i <= n; i++ {
		f := float64(i) / float64(n)
		// Lerp in axial (equivalently cube) space, then cube-round. The
		// epsilon nudge keeps midpoints off cell boundaries so rounding
		// is stable.
		qf := float64(a.Q) + (float64(b.Q)-float64(a.Q))*f + 1e-6
		rf := float64(a.R) + (float64(b.R)-float64(a.R))*f + 1e-6
		out = append(out, roundAxial(qf, rf))
	}
	return out
}

// Builder accumulates cells for a Topology: Add/AddDisk/AddLine ignore
// cells already present (overlapping clusters merge), Remove punches
// holes (dead zones). Build preserves first-insertion order for the slot
// numbering.
type Builder struct {
	order []Coord
	seen  map[Coord]bool
}

// NewBuilder returns an empty topology builder.
func NewBuilder() *Builder {
	return &Builder{seen: make(map[Coord]bool)}
}

// Add inserts cells, ignoring ones already present.
func (b *Builder) Add(cells ...Coord) *Builder {
	for _, c := range cells {
		if !b.seen[c] {
			b.seen[c] = true
			b.order = append(b.order, c)
		}
	}
	return b
}

// AddDisk inserts the disk of the given radius around center.
func (b *Builder) AddDisk(center Coord, radius int) *Builder {
	return b.Add(Disk(center, radius)...)
}

// AddLine inserts the straight-line hex path from a to b.
func (b *Builder) AddLine(a, c Coord) *Builder {
	return b.Add(Line(a, c)...)
}

// Remove deletes cells, ignoring ones not present. Removed cells may be
// re-Added later.
func (b *Builder) Remove(cells ...Coord) *Builder {
	changed := false
	for _, c := range cells {
		if b.seen[c] {
			delete(b.seen, c)
			changed = true
		}
	}
	if changed {
		kept := b.order[:0]
		for _, c := range b.order {
			if b.seen[c] {
				kept = append(kept, c)
			}
		}
		b.order = kept
	}
	return b
}

// Len returns the number of cells currently in the builder.
func (b *Builder) Len() int { return len(b.order) }

// Build compiles the accumulated cells into a Topology.
func (b *Builder) Build() (*Topology, error) {
	return NewTopology(b.order)
}
