// Package hexgrid provides the cell geometry of the cellular simulator:
// axial-coordinate hexagonal cells, neighbourhood and ring enumeration,
// world <-> cell mapping, and the bearing math that turns a mobile's
// trajectory into the paper's "user angle" input.
//
// Cells are pointy-top hexagons addressed by axial coordinates (Q, R);
// see Amit Patel's hexagon pages for the conventions used here. World
// coordinates are metres.
package hexgrid

import (
	"fmt"
	"math"
)

// Coord is the axial coordinate of a hexagonal cell.
type Coord struct {
	Q int
	R int
}

// String renders the coordinate as "(q,r)".
func (c Coord) String() string { return fmt.Sprintf("(%d,%d)", c.Q, c.R) }

// directions are the six axial neighbour offsets, starting east and
// proceeding counter-clockwise.
var directions = [6]Coord{
	{Q: 1, R: 0}, {Q: 1, R: -1}, {Q: 0, R: -1},
	{Q: -1, R: 0}, {Q: -1, R: 1}, {Q: 0, R: 1},
}

// Neighbors returns the six adjacent cells, starting east and proceeding
// counter-clockwise.
func (c Coord) Neighbors() [6]Coord {
	var out [6]Coord
	for i, d := range directions {
		out[i] = Coord{Q: c.Q + d.Q, R: c.R + d.R}
	}
	return out
}

// Add returns c translated by d.
func (c Coord) Add(d Coord) Coord { return Coord{Q: c.Q + d.Q, R: c.R + d.R} }

// Distance returns the hex-grid distance (minimum number of cell hops)
// between a and b.
func Distance(a, b Coord) int {
	dq := a.Q - b.Q
	dr := a.R - b.R
	ds := -dq - dr // cube coordinate s = -q-r
	return (abs(dq) + abs(dr) + abs(ds)) / 2
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// Ring returns the cells at exactly the given hop distance from center, in
// counter-clockwise order; radius 0 returns just the center.
func Ring(center Coord, radius int) []Coord {
	if radius < 0 {
		return nil
	}
	if radius == 0 {
		return []Coord{center}
	}
	out := make([]Coord, 0, 6*radius)
	// Start radius steps along direction 4 (south-west), then walk each of
	// the six edges of the ring.
	c := center
	for i := 0; i < radius; i++ {
		c = c.Add(directions[4])
	}
	for side := 0; side < 6; side++ {
		for step := 0; step < radius; step++ {
			out = append(out, c)
			c = c.Add(directions[side])
		}
	}
	return out
}

// Disk returns all cells within the given hop distance of center
// (inclusive), ordered by increasing ring.
func Disk(center Coord, radius int) []Coord {
	if radius < 0 {
		return nil
	}
	out := make([]Coord, 0, 1+3*radius*(radius+1))
	for r := 0; r <= radius; r++ {
		out = append(out, Ring(center, r)...)
	}
	return out
}

// Layout maps between axial cell coordinates and world coordinates for
// pointy-top hexagons with the given circumradius (centre-to-corner
// distance) in metres.
type Layout struct {
	// Size is the hexagon circumradius in metres. Must be positive.
	Size float64
}

// NewLayout returns a Layout, panicking on a non-positive size: cell
// geometry is static configuration, so a bad value is a programming error.
func NewLayout(size float64) Layout {
	if size <= 0 || math.IsNaN(size) || math.IsInf(size, 0) {
		panic(fmt.Sprintf("hexgrid: invalid cell size %v", size))
	}
	return Layout{Size: size}
}

// Center returns the world coordinates of the cell's centre.
func (l Layout) Center(c Coord) (x, y float64) {
	x = l.Size * (math.Sqrt(3)*float64(c.Q) + math.Sqrt(3)/2*float64(c.R))
	y = l.Size * 1.5 * float64(c.R)
	return x, y
}

// Inradius returns the hexagon's inscribed-circle radius (half the
// centre-to-centre distance of adjacent cells). It is the single source of
// truth for every consumer that brackets a cell between its inscribed and
// circumscribed circles — the InCell fast path and the simulator's
// rejection-sampling bounding box — so the two can never drift apart.
func (l Layout) Inradius() float64 {
	return l.Size * math.Sqrt(3) / 2
}

// InCell reports whether the world point (x, y) certainly lies inside the
// given cell, by testing against the cell's inscribed circle. A false
// return means "maybe outside": the point is in the corner region where
// only full cube rounding (CellAt) can decide. Simulation tick loops use
// it as a cheap same-cell fast path.
func (l Layout) InCell(c Coord, x, y float64) bool {
	cx, cy := l.Center(c)
	dx, dy := x-cx, y-cy
	w := l.Inradius()
	return dx*dx+dy*dy < w*w
}

// CellAt returns the cell containing the world point (x, y), using
// fractional axial coordinates with cube rounding.
func (l Layout) CellAt(x, y float64) Coord {
	qf := (math.Sqrt(3)/3*x - y/3) / l.Size
	rf := (2.0 / 3 * y) / l.Size
	return roundAxial(qf, rf)
}

// roundAxial rounds fractional axial coordinates to the containing cell by
// rounding in cube space and fixing the coordinate with the largest error.
func roundAxial(qf, rf float64) Coord {
	sf := -qf - rf
	q := math.Round(qf)
	r := math.Round(rf)
	s := math.Round(sf)

	dq := math.Abs(q - qf)
	dr := math.Abs(r - rf)
	ds := math.Abs(s - sf)

	switch {
	case dq > dr && dq > ds:
		q = -r - s
	case dr > ds:
		r = -q - s
	}
	return Coord{Q: int(q), R: int(r)}
}

// NormalizeAngle maps an angle in degrees into (-180, 180].
func NormalizeAngle(deg float64) float64 {
	deg = math.Mod(deg, 360)
	switch {
	case deg > 180:
		return deg - 360
	case deg <= -180:
		return deg + 360
	default:
		return deg
	}
}

// BearingDeg returns the direction, in degrees measured counter-clockwise
// from the +x axis, from point (fromX, fromY) to point (toX, toY).
// The result is in (-180, 180]. If the points coincide the bearing is 0.
func BearingDeg(fromX, fromY, toX, toY float64) float64 {
	dx := toX - fromX
	dy := toY - fromY
	if dx == 0 && dy == 0 {
		return 0
	}
	return NormalizeAngle(math.Atan2(dy, dx) * 180 / math.Pi)
}

// AngleOff returns the paper's "user angle": the angle in (-180, 180]
// between a mobile's heading and the bearing from the mobile to a target
// (normally its serving base station). Zero means heading straight at the
// target; +/-180 means heading directly away.
func AngleOff(headingDeg, fromX, fromY, toX, toY float64) float64 {
	return NormalizeAngle(headingDeg - BearingDeg(fromX, fromY, toX, toY))
}
