package hexgrid

import "testing"

func TestIndexCoversDisk(t *testing.T) {
	for _, radius := range []int{0, 1, 2, 3} {
		center := Coord{Q: 2, R: -1}
		ix := NewIndex(center, radius)
		cells := Disk(center, radius)
		if got := ix.Cells(); got != len(cells) {
			t.Errorf("radius %d: Cells = %d, want %d", radius, got, len(cells))
		}
		seen := make(map[int]bool)
		for _, c := range cells {
			slot, ok := ix.Of(c)
			if !ok {
				t.Fatalf("radius %d: cluster cell %v not indexed", radius, c)
			}
			if slot < 0 || slot >= ix.Slots() {
				t.Fatalf("radius %d: slot %d outside [0, %d)", radius, slot, ix.Slots())
			}
			if seen[slot] {
				t.Fatalf("radius %d: slot %d assigned twice", radius, slot)
			}
			seen[slot] = true
			if !ix.Contains(c) {
				t.Errorf("radius %d: Contains(%v) = false for a cluster cell", radius, c)
			}
		}
		// Every cell just outside the disk must be rejected.
		for _, c := range Ring(center, radius+1) {
			if _, ok := ix.Of(c); ok {
				t.Errorf("radius %d: outside cell %v indexed", radius, c)
			}
			if ix.Contains(c) {
				t.Errorf("radius %d: Contains(%v) = true outside the disk", radius, c)
			}
		}
	}
}

func TestIndexPanicsOnNegativeRadius(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewIndex(-1) did not panic")
		}
	}()
	NewIndex(Coord{}, -1)
}
