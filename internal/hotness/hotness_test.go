package hotness

import (
	"math"
	"testing"
)

func TestNewValidation(t *testing.T) {
	bad := []struct {
		cells    int
		halfLife float64
	}{
		{0, 1}, {-1, 1}, {1, 0}, {1, -2}, {1, math.Inf(1)}, {1, math.NaN()},
	}
	for _, c := range bad {
		if _, err := New(c.cells, c.halfLife); err == nil {
			t.Errorf("New(%d, %v) accepted", c.cells, c.halfLife)
		}
	}
	tr, err := New(4, 30)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Cells() != 4 || tr.HalfLife() != 30 {
		t.Errorf("Cells=%d HalfLife=%v, want 4, 30", tr.Cells(), tr.HalfLife())
	}
}

// TestHalvingProperty pins the defining contract: an undisturbed value
// halves every half-life, exactly (Exp2 of an integer is exact for these
// magnitudes).
func TestHalvingProperty(t *testing.T) {
	for _, halfLife := range []float64{0.5, 1, 30, 3600} {
		tr, err := New(1, halfLife)
		if err != nil {
			t.Fatal(err)
		}
		const events = 8
		for i := 0; i < events; i++ {
			tr.Record(0, 0)
		}
		if got := tr.Value(0, 0); got != events {
			t.Fatalf("halfLife %v: value at t=0 = %v, want %v", halfLife, got, events)
		}
		want := float64(events)
		for step := 1; step <= 4; step++ {
			want /= 2
			got := tr.Value(0, float64(step)*halfLife)
			if math.Abs(got-want) > 1e-12 {
				t.Errorf("halfLife %v: value after %d half-lives = %v, want %v", halfLife, step, got, want)
			}
		}
	}
}

// TestMonotoneDecay checks a cell's value never increases while no events
// are recorded, across irregularly spaced reads.
func TestMonotoneDecay(t *testing.T) {
	tr, err := New(1, 7)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		tr.Record(0, 1.5)
	}
	prev := tr.Value(0, 1.5)
	for _, now := range []float64{1.5, 1.6, 2, 3.25, 10, 100, 1e6} {
		got := tr.Value(0, now)
		if got > prev {
			t.Errorf("value increased without events: %v at t=%v after %v", got, now, prev)
		}
		if got < 0 {
			t.Errorf("value went negative: %v at t=%v", got, now)
		}
		prev = got
	}
}

// TestDecayComposition checks lazy decay is path-independent: reading (and
// thus materialising decay) at an intermediate time must not change the
// final value, because exp2(-(a+b)/h) = exp2(-a/h)*exp2(-b/h).
func TestDecayComposition(t *testing.T) {
	direct, err := New(1, 5)
	if err != nil {
		t.Fatal(err)
	}
	stepped, err := New(1, 5)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		direct.Record(0, 2)
		stepped.Record(0, 2)
	}
	// Force the stepped tracker to materialise decay at t=9 by recording,
	// then compare both at t=20 after compensating the extra event.
	stepped.Record(0, 9)
	got := stepped.Value(0, 20) - math.Exp2(-(20.0-9.0)/5.0)
	want := direct.Value(0, 20)
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("stepped decay = %v, direct decay = %v", got, want)
	}
}

// TestRateEstimatesPoissonRate feeds a deterministic regular stream and
// checks the rate estimator converges to the true event rate.
func TestRateEstimatesPoissonRate(t *testing.T) {
	const (
		halfLife = 10.0
		rate     = 4.0 // events per second
		horizon  = 200.0
	)
	tr, err := New(1, halfLife)
	if err != nil {
		t.Fatal(err)
	}
	dt := 1 / rate
	var now float64
	for now = 0; now < horizon; now += dt {
		tr.Record(0, now)
	}
	got := tr.Rate(0, now)
	// A regular stream is the zero-variance limit of Poisson arrivals; the
	// estimator still carries ~ln2/(2·halfLife·rate) discretisation bias,
	// far under 5% here.
	if math.Abs(got-rate)/rate > 0.05 {
		t.Errorf("estimated rate %v, want %v within 5%%", got, rate)
	}
}

func TestRecordClockSkewDoesNotAmplify(t *testing.T) {
	tr, err := New(1, 30)
	if err != nil {
		t.Fatal(err)
	}
	tr.Record(0, 100)
	// A recorder with a lagging clock must not un-decay the value: the
	// stored timestamp stays at the max seen.
	tr.Record(0, 40)
	if got := tr.Value(0, 100); math.Abs(got-2) > 1e-12 {
		t.Errorf("value after skewed record = %v, want 2", got)
	}
	if got := tr.Value(0, 130); math.Abs(got-1) > 1e-12 {
		t.Errorf("value one half-life later = %v, want 1", got)
	}
}

func TestTopRankingAndTies(t *testing.T) {
	tr, err := New(4, 10)
	if err != nil {
		t.Fatal(err)
	}
	// cell 2 hottest, cells 0 and 3 tied, cell 1 cold.
	for i := 0; i < 5; i++ {
		tr.Record(2, 1)
	}
	tr.Record(0, 1)
	tr.Record(3, 1)

	top := tr.Top(1, 0)
	if len(top) != 4 {
		t.Fatalf("Top(k=0) returned %d cells, want all 4", len(top))
	}
	order := []int{2, 0, 3, 1}
	for i, want := range order {
		if top[i].Cell != want {
			t.Errorf("rank %d = cell %d, want %d (ties ascending)", i, top[i].Cell, want)
		}
	}
	for i := 1; i < len(top); i++ {
		if top[i].Rate > top[i-1].Rate {
			t.Errorf("ranking not descending at %d: %v > %v", i, top[i].Rate, top[i-1].Rate)
		}
	}

	if got := tr.Top(1, 2); len(got) != 2 || got[0].Cell != 2 || got[1].Cell != 0 {
		t.Errorf("Top(k=2) = %+v, want cells 2,0", got)
	}
	if got := tr.Top(1, 99); len(got) != 4 {
		t.Errorf("Top(k>cells) returned %d, want 4", len(got))
	}
}

func TestRatesBufferReuse(t *testing.T) {
	tr, err := New(3, 10)
	if err != nil {
		t.Fatal(err)
	}
	tr.Record(1, 0)
	buf := tr.Rates(0, nil)
	if len(buf) != 3 {
		t.Fatalf("Rates len = %d, want 3", len(buf))
	}
	if buf[1] != tr.Rate(1, 0) || buf[0] != 0 {
		t.Errorf("Rates = %v", buf)
	}
	again := tr.Rates(5, buf)
	if &again[0] != &buf[0] {
		t.Error("Rates reallocated a buffer that fit")
	}
}

func TestRateScaling(t *testing.T) {
	tr, err := New(1, 20)
	if err != nil {
		t.Fatal(err)
	}
	tr.Record(0, 0)
	want := tr.Value(0, 0) * math.Ln2 / 20
	if got := tr.Rate(0, 0); math.Abs(got-want) > 1e-15 {
		t.Errorf("Rate = %v, want value*ln2/halfLife = %v", got, want)
	}
}
