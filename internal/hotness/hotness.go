// Package hotness tracks per-cell demand with an exponentially decaying
// event counter: each recorded event contributes weight 1 that halves
// every configured half-life, so a cell's value is a recency-weighted
// event count and value x ln2/halfLife estimates its recent event rate in
// events per unit time (for a steady Poisson stream of rate r the value
// converges to r·halfLife/ln2, so the estimator converges to r).
//
// Record is O(1) and allocation-free: the decay is applied lazily — a
// cell's stored value is only brought forward to "now" when that cell is
// touched, never by a background sweep. Readers (the /metrics scrape, the
// /hotcells ranking, the hotness-adaptive surfaces of ROADMAP item 2) pay
// one exponential per cell read.
//
// Time is an explicit float64 in the caller's unit (wall-clock seconds
// for the serving daemon, simulation seconds for cellsim), which keeps
// the tracker deterministic under test and lets both planes share it.
package hotness

import (
	"fmt"
	"math"
	"sort"
	"sync"
)

// Tracker is a bank of per-cell exponentially decaying event counters.
// All methods are safe for concurrent use; cells decay independently, so
// writers to different cells never contend.
type Tracker struct {
	halfLife float64
	cells    []cell
}

// cell is one decaying counter. Its mutex makes the (value, last) pair
// atomic; with one dominant writer per cell (the bsd cell worker, the
// single-threaded sim loop) it is uncontended outside scrapes.
type cell struct {
	mu    sync.Mutex
	value float64
	last  float64
}

// New builds a tracker for the given number of cells. halfLife is the
// time, in the caller's time unit, in which an undisturbed cell's value
// halves; it must be positive and finite.
func New(cells int, halfLife float64) (*Tracker, error) {
	if cells < 1 {
		return nil, fmt.Errorf("hotness: tracker needs at least one cell, got %d", cells)
	}
	if !(halfLife > 0) || math.IsInf(halfLife, 1) {
		return nil, fmt.Errorf("hotness: half-life %v must be positive and finite", halfLife)
	}
	return &Tracker{halfLife: halfLife, cells: make([]cell, cells)}, nil
}

// Cells returns the number of tracked cells.
func (t *Tracker) Cells() int { return len(t.cells) }

// HalfLife returns the configured half-life.
func (t *Tracker) HalfLife() float64 { return t.halfLife }

// decayed brings v recorded at last forward to now. Time never runs
// backwards: a now before last (clock skew between concurrent recorders)
// applies no decay rather than amplifying the value.
func (t *Tracker) decayed(v, last, now float64) float64 {
	if dt := now - last; dt > 0 {
		return v * math.Exp2(-dt/t.halfLife)
	}
	return v
}

// Record adds one event to a cell at time now. O(1), allocation-free.
func (t *Tracker) Record(cellIdx int, now float64) {
	c := &t.cells[cellIdx]
	c.mu.Lock()
	c.value = t.decayed(c.value, c.last, now) + 1
	if now > c.last {
		c.last = now
	}
	c.mu.Unlock()
}

// Value returns a cell's decayed event count as of now, without recording.
func (t *Tracker) Value(cellIdx int, now float64) float64 {
	c := &t.cells[cellIdx]
	c.mu.Lock()
	v := t.decayed(c.value, c.last, now)
	c.mu.Unlock()
	return v
}

// Rate returns a cell's estimated recent event rate as of now, in events
// per time unit: the decayed count scaled by ln2/halfLife.
func (t *Tracker) Rate(cellIdx int, now float64) float64 {
	return t.Value(cellIdx, now) * math.Ln2 / t.halfLife
}

// Rates fills buf (reused when it fits, reallocated otherwise) with every
// cell's Rate as of now, indexed by cell, and returns it.
func (t *Tracker) Rates(now float64, buf []float64) []float64 {
	if cap(buf) < len(t.cells) {
		buf = make([]float64, len(t.cells))
	}
	buf = buf[:len(t.cells)]
	for i := range t.cells {
		buf[i] = t.Rate(i, now)
	}
	return buf
}

// CellRate is one cell's rank entry in a hotness ranking.
type CellRate struct {
	// Cell is the cell slot index.
	Cell int `json:"cell"`
	// Rate is the cell's estimated event rate (see Rate).
	Rate float64 `json:"rate"`
}

// Top returns the k hottest cells as of now, hottest first, ties broken
// by ascending cell index so the ranking is deterministic. k <= 0 or
// k > Cells() returns all cells.
func (t *Tracker) Top(now float64, k int) []CellRate {
	out := make([]CellRate, len(t.cells))
	for i := range t.cells {
		out[i] = CellRate{Cell: i, Rate: t.Rate(i, now)}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Rate != out[j].Rate {
			return out[i].Rate > out[j].Rate
		}
		return out[i].Cell < out[j].Cell
	})
	if k > 0 && k < len(out) {
		out = out[:k]
	}
	return out
}
