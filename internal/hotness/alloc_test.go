//go:build !race

package hotness

import "testing"

// Record sits on the bsd session goroutines and the cellsim event loop;
// it must stay allocation-free. Build-gated out of the -race lane because
// the detector instruments allocations.

func TestRecordAllocFree(t *testing.T) {
	tr, err := New(8, 30)
	if err != nil {
		t.Fatal(err)
	}
	now := 0.0
	if n := testing.AllocsPerRun(1000, func() {
		now += 0.25
		tr.Record(3, now)
	}); n != 0 {
		t.Errorf("Record allocates %v per event, want 0", n)
	}
}

func TestReadSideAllocFree(t *testing.T) {
	tr, err := New(8, 30)
	if err != nil {
		t.Fatal(err)
	}
	tr.Record(1, 1)
	if n := testing.AllocsPerRun(1000, func() {
		_ = tr.Value(1, 2)
		_ = tr.Rate(1, 2)
	}); n != 0 {
		t.Errorf("Value/Rate allocate %v per read, want 0", n)
	}
	buf := tr.Rates(2, nil)
	if n := testing.AllocsPerRun(100, func() {
		buf = tr.Rates(3, buf)
	}); n != 0 {
		t.Errorf("buffered Rates allocates %v per sweep, want 0", n)
	}
}
