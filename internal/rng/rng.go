// Package rng provides a small, deterministic, splittable pseudo-random
// number generator used by every stochastic component of the repository.
//
// All simulator and experiment code takes an explicit *Source rather than
// using a process-global generator, so that every figure in EXPERIMENTS.md
// is reproducible bit-for-bit from its seed. The generator is xoshiro256**
// (Blackman & Vigna), seeded through SplitMix64 so that correlated seeds
// (0, 1, 2, ...) still yield decorrelated streams.
package rng

import "math"

// Source is a deterministic pseudo-random number generator.
//
// A Source is not safe for concurrent use; derive one per goroutine with
// Split. The zero value is not usable — construct a Source with New.
type Source struct {
	s [4]uint64
}

// New returns a Source seeded from seed. Two Sources created with the same
// seed produce identical streams.
func New(seed uint64) *Source {
	var src Source
	src.Reseed(seed)
	return &src
}

// Reseed resets the Source to the stream identified by seed.
func (s *Source) Reseed(seed uint64) {
	// SplitMix64 expansion of the 64-bit seed into 256 bits of state.
	// xoshiro256** requires a state that is not all zero; SplitMix64
	// guarantees that for any input.
	sm := seed
	for i := range s.s {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		s.s[i] = z ^ (z >> 31)
	}
}

// mix64 is the SplitMix64 finalizer: a bijective avalanche of all 64 bits.
func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Substream derives the seed of the deterministic substream identified by a
// base seed and a path of coordinate ids (e.g. load index, replication).
// The derivation is position-sensitive — Substream(b, 1, 2) differs from
// Substream(b, 2, 1) — and avalanched, so adjacent coordinates yield
// decorrelated streams. Sharded runners use it so that every (figure,
// load-point, replication) cell draws the same stream no matter which
// worker executes it or in what order.
func Substream(base uint64, ids ...uint64) uint64 {
	s := mix64(base)
	for _, id := range ids {
		s += 0x9e3779b97f4a7c15 // golden-ratio increment keeps zero ids distinct per level
		s = mix64(s ^ mix64(id))
	}
	return s
}

// Uint64 returns the next 64 uniformly distributed bits.
func (s *Source) Uint64() uint64 {
	result := rotl(s.s[1]*5, 7) * 9

	t := s.s[1] << 17
	s.s[2] ^= s.s[0]
	s.s[3] ^= s.s[1]
	s.s[1] ^= s.s[2]
	s.s[0] ^= s.s[3]
	s.s[2] ^= t
	s.s[3] = rotl(s.s[3], 45)

	return result
}

func rotl(x uint64, k uint) uint64 { return x<<k | x>>(64-k) }

// Split derives a new, statistically independent Source from s, advancing s.
// Use it to hand child components their own streams so that inserting a new
// consumer does not perturb the draws seen by existing ones.
func (s *Source) Split() *Source {
	return New(s.SplitSeed())
}

// SplitSeed advances s exactly as Split does and returns the derived
// stream's seed instead of allocating a Source for it. Reseeding any
// Source with the result reproduces Split's child stream bit for bit;
// allocation-averse callers keep a Source by value and Reseed it.
func (s *Source) SplitSeed() uint64 {
	// Mix two outputs through SplitMix64 to decorrelate the child stream
	// from the parent's continuation.
	return s.Uint64() ^ rotl(s.Uint64(), 32)
}

// Float64 returns a uniform value in [0, 1) with 53 bits of precision.
func (s *Source) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (s *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn called with n <= 0")
	}
	// Lemire's nearly-divisionless bounded generation, with a rejection
	// loop to remove modulo bias entirely.
	bound := uint64(n)
	for {
		v := s.Uint64()
		hi, lo := mul64(v, bound)
		if lo >= bound || lo >= uint64(-bound)%bound {
			return int(hi)
		}
	}
}

// mul64 returns the 128-bit product of a and b as (hi, lo).
func mul64(a, b uint64) (hi, lo uint64) {
	const mask = 1<<32 - 1
	aLo, aHi := a&mask, a>>32
	bLo, bHi := b&mask, b>>32

	t := aHi*bLo + (aLo*bLo)>>32
	lo = a * b
	hi = aHi*bHi + t>>32 + (t&mask+aLo*bHi)>>32
	return hi, lo
}

// Uniform returns a uniform value in [lo, hi). It panics if hi < lo.
func (s *Source) Uniform(lo, hi float64) float64 {
	if hi < lo {
		panic("rng: Uniform called with hi < lo")
	}
	return lo + (hi-lo)*s.Float64()
}

// Bool returns true with probability p (clamped to [0, 1]).
func (s *Source) Bool(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return s.Float64() < p
}

// Exp returns an exponentially distributed value with the given mean.
// It panics if mean <= 0.
func (s *Source) Exp(mean float64) float64 {
	if mean <= 0 {
		panic("rng: Exp called with mean <= 0")
	}
	// Inverse-CDF sampling; 1-Float64() avoids log(0).
	return -mean * math.Log(1-s.Float64())
}

// Poisson returns a Poisson-distributed count with the given mean (lambda).
// It panics if lambda < 0.
func (s *Source) Poisson(lambda float64) int {
	switch {
	case lambda < 0:
		panic("rng: Poisson called with lambda < 0")
	case lambda == 0:
		return 0
	case lambda < 30:
		// Knuth's product method — exact and fast for small lambda.
		limit := math.Exp(-lambda)
		n := 0
		for p := s.Float64(); p > limit; p *= s.Float64() {
			n++
		}
		return n
	default:
		// Split the mean and sum two independent draws. Recursion depth
		// is O(log lambda), and the sum of independent Poissons is
		// Poisson with summed means.
		half := lambda / 2
		return s.Poisson(half) + s.Poisson(lambda-half)
	}
}

// Normal returns a normally distributed value with the given mean and
// standard deviation, via the Marsaglia polar method.
func (s *Source) Normal(mean, stddev float64) float64 {
	for {
		u := 2*s.Float64() - 1
		v := 2*s.Float64() - 1
		q := u*u + v*v
		if q == 0 || q >= 1 {
			continue
		}
		return mean + stddev*u*math.Sqrt(-2*math.Log(q)/q)
	}
}

// Perm returns a uniformly random permutation of [0, n).
func (s *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := s.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Pick returns a uniformly random index into weights, interpreting each
// entry as a relative selection weight. It panics if weights is empty, if
// any weight is negative, or if all weights are zero.
func (s *Source) Pick(weights []float64) int {
	if len(weights) == 0 {
		panic("rng: Pick called with no weights")
	}
	total := 0.0
	for _, w := range weights {
		if w < 0 {
			panic("rng: Pick called with negative weight")
		}
		total += w
	}
	if total <= 0 {
		panic("rng: Pick called with zero total weight")
	}
	target := s.Float64() * total
	for i, w := range weights {
		target -= w
		if target < 0 {
			return i
		}
	}
	return len(weights) - 1 // floating-point slack lands on the last entry
}
