package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewDeterministic(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if got, want := a.Uint64(), b.Uint64(); got != want {
			t.Fatalf("draw %d: sources with equal seeds diverged: %d != %d", i, got, want)
		}
	}
}

func TestDifferentSeedsDiverge(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("seeds 1 and 2 produced %d identical 64-bit draws out of 1000", same)
	}
}

func TestReseedRestartsStream(t *testing.T) {
	s := New(7)
	first := make([]uint64, 16)
	for i := range first {
		first[i] = s.Uint64()
	}
	s.Reseed(7)
	for i := range first {
		if got := s.Uint64(); got != first[i] {
			t.Fatalf("draw %d after Reseed: got %d, want %d", i, got, first[i])
		}
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(9)
	child := parent.Split()
	// The child stream must differ from the parent's continuation.
	same := 0
	for i := 0; i < 1000; i++ {
		if parent.Uint64() == child.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("parent and split child matched on %d of 1000 draws", same)
	}
}

func TestSplitDeterministic(t *testing.T) {
	c1 := New(11).Split()
	c2 := New(11).Split()
	for i := 0; i < 100; i++ {
		if c1.Uint64() != c2.Uint64() {
			t.Fatalf("draw %d: children of identically seeded parents diverged", i)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	s := New(3)
	for i := 0; i < 100000; i++ {
		v := s.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", v)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	s := New(4)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += s.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.005 {
		t.Fatalf("Float64 mean = %v, want ~0.5", mean)
	}
}

func TestIntnRangeAndCoverage(t *testing.T) {
	s := New(5)
	const n = 10
	seen := make([]int, n)
	for i := 0; i < 10000; i++ {
		v := s.Intn(n)
		if v < 0 || v >= n {
			t.Fatalf("Intn(%d) out of range: %d", n, v)
		}
		seen[v]++
	}
	for v, c := range seen {
		if c == 0 {
			t.Fatalf("Intn(%d) never produced %d in 10000 draws", n, v)
		}
	}
}

func TestIntnUnbiased(t *testing.T) {
	s := New(6)
	const n, draws = 7, 700000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[s.Intn(n)]++
	}
	want := float64(draws) / n
	for v, c := range counts {
		if math.Abs(float64(c)-want) > 0.03*want {
			t.Fatalf("Intn(%d): value %d appeared %d times, want ~%.0f", n, v, c, want)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	for _, n := range []int{0, -1, -100} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Intn(%d) did not panic", n)
				}
			}()
			New(1).Intn(n)
		}()
	}
}

func TestUniform(t *testing.T) {
	s := New(8)
	for i := 0; i < 10000; i++ {
		v := s.Uniform(-3, 5)
		if v < -3 || v >= 5 {
			t.Fatalf("Uniform(-3,5) out of range: %v", v)
		}
	}
}

func TestUniformDegenerate(t *testing.T) {
	s := New(8)
	if v := s.Uniform(2, 2); v != 2 {
		t.Fatalf("Uniform(2,2) = %v, want 2", v)
	}
}

func TestUniformPanicsOnInvertedBounds(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Uniform(5,1) did not panic")
		}
	}()
	New(1).Uniform(5, 1)
}

func TestBool(t *testing.T) {
	s := New(10)
	tests := []struct {
		p    float64
		want float64
	}{
		{p: 0, want: 0},
		{p: 1, want: 1},
		{p: -0.5, want: 0},
		{p: 1.5, want: 1},
		{p: 0.25, want: 0.25},
		{p: 0.9, want: 0.9},
	}
	for _, tt := range tests {
		const n = 100000
		hits := 0
		for i := 0; i < n; i++ {
			if s.Bool(tt.p) {
				hits++
			}
		}
		got := float64(hits) / n
		if math.Abs(got-tt.want) > 0.01 {
			t.Errorf("Bool(%v) rate = %v, want ~%v", tt.p, got, tt.want)
		}
	}
}

func TestExpMean(t *testing.T) {
	s := New(12)
	for _, mean := range []float64{0.5, 3, 180} {
		const n = 100000
		sum := 0.0
		for i := 0; i < n; i++ {
			v := s.Exp(mean)
			if v < 0 {
				t.Fatalf("Exp(%v) produced negative value %v", mean, v)
			}
			sum += v
		}
		got := sum / n
		if math.Abs(got-mean) > 0.02*mean {
			t.Errorf("Exp(%v) sample mean = %v", mean, got)
		}
	}
}

func TestExpPanicsOnNonPositiveMean(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Exp(0) did not panic")
		}
	}()
	New(1).Exp(0)
}

func TestPoissonMoments(t *testing.T) {
	s := New(13)
	for _, lambda := range []float64{0.5, 4, 25, 100} {
		const n = 50000
		sum, sumSq := 0.0, 0.0
		for i := 0; i < n; i++ {
			v := float64(s.Poisson(lambda))
			sum += v
			sumSq += v * v
		}
		mean := sum / n
		variance := sumSq/n - mean*mean
		if math.Abs(mean-lambda) > 0.05*lambda+0.05 {
			t.Errorf("Poisson(%v) mean = %v", lambda, mean)
		}
		if math.Abs(variance-lambda) > 0.10*lambda+0.1 {
			t.Errorf("Poisson(%v) variance = %v", lambda, variance)
		}
	}
}

func TestPoissonZero(t *testing.T) {
	s := New(14)
	for i := 0; i < 100; i++ {
		if v := s.Poisson(0); v != 0 {
			t.Fatalf("Poisson(0) = %d, want 0", v)
		}
	}
}

func TestPoissonPanicsOnNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Poisson(-1) did not panic")
		}
	}()
	New(1).Poisson(-1)
}

func TestNormalMoments(t *testing.T) {
	s := New(15)
	const n = 200000
	mean, stddev := 12.0, 3.0
	sum, sumSq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := s.Normal(mean, stddev)
		sum += v
		sumSq += v * v
	}
	m := sum / n
	sd := math.Sqrt(sumSq/n - m*m)
	if math.Abs(m-mean) > 0.05 {
		t.Errorf("Normal mean = %v, want ~%v", m, mean)
	}
	if math.Abs(sd-stddev) > 0.05 {
		t.Errorf("Normal stddev = %v, want ~%v", sd, stddev)
	}
}

func TestPermIsPermutation(t *testing.T) {
	s := New(16)
	for _, n := range []int{0, 1, 2, 10, 100} {
		p := s.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) has length %d", n, len(p))
		}
		seen := make(map[int]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) = %v is not a permutation", n, p)
			}
			seen[v] = true
		}
	}
}

func TestPickRespectsWeights(t *testing.T) {
	s := New(17)
	weights := []float64{1, 0, 3}
	const n = 100000
	counts := make([]int, len(weights))
	for i := 0; i < n; i++ {
		counts[s.Pick(weights)]++
	}
	if counts[1] != 0 {
		t.Errorf("zero-weight entry picked %d times", counts[1])
	}
	got := float64(counts[2]) / float64(counts[0])
	if math.Abs(got-3) > 0.15 {
		t.Errorf("weight-3 / weight-1 pick ratio = %v, want ~3", got)
	}
}

func TestPickPanics(t *testing.T) {
	tests := []struct {
		name    string
		weights []float64
	}{
		{name: "empty", weights: nil},
		{name: "negative", weights: []float64{1, -1}},
		{name: "all zero", weights: []float64{0, 0}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Errorf("Pick(%v) did not panic", tt.weights)
				}
			}()
			New(1).Pick(tt.weights)
		})
	}
}

func TestQuickFloat64AlwaysInUnit(t *testing.T) {
	f := func(seed uint64, skip uint8) bool {
		s := New(seed)
		for i := 0; i < int(skip); i++ {
			s.Uint64()
		}
		v := s.Float64()
		return v >= 0 && v < 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickIntnAlwaysInRange(t *testing.T) {
	f := func(seed uint64, n uint16) bool {
		bound := int(n%1000) + 1
		v := New(seed).Intn(bound)
		return v >= 0 && v < bound
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickSplitDeterminism(t *testing.T) {
	f := func(seed uint64) bool {
		a := New(seed).Split()
		b := New(seed).Split()
		for i := 0; i < 8; i++ {
			if a.Uint64() != b.Uint64() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkUint64(b *testing.B) {
	s := New(1)
	for i := 0; i < b.N; i++ {
		_ = s.Uint64()
	}
}

func BenchmarkFloat64(b *testing.B) {
	s := New(1)
	for i := 0; i < b.N; i++ {
		_ = s.Float64()
	}
}

func BenchmarkExp(b *testing.B) {
	s := New(1)
	for i := 0; i < b.N; i++ {
		_ = s.Exp(180)
	}
}

func TestSubstreamDeterministic(t *testing.T) {
	if got, want := Substream(42, 1, 2), Substream(42, 1, 2); got != want {
		t.Fatalf("Substream not deterministic: %d != %d", got, want)
	}
}

func TestSubstreamPositionSensitive(t *testing.T) {
	if Substream(1, 2, 3) == Substream(1, 3, 2) {
		t.Error("swapping coordinates did not change the substream seed")
	}
	if Substream(1, 0, 1) == Substream(1, 1, 0) {
		t.Error("zero coordinates collide across positions")
	}
	if Substream(1, 5) == Substream(1, 5, 0) {
		t.Error("appending a zero coordinate did not change the seed")
	}
}

func TestSubstreamNoCollisionsOnGrid(t *testing.T) {
	// The experiment runner derives one seed per (load, replication) cell;
	// a dense coordinate grid must not collide.
	seen := make(map[uint64]bool)
	for base := uint64(0); base < 4; base++ {
		for a := uint64(0); a < 64; a++ {
			for b := uint64(0); b < 64; b++ {
				s := Substream(base, a, b)
				if seen[s] {
					t.Fatalf("collision at base=%d a=%d b=%d", base, a, b)
				}
				seen[s] = true
			}
		}
	}
}

func TestSubstreamDecorrelated(t *testing.T) {
	// Streams from adjacent coordinates should look independent: identical
	// 64-bit draws would indicate structural correlation.
	a := New(Substream(9, 0, 0))
	b := New(Substream(9, 0, 1))
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			t.Fatalf("draw %d identical across adjacent substreams", i)
		}
	}
}
