package bsd

import (
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"facsp/internal/adapt"
	"facsp/internal/core"
	"facsp/internal/wire"
)

// startServer launches a daemon on a loopback listener and returns its
// address plus a shutdown func.
func startServer(t *testing.T) (addr string, ctrl *core.FACSP, shutdown func()) {
	t.Helper()
	c, err := core.NewFACSP(core.DefaultPConfig())
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(c)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = srv.Serve(ln)
	}()
	return ln.Addr().String(), c, func() {
		_ = srv.Close()
		select {
		case <-done:
		case <-time.After(5 * time.Second):
			t.Error("server did not shut down")
		}
	}
}

func TestNewServerNilController(t *testing.T) {
	if _, err := NewServer(nil); err == nil {
		t.Error("nil controller accepted")
	}
}

func TestAdmitReleaseStatus(t *testing.T) {
	addr, ctrl, shutdown := startServer(t)
	defer shutdown()

	cl, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	st, err := cl.Status()
	if err != nil {
		t.Fatal(err)
	}
	if !st.OK || st.Capacity != 40 || st.Occupancy != 0 || st.Scheme != "FACS-P" {
		t.Fatalf("status = %+v", st)
	}

	resp, err := cl.Admit(1, "voice", 80, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	if !resp.OK || !resp.Accept {
		t.Fatalf("admit = %+v", resp)
	}
	if resp.Occupancy != 5 {
		t.Errorf("occupancy after admit = %v, want 5", resp.Occupancy)
	}

	rel, err := cl.Release(1, "voice")
	if err != nil {
		t.Fatal(err)
	}
	if !rel.OK || rel.Occupancy != 0 {
		t.Fatalf("release = %+v", rel)
	}
	if got := ctrl.Occupancy(); got != 0 {
		t.Errorf("controller occupancy = %v", got)
	}
}

func TestDoubleAdmitSameID(t *testing.T) {
	addr, _, shutdown := startServer(t)
	defer shutdown()
	cl, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	if _, err := cl.Admit(7, "text", 50, 0, false); err != nil {
		t.Fatal(err)
	}
	resp, err := cl.Admit(7, "text", 50, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	if resp.OK {
		t.Errorf("duplicate admit accepted: %+v", resp)
	}
	if !strings.Contains(resp.Err, "already admitted") {
		t.Errorf("err = %q", resp.Err)
	}
}

func TestSameClientIDAcrossSessions(t *testing.T) {
	// Client-chosen IDs are session-scoped: two sessions reusing the same
	// ID must not collide even on schemes that key state on the ID
	// (internal/adapt) — the daemon remaps to server-unique IDs.
	ctrl, err := adapt.New(adapt.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(ctrl)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = srv.Serve(ln) }()
	defer srv.Close()

	a, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	if resp, err := a.Admit(1, "voice", 50, 0, false); err != nil || !resp.OK || !resp.Accept {
		t.Fatalf("session A admit = %+v, %v", resp, err)
	}
	if resp, err := b.Admit(1, "voice", 50, 0, false); err != nil || !resp.OK || !resp.Accept {
		t.Fatalf("session B admit with same client ID = %+v, %v", resp, err)
	}
	if resp, err := a.Release(1, "voice"); err != nil || !resp.OK || resp.Occupancy != 5 {
		t.Fatalf("session A release = %+v, %v", resp, err)
	}
	if resp, err := b.Release(1, "voice"); err != nil || !resp.OK || resp.Occupancy != 0 {
		t.Fatalf("session B release = %+v, %v", resp, err)
	}
}

func TestReleaseUnknownID(t *testing.T) {
	addr, _, shutdown := startServer(t)
	defer shutdown()
	cl, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	resp, err := cl.Release(99, "voice")
	if err != nil {
		t.Fatal(err)
	}
	if resp.OK {
		t.Errorf("release of unknown id accepted: %+v", resp)
	}
}

func TestDisconnectReleasesBandwidth(t *testing.T) {
	addr, ctrl, shutdown := startServer(t)
	defer shutdown()

	cl, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Admit(1, "video", 80, 0, false); err != nil {
		t.Fatal(err)
	}
	if got := ctrl.Occupancy(); got != 10 {
		t.Fatalf("occupancy = %v, want 10", got)
	}
	// Simulate a client crash: the daemon must reclaim the 10 BU.
	if err := cl.Close(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for ctrl.Occupancy() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("bandwidth not reclaimed after disconnect; occupancy = %v", ctrl.Occupancy())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestMalformedLineAnswersError(t *testing.T) {
	addr, _, shutdown := startServer(t)
	defer shutdown()

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte("this is not json\n")); err != nil {
		t.Fatal(err)
	}
	var resp wire.Response
	if err := wire.NewDecoder(conn).Decode(&resp); err != nil {
		t.Fatalf("no error response: %v", err)
	}
	if resp.OK {
		t.Errorf("malformed line produced OK response: %+v", resp)
	}
}

func TestWrongVersionRejected(t *testing.T) {
	addr, _, shutdown := startServer(t)
	defer shutdown()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	enc := wire.NewEncoder(conn)
	if err := enc.Encode(wire.Request{V: 42, Op: wire.OpStatus}); err != nil {
		t.Fatal(err)
	}
	var resp wire.Response
	if err := wire.NewDecoder(conn).Decode(&resp); err != nil {
		t.Fatal(err)
	}
	if resp.OK || !strings.Contains(resp.Err, "version") {
		t.Errorf("response = %+v", resp)
	}
}

func TestConcurrentClients(t *testing.T) {
	addr, ctrl, shutdown := startServer(t)
	defer shutdown()

	const clients = 8
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			cl, err := Dial(addr)
			if err != nil {
				t.Errorf("dial: %v", err)
				return
			}
			defer cl.Close()
			for j := 0; j < 20; j++ {
				id := uint64(worker*1000 + j)
				resp, err := cl.Admit(id, "text", 60, 0, false)
				if err != nil {
					t.Errorf("admit: %v", err)
					return
				}
				if resp.OK && resp.Accept {
					if _, err := cl.Release(id, "text"); err != nil {
						t.Errorf("release: %v", err)
						return
					}
				}
			}
		}(i)
	}
	wg.Wait()
	if got := ctrl.Occupancy(); got != 0 {
		t.Errorf("occupancy after balanced load = %v", got)
	}
}

func TestServeAfterClose(t *testing.T) {
	c, err := core.NewFACSP(core.DefaultPConfig())
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(c)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	if err := srv.Serve(ln); err == nil {
		t.Error("Serve after Close succeeded")
	}
}
