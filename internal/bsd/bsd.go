// Package bsd implements the base-station admission daemon behind
// cmd/facs-server: a TCP server that answers wire-protocol admission
// queries against a single cac.Controller, plus the matching client.
//
// The daemon is deliberately defensive, the way a long-lived network
// element has to be: per-connection state is tracked so that a client that
// disconnects (crashes, times out, is partitioned away) automatically
// releases every bandwidth unit it was granted, malformed input yields an
// error response rather than a dropped session, and line length is bounded.
package bsd

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"

	"facsp/internal/cac"
	"facsp/internal/wire"
)

// Server serves admission queries for one base station.
type Server struct {
	ctrl cac.Controller

	// nextID remaps client-chosen connection IDs (which are only unique
	// within a session) to server-unique cac.Request IDs, so schemes that
	// key state on the ID (internal/adapt) cannot suffer cross-session
	// collisions. Non-adaptive schemes ignore IDs entirely.
	nextID atomic.Uint64

	mu     sync.Mutex
	ln     net.Listener
	conns  map[net.Conn]bool
	closed bool
}

// NewServer builds a daemon around a controller. The controller must be
// safe for concurrent use (all controllers in this repository are).
func NewServer(ctrl cac.Controller) (*Server, error) {
	if ctrl == nil {
		return nil, fmt.Errorf("bsd: nil controller")
	}
	return &Server{
		ctrl:  ctrl,
		conns: make(map[net.Conn]bool),
	}, nil
}

// Serve accepts connections on ln until Close is called. It always returns
// a non-nil error; after Close the error is net.ErrClosed.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return net.ErrClosed
	}
	s.ln = ln
	s.mu.Unlock()

	var wg sync.WaitGroup
	defer wg.Wait()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return err
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			_ = conn.Close()
			return net.ErrClosed
		}
		s.conns[conn] = true
		s.mu.Unlock()

		wg.Add(1)
		go func() {
			defer wg.Done()
			s.handle(conn)
		}()
	}
}

// Close stops accepting and closes every live session (releasing their
// admitted bandwidth).
func (s *Server) Close() error {
	s.mu.Lock()
	s.closed = true
	ln := s.ln
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()

	var err error
	if ln != nil {
		err = ln.Close()
	}
	for _, c := range conns {
		_ = c.Close()
	}
	return err
}

// handle runs one client session.
func (s *Server) handle(conn net.Conn) {
	// admitted tracks this session's live grants so a vanished client
	// cannot leak bandwidth.
	admitted := make(map[uint64]cac.Request)
	defer func() {
		for _, req := range admitted {
			_ = s.ctrl.Release(req)
		}
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		_ = conn.Close()
	}()

	dec := wire.NewDecoder(conn)
	enc := wire.NewEncoder(conn)
	for {
		var req wire.Request
		if err := dec.Decode(&req); err != nil {
			if !errors.Is(err, io.EOF) {
				// Malformed line: answer once, then drop the session —
				// framing is gone.
				_ = enc.Encode(s.errResponse(err))
			}
			return
		}
		if err := enc.Encode(s.dispatch(req, admitted)); err != nil {
			return
		}
	}
}

func (s *Server) errResponse(err error) wire.Response {
	return wire.Response{
		V:         wire.Version,
		OK:        false,
		Err:       err.Error(),
		Occupancy: s.ctrl.Occupancy(),
		Capacity:  s.ctrl.Capacity(),
		Scheme:    cac.Name(s.ctrl),
	}
}

// dispatch executes one request against the controller.
func (s *Server) dispatch(req wire.Request, admitted map[uint64]cac.Request) wire.Response {
	if err := req.Validate(); err != nil {
		return s.errResponse(err)
	}
	resp := wire.Response{
		V:        wire.Version,
		OK:       true,
		Capacity: s.ctrl.Capacity(),
		Scheme:   cac.Name(s.ctrl),
	}
	switch req.Op {
	case wire.OpStatus:
		// Nothing to do beyond the shared fields.

	case wire.OpAdmit:
		if _, dup := admitted[req.ID]; dup {
			return s.errResponse(fmt.Errorf("bsd: connection %d already admitted on this session", req.ID))
		}
		creq, err := req.CACRequest()
		if err != nil {
			return s.errResponse(err)
		}
		creq.ID = s.nextID.Add(1) // client IDs are session-scoped; see nextID
		d := s.ctrl.Admit(creq)
		resp.Accept = d.Accept
		resp.Score = d.Score
		resp.Outcome = d.Outcome
		resp.Allocated = d.Allocated
		if d.Accept {
			admitted[req.ID] = creq
		}

	case wire.OpRelease:
		creq, ok := admitted[req.ID]
		if !ok {
			return s.errResponse(fmt.Errorf("bsd: connection %d not admitted on this session", req.ID))
		}
		if err := s.ctrl.Release(creq); err != nil {
			return s.errResponse(err)
		}
		delete(admitted, req.ID)
	}
	resp.Occupancy = s.ctrl.Occupancy()
	return resp
}

// Client is a wire-protocol client bound to one TCP session.
type Client struct {
	conn net.Conn
	enc  *wire.Encoder
	dec  *wire.Decoder
	mu   sync.Mutex
}

// Dial connects to a daemon.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("bsd: dial %s: %w", addr, err)
	}
	return &Client{conn: conn, enc: wire.NewEncoder(conn), dec: wire.NewDecoder(conn)}, nil
}

// Close terminates the session; the server releases any bandwidth still
// held by it.
func (c *Client) Close() error { return c.conn.Close() }

// roundTrip sends one request and reads one response.
func (c *Client) roundTrip(req wire.Request) (wire.Response, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.enc.Encode(req); err != nil {
		return wire.Response{}, err
	}
	var resp wire.Response
	if err := c.dec.Decode(&resp); err != nil {
		return wire.Response{}, err
	}
	return resp, nil
}

// Admit asks the daemon to admit connection id with the given parameters.
func (c *Client) Admit(id uint64, class string, speedKmh, angleDeg float64, handoff bool) (wire.Response, error) {
	return c.roundTrip(wire.Request{
		V: wire.Version, Op: wire.OpAdmit,
		ID: id, Class: class, SpeedKmh: speedKmh, AngleDeg: angleDeg, Handoff: handoff,
	})
}

// Release returns connection id's bandwidth.
func (c *Client) Release(id uint64, class string) (wire.Response, error) {
	return c.roundTrip(wire.Request{V: wire.Version, Op: wire.OpRelease, ID: id, Class: class})
}

// Status reports the cell's occupancy and capacity.
func (c *Client) Status() (wire.Response, error) {
	return c.roundTrip(wire.Request{V: wire.Version, Op: wire.OpStatus})
}
