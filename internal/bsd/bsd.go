// Package bsd implements the base-station admission daemon behind
// cmd/facs-server: a TCP server that answers wire-protocol admission
// queries against a bank of per-cell admission controllers, plus the
// matching client.
//
// The daemon is production-shaped in two ways. First, admission state is
// sharded per cell: every cell has its own cac.Controller and its own
// worker goroutine, and a request addresses a cell with the wire
// protocol's "cell" field. All mutations of a cell's controller flow
// through its worker, so each response reports the occupancy produced by
// its own operation — atomically, not a racy read-after. Second, load is
// bounded: each cell worker consumes from a bounded queue, and a request
// arriving at a full queue is shed immediately with an explicit
// "overloaded" error response (wire.CodeOverloaded) instead of growing
// memory without limit.
//
// The daemon is also deliberately defensive, the way a long-lived network
// element has to be: per-session state is tracked so that a client that
// disconnects (crashes, times out, is partitioned away) automatically
// releases every bandwidth unit it was granted, malformed input yields an
// error response rather than a dropped session, line length is bounded,
// and Close drains cleanly — live sessions are torn down, their grants
// released, and Serve returns only when every cell worker has stopped.
package bsd

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"facsp/internal/cac"
	"facsp/internal/hotness"
	"facsp/internal/metrics"
	"facsp/internal/traffic"
	"facsp/internal/wire"
)

// DefaultQueueDepth is the per-cell bounded queue depth used when
// Config.QueueDepth is unset: deep enough to ride out bursts of a few
// hundred concurrent sessions, shallow enough that a stalled controller
// sheds instead of buffering unbounded work.
const DefaultQueueDepth = 256

// DefaultHotnessHalfLife is the hotness tracker's half-life when
// Config.HotnessHalfLife is unset: long enough that a flash crowd stays
// visible across scrape intervals, short enough that the ranking follows
// the load within a minute.
const DefaultHotnessHalfLife = 30 * time.Second

// DefaultTierInterval is the decision-surface tier sampling period when
// Config.TierInterval is unset: frequent enough that a flash crowd
// promotes within a couple of seconds, and far off the per-Admit path.
const DefaultTierInterval = time.Second

// TierSampler is the hotness-adaptive tiered decision-surface selector of
// the daemon's fuzzy controllers, satisfied by core.Tiered. The daemon
// feeds it every cell's hotness rate at Config.TierInterval (never on the
// admit path — each cell worker's controller reads its tier off its own
// provider row) and exposes the tier of every cell plus the tier-occupancy
// histogram on /metrics. Declared here as an interface so bsd does not
// depend on internal/core.
type TierSampler interface {
	// Sample feeds one cell's current hotness rate; promotion, demotion
	// and recompilation happen asynchronously behind it.
	Sample(cell int, rate float64)
	// Tier reports the cell's currently installed tier index.
	Tier(cell int) int
	// NumTiers reports the number of rungs in the ladder.
	NumTiers() int
	// NumCells reports how many cells the selector covers.
	NumCells() int
}

// Config parameterises a daemon.
type Config struct {
	// Cells holds one admission controller per cell; wire requests
	// address a cell by its index here (the "cell" field, default 0).
	// Every controller must be safe for concurrent use (all controllers
	// in this repository are). Must be non-empty.
	Cells []cac.Controller
	// QueueDepth bounds every cell's pending-request queue. A request
	// arriving at a full queue is shed with a wire.CodeOverloaded error
	// response. Zero or negative means DefaultQueueDepth.
	QueueDepth int
	// HotnessHalfLife configures the per-cell admission-demand tracker
	// (internal/hotness): the time in which an idle cell's hotness halves.
	// Zero or negative means DefaultHotnessHalfLife.
	HotnessHalfLife time.Duration
	// Tiers, when non-nil, is the tiered decision-surface selector the
	// daemon drives off the hotness tracker: a sampler goroutine feeds it
	// every cell's rate at TierInterval. The controllers in Cells must
	// already hold the selector's per-cell providers (core.Tiered.Cell) —
	// the daemon only samples and exposes, it does not rewire controllers.
	Tiers TierSampler
	// TierInterval is the tier sampling period. Zero or negative means
	// DefaultTierInterval.
	TierInterval time.Duration
}

// task is one operation routed to a cell worker. reply is buffered (cap
// 1) so a worker never blocks on a vanished submitter.
type task struct {
	op    wire.Op
	creq  cac.Request
	class traffic.Class // admit only: the counter column of the outcome
	reply chan wire.Response
}

// cell is one shard of admission state: a controller plus the worker
// queue that serialises every mutation of it.
type cell struct {
	index int
	ctrl  cac.Controller
	tasks chan task
	// reg is the daemon's telemetry registry; the worker is the sole
	// writer of this cell's counter row, so every bump is one atomic add
	// with no lock and no allocation.
	reg *metrics.Registry
	// degraded reads the controller's current degradation depth (number
	// of connections served below request); nil for non-adaptive schemes.
	degraded func() int
}

// grantKey identifies one live grant of a session: client-chosen
// connection IDs are scoped per (session, cell).
type grantKey struct {
	cell int
	id   uint64
}

// Server serves admission queries for a bank of base-station cells.
type Server struct {
	cells []*cell

	// metrics and hot are the daemon's observability plane: one dense
	// counter/gauge row and one decaying demand counter per cell, served
	// over HTTP by MetricsHandler.
	metrics *metrics.Registry
	hot     *hotness.Tracker
	start   time.Time

	// tiers, when non-nil, is the tiered decision-surface selector fed by
	// the sampler goroutine; tierQuit stops the sampler.
	tiers    TierSampler
	tierQuit chan struct{}

	// nextID remaps client-chosen connection IDs (which are only unique
	// within a session) to server-unique cac.Request IDs, so schemes that
	// key state on the ID (internal/adapt) cannot suffer cross-session
	// collisions. Non-adaptive schemes ignore IDs entirely.
	nextID atomic.Uint64

	// shed counts requests dropped because a cell queue was full.
	shed atomic.Uint64

	workers  sync.WaitGroup
	stopOnce sync.Once

	mu      sync.Mutex
	ln      net.Listener
	conns   map[net.Conn]bool
	serving bool
	closed  bool
}

// New builds a daemon from a config, starting one worker per cell.
func New(cfg Config) (*Server, error) {
	if len(cfg.Cells) == 0 {
		return nil, fmt.Errorf("bsd: no cells configured")
	}
	depth := cfg.QueueDepth
	if depth <= 0 {
		depth = DefaultQueueDepth
	}
	halfLife := cfg.HotnessHalfLife
	if halfLife <= 0 {
		halfLife = DefaultHotnessHalfLife
	}
	reg, err := metrics.New(len(cfg.Cells))
	if err != nil {
		return nil, fmt.Errorf("bsd: %w", err)
	}
	hot, err := hotness.New(len(cfg.Cells), halfLife.Seconds())
	if err != nil {
		return nil, fmt.Errorf("bsd: %w", err)
	}
	s := &Server{
		conns:   make(map[net.Conn]bool),
		metrics: reg,
		hot:     hot,
		start:   time.Now(),
	}
	for i, ctrl := range cfg.Cells {
		if ctrl == nil {
			return nil, fmt.Errorf("bsd: nil controller for cell %d", i)
		}
		c := &cell{index: i, ctrl: ctrl, tasks: make(chan task, depth), reg: reg}
		if d, ok := ctrl.(interface{ Degraded() int }); ok {
			c.degraded = d.Degraded
		}
		reg.SetGauge(i, metrics.CapacityBU, ctrl.Capacity())
		reg.SetGauge(i, metrics.OccupancyBU, ctrl.Occupancy())
		s.cells = append(s.cells, c)
	}
	for _, c := range s.cells {
		s.workers.Add(1)
		go func(c *cell) {
			defer s.workers.Done()
			c.run()
		}(c)
	}
	if cfg.Tiers != nil {
		if n := cfg.Tiers.NumCells(); n < len(cfg.Cells) {
			s.stopWorkers()
			return nil, fmt.Errorf("bsd: tier selector covers %d cells, daemon serves %d", n, len(cfg.Cells))
		}
		interval := cfg.TierInterval
		if interval <= 0 {
			interval = DefaultTierInterval
		}
		s.tiers = cfg.Tiers
		s.tierQuit = make(chan struct{})
		s.workers.Add(1)
		go s.tierSampler(interval)
	}
	return s, nil
}

// tierSampler is the daemon's tier-promotion clock: at every interval it
// reads the whole hotness rate vector once and feeds it to the selector.
// Admits never touch it — each cell worker's controller reads its tier off
// its own provider row.
func (s *Server) tierSampler(interval time.Duration) {
	defer s.workers.Done()
	tick := time.NewTicker(interval)
	defer tick.Stop()
	var buf []float64
	for {
		select {
		case <-s.tierQuit:
			return
		case <-tick.C:
			buf = s.hot.Rates(s.Uptime(), buf)
			for i := range s.cells {
				s.tiers.Sample(i, buf[i])
			}
		}
	}
}

// NewServer builds a single-cell daemon around one controller.
func NewServer(ctrl cac.Controller) (*Server, error) {
	if ctrl == nil {
		return nil, fmt.Errorf("bsd: nil controller")
	}
	return New(Config{Cells: []cac.Controller{ctrl}})
}

// Cells returns the number of cells the daemon serves.
func (s *Server) Cells() int { return len(s.cells) }

// Shed returns the number of requests shed so far because a cell's
// bounded queue was full.
func (s *Server) Shed() uint64 { return s.shed.Load() }

// Metrics returns the daemon's per-cell telemetry registry. It is live:
// counters keep moving while the daemon serves.
func (s *Server) Metrics() *metrics.Registry { return s.metrics }

// Hotness returns the daemon's per-cell admission-demand tracker. Its
// time axis is seconds since the daemon was built (see Uptime).
func (s *Server) Hotness() *hotness.Tracker { return s.hot }

// Uptime returns the seconds since the daemon was built — the "now" of
// the hotness tracker's time axis.
func (s *Server) Uptime() float64 { return time.Since(s.start).Seconds() }

// Serve accepts connections on ln until Close is called. It always
// returns a non-nil error; after Close the error is net.ErrClosed. When
// it returns via Close, the daemon has fully drained: every session is
// torn down, every grant released, and every cell worker stopped.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return net.ErrClosed
	}
	s.ln = ln
	s.serving = true
	s.mu.Unlock()

	var wg sync.WaitGroup
	defer func() {
		// Sessions first — their disconnect cleanup routes releases
		// through the cell workers — then the workers themselves.
		wg.Wait()
		s.stopWorkers()
	}()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return err
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			_ = conn.Close()
			return net.ErrClosed
		}
		s.conns[conn] = true
		s.mu.Unlock()

		wg.Add(1)
		go func() {
			defer wg.Done()
			s.handle(conn)
		}()
	}
}

// Close stops accepting and closes every live session (releasing their
// admitted bandwidth). Serve returns once the drain completes.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closed = true
	ln := s.ln
	serving := s.serving
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()

	var err error
	if ln != nil {
		err = ln.Close()
	}
	for _, c := range conns {
		_ = c.Close()
	}
	if !serving {
		// No accept loop will run the drain; stop the idle workers here.
		s.stopWorkers()
	}
	return err
}

// stopWorkers closes every cell queue (and the tier sampler) and waits
// for the workers to finish. It must only run when no session can submit
// again.
func (s *Server) stopWorkers() {
	s.stopOnce.Do(func() {
		for _, c := range s.cells {
			close(c.tasks)
		}
		if s.tierQuit != nil {
			close(s.tierQuit)
		}
		s.workers.Wait()
	})
}

// run is a cell worker: the sole mutator of its controller. Because every
// admit and release flows through here in sequence, the occupancy each
// response carries is exactly the occupancy its own operation produced.
func (c *cell) run() {
	for t := range c.tasks {
		resp := wire.Response{
			V:        wire.Version,
			OK:       true,
			Cell:     c.index,
			Capacity: c.ctrl.Capacity(),
			Scheme:   cac.Name(c.ctrl),
		}
		switch t.op {
		case wire.OpStatus:
			resp.Occupancy = c.ctrl.Occupancy()

		case wire.OpAdmit:
			d := c.ctrl.Admit(t.creq)
			resp.Accept = d.Accept
			resp.Score = d.Score
			resp.Outcome = d.Outcome
			resp.Allocated = d.Allocated
			// The decision reports the occupancy it produced, observed
			// under the controller's own lock (cac.Decision.Occupancy).
			resp.Occupancy = d.Occupancy
			// The worker owns this cell's counter row: one atomic add,
			// no lock, no allocation. A denied handoff is a dropped
			// on-going connection; a denied new call is a block.
			switch {
			case d.Accept:
				c.reg.Inc(c.index, metrics.Admits(t.class))
			case t.creq.Handoff:
				c.reg.Inc(c.index, metrics.Drops(t.class))
			default:
				c.reg.Inc(c.index, metrics.Blocks(t.class))
			}

		case wire.OpRelease:
			if err := c.ctrl.Release(t.creq); err != nil {
				resp.OK = false
				resp.Err = err.Error()
			}
			// Exact even without a decision struct: this worker is the
			// sole mutator, so nothing interleaves between the release
			// and this read.
			resp.Occupancy = c.ctrl.Occupancy()
		}
		c.reg.SetGauge(c.index, metrics.OccupancyBU, resp.Occupancy)
		if c.degraded != nil {
			c.reg.SetGauge(c.index, metrics.DegradedConns, float64(c.degraded()))
		}
		t.reply <- resp
	}
}

// overloaded is the shed response for a full cell queue.
func (c *cell) overloaded() wire.Response {
	return wire.Response{
		V:         wire.Version,
		OK:        false,
		Code:      wire.CodeOverloaded,
		Err:       fmt.Sprintf("bsd: cell %d overloaded: request queue full", c.index),
		Cell:      c.index,
		Occupancy: c.ctrl.Occupancy(),
		Capacity:  c.ctrl.Capacity(),
		Scheme:    cac.Name(c.ctrl),
	}
}

// handle runs one client session.
func (s *Server) handle(conn net.Conn) {
	// grants tracks this session's live grants so a vanished client
	// cannot leak bandwidth.
	grants := make(map[grantKey]cac.Request)
	defer func() {
		// Route the cleanup releases through the cell workers too: they
		// must not race the responses of live sessions. The blocking
		// submit is safe — workers stop only after every session exits.
		for key, creq := range grants {
			t := task{op: wire.OpRelease, creq: creq, reply: make(chan wire.Response, 1)}
			s.cells[key.cell].tasks <- t
			<-t.reply
		}
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		_ = conn.Close()
	}()

	dec := wire.NewDecoder(conn)
	enc := wire.NewEncoder(conn)
	for {
		var req wire.Request
		if err := dec.Decode(&req); err != nil {
			if !errors.Is(err, io.EOF) {
				// Malformed line: answer once, then drop the session —
				// framing is gone.
				_ = enc.Encode(s.errResponse(0, err))
			}
			return
		}
		if err := enc.Encode(s.process(req, grants)); err != nil {
			return
		}
	}
}

// errResponse builds an error reply, carrying the addressed cell's
// snapshot state when the index resolves. Error replies are advisory —
// they do not claim the atomic occupancy of a worker-serialised op.
func (s *Server) errResponse(cellIdx int, err error) wire.Response {
	resp := wire.Response{V: wire.Version, OK: false, Err: err.Error(), Cell: cellIdx}
	if cellIdx >= 0 && cellIdx < len(s.cells) {
		c := s.cells[cellIdx]
		resp.Occupancy = c.ctrl.Occupancy()
		resp.Capacity = c.ctrl.Capacity()
		resp.Scheme = cac.Name(c.ctrl)
	}
	return resp
}

// process validates one request, routes it to its cell worker, and
// applies the outcome to the session's grant table. Session-level errors
// (bad version, unknown cell, duplicate admit, unknown release) are
// answered without touching the cell queue.
func (s *Server) process(req wire.Request, grants map[grantKey]cac.Request) wire.Response {
	if err := req.Validate(); err != nil {
		return s.errResponse(req.Cell, err)
	}
	if req.Cell >= len(s.cells) {
		return s.errResponse(req.Cell,
			fmt.Errorf("bsd: unknown cell %d (daemon serves cells 0-%d)", req.Cell, len(s.cells)-1))
	}
	c := s.cells[req.Cell]
	key := grantKey{cell: req.Cell, id: req.ID}
	t := task{op: req.Op, reply: make(chan wire.Response, 1)}

	switch req.Op {
	case wire.OpAdmit:
		if _, dup := grants[key]; dup {
			return s.errResponse(req.Cell, fmt.Errorf("bsd: connection %d already admitted on this session", req.ID))
		}
		creq, err := req.CACRequest()
		if err != nil {
			return s.errResponse(req.Cell, err)
		}
		creq.ID = s.nextID.Add(1) // client IDs are session-scoped; see nextID
		t.creq = creq
		t.class, _ = wire.ParseClass(req.Class) // validated above
		// Admission demand — including requests about to be shed — feeds
		// the cell's decaying hotness signal.
		s.hot.Record(req.Cell, s.Uptime())
	case wire.OpRelease:
		creq, ok := grants[key]
		if !ok {
			return s.errResponse(req.Cell, fmt.Errorf("bsd: connection %d not admitted on this session", req.ID))
		}
		t.creq = creq
	}

	// Bounded admission to the cell queue: shed rather than buffer
	// without limit.
	select {
	case c.tasks <- t:
	default:
		s.shed.Add(1)
		s.metrics.Inc(req.Cell, metrics.CtrShed)
		return c.overloaded()
	}
	resp := <-t.reply
	if resp.OK {
		switch {
		case req.Op == wire.OpAdmit && resp.Accept:
			grants[key] = t.creq
		case req.Op == wire.OpRelease:
			delete(grants, key)
		}
	}
	return resp
}

// Client is a wire-protocol client bound to one TCP session.
type Client struct {
	conn net.Conn
	enc  *wire.Encoder
	dec  *wire.Decoder
	mu   sync.Mutex
}

// Dial connects to a daemon.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("bsd: dial %s: %w", addr, err)
	}
	return &Client{conn: conn, enc: wire.NewEncoder(conn), dec: wire.NewDecoder(conn)}, nil
}

// Close terminates the session; the server releases any bandwidth still
// held by it.
func (c *Client) Close() error { return c.conn.Close() }

// roundTrip sends one request and reads one response.
func (c *Client) roundTrip(req wire.Request) (wire.Response, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.enc.Encode(req); err != nil {
		return wire.Response{}, err
	}
	var resp wire.Response
	if err := c.dec.Decode(&resp); err != nil {
		return wire.Response{}, err
	}
	return resp, nil
}

// AdmitOptions carries the optional parameters of an admission request —
// everything the wire protocol can express beyond the id and class.
type AdmitOptions struct {
	// Cell addresses the target cell of a multi-cell daemon (default 0).
	Cell int
	// SpeedKmh and AngleDeg feed the fuzzy schemes' mobility inputs.
	SpeedKmh float64
	AngleDeg float64
	// Handoff marks an on-going call entering from a neighbour cell.
	Handoff bool
	// Priority is the requesting-connection priority level.
	Priority int
	// MinBU is the lowest bandwidth the connection tolerates when served
	// by an adaptive scheme (a degraded admission); 0 leaves the floor to
	// the scheme's per-class ladder.
	MinBU float64
}

// AdmitWith asks the daemon to admit connection id of the given class
// with the full option set of the wire protocol.
func (c *Client) AdmitWith(id uint64, class string, o AdmitOptions) (wire.Response, error) {
	return c.roundTrip(wire.Request{
		V: wire.Version, Op: wire.OpAdmit,
		ID: id, Cell: o.Cell, Class: class,
		SpeedKmh: o.SpeedKmh, AngleDeg: o.AngleDeg,
		Handoff: o.Handoff, Priority: o.Priority, MinBU: o.MinBU,
	})
}

// Admit asks the daemon to admit connection id on cell 0 with the given
// mobility parameters. Use AdmitWith for priority, min-bandwidth or
// multi-cell admissions.
func (c *Client) Admit(id uint64, class string, speedKmh, angleDeg float64, handoff bool) (wire.Response, error) {
	return c.AdmitWith(id, class, AdmitOptions{SpeedKmh: speedKmh, AngleDeg: angleDeg, Handoff: handoff})
}

// ReleaseIn returns connection id's bandwidth on the given cell.
func (c *Client) ReleaseIn(cellIdx int, id uint64, class string) (wire.Response, error) {
	return c.roundTrip(wire.Request{V: wire.Version, Op: wire.OpRelease, ID: id, Cell: cellIdx, Class: class})
}

// Release returns connection id's bandwidth on cell 0.
func (c *Client) Release(id uint64, class string) (wire.Response, error) {
	return c.ReleaseIn(0, id, class)
}

// StatusIn reports the given cell's occupancy and capacity.
func (c *Client) StatusIn(cellIdx int) (wire.Response, error) {
	return c.roundTrip(wire.Request{V: wire.Version, Op: wire.OpStatus, Cell: cellIdx})
}

// Status reports cell 0's occupancy and capacity.
func (c *Client) Status() (wire.Response, error) { return c.StatusIn(0) }
