package bsd

import (
	"net"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"facsp/internal/cac"
	"facsp/internal/core"
)

// startTieredServer launches a 2-cell FACS-P daemon wired to a live
// core.Tiered selector with a fast sampling interval and a ladder whose
// promotion threshold a short admission burst can cross.
func startTieredServer(t *testing.T) (addr string, srv *Server, tiered *core.Tiered, shutdown func()) {
	t.Helper()
	tc := core.TierConfig{
		Tiers:      []core.SurfaceTier{{Resolution: 9, MinRate: 0}, {Resolution: 17, MinRate: 0.5}},
		Hysteresis: 0.75,
		HalfLife:   0.2,
		Interval:   0.005,
	}
	tiered, err := core.NewTiered(2, tc)
	if err != nil {
		t.Fatal(err)
	}
	ctrls := make([]cac.Controller, 2)
	for i := range ctrls {
		pc := core.DefaultPConfig()
		pc.Surfaces = tiered.Cell(i)
		if ctrls[i], err = core.NewFACSP(pc); err != nil {
			t.Fatal(err)
		}
	}
	srv, err = New(Config{
		Cells:           ctrls,
		HotnessHalfLife: 200 * time.Millisecond,
		Tiers:           tiered,
		TierInterval:    5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = srv.Serve(ln)
	}()
	return ln.Addr().String(), srv, tiered, func() {
		_ = srv.Close()
		select {
		case <-done:
		case <-time.After(5 * time.Second):
			t.Error("server did not shut down")
		}
		tiered.Close()
	}
}

// TestTierSamplerPromotesHotCell is the live end of the tiering loop: wire
// admissions heat one cell's hotness tracker, the interval sampler feeds
// the selector, and the cell is promoted while the idle cell stays cold.
func TestTierSamplerPromotesHotCell(t *testing.T) {
	addr, _, tiered, shutdown := startTieredServer(t)
	defer shutdown()
	cl, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	// Hammer cell 0 until the sampler promotes it (rate estimate needs a
	// few half-lives to converge, so keep admitting while we poll).
	deadline := time.Now().Add(10 * time.Second)
	id := uint64(1)
	for tiered.Tier(0) != 1 {
		if time.Now().After(deadline) {
			t.Fatal("hot cell was never promoted")
		}
		if _, err := cl.AdmitWith(id, "voice", AdmitOptions{}); err != nil {
			t.Fatal(err)
		}
		if _, err := cl.Release(id, "voice"); err != nil {
			t.Fatal(err)
		}
		id++
	}
	if got := tiered.Tier(1); got != 0 {
		t.Errorf("idle cell promoted to tier %d", got)
	}
}

// TestMetricsExposesTierFamilies scrapes /metrics from a tiered daemon and
// checks the tier gauge, the tier-occupancy histogram and the process-wide
// recompile counters are all rendered.
func TestMetricsExposesTierFamilies(t *testing.T) {
	_, srv, tiered, shutdown := startTieredServer(t)
	defer shutdown()

	if err := tiered.Preset(0, 1); err != nil {
		t.Fatal(err)
	}
	rec := httptest.NewRecorder()
	srv.MetricsHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	body := rec.Body.String()
	for _, want := range []string{
		"facs_surface_tier{cell=\"0\"} 1\n",
		"facs_surface_tier{cell=\"1\"} 0\n",
		"facs_surface_tier_cells{tier=\"0\"} 1\n",
		"facs_surface_tier_cells{tier=\"1\"} 1\n",
		"# TYPE facs_surface_recompiles_total counter",
		"# TYPE facs_surface_recompiles_stale_total counter",
		"# TYPE facs_surface_tier_promotions_total counter",
		"# TYPE facs_surface_tier_demotions_total counter",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// TestMetricsOmitsTierFamiliesWithoutSelector pins the untiered exposition:
// no selector, no per-cell tier series (the process-wide scalars remain —
// they are registered families either way).
func TestMetricsOmitsTierFamiliesWithoutSelector(t *testing.T) {
	_, srv, shutdown := startMultiCell(t, 2, 10)
	defer shutdown()
	rec := httptest.NewRecorder()
	srv.MetricsHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if body := rec.Body.String(); strings.Contains(body, "facs_surface_tier{") {
		t.Error("untiered daemon rendered facs_surface_tier")
	}
}

// TestNewRejectsUndersizedSampler pins the coverage validation: a sampler
// that covers fewer cells than the daemon serves is a config error, not a
// latent panic in the sampling loop.
func TestNewRejectsUndersizedSampler(t *testing.T) {
	tiered, err := core.NewTiered(1, core.DefaultTierConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer tiered.Close()
	ctrls := make([]cac.Controller, 2)
	for i := range ctrls {
		pc := core.DefaultPConfig()
		if ctrls[i], err = core.NewFACSP(pc); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := New(Config{Cells: ctrls, Tiers: tiered}); err == nil {
		t.Error("undersized tier sampler accepted")
	}
}
