package bsd

import (
	"encoding/json"
	"net/http"
	"strconv"

	"facsp/internal/metrics"
)

// MetricsHandler returns the daemon's observability endpoints:
//
//   - GET /metrics — Prometheus text exposition of every per-cell series
//     (admits/blocks/drops by class, shed, occupancy, capacity,
//     degradation depth, expdecay hotness; with tiering, each cell's
//     decision-surface tier and the tier-occupancy histogram) plus the
//     registered process-wide scalars (the decision-surface cache and
//     tiered-recompile counters).
//   - GET /hotcells — a JSON hotness ranking of the cells, hottest
//     first, each entry carrying the cell's rate and headline counters.
//     ?n=K limits the ranking to the K hottest cells.
//
// The handler reads live atomics and is safe to serve concurrently with
// admission traffic and with Close; it never blocks a cell worker.
func (s *Server) MetricsHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /metrics", s.serveMetrics)
	mux.HandleFunc("GET /hotcells", s.serveHotCells)
	return mux
}

func (s *Server) serveMetrics(w http.ResponseWriter, _ *http.Request) {
	snap := s.metrics.Snapshot(nil)
	w.Header().Set("Content-Type", metrics.PromContentType)
	if err := metrics.WriteProm(w, snap); err != nil {
		return
	}
	if err := metrics.WriteCellGauge(w, "facs_hotness",
		"Exponentially decayed admission demand in requests/second (half-life "+
			strconv.FormatFloat(s.hot.HalfLife(), 'g', -1, 64)+"s).",
		s.hot.Rates(s.Uptime(), nil)); err != nil {
		return
	}
	if s.tiers != nil {
		perCell := make([]float64, len(s.cells))
		occ := make([]float64, s.tiers.NumTiers())
		for i := range s.cells {
			t := s.tiers.Tier(i)
			perCell[i] = float64(t)
			occ[t]++
		}
		if err := metrics.WriteCellGauge(w, "facs_surface_tier",
			"Decision-surface tier currently installed for the cell (0 = coldest).",
			perCell); err != nil {
			return
		}
		if err := metrics.WriteLabeledGauge(w, "facs_surface_tier_cells",
			"Cells currently on each decision-surface tier.",
			"tier", occ); err != nil {
			return
		}
	}
	_ = metrics.WriteScalars(w)
}

// hotCell is one /hotcells ranking entry.
type hotCell struct {
	Cell      int     `json:"cell"`
	Rate      float64 `json:"rate"`
	Admits    uint64  `json:"admits"`
	Blocks    uint64  `json:"blocks"`
	Drops     uint64  `json:"drops"`
	Shed      uint64  `json:"shed"`
	Occupancy float64 `json:"occupancy_bu"`
	Capacity  float64 `json:"capacity_bu"`
}

// hotCells is the /hotcells response document.
type hotCells struct {
	// HalfLifeS is the hotness half-life in seconds.
	HalfLifeS float64 `json:"half_life_s"`
	// UptimeS is the daemon uptime the rates were evaluated at.
	UptimeS float64 `json:"uptime_s"`
	// Cells is the ranking, hottest first (ties by ascending cell index).
	Cells []hotCell `json:"cells"`
}

func (s *Server) serveHotCells(w http.ResponseWriter, r *http.Request) {
	n := 0
	if q := r.URL.Query().Get("n"); q != "" {
		v, err := strconv.Atoi(q)
		if err != nil || v < 1 {
			http.Error(w, "bsd: n must be a positive integer", http.StatusBadRequest)
			return
		}
		n = v
	}
	now := s.Uptime()
	snap := s.metrics.Snapshot(nil)
	doc := hotCells{HalfLifeS: s.hot.HalfLife(), UptimeS: now}
	for _, cr := range s.hot.Top(now, n) {
		entry := hotCell{
			Cell:      cr.Cell,
			Rate:      cr.Rate,
			Occupancy: snap.Gauge(cr.Cell, metrics.OccupancyBU),
			Capacity:  snap.Gauge(cr.Cell, metrics.CapacityBU),
			Shed:      snap.Counter(cr.Cell, metrics.CtrShed),
		}
		for c := metrics.AdmitsText; c <= metrics.AdmitsVideo; c++ {
			entry.Admits += snap.Counter(cr.Cell, c)
		}
		for c := metrics.BlocksText; c <= metrics.BlocksVideo; c++ {
			entry.Blocks += snap.Counter(cr.Cell, c)
		}
		for c := metrics.DropsText; c <= metrics.DropsVideo; c++ {
			entry.Drops += snap.Counter(cr.Cell, c)
		}
		doc.Cells = append(doc.Cells, entry)
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(doc)
}
