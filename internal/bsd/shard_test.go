package bsd

import (
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"facsp/internal/adapt"
	"facsp/internal/baseline"
	"facsp/internal/cac"
	"facsp/internal/wire"
)

// startConfigServer launches a daemon with the given config and returns
// its address, the server, and a shutdown func that also waits for
// Serve's drain to complete.
func startConfigServer(t *testing.T, cfg Config) (string, *Server, func()) {
	t.Helper()
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = srv.Serve(ln)
	}()
	return ln.Addr().String(), srv, func() {
		_ = srv.Close()
		select {
		case <-done:
		case <-time.After(5 * time.Second):
			t.Error("server did not shut down")
		}
	}
}

func sharingCells(t *testing.T, n int, capacity float64) []cac.Controller {
	t.Helper()
	out := make([]cac.Controller, n)
	for i := range out {
		c, err := baseline.NewCompleteSharing(capacity)
		if err != nil {
			t.Fatal(err)
		}
		out[i] = c
	}
	return out
}

func TestNewNoCells(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("empty config accepted")
	}
	if _, err := New(Config{Cells: []cac.Controller{nil}}); err == nil {
		t.Error("nil cell controller accepted")
	}
}

func TestMultiCellRouting(t *testing.T) {
	cells := sharingCells(t, 3, 40)
	addr, _, shutdown := startConfigServer(t, Config{Cells: cells})
	defer shutdown()

	cl, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	// The same client ID may hold one grant per cell: IDs are scoped per
	// (session, cell).
	if resp, err := cl.Admit(1, "video", 0, 0, false); err != nil || !resp.Accept {
		t.Fatalf("cell 0 admit = %+v, %v", resp, err)
	}
	resp, err := cl.AdmitWith(1, "voice", AdmitOptions{Cell: 2})
	if err != nil || !resp.Accept {
		t.Fatalf("cell 2 admit = %+v, %v", resp, err)
	}
	if resp.Cell != 2 || resp.Occupancy != 5 {
		t.Errorf("cell 2 admit response = %+v, want cell 2 occupancy 5", resp)
	}

	// Each cell's occupancy is independent; the untouched middle cell
	// stays empty.
	if st, err := cl.StatusIn(1); err != nil || !st.OK || st.Occupancy != 0 || st.Cell != 1 {
		t.Errorf("cell 1 status = %+v, %v", st, err)
	}
	if got := cells[0].Occupancy(); got != 10 {
		t.Errorf("cell 0 occupancy = %v, want 10", got)
	}
	if got := cells[2].Occupancy(); got != 5 {
		t.Errorf("cell 2 occupancy = %v, want 5", got)
	}

	// Releasing on the wrong cell is an unknown-connection error; on the
	// right cell it succeeds.
	if resp, err := cl.ReleaseIn(1, 1, "video"); err != nil || resp.OK {
		t.Errorf("release on wrong cell = %+v, %v", resp, err)
	}
	if resp, err := cl.Release(1, "video"); err != nil || !resp.OK || resp.Occupancy != 0 {
		t.Errorf("cell 0 release = %+v, %v", resp, err)
	}
}

func TestUnknownAndNegativeCellRejected(t *testing.T) {
	addr, _, shutdown := startConfigServer(t, Config{Cells: sharingCells(t, 2, 40)})
	defer shutdown()

	cl, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	resp, err := cl.StatusIn(5)
	if err != nil {
		t.Fatal(err)
	}
	if resp.OK || !strings.Contains(resp.Err, "unknown cell") {
		t.Errorf("out-of-range cell answered %+v", resp)
	}

	// A negative index fails wire validation before any routing.
	resp, err = cl.roundTrip(wire.Request{V: wire.Version, Op: wire.OpStatus, Cell: -3})
	if err != nil {
		t.Fatal(err)
	}
	if resp.OK || !strings.Contains(resp.Err, "negative cell") {
		t.Errorf("negative cell answered %+v", resp)
	}
}

// blockingCtrl parks every Admit call until gate is closed, signalling
// entry on entered — the overload fixture: while it blocks, its cell
// worker is busy and the bounded queue fills.
type blockingCtrl struct {
	entered chan struct{}
	gate    chan struct{}
}

func newBlockingCtrl() *blockingCtrl {
	return &blockingCtrl{entered: make(chan struct{}, 16), gate: make(chan struct{})}
}

func (b *blockingCtrl) Admit(cac.Request) cac.Decision {
	b.entered <- struct{}{}
	<-b.gate
	return cac.Decision{Accept: true, Score: 1, Outcome: "fits"}
}
func (b *blockingCtrl) Release(cac.Request) error { return nil }
func (b *blockingCtrl) Occupancy() float64        { return 0 }
func (b *blockingCtrl) Capacity() float64         { return 40 }

func TestShedUnderOverload(t *testing.T) {
	ctrl := newBlockingCtrl()
	addr, srv, shutdown := startConfigServer(t, Config{
		Cells:      []cac.Controller{ctrl},
		QueueDepth: 1,
	})
	defer shutdown()

	dial := func() *Client {
		cl, err := Dial(addr)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { cl.Close() })
		return cl
	}
	a, b, c := dial(), dial(), dial()

	// Session A's admit occupies the cell worker (blocked inside the
	// controller), leaving the depth-1 queue empty.
	aResp := make(chan wire.Response, 1)
	go func() {
		resp, err := a.Admit(1, "voice", 0, 0, false)
		if err != nil {
			t.Errorf("session A admit: %v", err)
		}
		aResp <- resp
	}()
	<-ctrl.entered

	// Sessions B and C race for the single queue slot: whichever arrives
	// second must be shed immediately with the overloaded code, while the
	// worker is still blocked.
	bResp := make(chan wire.Response, 1)
	go func() {
		resp, err := b.Admit(2, "voice", 0, 0, false)
		if err != nil {
			t.Errorf("session B admit: %v", err)
		}
		bResp <- resp
	}()
	time.Sleep(50 * time.Millisecond)
	cOut, err := c.Admit(3, "voice", 0, 0, false)
	if err != nil {
		t.Fatal(err)
	}

	shedResp := cOut
	if cOut.OK {
		// C won the queue slot; then B must have been the shed one.
		shedResp = <-bResp
	}
	if shedResp.OK || shedResp.Code != wire.CodeOverloaded {
		t.Fatalf("full queue answered %+v, want code %q", shedResp, wire.CodeOverloaded)
	}
	if !strings.Contains(shedResp.Err, "overloaded") {
		t.Errorf("shed err = %q", shedResp.Err)
	}
	if got := srv.Shed(); got != 1 {
		t.Errorf("Shed() = %d, want 1", got)
	}

	// Unblock the worker: the in-flight admit and the queued one both
	// complete normally — shedding dropped only the excess request.
	close(ctrl.gate)
	if resp := <-aResp; !resp.OK || !resp.Accept {
		t.Errorf("session A admit after unblock = %+v", resp)
	}
	if cOut.OK {
		if !cOut.Accept {
			t.Errorf("queued admit = %+v", cOut)
		}
	} else if resp := <-bResp; !resp.OK || !resp.Accept {
		t.Errorf("queued admit = %+v", resp)
	}
}

func TestOversizedLineAnswersError(t *testing.T) {
	addr, _, shutdown := startConfigServer(t, Config{Cells: sharingCells(t, 1, 40)})
	defer shutdown()

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	// A 128 KiB line blows the decoder's 64 KiB bound: the daemon must
	// answer one error reply, then drop the session.
	line := make([]byte, 128<<10)
	for i := range line {
		line[i] = 'x'
	}
	line[len(line)-1] = '\n'
	if _, err := conn.Write(line); err != nil {
		t.Fatal(err)
	}
	dec := wire.NewDecoder(conn)
	var resp wire.Response
	if err := dec.Decode(&resp); err != nil {
		t.Fatalf("no error response: %v", err)
	}
	if resp.OK {
		t.Errorf("oversized line produced OK response: %+v", resp)
	}
	if err := dec.Decode(&resp); err == nil {
		t.Error("session stayed open after oversized line")
	}
}

// TestOccupancyAtomicWithAdmission pins the accounting fix: every
// accepted admission reports the occupancy that includes its own grant,
// observed atomically with the decision. Under the old read-after-op
// pattern concurrent admissions could report each other's occupancy —
// with 20 concurrent 5 BU grants the reported values must be exactly
// {5, 10, ..., 100}, each seen once.
func TestOccupancyAtomicWithAdmission(t *testing.T) {
	addr, _, shutdown := startConfigServer(t, Config{Cells: sharingCells(t, 1, 1000)})
	defer shutdown()

	// Every session stays open until all admissions land: a closing
	// session would release its grant and legitimately reuse an occupancy
	// level.
	const grants = 20
	clients := make([]*Client, grants)
	for i := range clients {
		cl, err := Dial(addr)
		if err != nil {
			t.Fatal(err)
		}
		defer cl.Close()
		clients[i] = cl
	}

	occ := make(chan float64, grants)
	var wg sync.WaitGroup
	for i, cl := range clients {
		wg.Add(1)
		go func(cl *Client, id uint64) {
			defer wg.Done()
			resp, err := cl.Admit(id, "voice", 0, 0, false)
			if err != nil || !resp.OK || !resp.Accept {
				t.Errorf("admit = %+v, %v", resp, err)
				return
			}
			occ <- resp.Occupancy
		}(cl, uint64(i+1))
	}
	wg.Wait()
	close(occ)

	seen := map[float64]bool{}
	for o := range occ {
		if seen[o] {
			t.Errorf("occupancy %v reported twice: two admissions observed the same cell state", o)
		}
		seen[o] = true
	}
	for want := 5.0; want <= grants*5; want += 5 {
		if !seen[want] {
			t.Errorf("no admission reported occupancy %v", want)
		}
	}
}

// TestCloseDrainsGrants pins the shutdown ordering: Close tears down
// live sessions, their grants are released through the cell workers, and
// only then does Serve return.
func TestCloseDrainsGrants(t *testing.T) {
	cells := sharingCells(t, 2, 40)
	srv, err := New(Config{Cells: cells})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = srv.Serve(ln)
	}()

	cl, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if resp, err := cl.Admit(1, "video", 0, 0, false); err != nil || !resp.Accept {
		t.Fatalf("admit = %+v, %v", resp, err)
	}
	if resp, err := cl.AdmitWith(2, "voice", AdmitOptions{Cell: 1}); err != nil || !resp.Accept {
		t.Fatalf("admit = %+v, %v", resp, err)
	}

	_ = srv.Close()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Serve did not return after Close")
	}
	// Serve has returned, so the drain is complete: every grant released.
	for i, c := range cells {
		if got := c.Occupancy(); got != 0 {
			t.Errorf("cell %d occupancy after drain = %v, want 0", i, got)
		}
	}
}

// TestAdmitWithMinBUDegradesOverWire drives a degraded admission through
// the full wire path: a fifth video into a cell already full of four,
// tolerating 5 BU, forces the adaptive scheme to squeeze the others.
func TestAdmitWithMinBUDegradesOverWire(t *testing.T) {
	ctrl, err := adapt.New(adapt.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	addr, _, shutdown := startConfigServer(t, Config{Cells: []cac.Controller{ctrl}})
	defer shutdown()

	cl, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	// Five videos fill the 40 BU cell: the fifth only fits because the
	// scheme squeezes the others one ladder step (10 -> 7 BU), landing at
	// 4x7 + 10 = 38 BU.
	for id := uint64(1); id <= 5; id++ {
		resp, err := cl.Admit(id, "video", 0, 0, false)
		if err != nil || !resp.OK || !resp.Accept {
			t.Fatalf("fill admit %d = %+v, %v", id, resp, err)
		}
		if id == 5 && (resp.Outcome != "degraded-others" || resp.Occupancy != 38) {
			t.Fatalf("fifth video = %+v, want degraded-others at 38 BU", resp)
		}
	}

	// A plain sixth video is out of degradation budget and loses...
	resp, err := cl.Admit(20, "video", 0, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Accept {
		t.Fatalf("over-budget admit accepted: %+v", resp)
	}
	// ...but the wire options reach the scheme: a handoff with a 5 BU
	// degradation floor is squeezed in against the deeper handoff budget.
	resp, err = cl.AdmitWith(21, "video", AdmitOptions{Handoff: true, MinBU: 5, Priority: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !resp.OK || !resp.Accept || resp.Outcome != "degraded-others" {
		t.Fatalf("degraded handoff admit = %+v", resp)
	}
	if resp.Allocated != 10 {
		t.Errorf("allocated = %v, want 10", resp.Allocated)
	}
	if resp.Occupancy > 40 {
		t.Errorf("occupancy %v exceeds capacity after degradation", resp.Occupancy)
	}
}
