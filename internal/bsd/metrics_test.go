package bsd

import (
	"encoding/json"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"facsp/internal/baseline"
	"facsp/internal/cac"
	"facsp/internal/metrics"
)

// startMultiCell launches a daemon of complete-sharing cells — fully
// deterministic admission (accept iff the bandwidth fits) — so counter
// expectations are exact.
func startMultiCell(t *testing.T, cells int, capacity float64) (addr string, srv *Server, shutdown func()) {
	t.Helper()
	ctrls := make([]cac.Controller, cells)
	for i := range ctrls {
		c, err := baseline.NewCompleteSharing(capacity)
		if err != nil {
			t.Fatal(err)
		}
		ctrls[i] = c
	}
	srv, err := New(Config{Cells: ctrls})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = srv.Serve(ln)
	}()
	return ln.Addr().String(), srv, func() {
		_ = srv.Close()
		select {
		case <-done:
		case <-time.After(5 * time.Second):
			t.Error("server did not shut down")
		}
	}
}

// TestCounterAccounting drives a deterministic admission sequence and
// checks every counter and gauge lands in the right cell row and column.
func TestCounterAccounting(t *testing.T) {
	addr, srv, shutdown := startMultiCell(t, 2, 10)
	defer shutdown()
	cl, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	// Cell 0: two voice admits fill the 10 BU; a third voice new call
	// blocks and a video handoff drops.
	for id := uint64(1); id <= 2; id++ {
		resp, err := cl.AdmitWith(id, "voice", AdmitOptions{})
		if err != nil || !resp.Accept {
			t.Fatalf("admit %d = %+v, %v", id, resp, err)
		}
	}
	if resp, err := cl.AdmitWith(3, "voice", AdmitOptions{}); err != nil || resp.Accept {
		t.Fatalf("expected voice block, got %+v, %v", resp, err)
	}
	if resp, err := cl.AdmitWith(4, "video", AdmitOptions{Handoff: true}); err != nil || resp.Accept {
		t.Fatalf("expected video drop, got %+v, %v", resp, err)
	}
	// Cell 1: one text admit.
	if resp, err := cl.AdmitWith(5, "text", AdmitOptions{Cell: 1}); err != nil || !resp.Accept {
		t.Fatalf("cell 1 text admit = %+v, %v", resp, err)
	}

	reg := srv.Metrics()
	checks := []struct {
		cell int
		c    metrics.Counter
		want uint64
	}{
		{0, metrics.AdmitsVoice, 2},
		{0, metrics.BlocksVoice, 1},
		{0, metrics.DropsVideo, 1},
		{0, metrics.AdmitsText, 0},
		{0, metrics.BlocksVideo, 0},
		{1, metrics.AdmitsText, 1},
		{1, metrics.AdmitsVoice, 0},
	}
	for _, c := range checks {
		if got := reg.CounterValue(c.cell, c.c); got != c.want {
			t.Errorf("cell %d counter %d = %d, want %d", c.cell, c.c, got, c.want)
		}
	}
	if got := reg.GaugeValue(0, metrics.OccupancyBU); got != 10 {
		t.Errorf("cell 0 occupancy gauge = %v, want 10", got)
	}
	if got := reg.GaugeValue(0, metrics.CapacityBU); got != 10 {
		t.Errorf("cell 0 capacity gauge = %v, want 10", got)
	}
	if got := reg.GaugeValue(1, metrics.OccupancyBU); got != 1 {
		t.Errorf("cell 1 occupancy gauge = %v, want 1", got)
	}

	// A release moves the occupancy gauge back down.
	if resp, err := cl.Release(1, "voice"); err != nil || !resp.OK {
		t.Fatalf("release = %+v, %v", resp, err)
	}
	if got := reg.GaugeValue(0, metrics.OccupancyBU); got != 5 {
		t.Errorf("cell 0 occupancy after release = %v, want 5", got)
	}

	// Hotness saw every admission attempt: 4 on cell 0, 1 on cell 1.
	hot := srv.Hotness()
	now := srv.Uptime()
	if c0, c1 := hot.Value(0, now), hot.Value(1, now); c0 <= c1 || c1 <= 0 {
		t.Errorf("hotness values = %v, %v; want cell0 > cell1 > 0", c0, c1)
	}
}

// TestMetricsEndpoint scrapes /metrics and /hotcells after a deterministic
// burst and checks the rendered exposition and the JSON ranking.
func TestMetricsEndpoint(t *testing.T) {
	addr, srv, shutdown := startMultiCell(t, 3, 100)
	defer shutdown()
	cl, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	// Cell 2 hottest (5 attempts), cell 0 warm (2), cell 1 cold.
	id := uint64(1)
	for i := 0; i < 5; i++ {
		if _, err := cl.AdmitWith(id, "voice", AdmitOptions{Cell: 2}); err != nil {
			t.Fatal(err)
		}
		id++
	}
	for i := 0; i < 2; i++ {
		if _, err := cl.AdmitWith(id, "text", AdmitOptions{}); err != nil {
			t.Fatal(err)
		}
		id++
	}

	h := srv.MetricsHandler()

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("/metrics status = %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); ct != metrics.PromContentType {
		t.Errorf("content type = %q", ct)
	}
	body := rec.Body.String()
	for _, want := range []string{
		`facs_admits_total{cell="2",class="voice"} 5`,
		`facs_admits_total{cell="0",class="text"} 2`,
		`facs_admits_total{cell="1",class="voice"} 0`,
		`facs_occupancy_bu{cell="2"} 25`,
		`facs_capacity_bu{cell="1"} 100`,
		"# TYPE facs_hotness gauge",
		"# TYPE facs_surface_cache_hits_total counter",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q in:\n%s", want, body)
		}
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/hotcells", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("/hotcells status = %d", rec.Code)
	}
	var doc struct {
		HalfLifeS float64 `json:"half_life_s"`
		UptimeS   float64 `json:"uptime_s"`
		Cells     []struct {
			Cell   int     `json:"cell"`
			Rate   float64 `json:"rate"`
			Admits uint64  `json:"admits"`
		} `json:"cells"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &doc); err != nil {
		t.Fatalf("/hotcells JSON: %v\n%s", err, rec.Body.String())
	}
	if doc.HalfLifeS != DefaultHotnessHalfLife.Seconds() {
		t.Errorf("half_life_s = %v", doc.HalfLifeS)
	}
	if len(doc.Cells) != 3 {
		t.Fatalf("ranking has %d cells, want 3", len(doc.Cells))
	}
	if doc.Cells[0].Cell != 2 || doc.Cells[1].Cell != 0 || doc.Cells[2].Cell != 1 {
		t.Errorf("ranking order = %+v, want cells 2,0,1", doc.Cells)
	}
	for i := 1; i < len(doc.Cells); i++ {
		if doc.Cells[i].Rate > doc.Cells[i-1].Rate {
			t.Errorf("ranking not descending: %+v", doc.Cells)
		}
	}
	if doc.Cells[0].Admits != 5 || doc.Cells[1].Admits != 2 {
		t.Errorf("ranking admits = %+v", doc.Cells)
	}

	// ?n=1 limits the ranking; bad n values are rejected.
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/hotcells?n=1", nil))
	var limited struct {
		Cells []json.RawMessage `json:"cells"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &limited); err != nil || len(limited.Cells) != 1 {
		t.Errorf("?n=1 returned %d cells (err %v)", len(limited.Cells), err)
	}
	for _, bad := range []string{"0", "-3", "x"} {
		rec = httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", "/hotcells?n="+bad, nil))
		if rec.Code != http.StatusBadRequest {
			t.Errorf("?n=%s status = %d, want 400", bad, rec.Code)
		}
	}

	// Unknown paths and non-GET methods miss the mux patterns.
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("POST", "/metrics", nil))
	if rec.Code == http.StatusOK {
		t.Error("POST /metrics unexpectedly served")
	}
}

// TestScrapeWhileAdmitting hammers the daemon with concurrent admission
// traffic while scraping both endpoints in parallel — the -race lane
// proves the lock-free counter plane has no torn access.
func TestScrapeWhileAdmitting(t *testing.T) {
	addr, srv, shutdown := startMultiCell(t, 4, 1e9)
	defer shutdown()

	const (
		clients  = 4
		perConn  = 50
		scrapers = 2
	)
	h := srv.MetricsHandler()
	stop := make(chan struct{})
	var scrapeWG sync.WaitGroup
	for i := 0; i < scrapers; i++ {
		scrapeWG.Add(1)
		go func() {
			defer scrapeWG.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				rec := httptest.NewRecorder()
				h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
				rec = httptest.NewRecorder()
				h.ServeHTTP(rec, httptest.NewRequest("GET", "/hotcells", nil))
			}
		}()
	}

	var wg sync.WaitGroup
	for w := 0; w < clients; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			cl, err := Dial(addr)
			if err != nil {
				t.Error(err)
				return
			}
			defer cl.Close()
			for i := 0; i < perConn; i++ {
				cell := (w + i) % 4
				if _, err := cl.AdmitWith(uint64(i+1), "voice", AdmitOptions{Cell: cell}); err != nil {
					t.Error(err)
					return
				}
				if _, err := cl.ReleaseIn(cell, uint64(i+1), "voice"); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	scrapeWG.Wait()

	// Totals are exact despite the concurrent scrapes.
	var admits uint64
	reg := srv.Metrics()
	for cell := 0; cell < reg.Cells(); cell++ {
		admits += reg.CounterValue(cell, metrics.AdmitsVoice)
	}
	if want := uint64(clients * perConn); admits != want {
		t.Errorf("total voice admits = %d, want %d", admits, want)
	}
}

// TestScrapeSurvivesClose checks the observability plane outlives the TCP
// plane: scraping concurrently with Close never fails, and a scrape after
// full shutdown still serves the final counters.
func TestScrapeSurvivesClose(t *testing.T) {
	addr, srv, shutdown := startMultiCell(t, 2, 100)
	cl, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cl.AdmitWith(1, "voice", AdmitOptions{}); err != nil {
		t.Fatal(err)
	}
	cl.Close()

	h := srv.MetricsHandler()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
			if rec.Code != http.StatusOK {
				t.Errorf("scrape during close: status %d", rec.Code)
				return
			}
		}
	}()
	shutdown()
	close(stop)
	wg.Wait()

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("post-close scrape status = %d", rec.Code)
	}
	if !strings.Contains(rec.Body.String(), `facs_admits_total{cell="0",class="voice"} 1`) {
		t.Error("post-close scrape lost the final counters")
	}
}
