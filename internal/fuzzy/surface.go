package fuzzy

import (
	"fmt"
	"math"
	"sort"
)

// Inferencer is the read side shared by Engine and Surface: anything that
// maps crisp inputs to a crisp output. Controllers program against it so an
// exact Mamdani pass and a precomputed surface are interchangeable.
type Inferencer interface {
	Infer(inputs ...float64) (float64, error)
}

var (
	_ Inferencer = (*Engine)(nil)
	_ Inferencer = (*Surface)(nil)
)

const (
	// DefaultSurfaceResolution is the per-axis base tick count used when a
	// surface is requested without an explicit resolution. Together with
	// breakpoint alignment it keeps the interpolation error of the paper's
	// controllers well below the softness of their linguistic scales.
	DefaultSurfaceResolution = 33

	// maxSurfaceDims bounds the input dimensionality of a Surface; the
	// interpolation loop visits 2^d corners and keeps its per-call state on
	// the stack up to this arity.
	maxSurfaceDims = 8

	// maxSurfacePoints caps the precomputed grid so a mistyped resolution
	// fails fast instead of exhausting memory.
	maxSurfacePoints = 1 << 24
)

// Surface is a quantized decision surface: an Engine's crisp output
// precomputed on an N-dimensional grid over its input universes, answered at
// query time by multilinear interpolation.
//
// The grid on each axis is the union of a uniform partition and the
// breakpoints of every membership function on that axis, so the kinks of the
// piecewise-linear fuzzification land exactly on grid planes instead of
// being smeared across a cell. Construction costs one full inference per
// grid point; lookups afterwards cost 2^d multiply-adds and no allocation,
// which is what makes admission-rate workloads tractable (see
// core.Config.SurfaceResolution and EXPERIMENTS.md).
//
// A Surface is immutable and safe for concurrent use.
type Surface struct {
	name    string
	axes    [][]float64 // sorted tick positions per input dimension
	strides []int       // row-major strides, last axis fastest
	vals    []float64   // crisp output at every grid point
	output  Variable
}

// NewSurface precomputes the decision surface of e with at least resolution
// uniform ticks per input axis (plus every membership-function breakpoint).
// A resolution below 2 is an error; the engine's inference errors, if any,
// surface here rather than at query time.
func NewSurface(e *Engine, resolution int) (*Surface, error) {
	if e == nil {
		return nil, fmt.Errorf("fuzzy: NewSurface of nil engine")
	}
	if resolution < 2 {
		return nil, fmt.Errorf("fuzzy: surface for %q: resolution %d below 2", e.name, resolution)
	}
	if len(e.inputs) > maxSurfaceDims {
		return nil, fmt.Errorf("fuzzy: surface for %q: %d inputs exceeds the %d-dimension limit",
			e.name, len(e.inputs), maxSurfaceDims)
	}

	axes := make([][]float64, len(e.inputs))
	points := 1
	for i, v := range e.inputs {
		axes[i] = axisTicks(v, resolution)
		points *= len(axes[i])
		if points > maxSurfacePoints {
			return nil, fmt.Errorf("fuzzy: surface for %q exceeds %d grid points", e.name, maxSurfacePoints)
		}
	}
	strides := make([]int, len(axes))
	strides[len(axes)-1] = 1
	for i := len(axes) - 2; i >= 0; i-- {
		strides[i] = strides[i+1] * len(axes[i+1])
	}

	vals := make([]float64, points)
	point := make([]float64, len(axes))
	idx := make([]int, len(axes))
	for p := range vals {
		for i := range idx {
			point[i] = axes[i][idx[i]]
		}
		crisp, err := e.Infer(point...)
		if err != nil {
			return nil, fmt.Errorf("fuzzy: surface for %q at %v: %w", e.name, point, err)
		}
		vals[p] = crisp

		// Advance the odometer, rightmost axis fastest (row-major order).
		for i := len(idx) - 1; i >= 0; i-- {
			idx[i]++
			if idx[i] < len(axes[i]) {
				break
			}
			idx[i] = 0
		}
	}

	return &Surface{
		name:    e.name,
		axes:    axes,
		strides: strides,
		vals:    vals,
		output:  e.output,
	}, nil
}

// axisTicks builds one axis of the grid: resolution uniform ticks over the
// universe, plus every in-universe membership breakpoint, sorted and deduped.
func axisTicks(v Variable, resolution int) []float64 {
	ticks := make([]float64, 0, resolution+4*len(v.Terms))
	span := v.Max - v.Min
	for i := 0; i < resolution; i++ {
		ticks = append(ticks, v.Min+span*float64(i)/float64(resolution-1))
	}
	for _, t := range v.Terms {
		pl, ok := t.MF.(PiecewiseLinear)
		if !ok {
			continue
		}
		for _, b := range pl.Breakpoints() {
			if b > v.Min && b < v.Max { // universe edges are already ticks
				ticks = append(ticks, b)
			}
		}
	}
	sort.Float64s(ticks)

	// Collapse duplicates (shared breakpoints, breakpoints landing on
	// uniform ticks) within a span-relative epsilon.
	eps := span * 1e-12
	out := ticks[:1]
	for _, x := range ticks[1:] {
		if x-out[len(out)-1] > eps {
			out = append(out, x)
		}
	}
	return out
}

// Name returns the name of the engine the surface was compiled from.
func (s *Surface) Name() string { return s.name }

// NumInputs returns the surface's input arity.
func (s *Surface) NumInputs() int { return len(s.axes) }

// Points returns the total number of precomputed grid points.
func (s *Surface) Points() int { return len(s.vals) }

// Output returns the output variable of the compiled engine.
func (s *Surface) Output() Variable { return s.output }

// Infer implements Inferencer by multilinear interpolation over the
// precomputed grid. Inputs are clamped to each axis's universe, matching
// Engine; NaN inputs are rejected.
func (s *Surface) Infer(inputs ...float64) (float64, error) {
	if len(inputs) != len(s.axes) {
		return 0, fmt.Errorf("fuzzy: surface %q: got %d inputs, want %d", s.name, len(inputs), len(s.axes))
	}
	var lo [maxSurfaceDims]int
	var frac [maxSurfaceDims]float64
	for i, x := range inputs {
		if math.IsNaN(x) {
			return 0, fmt.Errorf("fuzzy: surface %q: input %d is NaN", s.name, i)
		}
		ax := s.axes[i]
		last := len(ax) - 1
		switch {
		case x <= ax[0]:
			lo[i], frac[i] = 0, 0
		case x >= ax[last]:
			lo[i], frac[i] = last-1, 1
		default:
			// j is the first tick >= x, so x lies in (ax[j-1], ax[j]].
			j := sort.SearchFloat64s(ax, x)
			lo[i] = j - 1
			frac[i] = (x - ax[j-1]) / (ax[j] - ax[j-1])
		}
	}

	d := len(s.axes)
	out := 0.0
	for corner := 0; corner < 1<<d; corner++ {
		w := 1.0
		off := 0
		for i := 0; i < d; i++ {
			if corner&(1<<i) != 0 {
				w *= frac[i]
				off += (lo[i] + 1) * s.strides[i]
			} else {
				w *= 1 - frac[i]
				off += lo[i] * s.strides[i]
			}
			if w == 0 {
				break
			}
		}
		if w != 0 {
			out += w * s.vals[off]
		}
	}
	return out, nil
}
