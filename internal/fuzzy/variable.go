package fuzzy

import (
	"fmt"
	"math"
)

// Term is one linguistic value of a Variable, e.g. "Slow" on a speed axis.
type Term struct {
	Name string
	MF   MF
}

// Variable is a linguistic variable: a named universe of discourse [Min, Max]
// partitioned into linguistic Terms.
//
// Variables are value types; once handed to an Engine they are never
// mutated. Inputs outside the universe are clamped to it before
// fuzzification, which matches how the paper treats out-of-range
// measurements (a 130 km/h reading is simply "Fast").
type Variable struct {
	Name  string
	Min   float64
	Max   float64
	Terms []Term
}

// NewVariable constructs and validates a Variable.
func NewVariable(name string, min, max float64, terms ...Term) (Variable, error) {
	v := Variable{Name: name, Min: min, Max: max, Terms: terms}
	if err := v.Validate(); err != nil {
		return Variable{}, err
	}
	return v, nil
}

// MustVariable is NewVariable that panics on error; it is intended for
// statically authored controllers where a bad definition is a programming
// error.
func MustVariable(name string, min, max float64, terms ...Term) Variable {
	v, err := NewVariable(name, min, max, terms...)
	if err != nil {
		panic("fuzzy: " + err.Error())
	}
	return v
}

type validatable interface{ Validate() error }

// Validate checks the universe bounds, term names, and term shapes.
func (v Variable) Validate() error {
	if v.Name == "" {
		return fmt.Errorf("variable has empty name")
	}
	if math.IsNaN(v.Min) || math.IsNaN(v.Max) || math.IsInf(v.Min, 0) || math.IsInf(v.Max, 0) {
		return fmt.Errorf("variable %q has non-finite universe [%v, %v]", v.Name, v.Min, v.Max)
	}
	if v.Min >= v.Max {
		return fmt.Errorf("variable %q has empty universe [%v, %v]", v.Name, v.Min, v.Max)
	}
	if len(v.Terms) == 0 {
		return fmt.Errorf("variable %q has no terms", v.Name)
	}
	seen := make(map[string]bool, len(v.Terms))
	for i, t := range v.Terms {
		if t.Name == "" {
			return fmt.Errorf("variable %q: term %d has empty name", v.Name, i)
		}
		if seen[t.Name] {
			return fmt.Errorf("variable %q: duplicate term %q", v.Name, t.Name)
		}
		seen[t.Name] = true
		if t.MF == nil {
			return fmt.Errorf("variable %q: term %q has nil membership function", v.Name, t.Name)
		}
		if val, ok := t.MF.(validatable); ok {
			if err := val.Validate(); err != nil {
				return fmt.Errorf("variable %q: term %q: %w", v.Name, t.Name, err)
			}
		}
	}
	return nil
}

// Clamp returns x restricted to the universe [Min, Max].
func (v Variable) Clamp(x float64) float64 {
	switch {
	case x < v.Min:
		return v.Min
	case x > v.Max:
		return v.Max
	default:
		return x
	}
}

// Fuzzify returns the membership grade of x in each term, in term order.
// x is clamped to the universe first.
func (v Variable) Fuzzify(x float64) []float64 {
	x = v.Clamp(x)
	grades := make([]float64, len(v.Terms))
	for i, t := range v.Terms {
		grades[i] = t.MF.Grade(x)
	}
	return grades
}

// DominantTerm returns the index of the term with the highest membership
// grade at x (ties go to the earliest term), or -1 when every grade is zero.
// x is clamped to the universe first. Surface-backed controllers use it to
// label a crisp score with its linguistic outcome without an inference
// trace.
func (v Variable) DominantTerm(x float64) int {
	x = v.Clamp(x)
	best, bestGrade := -1, 0.0
	for i, t := range v.Terms {
		if g := t.MF.Grade(x); g > bestGrade {
			best, bestGrade = i, g
		}
	}
	return best
}

// TermIndex returns the index of the named term, or -1 if absent.
func (v Variable) TermIndex(name string) int {
	for i, t := range v.Terms {
		if t.Name == name {
			return i
		}
	}
	return -1
}

// AggregatedGrade evaluates the Mamdani output set
// max_k min(strength[k], mu_k(x)) at x, i.e. the union of all output terms,
// each clipped at its activation strength. strength must have one entry per
// term.
func (v Variable) AggregatedGrade(x float64, strength []float64) float64 {
	agg := 0.0
	for i, t := range v.Terms {
		s := strength[i]
		if s <= agg { // this term cannot raise the running max
			continue
		}
		if clipped := math.Min(s, t.MF.Grade(x)); clipped > agg {
			agg = clipped
		}
	}
	return agg
}
