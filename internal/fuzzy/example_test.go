package fuzzy_test

import (
	"fmt"

	"facsp/internal/fuzzy"
)

// Build a one-input Mamdani controller from scratch: a fan whose speed
// follows the room temperature.
func ExampleEngine() {
	temp := fuzzy.MustVariable("temp", 0, 40,
		fuzzy.Term{Name: "cold", MF: fuzzy.Tri(0, 0, 20)},
		fuzzy.Term{Name: "warm", MF: fuzzy.Tri(20, 20, 20)},
		fuzzy.Term{Name: "hot", MF: fuzzy.Tri(40, 20, 0)},
	)
	fan := fuzzy.MustVariable("fan", 0, 100,
		fuzzy.Term{Name: "off", MF: fuzzy.Tri(0, 0, 50)},
		fuzzy.Term{Name: "half", MF: fuzzy.Tri(50, 50, 50)},
		fuzzy.Term{Name: "full", MF: fuzzy.Tri(100, 50, 0)},
	)
	rules, err := fuzzy.RuleTable([]fuzzy.Variable{temp}, fan, []string{
		"off",  // cold
		"half", // warm
		"full", // hot
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	engine, err := fuzzy.NewEngine("fan", []fuzzy.Variable{temp}, fan, rules)
	if err != nil {
		fmt.Println(err)
		return
	}

	for _, t := range []float64{5, 20, 30} {
		speed, err := engine.Infer(t)
		if err != nil {
			fmt.Println(err)
			return
		}
		fmt.Printf("%2.0f degrees -> fan %.0f%%\n", t, speed)
	}
	// The centroid defuzzifier blends the clipped output sets, so the
	// extremes are pulled toward the middle of the fan universe.
	// Output:
	//  5 degrees -> fan 35%
	// 20 degrees -> fan 50%
	// 30 degrees -> fan 56%
}
