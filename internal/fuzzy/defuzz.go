package fuzzy

import (
	"errors"
	"fmt"
	"math"
)

// ErrNoRuleFired is returned when every output term has zero activation, so
// the aggregated output set is empty and no crisp value exists.
var ErrNoRuleFired = errors.New("fuzzy: no rule fired (aggregated output set is empty)")

// Defuzzifier converts the Mamdani aggregated output set — the output
// Variable together with a clipped activation strength per term — into a
// crisp value. samples is the numeric-integration resolution over the
// output universe for defuzzifiers that integrate.
type Defuzzifier interface {
	Defuzz(out Variable, strength []float64, samples int) (float64, error)
}

// Centroid is the centre-of-gravity defuzzifier used by the paper's
// companion work: the crisp output is the centroid of the aggregated
// (max of clipped terms) output set, computed by midpoint integration.
type Centroid struct{}

// Defuzz implements Defuzzifier.
func (Centroid) Defuzz(out Variable, strength []float64, samples int) (float64, error) {
	dx := (out.Max - out.Min) / float64(samples)
	var moment, area float64
	for i := 0; i < samples; i++ {
		x := out.Min + (float64(i)+0.5)*dx
		mu := out.AggregatedGrade(x, strength)
		moment += x * mu
		area += mu
	}
	if area == 0 {
		return 0, ErrNoRuleFired
	}
	return moment / area, nil
}

// MeanOfMaxima defuzzifies to the mean of the x values at which the
// aggregated output set attains its maximum (within a small tolerance, to
// absorb the flat tops created by clipping).
type MeanOfMaxima struct{}

// Defuzz implements Defuzzifier.
func (MeanOfMaxima) Defuzz(out Variable, strength []float64, samples int) (float64, error) {
	const tol = 1e-9
	dx := (out.Max - out.Min) / float64(samples)
	peak := 0.0
	var sum float64
	var count int
	for i := 0; i < samples; i++ {
		x := out.Min + (float64(i)+0.5)*dx
		mu := out.AggregatedGrade(x, strength)
		switch {
		case mu > peak+tol:
			peak = mu
			sum = x
			count = 1
		case mu >= peak-tol && mu > 0:
			sum += x
			count++
		}
	}
	if count == 0 || peak == 0 {
		return 0, ErrNoRuleFired
	}
	return sum / float64(count), nil
}

// Bisector defuzzifies to the x that splits the aggregated output set's
// area in half.
type Bisector struct{}

// Defuzz implements Defuzzifier.
func (Bisector) Defuzz(out Variable, strength []float64, samples int) (float64, error) {
	dx := (out.Max - out.Min) / float64(samples)
	areas := make([]float64, samples)
	total := 0.0
	for i := 0; i < samples; i++ {
		x := out.Min + (float64(i)+0.5)*dx
		a := out.AggregatedGrade(x, strength) * dx
		areas[i] = a
		total += a
	}
	if total == 0 {
		return 0, ErrNoRuleFired
	}
	half := total / 2
	run := 0.0
	for i, a := range areas {
		run += a
		if run >= half {
			return out.Min + (float64(i)+0.5)*dx, nil
		}
	}
	return out.Max, nil // floating-point slack: all mass consumed without crossing half
}

// Height is the height (weighted-average-of-peaks) defuzzifier: the crisp
// output is the activation-weighted mean of each output term's peak. It
// requires every output term's membership function to implement Peaked.
// It is markedly cheaper than Centroid because it does not integrate, at
// the cost of ignoring term shape.
type Height struct{}

// Defuzz implements Defuzzifier.
func (Height) Defuzz(out Variable, strength []float64, _ int) (float64, error) {
	var num, den float64
	for i, t := range out.Terms {
		s := strength[i]
		if s == 0 {
			continue
		}
		p, ok := t.MF.(Peaked)
		if !ok {
			return 0, fmt.Errorf("fuzzy: height defuzzifier: output term %q (%T) has no peak", t.Name, t.MF)
		}
		peak := p.Peak()
		if math.IsInf(peak, 0) || math.IsNaN(peak) {
			return 0, fmt.Errorf("fuzzy: height defuzzifier: output term %q has non-finite peak %v", t.Name, peak)
		}
		num += s * peak
		den += s
	}
	if den == 0 {
		return 0, ErrNoRuleFired
	}
	return num / den, nil
}
