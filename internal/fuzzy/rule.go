package fuzzy

import (
	"fmt"
	"strings"
)

// Rule is a single fuzzy control rule of the form
//
//	IF in[0] is Terms[When[0]] AND in[1] is Terms[When[1]] ... THEN out is Terms[Then]
//
// Antecedent terms are referenced by index into each input variable's term
// list, the consequent by index into the output variable's term list.
type Rule struct {
	// When holds one antecedent term index per engine input, in input order.
	When []int
	// Then is the consequent output term index.
	Then int
}

// String renders the rule with positional indices; Engine.DescribeRule
// renders it with variable and term names.
func (r Rule) String() string {
	var b strings.Builder
	b.WriteString("IF ")
	for i, w := range r.When {
		if i > 0 {
			b.WriteString(" AND ")
		}
		fmt.Fprintf(&b, "in%d=%d", i, w)
	}
	fmt.Fprintf(&b, " THEN out=%d", r.Then)
	return b.String()
}

// validateRules checks every rule against the engine's variables: arity,
// index ranges, and (optionally) that the rule base covers the full cross
// product of input terms exactly once, the way the paper's FRB1 (63 = 3x7x3)
// and FRB2 (27 = 3x3x3) do.
func validateRules(inputs []Variable, output Variable, rules []Rule, requireComplete bool) error {
	if len(rules) == 0 {
		return fmt.Errorf("rule base is empty")
	}
	for ri, r := range rules {
		if len(r.When) != len(inputs) {
			return fmt.Errorf("rule %d: has %d antecedents, engine has %d inputs", ri, len(r.When), len(inputs))
		}
		for vi, w := range r.When {
			if w < 0 || w >= len(inputs[vi].Terms) {
				return fmt.Errorf("rule %d: antecedent %d references term %d of variable %q (has %d terms)",
					ri, vi, w, inputs[vi].Name, len(inputs[vi].Terms))
			}
		}
		if r.Then < 0 || r.Then >= len(output.Terms) {
			return fmt.Errorf("rule %d: consequent references term %d of output %q (has %d terms)",
				ri, r.Then, output.Name, len(output.Terms))
		}
	}
	if !requireComplete {
		return nil
	}

	want := 1
	for _, in := range inputs {
		want *= len(in.Terms)
	}
	if len(rules) != want {
		return fmt.Errorf("rule base has %d rules, complete cross product needs %d", len(rules), want)
	}
	seen := make(map[string]int, len(rules))
	for ri, r := range rules {
		key := fmt.Sprint(r.When)
		if prev, dup := seen[key]; dup {
			return fmt.Errorf("rules %d and %d share the same antecedents %v", prev, ri, r.When)
		}
		seen[key] = ri
	}
	return nil
}

// RuleTable is a convenience builder for complete rule bases expressed the
// way the paper prints them: one consequent term name per row of the
// antecedent cross product, iterated rightmost-variable-fastest (the order
// of Table 1 and Table 2).
//
// inputs and output must be the variables the engine will be built with;
// consequents must contain exactly one output term name per combination.
func RuleTable(inputs []Variable, output Variable, consequents []string) ([]Rule, error) {
	want := 1
	for _, in := range inputs {
		want *= len(in.Terms)
	}
	if len(consequents) != want {
		return nil, fmt.Errorf("rule table has %d consequents, cross product of %d inputs needs %d",
			len(consequents), len(inputs), want)
	}

	rules := make([]Rule, 0, want)
	idx := make([]int, len(inputs))
	for row, name := range consequents {
		then := output.TermIndex(name)
		if then < 0 {
			return nil, fmt.Errorf("rule table row %d: output %q has no term %q", row, output.Name, name)
		}
		when := make([]int, len(idx))
		copy(when, idx)
		rules = append(rules, Rule{When: when, Then: then})

		// Advance the odometer, rightmost variable fastest.
		for vi := len(idx) - 1; vi >= 0; vi-- {
			idx[vi]++
			if idx[vi] < len(inputs[vi].Terms) {
				break
			}
			idx[vi] = 0
		}
	}
	return rules, nil
}
