// Package fuzzy implements a small, dependency-free Mamdani fuzzy-inference
// engine: linguistic variables with triangular and trapezoidal membership
// functions, validated rule bases, min–max inference, and a choice of
// defuzzifiers.
//
// The package is the substrate under the paper's two fuzzy logic controllers
// (FLC1 and FLC2 in internal/core), but it is generic: nothing in it knows
// about call admission. Engines are immutable after construction and safe
// for concurrent use.
package fuzzy

import (
	"fmt"
	"math"
)

// MF is a scalar membership function: Grade reports the degree, in [0, 1],
// to which x belongs to the fuzzy set.
type MF interface {
	Grade(x float64) float64
}

// Peaked is implemented by membership functions that have a well-defined
// prototype point (the x of maximal membership). The height defuzzifier and
// several diagnostics rely on it.
type Peaked interface {
	Peak() float64
}

// Supported is implemented by membership functions with compact support.
// Support returns the closed interval outside of which Grade is zero.
type Supported interface {
	Support() (lo, hi float64)
}

// PiecewiseLinear is implemented by membership functions whose grade is
// piecewise linear in x. Breakpoints returns every x at which the slope may
// change; values outside a variable's universe (including the infinities of
// shoulder terms) are permitted, consumers clamp or drop them. Surface
// compilation aligns its grid to these points so interpolation never cuts
// across a kink.
type PiecewiseLinear interface {
	Breakpoints() []float64
}

// Triangular is the paper's f(x; x0, a0, a1) membership function: grade 1 at
// Center, falling linearly to 0 at Center-LeftWidth and Center+RightWidth.
//
// A zero width makes the corresponding side a vertical edge: the grade is 1
// at Center and 0 strictly beyond it. Negative widths are invalid; use
// Validate or the package constructors to catch them.
type Triangular struct {
	Center     float64
	LeftWidth  float64
	RightWidth float64
}

var (
	_ MF              = Triangular{}
	_ Peaked          = Triangular{}
	_ Supported       = Triangular{}
	_ PiecewiseLinear = Triangular{}
)

// Tri returns a Triangular membership function with the given center and
// widths. It panics if either width is negative; rule-base authoring is
// static, so a bad shape is a programming error, not a runtime condition.
func Tri(center, leftWidth, rightWidth float64) Triangular {
	t := Triangular{Center: center, LeftWidth: leftWidth, RightWidth: rightWidth}
	if err := t.Validate(); err != nil {
		panic("fuzzy: " + err.Error())
	}
	return t
}

// Validate reports whether the shape parameters are usable.
func (t Triangular) Validate() error {
	if t.LeftWidth < 0 || t.RightWidth < 0 {
		return fmt.Errorf("triangular MF has negative width: left=%v right=%v", t.LeftWidth, t.RightWidth)
	}
	if math.IsNaN(t.Center) || math.IsInf(t.Center, 0) {
		return fmt.Errorf("triangular MF has non-finite center %v", t.Center)
	}
	return nil
}

// Grade implements MF.
func (t Triangular) Grade(x float64) float64 {
	switch {
	case x == t.Center:
		return 1
	case x < t.Center:
		if t.LeftWidth == 0 || x <= t.Center-t.LeftWidth {
			return 0
		}
		return (x - (t.Center - t.LeftWidth)) / t.LeftWidth
	default:
		if t.RightWidth == 0 || x >= t.Center+t.RightWidth {
			return 0
		}
		return ((t.Center + t.RightWidth) - x) / t.RightWidth
	}
}

// Peak implements Peaked.
func (t Triangular) Peak() float64 { return t.Center }

// Support implements Supported.
func (t Triangular) Support() (lo, hi float64) {
	return t.Center - t.LeftWidth, t.Center + t.RightWidth
}

// Breakpoints implements PiecewiseLinear.
func (t Triangular) Breakpoints() []float64 {
	return []float64{t.Center - t.LeftWidth, t.Center, t.Center + t.RightWidth}
}

// Trapezoidal is the paper's g(x; x0, x1, a0, a1) membership function:
// grade 1 on the plateau [Left, Right], rising linearly from
// Left-LeftWidth and falling linearly to Right+RightWidth.
//
// A zero width makes the corresponding side a vertical edge, which is how
// the shoulder terms at the ends of a universe (e.g. Back1/Back2 on the
// angle axis) are expressed.
type Trapezoidal struct {
	Left       float64
	Right      float64
	LeftWidth  float64
	RightWidth float64
}

var (
	_ MF              = Trapezoidal{}
	_ Peaked          = Trapezoidal{}
	_ Supported       = Trapezoidal{}
	_ PiecewiseLinear = Trapezoidal{}
)

// Trap returns a Trapezoidal membership function with plateau [left, right]
// and the given slope widths. It panics on invalid shapes (negative widths
// or an inverted plateau).
func Trap(left, right, leftWidth, rightWidth float64) Trapezoidal {
	tr := Trapezoidal{Left: left, Right: right, LeftWidth: leftWidth, RightWidth: rightWidth}
	if err := tr.Validate(); err != nil {
		panic("fuzzy: " + err.Error())
	}
	return tr
}

// Validate reports whether the shape parameters are usable.
func (t Trapezoidal) Validate() error {
	if t.Left > t.Right {
		return fmt.Errorf("trapezoidal MF has inverted plateau [%v, %v]", t.Left, t.Right)
	}
	if t.LeftWidth < 0 || t.RightWidth < 0 {
		return fmt.Errorf("trapezoidal MF has negative width: left=%v right=%v", t.LeftWidth, t.RightWidth)
	}
	// Shoulders extend a plateau outward without bound: Left may be -inf
	// and Right may be +inf, but never the reverse, and never NaN.
	if math.IsNaN(t.Left) || math.IsNaN(t.Right) || math.IsInf(t.Left, 1) || math.IsInf(t.Right, -1) {
		return fmt.Errorf("trapezoidal MF has invalid plateau [%v, %v]", t.Left, t.Right)
	}
	return nil
}

// Grade implements MF.
func (t Trapezoidal) Grade(x float64) float64 {
	switch {
	case x >= t.Left && x <= t.Right:
		return 1
	case x < t.Left:
		if t.LeftWidth == 0 || x <= t.Left-t.LeftWidth {
			return 0
		}
		return (x - (t.Left - t.LeftWidth)) / t.LeftWidth
	default:
		if t.RightWidth == 0 || x >= t.Right+t.RightWidth {
			return 0
		}
		return ((t.Right + t.RightWidth) - x) / t.RightWidth
	}
}

// Peak implements Peaked: the midpoint of the plateau. For shoulder shapes
// whose plateau extends to infinity on one side, Peak is the finite edge.
func (t Trapezoidal) Peak() float64 {
	switch {
	case math.IsInf(t.Left, -1):
		return t.Right
	case math.IsInf(t.Right, 1):
		return t.Left
	default:
		return (t.Left + t.Right) / 2
	}
}

// Support implements Supported.
func (t Trapezoidal) Support() (lo, hi float64) {
	return t.Left - t.LeftWidth, t.Right + t.RightWidth
}

// Breakpoints implements PiecewiseLinear. Shoulder plateaus contribute their
// infinite edge as is; consumers restrict to the universe.
func (t Trapezoidal) Breakpoints() []float64 {
	return []float64{t.Left - t.LeftWidth, t.Left, t.Right, t.Right + t.RightWidth}
}

// LeftShoulder returns a trapezoid with grade 1 on (-inf-like) plateau up to
// `to`, falling to zero at `zero`. Use it for the lowest term of a variable:
// the plateau is extended to cover everything below `to` so that clamped
// inputs at the universe edge receive full membership.
func LeftShoulder(to, zero float64) Trapezoidal {
	if zero < to {
		panic(fmt.Sprintf("fuzzy: LeftShoulder(to=%v, zero=%v): zero must be >= to", to, zero))
	}
	return Trapezoidal{Left: math.Inf(-1), Right: to, LeftWidth: 0, RightWidth: zero - to}
}

// RightShoulder returns a trapezoid with grade 0 up to `zero`, rising to a
// plateau at `from` that extends upward without bound. Use it for the
// highest term of a variable.
func RightShoulder(zero, from float64) Trapezoidal {
	if from < zero {
		panic(fmt.Sprintf("fuzzy: RightShoulder(zero=%v, from=%v): from must be >= zero", zero, from))
	}
	return Trapezoidal{Left: from, Right: math.Inf(1), LeftWidth: from - zero, RightWidth: 0}
}
