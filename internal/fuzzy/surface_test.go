package fuzzy

import (
	"math"
	"strings"
	"testing"
)

func tipperSurface(t testing.TB, resolution int) (*Engine, *Surface) {
	t.Helper()
	e := tipperEngine(t)
	s, err := NewSurface(e, resolution)
	if err != nil {
		t.Fatalf("NewSurface: %v", err)
	}
	return e, s
}

func TestSurfaceExactOnGridPoints(t *testing.T) {
	e, s := tipperSurface(t, 11)
	// Every grid tick is a precomputed point: interpolation must return the
	// engine's value exactly there, including on the inserted breakpoints.
	// Resolution 11 over [0,10] puts uniform ticks on the integers, and the
	// tipper breakpoints (0, 5, 10) coincide with them.
	for _, service := range []float64{0, 1, 2, 5, 7, 10} {
		for _, food := range []float64{0, 2, 5, 10} {
			want, err := e.Infer(service, food)
			if err != nil {
				t.Fatalf("engine at (%v, %v): %v", service, food, err)
			}
			got, err := s.Infer(service, food)
			if err != nil {
				t.Fatalf("surface at (%v, %v): %v", service, food, err)
			}
			if got != want {
				t.Errorf("surface at grid point (%v, %v) = %v, engine = %v", service, food, got, want)
			}
		}
	}
}

func TestSurfaceInterpolatesWithinUniverse(t *testing.T) {
	_, s := tipperSurface(t, 11)
	out := s.Output()
	for service := 0.0; service <= 10; service += 0.173 {
		for food := 0.0; food <= 10; food += 0.211 {
			got, err := s.Infer(service, food)
			if err != nil {
				t.Fatalf("surface at (%v, %v): %v", service, food, err)
			}
			if got < out.Min || got > out.Max {
				t.Fatalf("surface at (%v, %v) = %v outside output universe [%v, %v]",
					service, food, got, out.Min, out.Max)
			}
		}
	}
}

func TestSurfaceClampsLikeEngine(t *testing.T) {
	e, s := tipperSurface(t, 11)
	// Out-of-universe inputs clamp to the edge, matching Engine semantics.
	cases := [][2]float64{{-5, 5}, {15, 5}, {5, -1}, {5, 11}, {1e6, -1e6}}
	for _, c := range cases {
		want, err := e.Infer(c[0], c[1])
		if err != nil {
			t.Fatalf("engine at %v: %v", c, err)
		}
		got, err := s.Infer(c[0], c[1])
		if err != nil {
			t.Fatalf("surface at %v: %v", c, err)
		}
		if math.Abs(got-want) > 1e-12 {
			t.Errorf("surface clamp at %v = %v, engine = %v", c, got, want)
		}
	}
}

func TestSurfaceRejectsNaN(t *testing.T) {
	_, s := tipperSurface(t, 5)
	if _, err := s.Infer(math.NaN(), 5); err == nil {
		t.Error("NaN input accepted")
	}
	if _, err := s.Infer(5, math.NaN()); err == nil {
		t.Error("NaN input accepted")
	}
}

func TestSurfaceWrongArity(t *testing.T) {
	_, s := tipperSurface(t, 5)
	if _, err := s.Infer(1); err == nil {
		t.Error("1 input accepted by a 2-input surface")
	}
	if _, err := s.Infer(1, 2, 3); err == nil {
		t.Error("3 inputs accepted by a 2-input surface")
	}
}

func TestSurfaceAccessors(t *testing.T) {
	e, s := tipperSurface(t, 11)
	if s.Name() != e.Name() {
		t.Errorf("Name = %q, want %q", s.Name(), e.Name())
	}
	if s.NumInputs() != 2 {
		t.Errorf("NumInputs = %d", s.NumInputs())
	}
	// 11 uniform ticks plus in-universe breakpoints, deduped: at least the
	// uniform grid on each axis.
	if s.Points() < 11*11 {
		t.Errorf("Points = %d, want >= 121", s.Points())
	}
	if s.Output().Name != "tip" {
		t.Errorf("Output = %q", s.Output().Name)
	}
}

func TestSurfaceConvergesWithResolution(t *testing.T) {
	e := tipperEngine(t)
	coarse, err := NewSurface(e, 5)
	if err != nil {
		t.Fatal(err)
	}
	fine, err := NewSurface(e, 41)
	if err != nil {
		t.Fatal(err)
	}
	maxErr := func(s *Surface) float64 {
		worst := 0.0
		for service := 0.0; service <= 10; service += 0.37 {
			for food := 0.0; food <= 10; food += 0.41 {
				want, err := e.Infer(service, food)
				if err != nil {
					t.Fatalf("engine: %v", err)
				}
				got, err := s.Infer(service, food)
				if err != nil {
					t.Fatalf("surface: %v", err)
				}
				if d := math.Abs(got - want); d > worst {
					worst = d
				}
			}
		}
		return worst
	}
	ce, fe := maxErr(coarse), maxErr(fine)
	if fe >= ce {
		t.Errorf("refining the grid did not reduce the max error: res 5 -> %v, res 41 -> %v", ce, fe)
	}
	// The tipper output spans [0, 30]; a 41-tick grid must be accurate to a
	// small fraction of that span.
	if fe > 0.5 {
		t.Errorf("res-41 max error %v exceeds 0.5 on a [0,30] universe", fe)
	}
}

func TestNewSurfaceValidation(t *testing.T) {
	e := tipperEngine(t)
	if _, err := NewSurface(nil, 5); err == nil {
		t.Error("nil engine accepted")
	}
	if _, err := NewSurface(e, 1); err == nil {
		t.Error("resolution 1 accepted")
	}
	if _, err := NewSurface(e, -3); err == nil {
		t.Error("negative resolution accepted")
	}
	if _, err := NewSurface(e, 1<<13); err == nil || !strings.Contains(err.Error(), "grid points") {
		t.Errorf("oversized grid not rejected: %v", err)
	}
}

func TestSurfaceIsInferencer(t *testing.T) {
	e, s := tipperSurface(t, 5)
	for _, inf := range []Inferencer{e, s} {
		if _, err := inf.Infer(5, 5); err != nil {
			t.Errorf("%T.Infer: %v", inf, err)
		}
	}
}
