package fuzzy

import (
	"fmt"
	"math"
	"strings"
)

// TNorm is a fuzzy AND: it combines the membership grades of a rule's
// antecedents into the rule's activation strength.
type TNorm func(a, b float64) float64

// MinAND is the standard Mamdani conjunction (Zadeh AND).
func MinAND(a, b float64) float64 { return math.Min(a, b) }

// ProductAND is the probabilistic conjunction; it yields smoother control
// surfaces than MinAND and is offered for ablation studies.
func ProductAND(a, b float64) float64 { return a * b }

const (
	// DefaultSamples is the default numeric-integration resolution for
	// integrating defuzzifiers. 1001 points over a unit universe keeps the
	// centroid error well below the softness of the linguistic scale.
	DefaultSamples = 1001

	// minSamples guards against degenerate integration grids.
	minSamples = 16
)

// Engine is an immutable Mamdani fuzzy-inference engine: fuzzifier,
// rule-base inference (AND across antecedents, max aggregation across
// rules), and defuzzifier, as in Fig. 2 of the paper.
//
// An Engine is safe for concurrent use: Infer does not mutate engine state.
type Engine struct {
	name    string
	inputs  []Variable
	output  Variable
	rules   []Rule
	and     TNorm
	defuzz  Defuzzifier
	samples int

	// Centroid fast path: output-term membership grades pre-evaluated on the
	// integration grid, so defuzzification is table lookups instead of
	// interface-dispatched Grade calls. sampleX[i] is the i-th midpoint
	// sample over the output universe; gradeTab[i*len(output.Terms)+t] is
	// term t's grade there. Populated only for the Centroid defuzzifier;
	// the numbers it produces are bit-identical to Centroid.Defuzz.
	sampleX  []float64
	gradeTab []float64
}

// Option configures an Engine at construction time.
type Option func(*Engine)

// WithAND selects the conjunction operator (default MinAND).
func WithAND(and TNorm) Option { return func(e *Engine) { e.and = and } }

// WithDefuzzifier selects the defuzzifier (default Centroid).
func WithDefuzzifier(d Defuzzifier) Option { return func(e *Engine) { e.defuzz = d } }

// WithSamples sets the numeric-integration resolution (default
// DefaultSamples; values below a small floor are raised to it).
func WithSamples(n int) Option { return func(e *Engine) { e.samples = n } }

// NewEngine constructs and validates an engine. The rule base must cover
// the complete cross product of input terms exactly once; both of the
// paper's rule bases (Tables 1 and 2) have this property, and requiring it
// catches transcription mistakes at startup rather than mid-simulation.
func NewEngine(name string, inputs []Variable, output Variable, rules []Rule, opts ...Option) (*Engine, error) {
	if name == "" {
		return nil, fmt.Errorf("fuzzy: engine has empty name")
	}
	if len(inputs) == 0 {
		return nil, fmt.Errorf("fuzzy: engine %q has no input variables", name)
	}
	for _, in := range inputs {
		if err := in.Validate(); err != nil {
			return nil, fmt.Errorf("fuzzy: engine %q: input: %w", name, err)
		}
	}
	if err := output.Validate(); err != nil {
		return nil, fmt.Errorf("fuzzy: engine %q: output: %w", name, err)
	}
	if err := validateRules(inputs, output, rules, true); err != nil {
		return nil, fmt.Errorf("fuzzy: engine %q: %w", name, err)
	}

	e := &Engine{
		name:    name,
		inputs:  append([]Variable(nil), inputs...),
		output:  output,
		rules:   append([]Rule(nil), rules...),
		and:     MinAND,
		defuzz:  Centroid{},
		samples: DefaultSamples,
	}
	for _, opt := range opts {
		opt(e)
	}
	if e.samples < minSamples {
		e.samples = minSamples
	}
	if e.and == nil {
		return nil, fmt.Errorf("fuzzy: engine %q: nil AND operator", name)
	}
	if e.defuzz == nil {
		return nil, fmt.Errorf("fuzzy: engine %q: nil defuzzifier", name)
	}
	if _, centroid := e.defuzz.(Centroid); centroid {
		e.buildGradeTable()
	}
	return e, nil
}

// buildGradeTable precomputes the output-term grades on the integration
// grid used by the centroid fast path.
func (e *Engine) buildGradeTable() {
	nt := len(e.output.Terms)
	dx := (e.output.Max - e.output.Min) / float64(e.samples)
	e.sampleX = make([]float64, e.samples)
	e.gradeTab = make([]float64, e.samples*nt)
	for i := 0; i < e.samples; i++ {
		x := e.output.Min + (float64(i)+0.5)*dx
		e.sampleX[i] = x
		for t, term := range e.output.Terms {
			e.gradeTab[i*nt+t] = term.MF.Grade(x)
		}
	}
}

// defuzzify dispatches to the centroid fast path when available, otherwise
// to the configured Defuzzifier.
func (e *Engine) defuzzify(strength []float64) (float64, error) {
	if e.gradeTab == nil {
		return e.defuzz.Defuzz(e.output, strength, e.samples)
	}
	// Only activated output terms can contribute to the max; with the
	// paper's rule bases that is typically 2-5 of 9 terms.
	var activeT [32]int
	var activeS [32]float64
	na := 0
	for t, s := range strength {
		if s > 0 {
			if na == len(activeT) {
				// Implausibly wide activation; take the general path.
				return e.defuzz.Defuzz(e.output, strength, e.samples)
			}
			activeT[na], activeS[na] = t, s
			na++
		}
	}
	if na == 0 {
		return 0, ErrNoRuleFired
	}

	nt := len(e.output.Terms)
	var moment, area float64
	for i, x := range e.sampleX {
		base := i * nt
		mu := 0.0
		for k := 0; k < na; k++ {
			s := activeS[k]
			if s <= mu { // this term cannot raise the running max
				continue
			}
			if g := e.gradeTab[base+activeT[k]]; g < s {
				s = g
			}
			if s > mu {
				mu = s
			}
		}
		moment += x * mu
		area += mu
	}
	if area == 0 {
		return 0, ErrNoRuleFired
	}
	return moment / area, nil
}

// MustEngine is NewEngine that panics on error, for statically authored
// controllers.
func MustEngine(name string, inputs []Variable, output Variable, rules []Rule, opts ...Option) *Engine {
	e, err := NewEngine(name, inputs, output, rules, opts...)
	if err != nil {
		panic(err.Error())
	}
	return e
}

// Name returns the engine's name.
func (e *Engine) Name() string { return e.name }

// Inputs returns a copy of the engine's input variables.
func (e *Engine) Inputs() []Variable { return append([]Variable(nil), e.inputs...) }

// Output returns the engine's output variable.
func (e *Engine) Output() Variable { return e.output }

// Rules returns a copy of the engine's rule base.
func (e *Engine) Rules() []Rule { return append([]Rule(nil), e.rules...) }

// Result carries the full trace of one inference, for diagnostics,
// explanation and tests.
type Result struct {
	// Crisp is the defuzzified output value.
	Crisp float64
	// RuleStrength is the activation strength of each rule, in rule order.
	RuleStrength []float64
	// TermStrength is the aggregated (max) activation of each output term.
	TermStrength []float64
	// BestTerm is the index of the most activated output term, or -1 if no
	// rule fired.
	BestTerm int
}

// Infer runs fuzzification, rule evaluation, aggregation and
// defuzzification for the given crisp inputs (one per input variable, in
// order; values are clamped to each variable's universe).
func (e *Engine) Infer(inputs ...float64) (float64, error) {
	res, err := e.InferDetail(inputs...)
	if err != nil {
		return 0, err
	}
	return res.Crisp, nil
}

// InferDetail is Infer returning the full inference trace. Inputs are
// clamped to their universes (an out-of-range crisp value is simply the
// nearest edge, as the paper treats out-of-range measurements); NaN carries
// no such nearest value and is rejected.
func (e *Engine) InferDetail(inputs ...float64) (Result, error) {
	if len(inputs) != len(e.inputs) {
		return Result{}, fmt.Errorf("fuzzy: engine %q: got %d inputs, want %d", e.name, len(inputs), len(e.inputs))
	}
	for i, x := range inputs {
		if math.IsNaN(x) {
			return Result{}, fmt.Errorf("fuzzy: engine %q: input %d (%s) is NaN", e.name, i, e.inputs[i].Name)
		}
	}

	// Fuzzify every input once; rules then index into the grade tables.
	grades := make([][]float64, len(e.inputs))
	for i, v := range e.inputs {
		grades[i] = v.Fuzzify(inputs[i])
	}

	ruleStrength := make([]float64, len(e.rules))
	termStrength := make([]float64, len(e.output.Terms))
	for ri, r := range e.rules {
		s := grades[0][r.When[0]]
		for vi := 1; vi < len(r.When); vi++ {
			if s == 0 {
				break // conjunction cannot recover once any AND operand is 0
			}
			s = e.and(s, grades[vi][r.When[vi]])
		}
		ruleStrength[ri] = s
		if s > termStrength[r.Then] {
			termStrength[r.Then] = s
		}
	}

	best := -1
	bestS := 0.0
	for ti, s := range termStrength {
		if s > bestS {
			bestS = s
			best = ti
		}
	}

	crisp, err := e.defuzzify(termStrength)
	if err != nil {
		return Result{}, fmt.Errorf("fuzzy: engine %q: %w", e.name, err)
	}
	return Result{
		Crisp:        crisp,
		RuleStrength: ruleStrength,
		TermStrength: termStrength,
		BestTerm:     best,
	}, nil
}

// DescribeRule renders rule ri with variable and term names, e.g.
// "IF Sp is Sl AND An is St AND Sr is Me THEN Cv is Cv9".
func (e *Engine) DescribeRule(ri int) (string, error) {
	if ri < 0 || ri >= len(e.rules) {
		return "", fmt.Errorf("fuzzy: engine %q has no rule %d", e.name, ri)
	}
	r := e.rules[ri]
	var b strings.Builder
	b.WriteString("IF ")
	for vi, w := range r.When {
		if vi > 0 {
			b.WriteString(" AND ")
		}
		fmt.Fprintf(&b, "%s is %s", e.inputs[vi].Name, e.inputs[vi].Terms[w].Name)
	}
	fmt.Fprintf(&b, " THEN %s is %s", e.output.Name, e.output.Terms[r.Then].Name)
	return b.String(), nil
}
