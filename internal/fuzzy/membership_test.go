package fuzzy

import (
	"math"
	"testing"
	"testing/quick"
)

func TestTriangularGrade(t *testing.T) {
	tri := Tri(60, 60, 60) // the paper's "Middle" speed term
	tests := []struct {
		name string
		x    float64
		want float64
	}{
		{name: "peak", x: 60, want: 1},
		{name: "left zero", x: 0, want: 0},
		{name: "right zero", x: 120, want: 0},
		{name: "left mid", x: 30, want: 0.5},
		{name: "right mid", x: 90, want: 0.5},
		{name: "left quarter", x: 15, want: 0.25},
		{name: "beyond left", x: -10, want: 0},
		{name: "beyond right", x: 150, want: 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tri.Grade(tt.x); math.Abs(got-tt.want) > 1e-12 {
				t.Errorf("Grade(%v) = %v, want %v", tt.x, got, tt.want)
			}
		})
	}
}

func TestTriangularZeroWidthEdges(t *testing.T) {
	// "Slow" in the paper peaks at 0 with a vertical left edge.
	sl := Tri(0, 0, 60)
	if got := sl.Grade(0); got != 1 {
		t.Errorf("Grade at peak with zero left width = %v, want 1", got)
	}
	if got := sl.Grade(-1); got != 0 {
		t.Errorf("Grade left of vertical edge = %v, want 0", got)
	}
	if got := sl.Grade(30); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("Grade(30) = %v, want 0.5", got)
	}

	both := Tri(5, 0, 0) // crisp singleton
	if got := both.Grade(5); got != 1 {
		t.Errorf("singleton Grade(5) = %v, want 1", got)
	}
	for _, x := range []float64{4.999, 5.001} {
		if got := both.Grade(x); got != 0 {
			t.Errorf("singleton Grade(%v) = %v, want 0", x, got)
		}
	}
}

func TestTriangularPeakAndSupport(t *testing.T) {
	tri := Tri(45, 45, 45)
	if got := tri.Peak(); got != 45 {
		t.Errorf("Peak = %v, want 45", got)
	}
	lo, hi := tri.Support()
	if lo != 0 || hi != 90 {
		t.Errorf("Support = [%v, %v], want [0, 90]", lo, hi)
	}
}

func TestTriPanicsOnNegativeWidth(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Tri with negative width did not panic")
		}
	}()
	Tri(0, -1, 1)
}

func TestTriangularValidate(t *testing.T) {
	tests := []struct {
		name    string
		mf      Triangular
		wantErr bool
	}{
		{name: "ok", mf: Triangular{Center: 1, LeftWidth: 1, RightWidth: 1}},
		{name: "zero widths ok", mf: Triangular{Center: 0}},
		{name: "negative left", mf: Triangular{LeftWidth: -1}, wantErr: true},
		{name: "negative right", mf: Triangular{RightWidth: -1}, wantErr: true},
		{name: "NaN center", mf: Triangular{Center: math.NaN()}, wantErr: true},
		{name: "Inf center", mf: Triangular{Center: math.Inf(1)}, wantErr: true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := tt.mf.Validate()
			if (err != nil) != tt.wantErr {
				t.Errorf("Validate() error = %v, wantErr %v", err, tt.wantErr)
			}
		})
	}
}

func TestTrapezoidalGrade(t *testing.T) {
	// The paper's "Back1" angle term: plateau [-180, -135], zero at -90.
	b1 := Trap(-180, -135, 0, 45)
	tests := []struct {
		name string
		x    float64
		want float64
	}{
		{name: "plateau left edge", x: -180, want: 1},
		{name: "plateau right edge", x: -135, want: 1},
		{name: "plateau interior", x: -150, want: 1},
		{name: "falling mid", x: -112.5, want: 0.5},
		{name: "zero", x: -90, want: 0},
		{name: "beyond", x: 0, want: 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := b1.Grade(tt.x); math.Abs(got-tt.want) > 1e-12 {
				t.Errorf("Grade(%v) = %v, want %v", tt.x, got, tt.want)
			}
		})
	}
}

func TestTrapezoidalRisingSide(t *testing.T) {
	a := Trap(0.6, 1, 0.3, 0) // the paper's "Accept" output term
	tests := []struct {
		x, want float64
	}{
		{x: 0.3, want: 0},
		{x: 0.45, want: 0.5},
		{x: 0.6, want: 1},
		{x: 1, want: 1},
		{x: 1.5, want: 0},
	}
	for _, tt := range tests {
		if got := a.Grade(tt.x); math.Abs(got-tt.want) > 1e-12 {
			t.Errorf("Grade(%v) = %v, want %v", tt.x, got, tt.want)
		}
	}
}

func TestTrapezoidalPeak(t *testing.T) {
	if got := Trap(2, 4, 1, 1).Peak(); got != 3 {
		t.Errorf("Peak = %v, want 3", got)
	}
}

func TestTrapPanicsOnInvertedPlateau(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Trap with inverted plateau did not panic")
		}
	}()
	Trap(2, 1, 0, 0)
}

func TestTrapezoidalValidate(t *testing.T) {
	tests := []struct {
		name    string
		mf      Trapezoidal
		wantErr bool
	}{
		{name: "ok", mf: Trapezoidal{Left: 0, Right: 1, LeftWidth: 1, RightWidth: 1}},
		{name: "left shoulder ok", mf: Trapezoidal{Left: math.Inf(-1), Right: 0, RightWidth: 1}},
		{name: "right shoulder ok", mf: Trapezoidal{Left: 0, Right: math.Inf(1), LeftWidth: 1}},
		{name: "inverted", mf: Trapezoidal{Left: 2, Right: 1}, wantErr: true},
		{name: "negative width", mf: Trapezoidal{Right: 1, LeftWidth: -1}, wantErr: true},
		{name: "NaN", mf: Trapezoidal{Left: math.NaN(), Right: 1}, wantErr: true},
		{name: "plus-inf left", mf: Trapezoidal{Left: math.Inf(1), Right: math.Inf(1)}, wantErr: true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := tt.mf.Validate()
			if (err != nil) != tt.wantErr {
				t.Errorf("Validate() error = %v, wantErr %v", err, tt.wantErr)
			}
		})
	}
}

func TestShoulders(t *testing.T) {
	ls := LeftShoulder(10, 20)
	for _, tt := range []struct{ x, want float64 }{
		{x: -1000, want: 1},
		{x: 10, want: 1},
		{x: 15, want: 0.5},
		{x: 20, want: 0},
		{x: 30, want: 0},
	} {
		if got := ls.Grade(tt.x); math.Abs(got-tt.want) > 1e-12 {
			t.Errorf("LeftShoulder.Grade(%v) = %v, want %v", tt.x, got, tt.want)
		}
	}
	if got := ls.Peak(); got != 10 {
		t.Errorf("LeftShoulder.Peak = %v, want finite edge 10", got)
	}

	rs := RightShoulder(10, 20)
	for _, tt := range []struct{ x, want float64 }{
		{x: 5, want: 0},
		{x: 10, want: 0},
		{x: 15, want: 0.5},
		{x: 20, want: 1},
		{x: 1000, want: 1},
	} {
		if got := rs.Grade(tt.x); math.Abs(got-tt.want) > 1e-12 {
			t.Errorf("RightShoulder.Grade(%v) = %v, want %v", tt.x, got, tt.want)
		}
	}
	if got := rs.Peak(); got != 20 {
		t.Errorf("RightShoulder.Peak = %v, want finite edge 20", got)
	}
}

func TestShoulderPanics(t *testing.T) {
	t.Run("left", func(t *testing.T) {
		defer func() {
			if recover() == nil {
				t.Error("LeftShoulder(20,10) did not panic")
			}
		}()
		LeftShoulder(20, 10)
	})
	t.Run("right", func(t *testing.T) {
		defer func() {
			if recover() == nil {
				t.Error("RightShoulder(20,10) did not panic")
			}
		}()
		RightShoulder(20, 10)
	})
}

// Property: every membership grade is in [0, 1] for any finite input.
func TestQuickGradesInUnitInterval(t *testing.T) {
	mfs := []MF{
		Tri(0, 0, 60),
		Tri(60, 60, 60),
		Trap(-180, -135, 0, 45),
		LeftShoulder(0, 1),
		RightShoulder(0.3, 0.6),
	}
	f := func(raw float64) bool {
		if math.IsNaN(raw) || math.IsInf(raw, 0) {
			return true
		}
		for _, mf := range mfs {
			g := mf.Grade(raw)
			if g < 0 || g > 1 || math.IsNaN(g) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: triangular grade is symmetric for symmetric widths.
func TestQuickTriangularSymmetry(t *testing.T) {
	tri := Tri(0, 10, 10)
	f := func(d float64) bool {
		d = math.Mod(math.Abs(d), 20)
		return math.Abs(tri.Grade(d)-tri.Grade(-d)) < 1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: grade is monotone non-increasing moving away from the peak.
func TestQuickTriangularMonotone(t *testing.T) {
	tri := Tri(5, 3, 7)
	f := func(a, b float64) bool {
		a = 5 + math.Mod(math.Abs(a), 10)
		b = 5 + math.Mod(math.Abs(b), 10)
		if a > b {
			a, b = b, a
		}
		return tri.Grade(a) >= tri.Grade(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
