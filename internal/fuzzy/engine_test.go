package fuzzy

import (
	"errors"
	"math"
	"strings"
	"testing"
	"testing/quick"
)

// tipperEngine builds a tiny 2-input engine with a known control surface:
// the classic "tipping" toy problem, small enough to verify by hand.
func tipperEngine(t testing.TB, opts ...Option) *Engine {
	t.Helper()
	service := MustVariable("service", 0, 10,
		Term{Name: "poor", MF: Tri(0, 0, 5)},
		Term{Name: "good", MF: Tri(5, 5, 5)},
		Term{Name: "great", MF: Tri(10, 5, 0)},
	)
	food := MustVariable("food", 0, 10,
		Term{Name: "bad", MF: Tri(0, 0, 10)},
		Term{Name: "tasty", MF: Tri(10, 10, 0)},
	)
	tip := MustVariable("tip", 0, 30,
		Term{Name: "low", MF: Tri(5, 5, 5)},
		Term{Name: "medium", MF: Tri(15, 5, 5)},
		Term{Name: "high", MF: Tri(25, 5, 5)},
	)
	rules, err := RuleTable([]Variable{service, food}, tip, []string{
		// service=poor:  food=bad, food=tasty
		"low", "low",
		// service=good:
		"medium", "medium",
		// service=great:
		"medium", "high",
	})
	if err != nil {
		t.Fatalf("RuleTable: %v", err)
	}
	e, err := NewEngine("tipper", []Variable{service, food}, tip, rules, opts...)
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	return e
}

func TestEngineInferKnownPoints(t *testing.T) {
	e := tipperEngine(t)
	tests := []struct {
		name    string
		service float64
		food    float64
		want    float64
		tol     float64
	}{
		// Only "low" fires: centroid of the full low triangle = 5.
		{name: "worst case", service: 0, food: 0, want: 5, tol: 0.05},
		// Only "medium" fires fully.
		{name: "good service", service: 5, food: 5, want: 15, tol: 0.05},
		// Only "high" fires fully.
		{name: "best case", service: 10, food: 10, want: 25, tol: 0.05},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, err := e.Infer(tt.service, tt.food)
			if err != nil {
				t.Fatalf("Infer: %v", err)
			}
			if math.Abs(got-tt.want) > tt.tol {
				t.Errorf("Infer(%v, %v) = %v, want %v +/- %v", tt.service, tt.food, got, tt.want, tt.tol)
			}
		})
	}
}

func TestEngineInferMonotoneInService(t *testing.T) {
	e := tipperEngine(t)
	prev := -1.0
	for s := 0.0; s <= 10; s += 0.5 {
		got, err := e.Infer(s, 10)
		if err != nil {
			t.Fatalf("Infer(%v, 10): %v", s, err)
		}
		if got < prev-1e-9 {
			t.Fatalf("tip not monotone in service: f(%v)=%v < previous %v", s, got, prev)
		}
		prev = got
	}
}

func TestEngineInferDetail(t *testing.T) {
	e := tipperEngine(t)
	res, err := e.InferDetail(2.5, 0)
	if err != nil {
		t.Fatalf("InferDetail: %v", err)
	}
	if len(res.RuleStrength) != 6 {
		t.Fatalf("RuleStrength has %d entries, want 6", len(res.RuleStrength))
	}
	if len(res.TermStrength) != 3 {
		t.Fatalf("TermStrength has %d entries, want 3", len(res.TermStrength))
	}
	// service=2.5 -> poor=0.5, good=0.5; food=0 -> bad=1, tasty=0.
	// Fired rules: (poor,bad)->low @0.5, (good,bad)->medium @0.5.
	if math.Abs(res.TermStrength[0]-0.5) > 1e-12 {
		t.Errorf("low strength = %v, want 0.5", res.TermStrength[0])
	}
	if math.Abs(res.TermStrength[1]-0.5) > 1e-12 {
		t.Errorf("medium strength = %v, want 0.5", res.TermStrength[1])
	}
	if res.TermStrength[2] != 0 {
		t.Errorf("high strength = %v, want 0", res.TermStrength[2])
	}
	if res.BestTerm != 0 && res.BestTerm != 1 {
		t.Errorf("BestTerm = %d, want 0 or 1", res.BestTerm)
	}
	// Symmetric activation of low (peak 5) and medium (peak 15): centroid 10.
	if math.Abs(res.Crisp-10) > 0.05 {
		t.Errorf("Crisp = %v, want ~10", res.Crisp)
	}
}

func TestEngineWrongArity(t *testing.T) {
	e := tipperEngine(t)
	if _, err := e.Infer(1); err == nil {
		t.Error("Infer with 1 input did not error")
	}
	if _, err := e.Infer(1, 2, 3); err == nil {
		t.Error("Infer with 3 inputs did not error")
	}
}

func TestEngineClampsOutOfRangeInputs(t *testing.T) {
	e := tipperEngine(t)
	inRange, err := e.Infer(10, 10)
	if err != nil {
		t.Fatalf("Infer: %v", err)
	}
	clamped, err := e.Infer(1e9, 1e9)
	if err != nil {
		t.Fatalf("Infer clamped: %v", err)
	}
	if inRange != clamped {
		t.Errorf("clamped inference %v differs from edge inference %v", clamped, inRange)
	}
}

func TestEngineAccessors(t *testing.T) {
	e := tipperEngine(t)
	if e.Name() != "tipper" {
		t.Errorf("Name = %q", e.Name())
	}
	if got := len(e.Inputs()); got != 2 {
		t.Errorf("len(Inputs) = %d, want 2", got)
	}
	if got := e.Output().Name; got != "tip" {
		t.Errorf("Output().Name = %q, want tip", got)
	}
	if got := len(e.Rules()); got != 6 {
		t.Errorf("len(Rules) = %d, want 6", got)
	}
	// Mutating the returned copies must not affect the engine.
	e.Rules()[0].Then = 99
	if e.rules[0].Then == 99 {
		t.Error("Rules() returned a view into engine state")
	}
}

func TestDescribeRule(t *testing.T) {
	e := tipperEngine(t)
	got, err := e.DescribeRule(0)
	if err != nil {
		t.Fatalf("DescribeRule: %v", err)
	}
	want := "IF service is poor AND food is bad THEN tip is low"
	if got != want {
		t.Errorf("DescribeRule(0) = %q, want %q", got, want)
	}
	if _, err := e.DescribeRule(99); err == nil {
		t.Error("DescribeRule(99) did not error")
	}
	if _, err := e.DescribeRule(-1); err == nil {
		t.Error("DescribeRule(-1) did not error")
	}
}

func TestRuleString(t *testing.T) {
	r := Rule{When: []int{1, 2}, Then: 0}
	got := r.String()
	if !strings.Contains(got, "in0=1") || !strings.Contains(got, "in1=2") || !strings.Contains(got, "out=0") {
		t.Errorf("Rule.String() = %q", got)
	}
}

func TestNewEngineValidation(t *testing.T) {
	in := MustVariable("in", 0, 1,
		Term{Name: "lo", MF: Tri(0, 0, 1)},
		Term{Name: "hi", MF: Tri(1, 1, 0)},
	)
	out := MustVariable("out", 0, 1,
		Term{Name: "a", MF: Tri(0, 0, 1)},
		Term{Name: "b", MF: Tri(1, 1, 0)},
	)
	okRules := []Rule{
		{When: []int{0}, Then: 0},
		{When: []int{1}, Then: 1},
	}

	tests := []struct {
		name    string
		ename   string
		inputs  []Variable
		rules   []Rule
		wantErr string
	}{
		{name: "valid", ename: "e", inputs: []Variable{in}, rules: okRules},
		{name: "empty name", ename: "", inputs: []Variable{in}, rules: okRules, wantErr: "empty name"},
		{name: "no inputs", ename: "e", rules: okRules, wantErr: "no input"},
		{name: "no rules", ename: "e", inputs: []Variable{in}, wantErr: "empty"},
		{
			name: "bad arity", ename: "e", inputs: []Variable{in},
			rules: []Rule{{When: []int{0, 0}, Then: 0}, {When: []int{1}, Then: 1}}, wantErr: "antecedents",
		},
		{
			name: "bad antecedent index", ename: "e", inputs: []Variable{in},
			rules: []Rule{{When: []int{5}, Then: 0}, {When: []int{1}, Then: 1}}, wantErr: "references term",
		},
		{
			name: "bad consequent index", ename: "e", inputs: []Variable{in},
			rules: []Rule{{When: []int{0}, Then: 9}, {When: []int{1}, Then: 1}}, wantErr: "consequent",
		},
		{
			name: "incomplete", ename: "e", inputs: []Variable{in},
			rules: []Rule{{When: []int{0}, Then: 0}}, wantErr: "complete cross product",
		},
		{
			name: "duplicate antecedents", ename: "e", inputs: []Variable{in},
			rules: []Rule{{When: []int{0}, Then: 0}, {When: []int{0}, Then: 1}}, wantErr: "share the same antecedents",
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := NewEngine(tt.ename, tt.inputs, out, tt.rules)
			if tt.wantErr == "" {
				if err != nil {
					t.Fatalf("NewEngine: %v", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tt.wantErr) {
				t.Errorf("NewEngine error = %v, want containing %q", err, tt.wantErr)
			}
		})
	}
}

func TestMustEnginePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustEngine with invalid spec did not panic")
		}
	}()
	MustEngine("", nil, Variable{}, nil)
}

func TestRuleTableErrors(t *testing.T) {
	in := MustVariable("in", 0, 1,
		Term{Name: "lo", MF: Tri(0, 0, 1)},
		Term{Name: "hi", MF: Tri(1, 1, 0)},
	)
	out := MustVariable("out", 0, 1, Term{Name: "a", MF: Tri(0, 0, 1)})

	if _, err := RuleTable([]Variable{in}, out, []string{"a"}); err == nil {
		t.Error("RuleTable with wrong row count did not error")
	}
	if _, err := RuleTable([]Variable{in}, out, []string{"a", "nope"}); err == nil {
		t.Error("RuleTable with unknown consequent did not error")
	}
}

func TestRuleTableOrdering(t *testing.T) {
	a := MustVariable("a", 0, 1,
		Term{Name: "a0", MF: Tri(0, 0, 1)},
		Term{Name: "a1", MF: Tri(1, 1, 0)},
	)
	b := MustVariable("b", 0, 1,
		Term{Name: "b0", MF: Tri(0, 0, 1)},
		Term{Name: "b1", MF: Tri(1, 1, 0)},
		Term{Name: "b2", MF: Tri(0.5, 0.5, 0.5)},
	)
	out := MustVariable("o", 0, 1,
		Term{Name: "x", MF: Tri(0, 0, 1)},
		Term{Name: "y", MF: Tri(1, 1, 0)},
	)
	rules, err := RuleTable([]Variable{a, b}, out, []string{
		"x", "y", "x", // a0 x {b0,b1,b2}
		"y", "x", "y", // a1 x {b0,b1,b2}
	})
	if err != nil {
		t.Fatalf("RuleTable: %v", err)
	}
	want := []Rule{
		{When: []int{0, 0}, Then: 0},
		{When: []int{0, 1}, Then: 1},
		{When: []int{0, 2}, Then: 0},
		{When: []int{1, 0}, Then: 1},
		{When: []int{1, 1}, Then: 0},
		{When: []int{1, 2}, Then: 1},
	}
	if len(rules) != len(want) {
		t.Fatalf("got %d rules, want %d", len(rules), len(want))
	}
	for i := range want {
		if rules[i].Then != want[i].Then || rules[i].When[0] != want[i].When[0] || rules[i].When[1] != want[i].When[1] {
			t.Errorf("rule %d = %v, want %v", i, rules[i], want[i])
		}
	}
}

func TestEngineProductAND(t *testing.T) {
	eMin := tipperEngine(t)
	eProd := tipperEngine(t, WithAND(ProductAND))
	// At a point where both grades are fractional the two conjunctions
	// must differ; at corners they must agree.
	vMin, err := eMin.Infer(2.5, 5)
	if err != nil {
		t.Fatal(err)
	}
	vProd, err := eProd.Infer(2.5, 5)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(vMin-vProd) < 1e-6 {
		t.Errorf("min and product AND agree suspiciously exactly: %v vs %v", vMin, vProd)
	}
	cMin, err := eMin.Infer(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	cProd, err := eProd.Infer(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(cMin-cProd) > 1e-9 {
		t.Errorf("min and product AND disagree at crisp corner: %v vs %v", cMin, cProd)
	}
}

func TestEngineWithSamplesFloor(t *testing.T) {
	e := tipperEngine(t, WithSamples(1))
	if e.samples < minSamples {
		t.Errorf("samples = %d, want at least %d", e.samples, minSamples)
	}
}

func TestEngineNilOperators(t *testing.T) {
	service := MustVariable("s", 0, 1, Term{Name: "x", MF: Tri(0, 0, 1)})
	out := MustVariable("o", 0, 1, Term{Name: "y", MF: Tri(0, 0, 1)})
	rules := []Rule{{When: []int{0}, Then: 0}}
	if _, err := NewEngine("e", []Variable{service}, out, rules, WithAND(nil)); err == nil {
		t.Error("nil AND accepted")
	}
	if _, err := NewEngine("e", []Variable{service}, out, rules, WithDefuzzifier(nil)); err == nil {
		t.Error("nil defuzzifier accepted")
	}
}

// Property: the crisp output always lies inside the output universe.
func TestQuickInferWithinUniverse(t *testing.T) {
	e := tipperEngine(t)
	f := func(s, fd float64) bool {
		sv := math.Mod(math.Abs(s), 10)
		fv := math.Mod(math.Abs(fd), 10)
		got, err := e.Infer(sv, fv)
		if err != nil {
			return false
		}
		return got >= 0 && got <= 30
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: inference is deterministic.
func TestQuickInferDeterministic(t *testing.T) {
	e := tipperEngine(t)
	f := func(s, fd float64) bool {
		sv := math.Mod(math.Abs(s), 10)
		fv := math.Mod(math.Abs(fd), 10)
		a, err1 := e.Infer(sv, fv)
		b, err2 := e.Infer(sv, fv)
		return err1 == nil && err2 == nil && a == b
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: with a complete Ruspini rule base some rule always fires, so
// ErrNoRuleFired never escapes for in-universe inputs.
func TestQuickAlwaysFires(t *testing.T) {
	e := tipperEngine(t)
	f := func(s, fd float64) bool {
		sv := math.Mod(math.Abs(s), 10)
		fv := math.Mod(math.Abs(fd), 10)
		_, err := e.Infer(sv, fv)
		return !errors.Is(err, ErrNoRuleFired)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkEngineInfer(b *testing.B) {
	e := tipperEngine(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Infer(3.7, 6.2); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEngineInferHeight(b *testing.B) {
	e := tipperEngine(b, WithDefuzzifier(Height{}))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Infer(3.7, 6.2); err != nil {
			b.Fatal(err)
		}
	}
}
