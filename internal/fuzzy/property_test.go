package fuzzy

import (
	"math"
	"testing"
	"testing/quick"
)

// Property-based tests of the Mamdani engine invariants the rest of the
// repository leans on: membership grades stay in [0,1], defuzzified output
// stays inside the consequent universe, and degenerate inputs (NaN,
// out-of-universe crisp values) are rejected or clamped deterministically.

// quickCfg spreads generated float64 arguments over a wide range including
// far-out-of-universe values.
func quickCfg() *quick.Config { return &quick.Config{MaxCount: 500} }

func TestPropertyGradesClamped(t *testing.T) {
	e := tipperEngine(t)
	vars := append(e.Inputs(), e.Output())
	prop := func(x float64, scale uint8) bool {
		// Stretch inputs across several universes' worth of range.
		x = (x - 0.5) * float64(scale)
		for _, v := range vars {
			for _, g := range v.Fuzzify(x) {
				if math.IsNaN(g) || g < 0 || g > 1 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, quickCfg()); err != nil {
		t.Error(err)
	}
}

func TestPropertyOutputInsideConsequentUniverse(t *testing.T) {
	e := tipperEngine(t)
	out := e.Output()
	prop := func(service, food float64, scale uint8) bool {
		service = (service - 0.5) * float64(scale)
		food = (food - 0.5) * float64(scale)
		crisp, err := e.Infer(service, food)
		if err != nil {
			return false // complete rule base: some rule always fires
		}
		return crisp >= out.Min && crisp <= out.Max
	}
	if err := quick.Check(prop, quickCfg()); err != nil {
		t.Error(err)
	}
}

func TestPropertyRuleStrengthsClamped(t *testing.T) {
	e := tipperEngine(t)
	prop := func(service, food float64) bool {
		res, err := e.InferDetail(service*10, food*10)
		if err != nil {
			return false
		}
		for _, s := range res.RuleStrength {
			if math.IsNaN(s) || s < 0 || s > 1 {
				return false
			}
		}
		for _, s := range res.TermStrength {
			if math.IsNaN(s) || s < 0 || s > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, quickCfg()); err != nil {
		t.Error(err)
	}
}

func TestPropertyOutOfUniverseEqualsEdge(t *testing.T) {
	// Clamping is deterministic: any input beyond an edge must produce
	// exactly the edge's output.
	e := tipperEngine(t)
	atEdge, err := e.Infer(10, 10)
	if err != nil {
		t.Fatal(err)
	}
	prop := func(excess float64) bool {
		if math.IsNaN(excess) {
			return true
		}
		beyond := 10 + math.Abs(excess)
		got, err := e.Infer(beyond, beyond)
		return err == nil && got == atEdge
	}
	if err := quick.Check(prop, quickCfg()); err != nil {
		t.Error(err)
	}
	// Infinities clamp too.
	if got, err := e.Infer(math.Inf(1), math.Inf(1)); err != nil || got != atEdge {
		t.Errorf("Infer(+Inf, +Inf) = %v, %v; want %v, nil", got, err, atEdge)
	}
}

func TestPropertyNaNRejected(t *testing.T) {
	e := tipperEngine(t)
	for _, in := range [][2]float64{
		{math.NaN(), 5},
		{5, math.NaN()},
		{math.NaN(), math.NaN()},
	} {
		if _, err := e.Infer(in[0], in[1]); err == nil {
			t.Errorf("Infer(%v, %v) accepted NaN", in[0], in[1])
		}
		if _, err := e.InferDetail(in[0], in[1]); err == nil {
			t.Errorf("InferDetail(%v, %v) accepted NaN", in[0], in[1])
		}
	}
}

func TestPropertySurfaceMatchesEngineInvariants(t *testing.T) {
	e, s := tipperSurface(t, 21)
	out := e.Output()
	prop := func(service, food float64, scale uint8) bool {
		service = (service - 0.5) * float64(scale)
		food = (food - 0.5) * float64(scale)
		crisp, err := s.Infer(service, food)
		if err != nil {
			return false
		}
		return crisp >= out.Min && crisp <= out.Max
	}
	if err := quick.Check(prop, quickCfg()); err != nil {
		t.Error(err)
	}
}

func TestCentroidFastPathMatchesGeneralPath(t *testing.T) {
	// The table-backed centroid must be bit-identical to Centroid.Defuzz.
	e := tipperEngine(t)
	if e.gradeTab == nil {
		t.Fatal("default engine did not build the centroid grade table")
	}
	prop := func(service, food float64) bool {
		res, err := e.InferDetail(service*10, food*10)
		if err != nil {
			return false
		}
		want, err := Centroid{}.Defuzz(e.output, res.TermStrength, e.samples)
		if err != nil {
			return false
		}
		return res.Crisp == want
	}
	if err := quick.Check(prop, quickCfg()); err != nil {
		t.Error(err)
	}
}
