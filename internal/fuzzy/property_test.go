package fuzzy

import (
	"math"
	"testing"
	"testing/quick"
)

// Property-based tests of the Mamdani engine invariants the rest of the
// repository leans on: membership grades stay in [0,1], defuzzified output
// stays inside the consequent universe, and degenerate inputs (NaN,
// out-of-universe crisp values) are rejected or clamped deterministically.

// quickCfg spreads generated float64 arguments over a wide range including
// far-out-of-universe values.
func quickCfg() *quick.Config { return &quick.Config{MaxCount: 500} }

func TestPropertyGradesClamped(t *testing.T) {
	e := tipperEngine(t)
	vars := append(e.Inputs(), e.Output())
	prop := func(x float64, scale uint8) bool {
		// Stretch inputs across several universes' worth of range.
		x = (x - 0.5) * float64(scale)
		for _, v := range vars {
			for _, g := range v.Fuzzify(x) {
				if math.IsNaN(g) || g < 0 || g > 1 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, quickCfg()); err != nil {
		t.Error(err)
	}
}

func TestPropertyOutputInsideConsequentUniverse(t *testing.T) {
	e := tipperEngine(t)
	out := e.Output()
	prop := func(service, food float64, scale uint8) bool {
		service = (service - 0.5) * float64(scale)
		food = (food - 0.5) * float64(scale)
		crisp, err := e.Infer(service, food)
		if err != nil {
			return false // complete rule base: some rule always fires
		}
		return crisp >= out.Min && crisp <= out.Max
	}
	if err := quick.Check(prop, quickCfg()); err != nil {
		t.Error(err)
	}
}

func TestPropertyRuleStrengthsClamped(t *testing.T) {
	e := tipperEngine(t)
	prop := func(service, food float64) bool {
		res, err := e.InferDetail(service*10, food*10)
		if err != nil {
			return false
		}
		for _, s := range res.RuleStrength {
			if math.IsNaN(s) || s < 0 || s > 1 {
				return false
			}
		}
		for _, s := range res.TermStrength {
			if math.IsNaN(s) || s < 0 || s > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, quickCfg()); err != nil {
		t.Error(err)
	}
}

func TestPropertyOutOfUniverseEqualsEdge(t *testing.T) {
	// Clamping is deterministic: any input beyond an edge must produce
	// exactly the edge's output.
	e := tipperEngine(t)
	atEdge, err := e.Infer(10, 10)
	if err != nil {
		t.Fatal(err)
	}
	prop := func(excess float64) bool {
		if math.IsNaN(excess) {
			return true
		}
		beyond := 10 + math.Abs(excess)
		got, err := e.Infer(beyond, beyond)
		return err == nil && got == atEdge
	}
	if err := quick.Check(prop, quickCfg()); err != nil {
		t.Error(err)
	}
	// Infinities clamp too.
	if got, err := e.Infer(math.Inf(1), math.Inf(1)); err != nil || got != atEdge {
		t.Errorf("Infer(+Inf, +Inf) = %v, %v; want %v, nil", got, err, atEdge)
	}
}

func TestPropertyNaNRejected(t *testing.T) {
	e := tipperEngine(t)
	for _, in := range [][2]float64{
		{math.NaN(), 5},
		{5, math.NaN()},
		{math.NaN(), math.NaN()},
	} {
		if _, err := e.Infer(in[0], in[1]); err == nil {
			t.Errorf("Infer(%v, %v) accepted NaN", in[0], in[1])
		}
		if _, err := e.InferDetail(in[0], in[1]); err == nil {
			t.Errorf("InferDetail(%v, %v) accepted NaN", in[0], in[1])
		}
	}
}

func TestPropertySurfaceMatchesEngineInvariants(t *testing.T) {
	e, s := tipperSurface(t, 21)
	out := e.Output()
	prop := func(service, food float64, scale uint8) bool {
		service = (service - 0.5) * float64(scale)
		food = (food - 0.5) * float64(scale)
		crisp, err := s.Infer(service, food)
		if err != nil {
			return false
		}
		return crisp >= out.Min && crisp <= out.Max
	}
	if err := quick.Check(prop, quickCfg()); err != nil {
		t.Error(err)
	}
}

// TestPropertyTierResolutionLadder sweeps a dense input lattice through a
// surface at each resolution of the tiered selector's ladder (see
// core.DefaultTierConfig), asserting the interpolation error against exact
// inference stays inside the documented per-resolution bound and never
// grows as the resolution rises — the property that makes a promotion
// ladder meaningful. Bounds are measured maxima with ~2x headroom on the
// tipper's 0-30 output universe.
func TestPropertyTierResolutionLadder(t *testing.T) {
	bounds := map[int]float64{9: 1.4, 17: 0.8, 33: 0.4, 65: 0.2}
	e := tipperEngine(t)
	prev := math.Inf(1)
	for _, res := range []int{9, 17, 33, 65} {
		s, err := NewSurface(e, res)
		if err != nil {
			t.Fatal(err)
		}
		worst := 0.0
		const ticks = 160 // dense and co-prime-ish with every grid above
		for i := 0; i <= ticks; i++ {
			for j := 0; j <= ticks; j++ {
				service := 10 * float64(i) / ticks
				food := 10 * float64(j) / ticks
				want, err := e.Infer(service, food)
				if err != nil {
					t.Fatal(err)
				}
				got, err := s.Infer(service, food)
				if err != nil {
					t.Fatal(err)
				}
				if d := math.Abs(got - want); d > worst {
					worst = d
				}
			}
		}
		if worst > bounds[res] {
			t.Errorf("resolution %d: max lattice error %v > documented bound %v", res, worst, bounds[res])
		}
		if worst > prev {
			t.Errorf("resolution %d: error %v grew over the coarser tier's %v", res, worst, prev)
		}
		prev = worst
		t.Logf("resolution %2d: max lattice error %.4f (bound %v)", res, worst, bounds[res])
	}
}

func TestCentroidFastPathMatchesGeneralPath(t *testing.T) {
	// The table-backed centroid must be bit-identical to Centroid.Defuzz.
	e := tipperEngine(t)
	if e.gradeTab == nil {
		t.Fatal("default engine did not build the centroid grade table")
	}
	prop := func(service, food float64) bool {
		res, err := e.InferDetail(service*10, food*10)
		if err != nil {
			return false
		}
		want, err := Centroid{}.Defuzz(e.output, res.TermStrength, e.samples)
		if err != nil {
			return false
		}
		return res.Crisp == want
	}
	if err := quick.Check(prop, quickCfg()); err != nil {
		t.Error(err)
	}
}
