package fuzzy

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

// symOut is a symmetric three-term output variable over [-1, 1], shaped
// like the paper's A/R variable but simplified.
func symOut(t testing.TB) Variable {
	t.Helper()
	v, err := NewVariable("out", -1, 1,
		Term{Name: "neg", MF: Tri(-1, 0, 1)},
		Term{Name: "zero", MF: Tri(0, 1, 1)},
		Term{Name: "pos", MF: Tri(1, 1, 0)},
	)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func TestCentroidSingleTerm(t *testing.T) {
	out := symOut(t)
	got, err := Centroid{}.Defuzz(out, []float64{0, 1, 0}, DefaultSamples)
	if err != nil {
		t.Fatalf("Defuzz: %v", err)
	}
	if math.Abs(got) > 1e-9 {
		t.Errorf("centroid of symmetric middle term = %v, want 0", got)
	}
}

func TestCentroidShiftsTowardStrongerTerm(t *testing.T) {
	out := symOut(t)
	got, err := Centroid{}.Defuzz(out, []float64{0.2, 0, 0.8}, DefaultSamples)
	if err != nil {
		t.Fatalf("Defuzz: %v", err)
	}
	if got <= 0 {
		t.Errorf("centroid = %v, want > 0 when positive term dominates", got)
	}
	mirror, err := Centroid{}.Defuzz(out, []float64{0.8, 0, 0.2}, DefaultSamples)
	if err != nil {
		t.Fatalf("Defuzz mirror: %v", err)
	}
	if math.Abs(got+mirror) > 1e-6 {
		t.Errorf("centroid not antisymmetric: %v vs %v", got, mirror)
	}
}

func TestCentroidNoRuleFired(t *testing.T) {
	out := symOut(t)
	_, err := Centroid{}.Defuzz(out, []float64{0, 0, 0}, DefaultSamples)
	if !errors.Is(err, ErrNoRuleFired) {
		t.Errorf("error = %v, want ErrNoRuleFired", err)
	}
}

func TestMeanOfMaxima(t *testing.T) {
	out := symOut(t)
	got, err := MeanOfMaxima{}.Defuzz(out, []float64{0, 0.3, 0.9}, DefaultSamples)
	if err != nil {
		t.Fatalf("Defuzz: %v", err)
	}
	// The pos term (peak at 1) dominates; its clipped top spans
	// [0.1 above grade 0.9 cut]... the maximum plateau is centred well
	// inside the positive half.
	if got < 0.5 {
		t.Errorf("MOM = %v, want in the positive region", got)
	}
}

func TestMeanOfMaximaSymmetricTie(t *testing.T) {
	out := symOut(t)
	got, err := MeanOfMaxima{}.Defuzz(out, []float64{0.5, 0, 0.5}, DefaultSamples)
	if err != nil {
		t.Fatalf("Defuzz: %v", err)
	}
	if math.Abs(got) > 0.01 {
		t.Errorf("MOM of symmetric activations = %v, want ~0", got)
	}
}

func TestMeanOfMaximaNoRuleFired(t *testing.T) {
	out := symOut(t)
	_, err := MeanOfMaxima{}.Defuzz(out, []float64{0, 0, 0}, DefaultSamples)
	if !errors.Is(err, ErrNoRuleFired) {
		t.Errorf("error = %v, want ErrNoRuleFired", err)
	}
}

func TestBisectorEqualsSymmetryPoint(t *testing.T) {
	out := symOut(t)
	got, err := Bisector{}.Defuzz(out, []float64{0, 1, 0}, DefaultSamples)
	if err != nil {
		t.Fatalf("Defuzz: %v", err)
	}
	if math.Abs(got) > 0.01 {
		t.Errorf("bisector of symmetric set = %v, want ~0", got)
	}
}

func TestBisectorNoRuleFired(t *testing.T) {
	out := symOut(t)
	_, err := Bisector{}.Defuzz(out, []float64{0, 0, 0}, DefaultSamples)
	if !errors.Is(err, ErrNoRuleFired) {
		t.Errorf("error = %v, want ErrNoRuleFired", err)
	}
}

func TestHeightDefuzzifier(t *testing.T) {
	out := symOut(t)
	got, err := Height{}.Defuzz(out, []float64{0, 0.5, 0.5}, 0)
	if err != nil {
		t.Fatalf("Defuzz: %v", err)
	}
	// Equal weights on peaks 0 and 1.
	if math.Abs(got-0.5) > 1e-12 {
		t.Errorf("height = %v, want 0.5", got)
	}
}

func TestHeightNoRuleFired(t *testing.T) {
	out := symOut(t)
	_, err := Height{}.Defuzz(out, []float64{0, 0, 0}, 0)
	if !errors.Is(err, ErrNoRuleFired) {
		t.Errorf("error = %v, want ErrNoRuleFired", err)
	}
}

type peaklessMF struct{}

func (peaklessMF) Grade(float64) float64 { return 0.5 }

func TestHeightRejectsPeaklessMF(t *testing.T) {
	out := Variable{Name: "o", Min: 0, Max: 1, Terms: []Term{{Name: "t", MF: peaklessMF{}}}}
	if _, err := (Height{}).Defuzz(out, []float64{1}, 0); err == nil {
		t.Error("height defuzzifier accepted an MF without Peak")
	}
}

func TestHeightSkipsInactiveTerms(t *testing.T) {
	// The peakless term has zero strength, so Height must not consult it.
	out := Variable{Name: "o", Min: 0, Max: 1, Terms: []Term{
		{Name: "dead", MF: peaklessMF{}},
		{Name: "live", MF: Tri(0.75, 0.25, 0.25)},
	}}
	got, err := Height{}.Defuzz(out, []float64{0, 1}, 0)
	if err != nil {
		t.Fatalf("Defuzz: %v", err)
	}
	if got != 0.75 {
		t.Errorf("height = %v, want 0.75", got)
	}
}

// Property: all integrating defuzzifiers stay within the output universe
// for arbitrary activation vectors.
func TestQuickDefuzzifiersWithinUniverse(t *testing.T) {
	out := symOut(t)
	defuzzers := []Defuzzifier{Centroid{}, MeanOfMaxima{}, Bisector{}, Height{}}
	f := func(a, b, c float64) bool {
		clampUnit := func(s float64) float64 { return math.Mod(math.Abs(s), 1) }
		strength := []float64{clampUnit(a), clampUnit(b), clampUnit(c)}
		if strength[0]+strength[1]+strength[2] == 0 {
			return true
		}
		for _, d := range defuzzers {
			v, err := d.Defuzz(out, strength, 256)
			if err != nil {
				if errors.Is(err, ErrNoRuleFired) {
					continue
				}
				return false
			}
			if v < out.Min-1e-9 || v > out.Max+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: centroid is antisymmetric on a symmetric output variable when
// activations are mirrored.
func TestQuickCentroidAntisymmetric(t *testing.T) {
	out := symOut(t)
	f := func(a, b, c float64) bool {
		clampUnit := func(s float64) float64 { return math.Mod(math.Abs(s), 1) }
		s := []float64{clampUnit(a), clampUnit(b), clampUnit(c)}
		if s[0]+s[1]+s[2] == 0 {
			return true
		}
		fwd, err1 := Centroid{}.Defuzz(out, s, 512)
		rev, err2 := Centroid{}.Defuzz(out, []float64{s[2], s[1], s[0]}, 512)
		if err1 != nil || err2 != nil {
			return errors.Is(err1, ErrNoRuleFired) && errors.Is(err2, ErrNoRuleFired)
		}
		return math.Abs(fwd+rev) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkCentroid(b *testing.B) {
	out := symOut(b)
	strength := []float64{0.2, 0.7, 0.4}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := (Centroid{}).Defuzz(out, strength, DefaultSamples); err != nil {
			b.Fatal(err)
		}
	}
}
