package fuzzy

import (
	"math"
	"testing"
	"testing/quick"
)

// speedVar builds the paper's Sp variable (Fig. 5a).
func speedVar(t testing.TB) Variable {
	t.Helper()
	v, err := NewVariable("Sp", 0, 120,
		Term{Name: "Sl", MF: Tri(0, 0, 60)},
		Term{Name: "Mi", MF: Tri(60, 60, 60)},
		Term{Name: "Fa", MF: RightShoulder(60, 120)},
	)
	if err != nil {
		t.Fatalf("speedVar: %v", err)
	}
	return v
}

func TestNewVariableValidation(t *testing.T) {
	okTerm := Term{Name: "a", MF: Tri(0, 1, 1)}
	tests := []struct {
		name    string
		varName string
		min     float64
		max     float64
		terms   []Term
		wantErr bool
	}{
		{name: "valid", varName: "v", min: 0, max: 1, terms: []Term{okTerm}},
		{name: "empty name", varName: "", min: 0, max: 1, terms: []Term{okTerm}, wantErr: true},
		{name: "empty universe", varName: "v", min: 1, max: 1, terms: []Term{okTerm}, wantErr: true},
		{name: "inverted universe", varName: "v", min: 2, max: 1, terms: []Term{okTerm}, wantErr: true},
		{name: "NaN bound", varName: "v", min: math.NaN(), max: 1, terms: []Term{okTerm}, wantErr: true},
		{name: "no terms", varName: "v", min: 0, max: 1, wantErr: true},
		{name: "unnamed term", varName: "v", min: 0, max: 1, terms: []Term{{MF: Tri(0, 1, 1)}}, wantErr: true},
		{name: "nil MF", varName: "v", min: 0, max: 1, terms: []Term{{Name: "a"}}, wantErr: true},
		{
			name: "duplicate term", varName: "v", min: 0, max: 1,
			terms: []Term{okTerm, {Name: "a", MF: Tri(1, 1, 1)}}, wantErr: true,
		},
		{
			name: "invalid MF shape", varName: "v", min: 0, max: 1,
			terms: []Term{{Name: "bad", MF: Triangular{LeftWidth: -1}}}, wantErr: true,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := NewVariable(tt.varName, tt.min, tt.max, tt.terms...)
			if (err != nil) != tt.wantErr {
				t.Errorf("NewVariable error = %v, wantErr %v", err, tt.wantErr)
			}
		})
	}
}

func TestMustVariablePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustVariable with invalid spec did not panic")
		}
	}()
	MustVariable("", 0, 1)
}

func TestClamp(t *testing.T) {
	v := speedVar(t)
	tests := []struct{ x, want float64 }{
		{x: -5, want: 0},
		{x: 0, want: 0},
		{x: 60, want: 60},
		{x: 120, want: 120},
		{x: 500, want: 120},
	}
	for _, tt := range tests {
		if got := v.Clamp(tt.x); got != tt.want {
			t.Errorf("Clamp(%v) = %v, want %v", tt.x, got, tt.want)
		}
	}
}

func TestFuzzify(t *testing.T) {
	v := speedVar(t)
	tests := []struct {
		name string
		x    float64
		want []float64
	}{
		{name: "slow peak", x: 0, want: []float64{1, 0, 0}},
		{name: "crossover Sl-Mi", x: 30, want: []float64{0.5, 0.5, 0}},
		{name: "middle peak", x: 60, want: []float64{0, 1, 0}},
		{name: "crossover Mi-Fa", x: 90, want: []float64{0, 0.5, 0.5}},
		{name: "fast plateau", x: 120, want: []float64{0, 0, 1}},
		{name: "clamped above", x: 300, want: []float64{0, 0, 1}},
		{name: "clamped below", x: -10, want: []float64{1, 0, 0}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := v.Fuzzify(tt.x)
			if len(got) != len(tt.want) {
				t.Fatalf("Fuzzify(%v) returned %d grades, want %d", tt.x, len(got), len(tt.want))
			}
			for i := range got {
				if math.Abs(got[i]-tt.want[i]) > 1e-12 {
					t.Errorf("Fuzzify(%v)[%d] = %v, want %v", tt.x, i, got[i], tt.want[i])
				}
			}
		})
	}
}

func TestTermIndex(t *testing.T) {
	v := speedVar(t)
	tests := []struct {
		term string
		want int
	}{
		{term: "Sl", want: 0},
		{term: "Mi", want: 1},
		{term: "Fa", want: 2},
		{term: "Nope", want: -1},
		{term: "", want: -1},
	}
	for _, tt := range tests {
		if got := v.TermIndex(tt.term); got != tt.want {
			t.Errorf("TermIndex(%q) = %d, want %d", tt.term, got, tt.want)
		}
	}
}

func TestAggregatedGrade(t *testing.T) {
	v := speedVar(t)
	tests := []struct {
		name     string
		x        float64
		strength []float64
		want     float64
	}{
		{name: "no activation", x: 60, strength: []float64{0, 0, 0}, want: 0},
		{name: "full single term at peak", x: 60, strength: []float64{0, 1, 0}, want: 1},
		{name: "clipped term", x: 60, strength: []float64{0, 0.4, 0}, want: 0.4},
		{name: "max of two terms", x: 30, strength: []float64{1, 0.2, 0}, want: 0.5},
		{name: "clip below grade", x: 30, strength: []float64{0.3, 1, 0}, want: 0.5},
		{name: "inactive term ignored", x: 0, strength: []float64{0, 1, 1}, want: 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := v.AggregatedGrade(tt.x, tt.strength); math.Abs(got-tt.want) > 1e-12 {
				t.Errorf("AggregatedGrade(%v, %v) = %v, want %v", tt.x, tt.strength, got, tt.want)
			}
		})
	}
}

// Property: the speed partition is Ruspini (grades sum to 1) across the
// whole universe — the standard reading of the paper's Fig. 5.
func TestQuickRuspiniPartition(t *testing.T) {
	v := speedVar(t)
	f := func(raw float64) bool {
		x := math.Mod(math.Abs(raw), 120)
		sum := 0.0
		for _, g := range v.Fuzzify(x) {
			sum += g
		}
		return math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: aggregated grade never exceeds the largest strength, and is 0
// when all strengths are 0.
func TestQuickAggregatedGradeBounded(t *testing.T) {
	v := speedVar(t)
	f := func(raw, s0, s1, s2 float64) bool {
		x := math.Mod(math.Abs(raw), 120)
		clampUnit := func(s float64) float64 { return math.Mod(math.Abs(s), 1) }
		strength := []float64{clampUnit(s0), clampUnit(s1), clampUnit(s2)}
		maxS := math.Max(strength[0], math.Max(strength[1], strength[2]))
		g := v.AggregatedGrade(x, strength)
		return g >= 0 && g <= maxS+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
