package perf

import (
	"fmt"
	"net"
	"sync/atomic"
	"time"

	"facsp/internal/bsd"
	"facsp/internal/cac"
	"facsp/internal/core"
	"facsp/internal/loadgen"
)

// startDaemon boots an in-process admission daemon with cells FACS-P
// cells on a loopback port and returns its address. The daemon lives for
// the rest of the benchmark process (Spec has no teardown hook); it is
// idle outside the measured bodies, so the handful of parked goroutines
// does not perturb other specs.
func startDaemon(cells int, capacity float64) (string, error) {
	ctrls := make([]cac.Controller, cells)
	for i := range ctrls {
		cfg := core.DefaultPConfig()
		cfg.Capacity = capacity
		ctrl, err := core.NewFACSP(cfg)
		if err != nil {
			return "", err
		}
		ctrls[i] = ctrl
	}
	srv, err := bsd.New(bsd.Config{Cells: ctrls})
	if err != nil {
		return "", err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", err
	}
	go func() { _ = srv.Serve(ln) }()
	return ln.Addr().String(), nil
}

// serverRoundtripSpec measures one closed-loop admit+release pair per op
// over real loopback TCP — the wire-protocol analogue of micro/admit:
// JSON framing, the session grant table and the per-cell worker queue on
// top of the controller itself.
func serverRoundtripSpec() Spec {
	return Spec{Name: "server/roundtrip", Smoke: true, New: func() (Body, error) {
		addr, err := startDaemon(1, 40)
		if err != nil {
			return nil, err
		}
		cl, err := bsd.Dial(addr)
		if err != nil {
			return nil, err
		}
		return func(n int) (int64, error) {
			for i := 0; i < n; i++ {
				resp, err := cl.Admit(1, "voice", 60, 15, false)
				if err != nil {
					return 0, err
				}
				if !resp.OK {
					return 0, fmt.Errorf("admit refused: %s", resp.Err)
				}
				if !resp.Accept {
					continue // an empty 40 BU cell accepts a lone voice call
				}
				if resp, err = cl.Release(1, "voice"); err != nil {
					return 0, err
				}
				if !resp.OK {
					return 0, fmt.Errorf("release refused: %s", resp.Err)
				}
			}
			return 0, nil
		}, nil
	}}
}

// serverFlashCrowdSpec replays the scenario library's flash-crowd
// profile against a live 4-cell daemon through the open-loop generator:
// one complete time-scaled run per op. The per-op time is the scheduled
// window plus drain (wall-paced — see Result.WallPaced), so the gated
// signal is schedule slip and allocs; the headline serving numbers land
// in Extra as admits_per_sec, p50_ns and p99_ns.
func serverFlashCrowdSpec() Spec {
	var last atomic.Pointer[loadgen.Result]
	return Spec{
		Name:      "server/flash-crowd",
		Smoke:     true,
		WallPaced: true,
		New: func() (Body, error) {
			addr, err := startDaemon(4, 200)
			if err != nil {
				return nil, err
			}
			return func(n int) (int64, error) {
				var offered int64
				for i := 0; i < n; i++ {
					res, err := loadgen.Run(loadgen.Config{
						Addr:      addr,
						Profile:   "flash-crowd",
						Duration:  600 * time.Millisecond,
						Rate:      2000,
						Conns:     4,
						Cells:     4,
						Seed:      uint64(i) + 1,
						HoldMean:  100 * time.Millisecond,
						MinBUFrac: 0.5,
					})
					if err != nil {
						return 0, err
					}
					if res.Errors > 0 {
						return 0, fmt.Errorf("flash-crowd run: %d protocol error(s): %s", res.Errors, res)
					}
					offered += int64(res.Offered)
					last.Store(&res)
				}
				return offered, nil
			}, nil
		},
		Extra: func() map[string]float64 {
			res := last.Load()
			if res == nil {
				return nil
			}
			return map[string]float64{
				"admits_per_sec": res.AdmitsPerSec,
				"p50_ns":         float64(res.P50.Nanoseconds()),
				"p99_ns":         float64(res.P99.Nanoseconds()),
			}
		},
	}
}
