package perf

import (
	"fmt"

	"facsp/internal/cac"
	"facsp/internal/cellsim"
	"facsp/internal/core"
	"facsp/internal/experiment"
	"facsp/internal/hexgrid"
	"facsp/internal/scenario"
)

// The surface/ suite: the tiered decision-surface selector measured on the
// heterogeneous metro-city cell population. Every spec drives the same
// Admit+Release hot path over the same per-cell FACS-P bank with the same
// synthesized request stream; only the surface footprint differs. The
// tiered variant assigns each cell the tier its offered hotness rate earns
// (most cells cold on one shared coarse grid, downtown cells fine), the
// global-fine variant pins every cell to the finest grid — the difference
// is the cache-locality win tiering buys — and the exact variant runs the
// full Mamdani pipeline for scale.

// tieredQuantiles re-anchors the default ladder on the metro-city rate
// spread: ~70% of cells stay coarse, the top ~5% go fine.
var tieredQuantiles = []float64{0.70, 0.95}

// tieredMetroBank builds one FACS-P controller per live metro-city cell,
// each reading its surfaces from the per-slot tier assignment computed by
// assign from the scenario's offered hotness rates, through a Tiered
// selector (installed synchronously with Preset — the benchmark measures
// steady state, not the promotion transient).
func tieredMetroBank(tc core.TierConfig, assign func(rates []float64) ([]int, error)) ([]cac.Controller, *core.Tiered, error) {
	s, err := scenario.Load("metro-city")
	if err != nil {
		return nil, nil, err
	}
	cfg, err := s.ConfigFor(cityLoad, 1)
	if err != nil {
		return nil, nil, err
	}
	topo := cfg.Topology
	if topo == nil {
		topo = hexgrid.DiskTopology(hexgrid.Coord{}, cfg.Rings)
	}
	rates, err := cellsim.OfferedRates(cfg, tc.HalfLife)
	if err != nil {
		return nil, nil, err
	}
	tiers, err := assign(rates)
	if err != nil {
		return nil, nil, err
	}
	t, err := core.NewTiered(topo.Slots(), tc)
	if err != nil {
		return nil, nil, err
	}
	ctrls := make([]cac.Controller, 0, topo.Slots())
	for slot := 0; slot < topo.Slots(); slot++ {
		capacity := s.CapacityAt(topo.At(slot))
		if capacity <= 0 {
			continue // dead cell: no controller to measure
		}
		if err := t.Preset(slot, tiers[slot]); err != nil {
			return nil, nil, err
		}
		pc := core.DefaultPConfig()
		pc.Capacity = capacity
		pc.Surfaces = t.Cell(slot)
		ctrl, err := core.NewFACSP(pc)
		if err != nil {
			return nil, nil, err
		}
		// Park slot-varied handoff occupancy in the cell so the request
		// stream exercises the Cs axis, not just the empty-cell corner.
		for j := 0; j < slot%4; j++ {
			hold := cac.Request{ID: uint64(1000 + j), Speed: 10, Angle: 5, Bandwidth: 5, RealTime: true, Handoff: true}
			if d := ctrl.Admit(hold); !d.Accept {
				return nil, nil, fmt.Errorf("perf: preload handoff rejected at slot %d", slot)
			}
		}
		ctrls = append(ctrls, ctrl)
	}
	return ctrls, t, nil
}

// tieredAdmitBody round-robins Admit+Release over the bank with a cheap
// inline xorshift stream of diverse requests — every iteration hits a
// different neighbourhood of a different cell's surface, which is what
// makes the surface footprint (and so the tiering) visible: a single
// repeated query would sit in eight cached grid corners forever.
func tieredAdmitBody(ctrls []cac.Controller) Body {
	bw := [4]float64{1, 5, 10, 5}
	return func(n int) (int64, error) {
		state := uint64(0x9E3779B97F4A7C15)
		for i := 0; i < n; i++ {
			state ^= state << 13
			state ^= state >> 7
			state ^= state << 17
			req := cac.Request{
				ID:        1,
				Speed:     float64(state>>52) / 4096 * 120,
				Angle:     float64((state>>40)&0xFFF) / 4096 * 180,
				Bandwidth: bw[state&3],
				RealTime:  state&4 != 0,
			}
			ctrl := ctrls[i%len(ctrls)]
			if d := ctrl.Admit(req); d.Accept {
				if err := ctrl.Release(req); err != nil {
					return 0, err
				}
			}
		}
		return 0, nil
	}
}

// surfaceTieredSpec measures the hotness-assigned ladder: the default
// coarse/medium/fine split re-anchored at the metro-city rate quantiles.
func surfaceTieredSpec(name string, smoke bool) Spec {
	return Spec{Name: name, Smoke: smoke, New: func() (Body, error) {
		base := core.DefaultTierConfig()
		ctrls, _, err := tieredMetroBank(base, func(rates []float64) ([]int, error) {
			anchored, err := experiment.TiersAtQuantiles(base, rates, tieredQuantiles)
			if err != nil {
				return nil, err
			}
			tiers := make([]int, len(rates))
			for slot, r := range rates {
				tiers[slot] = anchored.TierFor(r)
			}
			return tiers, nil
		})
		if err != nil {
			return nil, err
		}
		return tieredAdmitBody(ctrls), nil
	}}
}

// surfaceGlobalFineSpec pins every cell to the single finest grid — the
// pre-tiering status quo the tiered spec is gated against.
func surfaceGlobalFineSpec(name string, smoke bool) Spec {
	return Spec{Name: name, Smoke: smoke, New: func() (Body, error) {
		tc := core.DefaultTierConfig()
		fine := tc.Tiers[len(tc.Tiers)-1].Resolution
		tc.Tiers = []core.SurfaceTier{{Resolution: fine, MinRate: 0}}
		ctrls, _, err := tieredMetroBank(tc, func(rates []float64) ([]int, error) {
			return make([]int, len(rates)), nil
		})
		if err != nil {
			return nil, err
		}
		return tieredAdmitBody(ctrls), nil
	}}
}

// surfaceExactSpec runs the same bank on full Mamdani inference — the
// accuracy reference the tier ladder's error tolerances are stated
// against, and the denominator of the headline surface speedup.
func surfaceExactSpec(name string, smoke bool) Spec {
	return Spec{Name: name, Smoke: smoke, New: func() (Body, error) {
		tc := core.DefaultTierConfig()
		tc.Tiers = []core.SurfaceTier{{Resolution: 0, MinRate: 0}}
		ctrls, _, err := tieredMetroBank(tc, func(rates []float64) ([]int, error) {
			return make([]int, len(rates)), nil
		})
		if err != nil {
			return nil, err
		}
		return tieredAdmitBody(ctrls), nil
	}}
}
