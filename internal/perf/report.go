package perf

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"sort"
	"strings"
	"time"
)

// ReportSchema is the BENCH.json schema version; bump on breaking layout
// changes so downstream tooling can reject files it does not understand.
const ReportSchema = 1

// Result is one spec's measured numbers.
type Result struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	// SimCallsPerSec is the sweep throughput: simulated connection
	// requests driven per wall-clock second. 0 for micro-benchmarks.
	SimCallsPerSec float64 `json:"sim_calls_per_sec,omitempty"`
	// WallPaced marks a spec whose per-op time is pinned to the wall
	// clock by construction (an open-loop serving run replays a fixed
	// arrival schedule). The ns/op gate compares such specs directly,
	// without hardware normalization: their time does not shrink on a
	// faster machine, so dividing by Scale would manufacture phantom
	// regressions.
	WallPaced bool `json:"wall_paced,omitempty"`
	// Extra carries spec-specific headline metrics (e.g. the serving
	// suite's admits_per_sec, p50_ns, p99_ns). Reported, never gated.
	Extra map[string]float64 `json:"extra,omitempty"`
}

// Report is the machine-readable BENCH.json artifact: every measured
// result plus the environment it was measured in.
type Report struct {
	Schema      int    `json:"schema"`
	GoVersion   string `json:"go"`
	GOOS        string `json:"goos"`
	GOARCH      string `json:"goarch"`
	CPUs        int    `json:"cpus"`
	Suite       string `json:"suite"`
	GeneratedAt string `json:"generated_at,omitempty"`
	// Note records caveats for human readers (e.g. which machine class
	// the committed baseline was measured on).
	Note    string   `json:"note,omitempty"`
	Results []Result `json:"results"`
}

// NewReport assembles a report for the current environment.
func NewReport(suite string, results []Result) *Report {
	return &Report{
		Schema:      ReportSchema,
		GoVersion:   runtime.Version(),
		GOOS:        runtime.GOOS,
		GOARCH:      runtime.GOARCH,
		CPUs:        runtime.NumCPU(),
		Suite:       suite,
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		Results:     results,
	}
}

// Write emits the report as indented JSON.
func (r *Report) Write(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// WriteFile writes the report to path ("-" means stdout).
func (r *Report) WriteFile(path string) error {
	if path == "-" {
		return r.Write(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := r.Write(f); err != nil {
		_ = f.Close()
		return err
	}
	return f.Close()
}

// ReadReport loads a BENCH.json report.
func ReadReport(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("perf: %s: %w", path, err)
	}
	if r.Schema != ReportSchema {
		return nil, fmt.Errorf("perf: %s: unsupported schema %d (want %d)", path, r.Schema, ReportSchema)
	}
	return &r, nil
}

// Regression is one spec that regressed past the gate tolerance.
type Regression struct {
	Name string
	// Metric is "ns/op" or "allocs/op".
	Metric   string
	Baseline float64
	Current  float64
	// Ratio is Current / Baseline (1.30 = 30% worse). For ns/op it is the
	// hardware-normalized ratio (divided by the comparison's Scale).
	Ratio float64
}

// Comparison is the outcome of diffing a fresh report against a
// committed baseline.
type Comparison struct {
	// Regressions lists the specs that regressed, in name order.
	Regressions []Regression
	// Missing lists baseline specs absent from the current report —
	// renaming or dropping a gated spec must be an explicit baseline
	// update, never a silent pass.
	Missing []string
	// Scale is the hardware-delta estimate the ns/op gate normalizes by:
	// the median current/baseline ns/op ratio across the common micro/
	// specs (falling back to all common specs when none are micro). A
	// baseline measured on a slower machine yields Scale < 1; a faster
	// one, Scale > 1. Values far from 1 mean the baseline should be
	// regenerated on comparable hardware.
	Scale float64
}

// allocSlack is the absolute allocs/op jitter tolerated on top of the
// relative tolerance: the runtime's MemStats accounting can attribute a
// couple of background allocations to the measured window.
const allocSlack = 2

// Compare diffs current against baseline with tolerance maxRegress
// (0.30 = 30%) on two gates:
//
//   - allocs/op, compared directly — allocation counts are
//     hardware-independent, so this gate travels between machines.
//   - ns/op, normalized by the median current/baseline ratio across the
//     micro/ specs (Comparison.Scale). The normalization absorbs the
//     uniform speed difference between the machine that produced the
//     committed baseline and the machine running the gate, so what fails
//     is a spec that regressed relative to its peers. Anchoring the
//     median on the micro specs (tiny deterministic kernels, the set
//     least likely to co-move with a sweep change) keeps the gate honest
//     when several sweep specs regress together: the corner conceded is
//     a change that uniformly slows the majority of micro specs without
//     touching their allocation counts, which the allocs/op gate and the
//     printed Scale still surface.
//
// Wall-paced specs (Result.WallPaced) are gated on the raw ns/op ratio
// instead: their per-op time is a scheduled wall-clock span, identical
// across machines, so normalizing would divide a constant by the
// hardware delta. They are likewise excluded from the Scale estimate.
//
// Specs new in current are ignored (they gate once they enter the
// baseline).
func Compare(baseline, current *Report, maxRegress float64) Comparison {
	cur := make(map[string]Result, len(current.Results))
	for _, r := range current.Results {
		cur[r.Name] = r
	}
	base := append([]Result(nil), baseline.Results...)
	sort.Slice(base, func(i, j int) bool { return base[i].Name < base[j].Name })

	cmp := Comparison{Scale: 1}
	var microRatios, allRatios []float64
	for _, b := range base {
		if b.WallPaced {
			continue // pinned to the wall clock: no hardware signal in it
		}
		if c, ok := cur[b.Name]; ok && b.NsPerOp > 0 && c.NsPerOp > 0 {
			allRatios = append(allRatios, c.NsPerOp/b.NsPerOp)
			if strings.HasPrefix(b.Name, "micro/") {
				microRatios = append(microRatios, c.NsPerOp/b.NsPerOp)
			}
		}
	}
	if ratios := microRatios; len(ratios) > 0 {
		cmp.Scale = median(ratios)
	} else if len(allRatios) > 0 {
		cmp.Scale = median(allRatios)
	}

	for _, b := range base {
		c, ok := cur[b.Name]
		if !ok {
			cmp.Missing = append(cmp.Missing, b.Name)
			continue
		}
		if b.NsPerOp > 0 {
			ratio := c.NsPerOp / b.NsPerOp
			if !b.WallPaced {
				ratio /= cmp.Scale
			}
			if ratio > 1+maxRegress {
				cmp.Regressions = append(cmp.Regressions, Regression{
					Name: b.Name, Metric: "ns/op",
					Baseline: b.NsPerOp, Current: c.NsPerOp, Ratio: ratio,
				})
			}
		}
		if c.AllocsPerOp > b.AllocsPerOp*(1+maxRegress)+allocSlack {
			ratio := 0.0
			if b.AllocsPerOp > 0 {
				ratio = c.AllocsPerOp / b.AllocsPerOp
			}
			cmp.Regressions = append(cmp.Regressions, Regression{
				Name: b.Name, Metric: "allocs/op",
				Baseline: b.AllocsPerOp, Current: c.AllocsPerOp, Ratio: ratio,
			})
		}
	}
	return cmp
}

// median returns the median of the values, averaging the middle pair for
// even counts. It sorts its argument in place.
func median(v []float64) float64 {
	sort.Float64s(v)
	n := len(v)
	if n%2 == 0 {
		return (v[n/2-1] + v[n/2]) / 2
	}
	return v[n/2]
}
