// Package perf is the repository's performance harness: a registry of
// named benchmark specs covering the admission hot path and the
// figure/scenario sweeps, a measurement engine that turns a spec into
// machine-readable numbers (ns/op, allocs/op, simulated calls per
// second), and the regression gate cmd/facs-bench runs in CI.
//
// The same specs back both entry points: `go test -bench .` runs them
// through BenchSpec (bench_test.go at the repository root), and
// cmd/facs-bench runs them through Measure to emit BENCH.json and diff it
// against the committed BENCH_baseline.json. Because there is exactly one
// registry, the CI smoke benchmark and the regression gate cannot drift
// apart.
package perf

import (
	"errors"
	"fmt"
	"regexp"
	"strings"
	"sync/atomic"

	"facsp/internal/baseline"
	"facsp/internal/cac"
	"facsp/internal/cellsim"
	"facsp/internal/core"
	"facsp/internal/des"
	"facsp/internal/experiment"
	"facsp/internal/fuzzy"
	"facsp/internal/learned"
	"facsp/internal/optimal"
	"facsp/internal/scenario"
)

// Body runs n iterations of a benchmark workload. simCalls reports the
// number of simulated connection requests driven across the n iterations
// (network-wide, all schemes), or 0 for micro-benchmarks that do not
// simulate traffic.
type Body func(n int) (simCalls int64, err error)

// Spec is one named benchmark.
type Spec struct {
	// Name identifies the spec in reports and baselines, e.g.
	// "sweep/adapt-drops/surface".
	Name string
	// Smoke marks the spec as part of the reduced CI suite.
	Smoke bool
	// New builds the benchmark body. It runs outside the timed region, so
	// expensive setup (engine construction, surface compilation) does not
	// pollute the per-op numbers.
	New func() (Body, error)
	// WallPaced marks a body whose per-op time is a scheduled wall-clock
	// span (open-loop serving runs); see Result.WallPaced for how the
	// gate treats it.
	WallPaced bool
	// Extra, when set, is called once after measurement and its metrics
	// attached to the result (Result.Extra) — the serving suite reports
	// admits/sec and latency percentiles this way. Never gated.
	Extra func() map[string]float64
}

// SweepConfig parameterises the sweep specs of the registry.
type SweepConfig struct {
	// Loads is the sweep x axis (default: the single heaviest paper load,
	// 100 requesting connections).
	Loads []int
	// Replications is the number of seeds per load point (default 1).
	Replications int
	// Workers bounds the sweep worker pool (default 1, for stable ns/op).
	Workers int
	// Surface is the decision-surface resolution of the "/surface" sweep
	// variants (default core.DefaultSurfaceResolution). Exact-inference
	// variants always run with 0.
	Surface int
}

// DefaultSweepConfig returns the reduced sweep used by the CI gate and
// the repository benchmarks: one replication of the heaviest paper load.
func DefaultSweepConfig() SweepConfig {
	return SweepConfig{
		Loads:        []int{100},
		Replications: 1,
		Workers:      1,
		Surface:      core.DefaultSurfaceResolution,
	}
}

func (sc SweepConfig) withDefaults() SweepConfig {
	d := DefaultSweepConfig()
	if sc.Loads == nil {
		sc.Loads = d.Loads
	}
	if sc.Replications <= 0 {
		sc.Replications = d.Replications
	}
	if sc.Workers <= 0 {
		sc.Workers = d.Workers
	}
	if sc.Surface <= 0 {
		sc.Surface = d.Surface
	}
	return sc
}

func (sc SweepConfig) options(surface int) experiment.Options {
	return experiment.Options{
		Loads:             sc.Loads,
		Replications:      sc.Replications,
		Workers:           sc.Workers,
		SurfaceResolution: surface,
	}
}

// Specs returns the registry with the default sweep configuration.
func Specs() []Spec { return Registry(SweepConfig{}) }

// SmokeSpecs returns the reduced CI suite with the default sweep
// configuration.
func SmokeSpecs() []Spec {
	var out []Spec
	for _, s := range Specs() {
		if s.Smoke {
			out = append(out, s)
		}
	}
	return out
}

// Filter returns the specs whose names match the regular expression.
func Filter(specs []Spec, expr string) ([]Spec, error) {
	re, err := regexp.Compile(expr)
	if err != nil {
		return nil, fmt.Errorf("perf: bad filter %q: %w", expr, err)
	}
	var out []Spec
	for _, s := range specs {
		if re.MatchString(s.Name) {
			out = append(out, s)
		}
	}
	return out, nil
}

// mustFactory resolves a scheme factory for a registry-built sweep; the
// ids are static, so failure is a programming error.
func mustFactory(o experiment.Options, id string) experiment.AdmitterFactory {
	f, err := o.SchemeFactory(id)
	if err != nil {
		panic("perf: " + err.Error())
	}
	return f
}

// Registry returns every benchmark spec, sweeps parameterised by sc, in
// stable order: micro-benchmarks of the inference and admission hot
// paths, then one sweep spec per scheme x figure, then the scenario
// sweep. Spec names are the contract between BENCH_baseline.json, the CI
// gate and `go test -bench .`; renaming one invalidates baselines.
func Registry(sc SweepConfig) []Spec {
	sc = sc.withDefaults()
	exact := sc.options(0)
	surf := sc.options(sc.Surface)

	specs := []Spec{
		// One Mamdani inference per op: fuzzify, evaluate the printed rule
		// base (Table 1 / Table 2), defuzzify.
		{Name: "micro/flc1/exact", Smoke: true, New: flc1Exact},
		{Name: "micro/flc2/exact", Smoke: true, New: flc2Exact},
		// The same queries answered from the precomputed decision surface.
		{Name: "micro/flc1/surface", New: flc1Surface},
		{Name: "micro/flc2/surface", New: flc2Surface},
		// End-to-end Admit+Release per op, per controller.
		{Name: "micro/admit/facs-exact", New: admitFACS(0)},
		{Name: "micro/admit/facs-surface", New: admitFACS(sc.Surface)},
		{Name: "micro/admit/facsp-exact", Smoke: true, New: admitFACSP(0)},
		{Name: "micro/admit/facsp-surface", Smoke: true, New: admitFACSP(sc.Surface)},
		// The cost half of the centroid/height defuzzifier trade (the
		// ablation-defuzz figure studies the fidelity half).
		{Name: "micro/admit/facsp-height", New: admitFACSPHeight},
		{Name: "micro/admit/guard", New: admitGuard},
		// The computed-optimum suite: the value-iteration threshold policy
		// and the table-compiled learned controller, end-to-end Admit+Release
		// — both must stay allocation-free table lookups (alloc_test.go gates
		// allocs, these specs gate ns/op).
		{Name: "scheme/optimal", Smoke: true, New: admitOptimal},
		{Name: "scheme/learned", Smoke: true, New: admitLearned},
		// Schedule and drain 128 typed events per op; allocation-free in
		// steady state.
		{Name: "micro/des/schedule", Smoke: true, New: desSchedule},
	}

	// One reduced figure sweep per op, per scheme — the simulated-calls-
	// per-second columns of BENCH.json come from these.
	specs = append(specs,
		curveSpec("sweep/fig7/facs", false, singleCell, mustFactory(exact, "facs"), experiment.AcceptedPct, exact),
		curveSpec("sweep/fig7/scc", false, singleCell, mustFactory(exact, "scc"), experiment.AcceptedPct, exact),
		curveSpec("sweep/fig8/facsp", false, pinnedSpeed(60), mustFactory(exact, "facsp"), experiment.AcceptedPct, exact),
		curveSpec("sweep/fig9/facsp", false, pinnedAngle(50), mustFactory(exact, "facsp"), experiment.AcceptedPct, exact),
		curveSpec("sweep/fig10/facsp", true, homogeneous, mustFactory(exact, "facsp"), experiment.AcceptedPct, exact),
		curveSpec("sweep/fig10/facs", false, homogeneous, mustFactory(exact, "facs"), experiment.AcceptedPct, exact),
		curveSpec("sweep/drops/facsp", false, homogeneous, mustFactory(exact, "facsp"), experiment.DropPct, exact),
		adaptDropsSpec("sweep/adapt-drops", true, exact),
		adaptDropsSpec("sweep/adapt-drops/surface", true, surf),
		adaptRatioSpec("sweep/adapt-ratio", false, exact),
		scenarioSpec("sweep/scenario/flash-crowd", false, exact),
	)

	// The city suite: ONE ~1000-cell sharded simulation per op
	// (experiment.RunEvalCity), reported as simulated-calls/s. The worker
	// variants share one fixed 16-group partition, so their metrics are
	// bit-identical and only wall clock changes — the w1/w4/w8 column is a
	// direct read of the sharded engine's scaling. The smoke variant runs
	// the embedded 200-cell metro-city, sized for the CI gate.
	specs = append(specs,
		citySmokeSpec("city/metro/guard", true, exact),
		cityEvalSpec("city/eval/guard/w1", 1, exact),
		cityEvalSpec("city/eval/guard/w4", 4, exact),
		cityEvalSpec("city/eval/guard/w8", 8, exact),
		cityEvalSpec("city/eval/facsp/w4", 4, exact),
	)

	// The surface suite: the tiered decision-surface selector against the
	// single-global-fine-surface status quo and exact inference, on the
	// same metro-city controller bank with the same diverse request stream
	// (internal/perf/tiers.go).
	specs = append(specs,
		surfaceTieredSpec("surface/tiered/metro", true),
		surfaceGlobalFineSpec("surface/global-fine/metro", true),
		surfaceExactSpec("surface/exact/metro", false),
	)

	// The serving suite: the admission daemon measured over real loopback
	// TCP — a closed-loop round-trip cost spec and an open-loop
	// flash-crowd replay whose admits/sec and latency percentiles land in
	// Result.Extra.
	specs = append(specs,
		serverRoundtripSpec(),
		serverFlashCrowdSpec(),
	)
	return specs
}

// cityGroups is the fixed cell-group count of the city suite; every
// worker variant runs the identical partition.
const cityGroups = 16

// cityLoad is the per-unit-load request count of the city specs; each
// cell offers round(cityLoad x its band multiplier).
const cityLoad = 8

// cityBody runs one sharded city simulation per op over a pre-validated
// scenario, counting offered calls for the simcalls/s column.
func cityBody(s *scenario.Scenario, run experiment.CityRun, opts experiment.Options) Body {
	return func(n int) (int64, error) {
		var calls int64
		for i := 0; i < n; i++ {
			r := run
			r.Seed = uint64(i) + 1
			res, err := experiment.RunCity(s, r, opts)
			if err != nil {
				return 0, err
			}
			calls += int64(res.NetworkRequests)
		}
		return calls, nil
	}
}

// cityEvalSpec measures the ~1000-cell evaluation city at a given worker
// count. The scheme id is embedded in the spec name's third segment.
func cityEvalSpec(name string, workers int, opts experiment.Options) Spec {
	return Spec{Name: name, New: func() (Body, error) {
		s, err := scenario.GenerateCity(scenario.EvalCityParams())
		if err != nil {
			return nil, err
		}
		scheme := strings.Split(name, "/")[2]
		run := experiment.CityRun{
			Scheme: scheme,
			Load:   cityLoad,
			Shard:  cellsim.ShardOptions{Groups: cityGroups, Workers: workers},
		}
		return cityBody(s, run, opts), nil
	}}
}

// citySmokeSpec is the reduced CI variant: the embedded metro-city
// scenario (about 200 cells) on the default worker split.
func citySmokeSpec(name string, smoke bool, opts experiment.Options) Spec {
	return Spec{Name: name, Smoke: smoke, New: func() (Body, error) {
		s, err := scenario.Load("metro-city")
		if err != nil {
			return nil, err
		}
		run := experiment.CityRun{
			Scheme: "guard",
			Load:   cityLoad,
			Shard:  cellsim.ShardOptions{Groups: cityGroups},
		}
		return cityBody(s, run, opts), nil
	}}
}

// --- micro bodies ---

func flc1Exact() (Body, error) {
	e, err := core.NewFLC1()
	if err != nil {
		return nil, err
	}
	return func(n int) (int64, error) {
		for i := 0; i < n; i++ {
			if _, err := e.Infer(72.5, 33, 5); err != nil {
				return 0, err
			}
		}
		return 0, nil
	}, nil
}

func flc2Exact() (Body, error) {
	e, err := core.NewFLC2()
	if err != nil {
		return nil, err
	}
	return func(n int) (int64, error) {
		for i := 0; i < n; i++ {
			if _, err := e.Infer(0.7, 5, 22); err != nil {
				return 0, err
			}
		}
		return 0, nil
	}, nil
}

func flc1Surface() (Body, error) {
	e, err := core.NewFLC1()
	if err != nil {
		return nil, err
	}
	s, err := fuzzy.NewSurface(e, fuzzy.DefaultSurfaceResolution)
	if err != nil {
		return nil, err
	}
	return func(n int) (int64, error) {
		for i := 0; i < n; i++ {
			if _, err := s.Infer(72.5, 33, 5); err != nil {
				return 0, err
			}
		}
		return 0, nil
	}, nil
}

func flc2Surface() (Body, error) {
	e, err := core.NewFLC2()
	if err != nil {
		return nil, err
	}
	s, err := fuzzy.NewSurface(e, fuzzy.DefaultSurfaceResolution)
	if err != nil {
		return nil, err
	}
	return func(n int) (int64, error) {
		for i := 0; i < n; i++ {
			if _, err := s.Infer(0.7, 5, 22); err != nil {
				return 0, err
			}
		}
		return 0, nil
	}, nil
}

// admitLoop drives the end-to-end Admit+Release hot path with the
// micro-benchmark request: a voice call at 60 km/h, 15 degrees off its
// base station.
func admitLoop(ctrl cac.Controller) Body {
	req := cac.Request{ID: 1, Speed: 60, Angle: 15, Bandwidth: 5, RealTime: true}
	return func(n int) (int64, error) {
		for i := 0; i < n; i++ {
			if d := ctrl.Admit(req); d.Accept {
				if err := ctrl.Release(req); err != nil {
					return 0, err
				}
			}
		}
		return 0, nil
	}
}

func admitFACS(surface int) func() (Body, error) {
	return func() (Body, error) {
		cfg := core.DefaultConfig()
		cfg.SurfaceResolution = surface
		ctrl, err := core.NewFACS(cfg)
		if err != nil {
			return nil, err
		}
		return admitLoop(ctrl), nil
	}
}

func admitFACSP(surface int) func() (Body, error) {
	return func() (Body, error) {
		cfg := core.DefaultPConfig()
		cfg.SurfaceResolution = surface
		ctrl, err := core.NewFACSP(cfg)
		if err != nil {
			return nil, err
		}
		return admitLoop(ctrl), nil
	}
}

// admitFACSPHeight measures the FACS-P admission path with the cheap
// height defuzzifier instead of the centroid default, keeping the
// defuzzifier cost trade-off trackable.
func admitFACSPHeight() (Body, error) {
	cfg := core.DefaultPConfig()
	cfg.Defuzzifier = fuzzy.Height{}
	ctrl, err := core.NewFACSP(cfg)
	if err != nil {
		return nil, err
	}
	return admitLoop(ctrl), nil
}

func admitGuard() (Body, error) {
	ctrl, err := baseline.NewGuardChannel(core.CounterMax, experiment.GuardBand)
	if err != nil {
		return nil, err
	}
	return admitLoop(ctrl), nil
}

// admitOptimal measures the value-iteration threshold policy's admission
// path; ForCapacity reuses the cached policy, so the solve cost stays in
// setup.
func admitOptimal() (Body, error) {
	ctrl, err := optimal.ForCapacity(core.CounterMax)
	if err != nil {
		return nil, err
	}
	return admitLoop(ctrl), nil
}

// admitLearned measures the table-compiled learned controller's admission
// path.
func admitLearned() (Body, error) {
	ctrl, err := learned.New(core.CounterMax)
	if err != nil {
		return nil, err
	}
	return admitLoop(ctrl), nil
}

// desHandler drains typed events without doing work, so the spec times
// pure queue overhead.
type desHandler struct{}

func (desHandler) RunOp(float64, des.Op) {}

func desSchedule() (Body, error) {
	var s des.Sim
	s.SetHandler(desHandler{})
	arg := new(int)
	return func(n int) (int64, error) {
		for i := 0; i < n; i++ {
			s.Reset()
			at := 0.0
			for j := 0; j < 128; j++ {
				// A deterministic quasi-random schedule exercises the heap
				// without consulting an RNG inside the timed loop. The
				// multiplier stays within 32-bit int range (j < 128).
				at += float64((j*40503)%1000) / 1000
				if _, err := s.AtOp(at, des.Op{Code: j, Arg: arg}); err != nil {
					return 0, err
				}
			}
			s.Run(0)
		}
		return 0, nil
	}, nil
}

// --- sweep bodies ---

func singleCell(load int, seed uint64) cellsim.Config {
	c := cellsim.DefaultConfig(load, seed)
	c.NeighborRequests = 0
	return c
}

func homogeneous(load int, seed uint64) cellsim.Config {
	return cellsim.DefaultConfig(load, seed)
}

func pinnedSpeed(kmh float64) experiment.ConfigFunc {
	return func(load int, seed uint64) cellsim.Config {
		c := singleCell(load, seed)
		c.Speed = cellsim.Fixed(kmh)
		return c
	}
}

func pinnedAngle(deg float64) experiment.ConfigFunc {
	return func(load int, seed uint64) cellsim.Config {
		c := singleCell(load, seed)
		c.Angle = cellsim.Fixed(deg)
		c.Static = true
		return c
	}
}

// countingMetric wraps a metric so every simulated run adds its
// network-wide offered calls to the counter; this is how the sweeps
// report simulated-calls-per-second without estimating workload sizes.
func countingMetric(m experiment.Metric, calls *atomic.Int64) experiment.Metric {
	return func(r cellsim.Result) float64 {
		calls.Add(int64(r.NetworkRequests))
		return m(r)
	}
}

// curveSpec runs one reduced sweep (scheme x figure workload) per op.
func curveSpec(name string, smoke bool, cfg experiment.ConfigFunc, factory experiment.AdmitterFactory, metric experiment.Metric, opts experiment.Options) Spec {
	return Spec{Name: name, Smoke: smoke, New: func() (Body, error) {
		return func(n int) (int64, error) {
			var calls atomic.Int64
			m := countingMetric(metric, &calls)
			for i := 0; i < n; i++ {
				o := opts
				o.BaseSeed = uint64(i)
				if _, err := experiment.RunCurve(name, cfg, factory, m, o); err != nil {
					return 0, err
				}
			}
			return calls.Load(), nil
		}, nil
	}}
}

// multiCurveSpec runs one full multi-scheme figure per op.
func multiCurveSpec(name string, smoke bool, opts experiment.Options, metric experiment.Metric, schemeIDs []string) Spec {
	return Spec{Name: name, Smoke: smoke, New: func() (Body, error) {
		factories := make([]experiment.AdmitterFactory, len(schemeIDs))
		for i, id := range schemeIDs {
			f, err := opts.SchemeFactory(id)
			if err != nil {
				return nil, err
			}
			factories[i] = f
		}
		return func(n int) (int64, error) {
			var calls atomic.Int64
			m := countingMetric(metric, &calls)
			for i := 0; i < n; i++ {
				o := opts
				o.BaseSeed = uint64(i)
				for _, f := range factories {
					if _, err := experiment.RunCurve(name, homogeneous, f, m, o); err != nil {
						return 0, err
					}
				}
			}
			return calls.Load(), nil
		}, nil
	}}
}

// adaptDropsSpec reproduces the adapt-drops head-to-head (adapt,
// adapt-fuzzy, FACS-P, guard-channel on dropped-call %) as one op — the
// end-to-end sweep the tentpole throughput target is measured on.
func adaptDropsSpec(name string, smoke bool, opts experiment.Options) Spec {
	return multiCurveSpec(name, smoke, opts, experiment.DropPct,
		[]string{"adapt", "adapt-fuzzy", "facsp", "guard"})
}

// adaptRatioSpec reproduces the adapt-ratio figure (degradation ratio of
// the adaptive schemes vs the guard channel) as one op.
func adaptRatioSpec(name string, smoke bool, opts experiment.Options) Spec {
	return multiCurveSpec(name, smoke, opts, experiment.BandwidthRatioPct,
		[]string{"adapt", "adapt-fuzzy", "guard"})
}

// scenarioSpec ranks every applicable scheme on the flash-crowd scenario
// once per op — the declarative-scenario path of the sweep engine.
func scenarioSpec(name string, smoke bool, opts experiment.Options) Spec {
	return Spec{Name: name, Smoke: smoke, New: func() (Body, error) {
		s, err := scenario.Load("flash-crowd")
		if err != nil {
			return nil, err
		}
		if err := s.Validate(); err != nil {
			return nil, err
		}
		cfg := experiment.ScenarioConfigFunc(s)
		var factories []experiment.AdmitterFactory
		for _, id := range experiment.SchemeIDs() {
			f, err := experiment.ScenarioSchemeFactory(id, s, opts)
			if errors.Is(err, experiment.ErrSchemeNotApplicable) {
				continue
			}
			if err != nil {
				return nil, err
			}
			factories = append(factories, f)
		}
		return func(n int) (int64, error) {
			var calls atomic.Int64
			m := countingMetric(experiment.AcceptedPct, &calls)
			for i := 0; i < n; i++ {
				o := opts
				o.BaseSeed = uint64(i)
				for _, f := range factories {
					if _, err := experiment.RunCurve(name, cfg, f, m, o); err != nil {
						return 0, err
					}
				}
			}
			return calls.Load(), nil
		}, nil
	}}
}
