package perf

import (
	"fmt"
	"runtime"
	"testing"
	"time"
)

// maxIterations bounds the measurement loop's growth; at any realistic
// per-op cost the time budget is hit long before it.
const maxIterations = 1 << 30

// Measure runs the spec until the timed region has covered at least
// minTime (growing the iteration count geometrically, the way the
// testing package does) and returns its per-op numbers. Setup (Spec.New)
// and one warm-up iteration run outside the timed region, so process-wide
// caches — compiled decision surfaces, pooled run state — are warm when
// timing starts.
func (s Spec) Measure(minTime time.Duration) (Result, error) {
	body, err := s.New()
	if err != nil {
		return Result{}, fmt.Errorf("perf: %s: setup: %w", s.Name, err)
	}
	if _, err := body(1); err != nil {
		return Result{}, fmt.Errorf("perf: %s: warm-up: %w", s.Name, err)
	}
	var m0, m1 runtime.MemStats
	n := 1
	for {
		runtime.GC()
		runtime.ReadMemStats(&m0)
		start := time.Now()
		calls, err := body(n)
		elapsed := time.Since(start)
		runtime.ReadMemStats(&m1)
		if err != nil {
			return Result{}, fmt.Errorf("perf: %s: %w", s.Name, err)
		}
		if elapsed >= minTime || n >= maxIterations {
			r := Result{
				Name:        s.Name,
				Iterations:  n,
				NsPerOp:     float64(elapsed.Nanoseconds()) / float64(n),
				AllocsPerOp: float64(m1.Mallocs-m0.Mallocs) / float64(n),
				BytesPerOp:  float64(m1.TotalAlloc-m0.TotalAlloc) / float64(n),
				WallPaced:   s.WallPaced,
			}
			if calls > 0 && elapsed > 0 {
				r.SimCallsPerSec = float64(calls) / elapsed.Seconds()
			}
			if s.Extra != nil {
				r.Extra = s.Extra()
			}
			return r, nil
		}
		// Predict the iteration count that lands past minTime with ~20%
		// headroom, growing at most 100x per round (the testing package's
		// strategy against wildly wrong early estimates).
		next := n * 100
		if elapsed > 0 {
			next = int(1.2 * float64(minTime) / (float64(elapsed) / float64(n)))
		}
		switch {
		case next <= n:
			next = n + 1
		case next > n*100:
			next = n * 100
		}
		n = next
	}
}

// BenchSpec adapts a spec to a testing benchmark, so `go test -bench .`
// exercises exactly the bodies the facs-bench gate measures. Sweep specs
// additionally report simulated calls per wall-clock second.
func BenchSpec(b *testing.B, s Spec) {
	b.Helper()
	body, err := s.New()
	if err != nil {
		b.Fatal(err)
	}
	if _, err := body(1); err != nil { // warm process-wide caches
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	calls, err := body(b.N)
	if err != nil {
		b.Fatal(err)
	}
	if calls > 0 && b.Elapsed() > 0 {
		b.ReportMetric(float64(calls)/b.Elapsed().Seconds(), "simcalls/s")
	}
	if s.Extra != nil {
		for unit, v := range s.Extra() {
			b.ReportMetric(v, unit)
		}
	}
}
