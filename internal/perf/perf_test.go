package perf

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func TestRegistryNamesUniqueAndStable(t *testing.T) {
	a, b := Specs(), Specs()
	if len(a) == 0 {
		t.Fatal("empty registry")
	}
	seen := map[string]bool{}
	for i, s := range a {
		if s.Name == "" || s.New == nil {
			t.Fatalf("spec %d incomplete: %+v", i, s)
		}
		if seen[s.Name] {
			t.Fatalf("duplicate spec name %q", s.Name)
		}
		seen[s.Name] = true
		if s.Name != b[i].Name {
			t.Fatalf("registry order unstable at %d: %q vs %q", i, s.Name, b[i].Name)
		}
		if !strings.HasPrefix(s.Name, "micro/") && !strings.HasPrefix(s.Name, "sweep/") &&
			!strings.HasPrefix(s.Name, "city/") && !strings.HasPrefix(s.Name, "surface/") &&
			!strings.HasPrefix(s.Name, "server/") && !strings.HasPrefix(s.Name, "scheme/") {
			t.Errorf("spec %q outside the micro/, sweep/, city/, surface/, server/ and scheme/ namespaces", s.Name)
		}
	}
}

func TestSmokeSpecsAreSubset(t *testing.T) {
	smoke := SmokeSpecs()
	if len(smoke) == 0 {
		t.Fatal("empty smoke suite")
	}
	if len(smoke) >= len(Specs()) {
		t.Fatalf("smoke suite (%d specs) is not a reduced subset of the registry (%d)", len(smoke), len(Specs()))
	}
	names := map[string]bool{}
	for _, s := range Specs() {
		names[s.Name] = true
	}
	for _, s := range smoke {
		if !names[s.Name] {
			t.Errorf("smoke spec %q missing from the full registry", s.Name)
		}
	}
	// The tentpole's headline measurement must be gated.
	found := false
	for _, s := range smoke {
		if s.Name == "sweep/adapt-drops/surface" {
			found = true
		}
	}
	if !found {
		t.Error("smoke suite does not gate sweep/adapt-drops/surface")
	}
	// The sharded city engine must be gated too (its reduced variant).
	found = false
	for _, s := range smoke {
		if s.Name == "city/metro/guard" {
			found = true
		}
	}
	if !found {
		t.Error("smoke suite does not gate city/metro/guard")
	}
	// The tiered decision-surface selector and its status-quo rival must
	// both be gated so the tiering win stays measured.
	for _, want := range []string{"surface/tiered/metro", "surface/global-fine/metro"} {
		found = false
		for _, s := range smoke {
			if s.Name == want {
				found = true
			}
		}
		if !found {
			t.Errorf("smoke suite does not gate %s", want)
		}
	}
}

func TestFilter(t *testing.T) {
	out, err := Filter(Specs(), "^micro/admit/")
	if err != nil {
		t.Fatal(err)
	}
	if len(out) == 0 {
		t.Fatal("filter matched nothing")
	}
	for _, s := range out {
		if !strings.HasPrefix(s.Name, "micro/admit/") {
			t.Errorf("filter leaked %q", s.Name)
		}
	}
	if _, err := Filter(Specs(), "["); err == nil {
		t.Error("bad regexp accepted")
	}
}

// TestMeasureMicroSpec runs one cheap spec end to end through the
// measurement engine.
func TestMeasureMicroSpec(t *testing.T) {
	if testing.Short() {
		t.Skip("timing loop")
	}
	specs, err := Filter(Specs(), "^micro/des/schedule$")
	if err != nil || len(specs) != 1 {
		t.Fatalf("Filter = %v specs, err %v", len(specs), err)
	}
	r, err := specs[0].Measure(50 * time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if r.Name != "micro/des/schedule" || r.Iterations < 1 || r.NsPerOp <= 0 {
		t.Errorf("implausible result %+v", r)
	}
	if r.SimCallsPerSec != 0 {
		t.Errorf("micro spec reported sim calls: %+v", r)
	}
}

// TestMeasureSurfaceSpecs runs the tiered and global-fine surface specs
// end to end: both banks build (ladder anchoring, Preset installs, the
// shared process surface cache) and both bodies admit without error.
func TestMeasureSurfaceSpecs(t *testing.T) {
	if testing.Short() {
		t.Skip("timing loop")
	}
	for _, name := range []string{"surface/tiered/metro", "surface/global-fine/metro"} {
		specs, err := Filter(Specs(), "^"+name+"$")
		if err != nil || len(specs) != 1 {
			t.Fatalf("Filter(%s) = %v specs, err %v", name, len(specs), err)
		}
		r, err := specs[0].Measure(30 * time.Millisecond)
		if err != nil {
			t.Fatal(err)
		}
		if r.Iterations < 1 || r.NsPerOp <= 0 {
			t.Errorf("%s: implausible result %+v", name, r)
		}
		if r.SimCallsPerSec != 0 {
			t.Errorf("%s: surface spec reported sim calls: %+v", name, r)
		}
	}
}

// TestMeasureSweepSpecCountsCalls pins the simulated-calls accounting:
// the reduced fig10/facsp sweep at load 100 offers 700 network-wide
// calls per op (7 homogeneous cells x 100 requests).
func TestMeasureSweepSpecCountsCalls(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep")
	}
	specs, err := Filter(Specs(), "^sweep/fig10/facsp$")
	if err != nil || len(specs) != 1 {
		t.Fatalf("Filter = %v specs, err %v", len(specs), err)
	}
	r, err := specs[0].Measure(time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if r.SimCallsPerSec <= 0 {
		t.Fatalf("sweep spec reported no throughput: %+v", r)
	}
	perOp := r.SimCallsPerSec * r.NsPerOp / 1e9
	if perOp < 699 || perOp > 701 {
		t.Errorf("calls per op = %.1f, want 700", perOp)
	}
}

func TestReportRoundTrip(t *testing.T) {
	rep := NewReport("smoke", []Result{{Name: "micro/x", Iterations: 3, NsPerOp: 42}})
	var buf bytes.Buffer
	if err := rep.Write(&buf); err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if back.Schema != ReportSchema || len(back.Results) != 1 || back.Results[0].NsPerOp != 42 {
		t.Errorf("round trip lost data: %+v", back)
	}
	if back.GoVersion == "" || back.GOOS == "" || back.CPUs < 1 {
		t.Errorf("missing environment metadata: %+v", back)
	}
}

func TestCompare(t *testing.T) {
	base := &Report{Schema: 1, Results: []Result{
		{Name: "a", NsPerOp: 100, AllocsPerOp: 10},
		{Name: "b", NsPerOp: 100},
		{Name: "c", NsPerOp: 100},
		{Name: "d", NsPerOp: 100, AllocsPerOp: 10},
		{Name: "gone", NsPerOp: 100},
	}}
	cur := &Report{Schema: 1, Results: []Result{
		{Name: "a", NsPerOp: 129, AllocsPerOp: 10}, // +29%: inside the 30% tolerance
		{Name: "b", NsPerOp: 250},                  // +150%: ns/op regression
		{Name: "c", NsPerOp: 100},
		{Name: "d", NsPerOp: 100, AllocsPerOp: 40}, // 4x allocs: allocs/op regression
		{Name: "new", NsPerOp: 1},                  // not in baseline: ignored
	}}
	cmp := Compare(base, cur, 0.30)
	if cmp.Scale < 0.99 || cmp.Scale > 1.30 {
		t.Errorf("scale = %v, want ~1 (median of mostly-stable specs)", cmp.Scale)
	}
	if len(cmp.Regressions) != 2 {
		t.Fatalf("regressions = %+v, want exactly b (ns/op) and d (allocs/op)", cmp.Regressions)
	}
	if cmp.Regressions[0].Name != "b" || cmp.Regressions[0].Metric != "ns/op" {
		t.Errorf("regression[0] = %+v, want b ns/op", cmp.Regressions[0])
	}
	if cmp.Regressions[1].Name != "d" || cmp.Regressions[1].Metric != "allocs/op" {
		t.Errorf("regression[1] = %+v, want d allocs/op", cmp.Regressions[1])
	}
	if len(cmp.Missing) != 1 || cmp.Missing[0] != "gone" {
		t.Errorf("missing = %v, want [gone]", cmp.Missing)
	}
}

// TestCompareNormalizesHardwareDelta pins the cross-machine contract: a
// uniform ns/op shift (the baseline came from a slower or faster
// machine) is absorbed into Scale, while a spec that regressed relative
// to its peers still fails.
func TestCompareNormalizesHardwareDelta(t *testing.T) {
	base := &Report{Schema: 1, Results: []Result{
		{Name: "a", NsPerOp: 100},
		{Name: "b", NsPerOp: 200},
		{Name: "c", NsPerOp: 300},
	}}
	// This machine is uniformly 2x slower than the baseline machine.
	uniform := &Report{Schema: 1, Results: []Result{
		{Name: "a", NsPerOp: 200},
		{Name: "b", NsPerOp: 400},
		{Name: "c", NsPerOp: 600},
	}}
	cmp := Compare(base, uniform, 0.30)
	if len(cmp.Regressions) != 0 {
		t.Errorf("uniform 2x shift flagged as regressions: %+v", cmp.Regressions)
	}
	if cmp.Scale < 1.99 || cmp.Scale > 2.01 {
		t.Errorf("scale = %v, want 2", cmp.Scale)
	}
	// Same hardware delta, but spec c regressed 2x on top of it.
	relative := &Report{Schema: 1, Results: []Result{
		{Name: "a", NsPerOp: 200},
		{Name: "b", NsPerOp: 400},
		{Name: "c", NsPerOp: 1200},
	}}
	cmp = Compare(base, relative, 0.30)
	if len(cmp.Regressions) != 1 || cmp.Regressions[0].Name != "c" {
		t.Fatalf("regressions = %+v, want exactly c", cmp.Regressions)
	}
}

// TestCompareAnchorsScaleOnMicroSpecs pins the anti-masking property: a
// regression that co-moves the majority of sweep specs must not shift
// the hardware scale (which is anchored on the micro specs) and hide
// itself.
func TestCompareAnchorsScaleOnMicroSpecs(t *testing.T) {
	base := &Report{Schema: 1, Results: []Result{
		{Name: "micro/a", NsPerOp: 100},
		{Name: "sweep/b", NsPerOp: 100},
		{Name: "sweep/c", NsPerOp: 100},
	}}
	cur := &Report{Schema: 1, Results: []Result{
		{Name: "micro/a", NsPerOp: 100},
		{Name: "sweep/b", NsPerOp: 200}, // the whole sweep path regressed 2x;
		{Name: "sweep/c", NsPerOp: 200}, // an all-spec median would absorb it
	}}
	cmp := Compare(base, cur, 0.30)
	if cmp.Scale < 0.99 || cmp.Scale > 1.01 {
		t.Errorf("scale = %v, want 1 (anchored on micro/a)", cmp.Scale)
	}
	if len(cmp.Regressions) != 2 {
		t.Fatalf("regressions = %+v, want both sweep specs", cmp.Regressions)
	}
}
