package wire

import (
	"bytes"
	"errors"
	"io"
	"math"
	"strings"
	"testing"

	"facsp/internal/traffic"
)

// fuzzSeeds are the shared starting corpus for both decode targets: valid
// traffic, malformed JSON, pathological numbers, and framing attacks
// (oversized single line, embedded blank lines, huge repeated input).
func fuzzSeeds(f *testing.F) {
	f.Add([]byte(`{"v":1,"op":"admit","id":1,"class":"voice","speed_kmh":60,"angle_deg":10}` + "\n"))
	f.Add([]byte(`{"v":1,"op":"release","id":1,"class":"voice"}` + "\n"))
	f.Add([]byte(`{"v":1,"op":"status"}` + "\n"))
	f.Add([]byte(`{"v":1,"ok":true,"accept":true,"score":0.62,"outcome":"A","occupancy":5,"capacity":40,"scheme":"FACS-P"}` + "\n"))
	f.Add([]byte("not json\n"))
	f.Add([]byte("{\n"))
	f.Add([]byte(`{"v":1,"op":"admit","class":"voice","min_bu":1e308,"speed_kmh":-1}` + "\n"))
	f.Add([]byte(`{"v":9999999999999999999,"op":"admit"}` + "\n"))
	f.Add([]byte(`{"v":1,"op":"admit","id":-1}` + "\n"))
	f.Add([]byte("\n\n\n"))
	f.Add([]byte(`{"v":1,"op":"admit","class":"` + strings.Repeat("x", 100) + `"}` + "\n"))
	// One line over the decoder's 64 KiB bound.
	f.Add([]byte(`{"pad":"` + strings.Repeat("a", 70<<10) + `"}` + "\n"))
	// Many small lines: the decoder must terminate by consuming input.
	f.Add(bytes.Repeat([]byte(`{"v":1,"op":"status"}`+"\n"), 64))
}

// FuzzDecodeRequest drains arbitrary bytes through the bounded
// line-oriented decoder and checks the protocol invariant chain: Decode
// always terminates with a decoded value or a definite error, and any
// request that passes Validate must convert via CACRequest into a
// controller request that itself validates — the daemon relies on exactly
// that chain for every admission it queues.
func FuzzDecodeRequest(f *testing.F) {
	fuzzSeeds(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		dec := NewDecoder(bytes.NewReader(data))
		// One iteration bound: input is finite, so Decode can return at
		// most one value per newline plus one trailing error. Hitting the
		// bound means the decoder stopped consuming input.
		maxMsgs := bytes.Count(data, []byte{'\n'}) + 2
		for i := 0; ; i++ {
			if i > maxMsgs {
				t.Fatalf("decoder did not terminate after %d messages", maxMsgs)
			}
			var req Request
			err := dec.Decode(&req)
			if errors.Is(err, io.EOF) {
				return
			}
			if err != nil {
				// A framing or syntax error kills the session in the
				// daemon; the stream is done.
				return
			}
			if err := req.Validate(); err != nil {
				continue
			}
			if req.Op == OpStatus {
				// Status carries no payload to convert.
				continue
			}
			creq, err := req.CACRequest()
			if err != nil {
				// The only post-Validate failure is a min-bandwidth above
				// the class bandwidth; anything else is a drifted contract.
				if req.MinBU <= mustClass(t, req.Class).Bandwidth() {
					t.Fatalf("CACRequest failed on a validated request %+v: %v", req, err)
				}
				continue
			}
			if err := creq.Validate(); err != nil {
				t.Fatalf("validated wire request %+v produced invalid cac request %+v: %v", req, creq, err)
			}
			// Round-trip: a decoded request re-encodes to the same value
			// (Request is comparable — no slices or maps).
			var buf bytes.Buffer
			if err := NewEncoder(&buf).Encode(req); err != nil {
				t.Fatalf("re-encode: %v", err)
			}
			var again Request
			if err := NewDecoder(&buf).Decode(&again); err != nil {
				t.Fatalf("re-decode: %v", err)
			}
			if again != req {
				t.Fatalf("request round-trip changed the value:\n%+v\n%+v", req, again)
			}
		}
	})
}

// FuzzDecodeResponse drains arbitrary bytes as responses — the client
// half of the protocol (loadgen, neighbour daemons) — and round-trips
// every decoded value through the encoder.
func FuzzDecodeResponse(f *testing.F) {
	fuzzSeeds(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		dec := NewDecoder(bytes.NewReader(data))
		maxMsgs := bytes.Count(data, []byte{'\n'}) + 2
		for i := 0; ; i++ {
			if i > maxMsgs {
				t.Fatalf("decoder did not terminate after %d messages", maxMsgs)
			}
			var resp Response
			if err := dec.Decode(&resp); err != nil {
				// EOF or a framing/syntax error: the stream is done.
				return
			}
			// NaN/Inf cannot round-trip JSON; Marshal rejects them, which
			// is fine — a real daemon never emits them.
			if hasNonFinite(resp) {
				continue
			}
			var buf bytes.Buffer
			if err := NewEncoder(&buf).Encode(resp); err != nil {
				t.Fatalf("re-encode of decoded response %+v: %v", resp, err)
			}
			var again Response
			if err := NewDecoder(&buf).Decode(&again); err != nil {
				t.Fatalf("re-decode: %v", err)
			}
			if again != resp {
				t.Fatalf("response round-trip changed the value:\n%+v\n%+v", resp, again)
			}
		}
	})
}

func mustClass(t *testing.T, name string) traffic.Class {
	t.Helper()
	c, err := ParseClass(name)
	if err != nil {
		t.Fatalf("class %q passed Validate but not ParseClass: %v", name, err)
	}
	return c
}

func hasNonFinite(r Response) bool {
	for _, v := range []float64{r.Score, r.Allocated, r.Occupancy, r.Capacity} {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return true
		}
	}
	return false
}
