package wire

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"

	"facsp/internal/traffic"
)

func validAdmit() Request {
	return Request{V: Version, Op: OpAdmit, ID: 1, Class: "voice", SpeedKmh: 60, AngleDeg: 10}
}

func TestParseClass(t *testing.T) {
	tests := []struct {
		name    string
		want    traffic.Class
		wantErr bool
	}{
		{name: "text", want: traffic.Text},
		{name: "voice", want: traffic.Voice},
		{name: "video", want: traffic.Video},
		{name: "VOICE", wantErr: true},
		{name: "", wantErr: true},
		{name: "fax", wantErr: true},
	}
	for _, tt := range tests {
		got, err := ParseClass(tt.name)
		if (err != nil) != tt.wantErr {
			t.Errorf("ParseClass(%q) error = %v", tt.name, err)
			continue
		}
		if err == nil && got != tt.want {
			t.Errorf("ParseClass(%q) = %v, want %v", tt.name, got, tt.want)
		}
	}
}

func TestRequestValidate(t *testing.T) {
	tests := []struct {
		name    string
		mut     func(*Request)
		wantErr bool
	}{
		{name: "valid admit", mut: func(*Request) {}},
		{name: "valid release", mut: func(r *Request) { r.Op = OpRelease }},
		{name: "valid status", mut: func(r *Request) { *r = Request{V: Version, Op: OpStatus} }},
		{name: "wrong version", mut: func(r *Request) { r.V = 2 }, wantErr: true},
		{name: "zero version", mut: func(r *Request) { r.V = 0 }, wantErr: true},
		{name: "bad op", mut: func(r *Request) { r.Op = "reboot" }, wantErr: true},
		{name: "bad class", mut: func(r *Request) { r.Class = "fax" }, wantErr: true},
		{name: "negative speed", mut: func(r *Request) { r.SpeedKmh = -5 }, wantErr: true},
		{name: "negative priority", mut: func(r *Request) { r.Priority = -1 }, wantErr: true},
		{name: "valid cell", mut: func(r *Request) { r.Cell = 6 }},
		{name: "negative cell", mut: func(r *Request) { r.Cell = -1 }, wantErr: true},
		{name: "negative min bandwidth", mut: func(r *Request) { r.MinBU = -2 }, wantErr: true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			r := validAdmit()
			tt.mut(&r)
			err := r.Validate()
			if (err != nil) != tt.wantErr {
				t.Errorf("Validate() = %v, wantErr %v", err, tt.wantErr)
			}
		})
	}
}

func TestCACRequest(t *testing.T) {
	r := validAdmit()
	r.Handoff = true
	r.Priority = 2
	req, err := r.CACRequest()
	if err != nil {
		t.Fatal(err)
	}
	if req.Bandwidth != 5 || !req.RealTime || !req.Handoff || req.Priority != 2 || req.ID != 1 {
		t.Errorf("CACRequest = %+v", req)
	}
	r.Class = "bogus"
	if _, err := r.CACRequest(); err == nil {
		t.Error("bogus class accepted")
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	enc := NewEncoder(&buf)
	want := []Request{
		validAdmit(),
		{V: Version, Op: OpStatus},
		{V: Version, Op: OpRelease, ID: 9, Class: "video"},
	}
	for _, r := range want {
		if err := enc.Encode(r); err != nil {
			t.Fatalf("Encode: %v", err)
		}
	}
	dec := NewDecoder(&buf)
	for i := range want {
		var got Request
		if err := dec.Decode(&got); err != nil {
			t.Fatalf("Decode %d: %v", i, err)
		}
		if got != want[i] {
			t.Errorf("message %d = %+v, want %+v", i, got, want[i])
		}
	}
	var extra Request
	if err := dec.Decode(&extra); !errors.Is(err, io.EOF) {
		t.Errorf("expected EOF, got %v", err)
	}
}

func TestDecodeMalformed(t *testing.T) {
	dec := NewDecoder(strings.NewReader("{not json}\n"))
	var r Request
	if err := dec.Decode(&r); err == nil {
		t.Error("malformed line accepted")
	}
}

func TestDecodeBoundedLine(t *testing.T) {
	// A single line beyond the 64 KiB bound must fail rather than grow
	// without limit.
	huge := strings.Repeat("x", 128<<10)
	dec := NewDecoder(strings.NewReader(huge))
	var r Request
	if err := dec.Decode(&r); err == nil {
		t.Error("oversized line accepted")
	}
}

func TestResponseRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	enc := NewEncoder(&buf)
	want := Response{V: Version, OK: true, Accept: true, Score: 0.42, Outcome: "WA", Occupancy: 12, Capacity: 40, Scheme: "FACS-P"}
	if err := enc.Encode(want); err != nil {
		t.Fatal(err)
	}
	var got Response
	if err := NewDecoder(&buf).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("Response = %+v, want %+v", got, want)
	}
}

// TestCellFieldBackwardCompatible pins the v1 extension contract: a
// pre-extension request (no "cell" key) decodes to cell 0 and validates,
// and cell-0 responses do not emit the key, so old clients never see it.
func TestCellFieldBackwardCompatible(t *testing.T) {
	legacy := `{"v":1,"op":"admit","id":1,"class":"voice","speed_kmh":60}` + "\n"
	var req Request
	if err := NewDecoder(strings.NewReader(legacy)).Decode(&req); err != nil {
		t.Fatal(err)
	}
	if req.Cell != 0 {
		t.Errorf("legacy request decoded to cell %d, want 0", req.Cell)
	}
	if err := req.Validate(); err != nil {
		t.Errorf("legacy request rejected: %v", err)
	}

	var buf bytes.Buffer
	if err := NewEncoder(&buf).Encode(Response{V: Version, OK: true, Capacity: 40}); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"cell", "code"} {
		if strings.Contains(buf.String(), `"`+key+`"`) {
			t.Errorf("cell-0 success response leaks the %q key to old clients: %s", key, buf.String())
		}
	}
}

// TestOverloadedResponseRoundTrip covers the shed reply: the
// machine-readable code survives the wire and addresses its cell.
func TestOverloadedResponseRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	want := Response{V: Version, OK: false, Err: "queue full", Code: CodeOverloaded, Cell: 3, Occupancy: 37, Capacity: 40}
	if err := NewEncoder(&buf).Encode(want); err != nil {
		t.Fatal(err)
	}
	var got Response
	if err := NewDecoder(&buf).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("Response = %+v, want %+v", got, want)
	}
}
