package wire

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"

	"facsp/internal/traffic"
)

func validAdmit() Request {
	return Request{V: Version, Op: OpAdmit, ID: 1, Class: "voice", SpeedKmh: 60, AngleDeg: 10}
}

func TestParseClass(t *testing.T) {
	tests := []struct {
		name    string
		want    traffic.Class
		wantErr bool
	}{
		{name: "text", want: traffic.Text},
		{name: "voice", want: traffic.Voice},
		{name: "video", want: traffic.Video},
		{name: "VOICE", wantErr: true},
		{name: "", wantErr: true},
		{name: "fax", wantErr: true},
	}
	for _, tt := range tests {
		got, err := ParseClass(tt.name)
		if (err != nil) != tt.wantErr {
			t.Errorf("ParseClass(%q) error = %v", tt.name, err)
			continue
		}
		if err == nil && got != tt.want {
			t.Errorf("ParseClass(%q) = %v, want %v", tt.name, got, tt.want)
		}
	}
}

func TestRequestValidate(t *testing.T) {
	tests := []struct {
		name    string
		mut     func(*Request)
		wantErr bool
	}{
		{name: "valid admit", mut: func(*Request) {}},
		{name: "valid release", mut: func(r *Request) { r.Op = OpRelease }},
		{name: "valid status", mut: func(r *Request) { *r = Request{V: Version, Op: OpStatus} }},
		{name: "wrong version", mut: func(r *Request) { r.V = 2 }, wantErr: true},
		{name: "zero version", mut: func(r *Request) { r.V = 0 }, wantErr: true},
		{name: "bad op", mut: func(r *Request) { r.Op = "reboot" }, wantErr: true},
		{name: "bad class", mut: func(r *Request) { r.Class = "fax" }, wantErr: true},
		{name: "negative speed", mut: func(r *Request) { r.SpeedKmh = -5 }, wantErr: true},
		{name: "negative priority", mut: func(r *Request) { r.Priority = -1 }, wantErr: true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			r := validAdmit()
			tt.mut(&r)
			err := r.Validate()
			if (err != nil) != tt.wantErr {
				t.Errorf("Validate() = %v, wantErr %v", err, tt.wantErr)
			}
		})
	}
}

func TestCACRequest(t *testing.T) {
	r := validAdmit()
	r.Handoff = true
	r.Priority = 2
	req, err := r.CACRequest()
	if err != nil {
		t.Fatal(err)
	}
	if req.Bandwidth != 5 || !req.RealTime || !req.Handoff || req.Priority != 2 || req.ID != 1 {
		t.Errorf("CACRequest = %+v", req)
	}
	r.Class = "bogus"
	if _, err := r.CACRequest(); err == nil {
		t.Error("bogus class accepted")
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	enc := NewEncoder(&buf)
	want := []Request{
		validAdmit(),
		{V: Version, Op: OpStatus},
		{V: Version, Op: OpRelease, ID: 9, Class: "video"},
	}
	for _, r := range want {
		if err := enc.Encode(r); err != nil {
			t.Fatalf("Encode: %v", err)
		}
	}
	dec := NewDecoder(&buf)
	for i := range want {
		var got Request
		if err := dec.Decode(&got); err != nil {
			t.Fatalf("Decode %d: %v", i, err)
		}
		if got != want[i] {
			t.Errorf("message %d = %+v, want %+v", i, got, want[i])
		}
	}
	var extra Request
	if err := dec.Decode(&extra); !errors.Is(err, io.EOF) {
		t.Errorf("expected EOF, got %v", err)
	}
}

func TestDecodeMalformed(t *testing.T) {
	dec := NewDecoder(strings.NewReader("{not json}\n"))
	var r Request
	if err := dec.Decode(&r); err == nil {
		t.Error("malformed line accepted")
	}
}

func TestDecodeBoundedLine(t *testing.T) {
	// A single line beyond the 64 KiB bound must fail rather than grow
	// without limit.
	huge := strings.Repeat("x", 128<<10)
	dec := NewDecoder(strings.NewReader(huge))
	var r Request
	if err := dec.Decode(&r); err == nil {
		t.Error("oversized line accepted")
	}
}

func TestResponseRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	enc := NewEncoder(&buf)
	want := Response{V: Version, OK: true, Accept: true, Score: 0.42, Outcome: "WA", Occupancy: 12, Capacity: 40, Scheme: "FACS-P"}
	if err := enc.Encode(want); err != nil {
		t.Fatal(err)
	}
	var got Response
	if err := NewDecoder(&buf).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("Response = %+v, want %+v", got, want)
	}
}
