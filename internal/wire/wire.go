// Package wire defines the JSON-lines protocol spoken between
// cmd/facs-server (a base-station admission daemon) and its clients. One
// request per line, one response per line, over a plain TCP stream.
//
// The protocol is deliberately schema-first and versioned so that
// heterogeneous clients (handset simulators, load generators, neighbouring
// base stations) can interoperate with a long-lived daemon.
package wire

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"

	"facsp/internal/cac"
	"facsp/internal/traffic"
)

// Version is the protocol version; servers reject other versions.
//
// Version 1 has grown two backward-compatible extensions: a "cell" field
// on requests (addressing one cell of a multi-cell daemon; absent means
// cell 0, which is what every pre-extension client sends) and a "code"
// field on responses carrying a machine-readable error class. Old clients
// interoperate with new servers and vice versa, so the version is
// unchanged.
const Version = 1

// Response codes: machine-readable error classes carried next to the
// human-readable Err text, so clients (load generators, neighbour cells)
// can distinguish backpressure from protocol bugs without parsing
// messages.
const (
	// CodeOverloaded marks a request shed by an overloaded cell: its
	// bounded request queue was full. The request had no effect; the
	// client may retry later.
	CodeOverloaded = "overloaded"
)

// Op is the request operation.
type Op string

// Supported operations.
const (
	// OpAdmit asks the BS to admit a connection.
	OpAdmit Op = "admit"
	// OpRelease returns a connection's bandwidth.
	OpRelease Op = "release"
	// OpStatus asks for occupancy/capacity without changing state.
	OpStatus Op = "status"
)

// Request is one client message.
type Request struct {
	// V is the protocol version (must equal Version).
	V int `json:"v"`
	// Op selects the operation (admit, release, status).
	Op Op `json:"op"`
	// ID identifies the connection across admit/release.
	ID uint64 `json:"id,omitempty"`
	// Cell addresses one cell of a multi-cell daemon by index. Absent (0)
	// targets cell 0, so single-cell clients predating the field keep
	// working unchanged.
	Cell int `json:"cell,omitempty"`
	// Class is the service class name: "text", "voice" or "video".
	Class string `json:"class,omitempty"`
	// SpeedKmh is the user speed in km/h.
	SpeedKmh float64 `json:"speed_kmh,omitempty"`
	// AngleDeg is the trajectory angle relative to the BS bearing.
	AngleDeg float64 `json:"angle_deg,omitempty"`
	// Handoff marks an on-going call entering from a neighbour cell.
	Handoff bool `json:"handoff,omitempty"`
	// Priority is the optional requesting-connection priority level.
	Priority int `json:"priority,omitempty"`
	// MinBU is the lowest bandwidth (in BU) the connection can tolerate.
	// Adaptive schemes may serve it anywhere in [MinBU, class bandwidth];
	// 0 leaves the floor to the scheme's per-class degradation ladder.
	// Non-adaptive schemes ignore it.
	MinBU float64 `json:"min_bu,omitempty"`
}

// Response is one server message.
type Response struct {
	// V is the protocol version.
	V int `json:"v"`
	// OK distinguishes protocol-level success from Err.
	OK bool `json:"ok"`
	// Err carries the error message when OK is false.
	Err string `json:"err,omitempty"`
	// Code is the machine-readable error class when OK is false (e.g.
	// CodeOverloaded); empty for errors without a dedicated class.
	Code string `json:"code,omitempty"`
	// Cell echoes the cell index the response describes.
	Cell int `json:"cell,omitempty"`
	// Accept is the admission verdict (admit only).
	Accept bool `json:"accept,omitempty"`
	// Score is the controller's confidence in [-1, 1].
	Score float64 `json:"score,omitempty"`
	// Outcome is the linguistic outcome (A, WA, NRNA, WR, R, ...).
	Outcome string `json:"outcome,omitempty"`
	// Allocated is the bandwidth actually granted in BU on an accepted
	// admit. Adaptive schemes may grant less than the class bandwidth (a
	// degraded admission); non-adaptive schemes omit it, meaning the full
	// request was granted.
	Allocated float64 `json:"allocated,omitempty"`
	// Occupancy and Capacity report the cell state in BU.
	Occupancy float64 `json:"occupancy"`
	// Capacity is the cell's total bandwidth.
	Capacity float64 `json:"capacity"`
	// Scheme names the admission scheme serving the cell.
	Scheme string `json:"scheme,omitempty"`
}

// ParseClass maps a wire class name to a traffic class.
func ParseClass(name string) (traffic.Class, error) {
	switch name {
	case "text":
		return traffic.Text, nil
	case "voice":
		return traffic.Voice, nil
	case "video":
		return traffic.Video, nil
	default:
		return 0, fmt.Errorf("wire: unknown class %q (want text, voice or video)", name)
	}
}

// Validate checks a request's protocol-level invariants.
func (r Request) Validate() error {
	if r.V != Version {
		return fmt.Errorf("wire: protocol version %d, want %d", r.V, Version)
	}
	if r.Cell < 0 {
		return fmt.Errorf("wire: negative cell %d", r.Cell)
	}
	switch r.Op {
	case OpAdmit, OpRelease:
		if _, err := ParseClass(r.Class); err != nil {
			return err
		}
		if r.SpeedKmh < 0 {
			return fmt.Errorf("wire: negative speed %v", r.SpeedKmh)
		}
		if r.Priority < 0 {
			return fmt.Errorf("wire: negative priority %d", r.Priority)
		}
		if r.MinBU < 0 {
			return fmt.Errorf("wire: negative min bandwidth %v", r.MinBU)
		}
	case OpStatus:
		// No payload.
	default:
		return fmt.Errorf("wire: unknown op %q", r.Op)
	}
	return nil
}

// CACRequest converts a validated wire request into the controller
// contract type.
func (r Request) CACRequest() (cac.Request, error) {
	class, err := ParseClass(r.Class)
	if err != nil {
		return cac.Request{}, err
	}
	if r.MinBU > class.Bandwidth() {
		return cac.Request{}, fmt.Errorf("wire: min bandwidth %v exceeds %s class bandwidth %v",
			r.MinBU, class, class.Bandwidth())
	}
	return cac.Request{
		ID:           r.ID,
		Speed:        r.SpeedKmh,
		Angle:        r.AngleDeg,
		Bandwidth:    class.Bandwidth(),
		MinBandwidth: r.MinBU,
		RealTime:     class.RealTime(),
		Handoff:      r.Handoff,
		Priority:     r.Priority,
	}, nil
}

// Encoder writes newline-delimited JSON messages.
type Encoder struct {
	w *bufio.Writer
}

// NewEncoder wraps w.
func NewEncoder(w io.Writer) *Encoder { return &Encoder{w: bufio.NewWriter(w)} }

// Encode writes one message and flushes.
func (e *Encoder) Encode(v any) error {
	b, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("wire: marshal: %w", err)
	}
	if _, err := e.w.Write(append(b, '\n')); err != nil {
		return err
	}
	return e.w.Flush()
}

// Decoder reads newline-delimited JSON messages with a bounded line size
// (64 KiB) so a misbehaving peer cannot exhaust server memory.
type Decoder struct {
	s *bufio.Scanner
}

// NewDecoder wraps r.
func NewDecoder(r io.Reader) *Decoder {
	s := bufio.NewScanner(r)
	s.Buffer(make([]byte, 0, 4096), 64<<10)
	return &Decoder{s: s}
}

// Decode reads one message into v. It returns io.EOF at end of stream.
func (d *Decoder) Decode(v any) error {
	if !d.s.Scan() {
		if err := d.s.Err(); err != nil {
			return err
		}
		return io.EOF
	}
	if err := json.Unmarshal(d.s.Bytes(), v); err != nil {
		return fmt.Errorf("wire: unmarshal %q: %w", d.s.Text(), err)
	}
	return nil
}
