package simflag

import (
	"strings"
	"testing"
)

func TestParseLoads(t *testing.T) {
	tests := []struct {
		in      string
		want    []int
		wantErr bool
	}{
		{in: "10", want: []int{10}},
		{in: "10, 25,50", want: []int{10, 25, 50}},
		{in: "0,5", want: []int{0, 5}},
		{in: "", wantErr: true},
		{in: "x", wantErr: true},
		{in: "10,,20", wantErr: true},
		{in: "-5", wantErr: true},
	}
	for _, tt := range tests {
		got, err := ParseLoads(tt.in)
		if tt.wantErr {
			if err == nil {
				t.Errorf("ParseLoads(%q) = %v, want error", tt.in, got)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseLoads(%q) error = %v", tt.in, err)
			continue
		}
		if len(got) != len(tt.want) {
			t.Errorf("ParseLoads(%q) = %v, want %v", tt.in, got, tt.want)
			continue
		}
		for i := range tt.want {
			if got[i] != tt.want[i] {
				t.Errorf("ParseLoads(%q)[%d] = %d, want %d", tt.in, i, got[i], tt.want[i])
			}
		}
	}
}

func TestSweepOptionsValidation(t *testing.T) {
	for _, tt := range []struct {
		name                   string
		loads                  string
		reps, workers, surface int
		wantErr                string
	}{
		{name: "ok-defaults", loads: "", reps: 20},
		{name: "ok-explicit", loads: "10,100", reps: 2, workers: 4, surface: 33},
		{name: "zero-reps", reps: 0, wantErr: "-reps"},
		{name: "negative-reps", reps: -3, wantErr: "-reps"},
		{name: "negative-workers", reps: 1, workers: -1, wantErr: "-workers"},
		{name: "surface-one", reps: 1, surface: 1, wantErr: "-surface"},
		{name: "surface-negative", reps: 1, surface: -2, wantErr: "-surface"},
		{name: "bad-loads", loads: "10,x", reps: 1, wantErr: "bad load"},
	} {
		t.Run(tt.name, func(t *testing.T) {
			opts, err := SweepOptions(tt.loads, tt.reps, tt.workers, tt.surface, 7)
			if tt.wantErr != "" {
				if err == nil || !strings.Contains(err.Error(), tt.wantErr) {
					t.Fatalf("SweepOptions error = %v, want mention of %q", err, tt.wantErr)
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			if opts.Replications != tt.reps || opts.Workers != tt.workers ||
				opts.SurfaceResolution != tt.surface || opts.BaseSeed != 7 {
				t.Errorf("SweepOptions = %+v, want the inputs passed through", opts)
			}
			if tt.loads == "" && opts.Loads != nil {
				t.Errorf("empty -loads produced %v, want nil (default grid)", opts.Loads)
			}
		})
	}
}
