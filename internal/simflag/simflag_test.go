package simflag

import (
	"fmt"
	"strings"
	"testing"

	"facsp/internal/hexgrid"
)

func TestParseLoads(t *testing.T) {
	tests := []struct {
		in      string
		want    []int
		wantErr bool
	}{
		{in: "10", want: []int{10}},
		{in: "10, 25,50", want: []int{10, 25, 50}},
		{in: "0,5", want: []int{0, 5}},
		{in: "", wantErr: true},
		{in: "x", wantErr: true},
		{in: "10,,20", wantErr: true},
		{in: "-5", wantErr: true},
	}
	for _, tt := range tests {
		got, err := ParseLoads(tt.in)
		if tt.wantErr {
			if err == nil {
				t.Errorf("ParseLoads(%q) = %v, want error", tt.in, got)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseLoads(%q) error = %v", tt.in, err)
			continue
		}
		if len(got) != len(tt.want) {
			t.Errorf("ParseLoads(%q) = %v, want %v", tt.in, got, tt.want)
			continue
		}
		for i := range tt.want {
			if got[i] != tt.want[i] {
				t.Errorf("ParseLoads(%q)[%d] = %d, want %d", tt.in, i, got[i], tt.want[i])
			}
		}
	}
}

func TestSweepOptionsValidation(t *testing.T) {
	for _, tt := range []struct {
		name                   string
		loads                  string
		reps, workers, surface int
		wantErr                string
	}{
		{name: "ok-defaults", loads: "", reps: 20},
		{name: "ok-explicit", loads: "10,100", reps: 2, workers: 4, surface: 33},
		{name: "zero-reps", reps: 0, wantErr: "-reps"},
		{name: "negative-reps", reps: -3, wantErr: "-reps"},
		{name: "negative-workers", reps: 1, workers: -1, wantErr: "-workers"},
		{name: "surface-one", reps: 1, surface: 1, wantErr: "-surface"},
		{name: "surface-negative", reps: 1, surface: -2, wantErr: "-surface"},
		{name: "bad-loads", loads: "10,x", reps: 1, wantErr: "bad load"},
	} {
		t.Run(tt.name, func(t *testing.T) {
			opts, err := SweepOptions(tt.loads, tt.reps, tt.workers, tt.surface, 7)
			if tt.wantErr != "" {
				if err == nil || !strings.Contains(err.Error(), tt.wantErr) {
					t.Fatalf("SweepOptions error = %v, want mention of %q", err, tt.wantErr)
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			if opts.Replications != tt.reps || opts.Workers != tt.workers ||
				opts.SurfaceResolution != tt.surface || opts.BaseSeed != 7 {
				t.Errorf("SweepOptions = %+v, want the inputs passed through", opts)
			}
			if tt.loads == "" && opts.Loads != nil {
				t.Errorf("empty -loads produced %v, want nil (default grid)", opts.Loads)
			}
		})
	}
}

func TestCityShard(t *testing.T) {
	topo := hexgrid.DiskTopology(hexgrid.Coord{}, 3) // 37 cells, 16 default groups
	if _, err := CityShard(-1, 0, topo); err == nil {
		t.Error("negative groups accepted")
	}
	if _, err := CityShard(0, -1, topo); err == nil {
		t.Error("negative workers accepted")
	}
	// Workers above the resolved group count: a usage error naming both
	// flags and the resolved group count.
	_, err := CityShard(4, 8, topo)
	if err == nil {
		t.Fatal("8 workers over 4 groups accepted")
	}
	for _, want := range []string{"-city-workers 8", "4 cell groups", "-city-groups"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q does not mention %q", err, want)
		}
	}
	// Default groups path in the error message.
	_, err = CityShard(0, 99, topo)
	if err == nil || !strings.Contains(err.Error(), fmt.Sprintf("%d cell groups", topo.DefaultGroups())) {
		t.Errorf("default-groups error = %v, want mention of %d groups", err, topo.DefaultGroups())
	}
	// Valid splits pass through un-resolved (RunSharded resolves again).
	opts, err := CityShard(8, 4, topo)
	if err != nil {
		t.Fatal(err)
	}
	if opts.Groups != 8 || opts.Workers != 4 {
		t.Errorf("opts = %+v, want {8 4}", opts)
	}
	if _, err := CityShard(0, 0, topo); err != nil {
		t.Errorf("defaults rejected: %v", err)
	}
}
