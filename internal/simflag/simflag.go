// Package simflag holds the flag parsing and validation shared by the
// sweep-driving commands (cmd/facs-sim, cmd/facs-bench), so an invalid
// -loads or -reps value fails with one consistent usage error at the flag
// boundary instead of a panic deep inside a worker goroutine.
package simflag

import (
	"fmt"
	"strconv"
	"strings"

	"facsp/internal/cellsim"
	"facsp/internal/experiment"
	"facsp/internal/hexgrid"
)

// ParseLoads parses a comma-separated -loads list ("10,25,50,100") into
// the sweep's x axis. Empty and negative entries are usage errors.
func ParseLoads(s string) ([]int, error) {
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		n, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, fmt.Errorf("bad load %q: %w", p, err)
		}
		if n < 0 {
			return nil, fmt.Errorf("negative load %d", n)
		}
		out = append(out, n)
	}
	return out, nil
}

// SweepOptions validates the shared sweep flags and assembles the
// experiment options. loads == "" keeps the caller's default grid
// (Options.Loads nil); reps must be at least 1, workers non-negative
// (0 = GOMAXPROCS), and surface 0 (exact inference) or a grid resolution
// of at least 2.
func SweepOptions(loads string, reps, workers, surface int, baseSeed uint64) (experiment.Options, error) {
	if reps < 1 {
		return experiment.Options{}, fmt.Errorf("-reps %d: must be at least 1", reps)
	}
	if workers < 0 {
		return experiment.Options{}, fmt.Errorf("-workers %d: must be non-negative (0 = GOMAXPROCS)", workers)
	}
	if surface < 0 || surface == 1 {
		// Phrased neutrally: 0 means exact inference to facs-sim but the
		// default surface resolution to facs-bench's /surface variants.
		return experiment.Options{}, fmt.Errorf("-surface %d: must be 0 (the command's default) or a grid resolution >= 2", surface)
	}
	opts := experiment.Options{
		Replications:      reps,
		Workers:           workers,
		BaseSeed:          baseSeed,
		SurfaceResolution: surface,
	}
	if loads != "" {
		parsed, err := ParseLoads(loads)
		if err != nil {
			return experiment.Options{}, err
		}
		opts.Loads = parsed
	}
	return opts, nil
}

// CityShard validates the -city-groups / -city-workers split of a sharded
// city run against the compiled topology, at the flag boundary. A worker
// can only own whole cell groups, so worker counts above the resolved
// group count are usage errors, not silent clamps. 0 groups takes the
// topology's default partition; 0 workers takes GOMAXPROCS capped at the
// group count.
func CityShard(groups, workers int, topo *hexgrid.Topology) (cellsim.ShardOptions, error) {
	if groups < 0 {
		return cellsim.ShardOptions{}, fmt.Errorf("-city-groups %d: must be non-negative (0 = topology default)", groups)
	}
	if workers < 0 {
		return cellsim.ShardOptions{}, fmt.Errorf("-city-workers %d: must be non-negative (0 = GOMAXPROCS capped at the group count)", workers)
	}
	opts := cellsim.ShardOptions{Groups: groups, Workers: workers}
	if _, _, err := opts.Resolve(topo); err != nil {
		resolved := min(max(groups, 1), topo.Cells())
		if groups == 0 {
			resolved = topo.DefaultGroups()
		}
		return cellsim.ShardOptions{}, fmt.Errorf("-city-workers %d: the topology splits into %d cell groups and each worker owns whole groups; lower -city-workers or raise -city-groups", workers, resolved)
	}
	return opts, nil
}
