//go:build !race

package des

import "testing"

// chainHandler reschedules itself n times: the classic event-loop shape
// (every executed event arms the next), driving schedule + pop + dispatch
// through the arena and free list.
type chainHandler struct {
	sim  *Sim
	left int
	arg  int // pointer target so Op.Arg stays pointer-shaped
}

func (h *chainHandler) RunOp(now float64, op Op) {
	if h.left == 0 {
		return
	}
	h.left--
	if _, err := h.sim.AfterOp(1, Op{Code: op.Code, Arg: &h.arg}); err != nil {
		panic(err)
	}
}

// TestEventLoopAllocFree pins the des kernel's hot-path contract: once the
// arena and heap are warm, a schedule→run cycle of typed events performs
// zero allocations per event. The simulation core (cellsim) and the perf
// harness depend on this staying true. Gated out of -race because the
// detector instruments allocations.
func TestEventLoopAllocFree(t *testing.T) {
	var sim Sim
	h := &chainHandler{sim: &sim}
	sim.SetHandler(h)

	const events = 512
	warm := func() {
		sim.Reset()
		h.left = events
		if _, err := sim.AtOp(0, Op{Code: 1, Arg: &h.arg}); err != nil {
			t.Fatal(err)
		}
		if n := sim.Run(0); n != events+1 {
			t.Fatalf("ran %d events, want %d", n, events+1)
		}
	}
	warm() // grow arena, heap and free list once

	if n := testing.AllocsPerRun(10, warm); n != 0 {
		t.Errorf("warm event loop allocates %v per cycle (%v per event), want 0",
			n, n/float64(events))
	}
}

// TestScheduleCancelAllocFree checks the cancel path recycles slots
// without allocating either.
func TestScheduleCancelAllocFree(t *testing.T) {
	var sim Sim
	h := &chainHandler{sim: &sim}
	sim.SetHandler(h)
	// Warm one slot.
	hd, err := sim.AtOp(1, Op{Code: 1, Arg: &h.arg})
	if err != nil {
		t.Fatal(err)
	}
	sim.Cancel(hd)

	if n := testing.AllocsPerRun(1000, func() {
		hd, err := sim.AtOp(1, Op{Code: 1, Arg: &h.arg})
		if err != nil {
			t.Fatal(err)
		}
		sim.Cancel(hd)
	}); n != 0 {
		t.Errorf("schedule+cancel allocates %v per op, want 0", n)
	}
}
