// Package des is a minimal discrete-event simulation kernel: a simulation
// clock and a binary-heap event queue with deterministic tie-breaking.
//
// Events come in two shapes. Closure events (At/After) are callbacks
// scheduled at absolute simulation times — convenient, but each schedule
// captures its environment on the heap. Typed events (AtOp/AfterOp) carry
// an operation code and a pointer-shaped argument to a Handler installed
// with SetHandler; the queue stores them by value in a reusable arena, so
// a hot loop that schedules millions of them performs no per-event
// allocation. Both shapes share one queue and one ordering.
//
// Ties are broken by insertion order, so two runs that schedule the same
// events in the same order execute identically — a property the experiment
// harness depends on for reproducible figures.
package des

import (
	"fmt"
	"math"
)

// Event is a callback executed at its scheduled simulation time.
type Event func(now float64)

// Op is a typed event payload: an operation code and its argument. Arg
// should hold a pointer-shaped value (a pointer into a caller-owned slab,
// typically) so that scheduling stays allocation-free; boxing a large
// value type into it allocates.
type Op struct {
	// Code selects the operation; its meaning is the Handler's.
	Code int
	// Arg is the operation's argument.
	Arg any
}

// Handler executes typed events scheduled with AtOp/AfterOp.
type Handler interface {
	RunOp(now float64, op Op)
}

// item is one scheduled event, stored by value in the simulator's arena.
// Slots are recycled through a free list; gen increments on every free so
// stale Handles can never cancel a slot's next tenant.
type item struct {
	at  float64
	seq uint64
	fn  Event // nil for typed events
	op  Op
	gen uint32
	pos int32 // index into Sim.heap, -1 when not queued
}

// entry is one heap element. The sort keys are stored by value so heap
// sifts compare and move flat 24-byte records instead of chasing item
// pointers.
type entry struct {
	at  float64
	seq uint64
	idx int32 // arena slot of the scheduled item
}

// Handle identifies a scheduled event so it can be cancelled. The zero
// Handle is never valid. Handles are only meaningful against the Sim that
// issued them and become stale once the event fires, is cancelled, or the
// Sim is Reset.
type Handle struct {
	idx int32
	gen uint32
}

// Sim is a single-threaded discrete-event simulator. The zero value is
// ready to use and starts at time 0.
type Sim struct {
	now     float64
	seq     uint64
	popped  uint64
	handler Handler
	arena   []item
	free    []int32 // recycled arena slots
	heap    []entry
}

// Now returns the current simulation time.
func (s *Sim) Now() float64 { return s.now }

// Pending returns the number of scheduled (non-cancelled) events.
func (s *Sim) Pending() int { return len(s.heap) }

// Executed returns the number of events run so far.
func (s *Sim) Executed() uint64 { return s.popped }

// NextAt returns the scheduled time of the earliest pending event. The
// second result is false when the queue is empty. Epoch-stepping drivers
// (the sharded cell simulator) use it to skip idle epochs deterministically
// instead of ticking through empty simulated time.
func (s *Sim) NextAt() (float64, bool) {
	if len(s.heap) == 0 {
		return 0, false
	}
	return s.heap[0].at, true
}

// SetHandler installs the Handler for typed events. It must be set before
// the first AtOp/AfterOp and is kept across Reset.
func (s *Sim) SetHandler(h Handler) { s.handler = h }

// Reset returns the simulator to time 0 with an empty queue, keeping its
// arena and heap capacity (and the installed Handler) for reuse. All
// outstanding Handles become stale.
func (s *Sim) Reset() {
	for _, e := range s.heap {
		s.freeSlot(e.idx)
	}
	s.heap = s.heap[:0]
	s.now = 0
	s.seq = 0
	s.popped = 0
}

// checkTime validates an absolute schedule time.
func (s *Sim) checkTime(at float64) error {
	if math.IsNaN(at) || math.IsInf(at, 0) {
		return fmt.Errorf("des: schedule at non-finite time %v", at)
	}
	if at < s.now {
		return fmt.Errorf("des: schedule at t=%v is in the past (now=%v)", at, s.now)
	}
	return nil
}

// alloc takes an arena slot (recycling freed ones) and returns its index.
// Slot generations start at 1 and only ever grow, so the zero Handle can
// never match a live slot.
func (s *Sim) alloc() int32 {
	if n := len(s.free); n > 0 {
		idx := s.free[n-1]
		s.free = s.free[:n-1]
		return idx
	}
	s.arena = append(s.arena, item{gen: 1})
	return int32(len(s.arena) - 1)
}

// freeSlot retires an arena slot: its generation is bumped (staling every
// Handle to it) and its references are dropped so the arena does not pin
// caller memory.
func (s *Sim) freeSlot(idx int32) {
	it := &s.arena[idx]
	it.gen++
	it.fn = nil
	it.op = Op{}
	it.pos = -1
	s.free = append(s.free, idx)
}

// schedule enqueues an already-filled arena slot.
func (s *Sim) schedule(idx int32, at float64) Handle {
	it := &s.arena[idx]
	it.at = at
	it.seq = s.seq
	s.seq++
	s.heap = append(s.heap, entry{at: at, seq: it.seq, idx: idx})
	it.pos = int32(len(s.heap) - 1)
	s.siftUp(len(s.heap) - 1)
	return Handle{idx: idx, gen: it.gen}
}

// At schedules fn at absolute time at. Scheduling in the past (before the
// current simulation time) or at a non-finite time is a driver bug and
// returns an error.
func (s *Sim) At(at float64, fn Event) (Handle, error) {
	if fn == nil {
		return Handle{}, fmt.Errorf("des: schedule of nil event at t=%v", at)
	}
	if err := s.checkTime(at); err != nil {
		return Handle{}, err
	}
	idx := s.alloc()
	s.arena[idx].fn = fn
	return s.schedule(idx, at), nil
}

// After schedules fn delay time units from now.
func (s *Sim) After(delay float64, fn Event) (Handle, error) {
	if delay < 0 {
		return Handle{}, fmt.Errorf("des: negative delay %v", delay)
	}
	return s.At(s.now+delay, fn)
}

// AtOp schedules a typed event at absolute time at, to be executed by the
// Handler installed with SetHandler. It performs no allocation beyond
// amortized arena growth.
func (s *Sim) AtOp(at float64, op Op) (Handle, error) {
	if s.handler == nil {
		return Handle{}, fmt.Errorf("des: AtOp(%v) with no Handler installed", at)
	}
	if err := s.checkTime(at); err != nil {
		return Handle{}, err
	}
	idx := s.alloc()
	s.arena[idx].op = op
	return s.schedule(idx, at), nil
}

// AfterOp schedules a typed event delay time units from now.
func (s *Sim) AfterOp(delay float64, op Op) (Handle, error) {
	if delay < 0 {
		return Handle{}, fmt.Errorf("des: negative delay %v", delay)
	}
	return s.AtOp(s.now+delay, op)
}

// Cancel removes a scheduled event. Cancelling an already-executed,
// already-cancelled, or zero Handle is a no-op and returns false.
func (s *Sim) Cancel(h Handle) bool {
	if h.gen == 0 || int(h.idx) >= len(s.arena) {
		return false
	}
	it := &s.arena[h.idx]
	if it.gen != h.gen || it.pos < 0 {
		return false
	}
	s.removeAt(int(it.pos))
	s.freeSlot(h.idx)
	return true
}

// Step executes the next event, if any, and reports whether one ran.
func (s *Sim) Step() bool {
	if len(s.heap) == 0 {
		return false
	}
	e := s.heap[0]
	s.removeAt(0)
	it := &s.arena[e.idx]
	fn, op := it.fn, it.op
	s.freeSlot(e.idx) // before running: the event may reschedule into this slot
	s.now = e.at
	s.popped++
	if fn != nil {
		fn(s.now)
	} else {
		s.handler.RunOp(s.now, op)
	}
	return true
}

// Run executes events until the queue drains or the event budget is
// exhausted; budget <= 0 means unbounded. It returns the number of events
// executed.
func (s *Sim) Run(budget uint64) uint64 {
	var n uint64
	for budget <= 0 || n < budget {
		if !s.Step() {
			break
		}
		n++
	}
	return n
}

// RunUntil executes events with scheduled time <= deadline, then advances
// the clock exactly to deadline. Events scheduled beyond the deadline stay
// queued. It returns the number of events executed.
func (s *Sim) RunUntil(deadline float64) uint64 {
	var n uint64
	for len(s.heap) > 0 && s.heap[0].at <= deadline {
		if !s.Step() {
			break
		}
		n++
	}
	if s.now < deadline {
		s.now = deadline
	}
	return n
}

// less orders heap entries by (time, insertion sequence) — the kernel's
// deterministic tie-break contract.
func less(a, b entry) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// place writes e at heap position i and records the position in its item.
func (s *Sim) place(i int, e entry) {
	s.heap[i] = e
	s.arena[e.idx].pos = int32(i)
}

func (s *Sim) siftUp(i int) {
	e := s.heap[i]
	for i > 0 {
		parent := (i - 1) / 2
		if !less(e, s.heap[parent]) {
			break
		}
		s.place(i, s.heap[parent])
		i = parent
	}
	s.place(i, e)
}

func (s *Sim) siftDown(i int) {
	e := s.heap[i]
	n := len(s.heap)
	for {
		child := 2*i + 1
		if child >= n {
			break
		}
		if r := child + 1; r < n && less(s.heap[r], s.heap[child]) {
			child = r
		}
		if !less(s.heap[child], e) {
			break
		}
		s.place(i, s.heap[child])
		i = child
	}
	s.place(i, e)
}

// removeAt removes the heap entry at position i, restoring heap order.
// The arena slot itself is not freed; callers do that.
func (s *Sim) removeAt(i int) {
	n := len(s.heap) - 1
	last := s.heap[n]
	s.heap = s.heap[:n]
	if i == n {
		return
	}
	s.place(i, last)
	if i > 0 && less(last, s.heap[(i-1)/2]) {
		s.siftUp(i)
	} else {
		s.siftDown(i)
	}
}
