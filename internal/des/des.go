// Package des is a minimal discrete-event simulation kernel: a simulation
// clock and a binary-heap event queue with deterministic tie-breaking.
//
// Events are closures scheduled at absolute simulation times. Ties are
// broken by insertion order, so two runs that schedule the same events in
// the same order execute identically — a property the experiment harness
// depends on for reproducible figures.
package des

import (
	"container/heap"
	"fmt"
	"math"
)

// Event is a callback executed at its scheduled simulation time.
type Event func(now float64)

type item struct {
	at   float64
	seq  uint64
	fn   Event
	idx  int
	dead bool
}

type eventHeap []*item

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].idx = i
	h[j].idx = j
}

func (h *eventHeap) Push(x any) {
	it := x.(*item)
	it.idx = len(*h)
	*h = append(*h, it)
}

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	old[n-1] = nil
	it.idx = -1
	*h = old[:n-1]
	return it
}

// Handle identifies a scheduled event so it can be cancelled.
type Handle struct {
	it *item
}

// Sim is a single-threaded discrete-event simulator. The zero value is
// ready to use and starts at time 0.
type Sim struct {
	now    float64
	seq    uint64
	queue  eventHeap
	popped uint64
}

// Now returns the current simulation time.
func (s *Sim) Now() float64 { return s.now }

// Pending returns the number of scheduled (non-cancelled) events.
func (s *Sim) Pending() int {
	n := 0
	for _, it := range s.queue {
		if !it.dead {
			n++
		}
	}
	return n
}

// Executed returns the number of events run so far.
func (s *Sim) Executed() uint64 { return s.popped }

// At schedules fn at absolute time at. Scheduling in the past (before the
// current simulation time) or at a non-finite time is a driver bug and
// returns an error.
func (s *Sim) At(at float64, fn Event) (Handle, error) {
	if fn == nil {
		return Handle{}, fmt.Errorf("des: schedule of nil event at t=%v", at)
	}
	if math.IsNaN(at) || math.IsInf(at, 0) {
		return Handle{}, fmt.Errorf("des: schedule at non-finite time %v", at)
	}
	if at < s.now {
		return Handle{}, fmt.Errorf("des: schedule at t=%v is in the past (now=%v)", at, s.now)
	}
	it := &item{at: at, seq: s.seq, fn: fn}
	s.seq++
	heap.Push(&s.queue, it)
	return Handle{it: it}, nil
}

// After schedules fn delay time units from now.
func (s *Sim) After(delay float64, fn Event) (Handle, error) {
	if delay < 0 {
		return Handle{}, fmt.Errorf("des: negative delay %v", delay)
	}
	return s.At(s.now+delay, fn)
}

// Cancel removes a scheduled event. Cancelling an already-executed or
// already-cancelled event is a no-op and returns false.
func (s *Sim) Cancel(h Handle) bool {
	if h.it == nil || h.it.dead || h.it.idx < 0 {
		return false
	}
	h.it.dead = true
	return true
}

// Step executes the next event, if any, and reports whether one ran.
func (s *Sim) Step() bool {
	for len(s.queue) > 0 {
		it := heap.Pop(&s.queue).(*item)
		if it.dead {
			continue
		}
		s.now = it.at
		s.popped++
		it.fn(s.now)
		return true
	}
	return false
}

// Run executes events until the queue drains or the event budget is
// exhausted; budget <= 0 means unbounded. It returns the number of events
// executed.
func (s *Sim) Run(budget uint64) uint64 {
	var n uint64
	for budget <= 0 || n < budget {
		if !s.Step() {
			break
		}
		n++
	}
	return n
}

// RunUntil executes events with scheduled time <= deadline, then advances
// the clock exactly to deadline. Events scheduled beyond the deadline stay
// queued. It returns the number of events executed.
func (s *Sim) RunUntil(deadline float64) uint64 {
	var n uint64
	for len(s.queue) > 0 {
		// Skim cancelled items off the top so the peek is accurate.
		top := s.queue[0]
		if top.dead {
			heap.Pop(&s.queue)
			continue
		}
		if top.at > deadline {
			break
		}
		if !s.Step() {
			break
		}
		n++
	}
	if s.now < deadline {
		s.now = deadline
	}
	return n
}
