package des

// Tests for the typed-event path and the arena recycling underneath both
// event shapes: cancelled events must never fire after their slot is
// reused, handles must stay valid (and only cancel their own event) across
// recycling, and the (time, seq) tie-break contract must survive any mix
// of schedules and cancellations.

import (
	"sort"
	"testing"
	"testing/quick"

	"facsp/internal/rng"
)

// recorder is a Handler that appends (now, op) pairs.
type recorder struct {
	times []float64
	codes []int
	args  []any
}

func (r *recorder) RunOp(now float64, op Op) {
	r.times = append(r.times, now)
	r.codes = append(r.codes, op.Code)
	r.args = append(r.args, op.Arg)
}

func TestTypedOpsRunInOrder(t *testing.T) {
	var s Sim
	rec := &recorder{}
	s.SetHandler(rec)
	payload := new(int)
	for i, at := range []float64{5, 1, 3} {
		if _, err := s.AtOp(at, Op{Code: i, Arg: payload}); err != nil {
			t.Fatalf("AtOp(%v): %v", at, err)
		}
	}
	s.Run(0)
	wantTimes := []float64{1, 3, 5}
	wantCodes := []int{1, 2, 0}
	for i := range wantTimes {
		if rec.times[i] != wantTimes[i] || rec.codes[i] != wantCodes[i] {
			t.Fatalf("op %d ran (t=%v, code=%d), want (t=%v, code=%d)",
				i, rec.times[i], rec.codes[i], wantTimes[i], wantCodes[i])
		}
		if rec.args[i] != payload {
			t.Fatalf("op %d arg = %v, want the scheduled pointer", i, rec.args[i])
		}
	}
}

func TestAtOpRequiresHandler(t *testing.T) {
	var s Sim
	if _, err := s.AtOp(1, Op{}); err == nil {
		t.Fatal("AtOp without a Handler accepted")
	}
}

func TestAfterOpNegativeDelay(t *testing.T) {
	var s Sim
	s.SetHandler(&recorder{})
	if _, err := s.AfterOp(-1, Op{}); err == nil {
		t.Fatal("negative delay accepted")
	}
}

// TestCancelledEventNeverFiresAfterReuse pins the free-list safety
// property: cancelling an event frees its arena slot; a new event that
// recycles the slot must fire exactly once, and neither the cancelled
// event nor a second Cancel through the stale handle may affect it.
func TestCancelledEventNeverFiresAfterReuse(t *testing.T) {
	var s Sim
	cancelledRan := false
	h, err := s.At(1, func(float64) { cancelledRan = true })
	if err != nil {
		t.Fatal(err)
	}
	if !s.Cancel(h) {
		t.Fatal("Cancel of a live event returned false")
	}
	// This schedule recycles the freed slot (single-slot arena).
	ran := 0
	if _, err := s.At(2, func(float64) { ran++ }); err != nil {
		t.Fatal(err)
	}
	if s.Cancel(h) {
		t.Error("stale handle cancelled the slot's new tenant")
	}
	s.Run(0)
	if cancelledRan {
		t.Error("cancelled event ran")
	}
	if ran != 1 {
		t.Errorf("recycled-slot event ran %d times, want 1", ran)
	}
}

// TestHandlesValidAcrossRecycling schedules, fires and cancels enough
// events to cycle every arena slot several times, checking that each
// handle cancels exactly its own event.
func TestHandlesValidAcrossRecycling(t *testing.T) {
	var s Sim
	fired := map[int]bool{}
	next := 0.0
	schedule := func(id int) Handle {
		next++
		h, err := s.At(next, func(float64) { fired[id] = true })
		if err != nil {
			t.Fatal(err)
		}
		return h
	}
	for round := 0; round < 10; round++ {
		base := round * 4
		keep := schedule(base)
		drop := schedule(base + 1)
		if !s.Cancel(drop) {
			t.Fatalf("round %d: Cancel(drop) = false", round)
		}
		s.Run(0) // fires keep; both slots recycle
		late := schedule(base + 2)
		if s.Cancel(drop) || s.Cancel(keep) {
			t.Fatalf("round %d: stale handle cancelled a live event", round)
		}
		s.Run(0)
		if !fired[base] || fired[base+1] || !fired[base+2] {
			t.Fatalf("round %d: fired = %v", round, fired)
		}
		if s.Cancel(late) {
			t.Fatalf("round %d: Cancel of an executed event returned true", round)
		}
	}
}

func TestResetRecyclesArena(t *testing.T) {
	var s Sim
	rec := &recorder{}
	s.SetHandler(rec)
	if _, err := s.At(1, func(float64) {}); err != nil {
		t.Fatal(err)
	}
	h, err := s.At(5, func(float64) { t.Error("pre-Reset event ran") })
	if err != nil {
		t.Fatal(err)
	}
	s.Run(1) // fires the t=1 event; the t=5 event stays queued
	s.Reset()
	if got := s.Now(); got != 0 {
		t.Errorf("Now after Reset = %v, want 0", got)
	}
	if got := s.Pending(); got != 0 {
		t.Errorf("Pending after Reset = %d, want 0", got)
	}
	if s.Cancel(h) {
		t.Error("handle from before Reset cancelled something")
	}
	// The handler survives Reset and the recycled arena behaves.
	if _, err := s.AtOp(1, Op{Code: 7}); err != nil {
		t.Fatal(err)
	}
	if got := s.Run(0); got != 1 {
		t.Errorf("Run after Reset executed %d events, want 1", got)
	}
	if len(rec.codes) != 1 || rec.codes[0] != 7 {
		t.Errorf("post-Reset ops = %v, want [7]", rec.codes)
	}
}

// TestQuickTieBreakSurvivesCancellation is the property test for the
// refactored queue: under a random mix of closure events, typed events and
// cancellations, the surviving events run exactly in (time, insertion-seq)
// order — the same order a sort of the surviving schedule gives.
func TestQuickTieBreakSurvivesCancellation(t *testing.T) {
	type sched struct {
		at  float64
		seq int // global insertion order
	}
	f := func(seed uint64, n uint8) bool {
		src := rng.New(seed)
		var s Sim
		var got []sched
		rec := func(ev sched) func(float64) {
			return func(float64) { got = append(got, ev) }
		}
		handler := &recorder{}
		s.SetHandler(handler)

		total := int(n%80) + 2
		var want []sched
		var handles []Handle
		var events []sched
		for i := 0; i < total; i++ {
			// Coarse times force frequent ties; the tie-break must hold.
			at := float64(src.Intn(8))
			ev := sched{at: at, seq: i}
			h, err := s.At(at, rec(ev))
			if err != nil {
				return false
			}
			handles = append(handles, h)
			events = append(events, ev)
			// Cancel a random earlier event about a third of the time.
			if src.Bool(1.0 / 3) {
				j := src.Intn(len(handles))
				s.Cancel(handles[j]) // false on double-cancel is fine
				events[j].seq = -1   // mark cancelled
			}
		}
		for _, ev := range events {
			if ev.seq >= 0 {
				want = append(want, ev)
			}
		}
		sort.SliceStable(want, func(i, j int) bool {
			if want[i].at != want[j].at {
				return want[i].at < want[j].at
			}
			return want[i].seq < want[j].seq
		})
		s.Run(0)
		if len(got) != len(want) {
			return false
		}
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// BenchmarkAtOp measures the allocation-free typed-event path: schedule
// and drain a queue of 128 typed events per iteration. Allocs/op must stay
// at zero once the arena is warm.
func BenchmarkAtOp(b *testing.B) {
	src := rng.New(1)
	var s Sim
	rec := &recorder{}
	s.SetHandler(rec)
	arg := new(int)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Reset()
		rec.times = rec.times[:0]
		rec.codes = rec.codes[:0]
		rec.args = rec.args[:0]
		for j := 0; j < 128; j++ {
			if _, err := s.AtOp(src.Float64()*1000, Op{Code: j, Arg: arg}); err != nil {
				b.Fatal(err)
			}
		}
		s.Run(0)
	}
}
