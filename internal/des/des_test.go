package des

import (
	"math"
	"testing"
	"testing/quick"

	"facsp/internal/rng"
)

func TestZeroValueUsable(t *testing.T) {
	var s Sim
	if got := s.Now(); got != 0 {
		t.Errorf("Now = %v, want 0", got)
	}
	if s.Step() {
		t.Error("Step on empty queue returned true")
	}
	if got := s.Run(0); got != 0 {
		t.Errorf("Run on empty queue executed %d events", got)
	}
}

func TestEventsRunInTimeOrder(t *testing.T) {
	var s Sim
	var order []float64
	for _, at := range []float64{5, 1, 3, 2, 4} {
		at := at
		if _, err := s.At(at, func(now float64) { order = append(order, now) }); err != nil {
			t.Fatalf("At(%v): %v", at, err)
		}
	}
	s.Run(0)
	want := []float64{1, 2, 3, 4, 5}
	if len(order) != len(want) {
		t.Fatalf("executed %d events, want %d", len(order), len(want))
	}
	for i := range want {
		if order[i] != want[i] {
			t.Errorf("event %d ran at %v, want %v", i, order[i], want[i])
		}
	}
}

func TestTiesBreakByInsertionOrder(t *testing.T) {
	var s Sim
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		if _, err := s.At(7, func(float64) { order = append(order, i) }); err != nil {
			t.Fatal(err)
		}
	}
	s.Run(0)
	for i, got := range order {
		if got != i {
			t.Fatalf("tie order = %v, want insertion order", order)
		}
	}
}

func TestClockAdvances(t *testing.T) {
	var s Sim
	if _, err := s.At(2.5, func(now float64) {
		if now != 2.5 {
			t.Errorf("callback saw now=%v, want 2.5", now)
		}
	}); err != nil {
		t.Fatal(err)
	}
	s.Run(0)
	if got := s.Now(); got != 2.5 {
		t.Errorf("Now after run = %v, want 2.5", got)
	}
}

func TestAfterSchedulesRelative(t *testing.T) {
	var s Sim
	var ran bool
	if _, err := s.At(10, func(now float64) {
		if _, err := s.After(5, func(now2 float64) {
			if now2 != 15 {
				t.Errorf("After event at %v, want 15", now2)
			}
			ran = true
		}); err != nil {
			t.Errorf("After: %v", err)
		}
	}); err != nil {
		t.Fatal(err)
	}
	s.Run(0)
	if !ran {
		t.Error("After event never ran")
	}
}

func TestScheduleErrors(t *testing.T) {
	var s Sim
	if _, err := s.At(1, nil); err == nil {
		t.Error("nil event accepted")
	}
	if _, err := s.At(math.NaN(), func(float64) {}); err == nil {
		t.Error("NaN time accepted")
	}
	if _, err := s.At(math.Inf(1), func(float64) {}); err == nil {
		t.Error("Inf time accepted")
	}
	if _, err := s.After(-1, func(float64) {}); err == nil {
		t.Error("negative delay accepted")
	}
	if _, err := s.At(5, func(float64) {}); err != nil {
		t.Fatal(err)
	}
	s.Run(0)
	if _, err := s.At(4, func(float64) {}); err == nil {
		t.Error("scheduling in the past accepted")
	}
}

func TestCancel(t *testing.T) {
	var s Sim
	ran := false
	h, err := s.At(1, func(float64) { ran = true })
	if err != nil {
		t.Fatal(err)
	}
	if !s.Cancel(h) {
		t.Error("Cancel returned false for a live event")
	}
	if s.Cancel(h) {
		t.Error("double Cancel returned true")
	}
	s.Run(0)
	if ran {
		t.Error("cancelled event ran")
	}
	if s.Cancel(Handle{}) {
		t.Error("Cancel of zero Handle returned true")
	}
}

func TestCancelAfterExecution(t *testing.T) {
	var s Sim
	h, err := s.At(1, func(float64) {})
	if err != nil {
		t.Fatal(err)
	}
	s.Run(0)
	if s.Cancel(h) {
		t.Error("Cancel of executed event returned true")
	}
}

func TestPendingAndExecuted(t *testing.T) {
	var s Sim
	h1, _ := s.At(1, func(float64) {})
	s.At(2, func(float64) {})
	s.At(3, func(float64) {})
	if got := s.Pending(); got != 3 {
		t.Errorf("Pending = %d, want 3", got)
	}
	s.Cancel(h1)
	if got := s.Pending(); got != 2 {
		t.Errorf("Pending after cancel = %d, want 2", got)
	}
	s.Run(0)
	if got := s.Executed(); got != 2 {
		t.Errorf("Executed = %d, want 2", got)
	}
	if got := s.Pending(); got != 0 {
		t.Errorf("Pending after run = %d, want 0", got)
	}
}

func TestRunBudget(t *testing.T) {
	var s Sim
	count := 0
	for i := 1; i <= 10; i++ {
		s.At(float64(i), func(float64) { count++ })
	}
	if got := s.Run(4); got != 4 {
		t.Errorf("Run(4) executed %d", got)
	}
	if count != 4 {
		t.Errorf("count = %d, want 4", count)
	}
	if got := s.Run(0); got != 6 {
		t.Errorf("Run(0) executed %d, want remaining 6", got)
	}
}

func TestRunUntil(t *testing.T) {
	var s Sim
	var ran []float64
	for _, at := range []float64{1, 2, 3, 4, 5} {
		s.At(at, func(now float64) { ran = append(ran, now) })
	}
	if got := s.RunUntil(3); got != 3 {
		t.Errorf("RunUntil(3) executed %d, want 3", got)
	}
	if got := s.Now(); got != 3 {
		t.Errorf("Now = %v, want 3", got)
	}
	if got := s.Pending(); got != 2 {
		t.Errorf("Pending = %d, want 2", got)
	}
	// Deadline with no events must still advance the clock.
	if got := s.RunUntil(3.5); got != 0 {
		t.Errorf("RunUntil(3.5) executed %d, want 0", got)
	}
	if got := s.Now(); got != 3.5 {
		t.Errorf("Now = %v, want 3.5", got)
	}
}

func TestRunUntilSkipsCancelledHead(t *testing.T) {
	var s Sim
	h, _ := s.At(1, func(float64) {})
	s.At(2, func(float64) {})
	s.Cancel(h)
	if got := s.RunUntil(1.5); got != 0 {
		t.Errorf("RunUntil(1.5) executed %d, want 0", got)
	}
	if got := s.RunUntil(2.5); got != 1 {
		t.Errorf("RunUntil(2.5) executed %d, want 1", got)
	}
}

func TestSelfSchedulingChain(t *testing.T) {
	var s Sim
	hops := 0
	var hop Event
	hop = func(now float64) {
		hops++
		if hops < 100 {
			if _, err := s.After(1, hop); err != nil {
				t.Errorf("After: %v", err)
			}
		}
	}
	s.At(0, hop)
	s.Run(0)
	if hops != 100 {
		t.Errorf("hops = %d, want 100", hops)
	}
	if got := s.Now(); got != 99 {
		t.Errorf("Now = %v, want 99", got)
	}
}

// Property: random schedules always execute in non-decreasing time order
// and execute every non-cancelled event exactly once.
func TestQuickRandomSchedulesOrdered(t *testing.T) {
	f := func(seed uint64, n uint8) bool {
		src := rng.New(seed)
		var s Sim
		total := int(n%64) + 1
		var times []float64
		ok := true
		prev := -1.0
		for i := 0; i < total; i++ {
			at := src.Float64() * 100
			times = append(times, at)
			if _, err := s.At(at, func(now float64) {
				if now < prev {
					ok = false
				}
				prev = now
			}); err != nil {
				return false
			}
		}
		executed := s.Run(0)
		return ok && executed == uint64(len(times))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkScheduleAndRun(b *testing.B) {
	src := rng.New(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var s Sim
		for j := 0; j < 128; j++ {
			if _, err := s.At(src.Float64()*1000, func(float64) {}); err != nil {
				b.Fatal(err)
			}
		}
		s.Run(0)
	}
}
