package learned

import (
	"math"

	"facsp/internal/rng"
)

// The network shape: three features — occupancy fraction, requested
// bandwidth fraction, handoff flag — through two tanh hidden layers to a
// sigmoid admit probability. Small enough to train in seconds on sweep
// traces and to evaluate exhaustively when the controller compiles its
// decision table.
const (
	Features = 3
	Hidden1  = 16
	Hidden2  = 8
)

// Net is the admission network. Weights are plain value arrays so a
// trained instance can be embedded verbatim in generated Go source
// (weights.go) and compared for equality in tests.
type Net struct {
	W1 [Hidden1][Features]float64
	B1 [Hidden1]float64
	W2 [Hidden2][Hidden1]float64
	B2 [Hidden2]float64
	W3 [Hidden2]float64
	B3 float64
}

// Forward returns the admit probability for the given features: occ and bw
// in [0,1] as fractions of cell capacity, handoff 0 or 1.
func (n *Net) Forward(occ, bw, handoff float64) float64 {
	_, _, p := n.forward([Features]float64{occ, bw, handoff})
	return p
}

func sigmoid(x float64) float64 { return 1 / (1 + math.Exp(-x)) }

func (n *Net) forward(x [Features]float64) (a1 [Hidden1]float64, a2 [Hidden2]float64, p float64) {
	for i := 0; i < Hidden1; i++ {
		s := n.B1[i]
		for j := 0; j < Features; j++ {
			s += n.W1[i][j] * x[j]
		}
		a1[i] = math.Tanh(s)
	}
	for i := 0; i < Hidden2; i++ {
		s := n.B2[i]
		for j := 0; j < Hidden1; j++ {
			s += n.W2[i][j] * a1[j]
		}
		a2[i] = math.Tanh(s)
	}
	s := n.B3
	for i := 0; i < Hidden2; i++ {
		s += n.W3[i] * a2[i]
	}
	return a1, a2, sigmoid(s)
}

// InitRandom initialises the weights with the uniform Xavier/Glorot scheme
// from the given deterministic source.
func (n *Net) InitRandom(src *rng.Source) {
	scale1 := math.Sqrt(6.0 / float64(Features+Hidden1))
	for i := range n.W1 {
		for j := range n.W1[i] {
			n.W1[i][j] = src.Uniform(-scale1, scale1)
		}
		n.B1[i] = 0
	}
	scale2 := math.Sqrt(6.0 / float64(Hidden1+Hidden2))
	for i := range n.W2 {
		for j := range n.W2[i] {
			n.W2[i][j] = src.Uniform(-scale2, scale2)
		}
		n.B2[i] = 0
	}
	scale3 := math.Sqrt(6.0 / float64(Hidden2+1))
	for i := range n.W3 {
		n.W3[i] = src.Uniform(-scale3, scale3)
	}
	n.B3 = 0
}

// Sample is one labelled admission decision for training: the features an
// inference-time lookup sees and the teacher's verdict.
type Sample struct {
	Occ     float64 // occupancy fraction of capacity before the decision
	BW      float64 // requested bandwidth fraction of capacity
	Handoff float64 // 1 for a handoff-in, 0 for a new call
	Admit   bool
}

// Step runs one stochastic-gradient step on the binary cross-entropy loss
// for sample s and returns the sample's loss before the update.
func (n *Net) Step(s Sample, lr float64) float64 {
	x := [Features]float64{s.Occ, s.BW, s.Handoff}
	a1, a2, p := n.forward(x)
	y := 0.0
	if s.Admit {
		y = 1
	}
	// dL/dz3 for sigmoid + BCE collapses to the residual.
	d3 := p - y
	var d2 [Hidden2]float64
	for i := 0; i < Hidden2; i++ {
		d2[i] = d3 * n.W3[i] * (1 - a2[i]*a2[i])
	}
	var d1 [Hidden1]float64
	for j := 0; j < Hidden1; j++ {
		s := 0.0
		for i := 0; i < Hidden2; i++ {
			s += d2[i] * n.W2[i][j]
		}
		d1[j] = s * (1 - a1[j]*a1[j])
	}
	for i := 0; i < Hidden2; i++ {
		n.W3[i] -= lr * d3 * a2[i]
	}
	n.B3 -= lr * d3
	for i := 0; i < Hidden2; i++ {
		for j := 0; j < Hidden1; j++ {
			n.W2[i][j] -= lr * d2[i] * a1[j]
		}
		n.B2[i] -= lr * d2[i]
	}
	for i := 0; i < Hidden1; i++ {
		for j := 0; j < Features; j++ {
			n.W1[i][j] -= lr * d1[i] * x[j]
		}
		n.B1[i] -= lr * d1[i]
	}
	// Clamp away log(0): the loss is reported, not differentiated.
	const eps = 1e-12
	if p < eps {
		p = eps
	} else if p > 1-eps {
		p = 1 - eps
	}
	return -(y*math.Log(p) + (1-y)*math.Log(1-p))
}

// TrainStats summarises a fitting run.
type TrainStats struct {
	Samples   int
	Epochs    int
	FinalLoss float64 // mean BCE over the last epoch
	Accuracy  float64 // fraction of samples the trained net labels like the teacher
}

// Train fits a fresh net to the samples with seeded SGD: deterministic for
// a given (samples, epochs, lr, seed), so the generated weights artifact
// is reproducible.
func Train(samples []Sample, epochs int, lr float64, seed uint64) (Net, TrainStats) {
	var n Net
	src := rng.New(seed)
	n.InitRandom(src)
	stats := TrainStats{Samples: len(samples), Epochs: epochs}
	if len(samples) == 0 {
		return n, stats
	}
	for e := 0; e < epochs; e++ {
		perm := src.Perm(len(samples))
		total := 0.0
		for _, i := range perm {
			total += n.Step(samples[i], lr)
		}
		stats.FinalLoss = total / float64(len(samples))
	}
	agree := 0
	for _, s := range samples {
		if (n.Forward(s.Occ, s.BW, s.Handoff) >= 0.5) == s.Admit {
			agree++
		}
	}
	stats.Accuracy = float64(agree) / float64(len(samples))
	return n, stats
}
