// Package learned serves a small neural admission controller in the
// spirit of RNN-CAC (arxiv 1004.3563): a two-hidden-layer network mapping
// (occupancy fraction, requested bandwidth fraction, handoff flag) to an
// admit probability, trained offline by cmd/facs-train on sweep traces
// with the value-iteration optimal policy (internal/optimal) as the
// teacher. The fitted weights are committed as a versioned generated
// artifact (weights.go), so builds never train.
//
// Inference is table-compiled like fuzzy.Surface: at construction the net
// is evaluated exhaustively over the finite feature lattice — whole-BU
// occupancy x service class x new/handoff — and the Admit hot path is one
// lookup in the resulting dense bool table under the shared occupancy
// ledger's lock, with zero allocations.
package learned

import (
	"fmt"
	"math"

	"facsp/internal/cac"
	"facsp/internal/ledger"
	"facsp/internal/traffic"
)

// Controller is the table-compiled learned admission controller.
type Controller struct {
	led *ledger.Ledger
	bws []float64
	// table[h][k][occ]: the decision for a class-k arrival (h=1 handoff)
	// at whole-BU occupancy occ. Immutable after construction.
	table [2][][]bool
}

var (
	_ cac.Controller = (*Controller)(nil)
	_ cac.Named      = (*Controller)(nil)
)

// New builds a controller for the given capacity from the committed
// DefaultWeights artifact.
func New(capacity float64) (*Controller, error) {
	return NewFromNet(DefaultWeights, capacity)
}

// NewFromNet compiles the given net's decisions into a lookup table over
// the paper's service classes at the given capacity. The net sees
// fractions of capacity, so one artifact serves any cell size.
func NewFromNet(n Net, capacity float64) (*Controller, error) {
	led, err := ledger.New(capacity)
	if err != nil {
		return nil, fmt.Errorf("learned: %w", err)
	}
	classes := traffic.Classes()
	c := &Controller{led: led, bws: make([]float64, len(classes))}
	steps := int(math.Ceil(capacity)) + 1
	for h := 0; h < 2; h++ {
		c.table[h] = make([][]bool, len(classes))
		for k, cl := range classes {
			bw := cl.Bandwidth()
			c.bws[k] = bw
			row := make([]bool, steps)
			for occ := 0; occ < steps; occ++ {
				if float64(occ)+bw > capacity+1e-9 {
					continue // cannot fit regardless of the net
				}
				p := n.Forward(float64(occ)/capacity, bw/capacity, float64(h))
				row[occ] = p >= 0.5
			}
			c.table[h][k] = row
		}
	}
	return c, nil
}

// SchemeName implements cac.Named.
func (c *Controller) SchemeName() string { return "learned" }

// Capacity implements cac.Controller.
func (c *Controller) Capacity() float64 { return c.led.Capacity() }

// Occupancy implements cac.Controller.
func (c *Controller) Occupancy() float64 { return c.led.Used() }

// classOf maps a request to the class with the nearest per-call bandwidth
// (an identity for simulator and wire traffic, which only produce the
// exact class bandwidths).
func (c *Controller) classOf(bw float64) int {
	best, bestDist := 0, -1.0
	for k, b := range c.bws {
		d := b - bw
		if d < 0 {
			d = -d
		}
		if bestDist < 0 || d < bestDist {
			best, bestDist = k, d
		}
	}
	return best
}

// Admit implements cac.Controller: one table lookup at the ledger's
// current occupancy, atomic with the reservation.
func (c *Controller) Admit(req cac.Request) cac.Decision {
	if err := req.Validate(); err != nil {
		return cac.Decision{Accept: false, Score: -1, Outcome: "error: " + err.Error(), Occupancy: c.led.Used()}
	}
	k := c.classOf(req.Bandwidth)
	h := 0
	if req.Handoff {
		h = 1
	}
	row := c.table[h][k]
	capacity := c.led.Capacity()
	netReject := false
	used, ok := c.led.ReserveIf(req.Bandwidth, func(used float64) bool {
		if used+req.Bandwidth > capacity {
			return false
		}
		occ := int(used + 0.5)
		if occ >= len(row) {
			occ = len(row) - 1
		}
		if !row[occ] {
			netReject = true
			return false
		}
		return true
	})
	if !ok {
		outcome := "capacity"
		if netReject {
			outcome = "net-reject"
		}
		return cac.Decision{Accept: false, Score: -1, Outcome: outcome, Occupancy: used}
	}
	return cac.Decision{Accept: true, Score: 1, Outcome: "fits", Occupancy: used}
}

// Release implements cac.Controller.
func (c *Controller) Release(req cac.Request) error {
	return c.led.Release(req.Bandwidth)
}
