package learned

import (
	"testing"

	"facsp/internal/cac"
)

func TestTrainDeterministic(t *testing.T) {
	samples := []Sample{}
	// A crisp occupancy threshold at 0.6, handoffs allowed to 0.8: the
	// structure the real teacher produces, in miniature.
	for occ := 0.0; occ <= 1.0; occ += 0.02 {
		for _, h := range []float64{0, 1} {
			limit := 0.6
			if h == 1 {
				limit = 0.8
			}
			samples = append(samples, Sample{Occ: occ, BW: 0.125, Handoff: h, Admit: occ < limit})
		}
	}
	a, statsA := Train(samples, 200, 0.1, 7)
	b, statsB := Train(samples, 200, 0.1, 7)
	if a != b {
		t.Error("two identically seeded fits differ")
	}
	if statsA != statsB {
		t.Errorf("stats differ: %+v vs %+v", statsA, statsB)
	}
	if statsA.Accuracy < 0.9 {
		t.Errorf("accuracy %v on a crisply separable trace, want >= 0.9", statsA.Accuracy)
	}
	// The fitted net must reproduce the handoff gap it was shown.
	if a.Forward(0.7, 0.125, 1) < 0.5 {
		t.Error("handoff at 0.7 occupancy rejected; trained region lost")
	}
	if a.Forward(0.7, 0.125, 0) >= 0.5 {
		t.Error("new call at 0.7 occupancy admitted; trained threshold lost")
	}
}

func TestControllerBasics(t *testing.T) {
	ctrl, err := New(40)
	if err != nil {
		t.Fatal(err)
	}
	if got := ctrl.SchemeName(); got != "learned" {
		t.Errorf("SchemeName = %q", got)
	}
	if got := ctrl.Capacity(); got != 40 {
		t.Errorf("Capacity = %v", got)
	}
	req := cac.Request{ID: 1, Speed: 60, Angle: 15, Bandwidth: 5, RealTime: true}
	d := ctrl.Admit(req)
	if !d.Accept {
		t.Fatalf("empty cell rejected a voice call: %+v", d)
	}
	if d.Occupancy != 5 {
		t.Errorf("decision occupancy = %v, want 5", d.Occupancy)
	}
	if err := ctrl.Release(req); err != nil {
		t.Fatal(err)
	}
	if err := ctrl.Release(req); err == nil {
		t.Error("underflow release accepted")
	}
	if d := ctrl.Admit(cac.Request{}); d.Accept {
		t.Error("invalid request accepted")
	}
}

func TestControllerNeverOversubscribes(t *testing.T) {
	ctrl, err := New(40)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 300; i++ {
		ctrl.Admit(cac.Request{Bandwidth: 1, Handoff: true})
		ctrl.Admit(cac.Request{Bandwidth: 10, RealTime: true, Handoff: true})
	}
	if got := ctrl.Occupancy(); got > 40 {
		t.Fatalf("occupancy %v exceeds capacity", got)
	}
}

// TestControllerInheritsHandoffPriority checks the distilled policy keeps
// the teacher's structure: over the whole-BU occupancy lattice, voice
// handoffs are admitted at least wherever new voice calls are, and
// somewhere the gap is strict.
func TestControllerInheritsHandoffPriority(t *testing.T) {
	ctrl, err := New(40)
	if err != nil {
		t.Fatal(err)
	}
	k := ctrl.classOf(5)
	strict := false
	for occ := 0; occ < len(ctrl.table[0][k]); occ++ {
		newOK := ctrl.table[0][k][occ]
		handOK := ctrl.table[1][k][occ]
		if newOK && !handOK {
			t.Fatalf("occupancy %d: new voice admitted but handoff rejected", occ)
		}
		if handOK && !newOK {
			strict = true
		}
	}
	if !strict {
		t.Error("no occupancy prioritises voice handoffs over new calls; the distilled priority is gone")
	}
}

func TestNewFromNetRespectsCapacity(t *testing.T) {
	// An always-admit net must still be clipped by the physical fit check
	// baked into the table.
	var admitAll Net // zero net: sigmoid(0) = 0.5 >= 0.5 admits everywhere
	ctrl, err := NewFromNet(admitAll, 10)
	if err != nil {
		t.Fatal(err)
	}
	if d := ctrl.Admit(cac.Request{Bandwidth: 10}); !d.Accept {
		t.Fatal("video into an empty 10 BU cell rejected")
	}
	if d := ctrl.Admit(cac.Request{Bandwidth: 1}); d.Accept {
		t.Error("admitted beyond capacity")
	}
	if _, err := NewFromNet(admitAll, 0); err == nil {
		t.Error("zero capacity accepted")
	}
}

func TestWeightsAreFitted(t *testing.T) {
	if WeightsVersion < 1 {
		t.Fatalf("WeightsVersion = %d; the committed artifact is the untrained bootstrap", WeightsVersion)
	}
	if DefaultWeights == (Net{}) {
		t.Fatal("DefaultWeights is the zero net; run cmd/facs-train")
	}
}
