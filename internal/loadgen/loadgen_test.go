package loadgen

import (
	"net"
	"testing"
	"time"

	"facsp/internal/bsd"
	"facsp/internal/cac"
	"facsp/internal/core"
)

func TestProfileByName(t *testing.T) {
	for _, name := range Profiles() {
		p, err := ProfileByName(name)
		if err != nil {
			t.Fatalf("ProfileByName(%q): %v", name, err)
		}
		if name == "flat" {
			if len(p) != 0 {
				t.Errorf("flat profile has %d knots", len(p))
			}
			continue
		}
		if len(p) == 0 {
			t.Errorf("%s profile is empty", name)
		}
		if err := p.Validate(); err != nil {
			t.Errorf("%s profile invalid: %v", name, err)
		}
	}
	// The flash-crowd shape must keep its defining 8x spike.
	p, err := ProfileByName("flash-crowd")
	if err != nil {
		t.Fatal(err)
	}
	if p.MaxRate() != 8 {
		t.Errorf("flash-crowd peak = %v, want 8", p.MaxRate())
	}
	if _, err := ProfileByName("bogus"); err == nil {
		t.Error("unknown profile accepted")
	}
}

// TestScheduleDeterministicAndShaped pins the open-loop plan: the same
// seed draws the same schedule, arrivals stay inside the window and
// spread over the cell range, and the flash-crowd spike concentrates
// arrivals mid-window.
func TestScheduleDeterministicAndShaped(t *testing.T) {
	cfg := Config{
		Addr: "x", Profile: "flash-crowd", Duration: 10 * time.Second,
		Rate: 400, Cells: 3, Seed: 7,
	}
	if err := cfg.validate(); err != nil {
		t.Fatal(err)
	}
	profile, err := ProfileByName(cfg.Profile)
	if err != nil {
		t.Fatal(err)
	}
	a, b := schedule(cfg, profile), schedule(cfg, profile)
	if len(a) == 0 {
		t.Fatal("empty schedule")
	}
	if len(a) != len(b) {
		t.Fatalf("same seed drew %d vs %d arrivals", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("arrival %d differs between identical configs", i)
		}
	}

	cells := map[int]bool{}
	var spike, base int
	for i, ar := range a {
		if ar.at < 0 || ar.at >= cfg.Duration {
			t.Fatalf("arrival %d at %v outside [0, %v)", i, ar.at, cfg.Duration)
		}
		if ar.cell < 0 || ar.cell >= cfg.Cells {
			t.Fatalf("arrival %d on cell %d outside [0, %d)", i, ar.cell, cfg.Cells)
		}
		cells[ar.cell] = true
		// The profile's spike spans [210s, 270s] of its 600s axis: scaled
		// onto 10s that is [3.5s, 4.5s]; compare against an equally long
		// flat stretch at the start.
		switch {
		case ar.at >= 3500*time.Millisecond && ar.at < 4500*time.Millisecond:
			spike++
		case ar.at < time.Second:
			base++
		}
	}
	if len(cells) != cfg.Cells {
		t.Errorf("arrivals touched %d cells, want %d", len(cells), cfg.Cells)
	}
	if spike < 4*base {
		t.Errorf("spike window drew %d arrivals vs %d in the flat window; want ~8x", spike, base)
	}
}

func TestRunAgainstLiveDaemon(t *testing.T) {
	cfg := core.DefaultPConfig()
	cfg.Capacity = 200
	cells := make([]cac.Controller, 2)
	for i := range cells {
		ctrl, err := core.NewFACSP(cfg)
		if err != nil {
			t.Fatal(err)
		}
		cells[i] = ctrl
	}
	srv, err := bsd.New(bsd.Config{Cells: cells})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = srv.Serve(ln)
	}()
	defer func() {
		_ = srv.Close()
		<-done
	}()

	res, err := Run(Config{
		Addr:      ln.Addr().String(),
		Profile:   "flash-crowd",
		Duration:  400 * time.Millisecond,
		Rate:      500,
		Conns:     2,
		Cells:     2,
		Seed:      1,
		HoldMean:  50 * time.Millisecond,
		MinBUFrac: 0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Offered == 0 {
		t.Fatal("no requests offered")
	}
	if res.Errors != 0 {
		t.Fatalf("protocol errors against a healthy daemon: %s", res)
	}
	if got := res.Accepted + res.Rejected + res.Shed; got != res.Offered {
		t.Errorf("outcomes %d do not partition offered %d: %s", got, res.Offered, res)
	}
	if res.Accepted == 0 {
		t.Errorf("nothing admitted: %s", res)
	}
	if res.P50 <= 0 || res.P99 < res.P50 {
		t.Errorf("implausible latency percentiles: %s", res)
	}
	if res.AdmitsPerSec <= 0 {
		t.Errorf("no throughput: %s", res)
	}
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(Config{}); err == nil {
		t.Error("empty config accepted")
	}
	if _, err := Run(Config{Addr: "x", Duration: time.Second, Rate: 100, Profile: "bogus"}); err == nil {
		t.Error("unknown profile accepted")
	}
	if _, err := Run(Config{Addr: "x", Duration: time.Second, Rate: 100, MinBUFrac: 2}); err == nil {
		t.Error("out-of-range min-BU fraction accepted")
	}
}
