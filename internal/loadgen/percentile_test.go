package loadgen

import (
	"testing"
	"time"
)

// TestPercentileEdgeCases pins the quantile reader on the degenerate
// sample sets a real run can produce: no samples (every request errored),
// a single sample, and all-identical latencies.
func TestPercentileEdgeCases(t *testing.T) {
	if got := percentile(nil, 0.50); got != 0 {
		t.Errorf("percentile(nil) = %v, want 0", got)
	}
	if got := percentile([]time.Duration{}, 0.99); got != 0 {
		t.Errorf("percentile(empty) = %v, want 0", got)
	}

	one := []time.Duration{7 * time.Millisecond}
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if got := percentile(one, q); got != one[0] {
			t.Errorf("percentile(1 sample, q=%v) = %v, want %v", q, got, one[0])
		}
	}

	same := []time.Duration{time.Millisecond, time.Millisecond, time.Millisecond}
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if got := percentile(same, q); got != time.Millisecond {
			t.Errorf("percentile(identical, q=%v) = %v, want 1ms", q, got)
		}
	}
}

// TestPercentileOrderAndBounds checks the reader on a distinguishable
// ascending slice: quantiles are monotone in q, never read out of bounds
// at the extremes, and p50/p99 bracket the data.
func TestPercentileOrderAndBounds(t *testing.T) {
	sorted := make([]time.Duration, 100)
	for i := range sorted {
		sorted[i] = time.Duration(i+1) * time.Millisecond
	}
	if got := percentile(sorted, 0); got != sorted[0] {
		t.Errorf("q=0 -> %v, want min %v", got, sorted[0])
	}
	if got := percentile(sorted, 1); got != sorted[len(sorted)-1] {
		t.Errorf("q=1 -> %v, want max %v", got, sorted[len(sorted)-1])
	}
	prev := time.Duration(0)
	for _, q := range []float64{0, 0.25, 0.5, 0.75, 0.9, 0.99, 1} {
		got := percentile(sorted, q)
		if got < prev {
			t.Errorf("quantiles not monotone: q=%v -> %v after %v", q, got, prev)
		}
		prev = got
	}
	if p50, p99 := percentile(sorted, 0.5), percentile(sorted, 0.99); p99 < p50 {
		t.Errorf("p99 %v < p50 %v", p99, p50)
	}
}
