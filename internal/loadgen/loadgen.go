// Package loadgen drives a facs-server daemon with an open-loop call
// workload: arrivals fire on a schedule drawn in advance from a
// scenario-library rate profile, NOT in response to completions, so a
// slow or overloaded daemon faces the same offered load a fast one does.
// Closed-loop drivers (like cmd/facs-client) self-throttle — every
// in-flight request gates the next — which silently converts server
// slowness into reduced load and hides tail latency. The open-loop
// schedule plus latency measured from each request's *scheduled* send
// time avoids that coordinated omission: a request delayed behind a slow
// round trip is charged for the wait.
//
// The generator reuses the simulator's traffic machinery — the default
// service-class mix and the piecewise-linear rate profiles of the
// embedded scenario library (flash-crowd's 8x centre-cell spike, the
// diurnal city curve) — time-scaled to the configured wall-clock window,
// so serving benchmarks stress the daemon with the same load shapes the
// simulation experiments use.
package loadgen

import (
	"container/heap"
	"fmt"
	"sort"
	"sync"
	"time"

	"facsp/internal/bsd"
	"facsp/internal/rng"
	"facsp/internal/scenario"
	"facsp/internal/traffic"
	"facsp/internal/wire"
)

// Profiles returns the selectable load-shape names.
func Profiles() []string { return []string{"flat", "flash-crowd", "diurnal"} }

// ProfileByName resolves a load-shape name to a rate profile. flash-crowd
// and diurnal come from the embedded scenario library (the centre cell's
// spike profile and the network-wide diurnal curve respectively); flat is
// the empty profile (stationary arrivals).
func ProfileByName(name string) (traffic.RateProfile, error) {
	switch name {
	case "flat":
		return nil, nil
	case "flash-crowd":
		s, err := scenario.Load("flash-crowd")
		if err != nil {
			return nil, err
		}
		return knotsToProfile(s.Cells[0].Profile), nil
	case "diurnal":
		s, err := scenario.Load("diurnal-city")
		if err != nil {
			return nil, err
		}
		return knotsToProfile(s.Profile), nil
	default:
		return nil, fmt.Errorf("loadgen: unknown profile %q (have flat, flash-crowd, diurnal)", name)
	}
}

func knotsToProfile(knots []scenario.ProfileKnot) traffic.RateProfile {
	out := make(traffic.RateProfile, len(knots))
	for i, k := range knots {
		out[i] = traffic.ProfilePoint{T: k.TS, Rate: k.Rate}
	}
	return out
}

// Config parameterises one load-generation run.
type Config struct {
	// Addr is the daemon address.
	Addr string
	// Profile names the load shape (see Profiles); empty means flat.
	Profile string
	// Duration is the wall-clock arrival window; the profile's time axis
	// is scaled onto it.
	Duration time.Duration
	// Rate is the peak arrival rate in requests/second: the instantaneous
	// rate is Rate scaled by profile(t)/maxProfile, so the profile's
	// spike arrives at exactly Rate.
	Rate float64
	// Conns is the number of concurrent client sessions carrying the
	// load (default 4).
	Conns int
	// Cells spreads arrivals round-robin over daemon cells [0, Cells)
	// (default 1).
	Cells int
	// Seed makes the workload — arrival times, classes, mobility,
	// holding times — bit-reproducible.
	Seed uint64
	// HoldMean is the mean holding time of an accepted call before its
	// release is scheduled (default 2s).
	HoldMean time.Duration
	// MinBUFrac is the fraction of voice/video admissions carrying a
	// degraded-admission floor ("min_bu" 2 and 5 BU respectively), to
	// exercise adaptive schemes over the wire. 0 sends none.
	MinBUFrac float64
}

func (c *Config) validate() error {
	if c.Addr == "" {
		return fmt.Errorf("loadgen: empty daemon address")
	}
	if c.Duration <= 0 {
		return fmt.Errorf("loadgen: duration %v must be positive", c.Duration)
	}
	if c.Rate <= 0 {
		return fmt.Errorf("loadgen: rate %v must be positive", c.Rate)
	}
	if c.MinBUFrac < 0 || c.MinBUFrac > 1 {
		return fmt.Errorf("loadgen: min-BU fraction %v outside [0, 1]", c.MinBUFrac)
	}
	if c.Conns <= 0 {
		c.Conns = 4
	}
	if c.Cells <= 0 {
		c.Cells = 1
	}
	if c.HoldMean <= 0 {
		c.HoldMean = 2 * time.Second
	}
	return nil
}

// arrival is one scheduled admission request, fully drawn in advance.
type arrival struct {
	at    time.Duration // offset from run start
	id    uint64
	cell  int
	class traffic.Class
	opts  bsd.AdmitOptions
	hold  time.Duration // holding time if accepted
}

// release is one pending call termination of a worker.
type release struct {
	at    time.Duration
	id    uint64
	cell  int
	class traffic.Class
}

// releaseHeap orders pending releases by due time.
type releaseHeap []release

func (h releaseHeap) Len() int           { return len(h) }
func (h releaseHeap) Less(i, j int) bool { return h[i].at < h[j].at }
func (h releaseHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *releaseHeap) Push(x any)        { *h = append(*h, x.(release)) }
func (h *releaseHeap) Pop() any          { old := *h; n := len(old); x := old[n-1]; *h = old[:n-1]; return x }

// Result aggregates one run.
type Result struct {
	// Offered counts admission requests actually sent; Accepted,
	// Rejected and Shed partition their outcomes (shed = the daemon's
	// bounded queue was full, wire code "overloaded").
	Offered  int
	Accepted int
	Rejected int
	Shed     int
	// Errors counts transport failures and protocol-level error replies
	// other than overload sheds. A healthy run has zero.
	Errors int
	// Elapsed is the measured wall-clock span of the run.
	Elapsed time.Duration
	// AdmitsPerSec is Accepted divided by Elapsed: the sustained
	// admission throughput.
	AdmitsPerSec float64
	// P50 and P99 are admission-latency percentiles measured from each
	// request's scheduled send time (coordinated-omission corrected), so
	// they include any delay a slow daemon imposes on the open-loop
	// schedule.
	P50 time.Duration
	P99 time.Duration
}

// String renders the result as a one-line report.
func (r Result) String() string {
	return fmt.Sprintf(
		"offered=%d accepted=%d rejected=%d shed=%d errors=%d admits/s=%.0f p50=%s p99=%s elapsed=%s",
		r.Offered, r.Accepted, r.Rejected, r.Shed, r.Errors,
		r.AdmitsPerSec, r.P50.Round(time.Microsecond), r.P99.Round(time.Microsecond),
		r.Elapsed.Round(time.Millisecond))
}

// schedule pre-draws the whole arrival plan: a thinned Poisson process
// whose envelope runs at the peak rate and whose acceptance probability
// follows the profile, time-scaled onto the run window.
func schedule(cfg Config, profile traffic.RateProfile) []arrival {
	src := rng.New(cfg.Seed)
	mix := traffic.DefaultMix()
	window := cfg.Duration.Seconds()
	span := 0.0
	if len(profile) > 0 {
		span = profile[len(profile)-1].T
	}
	maxRate := profile.MaxRate()

	var plan []arrival
	var id uint64
	for t := src.Exp(1 / cfg.Rate); t < window; t += src.Exp(1 / cfg.Rate) {
		pt := t
		if span > 0 {
			pt = t / window * span
		}
		if src.Float64()*maxRate > profile.Rate(pt) {
			continue // thinned away: the profile is below peak here
		}
		id++
		class := mix.Sample(src)
		opts := bsd.AdmitOptions{
			Cell:     int(id) % cfg.Cells,
			SpeedKmh: src.Uniform(0, 120),
			AngleDeg: src.Uniform(-180, 180),
			Handoff:  src.Bool(0.2),
		}
		if opts.Handoff {
			opts.Priority = 1
		}
		if cfg.MinBUFrac > 0 && class != traffic.Text && src.Bool(cfg.MinBUFrac) {
			// The degradation floors match internal/adapt's default
			// ladders: voice tolerates 2 BU, video 5 BU.
			if class == traffic.Voice {
				opts.MinBU = 2
			} else {
				opts.MinBU = 5
			}
		}
		plan = append(plan, arrival{
			at:    time.Duration(t * float64(time.Second)),
			id:    id,
			cell:  opts.Cell,
			class: class,
			opts:  opts,
			hold:  time.Duration(src.Exp(float64(cfg.HoldMean))),
		})
	}
	return plan
}

// tally carries one worker's counts back to the aggregator.
type tally struct {
	offered, accepted, rejected, shed, errors int
	latencies                                 []time.Duration
}

// Run executes one open-loop load-generation run against a live daemon
// and reports the aggregate. The workload is drawn entirely from
// cfg.Seed before the first byte is sent, so identical configs offer
// identical load.
func Run(cfg Config) (Result, error) {
	if err := cfg.validate(); err != nil {
		return Result{}, err
	}
	name := cfg.Profile
	if name == "" {
		name = "flat"
	}
	profile, err := ProfileByName(name)
	if err != nil {
		return Result{}, err
	}
	plan := schedule(cfg, profile)
	if len(plan) == 0 {
		return Result{}, fmt.Errorf("loadgen: schedule is empty (rate %v over %v)", cfg.Rate, cfg.Duration)
	}

	// Round-robin the arrival stream over the worker sessions so every
	// worker's sub-schedule keeps the profile's shape.
	shards := make([][]arrival, cfg.Conns)
	for i, a := range plan {
		w := i % cfg.Conns
		shards[w] = append(shards[w], a)
	}

	var (
		mu    sync.Mutex
		sum   tally
		wg    sync.WaitGroup
		start = time.Now()
	)
	for w := 0; w < cfg.Conns; w++ {
		if len(shards[w]) == 0 {
			continue
		}
		wg.Add(1)
		go func(mine []arrival) {
			defer wg.Done()
			t := runWorker(cfg.Addr, mine, start)
			mu.Lock()
			sum.offered += t.offered
			sum.accepted += t.accepted
			sum.rejected += t.rejected
			sum.shed += t.shed
			sum.errors += t.errors
			sum.latencies = append(sum.latencies, t.latencies...)
			mu.Unlock()
		}(shards[w])
	}
	wg.Wait()
	elapsed := time.Since(start)

	res := Result{
		Offered:  sum.offered,
		Accepted: sum.accepted,
		Rejected: sum.rejected,
		Shed:     sum.shed,
		Errors:   sum.errors,
		Elapsed:  elapsed,
	}
	if elapsed > 0 {
		res.AdmitsPerSec = float64(res.Accepted) / elapsed.Seconds()
	}
	sort.Slice(sum.latencies, func(i, j int) bool { return sum.latencies[i] < sum.latencies[j] })
	res.P50 = percentile(sum.latencies, 0.50)
	res.P99 = percentile(sum.latencies, 0.99)
	return res, nil
}

// percentile reads the q-th quantile from an ascending latency slice.
func percentile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return sorted[i]
}

// runWorker replays one shard of the schedule over a single session:
// sleep to each event's scheduled offset, send, account. Releases of
// accepted calls are interleaved at their own scheduled times.
func runWorker(addr string, mine []arrival, start time.Time) tally {
	var t tally
	cl, err := bsd.Dial(addr)
	if err != nil {
		t.errors++
		return t
	}
	defer cl.Close()

	var pending releaseHeap
	i := 0
	for i < len(mine) || pending.Len() > 0 {
		// Next event: the earlier of the next arrival and the next due
		// release.
		doRelease := i >= len(mine) || (pending.Len() > 0 && pending[0].at < mine[i].at)
		var due time.Duration
		if doRelease {
			due = pending[0].at
		} else {
			due = mine[i].at
		}
		if d := due - time.Since(start); d > 0 {
			time.Sleep(d)
		}

		if doRelease {
			rel := heap.Pop(&pending).(release)
			resp, err := cl.ReleaseIn(rel.cell, rel.id, rel.class.String())
			if err != nil {
				// Transport gone: the daemon auto-releases this
				// session's remaining grants on disconnect.
				t.errors++
				return t
			}
			switch {
			case resp.OK:
			case resp.Code == wire.CodeOverloaded:
				// Shed release: retry immediately-due so the call does
				// not leak for the rest of the run.
				t.shed++
				rel.at += 10 * time.Millisecond
				heap.Push(&pending, rel)
			default:
				t.errors++
			}
			continue
		}

		a := mine[i]
		i++
		t.offered++
		resp, err := cl.AdmitWith(a.id, a.class.String(), a.opts)
		if err != nil {
			t.errors++
			return t
		}
		// Latency from the *scheduled* offset, not the actual send: a
		// request stuck behind a slow round trip is charged its wait.
		t.latencies = append(t.latencies, time.Since(start)-a.at)
		switch {
		case resp.OK && resp.Accept:
			t.accepted++
			heap.Push(&pending, release{at: a.at + a.hold, id: a.id, cell: a.cell, class: a.class})
		case resp.OK:
			t.rejected++
		case resp.Code == wire.CodeOverloaded:
			t.shed++
		default:
			t.errors++
		}
	}
	return t
}
