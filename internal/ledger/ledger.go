// Package ledger provides the occupancy accounting shared by every
// admission scheme that tracks a cell as "used bandwidth units out of a
// fixed capacity": reserve-under-a-limit, epsilon-guarded release, and a
// per-class variant for schemes whose decision state is the vector of
// on-going calls by service class (the value-iteration threshold policy).
//
// Before this package, complete sharing, the guard channel and the
// fractional guard each carried their own copy of the same three lines of
// release arithmetic; internal/baseline and internal/optimal now share
// this one.
package ledger

import (
	"fmt"
	"sync"
)

// Ledger is a thread-safe occupancy account for one cell: used BU against
// a fixed capacity. The zero value is unusable; build with New.
type Ledger struct {
	capacity float64

	mu   sync.Mutex
	used float64
}

// New builds a ledger with the given capacity in BU.
func New(capacity float64) (*Ledger, error) {
	if capacity <= 0 {
		return nil, fmt.Errorf("ledger: capacity %v must be positive", capacity)
	}
	return &Ledger{capacity: capacity}, nil
}

// Capacity reports the fixed capacity in BU.
func (l *Ledger) Capacity() float64 { return l.capacity }

// Used reports the current occupancy in BU.
func (l *Ledger) Used() float64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.used
}

// Reserve atomically admits bw BU if occupancy would stay within limit
// (callers pass Capacity() for plain fit checks, or a lower cutoff such as
// capacity-guard). It returns the occupancy after the operation — the new
// occupancy on success, the unchanged one on refusal — and whether the
// reservation was made.
func (l *Ledger) Reserve(bw, limit float64) (used float64, ok bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.used+bw > limit {
		return l.used, false
	}
	l.used += bw
	return l.used, true
}

// ReserveIf atomically admits bw BU if admit, called with the occupancy
// before the reservation, returns true. The callback runs under the
// ledger lock and must not call back into the ledger.
func (l *Ledger) ReserveIf(bw float64, admit func(used float64) bool) (used float64, ok bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if !admit(l.used) {
		return l.used, false
	}
	l.used += bw
	return l.used, true
}

// Release returns bw BU to the ledger. Releasing more than the current
// occupancy (beyond float tolerance) is an accounting bug and is refused.
func (l *Ledger) Release(bw float64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	next, err := release(l.used, bw)
	if err != nil {
		return err
	}
	l.used = next
	return nil
}

// release is the one copy of the epsilon-guarded release arithmetic: bw
// may exceed used by at most float tolerance, and the result is clamped
// at zero so accumulated rounding never leaves a phantom occupancy.
func release(used, bw float64) (float64, error) {
	if bw > used+1e-9 {
		return used, fmt.Errorf("ledger: release of %v BU exceeds occupancy %v", bw, used)
	}
	used -= bw
	if used < 0 {
		used = 0
	}
	return used, nil
}

// ClassLedger is a Ledger that additionally tracks the number of on-going
// calls per service class — the state the value-iteration threshold policy
// indexes its decision table with.
type ClassLedger struct {
	capacity float64
	bws      []float64

	mu     sync.Mutex
	used   float64
	counts []int
}

// NewClassLedger builds a per-class ledger. bws gives the nominal
// bandwidth of one call of each class, in BU; it fixes the class count.
func NewClassLedger(capacity float64, bws []float64) (*ClassLedger, error) {
	if capacity <= 0 {
		return nil, fmt.Errorf("ledger: capacity %v must be positive", capacity)
	}
	if len(bws) == 0 {
		return nil, fmt.Errorf("ledger: need at least one class")
	}
	for i, bw := range bws {
		if bw <= 0 {
			return nil, fmt.Errorf("ledger: class %d bandwidth %v must be positive", i, bw)
		}
	}
	l := &ClassLedger{capacity: capacity, counts: make([]int, len(bws))}
	l.bws = append([]float64(nil), bws...)
	return l, nil
}

// Capacity reports the fixed capacity in BU.
func (l *ClassLedger) Capacity() float64 { return l.capacity }

// Classes reports the number of service classes.
func (l *ClassLedger) Classes() int { return len(l.bws) }

// ClassBandwidth reports the nominal bandwidth of class k in BU.
func (l *ClassLedger) ClassBandwidth(k int) float64 { return l.bws[k] }

// Used reports the current occupancy in BU.
func (l *ClassLedger) Used() float64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.used
}

// Counts returns a snapshot of the per-class call counts.
func (l *ClassLedger) Counts() []int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]int(nil), l.counts...)
}

// ReserveIf atomically admits one class-k call of bw BU if admit, called
// with the pre-reservation per-class counts, returns true. The counts
// slice is only valid for the duration of the callback and must not be
// mutated or retained; the callback runs under the ledger lock and must
// not call back into the ledger. A call that would exceed capacity is
// refused before admit is consulted.
func (l *ClassLedger) ReserveIf(k int, bw float64, admit func(counts []int) bool) (used float64, ok bool) {
	if k < 0 || k >= len(l.bws) {
		return l.Used(), false
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.used+bw > l.capacity {
		return l.used, false
	}
	if !admit(l.counts) {
		return l.used, false
	}
	l.counts[k]++
	l.used += bw
	return l.used, true
}

// Release returns one class-k call of bw BU to the ledger.
func (l *ClassLedger) Release(k int, bw float64) error {
	if k < 0 || k >= len(l.bws) {
		return fmt.Errorf("ledger: class %d outside [0, %d)", k, len(l.bws))
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.counts[k] == 0 {
		return fmt.Errorf("ledger: release of class %d with no on-going class-%d call", k, k)
	}
	next, err := release(l.used, bw)
	if err != nil {
		return err
	}
	l.counts[k]--
	l.used = next
	return nil
}
