package ledger

import (
	"sync"
	"testing"
)

func TestLedgerReserveAgainstLimit(t *testing.T) {
	l, err := New(40)
	if err != nil {
		t.Fatal(err)
	}
	if got := l.Capacity(); got != 40 {
		t.Fatalf("Capacity = %v", got)
	}
	used, ok := l.Reserve(5, 30)
	if !ok || used != 5 {
		t.Fatalf("Reserve(5,30) = %v, %v", used, ok)
	}
	// A reservation that would cross the limit is refused and reports the
	// unchanged occupancy.
	used, ok = l.Reserve(30, 30)
	if ok || used != 5 {
		t.Fatalf("Reserve(30,30) over limit = %v, %v", used, ok)
	}
	// The same reservation fits against a higher limit.
	if _, ok := l.Reserve(30, 40); !ok {
		t.Fatal("Reserve(30,40) refused below limit")
	}
	if got := l.Used(); got != 35 {
		t.Fatalf("Used = %v", got)
	}
}

func TestLedgerReserveIf(t *testing.T) {
	l, err := New(10)
	if err != nil {
		t.Fatal(err)
	}
	var seen float64 = -1
	used, ok := l.ReserveIf(4, func(used float64) bool { seen = used; return true })
	if !ok || used != 4 || seen != 0 {
		t.Fatalf("ReserveIf accept = (%v, %v), saw %v", used, ok, seen)
	}
	used, ok = l.ReserveIf(4, func(used float64) bool { seen = used; return false })
	if ok || used != 4 || seen != 4 {
		t.Fatalf("ReserveIf refuse = (%v, %v), saw %v", used, ok, seen)
	}
}

func TestLedgerReleaseGuardsUnderflow(t *testing.T) {
	l, err := New(10)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := l.Reserve(5, 10); !ok {
		t.Fatal("reserve failed")
	}
	if err := l.Release(5); err != nil {
		t.Fatal(err)
	}
	if err := l.Release(1); err == nil {
		t.Error("underflow release accepted")
	}
	if got := l.Used(); got != 0 {
		t.Errorf("Used = %v", got)
	}
}

func TestLedgerReleaseClampsRounding(t *testing.T) {
	l, err := New(10)
	if err != nil {
		t.Fatal(err)
	}
	// 0.1+0.2 != 0.3 in floats: releasing the two parts of a 0.3 BU
	// reservation overshoots by ~2.8e-17, so the epsilon guard must absorb
	// it and the clamp must land the ledger at exactly zero.
	a, b := 0.1, 0.2
	l.Reserve(0.3, 10)
	if err := l.Release(a); err != nil {
		t.Fatal(err)
	}
	if err := l.Release(b); err != nil {
		t.Fatal(err)
	}
	if got := l.Used(); got != 0 {
		t.Errorf("Used after rounding release = %v", got)
	}
}

func TestLedgerValidation(t *testing.T) {
	if _, err := New(0); err == nil {
		t.Error("zero capacity accepted")
	}
	if _, err := New(-1); err == nil {
		t.Error("negative capacity accepted")
	}
}

func TestClassLedgerCountsAndRelease(t *testing.T) {
	l, err := NewClassLedger(40, []float64{1, 5, 10})
	if err != nil {
		t.Fatal(err)
	}
	if got := l.Classes(); got != 3 {
		t.Fatalf("Classes = %d", got)
	}
	if got := l.ClassBandwidth(1); got != 5 {
		t.Fatalf("ClassBandwidth(1) = %v", got)
	}
	admitAll := func([]int) bool { return true }
	if _, ok := l.ReserveIf(1, 5, admitAll); !ok {
		t.Fatal("voice reserve refused")
	}
	if _, ok := l.ReserveIf(2, 10, admitAll); !ok {
		t.Fatal("video reserve refused")
	}
	if got := l.Counts(); got[0] != 0 || got[1] != 1 || got[2] != 1 {
		t.Fatalf("Counts = %v", got)
	}
	if got := l.Used(); got != 15 {
		t.Fatalf("Used = %v", got)
	}
	// Releasing a class with no on-going call is refused even when other
	// classes hold bandwidth.
	if err := l.Release(0, 1); err == nil {
		t.Error("release of empty class accepted")
	}
	if err := l.Release(1, 5); err != nil {
		t.Fatal(err)
	}
	if got := l.Counts(); got[1] != 0 {
		t.Fatalf("Counts after release = %v", got)
	}
	if err := l.Release(3, 1); err == nil {
		t.Error("out-of-range class release accepted")
	}
}

func TestClassLedgerRefusesOverCapacityBeforeCallback(t *testing.T) {
	l, err := NewClassLedger(10, []float64{1, 5, 10})
	if err != nil {
		t.Fatal(err)
	}
	admitAll := func([]int) bool { return true }
	if _, ok := l.ReserveIf(2, 10, admitAll); !ok {
		t.Fatal("video reserve refused")
	}
	called := false
	if _, ok := l.ReserveIf(0, 1, func([]int) bool { called = true; return true }); ok {
		t.Error("over-capacity reserve accepted")
	}
	if called {
		t.Error("admit callback consulted for a call that cannot fit")
	}
	if _, ok := l.ReserveIf(-1, 1, admitAll); ok {
		t.Error("out-of-range class reserve accepted")
	}
}

func TestClassLedgerValidation(t *testing.T) {
	if _, err := NewClassLedger(0, []float64{1}); err == nil {
		t.Error("zero capacity accepted")
	}
	if _, err := NewClassLedger(10, nil); err == nil {
		t.Error("no classes accepted")
	}
	if _, err := NewClassLedger(10, []float64{1, 0}); err == nil {
		t.Error("zero class bandwidth accepted")
	}
}

func TestLedgerConcurrentReserveRelease(t *testing.T) {
	l, err := New(1000)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				if _, ok := l.Reserve(1, l.Capacity()); ok {
					if err := l.Release(1); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	if got := l.Used(); got != 0 {
		t.Errorf("Used after balanced traffic = %v", got)
	}
}
