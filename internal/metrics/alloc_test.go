//go:build !race

package metrics

import "testing"

// The registry sits on the simulation and serving hot paths; its write
// side and the steady-state sampler must stay allocation-free. AllocsPerRun
// is meaningless under -race (the detector instruments allocations), so
// these tests are build-gated out of the race CI lane.

func TestIncAllocFree(t *testing.T) {
	r, err := New(8)
	if err != nil {
		t.Fatal(err)
	}
	if n := testing.AllocsPerRun(1000, func() {
		r.Inc(3, AdmitsVoice)
		r.Add(5, CtrShed, 2)
	}); n != 0 {
		t.Errorf("counter bump allocates %v per op, want 0", n)
	}
}

func TestSetGaugeAllocFree(t *testing.T) {
	r, err := New(8)
	if err != nil {
		t.Fatal(err)
	}
	if n := testing.AllocsPerRun(1000, func() {
		r.SetGauge(2, OccupancyBU, 17.5)
	}); n != 0 {
		t.Errorf("gauge store allocates %v per op, want 0", n)
	}
}

func TestSnapshotReuseAllocFree(t *testing.T) {
	r, err := New(8)
	if err != nil {
		t.Fatal(err)
	}
	snap := r.Snapshot(nil) // warm the buffers once
	if n := testing.AllocsPerRun(100, func() {
		snap = r.Snapshot(snap)
	}); n != 0 {
		t.Errorf("buffered snapshot allocates %v per sample, want 0", n)
	}
}
