package metrics

import (
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"facsp/internal/traffic"
)

func TestNewValidation(t *testing.T) {
	for _, cells := range []int{0, -1} {
		if _, err := New(cells); err == nil {
			t.Errorf("New(%d) accepted", cells)
		}
	}
	r, err := New(3)
	if err != nil {
		t.Fatal(err)
	}
	if r.Cells() != 3 {
		t.Errorf("Cells() = %d, want 3", r.Cells())
	}
}

func TestClassColumnHelpers(t *testing.T) {
	cases := []struct {
		class                 traffic.Class
		admits, blocks, drops Counter
	}{
		{traffic.Text, AdmitsText, BlocksText, DropsText},
		{traffic.Voice, AdmitsVoice, BlocksVoice, DropsVoice},
		{traffic.Video, AdmitsVideo, BlocksVideo, DropsVideo},
	}
	for _, c := range cases {
		if got := Admits(c.class); got != c.admits {
			t.Errorf("Admits(%v) = %d, want %d", c.class, got, c.admits)
		}
		if got := Blocks(c.class); got != c.blocks {
			t.Errorf("Blocks(%v) = %d, want %d", c.class, got, c.blocks)
		}
		if got := Drops(c.class); got != c.drops {
			t.Errorf("Drops(%v) = %d, want %d", c.class, got, c.drops)
		}
	}
}

func TestCountersAndGauges(t *testing.T) {
	r, err := New(2)
	if err != nil {
		t.Fatal(err)
	}
	r.Inc(0, AdmitsVoice)
	r.Inc(0, AdmitsVoice)
	r.Add(1, CtrShed, 7)
	if got := r.CounterValue(0, AdmitsVoice); got != 2 {
		t.Errorf("cell 0 admits voice = %d, want 2", got)
	}
	if got := r.CounterValue(1, AdmitsVoice); got != 0 {
		t.Errorf("cell 1 admits voice = %d, want 0 (row isolation)", got)
	}
	if got := r.CounterValue(1, CtrShed); got != 7 {
		t.Errorf("cell 1 shed = %d, want 7", got)
	}

	r.SetGauge(0, OccupancyBU, 12.5)
	r.SetGauge(1, CapacityBU, 40)
	if got := r.GaugeValue(0, OccupancyBU); got != 12.5 {
		t.Errorf("cell 0 occupancy = %v, want 12.5", got)
	}
	if got := r.GaugeValue(1, OccupancyBU); got != 0 {
		t.Errorf("cell 1 occupancy = %v, want 0", got)
	}
	if got := r.GaugeValue(1, CapacityBU); got != 40 {
		t.Errorf("cell 1 capacity = %v, want 40", got)
	}
}

func TestSnapshotDecouplesAndReusesBuffers(t *testing.T) {
	r, err := New(2)
	if err != nil {
		t.Fatal(err)
	}
	r.Inc(0, BlocksVideo)
	r.SetGauge(1, DegradedConns, 3)

	snap := r.Snapshot(nil)
	if got := snap.Counter(0, BlocksVideo); got != 1 {
		t.Errorf("snapshot blocks video = %d, want 1", got)
	}
	if got := snap.Gauge(1, DegradedConns); got != 3 {
		t.Errorf("snapshot degraded = %v, want 3", got)
	}

	// A later bump must not leak into the already-taken sample.
	r.Inc(0, BlocksVideo)
	if got := snap.Counter(0, BlocksVideo); got != 1 {
		t.Errorf("snapshot mutated by later bump: %d", got)
	}

	// Re-sampling into the same snapshot reuses its buffers.
	before := &snap.counters[0]
	snap = r.Snapshot(snap)
	if &snap.counters[0] != before {
		t.Error("re-snapshot reallocated the counter buffer")
	}
	if got := snap.Counter(0, BlocksVideo); got != 2 {
		t.Errorf("re-snapshot blocks video = %d, want 2", got)
	}
	if snap.Cells() != 2 {
		t.Errorf("snapshot cells = %d, want 2", snap.Cells())
	}
}

// TestWritePromGolden pins the text exposition byte-for-byte: format 0.0.4
// headers, cell/class labels, stable family and cell order.
func TestWritePromGolden(t *testing.T) {
	r, err := New(2)
	if err != nil {
		t.Fatal(err)
	}
	r.Inc(0, AdmitsVoice)
	r.Inc(0, AdmitsVoice)
	r.Inc(0, BlocksVideo)
	r.Inc(1, DropsText)
	r.Add(1, CtrShed, 4)
	r.SetGauge(0, OccupancyBU, 5)
	r.SetGauge(0, CapacityBU, 40)
	r.SetGauge(1, CapacityBU, 30.5)
	r.SetGauge(1, DegradedConns, 2)

	var b strings.Builder
	if err := WriteProm(&b, r.Snapshot(nil)); err != nil {
		t.Fatal(err)
	}
	want := `# HELP facs_admits_total Accepted admissions (new calls and handoffs) by cell and class.
# TYPE facs_admits_total counter
facs_admits_total{cell="0",class="text"} 0
facs_admits_total{cell="0",class="voice"} 2
facs_admits_total{cell="0",class="video"} 0
facs_admits_total{cell="1",class="text"} 0
facs_admits_total{cell="1",class="voice"} 0
facs_admits_total{cell="1",class="video"} 0
# HELP facs_blocks_total Denied new-call admissions by cell and class.
# TYPE facs_blocks_total counter
facs_blocks_total{cell="0",class="text"} 0
facs_blocks_total{cell="0",class="voice"} 0
facs_blocks_total{cell="0",class="video"} 1
facs_blocks_total{cell="1",class="text"} 0
facs_blocks_total{cell="1",class="voice"} 0
facs_blocks_total{cell="1",class="video"} 0
# HELP facs_drops_total Denied handoff admissions (dropped on-going connections) by cell and class.
# TYPE facs_drops_total counter
facs_drops_total{cell="0",class="text"} 0
facs_drops_total{cell="0",class="voice"} 0
facs_drops_total{cell="0",class="video"} 0
facs_drops_total{cell="1",class="text"} 1
facs_drops_total{cell="1",class="voice"} 0
facs_drops_total{cell="1",class="video"} 0
# HELP facs_shed_total Requests shed by the cell's bounded queue (wire code "overloaded").
# TYPE facs_shed_total counter
facs_shed_total{cell="0"} 0
facs_shed_total{cell="1"} 4
# HELP facs_occupancy_bu Cell occupancy in bandwidth units after the most recent operation.
# TYPE facs_occupancy_bu gauge
facs_occupancy_bu{cell="0"} 5
facs_occupancy_bu{cell="1"} 0
# HELP facs_capacity_bu Cell capacity in bandwidth units.
# TYPE facs_capacity_bu gauge
facs_capacity_bu{cell="0"} 40
facs_capacity_bu{cell="1"} 30.5
# HELP facs_degraded_conns On-going connections currently served below their requested bandwidth.
# TYPE facs_degraded_conns gauge
facs_degraded_conns{cell="0"} 0
facs_degraded_conns{cell="1"} 2
`
	if got := b.String(); got != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

func TestWriteCellGauge(t *testing.T) {
	var b strings.Builder
	if err := WriteCellGauge(&b, "facs_hotness", "Demand.", []float64{1.5, 0}); err != nil {
		t.Fatal(err)
	}
	want := `# HELP facs_hotness Demand.
# TYPE facs_hotness gauge
facs_hotness{cell="0"} 1.5
facs_hotness{cell="1"} 0
`
	if got := b.String(); got != want {
		t.Errorf("cell gauge mismatch:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

// The scalar registry is process-global and rejects duplicates, so the test
// family registers once per process even under -count=N reruns.
var (
	testScalarOnce  sync.Once
	testScalarValue atomic.Uint64
)

func TestScalarRegistryAndExposition(t *testing.T) {
	// Use a test-unique name so the registration cannot collide with real
	// families registered by other packages' init functions.
	testScalarOnce.Do(func() {
		RegisterScalar("test_zz_metrics_total", "A test scalar.", testScalarValue.Load)
	})
	testScalarValue.Store(42)

	var b strings.Builder
	if err := WriteScalars(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(),
		"# HELP test_zz_metrics_total A test scalar.\n# TYPE test_zz_metrics_total counter\ntest_zz_metrics_total 42\n") {
		t.Errorf("scalar exposition missing or stale:\n%s", b.String())
	}

	found := false
	for _, f := range Families() {
		if f == "test_zz_metrics_total" {
			found = true
		}
	}
	if !found {
		t.Error("Families() does not list the registered scalar")
	}

	defer func() {
		if recover() == nil {
			t.Error("duplicate scalar registration did not panic")
		}
	}()
	RegisterScalar("test_zz_metrics_total", "dup", func() uint64 { return 0 })
}

func TestFamiliesCoverPerCellSeries(t *testing.T) {
	want := []string{
		"facs_admits_total", "facs_blocks_total", "facs_drops_total",
		"facs_shed_total", "facs_occupancy_bu", "facs_capacity_bu",
		"facs_degraded_conns", "facs_hotness",
	}
	fams := Families()
	for i, w := range want {
		if i >= len(fams) || fams[i] != w {
			t.Fatalf("Families()[%d] = %v, want %q (got %v)", i, fams, w, want)
		}
	}
}
