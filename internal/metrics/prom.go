package metrics

import (
	"fmt"
	"io"
	"strconv"

	"facsp/internal/traffic"
)

// PromContentType is the Content-Type of the text exposition format.
const PromContentType = "text/plain; version=0.0.4; charset=utf-8"

// Families lists every Prometheus metric family the repository exposes, in
// exposition order: the per-cell families of WriteProm, then the hotness
// gauge, then the registered process-wide scalars as of the call. The docs
// drift gate checks EXPERIMENTS.md documents each one.
func Families() []string {
	out := []string{
		"facs_admits_total",
		"facs_blocks_total",
		"facs_drops_total",
		"facs_shed_total",
		"facs_occupancy_bu",
		"facs_capacity_bu",
		"facs_degraded_conns",
		"facs_hotness",
		"facs_surface_tier",
		"facs_surface_tier_cells",
	}
	for _, s := range registeredScalars() {
		out = append(out, s.name)
	}
	return out
}

// classFamily is one class-partitioned counter family: a base column for
// traffic.Text with Voice and Video at the two following columns.
type classFamily struct {
	name string
	help string
	base Counter
}

var classFamilies = []classFamily{
	{"facs_admits_total", "Accepted admissions (new calls and handoffs) by cell and class.", AdmitsText},
	{"facs_blocks_total", "Denied new-call admissions by cell and class.", BlocksText},
	{"facs_drops_total", "Denied handoff admissions (dropped on-going connections) by cell and class.", DropsText},
}

// gaugeFamily is one per-cell gauge family.
type gaugeFamily struct {
	name string
	help string
	g    Gauge
}

var gaugeFamilies = []gaugeFamily{
	{"facs_occupancy_bu", "Cell occupancy in bandwidth units after the most recent operation.", OccupancyBU},
	{"facs_capacity_bu", "Cell capacity in bandwidth units.", CapacityBU},
	{"facs_degraded_conns", "On-going connections currently served below their requested bandwidth.", DegradedConns},
}

func header(w io.Writer, name, help, kind string) error {
	_, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, kind)
	return err
}

func formatFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// WriteProm renders a snapshot's per-cell counters and gauges in the
// Prometheus text exposition format (version 0.0.4), families in stable
// order and cells in slot order.
func WriteProm(w io.Writer, s *Snapshot) error {
	for _, f := range classFamilies {
		if err := header(w, f.name, f.help, "counter"); err != nil {
			return err
		}
		for cell := 0; cell < s.cells; cell++ {
			for _, cl := range traffic.Classes() {
				v := s.Counter(cell, f.base+Counter(cl-traffic.Text))
				if _, err := fmt.Fprintf(w, "%s{cell=%q,class=%q} %d\n", f.name, strconv.Itoa(cell), cl.String(), v); err != nil {
					return err
				}
			}
		}
	}
	if err := header(w, "facs_shed_total", "Requests shed by the cell's bounded queue (wire code \"overloaded\").", "counter"); err != nil {
		return err
	}
	for cell := 0; cell < s.cells; cell++ {
		if _, err := fmt.Fprintf(w, "facs_shed_total{cell=%q} %d\n", strconv.Itoa(cell), s.Counter(cell, CtrShed)); err != nil {
			return err
		}
	}
	for _, f := range gaugeFamilies {
		if err := header(w, f.name, f.help, "gauge"); err != nil {
			return err
		}
		for cell := 0; cell < s.cells; cell++ {
			if _, err := fmt.Fprintf(w, "%s{cell=%q} %s\n", f.name, strconv.Itoa(cell), formatFloat(s.Gauge(cell, f.g))); err != nil {
				return err
			}
		}
	}
	return nil
}

// WriteCellGauge renders one per-cell gauge family from a dense value
// slice indexed by cell slot — the hotness tracker's rate vector, say.
func WriteCellGauge(w io.Writer, name, help string, values []float64) error {
	if err := header(w, name, help, "gauge"); err != nil {
		return err
	}
	for cell, v := range values {
		if _, err := fmt.Fprintf(w, "%s{cell=%q} %s\n", name, strconv.Itoa(cell), formatFloat(v)); err != nil {
			return err
		}
	}
	return nil
}

// WriteLabeledGauge renders one gauge family from a dense value slice
// indexed by an integer label value — the decision-surface tier-occupancy
// histogram, say, with label "tier".
func WriteLabeledGauge(w io.Writer, name, help, label string, values []float64) error {
	if err := header(w, name, help, "gauge"); err != nil {
		return err
	}
	for i, v := range values {
		if _, err := fmt.Fprintf(w, "%s{%s=%q} %s\n", name, label, strconv.Itoa(i), formatFloat(v)); err != nil {
			return err
		}
	}
	return nil
}

// WriteScalars renders every process-wide counter family registered with
// RegisterScalar, sorted by family name.
func WriteScalars(w io.Writer) error {
	for _, s := range registeredScalars() {
		if err := header(w, s.name, s.help, "counter"); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s %d\n", s.name, s.fn()); err != nil {
			return err
		}
	}
	return nil
}
