// Package metrics is the repository's observability registry: dense-array
// per-cell counters and gauges for the admission planes (the bsd daemon's
// cell workers and the cellsim event loop), plus the Prometheus text
// exposition they are served in.
//
// The design constraint is the simulation and serving hot paths: recording
// one admission outcome must not take a lock, must not allocate, and must
// not touch a map. A Registry is therefore two flat arrays — one uint64
// counter row and one float64-bits gauge row per cell, indexed by
// slot x column — and every bump is a single atomic add or store. Readers
// (the /metrics scrape, interval samplers) take a Snapshot: an atomic
// element-wise copy of both arrays into a reusable buffer, so a scrape
// observes each cell's columns at one sampling instant without ever
// blocking a writer.
//
// Process-wide counters that are not per-cell (the decision-surface
// compile cache of internal/core, say) register a read callback with
// RegisterScalar and ride along in the same exposition.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"facsp/internal/traffic"
)

// floatBits and floatFrom move gauge values through the uint64 atomics.
func floatBits(v float64) uint64 { return math.Float64bits(v) }
func floatFrom(b uint64) float64 { return math.Float64frombits(b) }

// Counter identifies one per-cell monotone counter column of a Registry.
type Counter int

// The per-cell counter columns. The class-partitioned triples are laid out
// consecutively so Admits/Blocks/Drops can index them by traffic.Class.
const (
	// AdmitsText..AdmitsVideo count accepted admissions (new calls and
	// handoffs) by service class.
	AdmitsText Counter = iota
	AdmitsVoice
	AdmitsVideo
	// BlocksText..BlocksVideo count denied new-call admissions by class.
	BlocksText
	BlocksVoice
	BlocksVideo
	// DropsText..DropsVideo count denied handoff admissions by class — an
	// on-going connection lost at a cell boundary.
	DropsText
	DropsVoice
	DropsVideo
	// CtrShed counts requests shed by the cell's bounded queue
	// (wire code "overloaded").
	CtrShed

	numCounters
)

// Admits returns the accepted-admission counter column for a class.
func Admits(c traffic.Class) Counter { return AdmitsText + Counter(c-traffic.Text) }

// Blocks returns the denied-new-call counter column for a class.
func Blocks(c traffic.Class) Counter { return BlocksText + Counter(c-traffic.Text) }

// Drops returns the denied-handoff counter column for a class.
func Drops(c traffic.Class) Counter { return DropsText + Counter(c-traffic.Text) }

// Gauge identifies one per-cell gauge column of a Registry.
type Gauge int

// The per-cell gauge columns.
const (
	// OccupancyBU is the cell occupancy in bandwidth units after the
	// cell's most recent operation.
	OccupancyBU Gauge = iota
	// CapacityBU is the cell's total bandwidth in BU.
	CapacityBU
	// DegradedConns is the number of on-going connections an adaptive
	// scheme currently serves below their requested bandwidth — the
	// degradation depth of the cell. Always 0 for non-adaptive schemes.
	DegradedConns

	numGauges
)

// Registry holds the per-cell telemetry of one admission plane. All
// methods are safe for concurrent use; Inc, Add and SetGauge are
// lock-free, allocation-free single atomic operations, so they may sit on
// the simulation and serving hot paths.
type Registry struct {
	cells    int
	counters []atomic.Uint64 // cells x numCounters
	gauges   []atomic.Uint64 // cells x numGauges, float64 bits
}

// New builds a registry for the given number of cells.
func New(cells int) (*Registry, error) {
	if cells < 1 {
		return nil, fmt.Errorf("metrics: registry needs at least one cell, got %d", cells)
	}
	return &Registry{
		cells:    cells,
		counters: make([]atomic.Uint64, cells*int(numCounters)),
		gauges:   make([]atomic.Uint64, cells*int(numGauges)),
	}, nil
}

// Cells returns the number of cell rows.
func (r *Registry) Cells() int { return r.cells }

// Inc adds 1 to a cell's counter column.
func (r *Registry) Inc(cell int, c Counter) {
	r.counters[cell*int(numCounters)+int(c)].Add(1)
}

// Add adds n to a cell's counter column.
func (r *Registry) Add(cell int, c Counter, n uint64) {
	r.counters[cell*int(numCounters)+int(c)].Add(n)
}

// CounterValue reads one cell's counter column.
func (r *Registry) CounterValue(cell int, c Counter) uint64 {
	return r.counters[cell*int(numCounters)+int(c)].Load()
}

// SetGauge stores a cell's gauge column.
func (r *Registry) SetGauge(cell int, g Gauge, v float64) {
	r.gauges[cell*int(numGauges)+int(g)].Store(floatBits(v))
}

// GaugeValue reads one cell's gauge column.
func (r *Registry) GaugeValue(cell int, g Gauge) float64 {
	return floatFrom(r.gauges[cell*int(numGauges)+int(g)].Load())
}

// Snapshot is one interval sample of a whole registry: plain dense arrays
// a reader owns outright, decoupled from the live atomics.
type Snapshot struct {
	cells    int
	counters []uint64
	gauges   []float64
}

// Cells returns the number of cell rows in the snapshot.
func (s *Snapshot) Cells() int { return s.cells }

// Counter reads one cell's sampled counter column.
func (s *Snapshot) Counter(cell int, c Counter) uint64 {
	return s.counters[cell*int(numCounters)+int(c)]
}

// Gauge reads one cell's sampled gauge column.
func (s *Snapshot) Gauge(cell int, g Gauge) float64 {
	return s.gauges[cell*int(numGauges)+int(g)]
}

// Snapshot samples every counter and gauge with atomic loads into dst,
// reusing its buffers when they fit (a periodic sampler allocates once,
// then samples allocation-free). A nil dst allocates a fresh snapshot.
func (r *Registry) Snapshot(dst *Snapshot) *Snapshot {
	if dst == nil {
		dst = new(Snapshot)
	}
	dst.cells = r.cells
	dst.counters = growSlice(dst.counters, len(r.counters))
	dst.gauges = growSlice(dst.gauges, len(r.gauges))
	for i := range r.counters {
		dst.counters[i] = r.counters[i].Load()
	}
	for i := range r.gauges {
		dst.gauges[i] = floatFrom(r.gauges[i].Load())
	}
	return dst
}

// growSlice returns buf with length n, reusing its capacity when possible.
func growSlice[T any](buf []T, n int) []T {
	if cap(buf) < n {
		return make([]T, n)
	}
	return buf[:n]
}

// ScalarFunc reads one process-wide counter value.
type ScalarFunc func() uint64

// scalar is one registered process-wide counter family.
type scalar struct {
	name, help string
	fn         ScalarFunc
}

var scalars struct {
	mu   sync.Mutex
	list []scalar
}

// RegisterScalar registers a process-wide (not per-cell) counter family
// under the given Prometheus family name; every exposition written with
// WriteScalars reads it through fn. Registering a duplicate name panics —
// callers register from package init, so a collision is a programming
// error, not a runtime condition.
func RegisterScalar(name, help string, fn ScalarFunc) {
	scalars.mu.Lock()
	defer scalars.mu.Unlock()
	for _, s := range scalars.list {
		if s.name == name {
			panic("metrics: duplicate scalar family " + name)
		}
	}
	scalars.list = append(scalars.list, scalar{name: name, help: help, fn: fn})
}

// registeredScalars snapshots the scalar registry sorted by family name,
// so exposition order is stable regardless of registration order.
func registeredScalars() []scalar {
	scalars.mu.Lock()
	out := make([]scalar, len(scalars.list))
	copy(out, scalars.list)
	scalars.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}
