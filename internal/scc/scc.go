// Package scc implements the Shadow Cluster Concept call-admission
// baseline of Levine, Akyildiz and Naghshineh (IEEE/ACM ToN 1997), the
// comparator of the paper's Fig. 7.
//
// Every active mobile casts a probabilistic "shadow" over the cells along
// its projected trajectory: the demand it is expected to place on each
// cell in each future time window, decaying with the probability that the
// call is still alive. A new call is admitted only if, in every window,
// every cell the candidate will influence can absorb the candidate's
// projected demand on top of everything already projected onto it —
// i.e. the network reserves resources along trajectories before they are
// needed. Handoffs consume those reservations and are checked against
// physical occupancy only, which is the scheme's whole purpose.
//
// The implementation is a network-level cellsim.Admitter: one Controller
// manages all cells of the cluster, since shadows span cell boundaries.
package scc

import (
	"fmt"
	"math"
	"sync"

	"facsp/internal/cac"
	"facsp/internal/hexgrid"
)

// Config parameterises a shadow-cluster controller.
type Config struct {
	// Capacity is the per-cell capacity in bandwidth units.
	Capacity float64
	// CellRadius is the hexagon circumradius in metres (must match the
	// simulator's layout).
	CellRadius float64
	// Windows is the number of future projection windows K.
	Windows int
	// WindowSec is the projection window length in seconds.
	WindowSec float64
	// UtilizationTarget scales the admission bound: a candidate fits when
	// projected demand stays below UtilizationTarget*Capacity in every
	// influenced cell and window. 1 admits up to physical capacity.
	UtilizationTarget float64
	// SpreadWeight is the shadow weight a mobile casts on each neighbour
	// of its projected cell, as a fraction of its bandwidth, before
	// uncertainty scaling. It models the "darkness" of the shadow's
	// penumbra: the slower (less predictable) a mobile, the more of its
	// demand is reserved in adjacent cells.
	SpreadWeight float64
	// UncertaintyScale is the speed (km/h) at which trajectory uncertainty
	// halves: a mobile's penumbra weight is SpreadWeight/(1+speed/scale).
	UncertaintyScale float64
	// Headroom is the bandwidth (BU) reserved for predicted handoff
	// arrivals when the cell is empty. The live reservation is
	// Headroom*(1 - occupancy/capacity)^AdaptExp: generous when idle,
	// ceded to live demand as the cell fills. This is how the shadow
	// cluster "reserves resources by denying network access to new call
	// requests" while still letting a congested BS serve real demand.
	Headroom float64
	// AdaptExp controls how quickly shadow reservations (both the
	// handoff headroom and the penumbra contributions) yield to live
	// demand as a cell fills; contributions are scaled by
	// (1 - occupancy/capacity)^AdaptExp. Shadows express the *priority* of
	// likely future arrivals; a congested BS serves actual calls first.
	AdaptExp float64
}

// DefaultConfig returns the configuration used for the Fig. 7 comparison:
// the paper's 40-BU cells and three 30-second projection windows matched
// to the simulator's 180-second mean holding time.
func DefaultConfig() Config {
	return Config{
		Capacity:          40,
		CellRadius:        1000,
		Windows:           3,
		WindowSec:         30,
		UtilizationTarget: 1,
		SpreadWeight:      0.5,
		UncertaintyScale:  30,
		Headroom:          30,
		AdaptExp:          0.8,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.Capacity <= 0 {
		return fmt.Errorf("scc: capacity %v must be positive", c.Capacity)
	}
	if c.CellRadius <= 0 {
		return fmt.Errorf("scc: cell radius %v must be positive", c.CellRadius)
	}
	if c.Windows < 1 {
		return fmt.Errorf("scc: window count %d must be at least 1", c.Windows)
	}
	if c.WindowSec <= 0 {
		return fmt.Errorf("scc: window length %v must be positive", c.WindowSec)
	}
	if c.UtilizationTarget <= 0 || c.UtilizationTarget > 1 {
		return fmt.Errorf("scc: utilization target %v outside (0, 1]", c.UtilizationTarget)
	}
	if c.SpreadWeight < 0 {
		return fmt.Errorf("scc: spread weight %v must be non-negative", c.SpreadWeight)
	}
	if c.UncertaintyScale <= 0 {
		return fmt.Errorf("scc: uncertainty scale %v must be positive", c.UncertaintyScale)
	}
	if c.Headroom < 0 || c.Headroom >= c.Capacity {
		return fmt.Errorf("scc: headroom %v outside [0, capacity)", c.Headroom)
	}
	if c.AdaptExp < 0 {
		return fmt.Errorf("scc: adaptation exponent %v must be non-negative", c.AdaptExp)
	}
	return nil
}

// mobile is the controller's view of one active connection.
type mobile struct {
	cell    hexgrid.Coord
	x, y    float64
	speed   float64 // km/h
	heading float64 // degrees CCW from +x
	bw      float64
}

// Controller is a shadow-cluster admission controller for a whole cluster
// of cells. It is safe for concurrent use.
type Controller struct {
	cfg    Config
	layout hexgrid.Layout

	mu     sync.Mutex
	active map[uint64]*mobile
	occ    map[hexgrid.Coord]float64
}

// New builds a Controller.
func New(cfg Config) (*Controller, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Controller{
		cfg:    cfg,
		layout: hexgrid.NewLayout(cfg.CellRadius),
		active: make(map[uint64]*mobile),
		occ:    make(map[hexgrid.Coord]float64),
	}, nil
}

// SchemeName implements cac.Named.
func (c *Controller) SchemeName() string { return "SCC" }

// Capacity returns the per-cell capacity.
func (c *Controller) Capacity() float64 { return c.cfg.Capacity }

// Occupancy returns the bandwidth in use at the given cell.
func (c *Controller) Occupancy(cell hexgrid.Coord) float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.occ[cell]
}

// ActiveCount returns the number of tracked connections (diagnostics).
func (c *Controller) ActiveCount() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.active)
}

// stateFromRequest reconstructs a mobile's kinematic state from a request:
// the serving BS knows the user's position and the angle between the
// user's heading and the BS bearing.
func (c *Controller) stateFromRequest(cell hexgrid.Coord, req cac.Request) *mobile {
	bsX, bsY := c.layout.Center(cell)
	heading := hexgrid.NormalizeAngle(hexgrid.BearingDeg(req.X, req.Y, bsX, bsY) + req.Angle)
	return &mobile{
		cell:    cell,
		x:       req.X,
		y:       req.Y,
		speed:   req.Speed,
		heading: heading,
		bw:      req.Bandwidth,
	}
}

// project returns the cell the mobile is expected to occupy after dt
// seconds, assuming straight-line travel at its current speed and heading.
func (c *Controller) project(m *mobile, dt float64) hexgrid.Coord {
	rad := m.heading * math.Pi / 180
	d := m.speed / 3.6 * dt
	return c.layout.CellAt(m.x+d*math.Cos(rad), m.y+d*math.Sin(rad))
}

// Admit implements the cellsim.Admitter decision at one cell.
func (c *Controller) Admit(cell hexgrid.Coord, req cac.Request) cac.Decision {
	if err := req.Validate(); err != nil {
		return cac.Decision{Accept: false, Score: -1, Outcome: "error: " + err.Error()}
	}
	c.mu.Lock()
	defer c.mu.Unlock()

	if req.Handoff {
		// Handoffs draw on the reservations the shadows created: only the
		// physical capacity of the target cell is checked.
		if c.occ[cell]+req.Bandwidth > c.cfg.Capacity {
			return cac.Decision{Accept: false, Score: -1, Outcome: "capacity"}
		}
		c.admitLocked(cell, req)
		return cac.Decision{Accept: true, Score: 1, Outcome: "handoff-reserved"}
	}

	cand := c.stateFromRequest(cell, req)

	// Hard physical bound in the current cell.
	if c.occ[cell]+req.Bandwidth > c.cfg.Capacity {
		return cac.Decision{Accept: false, Score: -1, Outcome: "capacity"}
	}

	// The candidate must fit under the projected demand surface in every
	// window, in every cell of its tentative shadow cluster. Demand is not
	// decayed by call-termination probability: in Levine's scheme the
	// decay is offset by forecast new arrivals, and the conservative
	// (undecayed) projection is the standard simplification — it is what
	// makes SCC reserve more aggressively than the fuzzy schemes at light
	// load (the Fig. 7 low-N regime).
	//
	// Shadow reservations (handoff headroom and penumbra) relax as the
	// candidate's cell fills: reservations encode the priority of probable
	// arrivals, and a loaded BS serves live demand first.
	fill := c.occ[cell] / c.cfg.Capacity
	if fill > 1 {
		fill = 1
	}
	relax := math.Pow(1-fill, c.cfg.AdaptExp)
	bound := c.cfg.UtilizationTarget*c.cfg.Capacity - c.cfg.Headroom*relax
	for k := 0; k <= c.cfg.Windows; k++ {
		dt := float64(k) * c.cfg.WindowSec
		target := c.project(cand, dt)
		if cand.bw+c.projectedDemandLocked(target, dt, relax) > bound {
			return cac.Decision{
				Accept:  false,
				Score:   -1,
				Outcome: fmt.Sprintf("shadow window %d at %v", k, target),
			}
		}
	}

	c.admitLocked(cell, req)
	return cac.Decision{Accept: true, Score: 1, Outcome: "shadow-fit"}
}

// projectedDemandLocked sums every active mobile's projected demand on the
// given cell dt seconds from now: the full bandwidth of mobiles whose
// trajectory lands in the cell (the shadow's umbra) plus an uncertainty-
// and congestion-scaled fraction from mobiles landing in adjacent cells
// (the penumbra). Callers must hold c.mu.
func (c *Controller) projectedDemandLocked(cell hexgrid.Coord, dt float64, relax float64) float64 {
	if dt == 0 {
		return c.occ[cell]
	}
	demand := 0.0
	for _, m := range c.active {
		j := c.project(m, dt)
		switch {
		case j == cell:
			demand += m.bw
		case hexgrid.Distance(j, cell) == 1:
			uncertainty := 1 / (1 + m.speed/c.cfg.UncertaintyScale)
			demand += relax * c.cfg.SpreadWeight * uncertainty * m.bw
		}
	}
	return demand
}

// admitLocked records the admission. Callers must hold c.mu.
func (c *Controller) admitLocked(cell hexgrid.Coord, req cac.Request) {
	c.occ[cell] += req.Bandwidth
	c.active[req.ID] = c.stateFromRequest(cell, req)
}

// Release implements cellsim.Admitter: the connection no longer occupies
// the given cell, either because it ended or because it handed off away.
func (c *Controller) Release(cell hexgrid.Coord, req cac.Request) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.occ[cell] < req.Bandwidth-1e-9 {
		return fmt.Errorf("scc: release of %v BU at %v exceeds occupancy %v", req.Bandwidth, cell, c.occ[cell])
	}
	c.occ[cell] -= req.Bandwidth
	if c.occ[cell] < 0 {
		c.occ[cell] = 0
	}
	// Drop the mobile's shadow only if it still originates at this cell;
	// after a handoff the entry already points at the new cell.
	if m, ok := c.active[req.ID]; ok && m.cell == cell {
		delete(c.active, req.ID)
	}
	return nil
}
