package scc

import (
	"testing"

	"facsp/internal/cac"
	"facsp/internal/hexgrid"
)

func newController(t testing.TB) *Controller {
	t.Helper()
	c, err := New(DefaultConfig())
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return c
}

// reqAt builds a new-call request positioned at the centre of the given
// cell, heading at the given angle relative to the BS.
func reqAt(c *Controller, cell hexgrid.Coord, id uint64, bw, speed, angle float64) cac.Request {
	x, y := c.layout.Center(cell)
	return cac.Request{
		ID: id, X: x, Y: y,
		Speed: speed, Angle: angle,
		Bandwidth: bw, RealTime: bw > 1,
	}
}

func TestConfigValidate(t *testing.T) {
	tests := []struct {
		name string
		mut  func(*Config)
	}{
		{name: "zero capacity", mut: func(c *Config) { c.Capacity = 0 }},
		{name: "zero radius", mut: func(c *Config) { c.CellRadius = 0 }},
		{name: "zero windows", mut: func(c *Config) { c.Windows = 0 }},
		{name: "zero window length", mut: func(c *Config) { c.WindowSec = 0 }},
		{name: "target above one", mut: func(c *Config) { c.UtilizationTarget = 1.1 }},
		{name: "target zero", mut: func(c *Config) { c.UtilizationTarget = 0 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := DefaultConfig()
			tt.mut(&cfg)
			if _, err := New(cfg); err == nil {
				t.Error("invalid config accepted")
			}
		})
	}
}

func TestAdmitIntoEmptyNetwork(t *testing.T) {
	c := newController(t)
	centre := hexgrid.Coord{}
	d := c.Admit(centre, reqAt(c, centre, 1, 10, 60, 0))
	if !d.Accept {
		t.Fatalf("empty network rejected a video call: %+v", d)
	}
	if got := c.Occupancy(centre); got != 10 {
		t.Errorf("occupancy = %v, want 10", got)
	}
	if got := c.ActiveCount(); got != 1 {
		t.Errorf("active = %d, want 1", got)
	}
}

func TestPhysicalCapacityBound(t *testing.T) {
	c := newController(t)
	centre := hexgrid.Coord{}
	var id uint64
	admitted := 0.0
	for i := 0; i < 100; i++ {
		id++
		// Stationary users: all demand stays in the centre cell.
		if d := c.Admit(centre, reqAt(c, centre, id, 5, 0, 0)); d.Accept {
			admitted += 5
		}
	}
	if admitted > c.Capacity() {
		t.Fatalf("admitted %v BU into a %v BU cell", admitted, c.Capacity())
	}
	if got := c.Occupancy(centre); got != admitted {
		t.Errorf("occupancy = %v, want %v", got, admitted)
	}
}

func TestShadowBlocksWhenTargetCellLoaded(t *testing.T) {
	// Fill a neighbour cell, then ask to admit a fast mobile heading
	// straight into it: the shadow check must refuse even though the
	// origin cell is empty.
	c := newController(t)
	centre := hexgrid.Coord{}
	east := hexgrid.Coord{Q: 1, R: 0}

	// Fill the east cell through the handoff path, which bypasses the
	// new-call reservation headroom and reaches physical capacity.
	var id uint64
	for i := 0; i < 8; i++ {
		id++
		h := reqAt(c, east, id, 5, 0, 0)
		h.Handoff = true
		if d := c.Admit(east, h); !d.Accept {
			t.Fatalf("loading east cell failed at %d: %+v", i, d)
		}
	}
	if got := c.Occupancy(east); got != 40 {
		t.Fatalf("east occupancy = %v, want 40", got)
	}

	// 120 km/h due east: crosses into the east cell within the first
	// projection window (1732m centre spacing, 33 m/s * 60 s = 2000 m).
	id++
	d := c.Admit(centre, reqAt(c, centre, id, 5, 120, 0))
	if d.Accept {
		t.Fatal("fast mobile heading into a full cell was admitted")
	}
	if got := c.Occupancy(centre); got != 0 {
		t.Errorf("failed admission changed occupancy to %v", got)
	}

	// A slow mobile in the centre is also refused: the full east cell's
	// stationary (maximally uncertain) users cast their penumbra over the
	// adjacent centre cell.
	id++
	if d := c.Admit(centre, reqAt(c, centre, id, 5, 3, 0)); d.Accept {
		t.Errorf("slow mobile admitted under the penumbra of a full neighbour: %+v", d)
	}

	// Once the east cell drains, the slow mobile fits.
	for rid := uint64(1); rid <= 8; rid++ {
		if err := c.Release(east, reqAt(c, east, rid, 5, 0, 0)); err != nil {
			t.Fatalf("draining east: %v", err)
		}
	}
	id++
	if d := c.Admit(centre, reqAt(c, centre, id, 5, 3, 0)); !d.Accept {
		t.Errorf("slow mobile rejected despite empty network: %+v", d)
	}
}

func TestHandoffUsesReservations(t *testing.T) {
	// Handoffs are checked against physical occupancy only, so a handoff
	// succeeds where a new call's shadow check would refuse.
	cfg := DefaultConfig()
	cfg.Headroom = 20 // new calls blocked above 20 BU projected
	cfg.AdaptExp = 0  // fixed headroom for a deterministic bound
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	centre := hexgrid.Coord{}
	var id uint64
	for i := 0; i < 4; i++ {
		id++
		if d := c.Admit(centre, reqAt(c, centre, id, 5, 0, 0)); !d.Accept {
			t.Fatalf("fill call %d rejected: %+v", i, d)
		}
	}
	// 20 BU used: a new 5-BU call breaches the 20-BU target...
	id++
	if d := c.Admit(centre, reqAt(c, centre, id, 5, 0, 0)); d.Accept {
		t.Fatal("new call admitted above utilization target")
	}
	// ...but a handoff is served from reserved headroom.
	id++
	h := reqAt(c, centre, id, 5, 0, 0)
	h.Handoff = true
	if d := c.Admit(centre, h); !d.Accept {
		t.Fatalf("handoff rejected despite physical room: %+v", d)
	}
}

func TestHandoffStillCapacityBound(t *testing.T) {
	c := newController(t)
	centre := hexgrid.Coord{}
	var id uint64
	for i := 0; i < 8; i++ {
		id++
		h := reqAt(c, centre, id, 5, 0, 0)
		h.Handoff = true
		if d := c.Admit(centre, h); !d.Accept {
			t.Fatalf("fill call %d rejected", i)
		}
	}
	id++
	h := reqAt(c, centre, id, 5, 0, 0)
	h.Handoff = true
	if d := c.Admit(centre, h); d.Accept {
		t.Fatal("handoff admitted beyond physical capacity")
	}
}

func TestReleaseEndOfCall(t *testing.T) {
	c := newController(t)
	centre := hexgrid.Coord{}
	req := reqAt(c, centre, 1, 10, 30, 0)
	if d := c.Admit(centre, req); !d.Accept {
		t.Fatal("admit failed")
	}
	if err := c.Release(centre, req); err != nil {
		t.Fatalf("Release: %v", err)
	}
	if got := c.Occupancy(centre); got != 0 {
		t.Errorf("occupancy = %v, want 0", got)
	}
	if got := c.ActiveCount(); got != 0 {
		t.Errorf("active = %d, want 0", got)
	}
}

func TestHandoffMoveKeepsShadow(t *testing.T) {
	// Admit at centre, handoff to east, release at centre (the simulator's
	// make-before-break order): the mobile must remain tracked, now at
	// east.
	c := newController(t)
	centre := hexgrid.Coord{}
	east := hexgrid.Coord{Q: 1, R: 0}

	req := reqAt(c, centre, 7, 5, 60, 0)
	if d := c.Admit(centre, req); !d.Accept {
		t.Fatal("admit failed")
	}
	h := reqAt(c, east, 7, 5, 60, 0)
	h.Handoff = true
	if d := c.Admit(east, h); !d.Accept {
		t.Fatal("handoff failed")
	}
	if err := c.Release(centre, req); err != nil {
		t.Fatalf("Release old cell: %v", err)
	}
	if got := c.ActiveCount(); got != 1 {
		t.Errorf("active after handoff = %d, want 1", got)
	}
	if got := c.Occupancy(east); got != 5 {
		t.Errorf("east occupancy = %v, want 5", got)
	}
	if got := c.Occupancy(centre); got != 0 {
		t.Errorf("centre occupancy = %v, want 0", got)
	}
}

func TestReleaseUnderflow(t *testing.T) {
	c := newController(t)
	if err := c.Release(hexgrid.Coord{}, reqAt(c, hexgrid.Coord{}, 1, 5, 0, 0)); err == nil {
		t.Error("release from empty cell did not error")
	}
}

func TestInvalidRequestRejected(t *testing.T) {
	c := newController(t)
	d := c.Admit(hexgrid.Coord{}, cac.Request{Bandwidth: 0})
	if d.Accept {
		t.Error("zero-bandwidth request accepted")
	}
}

func TestSchemeName(t *testing.T) {
	if got := newController(t).SchemeName(); got != "SCC" {
		t.Errorf("SchemeName = %q", got)
	}
}

func TestProjectedDemandFollowsTrajectory(t *testing.T) {
	c := newController(t)
	centre := hexgrid.Coord{}
	east := hexgrid.Coord{Q: 1, R: 0}
	// A fast mobile heading east stops loading the centre's future
	// windows and starts loading the east cell's.
	if d := c.Admit(centre, reqAt(c, centre, 1, 10, 120, 0)); !d.Accept {
		t.Fatal("admit failed")
	}
	c.mu.Lock()
	nowCentre := c.projectedDemandLocked(centre, 0, 1)
	futureCentre := c.projectedDemandLocked(centre, 60, 1)
	futureEast := c.projectedDemandLocked(east, 60, 1)
	c.mu.Unlock()
	if nowCentre != 10 {
		t.Errorf("window-0 centre demand = %v, want 10", nowCentre)
	}
	// The centre is adjacent to the projected cell, so it keeps only the
	// penumbra: spread 0.5 * uncertainty 1/(1+120/30) * 10 BU = 1 BU.
	if futureCentre != 1 {
		t.Errorf("window-60s centre demand = %v, want penumbra 1", futureCentre)
	}
	if futureEast != 10 {
		t.Errorf("window-60s east demand = %v, want umbra 10", futureEast)
	}
}

func TestStationaryProjectionStaysPut(t *testing.T) {
	c := newController(t)
	centre := hexgrid.Coord{}
	if d := c.Admit(centre, reqAt(c, centre, 1, 10, 0, 0)); !d.Accept {
		t.Fatal("admit failed")
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, dt := range []float64{0, 30, 60, 90} {
		if got := c.projectedDemandLocked(centre, dt, 1); got != 10 {
			t.Errorf("stationary demand at dt=%v is %v, want 10", dt, got)
		}
	}
}
