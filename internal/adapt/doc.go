// Package adapt implements call admission control based on adaptive
// bandwidth allocation: instead of protecting on-going connections only by
// refusing new ones (guard channels, FACS-P's adaptive threshold), the
// controller degrades the bandwidth of elastic on-going connections in
// discrete steps — e.g. 10 → 7 → 5 → 3 BU for a video call — to free
// capacity for handoffs and real-time arrivals, and restores degraded
// calls most-degraded-first as capacity is released.
//
// The scheme follows Chowdhury, Jang and Haas, "Call Admission Control
// based on Adaptive Bandwidth Allocation for Wireless Networks"
// (arXiv:1412.3630) and the follow-up "Priority based Bandwidth Adaptation
// for Multi-class Traffic in Wireless Networks" (arXiv:1412.4322),
// transplanted onto this repository's cac.Controller contract so the
// cellular simulator can run it head-to-head against FACS, FACS-P, SCC and
// the guard-channel baselines.
//
// Two controllers are provided:
//
//   - Controller is the crisp scheme: admission is governed purely by
//     capacity plus the degradation machinery.
//   - Fuzzy combines the degradation machinery with the paper's two-stage
//     fuzzy pipeline (FLC1 → FLC2): the capacity reclaimable by
//     degradation is fed into FLC2's counter-state input as extra
//     headroom, so the fuzzy priority stage sees a cell that is
//     effectively emptier than its raw occupancy.
//
// Both controllers implement cac.Adaptive: mid-call reallocations are
// reported through a cac.BandwidthObserver, which is how cellsim tracks
// the mean received/requested bandwidth QoS metric (the degradation
// ratio).
package adapt
