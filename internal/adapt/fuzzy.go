package adapt

import (
	"fmt"

	"facsp/internal/cac"
	"facsp/internal/core"
)

// Fuzzy is the fuzzy adaptive-bandwidth controller: the Controller's
// degradation machinery gated by the paper's two-stage fuzzy pipeline
// (FLC1 → FLC2 with FACS-P's load-adaptive threshold). The capacity that
// degradation could reclaim is subtracted from the occupancy the fuzzy
// stage sees — a post-scale on FLC2's counter-state (Cs) input — so a cell
// full of elastic traffic still looks accommodating to the priority stage,
// which is exactly the headroom the degradation machinery can make real.
//
// It implements cac.Controller, cac.Named and cac.Adaptive, and is safe
// for concurrent use.
type Fuzzy struct {
	ctrl *Controller
	eval *core.FACSP
}

var (
	_ cac.Controller = (*Fuzzy)(nil)
	_ cac.Named      = (*Fuzzy)(nil)
	_ cac.Adaptive   = (*Fuzzy)(nil)
)

// NewFuzzy builds a fuzzy adaptive controller from a degradation config
// and a FACS-P config for the inference pipeline. The FACS-P capacity is
// overridden by cfg.Capacity so both stages agree on the cell size.
func NewFuzzy(cfg Config, pcfg core.PConfig) (*Fuzzy, error) {
	ctrl, err := New(cfg)
	if err != nil {
		return nil, err
	}
	pcfg.Capacity = cfg.Capacity
	eval, err := core.NewFACSP(pcfg)
	if err != nil {
		return nil, fmt.Errorf("adapt: building fuzzy pipeline: %w", err)
	}
	return &Fuzzy{ctrl: ctrl, eval: eval}, nil
}

// SchemeName implements cac.Named.
func (f *Fuzzy) SchemeName() string { return "adapt-fuzzy" }

// Capacity implements cac.Controller.
func (f *Fuzzy) Capacity() float64 { return f.ctrl.Capacity() }

// Occupancy implements cac.Controller.
func (f *Fuzzy) Occupancy() float64 { return f.ctrl.Occupancy() }

// SetBandwidthObserver implements cac.Adaptive.
func (f *Fuzzy) SetBandwidthObserver(obs cac.BandwidthObserver) {
	f.ctrl.SetBandwidthObserver(obs)
}

// Allocation returns the bandwidth currently granted to connection id.
func (f *Fuzzy) Allocation(id uint64) (float64, bool) { return f.ctrl.Allocation(id) }

// Degraded returns the number of connections served below their full rate.
func (f *Fuzzy) Degraded() int { return f.ctrl.Degraded() }

// Admit implements cac.Controller: the request first clears the fuzzy
// priority stage evaluated against the headroom-discounted occupancy, then
// the degradation machinery actually makes room for it.
func (f *Fuzzy) Admit(req cac.Request) cac.Decision {
	if err := req.Validate(); err != nil {
		return cac.Decision{Accept: false, Score: -1, Outcome: "error: " + err.Error(), Occupancy: f.ctrl.Occupancy()}
	}
	f.ctrl.mu.Lock()
	defer f.ctrl.mu.Unlock()

	// Flag duplicates before the inference pass, so the error surface
	// matches the crisp controller's regardless of load.
	if _, dup := f.ctrl.conns[req.ID]; dup {
		return cac.Decision{Accept: false, Score: -1,
			Outcome:   fmt.Sprintf("error: adapt: connection %d already admitted", req.ID),
			Occupancy: f.ctrl.total}
	}

	// Allocated BU per differentiated-service counter, then the post-scale:
	// discount the occupancy by what degradation could reclaim for this
	// arrival class, shrinking both counters proportionally. One pass in
	// sorted-ID order computes both the counters and the reclaimable
	// headroom, keeping the float accumulation — and so borderline fuzzy
	// admissions — independent of map iteration order.
	depth := f.ctrl.depthFor(req)
	var rtc, nrtc, head float64
	for _, cn := range f.ctrl.sortedConns() {
		if cn.realTime {
			rtc += cn.alloc()
		} else {
			nrtc += cn.alloc()
		}
		if depth > 0 {
			if d := cn.alloc() - cn.ladder[cn.maxLevel(depth)]; d > 0 {
				head += d
			}
		}
	}
	if total := rtc + nrtc; total > 0 {
		scale := (total - head) / total
		if scale < 0 {
			scale = 0
		}
		rtc *= scale
		nrtc *= scale
	}

	d, err := f.eval.Evaluate(req, rtc, nrtc)
	if err != nil {
		return cac.Decision{Accept: false, Score: -1, Outcome: "error: " + err.Error(), Occupancy: f.ctrl.total}
	}
	if !d.Accept {
		d.Occupancy = f.ctrl.total
		return d.Decision
	}
	m := f.ctrl.admitLocked(req)
	if m.Accept {
		// Keep the machine's degradation outcome but report the fuzzy
		// confidence; a plain fit keeps the linguistic outcome too.
		m.Score = d.Score
		if m.Outcome == "fits" {
			m.Outcome = d.Outcome
		}
	}
	return m
}

// Release implements cac.Controller.
func (f *Fuzzy) Release(req cac.Request) error { return f.ctrl.Release(req) }
