package adapt

import (
	"testing"

	"facsp/internal/cac"
	"facsp/internal/core"
)

func newFuzzy(t *testing.T) *Fuzzy {
	t.Helper()
	f, err := NewFuzzy(DefaultConfig(), core.DefaultPConfig())
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestFuzzyBasicAdmitRelease(t *testing.T) {
	f := newFuzzy(t)
	if got := f.SchemeName(); got != "adapt-fuzzy" {
		t.Errorf("scheme name %q", got)
	}
	if got := f.Capacity(); got != 40 {
		t.Errorf("capacity %v", got)
	}
	req := cac.Request{ID: 1, Speed: 60, Angle: 0, Bandwidth: 5, RealTime: true}
	d := f.Admit(req)
	if !d.Accept {
		t.Fatalf("easy voice call rejected: %+v", d)
	}
	if d.Allocated != 5 {
		t.Errorf("allocated %v, want 5", d.Allocated)
	}
	if got := f.Occupancy(); got != 5 {
		t.Errorf("occupancy %v, want 5", got)
	}
	if err := f.Release(req); err != nil {
		t.Fatal(err)
	}
	if got := f.Occupancy(); got != 0 {
		t.Errorf("occupancy %v after release, want 0", got)
	}
}

func TestFuzzyRejectsInvalidRequests(t *testing.T) {
	f := newFuzzy(t)
	if d := f.Admit(cac.Request{ID: 1, Bandwidth: -3}); d.Accept {
		t.Error("invalid request admitted")
	}
	if err := f.Release(cac.Request{ID: 9, Bandwidth: 5}); err == nil {
		t.Error("release of unknown connection succeeded")
	}
}

func TestFuzzyDuplicateIDFlaggedAtAnyLoad(t *testing.T) {
	// The duplicate-ID error must surface before the fuzzy stage, so a
	// loaded cell cannot mask an ID-reuse bug as a plain rejection.
	f := newFuzzy(t)
	for id := uint64(1); id <= 4; id++ {
		if d := f.Admit(cac.Request{ID: id, Speed: 60, Angle: 0, Bandwidth: 10, RealTime: true}); !d.Accept {
			t.Fatalf("video %d rejected: %+v", id, d)
		}
	}
	d := f.Admit(cac.Request{ID: 2, Speed: 60, Angle: 0, Bandwidth: 10, RealTime: true})
	if d.Accept {
		t.Fatalf("duplicate admitted: %+v", d)
	}
	if want := "error: adapt: connection 2 already admitted"; d.Outcome != want {
		t.Errorf("outcome %q, want %q", d.Outcome, want)
	}
}

func TestFuzzyHandoffDegradesFullCell(t *testing.T) {
	f := newFuzzy(t)
	for id := uint64(1); id <= 4; id++ {
		d := f.Admit(cac.Request{ID: id, Speed: 60, Angle: 0, Bandwidth: 10, RealTime: true})
		if !d.Accept {
			t.Fatalf("setup call %d rejected: %+v", id, d)
		}
	}
	d := f.Admit(cac.Request{ID: 5, Speed: 60, Angle: 0, Bandwidth: 10, RealTime: true, Handoff: true})
	if !d.Accept {
		t.Fatalf("handoff into full elastic cell rejected: %+v", d)
	}
	if f.Degraded() == 0 {
		t.Error("no on-going call was degraded")
	}
	if a, ok := f.Allocation(5); !ok || a <= 0 {
		t.Errorf("handoff allocation %v (live=%v)", a, ok)
	}
}

// TestFuzzyHeadroomRelaxesPriorityStage is the point of the fuzzy variant:
// at the same raw occupancy, a cell whose load is elastic (reclaimable by
// degradation) must look more accommodating to the FLC2 priority stage
// than it does to plain FACS-P.
func TestFuzzyHeadroomRelaxesPriorityStage(t *testing.T) {
	f := newFuzzy(t)
	plain, err := core.NewFACSP(core.DefaultPConfig())
	if err != nil {
		t.Fatal(err)
	}

	// Load both controllers to 30/40 BU with elastic video traffic.
	for id := uint64(1); id <= 3; id++ {
		req := cac.Request{ID: id, Speed: 60, Angle: 0, Bandwidth: 10, RealTime: true}
		if d := f.Admit(req); !d.Accept {
			t.Fatalf("fuzzy setup call %d rejected: %+v", id, d)
		}
		if d := plain.Admit(req); !d.Accept {
			t.Fatalf("plain setup call %d rejected: %+v", id, d)
		}
	}

	// Probe with a real-time arrival over a grid of speeds/angles; the
	// headroom post-scale must never make the fuzzy variant stricter, and
	// must admit strictly more probes overall.
	fuzzyAccepts, plainAccepts := 0, 0
	id := uint64(100)
	for _, sp := range []float64{4, 30, 60, 100} {
		for _, an := range []float64{0, 30, 60, 120} {
			probe := cac.Request{ID: id, Speed: sp, Angle: an, Bandwidth: 5, RealTime: true}
			id++
			df := f.Admit(probe)
			dp := plain.Admit(probe)
			if df.Accept {
				fuzzyAccepts++
				if err := f.Release(probe); err != nil {
					t.Fatal(err)
				}
			}
			if dp.Accept {
				plainAccepts++
				if err := plain.Release(probe); err != nil {
					t.Fatal(err)
				}
			}
			if dp.Accept && !df.Accept {
				t.Errorf("probe speed=%v angle=%v: plain FACS-P admits but fuzzy-adapt rejects", sp, an)
			}
		}
	}
	if fuzzyAccepts <= plainAccepts {
		t.Errorf("fuzzy-adapt admitted %d probes, plain FACS-P %d: headroom had no effect",
			fuzzyAccepts, plainAccepts)
	}
}
