package adapt

import (
	"fmt"
	"math"
	"sync"
	"testing"

	"facsp/internal/cac"
)

// video/voice/text request helpers matching the default ladders.
func video(id uint64, handoff bool) cac.Request {
	return cac.Request{ID: id, Bandwidth: 10, RealTime: true, Handoff: handoff}
}

func voice(id uint64, handoff bool) cac.Request {
	return cac.Request{ID: id, Bandwidth: 5, RealTime: true, Handoff: handoff}
}

func text(id uint64, handoff bool) cac.Request {
	return cac.Request{ID: id, Bandwidth: 1, Handoff: handoff}
}

func newController(t *testing.T, capacity float64) *Controller {
	t.Helper()
	cfg := DefaultConfig()
	cfg.Capacity = capacity
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func mustAdmit(t *testing.T, c cac.Controller, req cac.Request) cac.Decision {
	t.Helper()
	d := c.Admit(req)
	if !d.Accept {
		t.Fatalf("request %d (%v BU, handoff=%v) rejected: %s", req.ID, req.Bandwidth, req.Handoff, d.Outcome)
	}
	return d
}

func wantAlloc(t *testing.T, c *Controller, id uint64, want float64) {
	t.Helper()
	got, ok := c.Allocation(id)
	if !ok {
		t.Fatalf("connection %d not live", id)
	}
	if got != want {
		t.Errorf("connection %d allocated %v BU, want %v", id, got, want)
	}
}

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{Capacity: 0},
		{Capacity: 40, DepthNew: -1},
		{Capacity: 40, Ladders: map[float64][]float64{10: {}}},
		{Capacity: 40, Ladders: map[float64][]float64{10: {9, 7}}},     // does not start at full rate
		{Capacity: 40, Ladders: map[float64][]float64{10: {10, 10}}},   // not strictly decreasing
		{Capacity: 40, Ladders: map[float64][]float64{10: {10, 7, 0}}}, // non-positive level
		{Capacity: math.NaN()},
		{Capacity: 40, Ladders: map[float64][]float64{10: {10, math.NaN()}}},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
	if err := DefaultConfig().Validate(); err != nil {
		t.Errorf("default config rejected: %v", err)
	}
}

func TestHandoffDegradesOngoingCalls(t *testing.T) {
	c := newController(t, 20)
	mustAdmit(t, c, video(1, false))
	mustAdmit(t, c, video(2, false))
	if got := c.Occupancy(); got != 20 {
		t.Fatalf("occupancy %v, want 20", got)
	}

	// A guard channel at full occupancy would drop this handoff; the
	// adaptive scheme squeezes the two on-going videos to 5 BU each.
	d := mustAdmit(t, c, video(3, true))
	if d.Allocated != 10 {
		t.Errorf("handoff allocated %v BU, want full 10", d.Allocated)
	}
	if d.Outcome != "degraded-others" {
		t.Errorf("outcome %q, want degraded-others", d.Outcome)
	}
	wantAlloc(t, c, 1, 5)
	wantAlloc(t, c, 2, 5)
	wantAlloc(t, c, 3, 10)
	if got := c.Occupancy(); got != 20 {
		t.Errorf("occupancy %v, want 20", got)
	}
	if got := c.Degraded(); got != 2 {
		t.Errorf("degraded count %d, want 2", got)
	}
}

func TestUpgradeOnReleaseMostDegradedFirst(t *testing.T) {
	c := newController(t, 20)
	mustAdmit(t, c, video(1, false))
	mustAdmit(t, c, video(2, false))
	mustAdmit(t, c, video(3, true)) // degrades 1 and 2 to 5 BU each

	if err := c.Release(video(3, true)); err != nil {
		t.Fatal(err)
	}
	wantAlloc(t, c, 1, 10)
	wantAlloc(t, c, 2, 10)
	if got := c.Degraded(); got != 0 {
		t.Errorf("degraded count %d after release, want 0", got)
	}
	if got := c.Occupancy(); got != 20 {
		t.Errorf("occupancy %v, want 20", got)
	}
}

func TestPartialUpgradeIsFair(t *testing.T) {
	// Only one upgrade step fits: it must go to the most-degraded call.
	cfg := DefaultConfig()
	cfg.Capacity = 15
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	mustAdmit(t, c, video(1, false)) // 10 BU
	mustAdmit(t, c, voice(2, false)) // 5 BU, cell full
	// Handoff video: needs 10; reclaimable depth-3 = (10-3)+(5-2) = 10.
	mustAdmit(t, c, video(3, true))
	a1, _ := c.Allocation(1)
	a2, _ := c.Allocation(2)
	if a1+a2 != 5 {
		t.Fatalf("victims hold %v+%v BU, want 5 total", a1, a2)
	}

	// Release the voice victim: its few BU must restore the most-degraded
	// remaining call first.
	if err := c.Release(voice(2, false)); err != nil {
		t.Fatal(err)
	}
	got, _ := c.Allocation(1)
	want, budget := a1, a2 // the freed BU must go into restoring call 1
	for _, lvl := range []float64{3, 5, 7, 10} {
		if lvl > want && lvl-want <= budget+1e-9 {
			budget -= lvl - want
			want = lvl
		}
	}
	if got != want {
		t.Errorf("victim 1 at %v BU after release, want %v", got, want)
	}
}

func TestNewCallNeverDegrades(t *testing.T) {
	c := newController(t, 20)
	mustAdmit(t, c, video(1, false))
	mustAdmit(t, c, video(2, false))

	d := c.Admit(text(3, false))
	if d.Accept {
		t.Fatalf("plain new call admitted into a full cell: %+v", d)
	}
	if d.Outcome != "capacity" {
		t.Errorf("outcome %q, want capacity", d.Outcome)
	}
	if got := c.Degraded(); got != 0 {
		t.Errorf("plain new call degraded %d on-going calls", got)
	}
}

func TestRealTimeNewCallDegradesOneStep(t *testing.T) {
	c := newController(t, 20)
	mustAdmit(t, c, video(1, false))
	mustAdmit(t, c, video(2, false))

	// DepthRTNew=1: one step per victim (10→7 twice frees 6 BU ≥ 5).
	d := mustAdmit(t, c, voice(3, false))
	if d.Allocated != 5 {
		t.Errorf("voice allocated %v, want 5", d.Allocated)
	}
	wantAlloc(t, c, 1, 7)
	wantAlloc(t, c, 2, 7)

	// A second RT call needs 5 more, but depth 1 is exhausted.
	if d := c.Admit(voice(4, false)); d.Accept {
		t.Errorf("second voice admitted beyond the depth budget: %+v", d)
	}
}

func TestReclaimableIgnoresDeeplyDegradedConns(t *testing.T) {
	// Connections already degraded deeper than an arrival's depth budget
	// must not subtract from the reclaimable estimate: only positive
	// per-connection headroom counts.
	c := newController(t, 40)
	nrtVideo := func(id uint64, handoff bool) cac.Request {
		return cac.Request{ID: id, Bandwidth: 10, Handoff: handoff}
	}
	for id := uint64(1); id <= 3; id++ {
		mustAdmit(t, c, nrtVideo(id, false))
	}
	// Real-time video handoffs degrade the non-RT residents to the ladder
	// bottom (3 BU, level 3 — past any depth-1 budget).
	for id := uint64(4); id <= 6; id++ {
		mustAdmit(t, c, video(id, true))
	}
	for id := uint64(1); id <= 3; id++ {
		wantAlloc(t, c, id, 3)
	}
	if got := c.reclaimableLocked(1); got != 9 {
		t.Fatalf("reclaimableLocked(1) = %v, want 9 (one step off each full-rate handoff)", got)
	}
	// A real-time video arrival (depth 1) fits by one-step squeezes of the
	// three full-rate handoffs; the bottomed-out residents are left alone.
	d := c.Admit(video(7, false))
	if !d.Accept {
		t.Fatalf("real-time arrival rejected (%s) although one-step squeezes fit it", d.Outcome)
	}
	for id := uint64(1); id <= 3; id++ {
		wantAlloc(t, c, id, 3)
	}
	for id := uint64(4); id <= 6; id++ {
		wantAlloc(t, c, id, 7)
	}
}

func TestHandoffDegradedEntry(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Capacity = 12
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	mustAdmit(t, c, video(1, false))

	// Free 2 + reclaimable 7 < 10: full-rate entry is impossible, but the
	// handoff can enter at 7 after degrading the resident video by 5.
	d := mustAdmit(t, c, video(2, true))
	if d.Allocated != 7 {
		t.Errorf("handoff allocated %v BU, want degraded entry at 7", d.Allocated)
	}
	if d.Outcome != "degraded-entry" {
		t.Errorf("outcome %q, want degraded-entry", d.Outcome)
	}
	wantAlloc(t, c, 1, 5)
}

func TestMinBandwidthClampsLadder(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Capacity = 13
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// An inelastic 7 BU tenant (no ladder for bandwidth 7).
	mustAdmit(t, c, cac.Request{ID: 1, Bandwidth: 7})

	// 6 BU free. A video handoff tolerating 5 BU fits at its floor...
	lenient := video(2, true)
	lenient.MinBandwidth = 5
	if d := mustAdmit(t, c, lenient); d.Allocated != 5 {
		t.Errorf("handoff allocated %v BU, want 5", d.Allocated)
	}
	if err := c.Release(lenient); err != nil {
		t.Fatal(err)
	}
	// ...but one that tolerates no less than 6 BU has no reachable level.
	strict := video(3, true)
	strict.MinBandwidth = 6
	if d := c.Admit(strict); d.Accept {
		t.Errorf("handoff with 6 BU floor admitted into 6 free BU: %+v", d)
	}
}

func TestDuplicateAndUnknownIDs(t *testing.T) {
	c := newController(t, 40)
	mustAdmit(t, c, voice(7, false))
	if d := c.Admit(voice(7, false)); d.Accept {
		t.Error("duplicate ID admitted")
	}
	if err := c.Release(voice(99, false)); err == nil {
		t.Error("release of unknown connection succeeded")
	}
	if d := c.Admit(cac.Request{ID: 8, Bandwidth: -1}); d.Accept {
		t.Error("invalid request admitted")
	}
}

func TestObserverSeesReallocations(t *testing.T) {
	c := newController(t, 20)
	type event struct {
		id    uint64
		alloc float64
	}
	var events []event
	c.SetBandwidthObserver(func(id uint64, allocBU float64) {
		events = append(events, event{id, allocBU})
	})
	mustAdmit(t, c, video(1, false))
	mustAdmit(t, c, video(2, false))
	mustAdmit(t, c, video(3, true)) // degrades 1 and 2
	if len(events) == 0 {
		t.Fatal("no degradation events observed")
	}
	degradeEvents := len(events)
	if err := c.Release(video(3, true)); err != nil {
		t.Fatal(err)
	}
	if len(events) == degradeEvents {
		t.Fatal("no upgrade events observed")
	}
	// The final event per connection must match its live allocation.
	final := map[uint64]float64{}
	for _, e := range events {
		final[e.id] = e.alloc
	}
	for id, want := range final {
		if got, ok := c.Allocation(id); !ok || got != want {
			t.Errorf("connection %d: observer saw %v BU, controller reports %v (live=%v)", id, want, got, ok)
		}
	}
}

func TestDeterministicVictimOrder(t *testing.T) {
	run := func() []float64 {
		c := newController(t, 40)
		for id := uint64(1); id <= 4; id++ {
			mustAdmit(t, c, video(id, false))
		}
		mustAdmit(t, c, video(5, true))
		out := make([]float64, 0, 5)
		for id := uint64(1); id <= 5; id++ {
			a, _ := c.Allocation(id)
			out = append(out, a)
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("allocation %d differs across identical runs: %v vs %v", i, a, b)
		}
	}
}

func TestConcurrentAdmitRelease(t *testing.T) {
	c := newController(t, 40)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				id := uint64(g*1000 + i)
				req := video(id, i%2 == 0)
				if d := c.Admit(req); d.Accept {
					if err := c.Release(req); err != nil {
						t.Errorf("release: %v", err)
					}
				}
			}
		}(g)
	}
	wg.Wait()
	if got := c.Occupancy(); got != 0 {
		t.Errorf("occupancy %v after all releases, want 0", got)
	}
}

func TestOccupancyMatchesAllocations(t *testing.T) {
	c := newController(t, 40)
	ids := []uint64{1, 2, 3, 4, 5, 6}
	for _, id := range ids {
		req := video(id, id%2 == 0)
		if id%3 == 0 {
			req = voice(id, id%2 == 0)
		}
		c.Admit(req)
	}
	sum := 0.0
	live := 0
	for _, id := range ids {
		if a, ok := c.Allocation(id); ok {
			sum += a
			live++
		}
	}
	if got := c.Occupancy(); got != sum {
		t.Errorf("occupancy %v, sum of %d allocations %v", got, live, sum)
	}
}

func ExampleController() {
	c, _ := New(DefaultConfig()) // 40 BU cell
	for id := uint64(1); id <= 4; id++ {
		c.Admit(cac.Request{ID: id, Bandwidth: 10, RealTime: true})
	}
	// The cell is full; a video handoff would be dropped by every
	// reservation scheme, but here the on-going calls are squeezed.
	d := c.Admit(cac.Request{ID: 5, Bandwidth: 10, RealTime: true, Handoff: true})
	fmt.Printf("handoff: accept=%v allocated=%v outcome=%s\n", d.Accept, d.Allocated, d.Outcome)
	fmt.Printf("degraded on-going calls: %d\n", c.Degraded())
	// Output:
	// handoff: accept=true allocated=10 outcome=degraded-others
	// degraded on-going calls: 4
}
