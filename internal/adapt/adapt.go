package adapt

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"facsp/internal/cac"
)

// eps absorbs float accumulation noise in capacity comparisons.
const eps = 1e-9

// Config parameterises an adaptive-bandwidth admission controller.
type Config struct {
	// Capacity is the base station's total bandwidth in BU (paper: 40).
	Capacity float64
	// Ladders maps a requested bandwidth (the class size, e.g. 10 BU for
	// video) to its degradation ladder: the bandwidth levels the class can
	// be served at, starting with the full rate and strictly decreasing.
	// A request whose bandwidth has no ladder — or whose ladder has a
	// single level — is inelastic and is never degraded.
	Ladders map[float64][]float64
	// DepthNew is the deepest ladder index on-going connections may be
	// pushed to in order to admit a plain (non-real-time, non-handoff) new
	// call. 0 means new calls are admitted only into free capacity.
	DepthNew int
	// DepthRTNew is the deepest ladder index on-going connections may be
	// pushed to in order to admit a real-time new call; real-time arrivals
	// are worth mildly squeezing elastic traffic for.
	DepthRTNew int
	// DepthHandoff is the deepest ladder index on-going connections may be
	// pushed to in order to admit a handoff — and the deepest level the
	// handoff itself may enter at when even degradation cannot fit its
	// full rate. Handoffs carry the priority of on-going connections, so
	// this is normally the full ladder.
	DepthHandoff int
}

// DefaultConfig returns the configuration used for the repository's
// experiments: the paper's 40 BU cell, degradation ladders for the video
// (10 → 7 → 5 → 3 BU) and voice (5 → 4 → 3 → 2 BU) classes, an inelastic
// text class, no degradation for plain new calls, one step for real-time
// new calls, and the full ladder for handoffs.
func DefaultConfig() Config {
	return Config{
		Capacity: 40,
		Ladders: map[float64][]float64{
			10: {10, 7, 5, 3},
			5:  {5, 4, 3, 2},
			1:  {1},
		},
		DepthNew:     0,
		DepthRTNew:   1,
		DepthHandoff: 3,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if !(c.Capacity > 0) { // also rejects NaN
		return fmt.Errorf("adapt: capacity %v must be positive", c.Capacity)
	}
	if c.DepthNew < 0 || c.DepthRTNew < 0 || c.DepthHandoff < 0 {
		return fmt.Errorf("adapt: degradation depths must be non-negative (new=%d, rt-new=%d, handoff=%d)",
			c.DepthNew, c.DepthRTNew, c.DepthHandoff)
	}
	for full, ladder := range c.Ladders {
		if len(ladder) == 0 {
			return fmt.Errorf("adapt: empty ladder for bandwidth %v", full)
		}
		if ladder[0] != full {
			return fmt.Errorf("adapt: ladder for bandwidth %v starts at %v, want the full rate", full, ladder[0])
		}
		for i, bu := range ladder {
			if !(bu > 0) { // also rejects NaN
				return fmt.Errorf("adapt: ladder for bandwidth %v has non-positive level %v", full, bu)
			}
			if i > 0 && !(bu < ladder[i-1]) {
				return fmt.Errorf("adapt: ladder for bandwidth %v is not strictly decreasing at level %d", full, i)
			}
		}
	}
	return nil
}

// conn is the controller's per-connection state.
type conn struct {
	id       uint64
	ladder   []float64 // effective levels, full rate first
	level    int       // current ladder index (0 = undegraded)
	realTime bool
}

func (cn *conn) alloc() float64 { return cn.ladder[cn.level] }

// maxLevel returns the deepest level this connection may be pushed to
// under the given depth budget.
func (cn *conn) maxLevel(depth int) int {
	if depth > len(cn.ladder)-1 {
		return len(cn.ladder) - 1
	}
	return depth
}

// Controller is the crisp adaptive-bandwidth admission scheme. It
// implements cac.Controller, cac.Named and cac.Adaptive, and is safe for
// concurrent use.
//
// The controller keys per-connection state on Request.ID, so every live
// connection at one cell must carry a distinct non-reused ID (the
// simulator and the facs-server daemon both guarantee this).
type Controller struct {
	cfg Config

	mu       sync.Mutex
	conns    map[uint64]*conn
	sorted   []*conn // conns in id order, maintained incrementally
	total    float64 // BU currently allocated
	observer cac.BandwidthObserver
}

var (
	_ cac.Controller = (*Controller)(nil)
	_ cac.Named      = (*Controller)(nil)
	_ cac.Adaptive   = (*Controller)(nil)
)

// New builds an adaptive-bandwidth controller.
func New(cfg Config) (*Controller, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	// Copy the ladders so later mutation of the caller's map cannot skew
	// live accounting.
	ladders := make(map[float64][]float64, len(cfg.Ladders))
	for full, ladder := range cfg.Ladders {
		ladders[full] = append([]float64(nil), ladder...)
	}
	cfg.Ladders = ladders
	return &Controller{cfg: cfg, conns: make(map[uint64]*conn)}, nil
}

// SchemeName implements cac.Named.
func (c *Controller) SchemeName() string { return "adapt" }

// Capacity implements cac.Controller.
func (c *Controller) Capacity() float64 { return c.cfg.Capacity }

// Occupancy implements cac.Controller: the BU currently allocated, after
// any degradations.
func (c *Controller) Occupancy() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.total
}

// SetBandwidthObserver implements cac.Adaptive.
func (c *Controller) SetBandwidthObserver(obs cac.BandwidthObserver) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.observer = obs
}

// Allocation returns the bandwidth currently granted to connection id,
// and whether the connection is live at this cell.
func (c *Controller) Allocation(id uint64) (float64, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	cn, ok := c.conns[id]
	if !ok {
		return 0, false
	}
	return cn.alloc(), true
}

// Degraded returns the number of live connections currently served below
// their full rate.
func (c *Controller) Degraded() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for _, cn := range c.conns {
		if cn.level > 0 {
			n++
		}
	}
	return n
}

// ladderFor returns the request's effective degradation ladder: the class
// ladder clamped at the request's MinBandwidth floor, or the single full
// rate for inelastic classes.
func (c *Controller) ladderFor(req cac.Request) []float64 {
	ladder, ok := c.cfg.Ladders[req.Bandwidth]
	if !ok {
		return []float64{req.Bandwidth}
	}
	if req.MinBandwidth <= 0 {
		return ladder
	}
	cut := len(ladder)
	for cut > 1 && ladder[cut-1] < req.MinBandwidth-eps {
		cut--
	}
	return ladder[:cut]
}

// depthFor returns the victim degradation depth budget for an arrival.
func (c *Controller) depthFor(req cac.Request) int {
	switch {
	case req.Handoff:
		return c.cfg.DepthHandoff
	case req.RealTime:
		return c.cfg.DepthRTNew
	default:
		return c.cfg.DepthNew
	}
}

// Admit implements cac.Controller. Handoffs may trigger degradation of
// on-going connections down to DepthHandoff — and may themselves enter at
// a degraded level — before being refused; new calls are held to the much
// shallower DepthNew/DepthRTNew budgets and always enter at full rate.
func (c *Controller) Admit(req cac.Request) cac.Decision {
	if err := req.Validate(); err != nil {
		return cac.Decision{Accept: false, Score: -1, Outcome: "error: " + err.Error(), Occupancy: c.Occupancy()}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.admitLocked(req)
}

func (c *Controller) admitLocked(req cac.Request) cac.Decision {
	if _, dup := c.conns[req.ID]; dup {
		return cac.Decision{Accept: false, Score: -1,
			Outcome:   fmt.Sprintf("error: adapt: connection %d already admitted", req.ID),
			Occupancy: c.total}
	}
	ladder := c.ladderFor(req)
	depth := c.depthFor(req)
	maxEntry := 0
	if req.Handoff {
		if maxEntry = depth; maxEntry > len(ladder)-1 {
			maxEntry = len(ladder) - 1
		}
	}

	for lvl := 0; lvl <= maxEntry; lvl++ {
		need := ladder[lvl] - (c.cfg.Capacity - c.total)
		degraded := false
		if need > eps {
			if c.reclaimableLocked(depth) < need-eps {
				continue
			}
			c.degradeLocked(need, depth)
			degraded = true
		}
		cn := &conn{id: req.ID, ladder: ladder, level: lvl, realTime: req.RealTime}
		c.conns[req.ID] = cn
		c.insertSorted(cn)
		c.total += cn.alloc()
		outcome := "fits"
		switch {
		case lvl > 0:
			outcome = "degraded-entry"
		case degraded:
			outcome = "degraded-others"
		}
		return cac.Decision{Accept: true, Score: 1, Outcome: outcome, Allocated: cn.alloc(), Occupancy: c.total}
	}
	return cac.Decision{Accept: false, Score: -1, Outcome: "capacity", Occupancy: c.total}
}

// Release implements cac.Controller: it frees the connection's current
// (possibly degraded) allocation and restores degraded connections,
// most-degraded-first, into the freed capacity.
func (c *Controller) Release(req cac.Request) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	cn, ok := c.conns[req.ID]
	if !ok {
		return fmt.Errorf("adapt: release of unknown connection %d", req.ID)
	}
	c.total -= cn.alloc()
	if c.total < 0 {
		c.total = 0
	}
	delete(c.conns, req.ID)
	c.removeSorted(req.ID)
	c.upgradeLocked()
	return nil
}

// insertSorted places cn into the id-ordered connection list. The list is
// maintained incrementally on membership changes — a binary-search insert
// into a capacity-retaining slice — so the deterministic walks over it
// never re-sort or re-allocate in steady state.
func (c *Controller) insertSorted(cn *conn) {
	i := sort.Search(len(c.sorted), func(i int) bool { return c.sorted[i].id >= cn.id })
	c.sorted = append(c.sorted, nil)
	copy(c.sorted[i+1:], c.sorted[i:])
	c.sorted[i] = cn
}

// removeSorted drops the connection with the given id from the id-ordered
// list.
func (c *Controller) removeSorted(id uint64) {
	i := sort.Search(len(c.sorted), func(i int) bool { return c.sorted[i].id >= id })
	if i >= len(c.sorted) || c.sorted[i].id != id {
		return
	}
	copy(c.sorted[i:], c.sorted[i+1:])
	c.sorted[len(c.sorted)-1] = nil
	c.sorted = c.sorted[:len(c.sorted)-1]
}

// sortedConns returns the live connections in deterministic (id) order.
func (c *Controller) sortedConns() []*conn {
	return c.sorted
}

// reclaimableLocked returns the bandwidth that degrading every on-going
// connection down to the given depth budget would free. Connections
// already degraded deeper than the budget contribute nothing (they are
// never upgraded to satisfy an arrival).
func (c *Controller) reclaimableLocked(depth int) float64 {
	if depth <= 0 {
		return 0
	}
	// Sorted-ID order keeps the float accumulation independent of map
	// iteration order, preserving bit-reproducible runs even for ladder
	// levels that are not exactly representable.
	sum := 0.0
	for _, cn := range c.sortedConns() {
		if d := cn.alloc() - cn.ladder[cn.maxLevel(depth)]; d > 0 {
			sum += d
		}
	}
	return sum
}

// degradeLocked frees at least need BU by degrading on-going connections
// one ladder step at a time. Victim order spreads the pain fairly:
// non-real-time before real-time, least-degraded first, then the step that
// frees the most, then lowest ID — a deterministic order, so runs are
// reproducible. Callers must have checked reclaimableLocked first.
func (c *Controller) degradeLocked(need float64, depth int) {
	conns := c.sortedConns()
	freed := 0.0
	for freed < need-eps {
		var best *conn
		bestStep := 0.0
		for _, cn := range conns {
			if cn.level >= cn.maxLevel(depth) {
				continue
			}
			step := cn.alloc() - cn.ladder[cn.level+1]
			if best == nil ||
				(!cn.realTime && best.realTime) ||
				(cn.realTime == best.realTime && cn.level < best.level) ||
				(cn.realTime == best.realTime && cn.level == best.level && step > bestStep) {
				best, bestStep = cn, step
			}
		}
		if best == nil {
			return // budget exhausted; callers pre-checked, so only float noise lands here
		}
		best.level++
		freed += bestStep
		c.total -= bestStep
		if c.observer != nil {
			c.observer(best.id, best.alloc())
		}
	}
}

// upgradeLocked restores degraded connections into free capacity, one
// ladder step at a time, most-degraded-first (ties: real-time first, then
// lowest ID), until no further step fits.
func (c *Controller) upgradeLocked() {
	conns := c.sortedConns()
	for {
		free := c.cfg.Capacity - c.total
		var best *conn
		bestStep := math.Inf(1)
		for _, cn := range conns {
			if cn.level == 0 {
				continue
			}
			step := cn.ladder[cn.level-1] - cn.alloc()
			if step > free+eps {
				continue
			}
			if best == nil ||
				cn.level > best.level ||
				(cn.level == best.level && cn.realTime && !best.realTime) {
				best, bestStep = cn, step
			}
		}
		if best == nil {
			return
		}
		best.level--
		c.total += bestStep
		if c.observer != nil {
			c.observer(best.id, best.alloc())
		}
	}
}
