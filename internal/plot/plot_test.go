package plot

import (
	"strings"
	"testing"

	"facsp/internal/stats"
)

func sampleSeries() []stats.Series {
	a := stats.Series{Name: "FACS"}
	b := stats.Series{Name: "SCC"}
	for x := 0.0; x <= 100; x += 10 {
		a.Add(x, 100-x*0.35)
		b.Add(x, 92-x*0.1)
	}
	return []stats.Series{a, b}
}

func TestRenderBasics(t *testing.T) {
	var sb strings.Builder
	c := Chart{Title: "Fig. 7", XLabel: "requests", YLabel: "% accepted"}
	if err := c.Render(&sb, sampleSeries()...); err != nil {
		t.Fatalf("Render: %v", err)
	}
	out := sb.String()
	for _, want := range []string{"Fig. 7", "FACS", "SCC", "requests", "% accepted", "*", "o", "+---"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// Title + 20 rows + axis + x labels + axis labels + 2 legend rows.
	if len(lines) < 24 {
		t.Errorf("output has %d lines, want >= 24", len(lines))
	}
}

func TestRenderCustomSize(t *testing.T) {
	var sb strings.Builder
	c := Chart{Width: 30, Height: 8}
	if err := c.Render(&sb, sampleSeries()...); err != nil {
		t.Fatalf("Render: %v", err)
	}
	lines := strings.Split(sb.String(), "\n")
	plotRows := 0
	for _, l := range lines {
		if strings.Contains(l, "|") {
			plotRows++
		}
	}
	if plotRows != 8 {
		t.Errorf("plot rows = %d, want 8", plotRows)
	}
}

func TestRenderFixedYRange(t *testing.T) {
	var sb strings.Builder
	c := Chart{YMin: 0, YMax: 100, Height: 10, Width: 40}
	s := stats.Series{Name: "s"}
	s.Add(0, 50)
	s.Add(10, 50)
	if err := c.Render(&sb, s); err != nil {
		t.Fatalf("Render: %v", err)
	}
	if !strings.Contains(sb.String(), "100.0") {
		t.Errorf("fixed y max not rendered:\n%s", sb.String())
	}
}

func TestRenderErrors(t *testing.T) {
	var sb strings.Builder
	if err := (Chart{}).Render(&sb); err == nil {
		t.Error("no series accepted")
	}
	if err := (Chart{}).Render(&sb, stats.Series{Name: "empty"}); err == nil {
		t.Error("empty series accepted")
	}
}

func TestRenderSinglePoint(t *testing.T) {
	var sb strings.Builder
	s := stats.Series{Name: "dot"}
	s.Add(5, 5)
	if err := (Chart{}).Render(&sb, s); err != nil {
		t.Fatalf("Render: %v", err)
	}
	if !strings.Contains(sb.String(), "*") {
		t.Error("marker missing")
	}
}

func TestWriteCSV(t *testing.T) {
	var sb strings.Builder
	a := stats.Series{Name: "curve \"x\""}
	a.Add(1, 2)
	a.Add(3, 4.5)
	if err := WriteCSV(&sb, a); err != nil {
		t.Fatalf("WriteCSV: %v", err)
	}
	got := sb.String()
	want := "series,x,y\n\"curve \"\"x\"\"\",1,2\n\"curve \"\"x\"\"\",3,4.5\n"
	if got != want {
		t.Errorf("CSV = %q, want %q", got, want)
	}
}

func TestMarkersCycle(t *testing.T) {
	var sb strings.Builder
	many := make([]stats.Series, 10)
	for i := range many {
		many[i].Name = "s"
		many[i].Add(float64(i), float64(i))
	}
	if err := (Chart{}).Render(&sb, many...); err != nil {
		t.Fatalf("Render: %v", err)
	}
}
