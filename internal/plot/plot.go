// Package plot renders experiment series as ASCII line charts for the
// terminal and as CSV for external tooling. It is deliberately small: the
// repository's figures are percentage-vs-load curves, and the charts only
// need to make the shapes (orderings, crossovers) visible in a terminal.
package plot

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"

	"facsp/internal/stats"
)

// markers are assigned to series in order.
var markers = []byte{'*', 'o', '+', 'x', '#', '@', '%', '&'}

// Chart configures an ASCII rendering.
type Chart struct {
	// Title is printed above the plot.
	Title string
	// Width and Height are the plot area size in characters (excluding
	// axes). Zero values default to 72x20.
	Width  int
	Height int
	// YMin and YMax fix the y range; if both are zero the range is
	// computed from the data and padded.
	YMin float64
	YMax float64
	// XLabel and YLabel annotate the axes.
	XLabel string
	YLabel string
}

// Render draws the series onto w.
func (c Chart) Render(w io.Writer, series ...stats.Series) error {
	width := c.Width
	if width <= 0 {
		width = 72
	}
	height := c.Height
	if height <= 0 {
		height = 20
	}
	if len(series) == 0 {
		return fmt.Errorf("plot: no series")
	}

	xMin, xMax := math.Inf(1), math.Inf(-1)
	yMin, yMax := c.YMin, c.YMax
	autoY := c.YMin == 0 && c.YMax == 0
	if autoY {
		yMin, yMax = math.Inf(1), math.Inf(-1)
	}
	points := 0
	for _, s := range series {
		for _, p := range s.Points {
			points++
			xMin = math.Min(xMin, p.X)
			xMax = math.Max(xMax, p.X)
			if autoY {
				yMin = math.Min(yMin, p.Y)
				yMax = math.Max(yMax, p.Y)
			}
		}
	}
	if points == 0 {
		return fmt.Errorf("plot: series contain no points")
	}
	if xMax == xMin {
		xMax = xMin + 1
	}
	if autoY {
		pad := (yMax - yMin) * 0.05
		if pad == 0 {
			pad = 1
		}
		yMin -= pad
		yMax += pad
	}
	if yMax == yMin {
		yMax = yMin + 1
	}

	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	for si, s := range series {
		marker := markers[si%len(markers)]
		// Draw line segments between consecutive points so crossovers are
		// visible even with sparse sampling.
		pts := append([]stats.Point(nil), s.Points...)
		sort.Slice(pts, func(i, j int) bool { return pts[i].X < pts[j].X })
		var prevCol, prevRow int
		for pi, p := range pts {
			col := int(math.Round((p.X - xMin) / (xMax - xMin) * float64(width-1)))
			row := height - 1 - int(math.Round((p.Y-yMin)/(yMax-yMin)*float64(height-1)))
			col = clampInt(col, 0, width-1)
			row = clampInt(row, 0, height-1)
			if pi > 0 {
				drawSegment(grid, prevCol, prevRow, col, row, '.')
			}
			grid[row][col] = marker
			prevCol, prevRow = col, row
		}
	}

	if c.Title != "" {
		if _, err := fmt.Fprintf(w, "%s\n", c.Title); err != nil {
			return err
		}
	}
	yLo := strconv.FormatFloat(yMin, 'f', 1, 64)
	yHi := strconv.FormatFloat(yMax, 'f', 1, 64)
	labelW := len(yHi)
	if len(yLo) > labelW {
		labelW = len(yLo)
	}
	for i, line := range grid {
		label := strings.Repeat(" ", labelW)
		switch i {
		case 0:
			label = fmt.Sprintf("%*s", labelW, yHi)
		case height - 1:
			label = fmt.Sprintf("%*s", labelW, yLo)
		}
		if _, err := fmt.Fprintf(w, "%s |%s\n", label, string(line)); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s +%s\n", strings.Repeat(" ", labelW), strings.Repeat("-", width)); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s  %-*g%*g\n", strings.Repeat(" ", labelW), width/2, xMin, width-width/2, xMax); err != nil {
		return err
	}
	if c.XLabel != "" || c.YLabel != "" {
		if _, err := fmt.Fprintf(w, "%s  x: %s   y: %s\n", strings.Repeat(" ", labelW), c.XLabel, c.YLabel); err != nil {
			return err
		}
	}
	for si, s := range series {
		if _, err := fmt.Fprintf(w, "%s  %c %s\n", strings.Repeat(" ", labelW), markers[si%len(markers)], s.Name); err != nil {
			return err
		}
	}
	return nil
}

func clampInt(v, lo, hi int) int {
	switch {
	case v < lo:
		return lo
	case v > hi:
		return hi
	default:
		return v
	}
}

// drawSegment draws a Bresenham-style line of filler characters between
// two grid cells, leaving existing markers intact.
func drawSegment(grid [][]byte, x0, y0, x1, y1 int, filler byte) {
	dx := absInt(x1 - x0)
	dy := -absInt(y1 - y0)
	sx := 1
	if x0 > x1 {
		sx = -1
	}
	sy := 1
	if y0 > y1 {
		sy = -1
	}
	err := dx + dy
	for {
		if grid[y0][x0] == ' ' {
			grid[y0][x0] = filler
		}
		if x0 == x1 && y0 == y1 {
			return
		}
		e2 := 2 * err
		if e2 >= dy {
			err += dy
			x0 += sx
		}
		if e2 <= dx {
			err += dx
			y0 += sy
		}
	}
}

func absInt(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// WriteCSV emits the series as tidy CSV: one row per point with columns
// series,x,y.
func WriteCSV(w io.Writer, series ...stats.Series) error {
	if _, err := fmt.Fprintln(w, "series,x,y"); err != nil {
		return err
	}
	for _, s := range series {
		name := `"` + strings.ReplaceAll(s.Name, `"`, `""`) + `"`
		for _, p := range s.Points {
			if _, err := fmt.Fprintf(w, "%s,%g,%g\n", name, p.X, p.Y); err != nil {
				return err
			}
		}
	}
	return nil
}
