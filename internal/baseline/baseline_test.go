package baseline

import (
	"testing"

	"facsp/internal/cac"
	"facsp/internal/rng"
)

func newCall(bw float64) cac.Request {
	return cac.Request{Speed: 30, Angle: 0, Bandwidth: bw}
}

func newHandoff(bw float64) cac.Request {
	r := newCall(bw)
	r.Handoff = true
	return r
}

func TestCompleteSharingFillsToCapacity(t *testing.T) {
	c, err := NewCompleteSharing(40)
	if err != nil {
		t.Fatal(err)
	}
	admitted := 0.0
	for i := 0; i < 20; i++ {
		if d := c.Admit(newCall(5)); d.Accept {
			admitted += 5
		}
	}
	if admitted != 40 {
		t.Errorf("admitted %v BU, want exactly 40", admitted)
	}
	if d := c.Admit(newCall(1)); d.Accept {
		t.Error("admitted beyond capacity")
	}
	if d := c.Admit(newHandoff(1)); d.Accept {
		t.Error("complete sharing has no handoff reservation; full is full")
	}
}

func TestCompleteSharingRelease(t *testing.T) {
	c, err := NewCompleteSharing(10)
	if err != nil {
		t.Fatal(err)
	}
	if d := c.Admit(newCall(10)); !d.Accept {
		t.Fatal("admit failed")
	}
	if err := c.Release(newCall(10)); err != nil {
		t.Fatal(err)
	}
	if got := c.Occupancy(); got != 0 {
		t.Errorf("occupancy = %v", got)
	}
	if err := c.Release(newCall(1)); err == nil {
		t.Error("underflow release accepted")
	}
}

func TestCompleteSharingValidation(t *testing.T) {
	if _, err := NewCompleteSharing(0); err == nil {
		t.Error("zero capacity accepted")
	}
	c, _ := NewCompleteSharing(10)
	if d := c.Admit(cac.Request{}); d.Accept {
		t.Error("invalid request accepted")
	}
	if got := c.SchemeName(); got != "complete-sharing" {
		t.Errorf("SchemeName = %q", got)
	}
	if got := c.Capacity(); got != 10 {
		t.Errorf("Capacity = %v", got)
	}
}

func TestGuardChannelReservesForHandoffs(t *testing.T) {
	g, err := NewGuardChannel(40, 10)
	if err != nil {
		t.Fatal(err)
	}
	// New calls stop at 30 BU.
	admitted := 0.0
	for i := 0; i < 20; i++ {
		if d := g.Admit(newCall(5)); d.Accept {
			admitted += 5
		}
	}
	if admitted != 30 {
		t.Fatalf("new calls admitted %v BU, want 30", admitted)
	}
	d := g.Admit(newCall(5))
	if d.Accept {
		t.Fatal("new call admitted inside the guard band")
	}
	if d.Outcome != "guard-channel" {
		t.Errorf("outcome = %q, want guard-channel", d.Outcome)
	}
	// Handoffs may use the guard band up to physical capacity.
	if d := g.Admit(newHandoff(5)); !d.Accept {
		t.Error("handoff denied the guard band")
	}
	if d := g.Admit(newHandoff(5)); !d.Accept {
		t.Error("handoff denied the last guard BU")
	}
	if d := g.Admit(newHandoff(1)); d.Accept {
		t.Error("handoff admitted beyond physical capacity")
	}
}

func TestGuardChannelZeroGuardIsCompleteSharing(t *testing.T) {
	g, err := NewGuardChannel(20, 0)
	if err != nil {
		t.Fatal(err)
	}
	admitted := 0.0
	for i := 0; i < 10; i++ {
		if d := g.Admit(newCall(5)); d.Accept {
			admitted += 5
		}
	}
	if admitted != 20 {
		t.Errorf("admitted %v, want 20", admitted)
	}
}

func TestGuardChannelValidation(t *testing.T) {
	if _, err := NewGuardChannel(0, 0); err == nil {
		t.Error("zero capacity accepted")
	}
	if _, err := NewGuardChannel(10, 10); err == nil {
		t.Error("guard == capacity accepted")
	}
	if _, err := NewGuardChannel(10, -1); err == nil {
		t.Error("negative guard accepted")
	}
	g, _ := NewGuardChannel(10, 2)
	if got := g.SchemeName(); got != "guard-channel" {
		t.Errorf("SchemeName = %q", got)
	}
}

func TestGuardChannelRelease(t *testing.T) {
	g, err := NewGuardChannel(10, 2)
	if err != nil {
		t.Fatal(err)
	}
	if d := g.Admit(newCall(5)); !d.Accept {
		t.Fatal("admit failed")
	}
	if err := g.Release(newCall(5)); err != nil {
		t.Fatal(err)
	}
	if err := g.Release(newCall(5)); err == nil {
		t.Error("underflow release accepted")
	}
}

func TestFractionalGuardBelowThresholdAlwaysAdmits(t *testing.T) {
	f, err := NewFractionalGuard(40, 20, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if d := f.Admit(newCall(5)); !d.Accept {
			t.Fatalf("call %d below threshold rejected", i)
		}
	}
}

func TestFractionalGuardDecaysAboveThreshold(t *testing.T) {
	// At occupancy 30 of 40 with threshold 20, new-call admission
	// probability is 1 - 10/20 = 0.5.
	const trials = 20000
	hits := 0
	for i := 0; i < trials; i++ {
		f, err := NewFractionalGuard(40, 20, rng.New(uint64(i)))
		if err != nil {
			t.Fatal(err)
		}
		for j := 0; j < 6; j++ { // 30 BU via handoffs (always admitted)
			if d := f.Admit(newHandoff(5)); !d.Accept {
				t.Fatal("handoff fill failed")
			}
		}
		if d := f.Admit(newCall(5)); d.Accept {
			hits++
		}
	}
	rate := float64(hits) / trials
	if rate < 0.46 || rate > 0.54 {
		t.Errorf("admission rate at half-decay = %v, want ~0.5", rate)
	}
}

func TestFractionalGuardHandoffsAlwaysFit(t *testing.T) {
	f, err := NewFractionalGuard(40, 0, rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if d := f.Admit(newHandoff(5)); !d.Accept {
			t.Fatalf("handoff %d rejected below capacity", i)
		}
	}
	if d := f.Admit(newHandoff(1)); d.Accept {
		t.Error("handoff admitted beyond capacity")
	}
}

func TestFractionalGuardValidation(t *testing.T) {
	if _, err := NewFractionalGuard(0, 0, rng.New(1)); err == nil {
		t.Error("zero capacity accepted")
	}
	if _, err := NewFractionalGuard(10, 11, rng.New(1)); err == nil {
		t.Error("threshold above capacity accepted")
	}
	if _, err := NewFractionalGuard(10, 5, nil); err == nil {
		t.Error("nil source accepted")
	}
	f, _ := NewFractionalGuard(10, 5, rng.New(1))
	if got := f.SchemeName(); got != "fractional-guard" {
		t.Errorf("SchemeName = %q", got)
	}
	if err := f.Release(newCall(1)); err == nil {
		t.Error("underflow release accepted")
	}
}
