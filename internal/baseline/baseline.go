// Package baseline implements the classic call-admission-control schemes
// the CAC literature measures against: complete sharing, the guard-channel
// (cutoff priority) scheme, and the fractional guard channel. They serve
// as ablation points for the paper's fuzzy controllers — every scheme
// implements cac.Controller, so the simulator and benchmarks can swap them
// in for FACS/FACS-P directly.
package baseline

import (
	"fmt"
	"sync"

	"facsp/internal/cac"
	"facsp/internal/rng"
)

// CompleteSharing admits any request that physically fits: no reservation,
// no prioritisation. It is the upper bound on acceptance and the lower
// bound on handoff protection.
type CompleteSharing struct {
	capacity float64

	mu   sync.Mutex
	used float64
}

var (
	_ cac.Controller = (*CompleteSharing)(nil)
	_ cac.Named      = (*CompleteSharing)(nil)
)

// NewCompleteSharing builds the scheme with the given capacity in BU.
func NewCompleteSharing(capacity float64) (*CompleteSharing, error) {
	if capacity <= 0 {
		return nil, fmt.Errorf("baseline: capacity %v must be positive", capacity)
	}
	return &CompleteSharing{capacity: capacity}, nil
}

// SchemeName implements cac.Named.
func (c *CompleteSharing) SchemeName() string { return "complete-sharing" }

// Capacity implements cac.Controller.
func (c *CompleteSharing) Capacity() float64 { return c.capacity }

// Occupancy implements cac.Controller.
func (c *CompleteSharing) Occupancy() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.used
}

// Admit implements cac.Controller.
func (c *CompleteSharing) Admit(req cac.Request) cac.Decision {
	if err := req.Validate(); err != nil {
		return cac.Decision{Accept: false, Score: -1, Outcome: "error: " + err.Error(), Occupancy: c.Occupancy()}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.used+req.Bandwidth > c.capacity {
		return cac.Decision{Accept: false, Score: -1, Outcome: "capacity", Occupancy: c.used}
	}
	c.used += req.Bandwidth
	return cac.Decision{Accept: true, Score: 1, Outcome: "fits", Occupancy: c.used}
}

// Release implements cac.Controller.
func (c *CompleteSharing) Release(req cac.Request) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if req.Bandwidth > c.used+1e-9 {
		return fmt.Errorf("baseline: release of %v BU exceeds occupancy %v", req.Bandwidth, c.used)
	}
	c.used -= req.Bandwidth
	if c.used < 0 {
		c.used = 0
	}
	return nil
}

// GuardChannel is the cutoff-priority scheme: the last Guard bandwidth
// units are reserved for handoffs; new calls are admitted only while
// occupancy stays below Capacity-Guard.
type GuardChannel struct {
	capacity float64
	guard    float64

	mu   sync.Mutex
	used float64
}

var (
	_ cac.Controller = (*GuardChannel)(nil)
	_ cac.Named      = (*GuardChannel)(nil)
)

// NewGuardChannel builds the scheme; guard must lie in [0, capacity).
func NewGuardChannel(capacity, guard float64) (*GuardChannel, error) {
	if capacity <= 0 {
		return nil, fmt.Errorf("baseline: capacity %v must be positive", capacity)
	}
	if guard < 0 || guard >= capacity {
		return nil, fmt.Errorf("baseline: guard %v outside [0, capacity %v)", guard, capacity)
	}
	return &GuardChannel{capacity: capacity, guard: guard}, nil
}

// SchemeName implements cac.Named.
func (g *GuardChannel) SchemeName() string { return "guard-channel" }

// Capacity implements cac.Controller.
func (g *GuardChannel) Capacity() float64 { return g.capacity }

// Occupancy implements cac.Controller.
func (g *GuardChannel) Occupancy() float64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.used
}

// Admit implements cac.Controller.
func (g *GuardChannel) Admit(req cac.Request) cac.Decision {
	if err := req.Validate(); err != nil {
		return cac.Decision{Accept: false, Score: -1, Outcome: "error: " + err.Error(), Occupancy: g.Occupancy()}
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	limit := g.capacity
	if !req.Handoff {
		limit = g.capacity - g.guard
	}
	if g.used+req.Bandwidth > limit {
		outcome := "capacity"
		if !req.Handoff && g.used+req.Bandwidth <= g.capacity {
			outcome = "guard-channel"
		}
		return cac.Decision{Accept: false, Score: -1, Outcome: outcome, Occupancy: g.used}
	}
	g.used += req.Bandwidth
	return cac.Decision{Accept: true, Score: 1, Outcome: "fits", Occupancy: g.used}
}

// Release implements cac.Controller.
func (g *GuardChannel) Release(req cac.Request) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	if req.Bandwidth > g.used+1e-9 {
		return fmt.Errorf("baseline: release of %v BU exceeds occupancy %v", req.Bandwidth, g.used)
	}
	g.used -= req.Bandwidth
	if g.used < 0 {
		g.used = 0
	}
	return nil
}

// FractionalGuard is the fractional guard channel (Ramjee et al.): above
// the guard threshold, new calls are admitted with a probability that
// decays linearly to zero at full occupancy, softening the cutoff.
type FractionalGuard struct {
	capacity  float64
	threshold float64
	src       *rng.Source

	mu   sync.Mutex
	used float64
}

var (
	_ cac.Controller = (*FractionalGuard)(nil)
	_ cac.Named      = (*FractionalGuard)(nil)
)

// NewFractionalGuard builds the scheme. threshold is the occupancy (BU) at
// which new-call admission starts to decay; src drives the admission coin
// flips and must not be nil.
func NewFractionalGuard(capacity, threshold float64, src *rng.Source) (*FractionalGuard, error) {
	if capacity <= 0 {
		return nil, fmt.Errorf("baseline: capacity %v must be positive", capacity)
	}
	if threshold < 0 || threshold > capacity {
		return nil, fmt.Errorf("baseline: threshold %v outside [0, capacity %v]", threshold, capacity)
	}
	if src == nil {
		return nil, fmt.Errorf("baseline: nil random source")
	}
	return &FractionalGuard{capacity: capacity, threshold: threshold, src: src}, nil
}

// SchemeName implements cac.Named.
func (f *FractionalGuard) SchemeName() string { return "fractional-guard" }

// Capacity implements cac.Controller.
func (f *FractionalGuard) Capacity() float64 { return f.capacity }

// Occupancy implements cac.Controller.
func (f *FractionalGuard) Occupancy() float64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.used
}

// Admit implements cac.Controller.
func (f *FractionalGuard) Admit(req cac.Request) cac.Decision {
	if err := req.Validate(); err != nil {
		return cac.Decision{Accept: false, Score: -1, Outcome: "error: " + err.Error(), Occupancy: f.Occupancy()}
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.used+req.Bandwidth > f.capacity {
		return cac.Decision{Accept: false, Score: -1, Outcome: "capacity", Occupancy: f.used}
	}
	if !req.Handoff && f.used > f.threshold {
		// Admission probability decays linearly from 1 at the threshold
		// to 0 at full occupancy.
		p := 1 - (f.used-f.threshold)/(f.capacity-f.threshold)
		if !f.src.Bool(p) {
			return cac.Decision{Accept: false, Score: -1, Outcome: "fractional-guard", Occupancy: f.used}
		}
	}
	f.used += req.Bandwidth
	return cac.Decision{Accept: true, Score: 1, Outcome: "fits", Occupancy: f.used}
}

// Release implements cac.Controller.
func (f *FractionalGuard) Release(req cac.Request) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if req.Bandwidth > f.used+1e-9 {
		return fmt.Errorf("baseline: release of %v BU exceeds occupancy %v", req.Bandwidth, f.used)
	}
	f.used -= req.Bandwidth
	if f.used < 0 {
		f.used = 0
	}
	return nil
}
