// Package baseline implements the classic call-admission-control schemes
// the CAC literature measures against: complete sharing, the guard-channel
// (cutoff priority) scheme, and the fractional guard channel. They serve
// as ablation points for the paper's fuzzy controllers — every scheme
// implements cac.Controller, so the simulator and benchmarks can swap them
// in for FACS/FACS-P directly. Occupancy accounting is delegated to the
// shared internal/ledger, the same account the value-iteration threshold
// policy (internal/optimal) runs on.
package baseline

import (
	"fmt"

	"facsp/internal/cac"
	"facsp/internal/ledger"
	"facsp/internal/rng"
)

// CompleteSharing admits any request that physically fits: no reservation,
// no prioritisation. It is the upper bound on acceptance and the lower
// bound on handoff protection.
type CompleteSharing struct {
	led *ledger.Ledger
}

var (
	_ cac.Controller = (*CompleteSharing)(nil)
	_ cac.Named      = (*CompleteSharing)(nil)
)

// NewCompleteSharing builds the scheme with the given capacity in BU.
func NewCompleteSharing(capacity float64) (*CompleteSharing, error) {
	led, err := ledger.New(capacity)
	if err != nil {
		return nil, fmt.Errorf("baseline: %w", err)
	}
	return &CompleteSharing{led: led}, nil
}

// SchemeName implements cac.Named.
func (c *CompleteSharing) SchemeName() string { return "complete-sharing" }

// Capacity implements cac.Controller.
func (c *CompleteSharing) Capacity() float64 { return c.led.Capacity() }

// Occupancy implements cac.Controller.
func (c *CompleteSharing) Occupancy() float64 { return c.led.Used() }

// Admit implements cac.Controller.
func (c *CompleteSharing) Admit(req cac.Request) cac.Decision {
	if err := req.Validate(); err != nil {
		return cac.Decision{Accept: false, Score: -1, Outcome: "error: " + err.Error(), Occupancy: c.led.Used()}
	}
	used, ok := c.led.Reserve(req.Bandwidth, c.led.Capacity())
	if !ok {
		return cac.Decision{Accept: false, Score: -1, Outcome: "capacity", Occupancy: used}
	}
	return cac.Decision{Accept: true, Score: 1, Outcome: "fits", Occupancy: used}
}

// Release implements cac.Controller.
func (c *CompleteSharing) Release(req cac.Request) error {
	return c.led.Release(req.Bandwidth)
}

// GuardChannel is the cutoff-priority scheme: the last Guard bandwidth
// units are reserved for handoffs; new calls are admitted only while
// occupancy stays below Capacity-Guard.
type GuardChannel struct {
	led   *ledger.Ledger
	guard float64
}

var (
	_ cac.Controller = (*GuardChannel)(nil)
	_ cac.Named      = (*GuardChannel)(nil)
)

// NewGuardChannel builds the scheme; guard must lie in [0, capacity).
func NewGuardChannel(capacity, guard float64) (*GuardChannel, error) {
	led, err := ledger.New(capacity)
	if err != nil {
		return nil, fmt.Errorf("baseline: %w", err)
	}
	if guard < 0 || guard >= capacity {
		return nil, fmt.Errorf("baseline: guard %v outside [0, capacity %v)", guard, capacity)
	}
	return &GuardChannel{led: led, guard: guard}, nil
}

// SchemeName implements cac.Named.
func (g *GuardChannel) SchemeName() string { return "guard-channel" }

// Capacity implements cac.Controller.
func (g *GuardChannel) Capacity() float64 { return g.led.Capacity() }

// Occupancy implements cac.Controller.
func (g *GuardChannel) Occupancy() float64 { return g.led.Used() }

// Admit implements cac.Controller.
func (g *GuardChannel) Admit(req cac.Request) cac.Decision {
	if err := req.Validate(); err != nil {
		return cac.Decision{Accept: false, Score: -1, Outcome: "error: " + err.Error(), Occupancy: g.led.Used()}
	}
	limit := g.led.Capacity()
	if !req.Handoff {
		limit -= g.guard
	}
	used, ok := g.led.Reserve(req.Bandwidth, limit)
	if !ok {
		outcome := "capacity"
		if !req.Handoff && used+req.Bandwidth <= g.led.Capacity() {
			outcome = "guard-channel"
		}
		return cac.Decision{Accept: false, Score: -1, Outcome: outcome, Occupancy: used}
	}
	return cac.Decision{Accept: true, Score: 1, Outcome: "fits", Occupancy: used}
}

// Release implements cac.Controller.
func (g *GuardChannel) Release(req cac.Request) error {
	return g.led.Release(req.Bandwidth)
}

// FractionalGuard is the fractional guard channel (Ramjee et al.): above
// the guard threshold, new calls are admitted with a probability that
// decays linearly to zero at full occupancy, softening the cutoff.
type FractionalGuard struct {
	led       *ledger.Ledger
	threshold float64
	src       *rng.Source
}

var (
	_ cac.Controller = (*FractionalGuard)(nil)
	_ cac.Named      = (*FractionalGuard)(nil)
)

// NewFractionalGuard builds the scheme. threshold is the occupancy (BU) at
// which new-call admission starts to decay; src drives the admission coin
// flips and must not be nil.
func NewFractionalGuard(capacity, threshold float64, src *rng.Source) (*FractionalGuard, error) {
	led, err := ledger.New(capacity)
	if err != nil {
		return nil, fmt.Errorf("baseline: %w", err)
	}
	if threshold < 0 || threshold > capacity {
		return nil, fmt.Errorf("baseline: threshold %v outside [0, capacity %v]", threshold, capacity)
	}
	if src == nil {
		return nil, fmt.Errorf("baseline: nil random source")
	}
	return &FractionalGuard{led: led, threshold: threshold, src: src}, nil
}

// SchemeName implements cac.Named.
func (f *FractionalGuard) SchemeName() string { return "fractional-guard" }

// Capacity implements cac.Controller.
func (f *FractionalGuard) Capacity() float64 { return f.led.Capacity() }

// Occupancy implements cac.Controller.
func (f *FractionalGuard) Occupancy() float64 { return f.led.Used() }

// Admit implements cac.Controller.
func (f *FractionalGuard) Admit(req cac.Request) cac.Decision {
	if err := req.Validate(); err != nil {
		return cac.Decision{Accept: false, Score: -1, Outcome: "error: " + err.Error(), Occupancy: f.led.Used()}
	}
	capacity := f.led.Capacity()
	outcome := "capacity"
	used, ok := f.led.ReserveIf(req.Bandwidth, func(used float64) bool {
		if used+req.Bandwidth > capacity {
			return false
		}
		if !req.Handoff && used > f.threshold {
			// Admission probability decays linearly from 1 at the threshold
			// to 0 at full occupancy.
			p := 1 - (used-f.threshold)/(capacity-f.threshold)
			if !f.src.Bool(p) {
				outcome = "fractional-guard"
				return false
			}
		}
		return true
	})
	if !ok {
		return cac.Decision{Accept: false, Score: -1, Outcome: outcome, Occupancy: used}
	}
	return cac.Decision{Accept: true, Score: 1, Outcome: "fits", Occupancy: used}
}

// Release implements cac.Controller.
func (f *FractionalGuard) Release(req cac.Request) error {
	return f.led.Release(req.Bandwidth)
}
