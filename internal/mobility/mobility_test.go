package mobility

import (
	"math"
	"testing"
	"testing/quick"

	"facsp/internal/hexgrid"
	"facsp/internal/rng"
)

func TestStateSpeedMS(t *testing.T) {
	tests := []struct{ kmh, ms float64 }{
		{kmh: 0, ms: 0},
		{kmh: 3.6, ms: 1},
		{kmh: 36, ms: 10},
		{kmh: 120, ms: 120.0 / 3.6},
	}
	for _, tt := range tests {
		s := State{SpeedKmh: tt.kmh}
		if got := s.SpeedMS(); math.Abs(got-tt.ms) > 1e-12 {
			t.Errorf("SpeedMS(%v km/h) = %v, want %v", tt.kmh, got, tt.ms)
		}
	}
}

func TestConstantVelocityStraightLine(t *testing.T) {
	m := ConstantVelocity{}.NewMover(State{SpeedKmh: 36, HeadingDeg: 0}, rng.New(1))
	m.Advance(10) // 10 m/s * 10 s = 100 m east
	s := m.State()
	if math.Abs(s.X-100) > 1e-9 || math.Abs(s.Y) > 1e-9 {
		t.Errorf("position = (%v, %v), want (100, 0)", s.X, s.Y)
	}
	if s.HeadingDeg != 0 {
		t.Errorf("heading changed to %v", s.HeadingDeg)
	}
}

func TestConstantVelocityHeading(t *testing.T) {
	tests := []struct {
		heading float64
		wantX   float64
		wantY   float64
	}{
		{heading: 0, wantX: 10, wantY: 0},
		{heading: 90, wantX: 0, wantY: 10},
		{heading: 180, wantX: -10, wantY: 0},
		{heading: -90, wantX: 0, wantY: -10},
		{heading: 45, wantX: 10 / math.Sqrt2, wantY: 10 / math.Sqrt2},
	}
	for _, tt := range tests {
		m := ConstantVelocity{}.NewMover(State{SpeedKmh: 36, HeadingDeg: tt.heading}, rng.New(1))
		m.Advance(1)
		s := m.State()
		if math.Abs(s.X-tt.wantX) > 1e-9 || math.Abs(s.Y-tt.wantY) > 1e-9 {
			t.Errorf("heading %v: position (%v, %v), want (%v, %v)", tt.heading, s.X, s.Y, tt.wantX, tt.wantY)
		}
	}
}

func TestSmoothTurnSpeedDependence(t *testing.T) {
	// The paper's Fig. 8 mechanism: over the same interval, slow users
	// deviate from their initial heading far more than fast users.
	model := DefaultSmoothTurn()
	deviation := func(speed float64) float64 {
		const trials = 200
		sum := 0.0
		src := rng.New(99)
		for i := 0; i < trials; i++ {
			m := model.NewMover(State{SpeedKmh: speed}, src)
			m.Advance(60)
			d := hexgrid.NormalizeAngle(m.State().HeadingDeg)
			sum += math.Abs(d)
		}
		return sum / trials
	}
	slow := deviation(4)
	fast := deviation(60)
	if fast >= slow {
		t.Errorf("mean |heading drift| at 60 km/h (%v) not below 4 km/h (%v)", fast, slow)
	}
	if slow < 20 {
		t.Errorf("pedestrian drift %v deg over 60s seems too straight", slow)
	}
}

func TestSmoothTurnPreservesSpeed(t *testing.T) {
	m := DefaultSmoothTurn().NewMover(State{SpeedKmh: 50, HeadingDeg: 30}, rng.New(3))
	m.Advance(120)
	if got := m.State().SpeedKmh; got != 50 {
		t.Errorf("speed changed to %v", got)
	}
}

func TestSmoothTurnDistanceBounded(t *testing.T) {
	// Path length is speed*time regardless of turning, so displacement
	// must never exceed it.
	m := DefaultSmoothTurn().NewMover(State{SpeedKmh: 36}, rng.New(4))
	m.Advance(100) // max displacement 10 m/s * 100 s = 1000 m
	s := m.State()
	if d := math.Hypot(s.X, s.Y); d > 1000+1e-6 {
		t.Errorf("displacement %v exceeds path length 1000", d)
	}
}

func TestSmoothTurnZeroDt(t *testing.T) {
	m := DefaultSmoothTurn().NewMover(State{SpeedKmh: 36, HeadingDeg: 10}, rng.New(5))
	before := m.State()
	m.Advance(0)
	if m.State() != before {
		t.Error("Advance(0) changed state")
	}
}

func TestSmoothTurnDeterministicPerSeed(t *testing.T) {
	mk := func() State {
		m := DefaultSmoothTurn().NewMover(State{SpeedKmh: 20}, rng.New(77))
		m.Advance(30)
		return m.State()
	}
	if mk() != mk() {
		t.Error("same seed produced different trajectories")
	}
}

func TestSmoothTurnPanicsOnBadConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("invalid SmoothTurn accepted")
		}
	}()
	SmoothTurn{TurnRate: -1, BaseSigmaDeg: 10, SpeedScaleKmh: 10}.NewMover(State{}, rng.New(1))
}

func TestNegativeDtPanics(t *testing.T) {
	movers := []Mover{
		ConstantVelocity{}.NewMover(State{}, rng.New(1)),
		DefaultSmoothTurn().NewMover(State{}, rng.New(1)),
		GaussMarkov{Alpha: 0.8, MeanSpeedKmh: 30, SpeedSigmaKmh: 5, HeadingSigmaDeg: 20}.NewMover(State{}, rng.New(1)),
		RandomWaypoint{FieldRadius: 100}.NewMover(State{SpeedKmh: 10}, rng.New(1)),
	}
	for i, m := range movers {
		m := m
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("mover %d: negative dt did not panic", i)
				}
			}()
			m.Advance(-1)
		}()
	}
}

func TestGaussMarkovPullsTowardMeanSpeed(t *testing.T) {
	model := GaussMarkov{Alpha: 0.7, MeanSpeedKmh: 50, SpeedSigmaKmh: 3, HeadingSigmaDeg: 5}
	m := model.NewMover(State{SpeedKmh: 0}, rng.New(6))
	m.Advance(300)
	got := m.State().SpeedKmh
	if math.Abs(got-50) > 25 {
		t.Errorf("speed after long run = %v, want near mean 50", got)
	}
}

func TestGaussMarkovAlphaOneIsConstant(t *testing.T) {
	model := GaussMarkov{Alpha: 1, MeanSpeedKmh: 99, SpeedSigmaKmh: 50, HeadingSigmaDeg: 180}
	m := model.NewMover(State{SpeedKmh: 30, HeadingDeg: 42}, rng.New(7))
	m.Advance(60)
	s := m.State()
	if s.SpeedKmh != 30 || s.HeadingDeg != 42 {
		t.Errorf("alpha=1 mover changed kinematics: %+v", s)
	}
}

func TestGaussMarkovSpeedNeverNegative(t *testing.T) {
	model := GaussMarkov{Alpha: 0.2, MeanSpeedKmh: 1, SpeedSigmaKmh: 30, HeadingSigmaDeg: 5}
	m := model.NewMover(State{}, rng.New(8))
	for i := 0; i < 200; i++ {
		m.Advance(1)
		if got := m.State().SpeedKmh; got < 0 {
			t.Fatalf("negative speed %v", got)
		}
	}
}

func TestGaussMarkovPanicsOnBadAlpha(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("alpha > 1 accepted")
		}
	}()
	GaussMarkov{Alpha: 1.5}.NewMover(State{}, rng.New(1))
}

func TestRandomWaypointStaysInField(t *testing.T) {
	model := RandomWaypoint{FieldRadius: 500}
	m := model.NewMover(State{SpeedKmh: 30}, rng.New(9))
	for i := 0; i < 500; i++ {
		m.Advance(5)
		s := m.State()
		if d := math.Hypot(s.X, s.Y); d > 500+1e-6 {
			t.Fatalf("mobile left the field: %v m from origin", d)
		}
	}
}

func TestRandomWaypointParkedMobile(t *testing.T) {
	model := RandomWaypoint{FieldRadius: 100}
	m := model.NewMover(State{SpeedKmh: 0}, rng.New(10))
	m.Advance(100)
	s := m.State()
	if s.X != 0 || s.Y != 0 {
		t.Errorf("parked mobile moved to (%v, %v)", s.X, s.Y)
	}
}

func TestRandomWaypointPauses(t *testing.T) {
	// With a huge pause mean the mobile should spend most time paused, so
	// total displacement over a modest horizon is small.
	model := RandomWaypoint{FieldRadius: 10, PauseMeanSeconds: 1e6}
	m := model.NewMover(State{SpeedKmh: 100}, rng.New(11))
	m.Advance(1000)
	// It reaches the first waypoint (<= 10 m away... radius 10 field) and
	// then pauses ~forever.
	s := m.State()
	if d := math.Hypot(s.X, s.Y); d > 10+1e-6 {
		t.Errorf("mobile travelled %v m despite pausing", d)
	}
}

func TestRandomWaypointPanicsOnBadRadius(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero radius accepted")
		}
	}()
	RandomWaypoint{}.NewMover(State{}, rng.New(1))
}

// Property: every model conserves path length (displacement <= speed*dt)
// for constant-speed models.
func TestQuickDisplacementBounded(t *testing.T) {
	f := func(seed uint64, speedRaw, dtRaw uint16) bool {
		speed := float64(speedRaw%120) + 1
		dt := float64(dtRaw%300) + 1
		src := rng.New(seed)
		for _, model := range []Model{ConstantVelocity{}, DefaultSmoothTurn()} {
			m := model.NewMover(State{SpeedKmh: speed}, src)
			m.Advance(dt)
			s := m.State()
			if math.Hypot(s.X, s.Y) > speed/3.6*dt+1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: heading stays normalized in (-180, 180] for SmoothTurn.
func TestQuickHeadingNormalized(t *testing.T) {
	f := func(seed uint64, h int16) bool {
		init := State{SpeedKmh: 10, HeadingDeg: hexgrid.NormalizeAngle(float64(h))}
		m := DefaultSmoothTurn().NewMover(init, rng.New(seed))
		for i := 0; i < 16; i++ {
			m.Advance(2)
			hd := m.State().HeadingDeg
			if hd <= -180 || hd > 180 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
