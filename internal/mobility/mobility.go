// Package mobility provides the user-movement models of the cellular
// simulator.
//
// The model that matters for the paper is SmoothTurn: a constant-speed
// walker whose heading performs a random walk with speed-dependent
// volatility — fast users cannot change direction easily, slow users
// wander. This is precisely the mechanism the paper invokes to explain
// Fig. 8 ("with the increase of the user speed, the user direction can not
// be changed easily, this results in a better prediction of the user
// direction"). ConstantVelocity, GaussMarkov and RandomWaypoint are
// provided for ablations.
package mobility

import (
	"fmt"
	"math"

	"facsp/internal/hexgrid"
	"facsp/internal/rng"
)

// State is a mobile's kinematic state: position in metres, speed in km/h,
// heading in degrees counter-clockwise from the +x axis.
type State struct {
	X          float64
	Y          float64
	SpeedKmh   float64
	HeadingDeg float64
}

// SpeedMS returns the speed in metres per second.
func (s State) SpeedMS() float64 { return s.SpeedKmh / 3.6 }

// step moves the state dt seconds along its heading.
func (s State) step(dt float64) State {
	rad := s.HeadingDeg * math.Pi / 180
	d := s.SpeedMS() * dt
	s.X += d * math.Cos(rad)
	s.Y += d * math.Sin(rad)
	return s
}

// Mover carries a single mobile's movement through time.
type Mover interface {
	// State returns the current kinematic state.
	State() State
	// Advance moves the mobile forward dt seconds (dt >= 0).
	Advance(dt float64)
}

// Model creates Movers. Each mobile gets its own Mover with its own random
// stream, so inserting a user never perturbs another user's trajectory.
type Model interface {
	NewMover(init State, src *rng.Source) Mover
}

// ConstantVelocity moves mobiles in a straight line forever.
type ConstantVelocity struct{}

type constantMover struct{ s State }

// NewMover implements Model.
func (ConstantVelocity) NewMover(init State, _ *rng.Source) Mover {
	return &constantMover{s: init}
}

func (m *constantMover) State() State { return m.s }

func (m *constantMover) Advance(dt float64) {
	if dt < 0 {
		panic(fmt.Sprintf("mobility: negative dt %v", dt))
	}
	m.s = m.s.step(dt)
}

// SmoothTurn is the paper-aligned model: constant speed, heading diffusing
// as a random walk whose standard deviation shrinks with speed.
//
// Over an interval dt the heading receives a Gaussian increment with
// standard deviation
//
//	sigma(dt) = BaseSigmaDeg * sqrt(dt*TurnRate) / (1 + SpeedKmh/SpeedScaleKmh)
//
// so a 4 km/h pedestrian meanders while a 60 km/h vehicle holds its course.
type SmoothTurn struct {
	// TurnRate is the heading-perturbation rate in events per second.
	TurnRate float64
	// BaseSigmaDeg is the per-event heading deviation at speed 0, degrees.
	BaseSigmaDeg float64
	// SpeedScaleKmh controls how quickly higher speed damps turning.
	SpeedScaleKmh float64
}

// DefaultSmoothTurn returns the model parameters used by the experiment
// harness: pedestrians re-orient on the order of every few seconds,
// vehicles are ~5x straighter.
func DefaultSmoothTurn() SmoothTurn {
	return SmoothTurn{TurnRate: 0.2, BaseSigmaDeg: 60, SpeedScaleKmh: 15}
}

type smoothMover struct {
	s     State
	model SmoothTurn
	src   *rng.Source
}

// NewMover implements Model.
func (m SmoothTurn) NewMover(init State, src *rng.Source) Mover {
	if m.TurnRate < 0 || m.BaseSigmaDeg < 0 || m.SpeedScaleKmh <= 0 {
		panic(fmt.Sprintf("mobility: invalid SmoothTurn %+v", m))
	}
	return &smoothMover{s: init, model: m, src: src.Split()}
}

func (m *smoothMover) State() State { return m.s }

func (m *smoothMover) Advance(dt float64) {
	if dt < 0 {
		panic(fmt.Sprintf("mobility: negative dt %v", dt))
	}
	if dt == 0 {
		return
	}
	// Sub-step so long intervals still trace a curved path rather than a
	// single kink. One-second granularity is far below cell-crossing time.
	const maxStep = 1.0
	remaining := dt
	for remaining > 0 {
		step := math.Min(maxStep, remaining)
		remaining -= step
		sigma := m.model.BaseSigmaDeg * math.Sqrt(step*m.model.TurnRate) /
			(1 + m.s.SpeedKmh/m.model.SpeedScaleKmh)
		if sigma > 0 {
			m.s.HeadingDeg = hexgrid.NormalizeAngle(m.s.HeadingDeg + m.src.Normal(0, sigma))
		}
		m.s = m.s.step(step)
	}
}

// GaussMarkov is the classic Gauss-Markov mobility model: both speed and
// heading are AR(1) processes pulled toward their means.
type GaussMarkov struct {
	// Alpha in [0,1] is the memory parameter: 1 = constant velocity,
	// 0 = memoryless.
	Alpha float64
	// MeanSpeedKmh is the asymptotic mean speed.
	MeanSpeedKmh float64
	// SpeedSigmaKmh is the speed innovation deviation.
	SpeedSigmaKmh float64
	// HeadingSigmaDeg is the heading innovation deviation.
	HeadingSigmaDeg float64
	// StepSeconds is the AR(1) update granularity (default 1s).
	StepSeconds float64
}

type gaussMarkovMover struct {
	s           State
	model       GaussMarkov
	src         *rng.Source
	meanHeading float64
}

// NewMover implements Model.
func (m GaussMarkov) NewMover(init State, src *rng.Source) Mover {
	if m.Alpha < 0 || m.Alpha > 1 {
		panic(fmt.Sprintf("mobility: GaussMarkov alpha %v outside [0,1]", m.Alpha))
	}
	if m.StepSeconds <= 0 {
		m.StepSeconds = 1
	}
	return &gaussMarkovMover{s: init, model: m, src: src.Split(), meanHeading: init.HeadingDeg}
}

func (m *gaussMarkovMover) State() State { return m.s }

func (m *gaussMarkovMover) Advance(dt float64) {
	if dt < 0 {
		panic(fmt.Sprintf("mobility: negative dt %v", dt))
	}
	remaining := dt
	for remaining > 0 {
		step := math.Min(m.model.StepSeconds, remaining)
		remaining -= step
		frac := step / m.model.StepSeconds
		a := m.model.Alpha
		root := math.Sqrt(1 - a*a)
		m.s.SpeedKmh = a*m.s.SpeedKmh + (1-a)*m.model.MeanSpeedKmh +
			root*m.model.SpeedSigmaKmh*m.src.Normal(0, 1)*frac
		if m.s.SpeedKmh < 0 {
			m.s.SpeedKmh = 0
		}
		m.s.HeadingDeg = hexgrid.NormalizeAngle(
			a*m.s.HeadingDeg + (1-a)*m.meanHeading +
				root*m.model.HeadingSigmaDeg*m.src.Normal(0, 1)*frac)
		m.s = m.s.step(step)
	}
}

// RandomWaypoint moves mobiles between uniformly chosen waypoints inside a
// disc of FieldRadius metres centred on the origin, pausing between legs.
type RandomWaypoint struct {
	// FieldRadius bounds the waypoint field, metres.
	FieldRadius float64
	// PauseMeanSeconds is the mean exponential pause at each waypoint;
	// 0 disables pausing.
	PauseMeanSeconds float64
}

type waypointMover struct {
	s       State
	model   RandomWaypoint
	src     *rng.Source
	tx, ty  float64
	pausing float64 // remaining pause seconds
}

// NewMover implements Model.
func (m RandomWaypoint) NewMover(init State, src *rng.Source) Mover {
	if m.FieldRadius <= 0 {
		panic(fmt.Sprintf("mobility: RandomWaypoint field radius %v must be positive", m.FieldRadius))
	}
	w := &waypointMover{s: init, model: m, src: src.Split()}
	w.pickWaypoint()
	return w
}

func (w *waypointMover) pickWaypoint() {
	r := w.model.FieldRadius * math.Sqrt(w.src.Float64())
	theta := w.src.Float64() * 2 * math.Pi
	w.tx = r * math.Cos(theta)
	w.ty = r * math.Sin(theta)
	w.s.HeadingDeg = hexgrid.BearingDeg(w.s.X, w.s.Y, w.tx, w.ty)
}

func (w *waypointMover) State() State { return w.s }

func (w *waypointMover) Advance(dt float64) {
	if dt < 0 {
		panic(fmt.Sprintf("mobility: negative dt %v", dt))
	}
	for dt > 0 {
		if w.pausing > 0 {
			p := math.Min(w.pausing, dt)
			w.pausing -= p
			dt -= p
			continue
		}
		dist := math.Hypot(w.tx-w.s.X, w.ty-w.s.Y)
		speed := w.s.SpeedMS()
		if speed <= 0 {
			return // a parked mobile never reaches its waypoint
		}
		eta := dist / speed
		if eta > dt {
			w.s = w.s.step(dt)
			return
		}
		// Arrive, pause, re-target.
		w.s.X, w.s.Y = w.tx, w.ty
		dt -= eta
		if w.model.PauseMeanSeconds > 0 {
			w.pausing = w.src.Exp(w.model.PauseMeanSeconds)
		}
		w.pickWaypoint()
	}
}
