package optimal

import (
	"fmt"
	"math"
	"sort"
)

// Policy is a stationary admission policy over the per-class call-count
// lattice: one admit/reject bit per (arrival kind, state), threshold
// (monotone) by construction. It is immutable after Solve, so lookups are
// lock-free and allocation-free.
type Policy struct {
	capacity float64
	bws      []float64
	dims     []int // per class: max concurrent calls + 1
	strides  []int
	// admit[kind][denseIdx]: kind k is a new class-k call, kind
	// classes+k a class-k handoff. Entries at infeasible states are false.
	admit [][]bool

	avgCost    float64
	iterations int
}

// Classes reports the number of service classes.
func (p *Policy) Classes() int { return len(p.bws) }

// Capacity reports the cell capacity the policy was solved for.
func (p *Policy) Capacity() float64 { return p.capacity }

// AvgCost reports the model's optimal long-run average cost in cost units
// per second (blocks weigh BlockCost, drops DropCost).
func (p *Policy) AvgCost() float64 { return p.avgCost }

// Iterations reports how many relative-value-iteration sweeps the solver
// used.
func (p *Policy) Iterations() int { return p.iterations }

// index returns the dense table index of counts, or -1 when any count is
// outside the lattice.
func (p *Policy) index(counts []int) int {
	idx := 0
	for k, n := range counts {
		if n < 0 || n >= p.dims[k] {
			return -1
		}
		idx += n * p.strides[k]
	}
	return idx
}

// AdmitAt reports the policy's decision for an arrival of class k (handoff
// or new) at the state with the given per-class call counts. States
// outside the lattice, infeasible states, and arrivals that do not fit
// reject.
func (p *Policy) AdmitAt(counts []int, k int, handoff bool) bool {
	if k < 0 || k >= len(p.bws) {
		return false
	}
	idx := p.index(counts)
	if idx < 0 {
		return false
	}
	kind := k
	if handoff {
		kind += len(p.bws)
	}
	return p.admit[kind][idx]
}

// NewCallThreshold reports the policy's threshold for new class-k calls
// along the class-k axis (all other classes empty): the largest on-going
// class-k count at which a new class-k call is still admitted, or -1 when
// even the empty cell rejects.
func (p *Policy) NewCallThreshold(k int) int {
	counts := make([]int, len(p.bws))
	threshold := -1
	for n := 0; n < p.dims[k]; n++ {
		counts[k] = n
		if p.AdmitAt(counts, k, false) {
			threshold = n
		}
	}
	return threshold
}

// Solve runs relative value iteration on the uniformized chain and
// returns the compiled threshold policy.
func Solve(cfg Config) (*Policy, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	maxIter := cfg.MaxIterations
	if maxIter == 0 {
		maxIter = 50000
	}
	tol := cfg.Tolerance
	if tol == 0 {
		tol = 1e-9
	}

	K := len(cfg.Classes)
	bws := make([]float64, K)
	dims := make([]int, K)
	for k, cl := range cfg.Classes {
		bws[k] = cl.Bandwidth
		dims[k] = int(cfg.Capacity/cl.Bandwidth) + 1
	}
	strides := make([]int, K)
	stride := 1
	for k := 0; k < K; k++ {
		strides[k] = stride
		stride *= dims[k]
	}
	dense := stride

	// Enumerate the feasible states once: counts with Σ n_k b_k ≤ C, in
	// lexicographically increasing count order (class 0 fastest), which is
	// also increasing dense-index order — the order the monotone closure
	// pass needs.
	type state struct {
		idx  int
		n    []int
		used float64
	}
	var feasible []state
	counts := make([]int, K)
	for {
		used := 0.0
		for k, n := range counts {
			used += float64(n) * bws[k]
		}
		if used <= cfg.Capacity+1e-9 {
			idx := 0
			for k, n := range counts {
				idx += n * strides[k]
			}
			feasible = append(feasible, state{idx: idx, n: append([]int(nil), counts...), used: used})
		}
		// Odometer increment over the dense box.
		k := K - 1
		for ; k >= 0; k-- {
			counts[k]++
			if counts[k] < dims[k] {
				break
			}
			counts[k] = 0
		}
		if k < 0 {
			break
		}
	}
	// The odometer walks class K-1 fastest but class 0 has stride 1, so
	// enumeration order is not dense-index order. Sort by index so the
	// monotone closure pass sees every predecessor before its successors.
	sort.Slice(feasible, func(i, j int) bool { return feasible[i].idx < feasible[j].idx })

	// Uniformization: Λ bounds the total event rate of any state.
	uniform := 0.0
	for k, cl := range cfg.Classes {
		uniform += cl.NewRate + cl.HandoffRate
		uniform += float64(dims[k]-1) * cl.DepartureRate
	}
	pNew := make([]float64, K)
	pHand := make([]float64, K)
	pDep := make([]float64, K)
	cBlock := make([]float64, K)
	cDrop := make([]float64, K)
	for k, cl := range cfg.Classes {
		pNew[k] = cl.NewRate / uniform
		pHand[k] = cl.HandoffRate / uniform
		pDep[k] = cl.DepartureRate / uniform
		cBlock[k] = cl.BlockCost
		cDrop[k] = cl.DropCost
	}

	h := make([]float64, dense)
	hNext := make([]float64, dense)
	avgCost := 0.0
	iterations := 0
	converged := false
	for it := 1; it <= maxIter; it++ {
		iterations = it
		for _, s := range feasible {
			here := h[s.idx]
			v := 0.0
			pStay := 1.0
			for k := 0; k < K; k++ {
				fits := s.used+bws[k] <= cfg.Capacity+1e-9
				up := 0.0
				if fits {
					up = h[s.idx+strides[k]]
				}
				// New arrival: admit (move up) or block (pay, stay).
				best := cBlock[k] + here
				if fits && up < best {
					best = up
				}
				v += pNew[k] * best
				// Handoff arrival: admit or drop (pay, stay).
				best = cDrop[k] + here
				if fits && up < best {
					best = up
				}
				v += pHand[k] * best
				pStay -= pNew[k] + pHand[k]
				// Departures of each on-going class-k call.
				if s.n[k] > 0 {
					rate := float64(s.n[k]) * pDep[k]
					v += rate * h[s.idx-strides[k]]
					pStay -= rate
				}
			}
			v += pStay * here
			hNext[s.idx] = v
		}
		// Span of the Bellman update decides convergence; its midpoint
		// estimates the average cost per uniformized step.
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, s := range feasible {
			d := hNext[s.idx] - h[s.idx]
			if d < lo {
				lo = d
			}
			if d > hi {
				hi = d
			}
		}
		avgCost = uniform * (lo + hi) / 2
		// Relative VI: renormalize against the empty state so the values
		// stay bounded.
		ref := hNext[0]
		for _, s := range feasible {
			hNext[s.idx] -= ref
		}
		h, hNext = hNext, h
		if hi-lo < tol {
			converged = true
			break
		}
	}
	if !converged {
		return nil, fmt.Errorf("optimal: value iteration did not converge in %d iterations (capacity %v, %d states)",
			maxIter, cfg.Capacity, len(feasible))
	}

	// Extract the greedy policy from the converged values: admit when
	// moving up is no worse than paying the rejection cost (ties admit —
	// acceptance is free at the margin).
	admit := make([][]bool, 2*K)
	for kind := range admit {
		admit[kind] = make([]bool, dense)
	}
	const tieEps = 1e-12
	for _, s := range feasible {
		here := h[s.idx]
		for k := 0; k < K; k++ {
			if s.used+bws[k] > cfg.Capacity+1e-9 {
				continue
			}
			up := h[s.idx+strides[k]]
			admit[k][s.idx] = up <= cBlock[k]+here+tieEps
			admit[K+k][s.idx] = up <= cDrop[k]+here+tieEps
		}
	}

	// Monotone (threshold) closure: a rejection propagates to every more
	// occupied state. feasible is in increasing dense-index order, so
	// every predecessor s-e_j is finalised before s.
	for kind := range admit {
		for _, s := range feasible {
			if !admit[kind][s.idx] {
				continue
			}
			for j := 0; j < K; j++ {
				if s.n[j] > 0 && !admit[kind][s.idx-strides[j]] {
					admit[kind][s.idx] = false
					break
				}
			}
		}
	}

	return &Policy{
		capacity:   cfg.Capacity,
		bws:        bws,
		dims:       dims,
		strides:    strides,
		admit:      admit,
		avgCost:    avgCost,
		iterations: iterations,
	}, nil
}
