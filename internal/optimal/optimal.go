// Package optimal computes a stationary optimal admission policy for the
// paper's single-cell traffic model and serves it as a cac.Controller.
//
// The cell is a birth-death continuous-time Markov chain: the state is the
// vector of on-going calls by service class, arrivals are Poisson per
// class and kind (new call or handoff-in), departures are exponential per
// call. The controller chooses admit/reject per arrival kind in every
// state; rejecting a new call costs its class's BlockCost, rejecting a
// handoff costs DropCost — the paper's priority of on-going connections
// expressed as a cost ratio instead of fuzzy rules. Relative value
// iteration on the uniformized chain (see arxiv 1502.06329 for the
// framework) yields the average-cost-optimal policy, which is then closed
// upward so rejection is monotone in occupancy — a threshold policy — and
// compiled into a dense lookup table the Admit hot path indexes without
// allocating.
//
// With the computed optimum in the scheme registry, every per-scenario
// ranking becomes a regret measurement: no heuristic scheme can beat the
// policy on the model's own weighted drop/block objective, so the gap to
// it is the price of the heuristic.
package optimal

import (
	"fmt"

	"facsp/internal/traffic"
)

// DropWeight is the default cost of dropping a handoff relative to
// blocking a new call (BlockCost 1): the paper's "priority of on-going
// connections" as a cost ratio. 10 is the classic CAC literature choice —
// losing an on-going call is an order of magnitude worse than refusing a
// new one.
const DropWeight = 10

// ReferenceLoad is the offered load the default model is solved for, in
// requesting connections per ReferenceWindow — the upper half of the
// paper's x axis, where admission decisions matter.
const ReferenceLoad = 60

// ReferenceWindow is the arrival window of the paper's Section 4 set-up in
// seconds (cellsim.DefaultConfig).
const ReferenceWindow = 600

// ReferenceHoldingMean is the mean call duration of the paper's set-up in
// seconds.
const ReferenceHoldingMean = 180

// ReferenceResidenceMean is the mean cell residence time in seconds
// implied by the default mobility model (1 km cells, uniform 0-120 km/h):
// the per-call handoff-out rate is 1/ReferenceResidenceMean, and
// handoff-in arrivals are assumed to balance it in the homogeneous
// network.
const ReferenceResidenceMean = 120

// HandoffFraction is the default intensity of handoff-in arrivals relative
// to new-call arrivals: holding 180 s against residence 120 s means an
// admitted call hands off roughly 1.5 times before it ends, but only the
// admitted fraction of offered calls generates them; 0.5 is the resulting
// round figure.
const HandoffFraction = 0.5

// ClassParams is one service class of the Markov model.
type ClassParams struct {
	// Bandwidth is the class's per-call demand in BU. Must be positive.
	Bandwidth float64
	// NewRate and HandoffRate are the Poisson arrival intensities of new
	// calls and handoff-ins, in calls per second. Non-negative; at least
	// one class must have a positive total rate.
	NewRate     float64
	HandoffRate float64
	// DepartureRate is the per-call rate of leaving the cell (call
	// completion plus handoff-out), per second. Must be positive.
	DepartureRate float64
	// BlockCost and DropCost price rejecting a new call and a handoff of
	// this class. Non-negative.
	BlockCost float64
	DropCost  float64
}

// Config parameterises the model and its solver.
type Config struct {
	// Capacity is the cell capacity in BU. Must be positive; the state
	// space is the integer lattice of per-class call counts that fit.
	Capacity float64
	// Classes are the service classes. Must be non-empty.
	Classes []ClassParams
	// MaxIterations bounds relative value iteration (default 50000).
	MaxIterations int
	// Tolerance is the span-seminorm convergence threshold on the value
	// difference, in cost units (default 1e-9).
	Tolerance float64
}

// DefaultConfig returns the paper's Section 4 cell scaled to the given
// capacity: three classes at 1/5/10 BU with the 70/20/10 mix, offered
// ReferenceLoad connections per ReferenceWindow on the reference 40 BU
// cell, handoff-in traffic at HandoffFraction of the new-call stream, and
// drops costed DropWeight times blocks. The offered load scales with
// capacity, so a double-capacity hot-spot cell is solved under
// proportionally heavier traffic rather than trivially admitting
// everything.
func DefaultConfig(capacity float64) Config {
	mix := traffic.DefaultMix()
	probs := map[traffic.Class]float64{
		traffic.Text:  mix.TextP,
		traffic.Voice: mix.VoiceP,
		traffic.Video: mix.VideoP,
	}
	lambda := ReferenceLoad / float64(ReferenceWindow) * capacity / 40
	departure := 1.0/ReferenceHoldingMean + 1.0/ReferenceResidenceMean
	classes := make([]ClassParams, 0, 3)
	for _, cl := range traffic.Classes() {
		rate := lambda * probs[cl]
		classes = append(classes, ClassParams{
			Bandwidth:     cl.Bandwidth(),
			NewRate:       rate,
			HandoffRate:   HandoffFraction * rate,
			DepartureRate: departure,
			BlockCost:     1,
			DropCost:      DropWeight,
		})
	}
	return Config{Capacity: capacity, Classes: classes}
}

// Validate checks the config.
func (c Config) Validate() error {
	if c.Capacity <= 0 {
		return fmt.Errorf("optimal: capacity %v must be positive", c.Capacity)
	}
	if len(c.Classes) == 0 {
		return fmt.Errorf("optimal: need at least one class")
	}
	total := 0.0
	for i, cl := range c.Classes {
		if cl.Bandwidth <= 0 {
			return fmt.Errorf("optimal: class %d bandwidth %v must be positive", i, cl.Bandwidth)
		}
		if cl.Bandwidth > c.Capacity {
			return fmt.Errorf("optimal: class %d bandwidth %v exceeds capacity %v", i, cl.Bandwidth, c.Capacity)
		}
		if cl.NewRate < 0 || cl.HandoffRate < 0 {
			return fmt.Errorf("optimal: class %d has negative arrival rate", i)
		}
		if cl.DepartureRate <= 0 {
			return fmt.Errorf("optimal: class %d departure rate %v must be positive", i, cl.DepartureRate)
		}
		if cl.BlockCost < 0 || cl.DropCost < 0 {
			return fmt.Errorf("optimal: class %d has negative cost", i)
		}
		total += cl.NewRate + cl.HandoffRate
	}
	if total <= 0 {
		return fmt.Errorf("optimal: no class has a positive arrival rate")
	}
	if c.MaxIterations < 0 {
		return fmt.Errorf("optimal: negative iteration bound %d", c.MaxIterations)
	}
	if c.Tolerance < 0 {
		return fmt.Errorf("optimal: negative tolerance %v", c.Tolerance)
	}
	return nil
}
