package optimal

import (
	"math"
	"testing"

	"facsp/internal/cac"
)

// erlangB computes the Erlang-B blocking probability for c servers at
// offered load rho (in Erlangs) with the standard recursion.
func erlangB(c int, rho float64) float64 {
	b := 1.0
	for m := 1; m <= c; m++ {
		b = rho * b / (float64(m) + rho*b)
	}
	return b
}

// singleClass is an M/M/c/c cell: one class at 1 BU, no handoffs, block
// cost only.
func singleClass(capacity, lambda, mu float64) Config {
	return Config{
		Capacity: capacity,
		Classes: []ClassParams{{
			Bandwidth:     1,
			NewRate:       lambda,
			DepartureRate: mu,
			BlockCost:     1,
		}},
	}
}

// TestValueIterationMatchesErlangB solves the analytically known case: on
// M/M/c/c with a single class and block costs only, the optimal policy is
// complete sharing (threshold = c), and its stationary blocking — and
// therefore the model's average cost — is the Erlang-B formula.
func TestValueIterationMatchesErlangB(t *testing.T) {
	const (
		c      = 5
		lambda = 0.8
		mu     = 0.25
	)
	p, err := Solve(singleClass(c, lambda, mu))
	if err != nil {
		t.Fatal(err)
	}
	// Admit everywhere it fits: the known Erlang-B threshold.
	if got := p.NewCallThreshold(0); got != c-1 {
		t.Fatalf("NewCallThreshold = %d, want %d (admit while a call fits)", got, c-1)
	}
	counts := []int{0}
	for n := 0; n < c; n++ {
		counts[0] = n
		if !p.AdmitAt(counts, 0, false) {
			t.Errorf("state %d rejects although admitting is optimal", n)
		}
	}
	counts[0] = c
	if p.AdmitAt(counts, 0, false) {
		t.Error("full cell admitted")
	}

	// Under the admit-all policy the chain is exactly M/M/c/c, so the
	// optimal average cost is λ·B(c, ρ): blocks per second.
	rho := lambda / mu
	want := lambda * erlangB(c, rho)
	if got := p.AvgCost(); math.Abs(got-want) > 1e-6 {
		t.Errorf("AvgCost = %v, want λ·ErlangB = %v", got, want)
	}
}

// TestPolicyMonotoneInOccupancy is the threshold property: for every
// arrival kind, admission at a state implies admission at every state with
// one call fewer (equivalently, rejection propagates upward).
func TestPolicyMonotoneInOccupancy(t *testing.T) {
	p, err := Solve(DefaultConfig(40))
	if err != nil {
		t.Fatal(err)
	}
	K := p.Classes()
	var walk func(counts []int, used float64, k int)
	walk = func(counts []int, used float64, k int) {
		if k == K {
			for class := 0; class < K; class++ {
				for _, handoff := range []bool{false, true} {
					if !p.AdmitAt(counts, class, handoff) {
						continue
					}
					for j := 0; j < K; j++ {
						if counts[j] == 0 {
							continue
						}
						counts[j]--
						ok := p.AdmitAt(counts, class, handoff)
						counts[j]++
						if !ok {
							t.Fatalf("policy not monotone: admits class %d (handoff=%v) at %v but not with one class-%d call fewer",
								class, handoff, counts, j)
						}
					}
				}
			}
			return
		}
		bw := p.bws[k]
		for n := 0; used+float64(n)*bw <= p.Capacity()+1e-9; n++ {
			counts[k] = n
			walk(counts, used+float64(n)*bw, k+1)
		}
		counts[k] = 0
	}
	walk(make([]int, K), 0, 0)
}

// TestDefaultPolicyProtectsHandoffs checks the paper's priority shows up
// structurally: wherever a new call of a class is admitted a handoff of
// the same class is too, and somewhere in the lattice the policy holds
// back a new call for a handoff's sake.
func TestDefaultPolicyProtectsHandoffs(t *testing.T) {
	p, err := Solve(DefaultConfig(40))
	if err != nil {
		t.Fatal(err)
	}
	K := p.Classes()
	gapSeen := false
	counts := make([]int, K)
	var walk func(k int, used float64)
	walk = func(k int, used float64) {
		if k == K {
			for class := 0; class < K; class++ {
				newOK := p.AdmitAt(counts, class, false)
				handOK := p.AdmitAt(counts, class, true)
				if newOK && !handOK {
					t.Fatalf("state %v: new class-%d call admitted but handoff rejected — drop cost %vx is inverted",
						counts, class, DropWeight)
				}
				if handOK && !newOK {
					gapSeen = true
				}
			}
			return
		}
		bw := p.bws[k]
		for n := 0; used+float64(n)*bw <= p.Capacity()+1e-9; n++ {
			counts[k] = n
			walk(k+1, used+float64(n)*bw)
		}
		counts[k] = 0
	}
	walk(0, 0)
	if !gapSeen {
		t.Error("no state prioritises handoffs over new calls; the drop weight is not biting")
	}
}

func TestSolveValidation(t *testing.T) {
	if _, err := Solve(Config{}); err == nil {
		t.Error("empty config accepted")
	}
	cfg := singleClass(5, 0.8, 0.25)
	cfg.Classes[0].Bandwidth = 0
	if _, err := Solve(cfg); err == nil {
		t.Error("zero bandwidth accepted")
	}
	cfg = singleClass(5, 0, 0.25)
	if _, err := Solve(cfg); err == nil {
		t.Error("zero arrival rate accepted")
	}
	cfg = singleClass(5, 0.8, 0.25)
	cfg.MaxIterations = 1
	if _, err := Solve(cfg); err == nil {
		t.Error("non-converged solve did not error")
	}
}

func TestControllerAdmitReleaseRoundtrip(t *testing.T) {
	ctrl, err := New(DefaultConfig(40))
	if err != nil {
		t.Fatal(err)
	}
	if got := ctrl.SchemeName(); got != "optimal" {
		t.Errorf("SchemeName = %q", got)
	}
	if got := ctrl.Capacity(); got != 40 {
		t.Errorf("Capacity = %v", got)
	}
	req := cac.Request{ID: 1, Speed: 60, Angle: 15, Bandwidth: 5, RealTime: true}
	d := ctrl.Admit(req)
	if !d.Accept {
		t.Fatalf("empty cell rejected a voice call: %+v", d)
	}
	if d.Occupancy != 5 {
		t.Errorf("decision occupancy = %v, want 5", d.Occupancy)
	}
	if err := ctrl.Release(req); err != nil {
		t.Fatal(err)
	}
	if got := ctrl.Occupancy(); got != 0 {
		t.Errorf("occupancy after release = %v", got)
	}
	if err := ctrl.Release(req); err == nil {
		t.Error("release of an empty cell accepted")
	}
	if d := ctrl.Admit(cac.Request{}); d.Accept {
		t.Error("invalid request accepted")
	}
}

func TestControllerRejectsBeyondCapacity(t *testing.T) {
	ctrl, err := New(DefaultConfig(40))
	if err != nil {
		t.Fatal(err)
	}
	// Offer far more handoff traffic than fits. The policy may hold some
	// back below capacity (rejecting a wide video call to keep room for
	// the denser text/voice handoff streams is optimal), but it must never
	// oversubscribe the cell, and once admission stops the refusals must
	// carry a meaningful outcome.
	for i := 0; i < 200; i++ {
		ctrl.Admit(cac.Request{Bandwidth: 10, RealTime: true, Handoff: true})
		ctrl.Admit(cac.Request{Bandwidth: 1, Handoff: true})
	}
	if got := ctrl.Occupancy(); got > 40 {
		t.Fatalf("occupancy %v exceeds capacity 40", got)
	} else if got < 30 {
		t.Fatalf("occupancy %v after saturation; the policy is rejecting far below capacity", got)
	}
	d := ctrl.Admit(cac.Request{Bandwidth: 10, RealTime: true})
	if d.Accept {
		t.Fatal("new video admitted into a saturated cell")
	}
	if d.Outcome != "capacity" && d.Outcome != "threshold" {
		t.Errorf("outcome = %q", d.Outcome)
	}
}

func TestForCapacityCachesPolicy(t *testing.T) {
	a, err := ForCapacity(40)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ForCapacity(40)
	if err != nil {
		t.Fatal(err)
	}
	if a.Policy() != b.Policy() {
		t.Error("same-capacity controllers do not share the solved policy")
	}
	if a == b {
		t.Error("ForCapacity returned the same controller twice")
	}
	// Independent ledgers: admitting on one must not show on the other.
	a.Admit(cac.Request{Bandwidth: 5})
	if got := b.Occupancy(); got != 0 {
		t.Errorf("shared cell state across controllers: occupancy %v", got)
	}
}
