package optimal

import (
	"fmt"
	"sync"

	"facsp/internal/cac"
	"facsp/internal/ledger"
)

// Controller serves a solved Policy as a cac.Controller: the cell state
// lives in a shared ledger.ClassLedger (the same account the baseline
// schemes run on) and every Admit is one lock-guarded table lookup — no
// inference, no allocation.
type Controller struct {
	policy *Policy
	led    *ledger.ClassLedger
}

var (
	_ cac.Controller = (*Controller)(nil)
	_ cac.Named      = (*Controller)(nil)
)

// New solves cfg and returns a controller serving the resulting policy.
// Construction runs value iteration (milliseconds at the paper's 40 BU
// cell); use ForCapacity to share solved policies across cells.
func New(cfg Config) (*Controller, error) {
	p, err := Solve(cfg)
	if err != nil {
		return nil, err
	}
	return NewFromPolicy(p)
}

// NewFromPolicy returns a fresh controller (own cell state) serving an
// already solved policy. Controllers built from the same policy share the
// immutable tables but never the ledger.
func NewFromPolicy(p *Policy) (*Controller, error) {
	if p == nil {
		return nil, fmt.Errorf("optimal: nil policy")
	}
	led, err := ledger.NewClassLedger(p.capacity, p.bws)
	if err != nil {
		return nil, fmt.Errorf("optimal: %w", err)
	}
	return &Controller{policy: p, led: led}, nil
}

// policyCache shares solved default-model policies across cells of the
// same capacity: scenario sweeps build thousands of per-cell controllers,
// and the policy depends only on the capacity.
var policyCache sync.Map // float64 capacity -> *Policy

// ForCapacity returns a controller for the default model at the given
// capacity, solving it on first use and caching the policy per capacity.
func ForCapacity(capacity float64) (*Controller, error) {
	if got, ok := policyCache.Load(capacity); ok {
		return NewFromPolicy(got.(*Policy))
	}
	p, err := Solve(DefaultConfig(capacity))
	if err != nil {
		return nil, err
	}
	got, _ := policyCache.LoadOrStore(capacity, p)
	return NewFromPolicy(got.(*Policy))
}

// Policy exposes the controller's solved policy (for tests, docs and the
// learned controller's offline training).
func (c *Controller) Policy() *Policy { return c.policy }

// SchemeName implements cac.Named.
func (c *Controller) SchemeName() string { return "optimal" }

// Capacity implements cac.Controller.
func (c *Controller) Capacity() float64 { return c.led.Capacity() }

// Occupancy implements cac.Controller.
func (c *Controller) Occupancy() float64 { return c.led.Used() }

// classOf maps a request to the model class with the nearest per-call
// bandwidth. The simulator and the wire protocol only produce the exact
// class bandwidths, so this is an identity in practice; nearest-match
// keeps hand-built requests from panicking.
func (c *Controller) classOf(bw float64) int {
	best, bestDist := 0, -1.0
	for k, b := range c.policy.bws {
		d := b - bw
		if d < 0 {
			d = -d
		}
		if bestDist < 0 || d < bestDist {
			best, bestDist = k, d
		}
	}
	return best
}

// Admit implements cac.Controller: one table lookup at the ledger's
// current per-class counts, under the ledger lock so the decision and the
// reservation are atomic.
func (c *Controller) Admit(req cac.Request) cac.Decision {
	if err := req.Validate(); err != nil {
		return cac.Decision{Accept: false, Score: -1, Outcome: "error: " + err.Error(), Occupancy: c.led.Used()}
	}
	k := c.classOf(req.Bandwidth)
	kind := k
	if req.Handoff {
		kind += len(c.policy.bws)
	}
	policyReject := false
	used, ok := c.led.ReserveIf(k, req.Bandwidth, func(counts []int) bool {
		idx := c.policy.index(counts)
		if idx < 0 || counts[k]+1 >= c.policy.dims[k] {
			return false
		}
		if !c.policy.admit[kind][idx] {
			policyReject = true
			return false
		}
		return true
	})
	if !ok {
		outcome := "capacity"
		if policyReject {
			outcome = "threshold"
		}
		return cac.Decision{Accept: false, Score: -1, Outcome: outcome, Occupancy: used}
	}
	return cac.Decision{Accept: true, Score: 1, Outcome: "fits", Occupancy: used}
}

// Release implements cac.Controller.
func (c *Controller) Release(req cac.Request) error {
	return c.led.Release(c.classOf(req.Bandwidth), req.Bandwidth)
}
