//go:build !race

package optimal

import (
	"testing"

	"facsp/internal/cac"
)

// TestAdmitAllocFree pins the hot path the perf registry gates
// (scheme/optimal): a solved-policy controller decides an admission and
// takes the release without allocating — the decision is one table lookup
// under the ledger lock. Gated out of -race because the detector
// instruments allocations.
func TestAdmitAllocFree(t *testing.T) {
	ctrl, err := New(DefaultConfig(40))
	if err != nil {
		t.Fatal(err)
	}
	req := cac.Request{ID: 1, Speed: 60, Angle: 15, Bandwidth: 5, RealTime: true}

	// Warm once: the first Admit may fault lazily-initialised state.
	d := ctrl.Admit(req)
	if d.Accept {
		if err := ctrl.Release(req); err != nil {
			t.Fatal(err)
		}
	}

	if n := testing.AllocsPerRun(500, func() {
		d := ctrl.Admit(req)
		if d.Accept {
			if err := ctrl.Release(req); err != nil {
				t.Fatal(err)
			}
		}
	}); n != 0 {
		t.Errorf("policy-table Admit+Release allocates %v per cycle, want 0", n)
	}
}
