package core

import (
	"math"
	"testing"

	"facsp/internal/cac"
	"facsp/internal/fuzzy"
	"facsp/internal/rng"
)

// Equivalence tolerances of the default-resolution surfaces, measured over
// dense randomized sweeps of the full input universes and stated here with
// ~20% headroom. FLC1's output universe is [0,1]; FLC2's is [-1,1]. The
// error shrinks with resolution (see TestSurfaceConvergesWithResolution in
// internal/fuzzy); these document the default trade.
const (
	flc1Tolerance = 0.11
	flc2Tolerance = 0.03
)

func defaultSurfaces(t testing.TB) (flc1, flc2 *fuzzy.Engine, s1, s2 *fuzzy.Surface) {
	t.Helper()
	flc1, err := NewFLC1()
	if err != nil {
		t.Fatal(err)
	}
	flc2, err = NewFLC2()
	if err != nil {
		t.Fatal(err)
	}
	// Compile through the shared cache, like the controllers do, so the
	// cost is paid once per test process.
	s1, err = compileSurface(flc1, DefaultSurfaceResolution, fuzzy.DefaultSamples, nil)
	if err != nil {
		t.Fatal(err)
	}
	s2, err = compileSurface(flc2, DefaultSurfaceResolution, fuzzy.DefaultSamples, nil)
	if err != nil {
		t.Fatal(err)
	}
	return flc1, flc2, s1, s2
}

func TestFLC1SurfaceEquivalenceTable(t *testing.T) {
	flc1, _, s1, _ := defaultSurfaces(t)
	// The paper's own anchor points (term peaks and crossovers) plus the
	// class bandwidths.
	for _, sp := range []float64{0, 30, 60, 90, 120} {
		for _, an := range []float64{-180, -90, -45, 0, 45, 90, 180} {
			for _, sr := range []float64{TextBU, VoiceBU, VideoBU} {
				want, err := flc1.Infer(sp, an, sr)
				if err != nil {
					t.Fatalf("FLC1(%v, %v, %v): %v", sp, an, sr, err)
				}
				got, err := s1.Infer(sp, an, sr)
				if err != nil {
					t.Fatalf("surface(%v, %v, %v): %v", sp, an, sr, err)
				}
				if d := math.Abs(got - want); d > flc1Tolerance {
					t.Errorf("FLC1 surface at (%v, %v, %v): |%v - %v| = %v > %v",
						sp, an, sr, got, want, d, flc1Tolerance)
				}
			}
		}
	}
}

func TestFLC1SurfaceEquivalenceRandomized(t *testing.T) {
	flc1, _, s1, _ := defaultSurfaces(t)
	src := rng.New(0xF1C1)
	worst := 0.0
	for i := 0; i < 20000; i++ {
		sp := src.Uniform(SpeedMin, SpeedMax)
		an := src.Uniform(AngleMin, AngleMax)
		sr := src.Uniform(ServiceMin, ServiceMax)
		want, err := flc1.Infer(sp, an, sr)
		if err != nil {
			t.Fatalf("FLC1(%v, %v, %v): %v", sp, an, sr, err)
		}
		got, err := s1.Infer(sp, an, sr)
		if err != nil {
			t.Fatalf("surface(%v, %v, %v): %v", sp, an, sr, err)
		}
		if d := math.Abs(got - want); d > worst {
			worst = d
			if d > flc1Tolerance {
				t.Fatalf("FLC1 surface at (%v, %v, %v): error %v > %v", sp, an, sr, d, flc1Tolerance)
			}
		}
	}
	t.Logf("FLC1 max interpolation error over 20k samples: %.5f (tolerance %v)", worst, flc1Tolerance)
}

func TestFLC2SurfaceEquivalenceRandomized(t *testing.T) {
	_, flc2, _, s2 := defaultSurfaces(t)
	src := rng.New(0xF1C2)
	worst := 0.0
	for i := 0; i < 20000; i++ {
		cv := src.Uniform(CvMin, CvMax)
		rq := src.Uniform(RequestMin, RequestMax)
		cs := src.Uniform(CounterMin, CounterMax)
		want, err := flc2.Infer(cv, rq, cs)
		if err != nil {
			t.Fatalf("FLC2(%v, %v, %v): %v", cv, rq, cs, err)
		}
		got, err := s2.Infer(cv, rq, cs)
		if err != nil {
			t.Fatalf("surface(%v, %v, %v): %v", cv, rq, cs, err)
		}
		if d := math.Abs(got - want); d > worst {
			worst = d
			if d > flc2Tolerance {
				t.Fatalf("FLC2 surface at (%v, %v, %v): error %v > %v", cv, rq, cs, d, flc2Tolerance)
			}
		}
	}
	t.Logf("FLC2 max interpolation error over 20k samples: %.5f (tolerance %v)", worst, flc2Tolerance)
}

func TestSurfaceControllerDecisionsTrackExact(t *testing.T) {
	// End to end: a surface-cached FACS-P must agree with the exact
	// controller on the overwhelming majority of randomized decisions, and
	// its scores must stay within the combined interpolation tolerance.
	exact, err := NewFACSP(DefaultPConfig())
	if err != nil {
		t.Fatal(err)
	}
	cached, err := NewFACSP(DefaultPConfig().WithSurfaceCache(0))
	if err != nil {
		t.Fatal(err)
	}
	src := rng.New(7)
	agree, total := 0, 4000
	for i := 0; i < total; i++ {
		req := cac.Request{
			Speed:     src.Uniform(SpeedMin, SpeedMax),
			Angle:     src.Uniform(AngleMin, AngleMax),
			Bandwidth: []float64{TextBU, VoiceBU, VideoBU}[src.Intn(3)],
			RealTime:  src.Bool(0.3),
			Handoff:   src.Bool(0.2),
		}
		rtc := src.Uniform(0, CounterMax/2)
		nrtc := src.Uniform(0, CounterMax/2)
		de, err := exact.Evaluate(req, rtc, nrtc)
		if err != nil {
			t.Fatal(err)
		}
		dc, err := cached.Evaluate(req, rtc, nrtc)
		if err != nil {
			t.Fatal(err)
		}
		if de.Accept == dc.Accept {
			agree++
		}
		// FLC1's cv error propagates through FLC2 (Lipschitz <= ~2 on the
		// Cv axis) and adds to FLC2's own interpolation error.
		if d := math.Abs(de.Score - dc.Score); d > 2*flc1Tolerance+flc2Tolerance {
			t.Errorf("score diverged by %v for %+v (exact %v, cached %v)", d, req, de.Score, dc.Score)
		}
	}
	if pct := 100 * float64(agree) / float64(total); pct < 95 {
		t.Errorf("surface-cached controller agreed on only %.1f%% of decisions", pct)
	}
}

// uncacheableDefuzz has a non-comparable type, so it cannot be used as a
// cache key and must compile privately.
type uncacheableDefuzz struct{ pad []int }

func (uncacheableDefuzz) Defuzz(out fuzzy.Variable, strength []float64, samples int) (float64, error) {
	return fuzzy.Centroid{}.Defuzz(out, strength, samples)
}

func TestSurfaceCacheSharing(t *testing.T) {
	a, err := compileSurface(mustFLC1(t), DefaultSurfaceResolution, fuzzy.DefaultSamples, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := compileSurface(mustFLC1(t), DefaultSurfaceResolution, fuzzy.DefaultSamples, nil)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("two default-config FLC1 compilations did not share one surface")
	}
	// Comparable custom defuzzifiers share a per-value compilation distinct
	// from the default one (the ablation sweeps depend on this: without it
	// every per-cell controller would recompile ~70k inferences).
	lowRes := 5 // keep the extra compilations cheap
	h1, err := compileSurface(mustFLC1(t), lowRes, fuzzy.DefaultSamples, fuzzy.Height{})
	if err != nil {
		t.Fatal(err)
	}
	h2, err := compileSurface(mustFLC1(t), lowRes, fuzzy.DefaultSamples, fuzzy.Height{})
	if err != nil {
		t.Fatal(err)
	}
	if h1 != h2 {
		t.Error("two Height-defuzzifier compilations did not share one surface")
	}
	if h1 == a {
		t.Error("Height-defuzzifier compilation shared the default-defuzzifier surface")
	}
	// Non-comparable defuzzifiers cannot be keyed: private compilations.
	c1, err := compileSurface(mustFLC1(t), lowRes, fuzzy.DefaultSamples, uncacheableDefuzz{})
	if err != nil {
		t.Fatal(err)
	}
	c2, err := compileSurface(mustFLC1(t), lowRes, fuzzy.DefaultSamples, uncacheableDefuzz{})
	if err != nil {
		t.Fatal(err)
	}
	if c1 == c2 {
		t.Error("non-comparable defuzzifier compilations unexpectedly shared a surface")
	}
}

func mustFLC1(t testing.TB) *fuzzy.Engine {
	t.Helper()
	e, err := NewFLC1()
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestSurfaceResolutionValidation(t *testing.T) {
	for _, res := range []int{-1, 1} {
		cfg := DefaultConfig()
		cfg.SurfaceResolution = res
		if _, err := NewFACS(cfg); err == nil {
			t.Errorf("FACS surface resolution %d accepted", res)
		}
		pcfg := DefaultPConfig()
		pcfg.SurfaceResolution = res
		if _, err := NewFACSP(pcfg); err == nil {
			t.Errorf("FACS-P surface resolution %d accepted", res)
		}
	}
	if got := DefaultConfig().WithSurfaceCache(0).SurfaceResolution; got != DefaultSurfaceResolution {
		t.Errorf("WithSurfaceCache(0) resolution = %d, want %d", got, DefaultSurfaceResolution)
	}
	if got := DefaultPConfig().WithSurfaceCache(65).SurfaceResolution; got != 65 {
		t.Errorf("WithSurfaceCache(65) resolution = %d", got)
	}
}
