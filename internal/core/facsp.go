package core

import (
	"fmt"
	"sync"

	"facsp/internal/cac"
	"facsp/internal/fuzzy"
)

// PConfig parameterises a FACS-P controller.
//
// The paper specifies the priority mechanism only as a block diagram
// (Fig. 4: Ds splits admitted traffic into the RTC and NRTC counters).
// We realise it as a load-adaptive admission threshold for new calls:
//
//	theta = Theta0 + Gain * (RTWeight*RTC + NRTWeight*NRTC) / Capacity
//
// where RTC and NRTC are the bandwidth units held by on-going real-time
// and non-real-time connections. An empty cell is *more* lenient than
// FACS (Theta0 < DefaultThreshold), a loaded cell is stricter — which
// reproduces the crossover of Fig. 10 and the paper's claim that FACS-P
// "keeps the QoS of on-going connections". See DESIGN.md section 2.
type PConfig struct {
	// Capacity is the base station's total bandwidth in BU (paper: 40).
	Capacity float64
	// Theta0 is the admission threshold of an empty cell. Negative values
	// make an idle FACS-P more permissive than FACS.
	Theta0 float64
	// Gain scales how quickly the threshold rises with on-going load.
	Gain float64
	// RTWeight weights real-time (RTC) bandwidth in the on-going load;
	// real-time connections are the ones whose QoS degrades hardest on
	// congestion, so they count more.
	RTWeight float64
	// NRTWeight weights non-real-time (NRTC) bandwidth.
	NRTWeight float64
	// HandoffThreshold is the (fixed, low) threshold applied to handoff
	// requests of on-going calls; they have priority over new calls and
	// are normally limited only by physical capacity.
	HandoffThreshold float64
	// PriorityStep lowers the effective threshold per level of requesting-
	// connection priority (req.Priority). The paper lists requesting-
	// connection priority as future work; 0 disables it.
	PriorityStep float64
	// Defuzzifier overrides the engines' defuzzifier (default Centroid).
	Defuzzifier fuzzy.Defuzzifier
	// Samples overrides the defuzzification integration resolution.
	Samples int
	// SurfaceResolution, when positive, compiles FLC1 and FLC2 into
	// precomputed decision surfaces (fuzzy.Surface) with this many base
	// ticks per input axis; Admit then answers by multilinear interpolation
	// instead of a full Mamdani pass. See Config.SurfaceResolution.
	SurfaceResolution int
	// Surfaces, when non-nil, supplies the controller's decision surfaces
	// on every evaluation (see Config.Surfaces): the tiered per-cell
	// selector hook. Mutually exclusive with SurfaceResolution.
	Surfaces SurfaceProvider
}

// WithSurfaceCache returns a copy of the config with the decision-surface
// cache enabled at the given per-axis resolution; a non-positive resolution
// selects DefaultSurfaceResolution.
func (c PConfig) WithSurfaceCache(resolution int) PConfig {
	if resolution <= 0 {
		resolution = DefaultSurfaceResolution
	}
	c.SurfaceResolution = resolution
	return c
}

// DefaultPConfig returns the FACS-P configuration used for the paper's
// figures, calibrated so the FACS-P/FACS crossover of Fig. 10 falls near
// 25 requesting connections (see EXPERIMENTS.md).
func DefaultPConfig() PConfig {
	return PConfig{
		Capacity:         CounterMax,
		Theta0:           -0.40,
		Gain:             0.90,
		RTWeight:         1.15,
		NRTWeight:        0.85,
		HandoffThreshold: ARMin, // capacity-limited only: full priority
		PriorityStep:     0,
		Samples:          fuzzy.DefaultSamples,
	}
}

func (c PConfig) validate() error {
	if c.Capacity <= 0 {
		return fmt.Errorf("core: capacity %v must be positive", c.Capacity)
	}
	if c.Theta0 < ARMin || c.Theta0 > ARMax {
		return fmt.Errorf("core: theta0 %v outside A/R universe [%v, %v]", c.Theta0, ARMin, ARMax)
	}
	if c.HandoffThreshold < ARMin || c.HandoffThreshold > ARMax {
		return fmt.Errorf("core: handoff threshold %v outside A/R universe", c.HandoffThreshold)
	}
	if c.Gain < 0 {
		return fmt.Errorf("core: gain %v must be non-negative", c.Gain)
	}
	if c.RTWeight < 0 || c.NRTWeight < 0 {
		return fmt.Errorf("core: counter weights must be non-negative (rt=%v, nrt=%v)", c.RTWeight, c.NRTWeight)
	}
	if c.PriorityStep < 0 {
		return fmt.Errorf("core: priority step %v must be non-negative", c.PriorityStep)
	}
	if err := ValidateSurfaceResolution(c.SurfaceResolution); err != nil {
		return err
	}
	if c.Surfaces != nil && c.SurfaceResolution != 0 {
		return fmt.Errorf("core: config sets both Surfaces and SurfaceResolution %d", c.SurfaceResolution)
	}
	return nil
}

func (c PConfig) engineOptions() []fuzzy.Option {
	var opts []fuzzy.Option
	if c.Defuzzifier != nil {
		opts = append(opts, fuzzy.WithDefuzzifier(c.Defuzzifier))
	}
	if c.Samples > 0 {
		opts = append(opts, fuzzy.WithSamples(c.Samples))
	}
	return opts
}

// FACSP is the paper's proposed system: FACS extended with the priority of
// on-going connections. It implements cac.Controller and is safe for
// concurrent use.
type FACSP struct {
	flc1 *fuzzy.Engine
	flc2 *fuzzy.Engine
	// surf1 and surf2 are the precomputed decision surfaces standing in for
	// flc1/flc2 when cfg.SurfaceResolution > 0; nil means exact inference.
	surf1 *fuzzy.Surface
	surf2 *fuzzy.Surface
	cfg   PConfig

	mu   sync.Mutex
	rtc  float64 // BU held by on-going real-time connections
	nrtc float64 // BU held by on-going non-real-time connections
}

var (
	_ cac.Controller = (*FACSP)(nil)
	_ cac.Named      = (*FACSP)(nil)
)

// NewFACSP builds a FACS-P controller.
func NewFACSP(cfg PConfig) (*FACSP, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	flc1, err := NewFLC1(cfg.engineOptions()...)
	if err != nil {
		return nil, fmt.Errorf("core: building FLC1: %w", err)
	}
	flc2, err := NewFLC2(cfg.engineOptions()...)
	if err != nil {
		return nil, fmt.Errorf("core: building FLC2: %w", err)
	}
	f := &FACSP{flc1: flc1, flc2: flc2, cfg: cfg}
	if cfg.SurfaceResolution > 0 {
		f.surf1, f.surf2, err = surfacePair(flc1, flc2, cfg.SurfaceResolution, cfg.Samples, cfg.Defuzzifier)
		if err != nil {
			return nil, fmt.Errorf("core: compiling decision surfaces: %w", err)
		}
	}
	return f, nil
}

// SchemeName implements cac.Named.
func (f *FACSP) SchemeName() string { return "FACS-P" }

// Capacity implements cac.Controller.
func (f *FACSP) Capacity() float64 { return f.cfg.Capacity }

// Occupancy implements cac.Controller: total BU held across both counters.
func (f *FACSP) Occupancy() float64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.rtc + f.nrtc
}

// Counters returns the differentiated-service counters: bandwidth units
// held by on-going real-time (RTC) and non-real-time (NRTC) connections.
func (f *FACSP) Counters() (rtc, nrtc float64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.rtc, f.nrtc
}

// Evaluate runs the two-stage inference for a request against explicit
// counter values, without reserving anything. It is the pure decision
// function; Admit wraps it with bookkeeping.
func (f *FACSP) Evaluate(req cac.Request, rtcBU, nrtcBU float64) (Decision, error) {
	if err := req.Validate(); err != nil {
		return Decision{}, err
	}
	// The Cs input sees the combined occupancy, scaled into the paper's
	// 0-40 universe.
	cs := (rtcBU + nrtcBU) * CounterMax / f.cfg.Capacity
	surf1, surf2 := f.surf1, f.surf2
	if f.cfg.Surfaces != nil {
		surf1, surf2 = f.cfg.Surfaces.Surfaces()
	}
	cv, score, outcome, err := inferScore(f.flc1, f.flc2, surf1, surf2,
		req.Speed, req.Angle, req.Bandwidth, cs)
	if err != nil {
		return Decision{}, err
	}

	// Recompute the threshold against the supplied counters rather than
	// the live ones so Evaluate stays pure.
	var theta float64
	if req.Handoff {
		theta = f.cfg.HandoffThreshold
	} else {
		ongoing := (f.cfg.RTWeight*rtcBU + f.cfg.NRTWeight*nrtcBU) / f.cfg.Capacity
		theta = f.cfg.Theta0 + f.cfg.Gain*ongoing - f.cfg.PriorityStep*float64(req.Priority)
		if theta > ARMax {
			theta = ARMax
		}
		if theta < ARMin {
			theta = ARMin
		}
	}

	d := Decision{
		Decision: cac.Decision{
			Score:   score,
			Outcome: outcome,
		},
		Cv:        cv,
		Threshold: theta,
	}
	d.Accept = score > theta
	return d, nil
}

// Admit implements cac.Controller. Handoff requests carry the priority of
// on-going connections: they are admitted whenever physical capacity
// allows (subject to the configured HandoffThreshold); new requests face
// the adaptive threshold.
func (f *FACSP) Admit(req cac.Request) cac.Decision {
	f.mu.Lock()
	defer f.mu.Unlock()

	d, err := f.Evaluate(req, f.rtc, f.nrtc)
	if err != nil {
		return cac.Decision{Accept: false, Score: ARMin, Outcome: "error: " + err.Error(), Occupancy: f.rtc + f.nrtc}
	}
	if d.Accept && f.rtc+f.nrtc+req.Bandwidth > f.cfg.Capacity {
		d.Accept = false
		d.Outcome = "capacity"
	}
	if d.Accept {
		if req.RealTime {
			f.rtc += req.Bandwidth
		} else {
			f.nrtc += req.Bandwidth
		}
	}
	d.Occupancy = f.rtc + f.nrtc
	return d.Decision
}

// Release implements cac.Controller, crediting the counter selected by the
// differentiated-service classification of the request.
func (f *FACSP) Release(req cac.Request) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	counter := &f.nrtc
	name := "NRTC"
	if req.RealTime {
		counter = &f.rtc
		name = "RTC"
	}
	if req.Bandwidth > *counter+1e-9 {
		return fmt.Errorf("core: FACS-P release of %v BU exceeds %s occupancy %v", req.Bandwidth, name, *counter)
	}
	*counter -= req.Bandwidth
	if *counter < 0 {
		*counter = 0
	}
	return nil
}

// Reset clears both counters, returning the controller to an empty cell.
func (f *FACSP) Reset() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.rtc = 0
	f.nrtc = 0
}
