package core

import (
	"fmt"
	"sync"

	"facsp/internal/cac"
	"facsp/internal/fuzzy"
)

// DefaultThreshold is the crisp A/R value a new request must exceed to be
// admitted. The paper's five-outcome soft decision reads naturally as
// "admit on Weak Accept or better, treat Not-Reject-Not-Accept as a block
// for new calls" (a CAC 'may block additional calls even if there are
// enough resources', Section 1); 0.15 is the crossover between the NRNA
// (peak 0) and WA (peak 0.3) output terms.
const DefaultThreshold = 0.15

// Config parameterises a FACS controller. The zero value is not usable;
// start from DefaultConfig.
type Config struct {
	// Capacity is the base station's total bandwidth in BU (paper: 40).
	Capacity float64
	// Threshold is the crisp A/R value a new request must exceed to be
	// admitted (default DefaultThreshold).
	Threshold float64
	// Defuzzifier overrides the engines' defuzzifier (default Centroid).
	Defuzzifier fuzzy.Defuzzifier
	// Samples overrides the defuzzification integration resolution.
	Samples int
	// SurfaceResolution, when positive, compiles FLC1 and FLC2 into
	// precomputed decision surfaces (fuzzy.Surface) with this many base
	// ticks per input axis and answers Admit by multilinear interpolation
	// instead of a full Mamdani pass — orders of magnitude faster, with a
	// small, bounded interpolation error (see EXPERIMENTS.md). The soft
	// Outcome label is then derived from the interpolated score's dominant
	// output term rather than the rule-activation trace. 0 keeps exact
	// inference.
	SurfaceResolution int
	// Surfaces, when non-nil, supplies the controller's decision surfaces
	// on every evaluation — the hook the tiered per-cell selector
	// (Tiered.Cell) uses to retarget a cell's resolution at runtime without
	// rebuilding the controller. A (nil, nil) answer selects exact
	// inference. Mutually exclusive with SurfaceResolution.
	Surfaces SurfaceProvider
}

// WithSurfaceCache returns a copy of the config with the decision-surface
// cache enabled at the given per-axis resolution; a non-positive resolution
// selects DefaultSurfaceResolution.
func (c Config) WithSurfaceCache(resolution int) Config {
	if resolution <= 0 {
		resolution = DefaultSurfaceResolution
	}
	c.SurfaceResolution = resolution
	return c
}

// DefaultConfig returns the paper's simulation configuration.
func DefaultConfig() Config {
	return Config{
		Capacity:  CounterMax,
		Threshold: DefaultThreshold,
		Samples:   fuzzy.DefaultSamples,
	}
}

func (c Config) validate() error {
	if c.Capacity <= 0 {
		return fmt.Errorf("core: capacity %v must be positive", c.Capacity)
	}
	if c.Threshold < ARMin || c.Threshold > ARMax {
		return fmt.Errorf("core: threshold %v outside A/R universe [%v, %v]", c.Threshold, ARMin, ARMax)
	}
	if err := ValidateSurfaceResolution(c.SurfaceResolution); err != nil {
		return err
	}
	if c.Surfaces != nil && c.SurfaceResolution != 0 {
		return fmt.Errorf("core: config sets both Surfaces and SurfaceResolution %d", c.SurfaceResolution)
	}
	return nil
}

func (c Config) engineOptions() []fuzzy.Option {
	var opts []fuzzy.Option
	if c.Defuzzifier != nil {
		opts = append(opts, fuzzy.WithDefuzzifier(c.Defuzzifier))
	}
	if c.Samples > 0 {
		opts = append(opts, fuzzy.WithSamples(c.Samples))
	}
	return opts
}

// Decision is the rich, fuzzy-specific verdict produced by the FACS family.
// It embeds the scheme-independent cac.Decision and adds the intermediate
// quantities the paper's block diagram exposes (Fig. 4).
type Decision struct {
	cac.Decision
	// Cv is the correction value produced by FLC1.
	Cv float64
	// Threshold is the admission threshold the score was compared against
	// (fixed for FACS, load-adaptive for FACS-P).
	Threshold float64
}

// FACS is the paper's previous (non-priority) fuzzy admission control
// system: FLC1 -> FLC2 -> fixed-threshold accept, with a single occupancy
// counter feeding the Cs input. It implements cac.Controller and is safe
// for concurrent use.
type FACS struct {
	flc1 *fuzzy.Engine
	flc2 *fuzzy.Engine
	// surf1 and surf2 are the precomputed decision surfaces standing in for
	// flc1/flc2 when cfg.SurfaceResolution > 0; nil means exact inference.
	surf1 *fuzzy.Surface
	surf2 *fuzzy.Surface
	cfg   Config

	mu   sync.Mutex
	used float64
}

var (
	_ cac.Controller = (*FACS)(nil)
	_ cac.Named      = (*FACS)(nil)
)

// NewFACS builds a FACS controller.
func NewFACS(cfg Config) (*FACS, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	flc1, err := NewFLC1(cfg.engineOptions()...)
	if err != nil {
		return nil, fmt.Errorf("core: building FLC1: %w", err)
	}
	flc2, err := NewFLC2(cfg.engineOptions()...)
	if err != nil {
		return nil, fmt.Errorf("core: building FLC2: %w", err)
	}
	f := &FACS{flc1: flc1, flc2: flc2, cfg: cfg}
	if cfg.SurfaceResolution > 0 {
		f.surf1, f.surf2, err = surfacePair(flc1, flc2, cfg.SurfaceResolution, cfg.Samples, cfg.Defuzzifier)
		if err != nil {
			return nil, fmt.Errorf("core: compiling decision surfaces: %w", err)
		}
	}
	return f, nil
}

// SchemeName implements cac.Named.
func (f *FACS) SchemeName() string { return "FACS" }

// Capacity implements cac.Controller.
func (f *FACS) Capacity() float64 { return f.cfg.Capacity }

// Occupancy implements cac.Controller.
func (f *FACS) Occupancy() float64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.used
}

// Evaluate runs the two-stage inference for a request against an explicit
// counter state, without reserving anything. It is the pure decision
// function; Admit wraps it with the occupancy bookkeeping.
func (f *FACS) Evaluate(req cac.Request, counterBU float64) (Decision, error) {
	if err := req.Validate(); err != nil {
		return Decision{}, err
	}
	// Scale occupancy into the Cs universe so that non-default capacities
	// keep the paper's linguistic meaning of Small/Middle/Full.
	cs := counterBU * CounterMax / f.cfg.Capacity
	surf1, surf2 := f.surf1, f.surf2
	if f.cfg.Surfaces != nil {
		surf1, surf2 = f.cfg.Surfaces.Surfaces()
	}
	cv, score, outcome, err := inferScore(f.flc1, f.flc2, surf1, surf2,
		req.Speed, req.Angle, req.Bandwidth, cs)
	if err != nil {
		return Decision{}, err
	}
	d := Decision{
		Decision: cac.Decision{
			Score:   score,
			Outcome: outcome,
		},
		Cv:        cv,
		Threshold: f.cfg.Threshold,
	}
	d.Accept = score > f.cfg.Threshold
	return d, nil
}

// Admit implements cac.Controller. The fuzzy verdict is combined with the
// hard physical constraint that a base station cannot allocate more
// bandwidth than it has.
func (f *FACS) Admit(req cac.Request) cac.Decision {
	f.mu.Lock()
	defer f.mu.Unlock()

	d, err := f.Evaluate(req, f.used)
	if err != nil {
		return cac.Decision{Accept: false, Score: ARMin, Outcome: "error: " + err.Error(), Occupancy: f.used}
	}
	if d.Accept && f.used+req.Bandwidth > f.cfg.Capacity {
		d.Accept = false
		d.Outcome = "capacity"
	}
	if d.Accept {
		f.used += req.Bandwidth
	}
	d.Occupancy = f.used
	return d.Decision
}

// Release implements cac.Controller.
func (f *FACS) Release(req cac.Request) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if req.Bandwidth > f.used+1e-9 {
		return fmt.Errorf("core: FACS release of %v BU exceeds occupancy %v", req.Bandwidth, f.used)
	}
	f.used -= req.Bandwidth
	if f.used < 0 {
		f.used = 0
	}
	return nil
}

// Reset clears the occupancy counter, returning the controller to an empty
// cell. Experiments use it between replications.
func (f *FACS) Reset() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.used = 0
}
