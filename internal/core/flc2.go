package core

import "facsp/internal/fuzzy"

// Universe bounds of the FLC2 linguistic variables, read off the tick marks
// of Fig. 6 of the paper.
const (
	// RequestMin and RequestMax bound the Rq universe in bandwidth units.
	RequestMin = 0
	RequestMax = 10
	// CounterMin and CounterMax bound the counter-state universe in
	// bandwidth units; CounterMax is the base-station capacity used in the
	// paper's simulations (40 BU).
	CounterMin = 0
	CounterMax = 40
	// ARMin and ARMax bound the accept/reject universe.
	ARMin = -1
	ARMax = 1
)

// Class bandwidths used throughout the paper's evaluation (Section 4).
const (
	// TextBU is the requested size of a text connection.
	TextBU = 1
	// VoiceBU is the requested size of a voice connection.
	VoiceBU = 5
	// VideoBU is the requested size of a video connection.
	VideoBU = 10
)

// NewCvInputVariable returns the paper's Cv input to FLC2 (Fig. 6a):
// T(Cv) = {Bad, Normal, Good} over [0,1].
func NewCvInputVariable() fuzzy.Variable {
	return fuzzy.MustVariable("Cv", CvMin, CvMax,
		fuzzy.Term{Name: "Bd", MF: fuzzy.Tri(0, 0, 0.5)},
		fuzzy.Term{Name: "No", MF: fuzzy.Tri(0.5, 0.5, 0.5)},
		fuzzy.Term{Name: "Go", MF: fuzzy.Tri(1, 0.5, 0)},
	)
}

// NewRequestVariable returns the paper's Rq variable (Fig. 6b):
// T(Rq) = {Text, Voice, Video}, positioned at the class bandwidths
// (1, 5, 10 BU map to grades dominated by Tx, Vo, Vi respectively).
func NewRequestVariable() fuzzy.Variable {
	return fuzzy.MustVariable("Rq", RequestMin, RequestMax,
		fuzzy.Term{Name: "Tx", MF: fuzzy.Tri(0, 0, 5)},
		fuzzy.Term{Name: "Vo", MF: fuzzy.Tri(5, 5, 5)},
		fuzzy.Term{Name: "Vi", MF: fuzzy.Tri(10, 5, 0)},
	)
}

// NewCounterVariable returns the paper's Cs variable (Fig. 6c):
// T(Cs) = {Small, Middle, Full} over the 40-BU base-station capacity.
// Callers with a different capacity should scale occupancy into this
// universe (occupied/capacity * CounterMax), which the controllers do.
func NewCounterVariable() fuzzy.Variable {
	return fuzzy.MustVariable("Cs", CounterMin, CounterMax,
		fuzzy.Term{Name: "Sa", MF: fuzzy.Tri(0, 0, 20)},
		fuzzy.Term{Name: "Md", MF: fuzzy.Tri(20, 20, 20)},
		fuzzy.Term{Name: "Fu", MF: fuzzy.Tri(40, 20, 0)},
	)
}

// NewARVariable returns the paper's A/R output variable (Fig. 6d):
// T(A/R) = {Reject, Weak Reject, Not Reject Not Accept, Weak Accept,
// Accept} over [-1,1], spaced on the +/-0.3 and +/-0.6 ticks.
func NewARVariable() fuzzy.Variable {
	return fuzzy.MustVariable("A/R", ARMin, ARMax,
		fuzzy.Term{Name: "R", MF: fuzzy.LeftShoulder(-0.6, -0.3)},
		fuzzy.Term{Name: "WR", MF: fuzzy.Tri(-0.3, 0.3, 0.3)},
		fuzzy.Term{Name: "NRNA", MF: fuzzy.Tri(0, 0.3, 0.3)},
		fuzzy.Term{Name: "WA", MF: fuzzy.Tri(0.3, 0.3, 0.3)},
		fuzzy.Term{Name: "A", MF: fuzzy.RightShoulder(0.3, 0.6)},
	)
}

// frb2 is Table 2 of the paper: the 27 consequents of FRB2 in row order
// (Cv slowest-varying, then Rq, then Cs), exactly as printed.
var frb2 = []string{
	// Bd, Tx
	"A", "NRNA", "NRNA",
	// Bd, Vo
	"A", "NRNA", "WR",
	// Bd, Vi
	"WA", "NRNA", "WR",
	// No, Tx
	"A", "NRNA", "NRNA",
	// No, Vo
	"A", "NRNA", "NRNA",
	// No, Vi
	"WA", "NRNA", "NRNA",
	// Go, Tx
	"A", "A", "NRNA",
	// Go, Vo
	"A", "A", "WR",
	// Go, Vi
	"A", "A", "R",
}

// FRB2Consequents returns a copy of Table 2's consequent column, in the
// paper's rule order (rule 0..26).
func FRB2Consequents() []string { return append([]string(nil), frb2...) }

// NewFLC2 builds the paper's second fuzzy logic controller:
// (Cv, Rq, Cs) -> A/R with the 27-rule FRB2 of Table 2.
func NewFLC2(opts ...fuzzy.Option) (*fuzzy.Engine, error) {
	inputs := []fuzzy.Variable{NewCvInputVariable(), NewRequestVariable(), NewCounterVariable()}
	output := NewARVariable()
	rules, err := fuzzy.RuleTable(inputs, output, frb2)
	if err != nil {
		return nil, err
	}
	return fuzzy.NewEngine("FLC2", inputs, output, rules, opts...)
}
