package core

import (
	"sync"
	"testing"

	"facsp/internal/cac"
)

func newFACSP(t testing.TB) *FACSP {
	t.Helper()
	f, err := NewFACSP(DefaultPConfig())
	if err != nil {
		t.Fatalf("NewFACSP: %v", err)
	}
	return f
}

func TestNewFACSPConfigValidation(t *testing.T) {
	tests := []struct {
		name string
		mut  func(*PConfig)
	}{
		{name: "zero capacity", mut: func(c *PConfig) { c.Capacity = 0 }},
		{name: "theta0 above universe", mut: func(c *PConfig) { c.Theta0 = 2 }},
		{name: "theta0 below universe", mut: func(c *PConfig) { c.Theta0 = -2 }},
		{name: "handoff threshold out of range", mut: func(c *PConfig) { c.HandoffThreshold = 3 }},
		{name: "negative gain", mut: func(c *PConfig) { c.Gain = -1 }},
		{name: "negative rt weight", mut: func(c *PConfig) { c.RTWeight = -1 }},
		{name: "negative nrt weight", mut: func(c *PConfig) { c.NRTWeight = -1 }},
		{name: "negative priority step", mut: func(c *PConfig) { c.PriorityStep = -0.1 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := DefaultPConfig()
			tt.mut(&cfg)
			if _, err := NewFACSP(cfg); err == nil {
				t.Error("invalid config accepted")
			}
		})
	}
}

func TestFACSPDifferentiatedCounters(t *testing.T) {
	f := newFACSP(t)
	text := cac.Request{Speed: 80, Angle: 0, Bandwidth: TextBU}
	voice := cac.Request{Speed: 80, Angle: 0, Bandwidth: VoiceBU, RealTime: true}

	if d := f.Admit(text); !d.Accept {
		t.Fatalf("text rejected: %+v", d)
	}
	if d := f.Admit(voice); !d.Accept {
		t.Fatalf("voice rejected: %+v", d)
	}
	rtc, nrtc := f.Counters()
	if rtc != VoiceBU {
		t.Errorf("RTC = %v, want %v", rtc, float64(VoiceBU))
	}
	if nrtc != TextBU {
		t.Errorf("NRTC = %v, want %v", nrtc, float64(TextBU))
	}
	if got := f.Occupancy(); got != TextBU+VoiceBU {
		t.Errorf("occupancy = %v, want %v", got, float64(TextBU+VoiceBU))
	}
}

func TestFACSPReleasePerClass(t *testing.T) {
	f := newFACSP(t)
	voice := cac.Request{Speed: 80, Angle: 0, Bandwidth: VoiceBU, RealTime: true}
	if d := f.Admit(voice); !d.Accept {
		t.Fatal("voice rejected")
	}
	// Releasing from the wrong class must fail: NRTC holds nothing.
	wrong := voice
	wrong.RealTime = false
	if err := f.Release(wrong); err == nil {
		t.Error("release against empty NRTC did not error")
	}
	if err := f.Release(voice); err != nil {
		t.Fatalf("Release: %v", err)
	}
	rtc, nrtc := f.Counters()
	if rtc != 0 || nrtc != 0 {
		t.Errorf("counters after release = (%v, %v), want (0, 0)", rtc, nrtc)
	}
}

func TestFACSPLightLoadMoreLenientThanFACS(t *testing.T) {
	// At light on-going load FACS-P's adaptive threshold sits below FACS's
	// fixed DefaultThreshold, so every request FACS admits is admitted by
	// FACS-P, and some borderline (NRNA-leaning) request exists that only
	// FACS-P admits. Scan speed/angle/class combinations at 12 BU load.
	facs := newFACS(t)
	facsp := newFACSP(t)

	found := false
	for _, sp := range []float64{5, 30, 60, 100} {
		for an := 0.0; an <= 180; an += 5 {
			for _, bw := range []float64{TextBU, VoiceBU, VideoBU} {
				req := cac.Request{Speed: sp, Angle: an, Bandwidth: bw, RealTime: bw != TextBU}
				dF, err := facs.Evaluate(req, 12)
				if err != nil {
					t.Fatal(err)
				}
				dP, err := facsp.Evaluate(req, 6, 6)
				if err != nil {
					t.Fatal(err)
				}
				if dP.Threshold >= dF.Threshold {
					t.Fatalf("FACS-P threshold %v not below FACS threshold %v at light load", dP.Threshold, dF.Threshold)
				}
				if dP.Accept && !dF.Accept {
					found = true
				}
				if dF.Accept && !dP.Accept {
					t.Fatalf("at light load FACS-P was stricter than FACS for %+v", req)
				}
			}
		}
	}
	if !found {
		t.Error("no request found that lenient FACS-P accepts and FACS rejects at light load")
	}
}

func TestFACSPHeavyLoadStricterThanFACS(t *testing.T) {
	// At heavy on-going load the adaptive threshold must exceed FACS's
	// fixed threshold: the priority system protects on-going calls by
	// admitting fewer new ones (the paper's Fig. 10 high-load regime).
	facsp := newFACSP(t)
	req := cac.Request{Speed: 60, Angle: 30, Bandwidth: VoiceBU, RealTime: true}
	d, err := facsp.Evaluate(req, 24, 8) // 32 of 40 BU on-going
	if err != nil {
		t.Fatal(err)
	}
	if d.Threshold <= DefaultThreshold {
		t.Errorf("heavy-load FACS-P threshold %v not above FACS threshold %v", d.Threshold, DefaultThreshold)
	}
}

func TestFACSPThresholdRisesWithOngoingLoad(t *testing.T) {
	f := newFACSP(t)
	req := cac.Request{Speed: 60, Angle: 30, Bandwidth: VoiceBU, RealTime: true}

	empty, err := f.Evaluate(req, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := f.Evaluate(req, 20, 10)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Threshold <= empty.Threshold {
		t.Errorf("threshold did not rise with load: empty=%v loaded=%v", empty.Threshold, loaded.Threshold)
	}
	if empty.Threshold != DefaultPConfig().Theta0 {
		t.Errorf("empty threshold = %v, want Theta0 = %v", empty.Threshold, DefaultPConfig().Theta0)
	}
}

func TestFACSPRealTimeLoadWeighsMore(t *testing.T) {
	f := newFACSP(t)
	req := cac.Request{Speed: 60, Angle: 30, Bandwidth: TextBU}
	rtHeavy, err := f.Evaluate(req, 20, 0)
	if err != nil {
		t.Fatal(err)
	}
	nrtHeavy, err := f.Evaluate(req, 0, 20)
	if err != nil {
		t.Fatal(err)
	}
	if rtHeavy.Threshold <= nrtHeavy.Threshold {
		t.Errorf("RT-heavy threshold %v not above NRT-heavy threshold %v", rtHeavy.Threshold, nrtHeavy.Threshold)
	}
}

func TestFACSPHandoffPriority(t *testing.T) {
	f := newFACSP(t)
	// Load the cell enough that a receding video *new* call is rejected.
	filler := cac.Request{Speed: 80, Angle: 0, Bandwidth: VoiceBU, RealTime: true}
	for f.Occupancy() < 20 {
		if d := f.Admit(filler); !d.Accept {
			break
		}
	}
	newCall := awayRequest()
	if d := f.Admit(newCall); d.Accept {
		t.Fatalf("loaded cell accepted receding new video call")
	}
	handoff := newCall
	handoff.Handoff = true
	if d := f.Admit(handoff); !d.Accept {
		t.Errorf("handoff of on-going call rejected despite available capacity: %+v", d)
	}
}

func TestFACSPHandoffStillCapacityBound(t *testing.T) {
	cfg := DefaultPConfig()
	cfg.Capacity = 10
	f, err := NewFACSP(cfg)
	if err != nil {
		t.Fatal(err)
	}
	h := cac.Request{Speed: 60, Angle: 0, Bandwidth: VideoBU, RealTime: true, Handoff: true}
	if d := f.Admit(h); !d.Accept {
		t.Fatalf("first handoff rejected: %+v", d)
	}
	d := f.Admit(h)
	if d.Accept {
		t.Fatal("handoff admitted beyond physical capacity")
	}
	if d.Outcome != "capacity" {
		t.Errorf("outcome = %q, want capacity", d.Outcome)
	}
}

func TestFACSPRequestingPriorityExtension(t *testing.T) {
	cfg := DefaultPConfig()
	cfg.PriorityStep = 0.3
	f, err := NewFACSP(cfg)
	if err != nil {
		t.Fatal(err)
	}
	req := cac.Request{Speed: 60, Angle: 60, Bandwidth: VoiceBU, RealTime: true}
	base, err := f.Evaluate(req, 15, 5)
	if err != nil {
		t.Fatal(err)
	}
	req.Priority = 2
	prio, err := f.Evaluate(req, 15, 5)
	if err != nil {
		t.Fatal(err)
	}
	if prio.Threshold >= base.Threshold {
		t.Errorf("priority did not lower threshold: base=%v prio=%v", base.Threshold, prio.Threshold)
	}
}

func TestFACSPHardCapacityBound(t *testing.T) {
	f := newFACSP(t)
	admitted := 0.0
	reqs := []cac.Request{
		{Speed: 100, Angle: 0, Bandwidth: TextBU},
		{Speed: 100, Angle: 0, Bandwidth: VoiceBU, RealTime: true},
		{Speed: 100, Angle: 0, Bandwidth: VideoBU, RealTime: true},
	}
	for i := 0; i < 200; i++ {
		req := reqs[i%len(reqs)]
		if d := f.Admit(req); d.Accept {
			admitted += req.Bandwidth
		}
	}
	if f.Occupancy() > f.Capacity() {
		t.Fatalf("occupancy %v exceeds capacity %v", f.Occupancy(), f.Capacity())
	}
	if f.Occupancy() != admitted {
		t.Errorf("occupancy %v != admitted %v", f.Occupancy(), admitted)
	}
}

func TestFACSPReset(t *testing.T) {
	f := newFACSP(t)
	f.Admit(cac.Request{Speed: 80, Angle: 0, Bandwidth: VoiceBU, RealTime: true})
	f.Admit(cac.Request{Speed: 80, Angle: 0, Bandwidth: TextBU})
	f.Reset()
	rtc, nrtc := f.Counters()
	if rtc != 0 || nrtc != 0 {
		t.Errorf("counters after reset = (%v, %v), want (0, 0)", rtc, nrtc)
	}
}

func TestFACSPSchemeName(t *testing.T) {
	if got := newFACSP(t).SchemeName(); got != "FACS-P" {
		t.Errorf("SchemeName = %q", got)
	}
}

func TestFACSPConcurrentUse(t *testing.T) {
	f := newFACSP(t)
	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(rt bool) {
			defer wg.Done()
			req := cac.Request{Speed: 80, Angle: 0, Bandwidth: TextBU, RealTime: rt}
			for i := 0; i < 50; i++ {
				if d := f.Admit(req); d.Accept {
					if err := f.Release(req); err != nil {
						t.Errorf("Release: %v", err)
						return
					}
				}
			}
		}(w%2 == 0)
	}
	wg.Wait()
	if got := f.Occupancy(); got != 0 {
		t.Errorf("occupancy after balanced admit/release = %v, want 0", got)
	}
}

func BenchmarkFACSPAdmitRelease(b *testing.B) {
	f, err := NewFACSP(DefaultPConfig())
	if err != nil {
		b.Fatal(err)
	}
	req := cac.Request{Speed: 80, Angle: 15, Bandwidth: VoiceBU, RealTime: true}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if d := f.Admit(req); d.Accept {
			if err := f.Release(req); err != nil {
				b.Fatal(err)
			}
		}
	}
}
