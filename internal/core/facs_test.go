package core

import (
	"strings"
	"sync"
	"testing"

	"facsp/internal/cac"
)

// goodRequest is a request the controller should love: fast, heading
// straight at the BS, cheap.
func goodRequest() cac.Request {
	return cac.Request{Speed: 100, Angle: 0, Bandwidth: TextBU}
}

// awayRequest is a request heading directly away from the BS.
func awayRequest() cac.Request {
	return cac.Request{Speed: 100, Angle: 180, Bandwidth: VideoBU, RealTime: true}
}

func newFACS(t testing.TB) *FACS {
	t.Helper()
	f, err := NewFACS(DefaultConfig())
	if err != nil {
		t.Fatalf("NewFACS: %v", err)
	}
	return f
}

func TestNewFACSConfigValidation(t *testing.T) {
	tests := []struct {
		name string
		mut  func(*Config)
	}{
		{name: "zero capacity", mut: func(c *Config) { c.Capacity = 0 }},
		{name: "negative capacity", mut: func(c *Config) { c.Capacity = -40 }},
		{name: "threshold above universe", mut: func(c *Config) { c.Threshold = 1.5 }},
		{name: "threshold below universe", mut: func(c *Config) { c.Threshold = -1.5 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := DefaultConfig()
			tt.mut(&cfg)
			if _, err := NewFACS(cfg); err == nil {
				t.Error("invalid config accepted")
			}
		})
	}
}

func TestFACSAdmitsGoodRequestWhenEmpty(t *testing.T) {
	f := newFACS(t)
	d := f.Admit(goodRequest())
	if !d.Accept {
		t.Fatalf("empty cell rejected an ideal request: %+v", d)
	}
	if d.Score <= 0 {
		t.Errorf("score = %v, want positive", d.Score)
	}
	if got := f.Occupancy(); got != TextBU {
		t.Errorf("occupancy after admit = %v, want %v", got, float64(TextBU))
	}
}

func TestFACSAcceptsEvenPoorRequestsWhenEmpty(t *testing.T) {
	// Table 2 row 6: Bd, Vi, Sa -> WA. Even a receding video user is
	// (weakly) accepted into an almost empty cell.
	f := newFACS(t)
	d := f.Admit(awayRequest())
	if !d.Accept {
		t.Fatalf("empty cell rejected receding video request: %+v", d)
	}
}

func TestFACSRejectsVideoInFullCell(t *testing.T) {
	f := newFACS(t)
	// Fill the cell to its physical capacity with text.
	for i := 0; i < 40; i++ {
		if d := f.Admit(goodRequest()); !d.Accept {
			// Acceptance may taper before 40; stop filling once the fuzzy
			// stage starts rejecting.
			break
		}
	}
	if f.Occupancy() < 20 {
		t.Fatalf("could not load the cell past Middle; occupancy=%v", f.Occupancy())
	}
	d := f.Admit(awayRequest())
	if d.Accept {
		t.Errorf("loaded cell accepted receding video request: %+v", d)
	}
}

func TestFACSHardCapacityBound(t *testing.T) {
	f := newFACS(t)
	admitted := 0.0
	for i := 0; i < 200; i++ {
		req := goodRequest()
		if d := f.Admit(req); d.Accept {
			admitted += req.Bandwidth
		}
	}
	if admitted > f.Capacity() {
		t.Fatalf("admitted %v BU into a %v BU cell", admitted, f.Capacity())
	}
	if got := f.Occupancy(); got != admitted {
		t.Errorf("occupancy = %v, want %v", got, admitted)
	}
}

func TestFACSCapacityOutcome(t *testing.T) {
	// With a tiny capacity the fuzzy stage can say yes while physics says
	// no; the decision must carry the "capacity" outcome.
	cfg := DefaultConfig()
	cfg.Capacity = 1.5
	f, err := NewFACS(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if d := f.Admit(goodRequest()); !d.Accept {
		t.Fatalf("first request rejected: %+v", d)
	}
	d := f.Admit(goodRequest())
	if d.Accept {
		t.Fatalf("second request exceeded capacity but was accepted")
	}
	if d.Outcome != "capacity" {
		t.Errorf("outcome = %q, want capacity", d.Outcome)
	}
}

func TestFACSRelease(t *testing.T) {
	f := newFACS(t)
	req := goodRequest()
	if d := f.Admit(req); !d.Accept {
		t.Fatal("admit failed")
	}
	if err := f.Release(req); err != nil {
		t.Fatalf("Release: %v", err)
	}
	if got := f.Occupancy(); got != 0 {
		t.Errorf("occupancy after release = %v, want 0", got)
	}
}

func TestFACSReleaseUnderflow(t *testing.T) {
	f := newFACS(t)
	if err := f.Release(goodRequest()); err == nil {
		t.Error("releasing into an empty cell did not error")
	}
}

func TestFACSReset(t *testing.T) {
	f := newFACS(t)
	f.Admit(goodRequest())
	f.Reset()
	if got := f.Occupancy(); got != 0 {
		t.Errorf("occupancy after reset = %v, want 0", got)
	}
}

func TestFACSEvaluateIsPure(t *testing.T) {
	f := newFACS(t)
	d1, err := f.Evaluate(goodRequest(), 0)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := f.Evaluate(goodRequest(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if d1 != d2 {
		t.Errorf("Evaluate not deterministic: %+v vs %+v", d1, d2)
	}
	if got := f.Occupancy(); got != 0 {
		t.Errorf("Evaluate reserved bandwidth: occupancy=%v", got)
	}
}

func TestFACSEvaluateScalesCounterState(t *testing.T) {
	// A controller with doubled capacity at half occupancy must behave
	// like the default controller at the same *fraction* of load.
	cfg := DefaultConfig()
	cfg.Capacity = 80
	big, err := NewFACS(cfg)
	if err != nil {
		t.Fatal(err)
	}
	std := newFACS(t)

	reqs := []cac.Request{goodRequest(), awayRequest(), {Speed: 30, Angle: 60, Bandwidth: VoiceBU}}
	for _, req := range reqs {
		dBig, err := big.Evaluate(req, 40) // 50% of 80
		if err != nil {
			t.Fatal(err)
		}
		dStd, err := std.Evaluate(req, 20) // 50% of 40
		if err != nil {
			t.Fatal(err)
		}
		if dBig.Score != dStd.Score {
			t.Errorf("req %+v: score at 50%% load differs: %v (cap 80) vs %v (cap 40)", req, dBig.Score, dStd.Score)
		}
	}
}

func TestFACSInvalidRequest(t *testing.T) {
	f := newFACS(t)
	d := f.Admit(cac.Request{Speed: 10, Angle: 0, Bandwidth: 0})
	if d.Accept {
		t.Error("zero-bandwidth request accepted")
	}
	if !strings.HasPrefix(d.Outcome, "error:") {
		t.Errorf("outcome = %q, want error outcome", d.Outcome)
	}
}

func TestFACSSchemeName(t *testing.T) {
	f := newFACS(t)
	if got := f.SchemeName(); got != "FACS" {
		t.Errorf("SchemeName = %q", got)
	}
	if got := cac.Name(f); got != "FACS" {
		t.Errorf("cac.Name = %q", got)
	}
}

func TestFACSConcurrentAdmitRelease(t *testing.T) {
	f := newFACS(t)
	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			req := goodRequest()
			for i := 0; i < 50; i++ {
				if d := f.Admit(req); d.Accept {
					if err := f.Release(req); err != nil {
						t.Errorf("Release: %v", err)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	if got := f.Occupancy(); got != 0 {
		t.Errorf("occupancy after balanced admit/release = %v, want 0", got)
	}
	if got := f.Occupancy(); got > f.Capacity() {
		t.Errorf("occupancy %v exceeds capacity %v", got, f.Capacity())
	}
}

func BenchmarkFACSAdmitRelease(b *testing.B) {
	f, err := NewFACS(DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	req := goodRequest()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if d := f.Admit(req); d.Accept {
			if err := f.Release(req); err != nil {
				b.Fatal(err)
			}
		}
	}
}
