package core

import (
	"fmt"
	"math"
	"testing"
	"testing/quick"

	"facsp/internal/fuzzy"
)

func newFLC1(t testing.TB) *fuzzy.Engine {
	t.Helper()
	e, err := NewFLC1()
	if err != nil {
		t.Fatalf("NewFLC1: %v", err)
	}
	return e
}

func TestFLC1Shape(t *testing.T) {
	e := newFLC1(t)
	if got := len(e.Rules()); got != 63 {
		t.Fatalf("FRB1 has %d rules, want 63 (Table 1)", got)
	}
	ins := e.Inputs()
	if len(ins) != 3 {
		t.Fatalf("FLC1 has %d inputs, want 3", len(ins))
	}
	wantTerms := map[string]int{"Sp": 3, "An": 7, "Sr": 3}
	for _, in := range ins {
		if got := len(in.Terms); got != wantTerms[in.Name] {
			t.Errorf("input %q has %d terms, want %d", in.Name, got, wantTerms[in.Name])
		}
	}
	if got := len(e.Output().Terms); got != 9 {
		t.Errorf("Cv output has %d terms, want 9", got)
	}
}

// table1 is a verbatim transcription of Table 1 used to cross-check the
// rule base construction; each row is {Sp, An, Sr, Cv}.
var table1 = [][4]string{
	{"Sl", "B1", "Sm", "Cv1"}, {"Sl", "B1", "Me", "Cv3"}, {"Sl", "B1", "Bi", "Cv2"},
	{"Sl", "L1", "Sm", "Cv1"}, {"Sl", "L1", "Me", "Cv4"}, {"Sl", "L1", "Bi", "Cv3"},
	{"Sl", "L2", "Sm", "Cv2"}, {"Sl", "L2", "Me", "Cv6"}, {"Sl", "L2", "Bi", "Cv4"},
	{"Sl", "St", "Sm", "Cv5"}, {"Sl", "St", "Me", "Cv9"}, {"Sl", "St", "Bi", "Cv7"},
	{"Sl", "R1", "Sm", "Cv2"}, {"Sl", "R1", "Me", "Cv6"}, {"Sl", "R1", "Bi", "Cv4"},
	{"Sl", "R2", "Sm", "Cv1"}, {"Sl", "R2", "Me", "Cv4"}, {"Sl", "R2", "Bi", "Cv3"},
	{"Sl", "B2", "Sm", "Cv1"}, {"Sl", "B2", "Me", "Cv3"}, {"Sl", "B2", "Bi", "Cv2"},
	{"Mi", "B1", "Sm", "Cv1"}, {"Mi", "B1", "Me", "Cv2"}, {"Mi", "B1", "Bi", "Cv1"},
	{"Mi", "L1", "Sm", "Cv1"}, {"Mi", "L1", "Me", "Cv4"}, {"Mi", "L1", "Bi", "Cv3"},
	{"Mi", "L2", "Sm", "Cv1"}, {"Mi", "L2", "Me", "Cv5"}, {"Mi", "L2", "Bi", "Cv3"},
	{"Mi", "St", "Sm", "Cv8"}, {"Mi", "St", "Me", "Cv9"}, {"Mi", "St", "Bi", "Cv9"},
	{"Mi", "R1", "Sm", "Cv1"}, {"Mi", "R1", "Me", "Cv5"}, {"Mi", "R1", "Bi", "Cv3"},
	{"Mi", "R2", "Sm", "Cv1"}, {"Mi", "R2", "Me", "Cv4"}, {"Mi", "R2", "Bi", "Cv3"},
	{"Mi", "B2", "Sm", "Cv1"}, {"Mi", "B2", "Me", "Cv2"}, {"Mi", "B2", "Bi", "Cv1"},
	{"Fa", "B1", "Sm", "Cv1"}, {"Fa", "B1", "Me", "Cv2"}, {"Fa", "B1", "Bi", "Cv1"},
	{"Fa", "L1", "Sm", "Cv1"}, {"Fa", "L1", "Me", "Cv3"}, {"Fa", "L1", "Bi", "Cv2"},
	{"Fa", "L2", "Sm", "Cv2"}, {"Fa", "L2", "Me", "Cv5"}, {"Fa", "L2", "Bi", "Cv3"},
	{"Fa", "St", "Sm", "Cv9"}, {"Fa", "St", "Me", "Cv9"}, {"Fa", "St", "Bi", "Cv9"},
	{"Fa", "R1", "Sm", "Cv2"}, {"Fa", "R1", "Me", "Cv5"}, {"Fa", "R1", "Bi", "Cv3"},
	{"Fa", "R2", "Sm", "Cv1"}, {"Fa", "R2", "Me", "Cv3"}, {"Fa", "R2", "Bi", "Cv2"},
	{"Fa", "B2", "Sm", "Cv1"}, {"Fa", "B2", "Me", "Cv2"}, {"Fa", "B2", "Bi", "Cv1"},
}

func TestFRB1MatchesTable1(t *testing.T) {
	e := newFLC1(t)
	ins := e.Inputs()
	out := e.Output()
	rules := e.Rules()
	if len(rules) != len(table1) {
		t.Fatalf("rule count %d != table rows %d", len(rules), len(table1))
	}
	for i, row := range table1 {
		r := rules[i]
		got := [4]string{
			ins[0].Terms[r.When[0]].Name,
			ins[1].Terms[r.When[1]].Name,
			ins[2].Terms[r.When[2]].Name,
			out.Terms[r.Then].Name,
		}
		if got != row {
			t.Errorf("rule %d = %v, want %v (Table 1)", i, got, row)
		}
	}
}

func TestFRB1ConsequentsCopy(t *testing.T) {
	a := FRB1Consequents()
	if len(a) != 63 {
		t.Fatalf("FRB1Consequents has %d entries, want 63", len(a))
	}
	a[0] = "tampered"
	if b := FRB1Consequents(); b[0] != "Cv1" {
		t.Error("FRB1Consequents returned shared backing storage")
	}
}

func TestFLC1MembershipAnchors(t *testing.T) {
	// Crossover points and peaks from the tick marks of Fig. 5.
	sp := NewSpeedVariable()
	an := NewAngleVariable()
	sr := NewServiceVariable()

	tests := []struct {
		v    fuzzy.Variable
		x    float64
		term string
		want float64
	}{
		{v: sp, x: 0, term: "Sl", want: 1},
		{v: sp, x: 30, term: "Sl", want: 0.5},
		{v: sp, x: 30, term: "Mi", want: 0.5},
		{v: sp, x: 60, term: "Mi", want: 1},
		{v: sp, x: 90, term: "Fa", want: 0.5},
		{v: sp, x: 120, term: "Fa", want: 1},
		{v: an, x: -180, term: "B1", want: 1},
		{v: an, x: -135, term: "B1", want: 1},
		{v: an, x: -112.5, term: "B1", want: 0.5},
		{v: an, x: -90, term: "L1", want: 1},
		{v: an, x: -45, term: "L2", want: 1},
		{v: an, x: 0, term: "St", want: 1},
		{v: an, x: 22.5, term: "St", want: 0.5},
		{v: an, x: 22.5, term: "R1", want: 0.5},
		{v: an, x: 45, term: "R1", want: 1},
		{v: an, x: 90, term: "R2", want: 1},
		{v: an, x: 135, term: "B2", want: 1},
		{v: an, x: 180, term: "B2", want: 1},
		{v: sr, x: 0, term: "Sm", want: 1},
		{v: sr, x: 2.5, term: "Sm", want: 0.5},
		{v: sr, x: 5, term: "Me", want: 1},
		{v: sr, x: 10, term: "Bi", want: 1},
	}
	for _, tt := range tests {
		t.Run(fmt.Sprintf("%s_%s_at_%v", tt.v.Name, tt.term, tt.x), func(t *testing.T) {
			idx := tt.v.TermIndex(tt.term)
			if idx < 0 {
				t.Fatalf("variable %q has no term %q", tt.v.Name, tt.term)
			}
			got := tt.v.Terms[idx].MF.Grade(tt.x)
			if math.Abs(got-tt.want) > 1e-12 {
				t.Errorf("mu_%s(%v) = %v, want %v", tt.term, tt.x, got, tt.want)
			}
		})
	}
}

func TestFLC1RuspiniPartitions(t *testing.T) {
	// Each FLC1 input should form a partition of unity over its universe —
	// the standard reading of Fig. 5's evenly spaced overlapping terms.
	vars := []fuzzy.Variable{NewSpeedVariable(), NewAngleVariable(), NewServiceVariable(), NewCvVariable()}
	for _, v := range vars {
		t.Run(v.Name, func(t *testing.T) {
			const steps = 977 // prime, avoids landing only on special points
			for i := 0; i <= steps; i++ {
				x := v.Min + (v.Max-v.Min)*float64(i)/steps
				sum := 0.0
				for _, g := range v.Fuzzify(x) {
					sum += g
				}
				if math.Abs(sum-1) > 1e-9 {
					t.Fatalf("grades at %s=%v sum to %v, want 1", v.Name, x, sum)
				}
			}
		})
	}
}

func TestFLC1StraightFastBeatsAwayFast(t *testing.T) {
	e := newFLC1(t)
	straight, err := e.Infer(100, 0, 5)
	if err != nil {
		t.Fatal(err)
	}
	away, err := e.Infer(100, 180, 5)
	if err != nil {
		t.Fatal(err)
	}
	if straight <= away {
		t.Errorf("Cv(straight)=%v should exceed Cv(away)=%v", straight, away)
	}
	if straight < 0.8 {
		t.Errorf("Cv for fast straight voice = %v, want near the Cv9 region (>0.8)", straight)
	}
	if away > 0.25 {
		t.Errorf("Cv for fast receding voice = %v, want near the Cv1/Cv2 region (<0.25)", away)
	}
}

func TestFLC1AngleSymmetry(t *testing.T) {
	// FRB1 is mirror-symmetric in the angle (L1<->R2? no: L1<->R1, L2<->R2,
	// B1<->B2), so Cv(an) must equal Cv(-an).
	e := newFLC1(t)
	for _, sp := range []float64{0, 20, 60, 100, 120} {
		for _, sr := range []float64{1, 5, 10} {
			for an := 0.0; an <= 180; an += 7.5 {
				pos, err := e.Infer(sp, an, sr)
				if err != nil {
					t.Fatal(err)
				}
				neg, err := e.Infer(sp, -an, sr)
				if err != nil {
					t.Fatal(err)
				}
				if math.Abs(pos-neg) > 1e-9 {
					t.Fatalf("Cv not angle-symmetric at sp=%v sr=%v an=%v: %v vs %v", sp, sr, an, pos, neg)
				}
			}
		}
	}
}

func TestFLC1CvDecreasesWithAngle(t *testing.T) {
	// The Fig. 9 mechanism: for a mid-speed voice request, Cv should be
	// non-increasing as the trajectory turns away from the BS over the
	// angles the paper plots (0..90).
	e := newFLC1(t)
	prev := math.Inf(1)
	for _, an := range []float64{0, 30, 50, 60, 90} {
		cv, err := e.Infer(60, an, 5)
		if err != nil {
			t.Fatal(err)
		}
		if cv > prev+1e-9 {
			t.Errorf("Cv at angle %v = %v exceeds Cv at smaller angle (%v)", an, cv, prev)
		}
		prev = cv
	}
}

// Property: Cv is always within [0,1] for any input combination.
func TestQuickFLC1OutputInRange(t *testing.T) {
	e := newFLC1(t)
	f := func(sp, an, sr float64) bool {
		spv := math.Mod(math.Abs(sp), 120)
		anv := math.Mod(an, 180)
		srv := math.Mod(math.Abs(sr), 10)
		cv, err := e.Infer(spv, anv, srv)
		return err == nil && cv >= 0 && cv <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkFLC1Infer(b *testing.B) {
	e := newFLC1(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Infer(72.5, 33.0, 5); err != nil {
			b.Fatal(err)
		}
	}
}
