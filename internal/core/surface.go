package core

import (
	"fmt"
	"reflect"
	"sync"
	"sync/atomic"

	"facsp/internal/fuzzy"
	"facsp/internal/metrics"
)

// DefaultSurfaceResolution is the per-axis base resolution used when a
// decision-surface cache is enabled without an explicit resolution (see
// Config.SurfaceResolution and PConfig.SurfaceResolution).
const DefaultSurfaceResolution = fuzzy.DefaultSurfaceResolution

// surfaceKey identifies one shareable compiled surface. The paper's FLC1
// and FLC2 are static rule bases, so two controllers with the same
// resolution, integration density and defuzzifier value produce
// bit-identical surfaces; compiling once per process and sharing the
// immutable result is what keeps per-cell controller construction cheap in
// the experiment runner (thousands of controllers per sweep).
type surfaceKey struct {
	engine     string
	resolution int
	samples    int
	// defuzz is the configured defuzzifier value (nil = default Centroid).
	// Only comparable defuzzifiers are cached — value equality must imply
	// behavioural equality, which holds for the stateless defuzzifiers in
	// internal/fuzzy.
	defuzz fuzzy.Defuzzifier
}

var surfaceCache = struct {
	mu sync.Mutex
	m  map[surfaceKey]*surfaceEntry
}{m: make(map[surfaceKey]*surfaceEntry)}

// surfaceCacheHits / surfaceCacheMisses count compileSurface lookups that
// found (or had to create) a shared surface entry; a miss is one real
// surface compilation per process. Exposed as process-wide scalar
// families in the /metrics exposition.
var surfaceCacheHits, surfaceCacheMisses atomic.Uint64

func init() {
	metrics.RegisterScalar("facs_surface_cache_hits_total",
		"Decision-surface compilations served from the shared process-wide cache.",
		surfaceCacheHits.Load)
	metrics.RegisterScalar("facs_surface_cache_misses_total",
		"Decision-surface compilations that could not be shared (first use per key, or uncacheable defuzzifier).",
		surfaceCacheMisses.Load)
}

// SurfaceCacheCounters reports the shared surface cache's hit and miss
// counts since process start.
func SurfaceCacheCounters() (hits, misses uint64) {
	return surfaceCacheHits.Load(), surfaceCacheMisses.Load()
}

type surfaceEntry struct {
	once sync.Once
	s    *fuzzy.Surface
	err  error
}

// compileSurface compiles engine's decision surface at the given per-axis
// resolution. Compilations are shared through the process-wide cache keyed
// by defuzzifier value; defuzzifiers of non-comparable types cannot be
// keyed and compile privately.
func compileSurface(e *fuzzy.Engine, resolution, samples int, defuzz fuzzy.Defuzzifier) (*fuzzy.Surface, error) {
	if defuzz != nil && !reflect.TypeOf(defuzz).Comparable() {
		surfaceCacheMisses.Add(1)
		return fuzzy.NewSurface(e, resolution)
	}
	key := surfaceKey{engine: e.Name(), resolution: resolution, samples: samples, defuzz: defuzz}
	surfaceCache.mu.Lock()
	ent, ok := surfaceCache.m[key]
	if !ok {
		ent = &surfaceEntry{}
		surfaceCache.m[key] = ent
	}
	surfaceCache.mu.Unlock()
	if ok {
		surfaceCacheHits.Add(1)
	} else {
		surfaceCacheMisses.Add(1)
	}
	ent.once.Do(func() { ent.s, ent.err = fuzzy.NewSurface(e, resolution) })
	return ent.s, ent.err
}

// inferScore runs the FLC1 -> FLC2 pipeline for one request, exact or
// surface-backed per stage, and returns the correction value, the crisp A/R
// score, and the soft outcome label. The exact path labels the outcome with
// the most-activated rule consequent (the inference trace); the surface
// path, which has no trace, labels it with the output term dominant at the
// interpolated score — identical wherever the score is unambiguous.
func inferScore(flc1, flc2 *fuzzy.Engine, surf1, surf2 *fuzzy.Surface,
	speed, angle, bandwidth, cs float64) (cv, score float64, outcome string, err error) {

	if surf1 != nil {
		cv, err = surf1.Infer(speed, angle, bandwidth)
	} else {
		cv, err = flc1.Infer(speed, angle, bandwidth)
	}
	if err != nil {
		return 0, 0, "", fmt.Errorf("core: FLC1: %w", err)
	}

	if surf2 != nil {
		score, err = surf2.Infer(cv, bandwidth, cs)
		if err != nil {
			return 0, 0, "", fmt.Errorf("core: FLC2: %w", err)
		}
		out := surf2.Output()
		if ti := out.DominantTerm(score); ti >= 0 {
			outcome = out.Terms[ti].Name
		}
		return cv, score, outcome, nil
	}
	res, err := flc2.InferDetail(cv, bandwidth, cs)
	if err != nil {
		return 0, 0, "", fmt.Errorf("core: FLC2: %w", err)
	}
	return cv, res.Crisp, flc2.Output().Terms[res.BestTerm].Name, nil
}

// surfacePair compiles the FLC1/FLC2 surfaces for a controller whose config
// requested SurfaceResolution > 0.
func surfacePair(flc1, flc2 *fuzzy.Engine, resolution, samples int, defuzz fuzzy.Defuzzifier) (s1, s2 *fuzzy.Surface, err error) {
	if samples <= 0 {
		samples = fuzzy.DefaultSamples
	}
	if s1, err = compileSurface(flc1, resolution, samples, defuzz); err != nil {
		return nil, nil, err
	}
	if s2, err = compileSurface(flc2, resolution, samples, defuzz); err != nil {
		return nil, nil, err
	}
	return s1, s2, nil
}
