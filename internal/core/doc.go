// Package core implements the paper's contribution: the fuzzy call
// admission control system (FACS) and its priority-aware extension (FACS-P)
// for wireless cellular networks.
//
// The package builds the two Mamdani fuzzy logic controllers exactly as
// published:
//
//   - FLC1 (Fig. 5, Table 1): user Speed, user Angle and Service request
//     size -> Correction value Cv in [0,1], through 63 rules.
//   - FLC2 (Fig. 6, Table 2): Cv, Request class bandwidth and Counter state
//     -> soft Accept/Reject value in [-1,1], through 27 rules.
//
// FACS admits a request when the defuzzified A/R value clears a fixed
// threshold. FACS-P adds the paper's priority of on-going connections: a
// differentiated-service stage (Ds) tracks admitted real-time and
// non-real-time bandwidth in the RTC and NRTC counters, and the admission
// threshold for new calls rises with that on-going load, protecting the QoS
// of calls already in progress. Handoffs of on-going calls receive
// priority over new call requests.
//
// Both controllers implement the cac.Controller interface and are safe for
// concurrent use.
package core
