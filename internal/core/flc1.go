package core

import (
	"strconv"

	"facsp/internal/fuzzy"
)

// Universe bounds and anchor points of the FLC1 linguistic variables,
// read off the tick marks of Fig. 5 of the paper.
const (
	// SpeedMin and SpeedMax bound the user speed universe in km/h.
	SpeedMin = 0
	SpeedMax = 120
	// AngleMin and AngleMax bound the user angle universe in degrees.
	AngleMin = -180
	AngleMax = 180
	// ServiceMin and ServiceMax bound the service-request universe in
	// bandwidth units (text=1, voice=5, video=10).
	ServiceMin = 0
	ServiceMax = 10
	// CvMin and CvMax bound the correction-value universe.
	CvMin = 0
	CvMax = 1
)

// NewSpeedVariable returns the paper's Sp variable (Fig. 5a):
// T(Sp) = {Slow, Middle, Fast}. Slow peaks at standstill and vanishes at
// 60 km/h, Middle peaks at 60, Fast saturates at 120; the Sl/Mi crossover
// sits on the 30 km/h tick.
func NewSpeedVariable() fuzzy.Variable {
	return fuzzy.MustVariable("Sp", SpeedMin, SpeedMax,
		fuzzy.Term{Name: "Sl", MF: fuzzy.Tri(0, 0, 60)},
		fuzzy.Term{Name: "Mi", MF: fuzzy.Tri(60, 60, 60)},
		fuzzy.Term{Name: "Fa", MF: fuzzy.RightShoulder(60, 120)},
	)
}

// NewAngleVariable returns the paper's An variable (Fig. 5b):
// T(An) = {Back1, Left1, Left2, Straight, Right1, Right2, Back2}, seven
// terms spaced 45 degrees apart with shoulder terms at the +/-180 wrap.
// An angle of 0 means the user is heading straight at the base station.
func NewAngleVariable() fuzzy.Variable {
	return fuzzy.MustVariable("An", AngleMin, AngleMax,
		fuzzy.Term{Name: "B1", MF: fuzzy.LeftShoulder(-135, -90)},
		fuzzy.Term{Name: "L1", MF: fuzzy.Tri(-90, 45, 45)},
		fuzzy.Term{Name: "L2", MF: fuzzy.Tri(-45, 45, 45)},
		fuzzy.Term{Name: "St", MF: fuzzy.Tri(0, 45, 45)},
		fuzzy.Term{Name: "R1", MF: fuzzy.Tri(45, 45, 45)},
		fuzzy.Term{Name: "R2", MF: fuzzy.Tri(90, 45, 45)},
		fuzzy.Term{Name: "B2", MF: fuzzy.RightShoulder(90, 135)},
	)
}

// NewServiceVariable returns the paper's Sr variable (Fig. 5c):
// T(Sr) = {Small, Medium, Big} over 0-10 bandwidth units.
func NewServiceVariable() fuzzy.Variable {
	return fuzzy.MustVariable("Sr", ServiceMin, ServiceMax,
		fuzzy.Term{Name: "Sm", MF: fuzzy.Tri(0, 0, 5)},
		fuzzy.Term{Name: "Me", MF: fuzzy.Tri(5, 5, 5)},
		fuzzy.Term{Name: "Bi", MF: fuzzy.Tri(10, 5, 0)},
	)
}

// NewCvVariable returns the paper's Cv output variable (Fig. 5d): nine
// evenly spaced terms Cv1..Cv9 over [0,1], with shoulder plateaus at the
// ends so that the extreme rules saturate. Cvk peaks at k/10.
func NewCvVariable() fuzzy.Variable {
	terms := make([]fuzzy.Term, 0, 9)
	terms = append(terms, fuzzy.Term{Name: "Cv1", MF: fuzzy.Trap(0, 0.1, 0, 0.1)})
	for k := 2; k <= 8; k++ {
		terms = append(terms, fuzzy.Term{
			Name: "Cv" + strconv.Itoa(k),
			MF:   fuzzy.Tri(float64(k)/10, 0.1, 0.1),
		})
	}
	terms = append(terms, fuzzy.Term{Name: "Cv9", MF: fuzzy.Trap(0.9, 1, 0.1, 0)})
	return fuzzy.MustVariable("Cv", CvMin, CvMax, terms...)
}

// frb1 is Table 1 of the paper: the 63 consequents of FRB1 in row order
// (Sp slowest-varying, then An, then Sr), exactly as printed.
var frb1 = []string{
	// Sl, B1
	"Cv1", "Cv3", "Cv2",
	// Sl, L1
	"Cv1", "Cv4", "Cv3",
	// Sl, L2
	"Cv2", "Cv6", "Cv4",
	// Sl, St
	"Cv5", "Cv9", "Cv7",
	// Sl, R1
	"Cv2", "Cv6", "Cv4",
	// Sl, R2
	"Cv1", "Cv4", "Cv3",
	// Sl, B2
	"Cv1", "Cv3", "Cv2",
	// Mi, B1
	"Cv1", "Cv2", "Cv1",
	// Mi, L1
	"Cv1", "Cv4", "Cv3",
	// Mi, L2
	"Cv1", "Cv5", "Cv3",
	// Mi, St
	"Cv8", "Cv9", "Cv9",
	// Mi, R1
	"Cv1", "Cv5", "Cv3",
	// Mi, R2
	"Cv1", "Cv4", "Cv3",
	// Mi, B2
	"Cv1", "Cv2", "Cv1",
	// Fa, B1
	"Cv1", "Cv2", "Cv1",
	// Fa, L1
	"Cv1", "Cv3", "Cv2",
	// Fa, L2
	"Cv2", "Cv5", "Cv3",
	// Fa, St
	"Cv9", "Cv9", "Cv9",
	// Fa, R1
	"Cv2", "Cv5", "Cv3",
	// Fa, R2
	"Cv1", "Cv3", "Cv2",
	// Fa, B2
	"Cv1", "Cv2", "Cv1",
}

// FRB1Consequents returns a copy of Table 1's consequent column, in the
// paper's rule order (rule 0..62).
func FRB1Consequents() []string { return append([]string(nil), frb1...) }

// NewFLC1 builds the paper's first fuzzy logic controller:
// (Sp, An, Sr) -> Cv with the 63-rule FRB1 of Table 1.
func NewFLC1(opts ...fuzzy.Option) (*fuzzy.Engine, error) {
	inputs := []fuzzy.Variable{NewSpeedVariable(), NewAngleVariable(), NewServiceVariable()}
	output := NewCvVariable()
	rules, err := fuzzy.RuleTable(inputs, output, frb1)
	if err != nil {
		return nil, err
	}
	return fuzzy.NewEngine("FLC1", inputs, output, rules, opts...)
}
