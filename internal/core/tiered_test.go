package core

import (
	"fmt"
	"math"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"

	"facsp/internal/cac"
	"facsp/internal/fuzzy"
	"facsp/internal/rng"
)

// --- configuration validation -------------------------------------------

func TestTierConfigValidateRejects(t *testing.T) {
	valid := DefaultTierConfig()
	mutate := func(f func(*TierConfig)) TierConfig {
		c := valid
		c.Tiers = append([]SurfaceTier(nil), valid.Tiers...)
		f(&c)
		return c
	}
	cases := []struct {
		name string
		cfg  TierConfig
		want string // substring of the error
	}{
		{"empty ladder", mutate(func(c *TierConfig) { c.Tiers = nil }), "at least one tier"},
		{"NaN min rate", mutate(func(c *TierConfig) { c.Tiers[1].MinRate = math.NaN() }), "finite"},
		{"Inf min rate", mutate(func(c *TierConfig) { c.Tiers[2].MinRate = math.Inf(1) }), "finite"},
		{"negative min rate", mutate(func(c *TierConfig) { c.Tiers[0].MinRate = -1 }), "non-negative"},
		{"first min rate not 0", mutate(func(c *TierConfig) { c.Tiers[0].MinRate = 0.1 }), "must be 0"},
		{"descending min rates", mutate(func(c *TierConfig) { c.Tiers[2].MinRate = 0.25 }), "strictly ascending"},
		{"equal min rates", mutate(func(c *TierConfig) { c.Tiers[2].MinRate = c.Tiers[1].MinRate }), "strictly ascending"},
		{"resolution 1", mutate(func(c *TierConfig) { c.Tiers[1].Resolution = 1 }), "0 (exact) or >= 2"},
		{"negative resolution", mutate(func(c *TierConfig) { c.Tiers[0].Resolution = -3 }), "0 (exact) or >= 2"},
		{"exact below the hottest tier", mutate(func(c *TierConfig) { c.Tiers[1].Resolution = 0 }), "hottest tier"},
		{"descending resolutions", mutate(func(c *TierConfig) { c.Tiers[2].Resolution = 17 }), "strictly ascending"},
		{"equal resolutions", mutate(func(c *TierConfig) { c.Tiers[1].Resolution = 9 }), "strictly ascending"},
		{"zero hysteresis", mutate(func(c *TierConfig) { c.Hysteresis = 0 }), "hysteresis"},
		{"hysteresis above 1", mutate(func(c *TierConfig) { c.Hysteresis = 1.01 }), "hysteresis"},
		{"NaN hysteresis", mutate(func(c *TierConfig) { c.Hysteresis = math.NaN() }), "hysteresis"},
		{"zero half-life", mutate(func(c *TierConfig) { c.HalfLife = 0 }), "half-life"},
		{"negative half-life", mutate(func(c *TierConfig) { c.HalfLife = -5 }), "half-life"},
		{"NaN half-life", mutate(func(c *TierConfig) { c.HalfLife = math.NaN() }), "half-life"},
		{"Inf half-life", mutate(func(c *TierConfig) { c.HalfLife = math.Inf(1) }), "half-life"},
		{"zero interval", mutate(func(c *TierConfig) { c.Interval = 0 }), "interval"},
		{"NaN interval", mutate(func(c *TierConfig) { c.Interval = math.NaN() }), "interval"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.cfg.Validate()
			if err == nil {
				t.Fatalf("Validate accepted %+v", tc.cfg)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestTierConfigValidateAccepts(t *testing.T) {
	cases := map[string]TierConfig{
		"default": DefaultTierConfig(),
		"single tier": {Tiers: []SurfaceTier{{Resolution: 33}},
			Hysteresis: 1, HalfLife: 1, Interval: 1},
		"exact hottest tier": {Tiers: []SurfaceTier{{Resolution: 9}, {Resolution: 0, MinRate: 4}},
			Hysteresis: 0.5, HalfLife: 30, Interval: 1},
	}
	for name, cfg := range cases {
		if err := cfg.Validate(); err != nil {
			t.Errorf("%s: Validate() = %v", name, err)
		}
	}
}

func TestParseTiers(t *testing.T) {
	got, err := ParseTiers("default")
	if err != nil {
		t.Fatal(err)
	}
	if want := DefaultTierConfig(); fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("ParseTiers(default) = %+v, want %+v", got, want)
	}

	got, err = ParseTiers("9@0, 17@2, 0@50")
	if err != nil {
		t.Fatal(err)
	}
	want := []SurfaceTier{{9, 0}, {17, 2}, {0, 50}}
	if len(got.Tiers) != len(want) {
		t.Fatalf("ParseTiers ladder %+v, want %+v", got.Tiers, want)
	}
	for i, tr := range want {
		if got.Tiers[i] != tr {
			t.Errorf("tier %d = %+v, want %+v", i, got.Tiers[i], tr)
		}
	}
	// Defaults carry over for the sampling parameters.
	def := DefaultTierConfig()
	if got.Hysteresis != def.Hysteresis || got.HalfLife != def.HalfLife || got.Interval != def.Interval {
		t.Errorf("ParseTiers dropped the sampling defaults: %+v", got)
	}

	for _, bad := range []string{
		"", "9", "@", "9@", "@0", "x@0", "9@y", "9@0;17@2",
		"17@0,9@2",   // descending resolutions
		"9@1",        // first min rate not 0
		"9@0,17@NaN", // NaN parses as a float but fails validation
		"9@0,1@5",    // resolution 1
	} {
		if _, err := ParseTiers(bad); err == nil {
			t.Errorf("ParseTiers(%q) accepted", bad)
		}
	}
}

// --- hysteresis ----------------------------------------------------------

// TestTierHysteresisFixedPoint: at any constant rate, from any starting
// tier, the selector reaches a fixed point after at most one transition —
// the no-flapping property of the promotion/demotion rule.
func TestTierHysteresisFixedPoint(t *testing.T) {
	cfg := DefaultTierConfig()
	prop := func(cur uint8, rate float64) bool {
		from := int(cur) % len(cfg.Tiers)
		rate = math.Abs(rate)
		if math.IsNaN(rate) || math.IsInf(rate, 0) {
			return true
		}
		first := cfg.next(from, rate)
		return cfg.next(first, rate) == first
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// TestTierHysteresisBand: a constant rate inside the hysteresis band
// [MinRate*Hysteresis, MinRate) of a boundary holds whichever side of the
// boundary the cell is already on — no oscillation near a threshold.
func TestTierHysteresisBand(t *testing.T) {
	cfg := DefaultTierConfig()
	for k := 1; k < len(cfg.Tiers); k++ {
		lo, hi := cfg.Tiers[k].MinRate*cfg.Hysteresis, cfg.Tiers[k].MinRate
		for _, frac := range []float64{0, 0.25, 0.5, 0.99} {
			rate := lo + frac*(hi-lo)
			if got := cfg.next(k, rate); got != k {
				t.Errorf("tier %d at in-band rate %v demoted to %d", k, rate, got)
			}
			if got := cfg.next(k-1, rate); got != k-1 {
				t.Errorf("tier %d at in-band rate %v moved to %d", k-1, rate, got)
			}
		}
		// Outside the band the boundary is sharp in both directions.
		if got := cfg.next(k-1, hi); got != k {
			t.Errorf("tier %d at rate %v did not promote to %d", k-1, hi, got)
		}
		if below := math.Nextafter(lo, 0); cfg.next(k, below) != k-1 {
			t.Errorf("tier %d at rate %v did not demote", k, below)
		}
	}
}

// TestTierForMatchesNextFromCold pins TierFor as the hysteresis-free
// static assignment the simulation plane uses.
func TestTierForMatchesNextFromCold(t *testing.T) {
	cfg := DefaultTierConfig()
	for rate, want := range map[float64]int{
		0: 0, 0.49: 0, 0.5: 1, 7.99: 1, 8: 2, 1e9: 2,
	} {
		if got := cfg.TierFor(rate); got != want {
			t.Errorf("TierFor(%v) = %d, want %d", rate, got, want)
		}
	}
}

// --- selector lifecycle --------------------------------------------------

// countingCompiler returns a tier compiler that counts compilations and
// hands out distinct (but stable per resolution) surface pairs, so tests
// can both count recompiles and detect torn installs.
func countingCompiler(t *testing.T, resolutions []int) (compile func(int) (*fuzzy.Surface, *fuzzy.Surface, error), calls *atomic.Uint64, pairs map[int][2]*fuzzy.Surface) {
	t.Helper()
	pairs = make(map[int][2]*fuzzy.Surface, len(resolutions))
	for _, res := range resolutions {
		if res == 0 {
			pairs[0] = [2]*fuzzy.Surface{nil, nil}
			continue
		}
		_, s1 := tinySurface(t, res)
		_, s2 := tinySurface(t, res)
		pairs[res] = [2]*fuzzy.Surface{s1, s2}
	}
	calls = new(atomic.Uint64)
	return func(res int) (*fuzzy.Surface, *fuzzy.Surface, error) {
		calls.Add(1)
		p, ok := pairs[res]
		if !ok {
			return nil, nil, fmt.Errorf("unexpected resolution %d", res)
		}
		return p[0], p[1], nil
	}, calls, pairs
}

// tinySurface compiles a minimal one-input surface (distinct pointer per
// call) for selector plumbing tests that never evaluate it.
func tinySurface(t *testing.T, resolution int) (*fuzzy.Engine, *fuzzy.Surface) {
	t.Helper()
	in := fuzzy.MustVariable("x", 0, 1,
		fuzzy.Term{Name: "lo", MF: fuzzy.Tri(0, 0, 1)},
		fuzzy.Term{Name: "hi", MF: fuzzy.Tri(1, 1, 0)},
	)
	out := fuzzy.MustVariable("y", 0, 1,
		fuzzy.Term{Name: "lo", MF: fuzzy.Tri(0, 0, 1)},
		fuzzy.Term{Name: "hi", MF: fuzzy.Tri(1, 1, 0)},
	)
	e, err := fuzzy.NewEngine("tiny", []fuzzy.Variable{in}, out, []fuzzy.Rule{
		{When: []int{0}, Then: 0},
		{When: []int{1}, Then: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	s, err := fuzzy.NewSurface(e, resolution)
	if err != nil {
		t.Fatal(err)
	}
	return e, s
}

func testTierConfig() TierConfig {
	cfg := DefaultTierConfig()
	cfg.Tiers = []SurfaceTier{{Resolution: 9, MinRate: 0}, {Resolution: 17, MinRate: 1}, {Resolution: 33, MinRate: 10}}
	return cfg
}

// waitForTier polls an asynchronous tier transition with a deadline.
func waitForTier(t *testing.T, tr *Tiered, cell, want int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for tr.Tier(cell) != want {
		if time.Now().After(deadline) {
			t.Fatalf("cell %d stuck at tier %d, want %d", cell, tr.Tier(cell), want)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestTieredPromoteDemoteAsync(t *testing.T) {
	cfg := testTierConfig()
	compile, calls, pairs := countingCompiler(t, []int{9, 17, 33})
	tr, err := newTieredCompile(4, cfg, compile)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()

	if got := calls.Load(); got != 1 {
		t.Fatalf("construction compiled %d times, want 1 (shared base tier)", got)
	}
	for cell := 0; cell < tr.NumCells(); cell++ {
		if tr.Tier(cell) != 0 {
			t.Fatalf("cell %d starts at tier %d, want 0", cell, tr.Tier(cell))
		}
		s1, s2 := tr.Cell(cell).Surfaces()
		if [2]*fuzzy.Surface{s1, s2} != pairs[9] {
			t.Fatalf("cell %d base surfaces are not the shared coarse pair", cell)
		}
	}

	// A flash-crowd rate promotes straight to the hottest tier.
	tr.Sample(0, 50)
	waitForTier(t, tr, 0, 2)
	if s1, s2 := tr.Cell(0).Surfaces(); [2]*fuzzy.Surface{s1, s2} != pairs[33] {
		t.Error("promoted cell still answers from the old surfaces")
	}
	if tr.Tier(1) != 0 {
		t.Error("promotion leaked to a cell that was never sampled")
	}

	// Steady rate: no new compile requests once installed.
	before := calls.Load()
	for i := 0; i < 10; i++ {
		tr.Sample(0, 50)
	}
	time.Sleep(10 * time.Millisecond)
	if got := calls.Load(); got != before {
		t.Errorf("steady-rate samples recompiled (%d -> %d compiles)", before, got)
	}

	// Cooling demotes, one rung short of flapping thanks to hysteresis.
	tr.Sample(0, 0)
	waitForTier(t, tr, 0, 0)

	counts := tr.TierCounts(nil)
	if counts[0] != 4 || counts[1] != 0 || counts[2] != 0 {
		t.Errorf("TierCounts = %v, want [4 0 0]", counts)
	}
}

func TestTieredBumpRecompilesSameTier(t *testing.T) {
	cfg := testTierConfig()
	compile, calls, _ := countingCompiler(t, []int{9, 17, 33})
	tr, err := newTieredCompile(1, cfg, compile)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()

	// Same tier, same generation: Sample is a no-op.
	before := calls.Load()
	tr.Sample(0, 0)
	time.Sleep(5 * time.Millisecond)
	if calls.Load() != before {
		t.Fatal("in-generation same-tier sample recompiled")
	}

	// After a generation bump the same sample must reinstall the tier.
	tr.Bump()
	tr.Sample(0, 0)
	deadline := time.Now().Add(5 * time.Second)
	for calls.Load() == before {
		if time.Now().After(deadline) {
			t.Fatal("bumped generation never recompiled")
		}
		time.Sleep(time.Millisecond)
	}
	waitForTier(t, tr, 0, 0)
}

// TestTieredStaleGenerationDiscarded holds a compile in flight while the
// generation moves on, then proves the stale result is never installed.
func TestTieredStaleGenerationDiscarded(t *testing.T) {
	cfg := testTierConfig()
	_, _, pairs := countingCompiler(t, []int{9, 17, 33})
	gate := make(chan struct{})
	started := make(chan struct{}, 8)
	var calls atomic.Uint64
	tr, err := newTieredCompile(1, cfg, func(res int) (*fuzzy.Surface, *fuzzy.Surface, error) {
		// The synchronous base compile (call 0) must not block.
		if calls.Add(1) > 1 {
			started <- struct{}{}
			<-gate
		}
		p := pairs[res]
		return p[0], p[1], nil
	})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()

	_, _, _, demotionsBefore := TierCounters()
	tr.Sample(0, 50) // promotion request at generation 1
	<-started        // recompiler is inside the gated compile
	tr.Bump()        // ... and the world changes under it
	close(gate)

	// The stale install must be discarded: the cell stays on tier 0. Give
	// the recompiler a moment to (wrongly) install before asserting.
	time.Sleep(20 * time.Millisecond)
	if got := tr.Tier(0); got != 0 {
		t.Fatalf("stale generation installed tier %d", got)
	}
	if s1, s2 := tr.Cell(0).Surfaces(); [2]*fuzzy.Surface{s1, s2} != pairs[9] {
		t.Error("stale generation replaced the installed surfaces")
	}

	// The next sample at the new generation installs cleanly.
	tr.Sample(0, 50)
	waitForTier(t, tr, 0, 2)
	if _, _, _, demotions := TierCounters(); demotions != demotionsBefore {
		t.Errorf("discard path counted a demotion (%d -> %d)", demotionsBefore, demotions)
	}
}

func TestTieredPresetAndErrors(t *testing.T) {
	cfg := testTierConfig()
	compile, _, pairs := countingCompiler(t, []int{9, 17, 33})
	tr, err := newTieredCompile(2, cfg, compile)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()

	if err := tr.Preset(1, 2); err != nil {
		t.Fatal(err)
	}
	if got := tr.Tier(1); got != 2 {
		t.Fatalf("Preset installed tier %d, want 2", got)
	}
	if s1, s2 := tr.Cell(1).Surfaces(); [2]*fuzzy.Surface{s1, s2} != pairs[33] {
		t.Error("Preset surfaces wrong")
	}
	if err := tr.Preset(1, 3); err == nil {
		t.Error("Preset accepted an out-of-range tier")
	}
	if err := tr.Preset(1, -1); err == nil {
		t.Error("Preset accepted a negative tier")
	}

	if _, err := newTieredCompile(0, cfg, compile); err == nil {
		t.Error("zero cells accepted")
	}
	bad := cfg
	bad.Hysteresis = 7
	if _, err := NewTiered(1, bad); err == nil {
		t.Error("invalid config accepted")
	}
}

func TestTieredCloseIsIdempotentAndNonWedging(t *testing.T) {
	cfg := testTierConfig()
	compile, _, _ := countingCompiler(t, []int{9, 17, 33})
	tr, err := newTieredCompile(2, cfg, compile)
	if err != nil {
		t.Fatal(err)
	}
	tr.Close()
	tr.Close()
	// Sampling a closed selector must neither panic nor block, even past
	// the queue capacity.
	for i := 0; i < 3*cap(tr.reqs); i++ {
		tr.Sample(i%2, 50)
	}
	if got := tr.Tier(0); got != 0 {
		t.Errorf("closed selector moved to tier %d", got)
	}
}

// --- generation-swap race (satellite: runs under -race) ------------------

// TestTieredConcurrentSwapRace hammers one cell from 16 admitting
// goroutines while the recompiler swaps generations and tiers underneath
// them: no torn surface pairs, and after the dust settles decisions come
// from the newest generation's install.
func TestTieredConcurrentSwapRace(t *testing.T) {
	cfg := testTierConfig()
	compile, _, pairs := countingCompiler(t, []int{9, 17, 33})
	tr, err := newTieredCompile(1, cfg, compile)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()

	valid := map[[2]*fuzzy.Surface]bool{}
	for _, p := range pairs {
		valid[p] = true
	}

	// The real controller hot path runs against paper surfaces, not the
	// tiny plumbing ones — so race the provider directly here, exactly the
	// loads Admit performs, and keep the full-pipeline agreement for
	// TestTieredControllerMatchesExact.
	prov := tr.Cell(0)
	stop := make(chan struct{})
	var torn atomic.Uint64
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				s1, s2 := prov.Surfaces()
				if !valid[[2]*fuzzy.Surface{s1, s2}] {
					torn.Add(1)
				}
				_ = tr.Tier(0)
			}
		}()
	}

	rates := []float64{50, 0, 2, 100, 0.1}
	for i := 0; i < 400; i++ {
		tr.Sample(0, rates[i%len(rates)])
		if i%7 == 0 {
			tr.Bump()
		}
		if i%16 == 0 {
			time.Sleep(100 * time.Microsecond)
		}
	}
	close(stop)
	wg.Wait()
	if n := torn.Load(); n != 0 {
		t.Fatalf("%d torn surface-pair reads", n)
	}

	// Quiesce: one final sample at a decisive rate must land the newest
	// generation's surfaces despite everything in flight before it.
	tr.Sample(0, 50)
	waitForTier(t, tr, 0, 2)
	if s1, s2 := tr.Cell(0).Surfaces(); [2]*fuzzy.Surface{s1, s2} != pairs[33] {
		t.Error("post-swap surfaces are not the newest install")
	}
}

// TestTieredAdmitDuringRecompile runs real FACS-P admissions through a
// tiered provider while the real recompiler swaps paper surfaces — the
// end-to-end shape of the race, with every decision required to stay
// inside the ladder's accuracy contract.
func TestTieredAdmitDuringRecompile(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles multiple paper surfaces")
	}
	tr, err := NewTiered(1, DefaultTierConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()

	pc := DefaultPConfig()
	pc.Surfaces = tr.Cell(0)
	ctrl, err := NewFACSP(pc)
	if err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	var src rng.Source
	src.Reseed(7)
	for g := 0; g < 16; g++ {
		seed := src.SplitSeed()
		wg.Add(1)
		go func() {
			defer wg.Done()
			var r rng.Source
			r.Reseed(seed)
			for id := uint64(1); ; id++ {
				select {
				case <-stop:
					return
				default:
				}
				req := cac.Request{
					ID:        id,
					Speed:     r.Uniform(0, SpeedMax),
					Angle:     r.Uniform(0, AngleMax),
					Bandwidth: VoiceBU,
					RealTime:  true,
				}
				if d := ctrl.Admit(req); d.Accept {
					if err := ctrl.Release(req); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}()
	}
	for i := 0; i < 40; i++ {
		tr.Sample(0, []float64{100, 0}[i%2])
		if i%5 == 0 {
			tr.Bump()
		}
		time.Sleep(time.Millisecond)
	}
	close(stop)
	wg.Wait()
}

// --- accuracy contract ---------------------------------------------------

// tieredScoreTol documents the end-to-end FACS-P score tolerance of each
// ladder resolution versus exact inference (measured over the dense
// lattice below, stated with headroom; the ARMin..ARMax score axis spans
// 2.0). Resolution 33's bound matches surface_test.go's
// 2*flc1Tolerance+flc2Tolerance composite.
var tieredScoreTol = map[int]float64{
	9:  0.30,                            // measured 0.143
	17: 0.25,                            // measured 0.120
	33: 2*flc1Tolerance + flc2Tolerance, // the documented default-resolution composite
	65: 0.05,                            // measured 0.006
	0:  0,                               // exact tier: identical by construction
}

// TestTieredControllerMatchesExact drives a dense input lattice through a
// FACS-P on each ladder tier and through exact inference, asserting the
// accuracy contract: scores within the tier's documented tolerance, and
// identical decisions whenever the exact score is not within tolerance of
// the threshold.
func TestTieredControllerMatchesExact(t *testing.T) {
	if testing.Short() {
		t.Skip("dense lattice")
	}
	cfg := TierConfig{
		Tiers: []SurfaceTier{
			{Resolution: 9, MinRate: 0},
			{Resolution: 17, MinRate: 1},
			{Resolution: 33, MinRate: 2},
			{Resolution: 65, MinRate: 3},
			{Resolution: 0, MinRate: 4},
		},
		Hysteresis: 0.75, HalfLife: 30, Interval: 1,
	}
	tr, err := NewTiered(len(cfg.Tiers), cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()

	exact, err := NewFACSP(DefaultPConfig())
	if err != nil {
		t.Fatal(err)
	}

	for tier, rung := range cfg.Tiers {
		if err := tr.Preset(tier, tier); err != nil {
			t.Fatal(err)
		}
		pc := DefaultPConfig()
		pc.Surfaces = tr.Cell(tier)
		tiered, err := NewFACSP(pc)
		if err != nil {
			t.Fatal(err)
		}
		tol := tieredScoreTol[rung.Resolution]
		worst, disagreements := 0.0, 0
		for sp := 0.0; sp <= SpeedMax; sp += 7.5 {
			for an := 0.0; an <= AngleMax; an += 11.25 {
				for _, bw := range []float64{TextBU, VoiceBU, VideoBU} {
					for _, occ := range []float64{0, 0.3, 0.6, 0.9} {
						req := cac.Request{ID: 1, Speed: sp, Angle: an, Bandwidth: bw, RealTime: true}
						rtc := occ * CounterMax
						de, err := exact.Evaluate(req, rtc, 0)
						if err != nil {
							t.Fatal(err)
						}
						dt, err := tiered.Evaluate(req, rtc, 0)
						if err != nil {
							t.Fatal(err)
						}
						d := math.Abs(de.Score - dt.Score)
						worst = math.Max(worst, d)
						if d > tol {
							t.Fatalf("tier %d (res %d) at (%v,%v,%v,occ %v): score %v vs exact %v, error %v > %v",
								tier, rung.Resolution, sp, an, bw, occ, dt.Score, de.Score, d, tol)
						}
						if de.Accept != dt.Accept {
							disagreements++
							if math.Abs(de.Score-de.Threshold) > tol {
								t.Fatalf("tier %d (res %d) at (%v,%v,%v,occ %v): decision flipped with exact score %v a full %v from threshold %v",
									tier, rung.Resolution, sp, an, bw, occ, de.Score, math.Abs(de.Score-de.Threshold), de.Threshold)
							}
						}
					}
				}
			}
		}
		t.Logf("tier %d (res %2d): max score error %.4f (tolerance %v), %d near-threshold decision flips",
			tier, rung.Resolution, worst, tol, disagreements)
		if rung.Resolution == 0 && (worst != 0 || disagreements != 0) {
			t.Errorf("exact tier deviated: worst %v, %d flips", worst, disagreements)
		}
	}
}
