//go:build !race

package core

import (
	"testing"

	"facsp/internal/cac"
)

// Allocation gates of the tiered selector's hot paths, alongside
// alloc_test.go's surface-admit gate and out of -race for the same reason
// (the detector instruments allocations).

// TestTieredAdmitAllocFree pins the tiered serving hot path: a FACS-P
// answering through a per-cell SurfaceProvider decides an admission (and
// takes the release) without allocating, on every non-exact rung of the
// default ladder.
func TestTieredAdmitAllocFree(t *testing.T) {
	cfg := DefaultTierConfig()
	tr, err := NewTiered(len(cfg.Tiers), cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()

	req := cac.Request{ID: 1, Speed: 60, Angle: 15, Bandwidth: 5, RealTime: true}
	for tier := range cfg.Tiers {
		if err := tr.Preset(tier, tier); err != nil {
			t.Fatal(err)
		}
		pc := DefaultPConfig()
		pc.Surfaces = tr.Cell(tier)
		f, err := NewFACSP(pc)
		if err != nil {
			t.Fatal(err)
		}
		cycle := func() {
			if d := f.Admit(req); d.Accept {
				if err := f.Release(req); err != nil {
					t.Fatal(err)
				}
			}
		}
		cycle() // warm lazily-initialised state
		if n := testing.AllocsPerRun(500, cycle); n != 0 {
			t.Errorf("tier %d (res %d): tiered Admit+Release allocates %v per cycle, want 0",
				tier, cfg.Tiers[tier].Resolution, n)
		}
	}
}

// TestTieredLookupsAllocFree pins the selector's own read and sampling
// paths: the provider load, the tier query, the occupancy histogram with a
// reused buffer, and a steady-state Sample (no transition, no compile).
func TestTieredLookupsAllocFree(t *testing.T) {
	tr, err := NewTiered(4, DefaultTierConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()

	prov := tr.Cell(2)
	if n := testing.AllocsPerRun(500, func() {
		s1, s2 := prov.Surfaces()
		if s1 == nil || s2 == nil {
			t.Fatal("base tier lost its surfaces")
		}
	}); n != 0 {
		t.Errorf("Surfaces allocates %v per call, want 0", n)
	}

	if n := testing.AllocsPerRun(500, func() {
		if tr.Tier(1) != 0 {
			t.Fatal("unsampled cell left tier 0")
		}
	}); n != 0 {
		t.Errorf("Tier allocates %v per call, want 0", n)
	}

	buf := tr.TierCounts(nil)
	if n := testing.AllocsPerRun(500, func() { buf = tr.TierCounts(buf) }); n != 0 {
		t.Errorf("TierCounts with a reused buffer allocates %v per call, want 0", n)
	}

	// Steady state: the rate matches the installed tier and generation, so
	// Sample must return without scheduling (or allocating) anything.
	if n := testing.AllocsPerRun(500, func() { tr.Sample(3, 0) }); n != 0 {
		t.Errorf("steady-state Sample allocates %v per call, want 0", n)
	}
}
