//go:build !race

package core

import (
	"testing"

	"facsp/internal/cac"
)

// TestSurfaceAdmitAllocFree pins the serving hot path: a surface-backed
// FACS-P controller decides an admission (and takes the release) without
// allocating. This is the per-request cost the bsd cell workers and the
// experiment sweeps pay millions of times; the exact-inference path is
// allowed to allocate (it builds Mamdani aggregates), the compiled-surface
// path is not. Gated out of -race because the detector instruments
// allocations.
func TestSurfaceAdmitAllocFree(t *testing.T) {
	cfg := DefaultPConfig().WithSurfaceCache(0) // default surface resolution
	f, err := NewFACSP(cfg)
	if err != nil {
		t.Fatal(err)
	}
	req := cac.Request{ID: 1, Speed: 60, Angle: 15, Bandwidth: 5, RealTime: true}

	// Warm once: the first Admit may fault lazily-initialised state.
	d := f.Admit(req)
	if d.Accept {
		if err := f.Release(req); err != nil {
			t.Fatal(err)
		}
	}

	if n := testing.AllocsPerRun(500, func() {
		d := f.Admit(req)
		if d.Accept {
			if err := f.Release(req); err != nil {
				t.Fatal(err)
			}
		}
	}); n != 0 {
		t.Errorf("surface-backed Admit+Release allocates %v per cycle, want 0", n)
	}
}
