package core

import (
	"math"
	"testing"
	"testing/quick"

	"facsp/internal/fuzzy"
)

func newFLC2(t testing.TB) *fuzzy.Engine {
	t.Helper()
	e, err := NewFLC2()
	if err != nil {
		t.Fatalf("NewFLC2: %v", err)
	}
	return e
}

func TestFLC2Shape(t *testing.T) {
	e := newFLC2(t)
	if got := len(e.Rules()); got != 27 {
		t.Fatalf("FRB2 has %d rules, want 27 (Table 2)", got)
	}
	if got := len(e.Inputs()); got != 3 {
		t.Fatalf("FLC2 has %d inputs, want 3", got)
	}
	wantOut := []string{"R", "WR", "NRNA", "WA", "A"}
	out := e.Output()
	if len(out.Terms) != len(wantOut) {
		t.Fatalf("A/R has %d terms, want %d", len(out.Terms), len(wantOut))
	}
	for i, name := range wantOut {
		if out.Terms[i].Name != name {
			t.Errorf("A/R term %d = %q, want %q", i, out.Terms[i].Name, name)
		}
	}
}

// table2 is a verbatim transcription of Table 2; each row is
// {Cv, Rq, Cs, A/R}.
var table2 = [][4]string{
	{"Bd", "Tx", "Sa", "A"}, {"Bd", "Tx", "Md", "NRNA"}, {"Bd", "Tx", "Fu", "NRNA"},
	{"Bd", "Vo", "Sa", "A"}, {"Bd", "Vo", "Md", "NRNA"}, {"Bd", "Vo", "Fu", "WR"},
	{"Bd", "Vi", "Sa", "WA"}, {"Bd", "Vi", "Md", "NRNA"}, {"Bd", "Vi", "Fu", "WR"},
	{"No", "Tx", "Sa", "A"}, {"No", "Tx", "Md", "NRNA"}, {"No", "Tx", "Fu", "NRNA"},
	{"No", "Vo", "Sa", "A"}, {"No", "Vo", "Md", "NRNA"}, {"No", "Vo", "Fu", "NRNA"},
	{"No", "Vi", "Sa", "WA"}, {"No", "Vi", "Md", "NRNA"}, {"No", "Vi", "Fu", "NRNA"},
	{"Go", "Tx", "Sa", "A"}, {"Go", "Tx", "Md", "A"}, {"Go", "Tx", "Fu", "NRNA"},
	{"Go", "Vo", "Sa", "A"}, {"Go", "Vo", "Md", "A"}, {"Go", "Vo", "Fu", "WR"},
	{"Go", "Vi", "Sa", "A"}, {"Go", "Vi", "Md", "A"}, {"Go", "Vi", "Fu", "R"},
}

func TestFRB2MatchesTable2(t *testing.T) {
	e := newFLC2(t)
	ins := e.Inputs()
	out := e.Output()
	rules := e.Rules()
	if len(rules) != len(table2) {
		t.Fatalf("rule count %d != table rows %d", len(rules), len(table2))
	}
	for i, row := range table2 {
		r := rules[i]
		got := [4]string{
			ins[0].Terms[r.When[0]].Name,
			ins[1].Terms[r.When[1]].Name,
			ins[2].Terms[r.When[2]].Name,
			out.Terms[r.Then].Name,
		}
		if got != row {
			t.Errorf("rule %d = %v, want %v (Table 2)", i, got, row)
		}
	}
}

func TestFRB2ConsequentsCopy(t *testing.T) {
	a := FRB2Consequents()
	if len(a) != 27 {
		t.Fatalf("FRB2Consequents has %d entries, want 27", len(a))
	}
	a[0] = "tampered"
	if b := FRB2Consequents(); b[0] != "A" {
		t.Error("FRB2Consequents returned shared backing storage")
	}
}

func TestFLC2MembershipAnchors(t *testing.T) {
	cv := NewCvInputVariable()
	rq := NewRequestVariable()
	cs := NewCounterVariable()
	ar := NewARVariable()

	tests := []struct {
		v    fuzzy.Variable
		x    float64
		term string
		want float64
	}{
		{v: cv, x: 0, term: "Bd", want: 1},
		{v: cv, x: 0.25, term: "Bd", want: 0.5},
		{v: cv, x: 0.5, term: "No", want: 1},
		{v: cv, x: 1, term: "Go", want: 1},
		{v: rq, x: 0, term: "Tx", want: 1},
		{v: rq, x: 5, term: "Vo", want: 1},
		{v: rq, x: 10, term: "Vi", want: 1},
		{v: cs, x: 0, term: "Sa", want: 1},
		{v: cs, x: 10, term: "Sa", want: 0.5},
		{v: cs, x: 20, term: "Md", want: 1},
		{v: cs, x: 40, term: "Fu", want: 1},
		{v: ar, x: -1, term: "R", want: 1},
		{v: ar, x: -0.6, term: "R", want: 1},
		{v: ar, x: -0.45, term: "R", want: 0.5},
		{v: ar, x: -0.3, term: "WR", want: 1},
		{v: ar, x: 0, term: "NRNA", want: 1},
		{v: ar, x: 0.3, term: "WA", want: 1},
		{v: ar, x: 0.45, term: "A", want: 0.5},
		{v: ar, x: 0.6, term: "A", want: 1},
		{v: ar, x: 1, term: "A", want: 1},
	}
	for _, tt := range tests {
		idx := tt.v.TermIndex(tt.term)
		if idx < 0 {
			t.Fatalf("variable %q has no term %q", tt.v.Name, tt.term)
		}
		got := tt.v.Terms[idx].MF.Grade(tt.x)
		if math.Abs(got-tt.want) > 1e-12 {
			t.Errorf("mu_%s(%s=%v) = %v, want %v", tt.term, tt.v.Name, tt.x, got, tt.want)
		}
	}
}

func TestFLC2RuspiniPartitions(t *testing.T) {
	vars := []fuzzy.Variable{NewCvInputVariable(), NewRequestVariable(), NewCounterVariable(), NewARVariable()}
	for _, v := range vars {
		t.Run(v.Name, func(t *testing.T) {
			const steps = 977
			for i := 0; i <= steps; i++ {
				x := v.Min + (v.Max-v.Min)*float64(i)/steps
				sum := 0.0
				for _, g := range v.Fuzzify(x) {
					sum += g
				}
				if math.Abs(sum-1) > 1e-9 {
					t.Fatalf("grades at %s=%v sum to %v, want 1", v.Name, x, sum)
				}
			}
		})
	}
}

func TestFLC2EmptyCellAccepts(t *testing.T) {
	// Table 2: whatever the correction value, a nearly-empty cell (Cs=Sa)
	// accepts text and voice outright (rules 0, 3, 9, 12, 18, 21).
	e := newFLC2(t)
	for _, cv := range []float64{0, 0.5, 1} {
		for _, rq := range []float64{TextBU, VoiceBU} {
			score, err := e.Infer(cv, rq, 0)
			if err != nil {
				t.Fatal(err)
			}
			if score <= 0.3 {
				t.Errorf("empty cell, cv=%v rq=%v: score %v, want decisively positive (>0.3)", cv, rq, score)
			}
		}
	}
}

func TestFLC2FullCellRejectsVideo(t *testing.T) {
	// Rule 26: Go, Vi, Fu -> R. A good user asking for video in a full
	// cell is the paper's canonical hard-reject.
	e := newFLC2(t)
	score, err := e.Infer(1, VideoBU, CounterMax)
	if err != nil {
		t.Fatal(err)
	}
	if score >= -0.3 {
		t.Errorf("full cell, good Cv, video: score %v, want decisively negative (<-0.3)", score)
	}
}

func TestFLC2ScoreDecreasesWithLoad(t *testing.T) {
	// Table 2 is not strictly monotone in Cs for a Good correction value
	// (Sa and Md both map to "A"), so we assert exactly what the table
	// implies: the linguistic anchor points are ordered, and a full cell
	// is always the worst case.
	e := newFLC2(t)
	for _, cv := range []float64{0.2, 0.5, 0.9} {
		atSa, err := e.Infer(cv, VoiceBU, 0)
		if err != nil {
			t.Fatal(err)
		}
		atMd, err := e.Infer(cv, VoiceBU, 20)
		if err != nil {
			t.Fatal(err)
		}
		atFu, err := e.Infer(cv, VoiceBU, CounterMax)
		if err != nil {
			t.Fatal(err)
		}
		if atSa < atMd-1e-9 {
			t.Errorf("cv=%v: score(Sa)=%v below score(Md)=%v", cv, atSa, atMd)
		}
		if atMd < atFu-1e-9 {
			t.Errorf("cv=%v: score(Md)=%v below score(Fu)=%v", cv, atMd, atFu)
		}
		if atSa <= atFu {
			t.Errorf("cv=%v: score(Sa)=%v not above score(Fu)=%v", cv, atSa, atFu)
		}
	}

	// For a Bad correction value the consequents are strictly ordered
	// (A, NRNA, WR), so the full sweep must be weakly decreasing.
	prev := math.Inf(1)
	for cs := 0.0; cs <= CounterMax; cs += 2.5 {
		score, err := e.Infer(0.1, VoiceBU, cs)
		if err != nil {
			t.Fatal(err)
		}
		if score > prev+1e-6 {
			t.Errorf("cv=0.1: score at Cs=%v (%v) exceeds score at lower load (%v)", cs, score, prev)
		}
		prev = score
	}
}

func TestFLC2GoodCvHelpsUnderLoad(t *testing.T) {
	// At medium load, a Good correction value should make the decision
	// strictly friendlier than a Bad one (Table 2 rows 1 vs 19).
	e := newFLC2(t)
	bad, err := e.Infer(0, TextBU, 20)
	if err != nil {
		t.Fatal(err)
	}
	good, err := e.Infer(1, TextBU, 20)
	if err != nil {
		t.Fatal(err)
	}
	if good <= bad {
		t.Errorf("score(good Cv)=%v should exceed score(bad Cv)=%v at medium load", good, bad)
	}
}

// Property: the A/R score is always within [-1,1].
func TestQuickFLC2OutputInRange(t *testing.T) {
	e := newFLC2(t)
	f := func(cv, rq, cs float64) bool {
		cvv := math.Mod(math.Abs(cv), 1)
		rqv := math.Mod(math.Abs(rq), 10)
		csv := math.Mod(math.Abs(cs), 40)
		score, err := e.Infer(cvv, rqv, csv)
		return err == nil && score >= -1 && score <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkFLC2Infer(b *testing.B) {
	e := newFLC2(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Infer(0.7, 5, 22); err != nil {
			b.Fatal(err)
		}
	}
}
