package core

import (
	"fmt"
	"math"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"facsp/internal/fuzzy"
	"facsp/internal/metrics"
)

// This file is the hotness-adaptive tiered decision-surface selector: a
// per-cell ladder of surface resolutions where cold cells share one coarse
// process-cached surface, warm cells a medium one, and hot cells get a fine
// grid or exact inference. Promotion and demotion are driven by the
// expdecay hotness rate (hotness.Tracker.Rate), sampled at an interval by
// the owning plane — never on the Admit path. Recompilation runs
// asynchronously in a background goroutine with a generation-checked atomic
// swap (the same pattern as the des handle generations): admits never block
// on a compile, a stale generation's result is discarded, and a scenario or
// config change bumps the generation.

// ValidateSurfaceResolution is the single validation rule for a per-axis
// decision-surface resolution, shared by Config, PConfig, SurfaceTier and
// the experiment options: 0 selects exact inference, anything else must be
// a grid of at least 2 ticks per axis.
func ValidateSurfaceResolution(resolution int) error {
	if resolution < 0 || resolution == 1 {
		return fmt.Errorf("core: surface resolution %d must be 0 (exact) or >= 2", resolution)
	}
	return nil
}

// SurfaceTier is one rung of the resolution ladder.
type SurfaceTier struct {
	// Resolution is the per-axis surface resolution of this tier; 0 means
	// exact Mamdani inference (only meaningful on the hottest tier, inside
	// the interpolation-error band).
	Resolution int
	// MinRate is the hotness rate (admission events per second on the
	// tracker's time axis) at which a cell enters this tier. The first
	// tier's MinRate must be 0 so every cell has a home.
	MinRate float64
}

// TierConfig parameterises a Tiered selector: the resolution ladder, the
// demotion hysteresis, and the hotness axis the rates are measured on.
type TierConfig struct {
	// Tiers is the ladder, coldest first. MinRates must be strictly
	// ascending from 0; non-zero resolutions must be strictly ascending.
	Tiers []SurfaceTier
	// Hysteresis widens the demotion band: a cell demotes out of tier k
	// only when its rate falls below Tiers[k].MinRate*Hysteresis, so a
	// constant rate sitting near a threshold cannot flap. Must be in
	// (0, 1]; 1 disables the band.
	Hysteresis float64
	// HalfLife is the expdecay half-life, in seconds of the rate axis,
	// that the sampled hotness rates are measured with. The selector does
	// not read clocks itself — this documents (and validates) the axis the
	// caller's tracker must use.
	HalfLife float64
	// Interval is the sampling period, in seconds, the owning plane drives
	// Sample at. The selector never samples on the Admit path.
	Interval float64
}

// DefaultTierConfig returns the daemon's default ladder: a coarse 9-tick
// shared surface for cold cells, the default 33-tick grid for warm cells,
// and a fine 65-tick grid once a cell sustains flash-crowd rates.
func DefaultTierConfig() TierConfig {
	return TierConfig{
		Tiers: []SurfaceTier{
			{Resolution: 9, MinRate: 0},
			{Resolution: DefaultSurfaceResolution, MinRate: 0.5},
			{Resolution: 65, MinRate: 8},
		},
		Hysteresis: 0.75,
		HalfLife:   30,
		Interval:   1,
	}
}

// ParseTiers parses a -surface-tiers flag value: the word "default", or an
// explicit ladder "res@minrate,res@minrate,..." such as "9@0,33@0.5,65@8"
// (resolution 0 = exact inference on the hottest tier). Hysteresis,
// half-life and interval keep their defaults.
func ParseTiers(spec string) (TierConfig, error) {
	cfg := DefaultTierConfig()
	if spec == "default" {
		return cfg, nil
	}
	cfg.Tiers = nil
	for _, part := range strings.Split(spec, ",") {
		res, rate, ok := strings.Cut(strings.TrimSpace(part), "@")
		if !ok {
			return TierConfig{}, fmt.Errorf("core: tier %q must look like res@minrate", part)
		}
		r, err := strconv.Atoi(res)
		if err != nil {
			return TierConfig{}, fmt.Errorf("core: tier resolution %q: %v", res, err)
		}
		m, err := strconv.ParseFloat(rate, 64)
		if err != nil {
			return TierConfig{}, fmt.Errorf("core: tier min rate %q: %v", rate, err)
		}
		cfg.Tiers = append(cfg.Tiers, SurfaceTier{Resolution: r, MinRate: m})
	}
	if err := cfg.Validate(); err != nil {
		return TierConfig{}, err
	}
	return cfg, nil
}

// Validate checks the ladder and its sampling parameters.
func (c TierConfig) Validate() error {
	if len(c.Tiers) == 0 {
		return fmt.Errorf("core: tier config needs at least one tier")
	}
	for i, tr := range c.Tiers {
		if math.IsNaN(tr.MinRate) || math.IsInf(tr.MinRate, 0) || tr.MinRate < 0 {
			return fmt.Errorf("core: tier %d min rate %v must be finite and non-negative", i, tr.MinRate)
		}
		if i == 0 && tr.MinRate != 0 {
			return fmt.Errorf("core: first tier min rate %v must be 0 so every cell has a tier", tr.MinRate)
		}
		if i > 0 && tr.MinRate <= c.Tiers[i-1].MinRate {
			return fmt.Errorf("core: tier min rates must be strictly ascending (tier %d: %v after %v)",
				i, tr.MinRate, c.Tiers[i-1].MinRate)
		}
		if err := ValidateSurfaceResolution(tr.Resolution); err != nil {
			return err
		}
		if tr.Resolution == 0 && i != len(c.Tiers)-1 {
			return fmt.Errorf("core: exact inference (resolution 0) is only valid on the hottest tier, not tier %d", i)
		}
		if i > 0 && tr.Resolution != 0 && tr.Resolution <= c.Tiers[i-1].Resolution {
			return fmt.Errorf("core: tier resolutions must be strictly ascending (tier %d: %d after %d)",
				i, tr.Resolution, c.Tiers[i-1].Resolution)
		}
	}
	if !(c.Hysteresis > 0 && c.Hysteresis <= 1) {
		return fmt.Errorf("core: hysteresis %v must be in (0, 1]", c.Hysteresis)
	}
	if !(c.HalfLife > 0) || math.IsInf(c.HalfLife, 1) {
		return fmt.Errorf("core: hotness half-life %v must be positive and finite", c.HalfLife)
	}
	if !(c.Interval > 0) || math.IsInf(c.Interval, 1) {
		return fmt.Errorf("core: sample interval %v must be positive and finite", c.Interval)
	}
	return nil
}

// TierFor returns the static tier assignment for a hotness rate: the
// hottest tier whose MinRate the rate reaches, with no hysteresis. This is
// the pure assignment function the simulation plane uses (per-cell tiers
// from the sim-time hotness axis); the live selector applies hysteresis on
// top via next.
func (c TierConfig) TierFor(rate float64) int { return c.next(0, rate) }

// next computes the tier a cell at tier cur should move to at the given
// rate. Promotion triggers at MinRate; demotion only below
// MinRate*Hysteresis, and never in the same step as a promotion — so a
// constant rate has a fixed point after at most one transition and cannot
// flap between adjacent tiers.
func (c TierConfig) next(cur int, rate float64) int {
	target := cur
	for target+1 < len(c.Tiers) && rate >= c.Tiers[target+1].MinRate {
		target++
	}
	if target == cur {
		hyst := c.Hysteresis
		if !(hyst > 0 && hyst <= 1) {
			hyst = 1
		}
		for target > 0 && rate < c.Tiers[target].MinRate*hyst {
			target--
		}
	}
	return target
}

// Process-wide counters of the tiered selectors, exposed as scalar families
// in the /metrics exposition (see metrics.RegisterScalar).
var (
	tierRecompiles    atomic.Uint64 // surface recompilations completed by background recompilers
	tierStaleDiscards atomic.Uint64 // recompile requests/results discarded by the generation check
	tierPromotions    atomic.Uint64 // cells moved to a hotter tier
	tierDemotions     atomic.Uint64 // cells moved to a colder tier
)

func init() {
	metrics.RegisterScalar("facs_surface_recompiles_total",
		"Tiered decision-surface recompilations completed by the background recompiler.",
		tierRecompiles.Load)
	metrics.RegisterScalar("facs_surface_recompiles_stale_total",
		"Tiered recompilations discarded because the generation changed mid-flight.",
		tierStaleDiscards.Load)
	metrics.RegisterScalar("facs_surface_tier_promotions_total",
		"Cells promoted to a hotter decision-surface tier.",
		tierPromotions.Load)
	metrics.RegisterScalar("facs_surface_tier_demotions_total",
		"Cells demoted to a colder decision-surface tier.",
		tierDemotions.Load)
}

// TierCounters reports the process-wide tiered-selector counters since
// process start: completed recompilations, generation-stale discards, and
// tier promotions/demotions.
func TierCounters() (recompiles, stale, promotions, demotions uint64) {
	return tierRecompiles.Load(), tierStaleDiscards.Load(), tierPromotions.Load(), tierDemotions.Load()
}

// SurfaceProvider supplies the decision surfaces a controller should answer
// with right now; (nil, nil) selects exact inference. Implementations must
// be safe for concurrent use and allocation-free — Surfaces sits on the
// Admit hot path.
type SurfaceProvider interface {
	Surfaces() (s1, s2 *fuzzy.Surface)
}

// tierSurf is one cell's installed selection: the tier index, the
// generation it was compiled under, and the (shared, immutable) surfaces.
// Installed atomically as a unit so readers can never see a torn pair.
type tierSurf struct {
	tier   int
	gen    uint64
	s1, s2 *fuzzy.Surface // nil on an exact tier
}

// tierCell is one cell's slot in a Tiered selector. It implements
// SurfaceProvider with a single atomic pointer load.
type tierCell struct {
	cur atomic.Pointer[tierSurf]
	// pending packs the (generation, tier) pair currently queued for this
	// cell (-1 none), so the interval sampler does not flood the
	// recompiler with duplicates of an in-flight request.
	pending atomic.Int64
}

// Surfaces implements SurfaceProvider.
func (c *tierCell) Surfaces() (*fuzzy.Surface, *fuzzy.Surface) {
	ts := c.cur.Load()
	return ts.s1, ts.s2
}

// tierCompileReq asks the recompiler to move one cell to a tier, valid only
// while the generation matches.
type tierCompileReq struct {
	cell, tier int
	gen        uint64
}

func packPending(gen uint64, tier int) int64 { return int64(gen)<<8 | int64(tier) }

// Tiered is the per-cell tiered decision-surface selector. Construct one
// per admission plane (NewTiered), hand each controller its cell's
// SurfaceProvider (Cell), and feed it hotness rates at an interval
// (Sample). All methods are safe for concurrent use; Tier, Cell and the
// providers' Surfaces are allocation-free.
type Tiered struct {
	cfg     TierConfig
	compile func(resolution int) (s1, s2 *fuzzy.Surface, err error)

	gen   atomic.Uint64
	cells []tierCell

	reqs      chan tierCompileReq
	quit      chan struct{}
	done      sync.WaitGroup
	closeOnce sync.Once
}

// NewTiered builds a selector for the given number of cells with every cell
// on the coldest tier (compiled synchronously, shared process-wide through
// the surface cache) and starts the background recompiler. Close releases
// it. The surfaces are compiled from the paper's FLC1/FLC2 at the default
// integration density, matching controllers built from DefaultConfig /
// DefaultPConfig.
func NewTiered(cells int, cfg TierConfig) (*Tiered, error) {
	flc1, err := NewFLC1()
	if err != nil {
		return nil, fmt.Errorf("core: building FLC1: %w", err)
	}
	flc2, err := NewFLC2()
	if err != nil {
		return nil, fmt.Errorf("core: building FLC2: %w", err)
	}
	return newTieredCompile(cells, cfg, func(resolution int) (*fuzzy.Surface, *fuzzy.Surface, error) {
		if resolution == 0 {
			return nil, nil, nil // exact tier: controllers fall back to their own engines
		}
		return surfacePair(flc1, flc2, resolution, fuzzy.DefaultSamples, nil)
	})
}

// newTieredCompile is NewTiered with an injectable compiler, so tests can
// count and gate compilations.
func newTieredCompile(cells int, cfg TierConfig, compile func(int) (*fuzzy.Surface, *fuzzy.Surface, error)) (*Tiered, error) {
	if cells < 1 {
		return nil, fmt.Errorf("core: tiered selector needs at least one cell, got %d", cells)
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	t := &Tiered{
		cfg:     cfg,
		compile: compile,
		cells:   make([]tierCell, cells),
		reqs:    make(chan tierCompileReq, cells+16),
		quit:    make(chan struct{}),
	}
	t.gen.Store(1)
	s1, s2, err := compile(cfg.Tiers[0].Resolution)
	if err != nil {
		return nil, fmt.Errorf("core: compiling base tier: %w", err)
	}
	base := &tierSurf{tier: 0, gen: 1, s1: s1, s2: s2}
	for i := range t.cells {
		t.cells[i].cur.Store(base)
		t.cells[i].pending.Store(-1)
	}
	t.done.Add(1)
	go t.recompiler()
	return t, nil
}

// Close stops the background recompiler. Providers stay readable (they keep
// answering with the last installed surfaces); Sample becomes a no-op queue
// write that nobody drains.
func (t *Tiered) Close() {
	t.closeOnce.Do(func() { close(t.quit) })
	t.done.Wait()
}

// NumCells returns the number of cells the selector covers.
func (t *Tiered) NumCells() int { return len(t.cells) }

// NumTiers returns the number of rungs in the ladder.
func (t *Tiered) NumTiers() int { return len(t.cfg.Tiers) }

// Config returns the selector's tier configuration.
func (t *Tiered) Config() TierConfig { return t.cfg }

// Tier returns the cell's currently installed tier index. Allocation-free.
func (t *Tiered) Tier(cell int) int { return t.cells[cell].cur.Load().tier }

// Cell returns the cell's SurfaceProvider, to be placed in a controller's
// Config.Surfaces / PConfig.Surfaces. The provider is a single atomic
// pointer load per call and never blocks on a recompile.
func (t *Tiered) Cell(cell int) SurfaceProvider { return &t.cells[cell] }

// TierCounts counts the cells currently installed on each tier into buf
// (grown if needed) — the tier-occupancy histogram served on /metrics.
func (t *Tiered) TierCounts(buf []int) []int {
	if cap(buf) < len(t.cfg.Tiers) {
		buf = make([]int, len(t.cfg.Tiers))
	}
	buf = buf[:len(t.cfg.Tiers)]
	for i := range buf {
		buf[i] = 0
	}
	for i := range t.cells {
		buf[t.cells[i].cur.Load().tier]++
	}
	return buf
}

// Bump invalidates every installed surface by advancing the generation —
// the hook a scenario or config change calls. In-flight recompiles of the
// old generation are discarded; the next Sample per cell schedules a fresh
// compile at the new generation.
func (t *Tiered) Bump() { t.gen.Add(1) }

// Sample feeds one cell's current hotness rate to the selector. It is the
// interval-driven entry point — call it from a sampling loop at
// TierConfig.Interval, never from the Admit path. If the rate crosses a
// tier boundary (with hysteresis) or the installed surfaces are from a
// stale generation, an asynchronous recompile is scheduled; Sample itself
// never compiles and never blocks.
func (t *Tiered) Sample(cell int, rate float64) {
	c := &t.cells[cell]
	cur := c.cur.Load()
	gen := t.gen.Load()
	target := t.cfg.next(cur.tier, rate)
	if target == cur.tier && cur.gen == gen {
		return
	}
	pack := packPending(gen, target)
	if c.pending.Load() == pack {
		return // already queued or compiling
	}
	select {
	case t.reqs <- tierCompileReq{cell: cell, tier: target, gen: gen}:
		c.pending.Store(pack)
	default:
		// Queue full: drop; the next interval sample retries.
	}
}

// Preset synchronously compiles and installs a tier for a cell at the
// current generation — the static-assignment path the simulation plane and
// benchmarks use (experiment.AssignTiers), bypassing the sampler.
func (t *Tiered) Preset(cell, tier int) error {
	if tier < 0 || tier >= len(t.cfg.Tiers) {
		return fmt.Errorf("core: tier %d out of range [0, %d)", tier, len(t.cfg.Tiers))
	}
	t.handle(tierCompileReq{cell: cell, tier: tier, gen: t.gen.Load()})
	return nil
}

func (t *Tiered) recompiler() {
	defer t.done.Done()
	for {
		select {
		case <-t.quit:
			return
		case req := <-t.reqs:
			t.handle(req)
		}
	}
}

// handle compiles one request and installs it with a generation-checked
// atomic swap: a result whose generation is no longer current — or older
// than what another install already placed — is discarded, never installed.
func (t *Tiered) handle(req tierCompileReq) {
	c := &t.cells[req.cell]
	defer c.pending.CompareAndSwap(packPending(req.gen, req.tier), -1)
	if req.gen != t.gen.Load() {
		tierStaleDiscards.Add(1)
		return
	}
	s1, s2, err := t.compile(t.cfg.Tiers[req.tier].Resolution)
	if err != nil {
		// Validated ladders cannot fail to compile; drop and let the next
		// sample retry rather than wedge the recompiler.
		return
	}
	tierRecompiles.Add(1)
	ns := &tierSurf{tier: req.tier, gen: req.gen, s1: s1, s2: s2}
	for {
		cur := c.cur.Load()
		if req.gen < cur.gen || req.gen != t.gen.Load() {
			tierStaleDiscards.Add(1)
			return
		}
		if c.cur.CompareAndSwap(cur, ns) {
			if req.tier > cur.tier {
				tierPromotions.Add(1)
			} else if req.tier < cur.tier {
				tierDemotions.Add(1)
			}
			return
		}
	}
}
