// Command facs-client drives a facs-server daemon with a synthetic call
// workload and reports the admission statistics — a network-level
// mini-benchmark of a live base station.
//
// Usage:
//
//	facs-client -addr 127.0.0.1:4077 -n 200 -hold 150ms
//	facs-client -status
package main

import (
	"flag"
	"fmt"
	"os"
	"sync"
	"time"

	"facsp/internal/bsd"
	"facsp/internal/rng"
	"facsp/internal/traffic"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "facs-client:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("facs-client", flag.ContinueOnError)
	var (
		addr    = fs.String("addr", "127.0.0.1:4077", "daemon address")
		n       = fs.Int("n", 100, "number of connection requests to offer")
		hold    = fs.Duration("hold", 100*time.Millisecond, "mean wall-clock holding time per admitted call")
		seed    = fs.Uint64("seed", 1, "workload seed")
		conc    = fs.Int("concurrency", 4, "parallel client sessions")
		status  = fs.Bool("status", false, "just print the cell status and exit")
		handoff = fs.Bool("handoff", false, "mark requests as handoffs of on-going calls")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *status {
		cl, err := bsd.Dial(*addr)
		if err != nil {
			return err
		}
		defer cl.Close()
		st, err := cl.Status()
		if err != nil {
			return err
		}
		fmt.Printf("scheme=%s occupancy=%.1f/%.0f BU\n", st.Scheme, st.Occupancy, st.Capacity)
		return nil
	}

	if *conc < 1 {
		*conc = 1
	}
	var (
		mu       sync.Mutex
		offered  int
		accepted int
		rejected int
		errors   int
	)
	var wg sync.WaitGroup
	// Split the -n requests across workers exactly: the first n%conc
	// workers take one extra, so the client offers precisely -n requests
	// rather than conc*ceil(n/conc).
	base, extra := *n / *conc, *n%*conc
	for w := 0; w < *conc; w++ {
		share := base
		if w < extra {
			share++
		}
		if share == 0 {
			continue
		}
		wg.Add(1)
		go func(worker, share int) {
			defer wg.Done()
			src := rng.New(*seed + uint64(worker))
			cl, err := bsd.Dial(*addr)
			if err != nil {
				mu.Lock()
				errors++
				mu.Unlock()
				return
			}
			defer cl.Close()
			mix := traffic.DefaultMix()
			for i := 0; i < share; i++ {
				id := uint64(worker*1_000_000 + i)
				class := mix.Sample(src)
				mu.Lock()
				offered++
				mu.Unlock()
				resp, err := cl.Admit(id, class.String(), src.Uniform(0, 120), src.Uniform(-180, 180), *handoff)
				if err != nil {
					mu.Lock()
					errors++
					mu.Unlock()
					return
				}
				switch {
				case !resp.OK:
					mu.Lock()
					errors++
					mu.Unlock()
				case resp.Accept:
					mu.Lock()
					accepted++
					mu.Unlock()
					// Hold the call, then release.
					time.Sleep(time.Duration(src.Exp(float64(*hold))))
					if _, err := cl.Release(id, class.String()); err != nil {
						mu.Lock()
						errors++
						mu.Unlock()
						return
					}
				default:
					mu.Lock()
					rejected++
					mu.Unlock()
				}
			}
		}(w, share)
	}
	wg.Wait()

	// offered counts requests actually sent (it includes ones that later
	// errored); the acceptance ratio is over the decided ones only.
	fmt.Printf("offered=%d accepted=%d rejected=%d errors=%d", offered, accepted, rejected, errors)
	if decided := accepted + rejected; decided > 0 {
		fmt.Printf(" accept%%=%.1f", 100*float64(accepted)/float64(decided))
	}
	fmt.Println()
	if errors > 0 {
		return fmt.Errorf("%d request(s) failed", errors)
	}
	return nil
}
