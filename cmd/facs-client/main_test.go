package main

import (
	"net"
	"strconv"
	"sync/atomic"
	"testing"

	"facsp/internal/baseline"
	"facsp/internal/bsd"
	"facsp/internal/cac"
)

// countingCtrl wraps a controller, counting Admit calls — the fixture
// for the offered-request accounting.
type countingCtrl struct {
	cac.Controller
	admits atomic.Int64
}

func (c *countingCtrl) Admit(req cac.Request) cac.Decision {
	c.admits.Add(1)
	return c.Controller.Admit(req)
}

func startCountingServer(t *testing.T) (string, *countingCtrl) {
	t.Helper()
	inner, err := baseline.NewCompleteSharing(1000)
	if err != nil {
		t.Fatal(err)
	}
	ctrl := &countingCtrl{Controller: inner}
	srv, err := bsd.NewServer(ctrl)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = srv.Serve(ln)
	}()
	t.Cleanup(func() {
		_ = srv.Close()
		<-done
	})
	return ln.Addr().String(), ctrl
}

// TestOffersExactlyN pins the accounting fix: -n requests split over
// -concurrency workers must offer exactly n, including when n is not a
// multiple of the concurrency (the old ceiling split offered
// conc*ceil(n/conc)).
func TestOffersExactlyN(t *testing.T) {
	for _, tt := range []struct{ n, conc int }{
		{n: 12, conc: 4}, // even split
		{n: 10, conc: 4}, // remainder 2: the old code offered 12
		{n: 7, conc: 4},  // remainder 3: the old code offered 8
		{n: 2, conc: 4},  // fewer requests than workers: the old code offered 4
	} {
		addr, ctrl := startCountingServer(t)
		err := run([]string{
			"-addr", addr,
			"-n", strconv.Itoa(tt.n),
			"-concurrency", strconv.Itoa(tt.conc),
			"-hold", "1ms",
		})
		if err != nil {
			t.Fatalf("n=%d conc=%d: %v", tt.n, tt.conc, err)
		}
		if got := ctrl.admits.Load(); got != int64(tt.n) {
			t.Errorf("n=%d conc=%d: daemon saw %d admits", tt.n, tt.conc, got)
		}
	}
}
