// Command fuzzyviz introspects the paper's fuzzy controllers: it dumps the
// membership functions of every linguistic variable (Figs. 5 and 6), the
// rule bases FRB1 and FRB2 (Tables 1 and 2), and the end-to-end control
// surface of the FLC1+FLC2 pipeline.
//
// Usage:
//
//	fuzzyviz -rules flc1          # Table 1 as a markdown table
//	fuzzyviz -mf Sp -samples 25   # membership grades along the Sp axis
//	fuzzyviz -surface -cs 20      # A/R score over speed x angle at Cs=20
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"facsp/internal/core"
	"facsp/internal/fuzzy"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "fuzzyviz:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("fuzzyviz", flag.ContinueOnError)
	var (
		rules   = fs.String("rules", "", "dump a rule base: flc1 (Table 1) or flc2 (Table 2)")
		mf      = fs.String("mf", "", "dump membership grades of a variable: Sp, An, Sr, Cv, Rq, Cs, A/R, or 'all'")
		samples = fs.Int("samples", 21, "sample count along each axis")
		surface = fs.Bool("surface", false, "dump the FLC1+FLC2 A/R surface over speed x angle (CSV)")
		cs      = fs.Float64("cs", 20, "counter state (BU) for -surface")
		rq      = fs.Float64("rq", 5, "request bandwidth (BU) for -surface")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	switch {
	case *rules != "":
		return dumpRules(*rules)
	case *mf != "":
		return dumpMF(*mf, *samples)
	case *surface:
		return dumpSurface(*samples, *rq, *cs)
	default:
		fs.Usage()
		return fmt.Errorf("one of -rules, -mf or -surface is required")
	}
}

func engines() (*fuzzy.Engine, *fuzzy.Engine, error) {
	flc1, err := core.NewFLC1()
	if err != nil {
		return nil, nil, err
	}
	flc2, err := core.NewFLC2()
	if err != nil {
		return nil, nil, err
	}
	return flc1, flc2, nil
}

func dumpRules(which string) error {
	flc1, flc2, err := engines()
	if err != nil {
		return err
	}
	var e *fuzzy.Engine
	switch strings.ToLower(which) {
	case "flc1":
		e = flc1
		fmt.Println("FRB1 (Table 1 of the paper): IF Sp AND An AND Sr THEN Cv")
	case "flc2":
		e = flc2
		fmt.Println("FRB2 (Table 2 of the paper): IF Cv AND Rq AND Cs THEN A/R")
	default:
		return fmt.Errorf("unknown rule base %q (want flc1 or flc2)", which)
	}

	ins := e.Inputs()
	out := e.Output()
	header := "| Rule |"
	sep := "|---|"
	for _, in := range ins {
		header += " " + in.Name + " |"
		sep += "---|"
	}
	header += " " + out.Name + " |"
	sep += "---|"
	fmt.Println(header)
	fmt.Println(sep)
	for ri, r := range e.Rules() {
		row := fmt.Sprintf("| %d |", ri)
		for vi, w := range r.When {
			row += " " + ins[vi].Terms[w].Name + " |"
		}
		row += " " + out.Terms[r.Then].Name + " |"
		fmt.Println(row)
	}
	return nil
}

func variableByName(name string) (fuzzy.Variable, bool) {
	vars := []fuzzy.Variable{
		core.NewSpeedVariable(),
		core.NewAngleVariable(),
		core.NewServiceVariable(),
		core.NewCvVariable(),
		core.NewRequestVariable(),
		core.NewCounterVariable(),
		core.NewARVariable(),
	}
	for _, v := range vars {
		if strings.EqualFold(v.Name, name) {
			return v, true
		}
	}
	return fuzzy.Variable{}, false
}

func dumpMF(name string, samples int) error {
	if samples < 2 {
		samples = 2
	}
	names := []string{name}
	if strings.EqualFold(name, "all") {
		names = []string{"Sp", "An", "Sr", "Cv", "Rq", "Cs", "A/R"}
	}
	for _, n := range names {
		v, ok := variableByName(n)
		if !ok {
			return fmt.Errorf("unknown variable %q (want Sp, An, Sr, Cv, Rq, Cs, A/R)", n)
		}
		fmt.Printf("# %s universe [%g, %g]\n", v.Name, v.Min, v.Max)
		fmt.Print("x")
		for _, term := range v.Terms {
			fmt.Printf(",%s", term.Name)
		}
		fmt.Println()
		for i := 0; i < samples; i++ {
			x := v.Min + (v.Max-v.Min)*float64(i)/float64(samples-1)
			fmt.Printf("%g", x)
			for _, g := range v.Fuzzify(x) {
				fmt.Printf(",%.4f", g)
			}
			fmt.Println()
		}
	}
	return nil
}

func dumpSurface(samples int, rq, cs float64) error {
	if samples < 2 {
		samples = 2
	}
	flc1, flc2, err := engines()
	if err != nil {
		return err
	}
	fmt.Println("speed_kmh,angle_deg,cv,score")
	for i := 0; i < samples; i++ {
		sp := core.SpeedMin + (core.SpeedMax-core.SpeedMin)*float64(i)/float64(samples-1)
		for j := 0; j < samples; j++ {
			an := core.AngleMin + (core.AngleMax-core.AngleMin)*float64(j)/float64(samples-1)
			cv, err := flc1.Infer(sp, an, rq)
			if err != nil {
				return err
			}
			score, err := flc2.Infer(cv, rq, cs)
			if err != nil {
				return err
			}
			fmt.Printf("%.1f,%.1f,%.4f,%.4f\n", sp, an, cv, score)
		}
	}
	return nil
}
