package main

import (
	"os"
	"strings"
	"testing"
)

// capture runs f with stdout redirected and returns what it printed.
func capture(t *testing.T, f func() error) string {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	errRun := f()
	_ = w.Close()
	os.Stdout = old
	out := make([]byte, 0, 4096)
	buf := make([]byte, 4096)
	for {
		n, rerr := r.Read(buf)
		out = append(out, buf[:n]...)
		if rerr != nil {
			break
		}
	}
	if errRun != nil {
		t.Fatalf("run: %v", errRun)
	}
	return string(out)
}

func TestDumpRulesFLC1(t *testing.T) {
	out := capture(t, func() error { return run([]string{"-rules", "flc1"}) })
	if !strings.Contains(out, "Table 1") {
		t.Errorf("missing title:\n%s", out[:120])
	}
	// Header + separator + 63 rules.
	if got := strings.Count(out, "\n"); got != 66 {
		t.Errorf("FLC1 dump has %d lines, want 66", got)
	}
	if !strings.Contains(out, "| 62 | Fa | B2 | Bi | Cv1 |") {
		t.Error("rule 62 missing or wrong")
	}
}

func TestDumpRulesFLC2(t *testing.T) {
	out := capture(t, func() error { return run([]string{"-rules", "flc2"}) })
	if got := strings.Count(out, "\n"); got != 30 {
		t.Errorf("FLC2 dump has %d lines, want 30", got)
	}
	if !strings.Contains(out, "| 26 | Go | Vi | Fu | R |") {
		t.Error("rule 26 missing or wrong")
	}
}

func TestDumpRulesUnknown(t *testing.T) {
	if err := run([]string{"-rules", "flc3"}); err == nil {
		t.Error("unknown rule base accepted")
	}
}

func TestDumpMF(t *testing.T) {
	out := capture(t, func() error { return run([]string{"-mf", "Sp", "-samples", "5"}) })
	if !strings.Contains(out, "x,Sl,Mi,Fa") {
		t.Errorf("missing header:\n%s", out)
	}
	if !strings.Contains(out, "60,0.0000,1.0000,0.0000") {
		t.Errorf("Mi peak missing:\n%s", out)
	}
}

func TestDumpMFAll(t *testing.T) {
	out := capture(t, func() error { return run([]string{"-mf", "all", "-samples", "3"}) })
	for _, v := range []string{"# Sp", "# An", "# Sr", "# Cv", "# Rq", "# Cs", "# A/R"} {
		if !strings.Contains(out, v) {
			t.Errorf("variable %q missing", v)
		}
	}
}

func TestDumpMFUnknown(t *testing.T) {
	if err := run([]string{"-mf", "bogus"}); err == nil {
		t.Error("unknown variable accepted")
	}
}

func TestDumpSurface(t *testing.T) {
	out := capture(t, func() error { return run([]string{"-surface", "-samples", "3"}) })
	if !strings.Contains(out, "speed_kmh,angle_deg,cv,score") {
		t.Errorf("missing header:\n%s", out)
	}
	// 3x3 grid + header = 10 lines.
	if got := strings.Count(out, "\n"); got != 10 {
		t.Errorf("surface has %d lines, want 10:\n%s", got, out)
	}
}

func TestNoModeSelected(t *testing.T) {
	if err := run(nil); err == nil {
		t.Error("no mode accepted")
	}
}
