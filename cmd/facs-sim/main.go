// Command facs-sim regenerates the paper's evaluation figures.
//
// Usage:
//
//	facs-sim -fig 10                 # ASCII chart of Fig. 10 to stdout
//	facs-sim -fig 7 -csv fig7.csv    # also write tidy CSV
//	facs-sim -fig all -reps 30       # every figure, 30 seeds per point
//	facs-sim -fig drops              # the QoS (call-dropping) experiment
//	facs-sim -fig adapt-drops        # adaptive bandwidth vs FACS-P vs guard
//	facs-sim -fig adapt-ratio        # the degradation-ratio price it pays
//	facs-sim -fig 10 -workers 16     # shard the sweep over 16 workers
//	facs-sim -fig 10 -surface 33     # precomputed decision surfaces
//
// Figures: 7 (FACS vs SCC), 8 (FACS-P by speed), 9 (FACS-P by angle),
// 10 (FACS-P vs FACS), drops (dropped-call percentage, FACS-P vs FACS),
// adapt-drops (dropped-call percentage, adapt/adapt-fuzzy vs FACS-P vs
// guard-channel), adapt-ratio (mean received/requested bandwidth of the
// adaptive schemes), plus the ablation-handoff and ablation-defuzz
// sensitivity studies.
//
// Sweeps are sharded: every (load, replication) cell runs as an independent
// simulation with a deterministic RNG substream, so -workers changes only
// throughput — the curves are bit-identical for any worker count and seed.
// -surface N trades a small, bounded quantization error for a much faster
// admission hot path (see EXPERIMENTS.md).
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"facsp/internal/experiment"
	"facsp/internal/plot"
	"facsp/internal/stats"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "facs-sim:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("facs-sim", flag.ContinueOnError)
	var (
		fig     = fs.String("fig", "10", "figure to regenerate: "+figureList()+", or all")
		loads   = fs.String("loads", "", "comma-separated x axis, e.g. 10,25,50,100 (default: the paper grid)")
		reps    = fs.Int("reps", 20, "replications (seeds) per point")
		seed    = fs.Uint64("seed", 0, "base seed")
		workers = fs.Int("workers", 0, "parallel shard workers (default GOMAXPROCS; any value yields identical curves)")
		surface = fs.Int("surface", 0, "run controllers on precomputed decision surfaces with this per-axis resolution (0 = exact inference)")
		csvPath = fs.String("csv", "", "also write tidy CSV to this path ('-' for stdout)")
		noChart = fs.Bool("no-chart", false, "suppress the ASCII chart")
		withCI  = fs.Bool("ci", false, "print a per-point table with 95% confidence half-widths")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	opts := experiment.Options{
		Replications:      *reps,
		BaseSeed:          *seed,
		Workers:           *workers,
		SurfaceResolution: *surface,
	}
	if *loads != "" {
		parsed, err := parseLoads(*loads)
		if err != nil {
			return err
		}
		opts.Loads = parsed
	}

	figures := experiment.Figures()
	var ids []string
	if *fig == "all" {
		ids = experiment.FigureIDs()
	} else {
		if figures[*fig] == nil {
			return fmt.Errorf("unknown figure %q (have %s, all)", *fig, figureList())
		}
		ids = []string{*fig}
	}

	for _, id := range ids {
		curves, err := figures[id](opts)
		if err != nil {
			return err
		}
		if err := emit(id, curves, *csvPath, !*noChart, *withCI); err != nil {
			return err
		}
	}
	return nil
}

// figureList returns the known figure identifiers, sorted, for usage and
// error text.
func figureList() string {
	return strings.Join(experiment.FigureIDs(), ", ")
}

func parseLoads(s string) ([]int, error) {
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		n, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, fmt.Errorf("bad load %q: %w", p, err)
		}
		if n < 0 {
			return nil, fmt.Errorf("negative load %d", n)
		}
		out = append(out, n)
	}
	return out, nil
}

func emit(id string, curves []experiment.Curve, csvPath string, chart, withCI bool) error {
	series := make([]stats.Series, len(curves))
	for i, c := range curves {
		series[i] = c.Series
	}

	if chart {
		title := "Figure " + id
		yLabel := "percentage of accepted calls"
		switch id {
		case "drops":
			title = "Dropped-call percentage (QoS of on-going connections)"
			yLabel = "percentage of admitted calls dropped"
		case "ablation-handoff":
			title = "Dropped-call percentage (handoff-priority ablation)"
			yLabel = "percentage of admitted calls dropped"
		case "adapt-drops":
			title = "Dropped-call percentage (adaptive bandwidth vs reservation)"
			yLabel = "percentage of admitted calls dropped"
		case "adapt-ratio":
			title = "Degradation ratio (price of adaptive handoff protection)"
			yLabel = "mean received/requested bandwidth (%)"
		}
		c := plot.Chart{
			Title:  title,
			XLabel: "number of requesting connections",
			YLabel: yLabel,
		}
		if err := c.Render(os.Stdout, series...); err != nil {
			return err
		}
		fmt.Println()
	}

	if withCI {
		for _, c := range curves {
			fmt.Printf("%s\n", c.Name)
			for i, p := range c.Points {
				fmt.Printf("  N=%-4g %6.2f ± %.2f\n", p.X, p.Y, c.CI95[i])
			}
		}
		fmt.Println()
	}

	switch csvPath {
	case "":
		return nil
	case "-":
		return plot.WriteCSV(os.Stdout, series...)
	default:
		path := csvPath
		if len(curves) > 0 && strings.Contains(path, "%s") {
			path = fmt.Sprintf(csvPath, id)
		}
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := plot.WriteCSV(f, series...); err != nil {
			_ = f.Close()
			return err
		}
		return f.Close()
	}
}
